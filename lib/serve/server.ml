(* Socket server with a group-commit write path; contracts documented
   in server.mli and DESIGN.md section 11.

   Threading discipline: the accept loop and each connection run on
   their own (lightweight) threads; the store is mutated ONLY by the
   single writer thread, so the engine keeps its single-writer
   contract while queries go through the epoch-published read plane
   from any thread. Connection threads communicate with the writer
   through a bounded queue of per-request mailboxes (mutex + condvar
   each), and with the accept loop through the connection registry. *)

module Trace = Dsdg_check.Trace
module Di = Dsdg_core.Dynamic_index
module Durable = Dsdg_store.Durable
module Wal = Dsdg_store.Wal
module Snapshot = Dsdg_store.Snapshot
open Dsdg_obs

let obs = Obs.scope "serve"
let c_accepted = Obs.counter obs "conns_accepted"
let c_rejected = Obs.counter obs "conns_rejected"
let c_closed = Obs.counter obs "conns_closed"
let c_frames = Obs.counter obs "frames"
let c_frames_bad = Obs.counter obs "frames_bad"
let c_queries = Obs.counter obs "queries"
let c_writes = Obs.counter obs "writes"
let c_batches = Obs.counter obs "batches"
let g_conns = Obs.gauge obs "conns_open"
let h_batch_size = Obs.histogram obs "batch_size"
let h_flush_ns = Obs.histogram obs "flush_ns"
let h_request_ns = Obs.histogram obs "request_ns"

(* Leader-side replication counters; the follower's replay-side
   counters live in the same registered scope (Obs.scope is
   get-or-create), so one snapshot shows both halves. *)
let obs_repl = Obs.scope "repl"
let c_frames_shipped = Obs.counter obs_repl "frames_shipped"
let c_snap_ships = Obs.counter obs_repl "snapshots_shipped"
let c_repl_polls = Obs.counter obs_repl "polls_answered"

type config = {
  max_frame : int;
  max_batch : int;
  max_conns : int;
  read_timeout : float;
  write_timeout : float;
}

let default_config =
  { max_frame = 1 lsl 20; max_batch = 256; max_conns = 1024; read_timeout = 30.; write_timeout = 30. }

type listen = [ `Unix of string | `Tcp of string * int ]

exception Killed

exception Redirect of string

let () =
  Printexc.register_printer (function Redirect reason -> Some reason | _ -> None)

(* What the server needs from a collection: the group-commit batch
   apply, view-plane queries, a stats snapshot, and lifecycle. One
   record instead of a functor so a server can front a plain durable
   store or a sharded one (or anything else) without the socket/thread
   machinery knowing. *)
(* Answer to one replication poll: records up to the stream's durable
   shipping bound, a snapshot bootstrap when the asked-for position was
   compacted away, or a refusal. *)
type repl_reply =
  | Rp_recs of { recs : (int * string) list; bound : int; epoch : int }
  | Rp_snapshot of { path : string; serial : int; bound : int; epoch : int }
  | Rp_error of string

type engine = {
  eng_describe : string;
  eng_apply_batch : Trace.op list -> Durable.batch_result list;
  eng_search : string -> (int * int) list;
  eng_count : string -> int;
  eng_extract : doc:int -> off:int -> len:int -> string option;
  eng_mem : int -> bool;
  eng_stats : unit -> (string * int) list;
  eng_repl : stream:string -> from:int -> repl_reply;
  eng_checkpoint : unit -> unit;
  eng_close : unit -> unit;
  eng_kill : torn:bool -> unit;
}

(* Ship WAL records [from, bound) by tailing the live log file.  A
   fresh bounded cursor per poll keeps this robust against concurrent
   compaction (rotation detection is the cursor's job); the log is
   compacted at every checkpoint so the re-read stays proportional to
   the WAL tail, not history.  [Tail_gap] means [from] predates the
   log: first try the bounded {!Wal.archives} ring compaction left
   behind -- the segment covering [from] still holds the records, so a
   lagging follower catches up by ordinary record shipping -- and only
   when [from] predates the archives too fall back to the newest
   snapshot, whose serial the follower resumes from. *)
let wal_repl ~wal_path ~dir ~bound ~epoch ~from =
  if from >= bound then Rp_recs { recs = []; bound; epoch }
  else
    match
      let c = Wal.tail ~from wal_path in
      Fun.protect ~finally:(fun () -> Wal.tail_close c) (fun () -> Wal.tail_poll ~limit:bound c)
    with
    | recs ->
      Rp_recs { recs = List.map (fun (s, op) -> (s, Trace.op_to_string op)) recs; bound; epoch }
    | exception Wal.Tail_gap _ -> (
      (* an archive segment is an ordinary (immutable) log file, so the
         same cursor machinery reads it; one poll serves what the
         segment holds and the follower's next poll advances into the
         next segment or the live log *)
      let archived =
        try
          match List.find_opt (fun (_, e) -> e > from) (Wal.archives wal_path) with
          | None -> []
          | Some (path, _) ->
            let c = Wal.tail ~from path in
            Fun.protect
              ~finally:(fun () -> Wal.tail_close c)
              (fun () -> Wal.tail_poll ~limit:bound c)
        with Wal.Tail_gap _ -> []
      in
      match archived with
      | _ :: _ as recs ->
        Rp_recs { recs = List.map (fun (s, op) -> (s, Trace.op_to_string op)) recs; bound; epoch }
      | [] -> (
        match Snapshot.list ~dir with
        | (path, serial) :: _ when serial > from -> Rp_snapshot { path; serial; bound; epoch }
        | _ ->
          Rp_error
            (Printf.sprintf "stream position %d was compacted away and no snapshot covers it" from)
        ))

let engine_of_store store =
  let idx = Durable.index store in
  {
    eng_describe = Di.describe idx;
    eng_apply_batch = (fun ops -> Durable.apply_batch store ops);
    eng_search = (fun p -> Di.query idx (fun v -> Di.view_search v p));
    eng_count = (fun p -> Di.query idx (fun v -> Di.view_count v p));
    eng_extract =
      (fun ~doc ~off ~len -> Di.query idx (fun v -> Di.view_extract v ~doc ~off ~len));
    eng_mem = (fun id -> Di.query idx (fun v -> Di.view_mem v id));
    eng_stats =
      (fun () ->
        let v = Di.view idx in
        [
          ("docs", Di.view_doc_count v);
          ("symbols", Di.view_total_symbols v);
          ("epoch", Di.view_epoch v);
        ]);
    eng_repl =
      (fun ~stream ~from ->
        if stream <> "wal" then Rp_error (Printf.sprintf "unknown stream %S" stream)
        else
          wal_repl ~wal_path:(Durable.wal_path store) ~dir:(Durable.dir store)
            ~bound:(Durable.durable_serial store)
            ~epoch:(Di.view_epoch (Di.view idx))
            ~from);
    eng_checkpoint = (fun () -> Durable.checkpoint store);
    eng_close = (fun () -> Durable.close store);
    eng_kill = (fun ~torn -> Durable.kill store ~torn);
  }

let engine_of_sharded s =
  let module Sh = Dsdg_shard.Sharded_index in
  {
    eng_describe = Sh.describe s;
    eng_apply_batch = (fun ops -> Sh.apply_batch s ops);
    eng_search = (fun p -> Sh.search s p);
    eng_count = (fun p -> Sh.count s p);
    eng_extract = (fun ~doc ~off ~len -> Sh.extract s ~doc ~off ~len);
    eng_mem = (fun id -> Sh.mem s id);
    eng_stats =
      (fun () ->
        let ev = Sh.epoch_vector s in
        [
          ("docs", Sh.doc_count s);
          ("symbols", Sh.total_symbols s);
          ("epoch", Array.fold_left ( + ) 0 ev);
          ("shards", Sh.shards s);
        ]);
    eng_repl =
      (fun ~stream ~from ->
        match Sh.backing_stores s with
        | None -> Rp_error "an in-memory index has no replication streams"
        | Some stores ->
          if stream = "meta" then begin
            (* [meta_records] is the shipping bound: events are fsynced
               at append under any policy but Never, mirroring the WAL
               durable bound's Never degradation *)
            let bound = Sh.meta_records s in
            let lines = Sh.meta_lines_from s ~from in
            let recs =
              List.filteri (fun i _ -> from + i < bound) lines
              |> List.mapi (fun i l -> (from + i, l))
            in
            Rp_recs { recs; bound; epoch = (Sh.epoch_vector s).(Sh.shards s) }
          end
          else
            match
              if String.length stream > 3 && String.sub stream 0 3 = "wal" then
                int_of_string_opt (String.sub stream 3 (String.length stream - 3))
              else None
            with
            | Some k when k >= 0 && k < Sh.shards s -> (
              let st = stores.(k) in
              match
                wal_repl ~wal_path:(Durable.wal_path st) ~dir:(Durable.dir st)
                  ~bound:(Durable.durable_serial st)
                  ~epoch:(Sh.epoch_vector s).(k)
                  ~from
              with
              | Rp_snapshot _ ->
                (* per-shard snapshots are not mutually consistent with
                   a meta prefix; only a pinned backup is *)
                Rp_error
                  (Printf.sprintf
                     "shard %d compacted past position %d; seed the replica from a pinned backup"
                     k from)
              | reply -> reply)
            | _ -> Rp_error (Printf.sprintf "unknown stream %S" stream));
    eng_checkpoint = (fun () -> Sh.checkpoint s);
    eng_close = (fun () -> Sh.close s);
    eng_kill = (fun ~torn -> Sh.kill s ~torn);
  }

(* A replica's engine: queries and stats serve locally, every mutation
   is refused with a redirect naming the leader, checkpoint is a no-op
   (the tail thread owns the store's write plane). *)
let engine_readonly ~describe ~search ~count ~extract ~mem ~stats ~redirect ~close ~kill =
  {
    eng_describe = describe;
    eng_apply_batch = (fun _ -> raise (Redirect redirect));
    eng_search = search;
    eng_count = count;
    eng_extract = extract;
    eng_mem = mem;
    eng_stats = stats;
    eng_repl =
      (fun ~stream:_ ~from:_ -> Rp_error "replicas do not ship streams; poll the leader");
    eng_checkpoint = (fun () -> ());
    eng_close = close;
    eng_kill = kill;
  }

(* One write request parked in the batching queue: the connection
   thread sleeps on the mailbox until the writer commits its batch. *)
type wreq = {
  w_op : Trace.op;
  w_mu : Mutex.t;
  w_cv : Condition.t;
  mutable w_result : (Durable.batch_result, exn) result option;
}

type t = {
  cfg : config;
  engine : engine;
  listen_fd : Unix.file_descr;
  sock_path : string option;
  tcp_port : int option;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  stopping : bool Atomic.t;  (* drain requested: no new connections *)
  discard : bool Atomic.t;  (* crash simulation: fail writes, do not apply *)
  mutable shut : bool;  (* stop/kill ran to completion (under c_mu) *)
  (* write queue *)
  q_mu : Mutex.t;
  q_nonempty : Condition.t;
  q_space : Condition.t;
  wq : wreq Queue.t;
  q_bound : int;
  mutable writer_stop : bool;  (* set only after connection threads are gone *)
  (* connection registry *)
  c_mu : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable next_conn_id : int;
  mutable accept_thread : Thread.t option;
  mutable writer_thread : Thread.t option;
  served : int Atomic.t;
}

let port t = t.tcp_port
let ops_served t = Atomic.get t.served

(* --- the group-commit writer --- *)

let deliver w r =
  Mutex.lock w.w_mu;
  w.w_result <- Some r;
  Condition.broadcast w.w_cv;
  Mutex.unlock w.w_mu

let writer_loop t () =
  let continue = ref true in
  while !continue do
    Mutex.lock t.q_mu;
    while Queue.is_empty t.wq && not t.writer_stop do
      Condition.wait t.q_nonempty t.q_mu
    done;
    if Queue.is_empty t.wq then begin
      (* writer_stop and fully drained *)
      Mutex.unlock t.q_mu;
      continue := false
    end
    else begin
      let batch = ref [] and n = ref 0 in
      while (not (Queue.is_empty t.wq)) && !n < t.cfg.max_batch do
        batch := Queue.pop t.wq :: !batch;
        incr n
      done;
      Condition.broadcast t.q_space;
      Mutex.unlock t.q_mu;
      let batch = List.rev !batch in
      if Atomic.get t.discard then List.iter (fun w -> deliver w (Error Killed)) batch
      else begin
        let t0 = Obs.start () in
        let results =
          (* one group commit for the whole batch (per shard, one WAL
             append + one fsync each); a failure fails every request of
             the batch -- none of them was acknowledged *)
          try List.map Result.ok (t.engine.eng_apply_batch (List.map (fun w -> w.w_op) batch))
          with e -> List.map (fun _ -> Error e) batch
        in
        Obs.stop h_flush_ns t0;
        Obs.incr c_batches;
        Obs.observe h_batch_size !n;
        List.iter2 deliver batch results
      end
    end
  done

(* Enqueue one mutation and sleep until its batch commits.
   Backpressure: blocks while the queue is at its bound. *)
let commit_write t op =
  let w = { w_op = op; w_mu = Mutex.create (); w_cv = Condition.create (); w_result = None } in
  Mutex.lock t.q_mu;
  while Queue.length t.wq >= t.q_bound && not t.writer_stop do
    Condition.wait t.q_space t.q_mu
  done;
  if t.writer_stop then begin
    Mutex.unlock t.q_mu;
    Error (Failure "server is shutting down")
  end
  else begin
    Queue.push w t.wq;
    Condition.signal t.q_nonempty;
    Mutex.unlock t.q_mu;
    Mutex.lock w.w_mu;
    while w.w_result = None do
      Condition.wait w.w_cv w.w_mu
    done;
    Mutex.unlock w.w_mu;
    match w.w_result with Some r -> r | None -> assert false
  end

(* --- request dispatch --- *)

let stats_response t =
  Protocol.Stats_of
    (t.engine.eng_stats ()
    @ [
        ("served", Atomic.get t.served);
        ("conns", Obs.gauge_value g_conns);
        ("batches", Obs.value c_batches);
      ])

(* Serve one replication poll as a bounded frame batch, [hb]-terminated.
   Snapshot files ship in bounded [%S]-escaped chunks (escaping expands
   at most 4x, so 32 KiB chunks stay far under the 1 MiB frame bound). *)
let repl_frames t ~stream ~from =
  Obs.incr c_repl_polls;
  match t.engine.eng_repl ~stream ~from with
  | Rp_error reason -> `Reply (Protocol.Err reason)
  | Rp_recs { recs; bound; epoch } ->
    Obs.add c_frames_shipped (List.length recs);
    `Multi
      (List.map (fun (serial, body) -> Protocol.Rec (serial, body)) recs
      @ [ Protocol.Hb { bound; epoch } ])
  | Rp_snapshot { path; serial; bound; epoch } -> (
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error reason -> `Reply (Protocol.Err reason)
    | raw ->
      Obs.incr c_snap_ships;
      let chunk_len = 32768 in
      let chunks = (String.length raw + chunk_len - 1) / chunk_len in
      let frames = ref [ Protocol.Hb { bound; epoch } ] in
      for i = chunks - 1 downto 0 do
        let off = i * chunk_len in
        frames :=
          Protocol.Chunk (String.sub raw off (min chunk_len (String.length raw - off)))
          :: !frames
      done;
      `Multi (Protocol.Snap { serial; chunks } :: !frames))

(* [`Reply] keeps the connection; [`Close] hangs up after the reply.
   Semantic errors on well-formed frames (empty pattern, non-service
   op) reply [err] and keep the connection -- only protocol violations
   kill it. *)
let respond t (req : Protocol.request) =
  match req with
  | Protocol.Ping -> `Reply Protocol.Pong
  | Protocol.Quit -> `Close Protocol.Bye
  | Protocol.Stats -> `Reply (stats_response t)
  | Protocol.Repl { stream; from } -> repl_frames t ~stream ~from
  | Protocol.Op ((Trace.Insert _ | Trace.Delete _) as op) -> (
    Obs.incr c_writes;
    match commit_write t op with
    | Ok (Durable.Br_inserted id) -> `Reply (Protocol.Id id)
    | Ok (Durable.Br_deleted ok) -> `Reply (Protocol.Bool ok)
    | Error e -> `Reply (Protocol.Err (Printexc.to_string e)))
  | Protocol.Op op -> (
    Obs.incr c_queries;
    try
      match op with
      | Trace.Search p -> `Reply (Protocol.Hits (t.engine.eng_search p))
      | Trace.Count p -> `Reply (Protocol.Int (t.engine.eng_count p))
      | Trace.Extract { doc; off; len } -> (
        match t.engine.eng_extract ~doc ~off ~len with
        | Some s -> `Reply (Protocol.Text s)
        | None -> `Reply Protocol.No_text)
      | Trace.Mem id -> `Reply (Protocol.Bool (t.engine.eng_mem id))
      | Trace.Drain -> `Reply (Protocol.Err "drain is not a service operation")
      | Trace.Insert _ | Trace.Delete _ -> assert false
    with Invalid_argument reason -> `Reply (Protocol.Err reason))

(* --- connections --- *)

let unregister t id fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.c_mu;
  Hashtbl.remove t.conns id;
  let open_now = Hashtbl.length t.conns in
  Mutex.unlock t.c_mu;
  Obs.incr c_closed;
  Obs.set_gauge g_conns open_now

let conn_loop t id fd () =
  let r = Protocol.reader ~max_frame:t.cfg.max_frame fd in
  let send resp = Protocol.write_frame fd (Protocol.response_to_string resp) in
  let alive = ref true in
  (try
     while !alive do
       match Protocol.read_frame r with
       | `Eof -> alive := false
       | `Too_long ->
         (* framing is gone; the err frame is best-effort *)
         Obs.incr c_frames_bad;
         (try send (Protocol.Err (Printf.sprintf "frame exceeds max-frame (%d bytes)" t.cfg.max_frame))
          with Unix.Unix_error _ -> ());
         alive := false
       | `Frame line -> (
         Obs.incr c_frames;
         let t0 = Obs.start () in
         match Protocol.parse_request line with
         | Error reason ->
           (* a malformed frame kills the connection, not the server *)
           Obs.incr c_frames_bad;
           (try send (Protocol.Err reason) with Unix.Unix_error _ -> ());
           alive := false
         | Ok req -> (
           match respond t req with
           | `Reply resp ->
             send resp;
             Atomic.incr t.served;
             Obs.stop h_request_ns t0
           | `Multi resps ->
             List.iter send resps;
             Atomic.incr t.served;
             Obs.stop h_request_ns t0
           | `Close resp ->
             (try send resp with Unix.Unix_error _ -> ());
             Atomic.incr t.served;
             alive := false))
     done
   with Unix.Unix_error _ ->
     (* read/write timeout, reset, or our own shutdown during drain *)
     ());
  unregister t id fd

let reject fd =
  Obs.incr c_rejected;
  (try Protocol.write_frame fd (Protocol.response_to_string (Protocol.Err "connection limit reached"))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let continue = ref true in
  while !continue do
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rd, _, _ ->
      if List.mem t.stop_rd rd || Atomic.get t.stopping then continue := false
      else if List.mem t.listen_fd rd then begin
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error _ ->
          (* listener closed under us, or transient (EMFILE): back off *)
          if Atomic.get t.stopping then continue := false else Thread.yield ()
        | fd, _ ->
          if t.cfg.read_timeout > 0. then
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout
             with Unix.Unix_error _ -> ());
          if t.cfg.write_timeout > 0. then
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout
             with Unix.Unix_error _ -> ());
          Mutex.lock t.c_mu;
          let n = Hashtbl.length t.conns in
          if n >= t.cfg.max_conns then begin
            Mutex.unlock t.c_mu;
            reject fd
          end
          else begin
            let id = t.next_conn_id in
            t.next_conn_id <- id + 1;
            Hashtbl.replace t.conns id fd;
            let th = Thread.create (conn_loop t id fd) () in
            t.conn_threads <- th :: t.conn_threads;
            Mutex.unlock t.c_mu;
            Obs.incr c_accepted;
            Obs.set_gauge g_conns (n + 1)
          end
      end
  done

(* --- lifecycle --- *)

let ignore_sigpipe () =
  if not Sys.win32 then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start_engine ?(config = default_config) ~engine listen =
  if config.max_frame < 16 then invalid_arg "Server.start: max_frame < 16";
  if config.max_batch < 1 then invalid_arg "Server.start: max_batch < 1";
  if config.max_conns < 1 then invalid_arg "Server.start: max_conns < 1";
  ignore_sigpipe ();
  let domain, addr, sock_path =
    match listen with
    | `Unix path ->
      (try if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path, Some path)
    | `Tcp (host, p) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, p), None)
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if sock_path = None then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let tcp_port =
    match listen with
    | `Unix _ -> None
    | `Tcp _ -> (
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> Some p
      | Unix.ADDR_UNIX _ -> None)
  in
  let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
  let t =
    {
      cfg = config;
      engine;
      listen_fd;
      sock_path;
      tcp_port;
      stop_rd;
      stop_wr;
      stopping = Atomic.make false;
      discard = Atomic.make false;
      shut = false;
      q_mu = Mutex.create ();
      q_nonempty = Condition.create ();
      q_space = Condition.create ();
      wq = Queue.create ();
      q_bound = max 64 (4 * config.max_batch);
      writer_stop = false;
      c_mu = Mutex.create ();
      conns = Hashtbl.create 64;
      conn_threads = [];
      next_conn_id = 0;
      accept_thread = None;
      writer_thread = None;
      served = Atomic.make 0;
    }
  in
  t.writer_thread <- Some (Thread.create (writer_loop t) ());
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let start ?config ~store listen = start_engine ?config ~engine:(engine_of_store store) listen

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    (* self-pipe wake-up for the accept loop; a single byte suffices
       and this is async-signal-safe enough for a Sys.Signal_handle *)
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let wait t =
  while not (Atomic.get t.stopping) do
    Thread.delay 0.05
  done

(* Tear down sockets and threads; shared by [stop] and [kill]. The
   caller decides what happens to the store afterwards. *)
let teardown t =
  request_stop t;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  (* stop reading from every open connection: in-flight requests finish
     and the threads see EOF instead of waiting out their timeout *)
  Mutex.lock t.c_mu;
  let threads = t.conn_threads in
  t.conn_threads <- [];
  Hashtbl.iter
    (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.c_mu;
  List.iter Thread.join threads;
  (* connection threads are gone: let the writer drain what remains *)
  Mutex.lock t.q_mu;
  t.writer_stop <- true;
  Condition.broadcast t.q_nonempty;
  Condition.broadcast t.q_space;
  Mutex.unlock t.q_mu;
  (match t.writer_thread with Some th -> Thread.join th | None -> ());
  t.writer_thread <- None;
  (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
  try Unix.close t.stop_wr with Unix.Unix_error _ -> ()

let stop t =
  let first =
    Mutex.lock t.c_mu;
    let f = not t.shut in
    t.shut <- true;
    Mutex.unlock t.c_mu;
    f
  in
  if first then begin
    teardown t;
    (* publish + checkpoint: the next open replays nothing *)
    t.engine.eng_checkpoint ();
    t.engine.eng_close ()
  end

let kill t ~torn =
  let first =
    Mutex.lock t.c_mu;
    let f = not t.shut in
    t.shut <- true;
    Mutex.unlock t.c_mu;
    f
  in
  if first then begin
    (* unacknowledged writes die with the crash: the writer fails them
       without touching the WAL *)
    Atomic.set t.discard true;
    teardown t;
    t.engine.eng_kill ~torn
  end
