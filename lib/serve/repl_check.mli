(** Leader/follower differential checking -- the replication entries of
    the check matrix.

    {!convergence} spins up a real cluster in [dir] (leader store +
    {!Server} on an ephemeral TCP port, {!Follower} replica, {!Client}),
    drives a fuzz mutation stream through the wire while mirroring it
    in a {!Dsdg_check.Model}, and at quiesce points (every
    [quiesce_every] mutations, plus once at the end) waits for the
    replica to catch up to the leader's stream positions and verifies
    it against the model -- [Kill_check.verify] for K=1, a sharded
    analogue (census, membership, full-text extraction, sampled
    searches over global ids) for K>1.  Sharded runs also trigger a
    {!Dsdg_shard.Sharded_index.rebalance_hottest} migration at each
    quiesce point so migrate shipping is exercised.

    {!failover_sweep} is the promotion story: at each stride point it
    replays the prefix through a fresh cluster, quiesces (acked writes
    under asynchronous shipping are only guaranteed on the leader's
    disk, so the sweep waits for catch-up before pulling the trigger),
    kills the leader with {!Server.kill} (optionally planting a torn
    final WAL record), promotes the follower via {!Follower.detach},
    verifies every acknowledged write against the model, then drives
    the remaining operations directly on the promoted store and
    verifies again -- promotion must yield a fully functional writer.

    Checks run under [sync = Always] by default: the acked = durable =
    shipped chain is what makes "verify the replica against everything
    the client saw acknowledged" a sound oracle. *)

type outcome = {
  rc_points : int;  (** quiesce points exercised *)
  rc_failures : (int * string) list;
      (** (ops applied before the point, discrepancy); empty = converged *)
}

val outcome_to_string : outcome -> string

(** [convergence ~dir ~ops ()] -- non-mutation ops in [ops] are
    ignored.  [fault] plants a defect in the K=1 {e replica's} index
    (the leader's WAL stays correct either way, so replica-side
    corruption is the only kind this oracle can and must catch -- the
    planted fault is the checker's self-test).  [dir] is wiped
    first. *)
val convergence :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?fault:Dsdg_core.Transform2.fault ->
  ?shards:int ->
  ?sync:Dsdg_store.Wal.sync ->
  ?checkpoint_every:int ->
  ?quiesce_every:int ->
  dir:string ->
  ops:Dsdg_check.Trace.op list ->
  unit ->
  outcome

(** Delta-debug a diverging stream to a near-minimal reproducer: each
    candidate replays a whole fresh cluster, so [max_runs] (default 24)
    keeps the budget sane. *)
val shrink :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?shards:int ->
  ?sync:Dsdg_store.Wal.sync ->
  ?checkpoint_every:int ->
  ?quiesce_every:int ->
  ?max_runs:int ->
  dir:string ->
  Dsdg_check.Trace.op list ->
  Dsdg_check.Trace.op list

(** [failover_sweep ~dir ~ops ()] kills the leader at every [stride]-th
    prefix (plus the empty and full prefixes) and checks promotion;
    [torn] (default true) plants a torn final record in the dying
    leader's WAL.  Returns a {!Dsdg_store.Kill_check.outcome} so it
    reports like the other kill sweeps. *)
val failover_sweep :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?shards:int ->
  ?sync:Dsdg_store.Wal.sync ->
  ?checkpoint_every:int ->
  ?torn:bool ->
  ?stride:int ->
  dir:string ->
  ops:Dsdg_check.Trace.op list ->
  unit ->
  Dsdg_store.Kill_check.outcome
