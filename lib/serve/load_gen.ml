module Text_gen = Dsdg_workload.Text_gen
open Dsdg_obs

type mix = { insert : int; delete : int; search : int; count : int; extract : int }

let default_mix = { insert = 20; delete = 5; search = 50; count = 15; extract = 10 }

type report = {
  clients : int;
  ops : int;
  errors : int;
  elapsed_s : float;
  qps : float;
  writes : int;
  queries : int;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  write_p99_us : float;
}

(* per-session tally, merged after the join *)
type session = {
  lat_ns : int array;  (* latency of op i, 0 = not completed *)
  kind : Bytes.t;  (* 'w' write, 'q' query, '.' failed/skipped *)
  mutable done_ops : int;
  mutable errs : int;
}

type op_kind = K_insert | K_delete | K_search | K_count | K_extract

let pick_op st mix =
  let total = mix.insert + mix.delete + mix.search + mix.count + mix.extract in
  let r = Random.State.int st total in
  if r < mix.insert then K_insert
  else if r < mix.insert + mix.delete then K_delete
  else if r < mix.insert + mix.delete + mix.search then K_search
  else if r < mix.insert + mix.delete + mix.search + mix.count then K_count
  else K_extract

(* Zipf-popular pick among this session's documents: rank 1 (hottest)
   maps to the most recent insert. *)
let pick_doc st ids n = ids.(n - Text_gen.zipf st ~max:n)

let pick_pattern st =
  let w = Text_gen.words in
  w.(Text_gen.zipf st ~max:(Array.length w) - 1)

let session_loop addr ~timeout ~mix ~seed ~index ~ops:n (s : session) barrier =
  let st = Text_gen.rng (seed + (31 * index)) in
  let cli = ref (Client.connect ~timeout addr) in
  (* own inserts, for delete/extract targeting *)
  let ids = Array.make (max 1 n) 0 in
  let n_ids = ref 0 in
  let remember id =
    if !n_ids < Array.length ids then begin
      ids.(!n_ids) <- id;
      incr n_ids
    end
  in
  barrier ();
  for i = 0 to n - 1 do
    let kind = if !n_ids = 0 then K_insert else pick_op st mix in
    let t0 = Obs.now_ns () in
    match
      (match kind with
      | K_insert ->
        let len = Text_gen.zipf st ~max:200 in
        remember (Client.insert !cli (Text_gen.english_like st ~len));
        'w'
      | K_delete ->
        ignore (Client.delete !cli (pick_doc st ids !n_ids));
        'w'
      | K_search ->
        ignore (Client.search !cli (pick_pattern st));
        'q'
      | K_count ->
        ignore (Client.count !cli (pick_pattern st));
        'q'
      | K_extract ->
        let doc = pick_doc st ids !n_ids in
        let off = Random.State.int st 64 and len = 1 + Random.State.int st 16 in
        ignore (Client.extract !cli ~doc ~off ~len);
        'q')
    with
    | k ->
      s.lat_ns.(i) <- Obs.now_ns () - t0;
      Bytes.set s.kind i k;
      s.done_ops <- s.done_ops + 1
    | exception Client.Server_error _ ->
      (* semantic refusal; the connection is still good *)
      s.errs <- s.errs + 1
    | exception (Client.Protocol_error _ | Unix.Unix_error _) ->
      s.errs <- s.errs + 1;
      Client.close !cli;
      (* one redial; a second failure ends the session *)
      (match Client.connect ~timeout addr with
      | c -> cli := c
      | exception (Unix.Unix_error _ as e) ->
        ignore e;
        raise Exit)
  done;
  Client.close !cli

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let idx = min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)) in
    float_of_int sorted.(idx) /. 1e3
  end

let run ?(mix = default_mix) ?(timeout = 30.) addr ~clients ~ops ~seed =
  if clients < 1 then invalid_arg "Load_gen.run: clients < 1";
  if ops < 1 then invalid_arg "Load_gen.run: ops < 1";
  if
    mix.insert < 0 || mix.delete < 0 || mix.search < 0 || mix.count < 0 || mix.extract < 0
    || mix.insert + mix.delete + mix.search + mix.count + mix.extract <= 0
  then invalid_arg "Load_gen.run: mix needs nonnegative weights, at least one positive";
  let per_client i = (ops / clients) + if i < ops mod clients then 1 else 0 in
  let sessions =
    Array.init clients (fun i ->
        let n = per_client i in
        { lat_ns = Array.make n 0; kind = Bytes.make n '.'; done_ops = 0; errs = 0 })
  in
  (* start barrier: connect everywhere first, measure from the release *)
  let mu = Mutex.create () and cv = Condition.create () in
  let ready = ref 0 and go = ref false in
  let t_start = ref 0. in
  let arrived = Array.make clients false in
  let first_exn = ref None in
  let arrive i =
    if not arrived.(i) then begin
      arrived.(i) <- true;
      incr ready;
      Condition.broadcast cv
    end
  in
  let barrier i () =
    Mutex.lock mu;
    arrive i;
    while not !go do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  let threads =
    Array.init clients (fun i ->
        Thread.create
          (fun () ->
            (try
               session_loop addr ~timeout ~mix ~seed ~index:i ~ops:(per_client i) sessions.(i)
                 (barrier i)
             with
            | Exit -> ()
            | e ->
              (* e.g. the very connect failed; count it and remember
                 the reason in case nobody got through at all *)
              sessions.(i).errs <- sessions.(i).errs + 1;
              Mutex.lock mu;
              if !first_exn = None then first_exn := Some e;
              Mutex.unlock mu);
            (* a session that died before the barrier must still check
               in, or the release below waits forever *)
            Mutex.lock mu;
            arrive i;
            Mutex.unlock mu)
          ())
  in
  Mutex.lock mu;
  while !ready < clients do
    Condition.wait cv mu
  done;
  t_start := Unix.gettimeofday ();
  go := true;
  Condition.broadcast cv;
  Mutex.unlock mu;
  Array.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. !t_start in
  let done_ops = Array.fold_left (fun a s -> a + s.done_ops) 0 sessions in
  (* nothing at all got through: surface the underlying failure
     (server unreachable beats a report full of zeros) *)
  if done_ops = 0 then Option.iter raise !first_exn;
  let errors = Array.fold_left (fun a s -> a + s.errs) 0 sessions in
  let all = Array.make done_ops 0 and wlat = ref [] in
  let writes = ref 0 and queries = ref 0 and j = ref 0 in
  Array.iter
    (fun s ->
      Array.iteri
        (fun i l ->
          match Bytes.get s.kind i with
          | 'w' ->
            incr writes;
            wlat := l :: !wlat;
            all.(!j) <- l;
            incr j
          | 'q' ->
            incr queries;
            all.(!j) <- l;
            incr j
          | _ -> ())
        s.lat_ns)
    sessions;
  let all = Array.sub all 0 !j in
  Array.sort compare all;
  let wlat = Array.of_list !wlat in
  Array.sort compare wlat;
  {
    clients;
    ops = done_ops;
    errors;
    elapsed_s;
    qps = (if elapsed_s > 0. then float_of_int done_ops /. elapsed_s else 0.);
    writes = !writes;
    queries = !queries;
    p50_us = percentile all 0.50;
    p90_us = percentile all 0.90;
    p99_us = percentile all 0.99;
    p999_us = percentile all 0.999;
    max_us = (if Array.length all = 0 then 0. else float_of_int all.(Array.length all - 1) /. 1e3);
    write_p99_us = percentile wlat 0.99;
  }

let report_to_string r =
  Printf.sprintf
    "clients=%d ops=%d (w=%d q=%d) errors=%d elapsed=%.3fs qps=%.0f p50=%.0fus p90=%.0fus \
     p99=%.0fus p999=%.0fus max=%.0fus write_p99=%.0fus"
    r.clients r.ops r.writes r.queries r.errors r.elapsed_s r.qps r.p50_us r.p90_us r.p99_us
    r.p999_us r.max_us r.write_p99_us
