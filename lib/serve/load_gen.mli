(** Closed-loop load generator for the service plane: [clients] threads,
    each with its own {!Client} connection and its own deterministic
    rng, firing a weighted operation mix back-to-back and recording
    every operation's latency raw (no histogram bucketing), so the
    report's p999 is exact.

    Document popularity is Zipf-distributed ({!Dsdg_workload.Text_gen.zipf}):
    deletes and extracts prefer a session's recently inserted documents,
    and search/count patterns are Zipf-ranked draws from
    {!Dsdg_workload.Text_gen.words} -- a few hot patterns dominate, the
    tail is long, as in the paper's document-collection workloads. *)

(** Relative operation weights; at least one must be positive. *)
type mix = { insert : int; delete : int; search : int; count : int; extract : int }

(** 20 / 5 / 50 / 15 / 10. *)
val default_mix : mix

type report = {
  clients : int;
  ops : int;  (** operations completed (acknowledged responses) *)
  errors : int;  (** [err] responses + broken-connection incidents *)
  elapsed_s : float;  (** wall clock from the synchronized start barrier *)
  qps : float;
  writes : int;  (** insert + delete among [ops] *)
  queries : int;  (** search + count + extract among [ops] *)
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;  (** exact: computed from the sorted raw latencies *)
  max_us : float;
  write_p99_us : float;  (** p99 over the write ops alone *)
}

(** [run addr ~clients ~ops ~seed] connects [clients] sessions, splits
    [ops] total operations across them, releases them through a start
    barrier and blocks until all finish. Deterministic op sequence per
    ([seed], client index); latencies of course are not. A connection
    that breaks mid-run is counted in [errors] and redialed once. If
    {e no} operation completes at all (e.g. the server is unreachable),
    the underlying exception is re-raised instead of returning a report
    of zeros. Raises [Invalid_argument] on [clients < 1], [ops < 1],
    or a mix with no positive weight. *)
val run :
  ?mix:mix ->
  ?timeout:float ->
  [ `Unix of string | `Tcp of string * int ] ->
  clients:int ->
  ops:int ->
  seed:int ->
  report

(** One-line human rendering of a report. *)
val report_to_string : report -> string
