(** Blocking client for the service plane: one socket, one outstanding
    request at a time. Thread-safe use requires one client per thread
    (the load generator does exactly that).

    Each call writes one request frame and blocks for the one response
    frame. A server-side [err] response raises {!Server_error} (the
    connection stays usable); an unparseable or unexpected response, or
    an EOF mid-request, raises {!Protocol_error} (the connection is
    dead). Socket-level failures escape as [Unix.Unix_error]. *)

type t

(** The server answered [err "reason"]. *)
exception Server_error of string

(** The response stream is broken: unparseable frame, a response shape
    that does not match the request verb, or EOF where a response was
    due. *)
exception Protocol_error of string

(** [connect ?timeout addr] dials a {!Server.listen} address.
    [timeout] (seconds, default [30.]) bounds each socket read and
    write ([0.] = forever). Raises [Unix.Unix_error] on refusal. *)
val connect : ?timeout:float -> ?max_frame:int -> [ `Unix of string | `Tcp of string * int ] -> t

(** [insert t text] -> the new document id. The returned id has been
    group-committed to the WAL under the server's sync policy before
    this call returns. *)
val insert : t -> string -> int

(** [delete t id] -> [true] iff the document existed. Durable on
    return, like {!insert}. *)
val delete : t -> int -> bool

(** [search t pat] -> (doc, offset) pairs, [(-1, -1)] sentinel pairs
    included for tombstoned docs, exactly as
    {!Dsdg_core.Dynamic_index.view_search} reports them. *)
val search : t -> string -> (int * int) list

val count : t -> string -> int
val extract : t -> doc:int -> off:int -> len:int -> string option
val mem : t -> int -> bool

(** Server + index counters, as [key, value] pairs. *)
val stats : t -> (string * int) list

val ping : t -> unit

(** One drained replication poll (see {!repl}). *)
type repl_batch = {
  rb_recs : (int * string) list;  (** shipped records: (position, raw line), in order *)
  rb_snap : (int * string) option;
      (** snapshot bootstrap instead of records: (aligned WAL serial,
          reassembled snapshot file bytes) *)
  rb_bound : int;  (** the stream's shipping bound -- poll from here next *)
  rb_epoch : int;  (** leader-side epoch of the stream at the bound *)
}

(** [repl t ~stream ~from] sends one [repl] poll and drains the whole
    [hb]-terminated reply batch. Raises {!Server_error} on an unknown
    stream or a compacted-away position with no snapshot to ship. *)
val repl : t -> stream:string -> from:int -> repl_batch

(** Send a raw request line and return the raw response line --
    the escape hatch the malformed-frame tests use. *)
val raw : t -> string -> string

(** Polite close: send [quit], await [ok bye], close the socket.
    Idempotent; errors during the farewell are swallowed. *)
val close : t -> unit
