(* Leader/follower differential checking; contracts documented in
   repl_check.mli and DESIGN.md section 14. *)

module Trace = Dsdg_check.Trace
module Model = Dsdg_check.Model
module Runner = Dsdg_check.Runner
module Di = Dsdg_core.Dynamic_index
module Durable = Dsdg_store.Durable
module Kill_check = Dsdg_store.Kill_check
module Sh = Dsdg_shard.Sharded_index

let reset_dir = Kill_check.reset_dir

(* --- the sharded differential verifier (global-id surface) --- *)

(* The sharded analogue of [Kill_check.verify]: census, membership and
   full-text extraction of every live document, dead-id checks, sampled
   searches -- against the model, in global ids. *)
let verify_sharded ~label sh (model : Model.t) ~inserts =
  let errs = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> errs := Printf.sprintf "%s: %s" label m :: !errs) fmt in
  if Sh.doc_count sh <> Model.doc_count model then
    fail "doc_count %d, model %d" (Sh.doc_count sh) (Model.doc_count model);
  if Sh.total_symbols sh <> Model.total_symbols model then
    fail "total_symbols %d, model %d" (Sh.total_symbols sh) (Model.total_symbols model);
  for id = 0 to inserts - 1 do
    let want = Model.mem model id in
    if Sh.mem sh id <> want then fail "mem %d: %b, model %b" id (Sh.mem sh id) want
  done;
  let live = Model.live model in
  List.iteri
    (fun i (id, text) ->
      let len = String.length text in
      (match Sh.extract sh ~doc:id ~off:0 ~len with
      | Some got when got = text -> ()
      | Some got -> fail "extract %d: %S, model %S" id got text
      | None -> fail "extract %d: none, model %S" id text);
      (* sampled searches: a short pattern from every 7th live doc *)
      if i mod 7 = 0 && len >= 2 then begin
        let p = String.sub text 0 (min 3 len) in
        let got = Sh.search sh p and want = Model.search model p in
        if got <> want then
          fail "search %S: %d hits, model %d" p (List.length got) (List.length want)
      end)
    live;
  List.rev !errs

(* --- harness plumbing --- *)

type cluster = {
  cl_server : Server.t;
  cl_leader : [ `Single of Durable.t | `Sharded of Sh.t ];
  cl_follower : Follower.t;
  cl_client : Client.t;
}

let leader_config ~sync ~checkpoint_every =
  { Durable.default_config with Durable.sync; checkpoint_every }

(* Spin up leader server + follower + client on an ephemeral TCP port.
   The leader handle stays visible so quiesce detection can compare
   serials directly instead of guessing from op counts. *)
let start_cluster ?variant ?backend ?sample ?tau ?seq_backend ?fault ~shards ~sync
    ~checkpoint_every ~dir () =
  let lead_dir = Filename.concat dir "leader" and repl_dir = Filename.concat dir "replica" in
  let config = leader_config ~sync ~checkpoint_every in
  let leader, engine =
    if shards <= 1 then begin
      let st, _ =
        Durable.open_ ~config ?variant ?backend ?sample ?tau ?seq_backend ~dir:lead_dir ()
      in
      (`Single st, Server.engine_of_store st)
    end
    else begin
      let sh, _ =
        Sh.open_store ~config ?variant ?backend ?sample ?tau ?seq_backend ~shards ~dir:lead_dir
          ()
      in
      (`Sharded sh, Server.engine_of_sharded sh)
    end
  in
  let server = Server.start_engine ~engine (`Tcp ("127.0.0.1", 0)) in
  let port = match Server.port server with Some p -> p | None -> assert false in
  let addr = `Tcp ("127.0.0.1", port) in
  (* a planted fault lands in the REPLICA's index: the leader's WAL
     stays correct, so only replica-side corruption is detectable by a
     replica-vs-model oracle -- that is exactly what the self-test
     needs to prove the oracle has teeth *)
  let follower =
    Follower.start ~config:Durable.default_config ?variant ?backend ?sample ?tau ?fault
      ?seq_backend ~poll:0.002 ~leader:addr ~dir:repl_dir ()
  in
  let client = Client.connect addr in
  { cl_server = server; cl_leader = leader; cl_follower = follower; cl_client = client }

(* Caught up = every leader stream position is fully applied AND
   published on the replica (the follower's watermark, not the replica
   store's raw WAL serials -- those advance before the index apply
   finishes, so comparing them would let verification race a batch
   apply) and no placement is waiting for its shard record. *)
let caught_up c =
  let wm = Follower.watermark c.cl_follower in
  match c.cl_leader with
  | `Single lead -> wm = [| Durable.wal_serial lead |]
  | `Sharded lead ->
    wm = Array.append (Sh.wal_serials lead) [| Sh.meta_records lead |]
    && (match Follower.replica c.cl_follower with
       | Follower.R_sharded repl -> Array.for_all (( = ) 0) (Sh.replica_pending repl)
       | Follower.R_single _ -> false)

let wait_catchup ?(timeout = 30.) c =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if caught_up c then true
    else if Follower.error c.cl_follower <> None then false
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* Drive one mutation through the wire, mirroring it in the model; a
   leader/model id or ack disagreement is itself a failure. *)
let send_op c model op =
  match op with
  | Trace.Insert text ->
    let got = Client.insert c.cl_client text and want = Model.insert model text in
    if got <> want then Some (Printf.sprintf "insert acked id %d, model %d" got want) else None
  | Trace.Delete id ->
    let got = Client.delete c.cl_client id and want = Model.delete model id in
    if got <> want then Some (Printf.sprintf "delete %d acked %b, model %b" id got want)
    else None
  | _ -> None

let mutations ops =
  List.filter (function Trace.Insert _ | Trace.Delete _ -> true | _ -> false) ops

let verify_replica ~label c model ~inserts =
  match Follower.replica c.cl_follower with
  | Follower.R_single st ->
    let idx = Durable.index st in
    (* content vs model, plus the Dietz-Sleator cleaning-schedule
       invariant -- the probe that catches a replayed [`Skip_top_clean]
       fault, which never corrupts query answers, only the bound *)
    Kill_check.verify ~label idx model ~inserts
    @ (match (Di.probe idx).Di.pr_clean with
      | Some (counter, period) when counter > 2 * period ->
        [
          Printf.sprintf
            "%s: Dietz-Sleator cleaning fell behind on the replica: %d deleted symbols since \
             dispatch > 2 * delta = %d"
            label counter (2 * period);
        ]
      | _ -> [])
  | Follower.R_sharded sh -> verify_sharded ~label sh model ~inserts

(* --- convergence --- *)

type outcome = { rc_points : int; rc_failures : (int * string) list }

let outcome_to_string o =
  if o.rc_failures = [] then Printf.sprintf "converged at all %d quiesce points" o.rc_points
  else
    Printf.sprintf "%d/%d quiesce points diverged: %s" (List.length o.rc_failures) o.rc_points
      (String.concat "; "
         (List.map (fun (p, m) -> Printf.sprintf "[after %d ops] %s" p m) o.rc_failures))

let convergence ?variant ?backend ?sample ?tau ?seq_backend ?fault ?(shards = 1)
    ?(sync = Dsdg_store.Wal.Always) ?(checkpoint_every = 0) ?(quiesce_every = 16) ~dir ~ops ()
    =
  reset_dir dir;
  let ops = mutations ops in
  let c =
    start_cluster ?variant ?backend ?sample ?tau ?seq_backend ?fault ~shards ~sync
      ~checkpoint_every ~dir ()
  in
  let model = Model.create () in
  let inserts = ref 0 in
  let points = ref 0 in
  let failures = ref [] in
  let record step msg = failures := (step, msg) :: !failures in
  let quiesce step =
    incr points;
    (* exercise migration shipping: the client is idle here, so the
       test thread is the only writer and may rebalance directly *)
    (match c.cl_leader with
    | `Sharded sh when step > 0 && !failures = [] -> ignore (Sh.rebalance_hottest sh)
    | _ -> ());
    if not (wait_catchup c) then
      record step
        (match Follower.error c.cl_follower with
        | Some e -> "follower error: " ^ e
        | None -> "follower failed to catch up")
    else
      List.iter (record step)
        (verify_replica ~label:(Printf.sprintf "quiesce@%d" step) c model ~inserts:!inserts)
  in
  let step = ref 0 in
  (try
     List.iter
       (fun op ->
         if !failures = [] then begin
           (match op with Trace.Insert _ -> incr inserts | _ -> ());
           (match send_op c model op with Some m -> record !step m | None -> ());
           incr step;
           if !step mod quiesce_every = 0 then quiesce !step
         end)
       ops;
     if !failures = [] then quiesce !step
   with e -> record !step ("harness: " ^ Printexc.to_string e));
  (try Client.close c.cl_client with _ -> ());
  (try Follower.stop c.cl_follower with _ -> ());
  (try Server.stop c.cl_server with _ -> ());
  { rc_points = !points; rc_failures = List.rev !failures }

(* Delta-debug a diverging stream (K=1 keeps runtime sane): the failing
   predicate replays the whole cluster per candidate. *)
let shrink ?variant ?backend ?sample ?tau ?seq_backend ?shards ?sync ?checkpoint_every
    ?quiesce_every ?(max_runs = 24) ~dir ops =
  Runner.shrink_ops ~max_runs
    ~fails:(fun candidate ->
      let o =
        convergence ?variant ?backend ?sample ?tau ?seq_backend ?shards ?sync ?checkpoint_every
          ?quiesce_every ~dir ~ops:candidate ()
      in
      o.rc_failures <> [])
    ops

(* --- failover --- *)

(* Kill the leader at each stride point (after quiescing, so acked =
   shipped), promote the follower, and verify every acknowledged write
   -- then drive the remaining ops on the promoted store and re-verify,
   so promotion leaves a fully functional writer. *)
let failover_sweep ?variant ?backend ?sample ?tau ?seq_backend ?(shards = 1)
    ?(sync = Dsdg_store.Wal.Always) ?(checkpoint_every = 0) ?(torn = true) ?(stride = 8) ~dir
    ~ops () =
  let ops = mutations ops in
  let n = List.length ops in
  let points = ref 0 and failures = ref [] in
  let point p =
    incr points;
    reset_dir dir;
    let c =
      start_cluster ?variant ?backend ?sample ?tau ?seq_backend ~shards ~sync ~checkpoint_every
        ~dir ()
    in
    let model = Model.create () in
    let inserts = ref 0 in
    let errs = ref [] in
    (try
       List.iteri
         (fun i op ->
           if i < p && !errs = [] then begin
             (match op with Trace.Insert _ -> incr inserts | _ -> ());
             match send_op c model op with Some m -> errs := [ m ] | None -> ()
           end)
         ops;
       if !errs = [] && not (wait_catchup c) then
         errs :=
           [
             (match Follower.error c.cl_follower with
             | Some e -> "follower error: " ^ e
             | None -> "follower failed to catch up before the kill");
           ];
       (* the crash: no drain, no farewell *)
       Server.kill c.cl_server ~torn;
       (try Client.close c.cl_client with _ -> ());
       if !errs = [] then begin
         let promoted = Follower.detach c.cl_follower in
         let label = Printf.sprintf "promote@%d" p in
         (match promoted with
         | Follower.R_single st ->
           errs := Kill_check.verify ~label (Durable.index st) model ~inserts:!inserts;
           (* continuation: the promoted replica is the writer now *)
           if !errs = [] then begin
             List.iteri
               (fun i op ->
                 if i >= p then
                   match op with
                   | Trace.Insert text ->
                     incr inserts;
                     let got = Durable.insert st text and want = Model.insert model text in
                     if got <> want then
                       errs := [ Printf.sprintf "continuation insert %d, model %d" got want ]
                   | Trace.Delete id ->
                     let got = Durable.delete st id and want = Model.delete model id in
                     if got <> want then
                       errs := [ Printf.sprintf "continuation delete %d: %b/%b" id got want ]
                   | _ -> ())
               ops;
             if !errs = [] then
               errs :=
                 Kill_check.verify ~label:(label ^ "+cont") (Durable.index st) model
                   ~inserts:!inserts
           end;
           Durable.close st
         | Follower.R_sharded sh ->
           errs := verify_sharded ~label sh model ~inserts:!inserts;
           if !errs = [] then begin
             List.iteri
               (fun i op ->
                 if i >= p then
                   match op with
                   | Trace.Insert text ->
                     incr inserts;
                     let got = Sh.insert sh text and want = Model.insert model text in
                     if got <> want then
                       errs := [ Printf.sprintf "continuation insert %d, model %d" got want ]
                   | Trace.Delete id ->
                     let got = Sh.delete sh id and want = Model.delete model id in
                     if got <> want then
                       errs := [ Printf.sprintf "continuation delete %d: %b/%b" id got want ]
                   | _ -> ())
               ops;
             if !errs = [] then
               errs := verify_sharded ~label:(label ^ "+cont") sh model ~inserts:!inserts
           end;
           Sh.close sh)
       end
       else begin
         (try Follower.stop c.cl_follower with _ -> ())
       end
     with e -> errs := [ "harness: " ^ Printexc.to_string e ]);
    List.iter
      (fun detail ->
        failures := { Kill_check.kf_point = p; kf_detail = detail } :: !failures)
      !errs
  in
  let p = ref 0 in
  while !p < n do
    point !p;
    p := !p + max 1 stride
  done;
  point n;
  { Kill_check.kc_points = !points; kc_failures = List.rev !failures }
