(** The network service plane: a socket server in front of a durable
    {!Dsdg_core.Dynamic_index}.

    One thread per connection parses {!Protocol} frames. Queries run
    against the latest epoch-published view -- dispatched to the
    reader-domain pool when the index was opened with [readers >= 1],
    wait-free inline otherwise -- so they never contend with writes.
    Mutations are funneled through a batching queue to a single writer
    thread that drains up to [max_batch] pending requests at a time and
    commits them as a group: one {!Dsdg_store.Wal.append_batch} (one
    fsync under [Always]) covers the whole batch before any client sees
    an acknowledgment, amortizing the dominant fsync cost across
    concurrent writers without weakening durability.

    Robustness: per-connection read/write timeouts ([SO_RCVTIMEO] /
    [SO_SNDTIMEO]), a frame-size bound, a connection cap, and a bound
    on the write queue (backpressure: a connection thread blocks in
    [enqueue] until the writer drains). A malformed or overlong frame
    gets an [err] response and its connection closed; the server keeps
    serving everyone else. {!stop} is the graceful drain: close the
    listener, shut down connection receive sides, finish in-flight
    requests, flush the write queue, checkpoint, close the store.

    Observability lands in the registered scope ["serve"]:
    [conns_accepted/_rejected/_closed], [frames], [frames_bad],
    [queries], [writes], [batches], [conns_open] gauge, and
    [batch_size] / [flush_ns] (group-commit WAL latency) /
    [request_ns] histograms. *)

type config = {
  max_frame : int;  (** request/response frame size bound, bytes (default 1 MiB) *)
  max_batch : int;  (** writes per group commit; [1] = per-op fsync (default 256) *)
  max_conns : int;  (** concurrent connections before accepts are rejected (default 1024) *)
  read_timeout : float;  (** seconds a connection may sit idle mid-read; [0.] = forever *)
  write_timeout : float;  (** seconds a response write may block; [0.] = forever *)
}

val default_config : config

(** Where to listen. [`Tcp (host, 0)] picks an ephemeral port --
    read it back with {!port}. *)
type listen = [ `Unix of string | `Tcp of string * int ]

type t

(** What the server fronts: batch apply for the writer thread,
    view-plane queries, a stats snapshot, lifecycle. Build one with
    {!engine_of_store} or {!engine_of_sharded}. *)
type engine

(** A plain single-index durable store. *)
val engine_of_store : Dsdg_store.Durable.t -> engine

(** A sharded store: the writer thread fans each drained batch across
    the shard WALs through {!Dsdg_shard.Sharded_index.apply_batch} --
    placements group-committed to the meta log first, then one WAL
    append + fsync per shard -- and queries scatter-gather across the
    shard views. *)
val engine_of_sharded : Dsdg_shard.Sharded_index.t -> engine

(** Raised by a read-only engine's write path; registered to print as
    its payload, so the wire carries exactly the redirect message. *)
exception Redirect of string

(** A read-only replica engine ({!Follower} builds one): queries and
    stats serve locally, every mutation is refused with {!Redirect}
    [redirect] (name the leader's address in it), [repl] polls are
    refused (replicas do not ship streams), checkpoint is a no-op --
    the tail thread owns the store's write plane -- and [close]/[kill]
    are the caller's teardown hooks. *)
val engine_readonly :
  describe:string ->
  search:(string -> (int * int) list) ->
  count:(string -> int) ->
  extract:(doc:int -> off:int -> len:int -> string option) ->
  mem:(int -> bool) ->
  stats:(unit -> (string * int) list) ->
  redirect:string ->
  close:(unit -> unit) ->
  kill:(torn:bool -> unit) ->
  engine

(** [start ~config ~store listen] binds, spawns the accept loop and the
    group-commit writer, and returns immediately. The server owns
    [store] from here on: {!stop} checkpoints and closes it. Raises
    [Unix.Unix_error] if the address cannot be bound. *)
val start : ?config:config -> store:Dsdg_store.Durable.t -> listen -> t

(** Generalized {!start} over any {!engine} (sharded stores via
    {!engine_of_sharded}); [start ~store] is
    [start_engine ~engine:(engine_of_store store)]. *)
val start_engine : ?config:config -> engine:engine -> listen -> t

(** The bound TCP port ([None] for Unix-socket servers). *)
val port : t -> int option

(** Ask the server to begin shutting down without waiting for it --
    safe to call from a signal handler ({!stop} and {!wait} pick it
    up). Idempotent. *)
val request_stop : t -> unit

(** Block until {!request_stop} has been called (by a signal handler or
    another thread), without performing the shutdown. *)
val wait : t -> unit

(** Graceful drain, synchronous: {!request_stop}, close the listener,
    stop reading from open connections, join every connection thread,
    flush the write queue through a final group commit, checkpoint the
    store and close it. Idempotent. *)
val stop : t -> unit

(** Crash simulation for the kill-and-recover harness: abandon the
    sockets and the store with no drain, no checkpoint, no final fsync
    ({!Dsdg_store.Durable.kill}); [torn] plants a half-written final
    WAL record. Every mutation acknowledged to a client before the
    kill must survive {!Dsdg_store.Recovery.open_or_recover} -- the
    group-commit guarantee the server-path kill test pins down. *)
val kill : t -> torn:bool -> unit

(** Lifetime op count (successfully answered request frames). *)
val ops_served : t -> int
