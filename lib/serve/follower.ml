(* WAL-shipped read replica: bootstrap, tail, reconnect, promote.
   Contracts documented in follower.mli and DESIGN.md section 14. *)

module Trace = Dsdg_check.Trace
module Di = Dsdg_core.Dynamic_index
module Durable = Dsdg_store.Durable
module Recovery = Dsdg_store.Recovery
module Snapshot = Dsdg_store.Snapshot
module Sh = Dsdg_shard.Sharded_index
open Dsdg_obs

(* Replay-side half of the shared "repl" scope (the leader's shipping
   counters live in server.ml). *)
let obs = Obs.scope "repl"
let c_replayed = Obs.counter obs "frames_replayed"
let c_reconnects = Obs.counter obs "reconnects"
let c_snap_boots = Obs.counter obs "snapshot_bootstraps"
let g_lag_serials = Obs.gauge obs "lag_serials"
let g_lag_epochs = Obs.gauge obs "lag_epochs"

type replica = R_single of Durable.t | R_sharded of Sh.t

type lag = {
  lg_serials : int;  (** stream records shipped by the leader but not yet applied *)
  lg_epochs : int;  (** leader composite epoch minus replica composite epoch *)
  lg_applied : int;  (** records replayed over this follower's lifetime *)
  lg_connected : bool;
}

type t = {
  f_leader : [ `Unix of string | `Tcp of string * int ];
  f_leader_name : string;
  f_dir : string;
  f_poll : float;
  f_stop : bool Atomic.t;
  mutable f_replica : replica;  (* replaced only by the tail thread (re-seed) *)
  (* reopen the single-store replica with the original open parameters
     (None for sharded replicas: those re-seed from pinned backups) *)
  f_reopen : (unit -> Durable.t) option;
  (* sharded only: shipped-but-unapplied records per shard, queued when
     a record's cross-shard prerequisite has not arrived yet *)
  f_squeues : Trace.op Queue.t array;
  (* stream positions fully applied AND published to the read plane
     (set by the tail thread after each cycle; the store's own WAL
     serial advances before the index apply, so it overshoots) *)
  f_watermark : int array Atomic.t;
  f_applied : int Atomic.t;
  f_lag_serials : int Atomic.t;
  f_lag_epochs : int Atomic.t;
  f_connected : bool Atomic.t;
  f_mu : Mutex.t;
  mutable f_error : string option;
  mutable f_thread : Thread.t option;
}

let leader_name = function
  | `Unix path -> path
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let fatal t reason =
  Mutex.lock t.f_mu;
  if t.f_error = None then t.f_error <- Some reason;
  Mutex.unlock t.f_mu

let error t =
  Mutex.lock t.f_mu;
  let e = t.f_error in
  Mutex.unlock t.f_mu;
  e

(* --- connecting --- *)

(* Dial the leader, backing off 0.2s doubling to 5s. [attempts = 0]
   retries until [f_stop]. *)
let rec connect_backoff ?(delay = 0.2) ~stop ~attempts addr =
  if Atomic.get stop then None
  else
    match Client.connect ~timeout:10. addr with
    | cl -> Some cl
    | exception Unix.Unix_error _ ->
      if attempts = 1 then None
      else begin
        Thread.delay delay;
        connect_backoff
          ~delay:(Float.min 5.0 (delay *. 2.))
          ~stop
          ~attempts:(max 0 (attempts - 1))
          addr
      end

(* --- applying one poll cycle --- *)

let parse_shipped line =
  match Trace.parse_op line with
  | Ok op -> op
  | Error reason -> failwith (Printf.sprintf "unparseable shipped record %S: %s" line reason)

let current_watermark = function
  | R_single st -> [| Durable.wal_serial st |]
  | R_sharded sh -> Array.append (Sh.wal_serials sh) [| Sh.meta_records sh |]

let check_continuity ~stream ~expect recs =
  List.iteri
    (fun i (serial, _) ->
      if serial <> expect + i then
        failwith
          (Printf.sprintf "stream %s: expected serial %d, leader shipped %d" stream (expect + i)
             serial))
    recs

(* The replica fell behind the leader's checkpoint compaction: the gap
   is gone from the leader's WAL, but the reply carried a full snapshot
   covering it.  Rebuild the replica from that snapshot -- close, wipe
   the local WAL + snapshots, install the shipped one, reopen -- and
   resume tailing from its serial.  Exactly the fresh-bootstrap path,
   applied mid-life. *)
let reseed_single t st ~serial ~bytes =
  let reopen =
    match t.f_reopen with Some r -> r | None -> assert false (* single stores only *)
  in
  Durable.close st;
  let dir = t.f_dir in
  List.iter
    (fun (p, _) -> try Sys.remove p with Sys_error _ -> ())
    (Snapshot.list ~dir);
  let wal = Recovery.wal_path ~dir in
  List.iter
    (fun (p, _) -> try Sys.remove p with Sys_error _ -> ())
    (Dsdg_store.Wal.archives wal);
  if Sys.file_exists wal then Sys.remove wal;
  Snapshot.ensure_dir dir;
  let path = Snapshot.path_for ~dir ~wal_serial:serial in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
  Obs.incr c_snap_boots;
  let st' = reopen () in
  Mutex.lock t.f_mu;
  t.f_replica <- R_single st';
  Mutex.unlock t.f_mu;
  Atomic.set t.f_watermark (current_watermark (R_single st'))

(* One poll of a single-store leader: fetch the WAL tail from the local
   serial, apply it as one group-committed batch.  Returns the number
   of records applied. *)
let cycle_single t st cl =
  let from = Durable.wal_serial st in
  let rb = Client.repl cl ~stream:"wal" ~from in
  match rb.Client.rb_snap with
  | Some (serial, bytes) ->
    reseed_single t st ~serial ~bytes;
    1 (* progress: next cycle resumes from the snapshot's serial *)
  | None ->
  check_continuity ~stream:"wal" ~expect:from rb.Client.rb_recs;
  Obs.set_gauge g_lag_serials (rb.Client.rb_bound - from);
  Atomic.set t.f_lag_serials (rb.Client.rb_bound - from);
  let ops = List.map (fun (_, line) -> parse_shipped line) rb.Client.rb_recs in
  let n = List.length ops in
  if n > 0 then begin
    ignore (Durable.apply_batch st ops);
    Obs.add c_replayed n;
    ignore (Atomic.fetch_and_add t.f_applied n)
  end;
  let local_epoch = Di.view_epoch (Di.view (Durable.index st)) in
  Atomic.set t.f_lag_epochs (rb.Client.rb_epoch - local_epoch);
  Obs.set_gauge g_lag_epochs (max 0 (rb.Client.rb_epoch - local_epoch));
  Atomic.set t.f_watermark [| Durable.wal_serial st |];
  n

(* One poll of a sharded leader.  Order matters: the shard streams are
   polled (and buffered) BEFORE the meta stream, so every shard record
   collected here became durable before the meta bound we then read --
   its placement event is inside the meta batch.

   Applying is a fixpoint over per-shard queues, not a single pass:
   each shard's records replay strictly in serial order, but a record
   whose cross-shard prerequisite is missing (a migration copy whose
   original insert rides another stream -- or rides a later poll: the
   streams are polled at slightly different instants) parks at its
   queue head until progress elsewhere unblocks it.  Prerequisites
   follow the leader's temporal order, so the dependency graph is
   acyclic and the drain cannot livelock; what the fixpoint leaves
   queued is replayed by a later cycle once the missing records ship. *)
let cycle_sharded t sh cl =
  let k = Sh.shards sh in
  let stores =
    match Sh.backing_stores sh with
    | Some s -> s
    | None -> failwith "sharded replica has no backing stores"
  in
  (* next wanted serial = applied position + records already queued *)
  let shard_from =
    Array.init k (fun s -> Durable.wal_serial stores.(s) + Queue.length t.f_squeues.(s))
  in
  let shard_rb =
    Array.init k (fun s ->
        let rb = Client.repl cl ~stream:(Printf.sprintf "wal%d" s) ~from:shard_from.(s) in
        if rb.Client.rb_snap <> None then
          failwith "replica fell behind leader compaction; re-seed it from a pinned backup";
        check_continuity ~stream:(Printf.sprintf "wal%d" s) ~expect:shard_from.(s)
          rb.Client.rb_recs;
        rb)
  in
  let meta_from = Sh.meta_records sh in
  let meta_rb = Client.repl cl ~stream:"meta" ~from:meta_from in
  check_continuity ~stream:"meta" ~expect:meta_from meta_rb.Client.rb_recs;
  (* lag before applying: shipped-but-unapplied records this instant *)
  let pending =
    Array.fold_left ( + ) 0
      (Array.mapi (fun s rb -> rb.Client.rb_bound - Durable.wal_serial stores.(s)) shard_rb)
  in
  Atomic.set t.f_lag_serials pending;
  Obs.set_gauge g_lag_serials pending;
  (* placements first, then drain the record queues to a fixpoint *)
  List.iter (fun (_, line) -> Sh.replica_meta sh line) meta_rb.Client.rb_recs;
  Array.iteri
    (fun s rb ->
      List.iter (fun (_, line) -> Queue.add (parse_shipped line) t.f_squeues.(s)) rb.Client.rb_recs)
    shard_rb;
  let n = ref (List.length meta_rb.Client.rb_recs) in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun s q ->
        let blocked = ref false in
        while (not !blocked) && not (Queue.is_empty q) do
          if Sh.replica_op sh ~shard:s (Queue.peek q) then begin
            ignore (Queue.pop q);
            incr n;
            progress := true
          end
          else blocked := true
        done)
      t.f_squeues
  done;
  if !n > 0 then begin
    Obs.add c_replayed !n;
    ignore (Atomic.fetch_and_add t.f_applied !n)
  end;
  let leader_epoch =
    Array.fold_left (fun acc rb -> acc + rb.Client.rb_epoch) meta_rb.Client.rb_epoch shard_rb
  in
  let local_epoch = Array.fold_left ( + ) 0 (Sh.epoch_vector sh) in
  Atomic.set t.f_lag_epochs (leader_epoch - local_epoch);
  Obs.set_gauge g_lag_epochs (max 0 (leader_epoch - local_epoch));
  Atomic.set t.f_watermark (current_watermark (R_sharded sh));
  !n

let cycle t cl =
  match t.f_replica with R_single st -> cycle_single t st cl | R_sharded sh -> cycle_sharded t sh cl

(* --- the tail loop --- *)

let loop t () =
  let cl = ref None in
  let disconnect c =
    (try Client.close c with Unix.Unix_error _ | Client.Protocol_error _ -> ());
    cl := None;
    Atomic.set t.f_connected false
  in
  while (not (Atomic.get t.f_stop)) && error t = None do
    match !cl with
    | None -> (
      match connect_backoff ~stop:t.f_stop ~attempts:0 t.f_leader with
      | None -> ()
      | Some c ->
        cl := Some c;
        Atomic.set t.f_connected true)
    | Some c -> (
      match cycle t c with
      | 0 -> Thread.delay t.f_poll
      | _ -> ()
      | exception Client.Server_error reason ->
        (* the leader refused the stream: configuration, not transport *)
        fatal t reason
      | exception Failure reason -> fatal t reason
      | exception (Unix.Unix_error _ | Client.Protocol_error _) ->
        disconnect c;
        Obs.incr c_reconnects)
  done;
  match !cl with Some c -> disconnect c | None -> ()

(* --- bootstrap + lifecycle --- *)

let fresh_dir dir =
  (not (Sys.file_exists dir))
  || ((not (Sys.file_exists (Recovery.wal_path ~dir))) && Snapshot.list ~dir = [])

let start ?(config = Durable.default_config) ?variant ?backend ?sample ?tau ?fault ?jobs
    ?readers ?seq_backend ?retain_epochs ?(poll = 0.02) ?(connect_attempts = 25) ~leader ~dir
    () =
  let cl =
    match connect_backoff ~stop:(Atomic.make false) ~attempts:connect_attempts leader with
    | Some cl -> cl
    | None -> failwith (Printf.sprintf "cannot reach leader at %s" (leader_name leader))
  in
  let reopen () =
    fst
      (Durable.open_ ~config ?variant ?backend ?sample ?tau ?fault ?jobs ?readers ?seq_backend
         ?retain_epochs ~dir ())
  in
  let replica, reopen_opt =
    Fun.protect
      ~finally:(fun () -> Client.close cl)
      (fun () ->
        let shards =
          match List.assoc_opt "shards" (Client.stats cl) with
          | Some k when k > 1 -> Some k
          | _ -> None
        in
        match shards with
        | None ->
          (* single store.  A fresh replica asks from 0; if the leader
             already compacted, the reply is a snapshot bootstrap:
             install it and let recovery start at its serial. *)
          if fresh_dir dir then begin
            let rb = Client.repl cl ~stream:"wal" ~from:0 in
            match rb.Client.rb_snap with
            | Some (serial, bytes) ->
              Snapshot.ensure_dir dir;
              let path = Snapshot.path_for ~dir ~wal_serial:serial in
              Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes);
              Obs.incr c_snap_boots
            | None -> ()
          end;
          (R_single (reopen ()), Some reopen)
        | Some k ->
          (* sharded: open (or create) the replica layout; a directory
             seeded from a pinned backup recovers to the pinned prefix
             and the streams resume from the recovered serials *)
          ignore fault;
          (* Transform2 fault planting is a single-index knob *)
          let sh, _infos =
            Sh.open_store ~config ?variant ?backend ?sample ?tau ?jobs ?readers ?seq_backend
              ?retain_epochs ~shards:k ~dir ()
          in
          (R_sharded sh, None))
  in
  let t =
    {
      f_leader = leader;
      f_leader_name = leader_name leader;
      f_dir = dir;
      f_poll = Float.max 0.001 poll;
      f_stop = Atomic.make false;
      f_replica = replica;
      f_reopen = reopen_opt;
      f_squeues =
        (match replica with
        | R_single _ -> [||]
        | R_sharded sh -> Array.init (Sh.shards sh) (fun _ -> Queue.create ()));
      f_watermark = Atomic.make (current_watermark replica);
      f_applied = Atomic.make 0;
      f_lag_serials = Atomic.make 0;
      f_lag_epochs = Atomic.make 0;
      f_connected = Atomic.make false;
      f_mu = Mutex.create ();
      f_error = None;
      f_thread = None;
    }
  in
  t.f_thread <- Some (Thread.create (loop t) ());
  t

let dir t = t.f_dir

(* Current replica handle; a single-store follower may swap it when it
   re-seeds after falling behind leader compaction, so read it fresh
   rather than caching it across polls. *)
let replica t =
  Mutex.lock t.f_mu;
  let r = t.f_replica in
  Mutex.unlock t.f_mu;
  r

let watermark t = Atomic.get t.f_watermark

let lag t =
  {
    lg_serials = Atomic.get t.f_lag_serials;
    lg_epochs = Atomic.get t.f_lag_epochs;
    lg_applied = Atomic.get t.f_applied;
    lg_connected = Atomic.get t.f_connected;
  }

let join_tail t =
  Atomic.set t.f_stop true;
  (match t.f_thread with Some th -> Thread.join th | None -> ());
  t.f_thread <- None

let detach t =
  join_tail t;
  t.f_replica

let stop t =
  join_tail t;
  match t.f_replica with R_single st -> Durable.close st | R_sharded sh -> Sh.close sh

let kill t ~torn =
  join_tail t;
  match t.f_replica with R_single st -> Durable.kill st ~torn | R_sharded sh -> Sh.kill sh ~torn

(* --- serving the replica --- *)

let engine t =
  let redirect =
    Printf.sprintf "read-only replica; the leader is %s" t.f_leader_name
  in
  let lag_stats () =
    let l = lag t in
    [
      ("lag_serials", l.lg_serials);
      ("lag_epochs", l.lg_epochs);
      ("replayed", l.lg_applied);
      ("connected", if l.lg_connected then 1 else 0);
    ]
  in
  (* every closure re-resolves the replica: a re-seed swaps the store
     handle out from under a serving engine *)
  let describe =
    match replica t with
    | R_single st ->
      Printf.sprintf "replica of %s: %s" t.f_leader_name (Di.describe (Durable.index st))
    | R_sharded sh -> Printf.sprintf "replica of %s: %s" t.f_leader_name (Sh.describe sh)
  in
  Server.engine_readonly ~describe
    ~search:(fun p ->
      match replica t with
      | R_single st ->
        let idx = Durable.index st in
        Di.query idx (fun v -> Di.view_search v p)
      | R_sharded sh -> Sh.search sh p)
    ~count:(fun p ->
      match replica t with
      | R_single st ->
        let idx = Durable.index st in
        Di.query idx (fun v -> Di.view_count v p)
      | R_sharded sh -> Sh.count sh p)
    ~extract:(fun ~doc ~off ~len ->
      match replica t with
      | R_single st ->
        let idx = Durable.index st in
        Di.query idx (fun v -> Di.view_extract v ~doc ~off ~len)
      | R_sharded sh -> Sh.extract sh ~doc ~off ~len)
    ~mem:(fun id ->
      match replica t with
      | R_single st ->
        let idx = Durable.index st in
        Di.query idx (fun v -> Di.view_mem v id)
      | R_sharded sh -> Sh.mem sh id)
    ~stats:(fun () ->
      (match replica t with
      | R_single st ->
        let v = Di.view (Durable.index st) in
        [
          ("docs", Di.view_doc_count v);
          ("symbols", Di.view_total_symbols v);
          ("epoch", Di.view_epoch v);
        ]
      | R_sharded sh ->
        let ev = Sh.epoch_vector sh in
        [
          ("docs", Sh.doc_count sh);
          ("symbols", Sh.total_symbols sh);
          ("epoch", Array.fold_left ( + ) 0 ev);
          ("shards", Sh.shards sh);
        ])
      @ lag_stats ())
    ~redirect
    ~close:(fun () -> stop t)
    ~kill:(fun ~torn -> kill t ~torn)
