(** WAL-shipped read replica of a serving leader.

    {!start} dials a leader running the service plane, discovers its
    shape from [stats] (a [shards] field marks a sharded leader),
    bootstraps a local replica directory, and spawns a tail thread that
    polls the leader's replication streams ({!Protocol.Repl}) and
    replays shipped records through the replica's {e own} durable
    write path -- identical WAL serials leader/follower, so the replica
    directory is at all times an ordinary store: killable, recoverable,
    and promotable by simply serving it.

    Shipping bound: the leader only ships records below its
    {!Dsdg_store.Wal.durable_serial}, i.e. records that survived the
    group-commit fsync -- a follower can never observe a write the
    leader has not acknowledged as durable.

    Bootstrap: a fresh single-store replica that asks for position [0]
    after the leader compacted receives the leader's newest snapshot
    file (chunked over the wire) and resumes from its serial.  The
    same path handles a replica that later falls behind the leader's
    checkpoint compaction: the tail thread re-seeds in place (close,
    wipe, install the shipped snapshot, reopen) and keeps tailing --
    which also means the {!replica} handle can change over a
    follower's lifetime; re-read it rather than caching it.  A
    sharded replica is seeded either empty (replaying every stream from
    position 0) or from a pinned backup ({!Dsdg_shard.Sharded_index.backup})
    copied into [dir] -- per-shard mid-stream snapshots are refused by
    the leader because only a pin freezes all K shards and the meta log
    at one boundary.

    Sharded replay discipline: each poll cycle fetches the K shard
    streams {e before} the meta stream, so every collected shard record
    has its placement event inside the meta batch (the leader appends
    meta first); the cycle then applies placements and drains per-shard
    record queues to a fixpoint -- a record whose cross-shard
    prerequisite has not arrived (a migration copy preceding its
    original insert on another stream) parks at its queue head until
    progress elsewhere, or a later poll, unblocks it (see
    {!Dsdg_shard.Sharded_index.replica_op}).

    A fatal divergence (a sharded replica's compacted-away position,
    serial discontinuity, unparseable record) stops the tail loop and
    is reported by {!error}; transport failures trigger reconnection
    with exponential backoff (0.2s doubling to 5s).

    Observability lands in the registered scope ["repl"], shared with
    the leader's shipping counters: [frames_replayed], [reconnects],
    [snapshot_bootstraps], and [lag_serials]/[lag_epochs] gauges. *)

type t

(** The local replica store behind a follower. *)
type replica = R_single of Dsdg_store.Durable.t | R_sharded of Dsdg_shard.Sharded_index.t

(** A replication-lag reading (all monotonic except the gauges). *)
type lag = {
  lg_serials : int;  (** records shipped by the leader but not yet applied *)
  lg_epochs : int;  (** leader composite epoch minus replica composite epoch *)
  lg_applied : int;  (** records replayed over this follower's lifetime *)
  lg_connected : bool;
}

(** [start ~leader ~dir ()] connects (retrying [connect_attempts]
    times with backoff; raises [Failure] if the leader stays
    unreachable), bootstraps the replica under [dir], and spawns the
    tail thread.  [poll] (default 20ms) is the idle delay between
    empty polls; the index/store parameters mirror
    {!Dsdg_store.Durable.open_} and apply to the local replica --
    including [fault], which plants a defect in the {e replica's} index
    (K=1 only; the replication checkers use it to prove divergence
    detection works). *)
val start :
  ?config:Dsdg_store.Durable.config ->
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?fault:Dsdg_core.Transform2.fault ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  ?poll:float ->
  ?connect_attempts:int ->
  leader:[ `Unix of string | `Tcp of string * int ] ->
  dir:string ->
  unit ->
  t

val dir : t -> string

(** The live replica handle.  Reading through it (views, queries) is
    safe from any thread; do not write -- the tail thread is the
    single writer.  A single-store follower swaps the handle when it
    re-seeds after falling behind compaction, so re-read this rather
    than caching the result. *)
val replica : t -> replica

(** Current lag reading, updated once per poll cycle. *)
val lag : t -> lag

(** Stream positions fully applied {e and published} to the replica's
    read plane: shard serials then the meta position for a sharded
    replica, a 1-element vector for a single store.  Unlike the
    replica store's own WAL serials -- which advance when a shipped
    batch is logged, before its index apply finishes -- this moves
    only at cycle boundaries, so equality with the leader's positions
    certifies the replica's views reflect every shipped record (the
    checkers' catch-up predicate). *)
val watermark : t -> int array

(** The fatal divergence that stopped the tail loop, if any. *)
val error : t -> string option

(** Stop tailing and hand over the still-open replica -- the promotion
    path: verify it, serve it, or close it yourself.  The tail thread
    is joined; the follower must not be reused afterwards. *)
val detach : t -> replica

(** Stop tailing and close the replica store cleanly. *)
val stop : t -> unit

(** Stop tailing and crash the replica store ({!Dsdg_store.Durable.kill})
    -- the follower half of the failover kill sweeps. *)
val kill : t -> torn:bool -> unit

(** A read-only {!Server} engine over the replica: queries and stats
    (including the lag fields [lag_serials]/[lag_epochs]/[replayed]/
    [connected]) serve locally; mutations are refused with a
    {!Server.Redirect} naming the leader.  [Server.stop] on a server
    running this engine stops the follower and closes the replica. *)
val engine : t -> Server.engine
