module Trace = Dsdg_check.Trace

type t = { fd : Unix.file_descr; rd : Protocol.reader; mutable closed : bool }

exception Server_error of string
exception Protocol_error of string

let connect ?(timeout = 30.) ?(max_frame = 1 lsl 20) addr =
  let domain, sockaddr =
    match addr with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd sockaddr;
     if timeout > 0. then begin
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
     end
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; rd = Protocol.reader ~max_frame fd; closed = false }

let read_response t =
  match Protocol.read_frame t.rd with
  | `Eof -> raise (Protocol_error "connection closed before the response arrived")
  | `Too_long -> raise (Protocol_error "response frame exceeds max_frame")
  | `Frame line -> (
    match Protocol.parse_response line with
    | Ok (Protocol.Err reason) -> raise (Server_error reason)
    | Ok resp -> resp
    | Error reason -> raise (Protocol_error reason))

let roundtrip t req =
  if t.closed then raise (Protocol_error "client is closed");
  Protocol.write_frame t.fd (Protocol.request_to_string req);
  read_response t

let unexpected what resp =
  raise
    (Protocol_error
       (Printf.sprintf "expected %s, got %S" what (Protocol.response_to_string resp)))

(* [Id] never comes back from [parse_response] (the wire spelling is
   shared with [Int]), so integer-valued verbs match both. *)
let insert t text =
  match roundtrip t (Protocol.Op (Trace.Insert text)) with
  | Protocol.Int id | Protocol.Id id -> id
  | resp -> unexpected "a document id" resp

let bool_of_resp what = function
  | Protocol.Bool b -> b
  | Protocol.Int 0 | Protocol.Id 0 -> false
  | Protocol.Int 1 | Protocol.Id 1 -> true
  | resp -> unexpected what resp

let delete t id = bool_of_resp "a 0/1 delete result" (roundtrip t (Protocol.Op (Trace.Delete id)))

let search t pat =
  match roundtrip t (Protocol.Op (Trace.Search pat)) with
  | Protocol.Hits l -> l
  | resp -> unexpected "a hit list" resp

let count t pat =
  match roundtrip t (Protocol.Op (Trace.Count pat)) with
  | Protocol.Int n | Protocol.Id n -> n
  | resp -> unexpected "a count" resp

let extract t ~doc ~off ~len =
  match roundtrip t (Protocol.Op (Trace.Extract { doc; off; len })) with
  | Protocol.Text s -> Some s
  | Protocol.No_text -> None
  | resp -> unexpected "text or none" resp

let mem t id = bool_of_resp "a 0/1 membership result" (roundtrip t (Protocol.Op (Trace.Mem id)))

let stats t =
  match roundtrip t Protocol.Stats with
  | Protocol.Stats_of kvs -> kvs
  | resp -> unexpected "stats" resp

let ping t =
  match roundtrip t Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> unexpected "pong" resp

type repl_batch = {
  rb_recs : (int * string) list;
  rb_snap : (int * string) option;
  rb_bound : int;
  rb_epoch : int;
}

(* One replication poll: drain the hb-terminated frame batch. *)
let repl t ~stream ~from =
  if t.closed then raise (Protocol_error "client is closed");
  Protocol.write_frame t.fd (Protocol.request_to_string (Protocol.Repl { stream; from }));
  let recs = ref [] and snap = ref None in
  let rec chunks_loop n acc serial =
    if n = 0 then snap := Some (serial, String.concat "" (List.rev acc))
    else
      match read_response t with
      | Protocol.Chunk c -> chunks_loop (n - 1) (c :: acc) serial
      | resp -> unexpected "a snapshot chunk" resp
  in
  let rec loop () =
    match read_response t with
    | Protocol.Rec (serial, body) ->
      recs := (serial, body) :: !recs;
      loop ()
    | Protocol.Snap { serial; chunks } ->
      chunks_loop chunks [] serial;
      loop ()
    | Protocol.Hb { bound; epoch } ->
      { rb_recs = List.rev !recs; rb_snap = !snap; rb_bound = bound; rb_epoch = epoch }
    | resp -> unexpected "a replication frame" resp
  in
  loop ()

let raw t line =
  if t.closed then raise (Protocol_error "client is closed");
  Protocol.write_frame t.fd line;
  match Protocol.read_frame t.rd with
  | `Eof -> raise (Protocol_error "connection closed before the response arrived")
  | `Too_long -> raise (Protocol_error "response frame exceeds max_frame")
  | `Frame line -> line

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       Protocol.write_frame t.fd "quit";
       match Protocol.read_frame t.rd with `Frame _ | `Eof | `Too_long -> ()
     with Unix.Unix_error _ | Protocol_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
