(* Wire protocol: newline-framed text over the Trace op grammar;
   documented in protocol.mli and DESIGN.md section 11. *)

module Trace = Dsdg_check.Trace

type request = Op of Trace.op | Stats | Ping | Quit | Repl of { stream : string; from : int }

let parse_request line =
  match line with
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "quit" -> Ok Quit
  | _ when String.length line >= 5 && String.sub line 0 5 = "repl " -> (
    match String.split_on_char ' ' line with
    | [ "repl"; stream; from ] when stream <> "" -> (
      match int_of_string_opt from with
      | Some from when from >= 0 -> Ok (Repl { stream; from })
      | _ -> Error (Printf.sprintf "malformed repl position %S" from))
    | _ -> Error "malformed repl request (want: repl <stream> <from>)")
  | _ -> (
    match Trace.parse_op line with
    | Ok op -> Ok (Op op)
    | Error reason -> Error reason)

let request_to_string = function
  | Op op -> Trace.op_to_string op
  | Stats -> "stats"
  | Ping -> "ping"
  | Quit -> "quit"
  | Repl { stream; from } -> Printf.sprintf "repl %s %d" stream from

type response =
  | Id of int
  | Bool of bool
  | Int of int
  | Hits of (int * int) list
  | Text of string
  | No_text
  | Stats_of of (string * int) list
  | Pong
  | Bye
  | Err of string
  | Rec of int * string
  | Hb of { bound : int; epoch : int }
  | Snap of { serial : int; chunks : int }
  | Chunk of string

(* [Id] and [Int] share the "ok N" spelling deliberately: the client
   knows which verb it sent, so the wire does not repeat it. *)
let response_to_string = function
  | Id id -> Printf.sprintf "ok %d" id
  | Bool b -> if b then "ok 1" else "ok 0"
  | Int n -> Printf.sprintf "ok %d" n
  | Hits l ->
    let b = Buffer.create 64 in
    Buffer.add_string b (Printf.sprintf "ok hits %d" (List.length l));
    List.iter (fun (d, o) -> Buffer.add_string b (Printf.sprintf " %d %d" d o)) l;
    Buffer.contents b
  | Text s -> Printf.sprintf "ok text %S" s
  | No_text -> "none"
  | Stats_of kvs ->
    String.concat " " ("ok stats" :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)
  | Pong -> "ok pong"
  | Bye -> "ok bye"
  | Err reason -> Printf.sprintf "err %S" reason
  | Rec (serial, body) -> Printf.sprintf "rec %d %s" serial body
  | Hb { bound; epoch } -> Printf.sprintf "hb %d %d" bound epoch
  | Snap { serial; chunks } -> Printf.sprintf "snap %d %d" serial chunks
  | Chunk payload -> Printf.sprintf "chunk %S" payload

let parse_response line =
  let fields = String.split_on_char ' ' line in
  let int_field s ~what =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "expected an integer %s, got %S" what s)
  in
  match fields with
  | [ "none" ] -> Ok No_text
  | [ "ok"; "pong" ] -> Ok Pong
  | [ "ok"; "bye" ] -> Ok Bye
  | "rec" :: serial :: _ :: _ -> (
    match int_of_string_opt serial with
    | None -> Error (Printf.sprintf "malformed record serial %S" serial)
    | Some s ->
      (* the body is the raw record line and may contain spaces *)
      let prefix = 4 + String.length serial + 1 in
      Ok (Rec (s, String.sub line prefix (String.length line - prefix))))
  | [ "hb"; bound; epoch ] -> (
    match (int_of_string_opt bound, int_of_string_opt epoch) with
    | Some bound, Some epoch -> Ok (Hb { bound; epoch })
    | _ -> Error (Printf.sprintf "malformed heartbeat %S" line))
  | [ "snap"; serial; chunks ] -> (
    match (int_of_string_opt serial, int_of_string_opt chunks) with
    | Some serial, Some chunks -> Ok (Snap { serial; chunks })
    | _ -> Error (Printf.sprintf "malformed snapshot header %S" line))
  | "chunk" :: _ -> (
    try Ok (Scanf.sscanf line "chunk %S%!" (fun s -> Chunk s))
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Error "malformed snapshot chunk")
  | [ "ok"; n ] -> Result.map (fun n -> Int n) (int_field n ~what:"value")
  | "ok" :: "hits" :: n :: rest -> (
    match int_field n ~what:"hit count" with
    | Error _ as e -> e
    | Ok n ->
      let rec pairs acc = function
        | [] -> if List.length acc = n then Ok (Hits (List.rev acc)) else Error "hit count mismatch"
        | d :: o :: rest -> (
          match (int_of_string_opt d, int_of_string_opt o) with
          | Some d, Some o -> pairs ((d, o) :: acc) rest
          | _ -> Error (Printf.sprintf "malformed hit pair %S %S" d o))
        | [ _ ] -> Error "odd number of hit fields"
      in
      pairs [] rest)
  | "ok" :: "text" :: _ -> (
    (* the quoted payload may contain spaces: re-scan past the prefix *)
    try Ok (Scanf.sscanf line "ok text %S%!" (fun s -> Text s))
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Error "malformed quoted text")
  | "ok" :: "stats" :: kvs ->
    let rec go acc = function
      | [] -> Ok (Stats_of (List.rev acc))
      | kv :: rest -> (
        match String.index_opt kv '=' with
        | Some i -> (
          let k = String.sub kv 0 i and v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match int_of_string_opt v with
          | Some v -> go ((k, v) :: acc) rest
          | None -> Error (Printf.sprintf "malformed stat %S" kv))
        | None -> Error (Printf.sprintf "malformed stat %S" kv))
    in
    go [] kvs
  | "err" :: _ -> (
    try Ok (Scanf.sscanf line "err %S%!" (fun s -> Err s))
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Error "malformed error reason")
  | _ -> Error (Printf.sprintf "unrecognized response %S" line)

(* --- bounded frame reader --- *)

type reader = {
  fd : Unix.file_descr;
  max_frame : int;
  buf : Bytes.t;  (* staging for one read(2) *)
  acc : Buffer.t;  (* bytes of the frame under assembly *)
  mutable pending : string;  (* bytes read past the last newline *)
  mutable poisoned : bool;  (* an overlong frame destroyed framing *)
}

let reader ~max_frame fd =
  if max_frame < 1 then invalid_arg "Protocol.reader: max_frame < 1";
  {
    fd;
    max_frame;
    buf = Bytes.create (min 65536 (max 512 max_frame));
    acc = Buffer.create 256;
    pending = "";
    poisoned = false;
  }

let read_frame r =
  if r.poisoned then `Too_long
  else begin
    let result = ref None in
    (* consume [chunk]; returns the leftover after the first newline *)
    let consume chunk =
      match String.index_opt chunk '\n' with
      | Some nl ->
        Buffer.add_substring r.acc chunk 0 nl;
        r.pending <- String.sub chunk (nl + 1) (String.length chunk - nl - 1);
        let frame = Buffer.contents r.acc in
        Buffer.clear r.acc;
        if String.length frame > r.max_frame then begin
          r.poisoned <- true;
          result := Some `Too_long
        end
        else result := Some (`Frame frame)
      | None ->
        Buffer.add_string r.acc chunk;
        r.pending <- "";
        if Buffer.length r.acc > r.max_frame then begin
          r.poisoned <- true;
          result := Some `Too_long
        end
    in
    if r.pending <> "" then consume r.pending;
    while !result = None do
      let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
      if n = 0 then begin
        (* mid-frame EOF: the partial frame is torn, drop it *)
        Buffer.clear r.acc;
        result := Some `Eof
      end
      else consume (Bytes.sub_string r.buf 0 n)
    done;
    match !result with Some x -> x | None -> assert false
  end

let write_frame fd s =
  let line = s ^ "\n" in
  let len = String.length line in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd line !pos (len - !pos)
  done
