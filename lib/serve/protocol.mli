(** Wire protocol of the service plane: newline-framed text, one
    request and one response per frame.

    The request grammar {e is} the {!Dsdg_check.Trace} op grammar (["+
    \"text\""], ["- 7"], ["? \"pat\""], ["# \"pat\""], ["= doc off
    len"], ["@ id"]) extended with the session verbs ["stats"],
    ["ping"] and ["quit"] -- so a WAL or a saved fuzz trace can be
    piped to a server verbatim, and document payloads are binary-safe
    through OCaml [%S] escaping (a frame never contains a raw
    newline).

    Responses are one line: ["ok ..."] with a verb-specific tail,
    ["none"] for a missed extraction, or ["err \"reason\""]. Frame
    size is bounded on both sides; an overlong or unparseable frame is
    a protocol violation -- the server answers [err] and drops the
    connection (DESIGN.md section 11 has the full grammar). *)

(** A parsed request frame. *)
type request =
  | Op of Dsdg_check.Trace.op  (** index op, mutation or query *)
  | Stats  (** server + index counters *)
  | Ping
  | Quit  (** polite close; the server answers [ok bye] and hangs up *)
  | Repl of { stream : string; from : int }
      (** replication poll: ship stream records with position [>= from].
          Streams are ["wal"] (single store), ["wal0".."walK-1"] and
          ["meta"] (sharded). The reply is a bounded multi-frame batch:
          zero or more [rec] frames (or a [snap] header plus its [chunk]
          frames when [from] predates the leader's compacted log),
          always terminated by one [hb] frame. *)

(** [parse_request line] -- [Error reason] on an unknown verb or a
    malformed op line (the reasons come from {!Dsdg_check.Trace}). *)
val parse_request : string -> (request, string) result

val request_to_string : request -> string

(** A response frame. [Hits] carries (doc, off) pairs; [Stats] carries
    [key=value] counters; [Text]/[No_text] are the two extraction
    outcomes; [Id]/[Int]/[Bool] serve inserts, counts and
    delete/mem. *)
type response =
  | Id of int
  | Bool of bool
  | Int of int
  | Hits of (int * int) list
  | Text of string
  | No_text
  | Stats_of of (string * int) list
  | Pong
  | Bye
  | Err of string
  | Rec of int * string
      (** one shipped stream record: (position, raw record line) -- a
          {!Dsdg_check.Trace} op line for WAL streams, an [I g s] /
          [M g src dst] event line for the meta stream *)
  | Hb of { bound : int; epoch : int }
      (** batch terminator: [bound] is the stream's current shipping
          bound (ask from here next), [epoch] the leader-side epoch of
          the stream (view epoch / mapping version) *)
  | Snap of { serial : int; chunks : int }
      (** snapshot bootstrap header: the requested position was
          compacted away; [chunks] [Chunk] frames of the snapshot file
          aligned with WAL serial [serial] follow *)
  | Chunk of string  (** one [%S]-escaped span of snapshot file bytes *)

val response_to_string : response -> string

(** Inverse of {!response_to_string}; [Error] explains the malformed
    field. Used by the client and by the protocol round-trip tests. *)
val parse_response : string -> (response, string) result

(** {1 Bounded frame reader}

    A buffered reader that never accumulates more than [max_frame]
    bytes while hunting for the next newline, so a peer cannot balloon
    the peer's memory by withholding the frame terminator. *)

type reader

(** [reader ~max_frame fd]. [max_frame] counts the frame body
    (terminating newline excluded) and must be [>= 1]. *)
val reader : max_frame:int -> Unix.file_descr -> reader

(** Next frame, without its newline. [`Too_long] means the peer
    exceeded [max_frame] before terminating the frame -- the connection
    is poisoned (framing can no longer be trusted) and must be closed.
    [`Eof] is a clean end of stream only if it falls on a frame
    boundary; mid-frame bytes before EOF are discarded. Unix errors
    (including a [SO_RCVTIMEO] read timeout, [EAGAIN]) escape as
    [Unix.Unix_error]. *)
val read_frame : reader -> [ `Frame of string | `Eof | `Too_long ]

(** [write_frame fd s] writes [s ^ "\n"], looping over partial writes.
    [s] must not contain a newline. *)
val write_frame : Unix.file_descr -> string -> unit
