(* Fully-dynamic compact binary relation (Theorem 2).

   Layout mirrors Transformation 1 applied to object-label pairs:
   - C0: an uncompressed buffer (nested hashtables, O(log n) bits/pair)
     holding at most ~ 2n/log^2 n pairs;
   - C1..Cr: geometrically growing deletion-only Static_binrel structures;
   - lazy pair deletion with per-structure purge at the 1/tau threshold;
   - global rebuild when the live size doubles or halves.

   External object and label ids are arbitrary ints; each static
   sub-structure stores only its effective alphabet (the role of the
   paper's SN/NS tables and GC bitmaps).  Merging is synchronous
   (amortized bounds); DESIGN.md records this as a deviation from the
   paper's worst-case background variant, which lib/core/transform2.ml
   realizes for document collections. *)

type buffer = {
  by_obj : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  by_lab : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable pairs : int;
}

let buffer_create () = { by_obj = Hashtbl.create 32; by_lab = Hashtbl.create 32; pairs = 0 }

let buffer_add b o a =
  let row =
    match Hashtbl.find_opt b.by_obj o with
    | Some r -> r
    | None ->
      let r = Hashtbl.create 4 in
      Hashtbl.replace b.by_obj o r;
      r
  in
  if Hashtbl.mem row a then false
  else begin
    Hashtbl.replace row a ();
    let col =
      match Hashtbl.find_opt b.by_lab a with
      | Some c -> c
      | None ->
        let c = Hashtbl.create 4 in
        Hashtbl.replace b.by_lab a c;
        c
    in
    Hashtbl.replace col o ();
    b.pairs <- b.pairs + 1;
    true
  end

let buffer_mem b o a =
  match Hashtbl.find_opt b.by_obj o with None -> false | Some r -> Hashtbl.mem r a

let buffer_remove b o a =
  if not (buffer_mem b o a) then false
  else begin
    let row = Hashtbl.find b.by_obj o in
    Hashtbl.remove row a;
    if Hashtbl.length row = 0 then Hashtbl.remove b.by_obj o;
    let col = Hashtbl.find b.by_lab a in
    Hashtbl.remove col o;
    if Hashtbl.length col = 0 then Hashtbl.remove b.by_lab a;
    b.pairs <- b.pairs - 1;
    true
  end

let buffer_pairs b =
  Hashtbl.fold (fun o row acc -> Hashtbl.fold (fun a () acc -> (o, a) :: acc) row acc) b.by_obj []

open Dsdg_obs

(* Read-only snapshot of the amortization counters. *)
type stats = { merges : int; purges : int; global_rebuilds : int }

type t = {
  tau : int;
  mutable c0 : buffer;
  subs : Static_binrel.t option array;
  mutable nf : int;
  mutable live : int;
  obs : Obs.scope;
  c_merges : Obs.counter;
  c_purges : Obs.counter;
  c_global_rebuilds : Obs.counter;
  c_adds : Obs.counter;
  c_removes : Obs.counter;
}

let max_slots = 8

let create ?(tau = 8) () =
  let obs = Obs.private_scope "binrel" in
  {
    tau;
    c0 = buffer_create ();
    subs = Array.make (max_slots + 1) None;
    nf = 256;
    live = 0;
    obs;
    c_merges = Obs.counter obs "merges";
    c_purges = Obs.counter obs "purges";
    c_global_rebuilds = Obs.counter obs "global_rebuilds";
    c_adds = Obs.counter obs "adds";
    c_removes = Obs.counter obs "removes";
  }

let obs t = t.obs

let stats t =
  {
    merges = Obs.value t.c_merges;
    purges = Obs.value t.c_purges;
    global_rebuilds = Obs.value t.c_global_rebuilds;
  }
let live_pairs t = t.live

(* --- persistence (Dsdg_store) --- *)

(* Every live pair, across the C0 buffer and all sub-structures, in no
   particular order.  The snapshot unit: a relation has no other state
   worth persisting (nf is restored as the pair count, the slot layout
   is an amortization artifact rebuilt on reinsertion). *)
let iter_pairs t ~f =
  List.iter (fun (o, a) -> f o a) (buffer_pairs t.c0);
  Array.iter
    (function
      | None -> ()
      | Some sb -> List.iter (fun (o, a) -> f o a) (Static_binrel.live_pairs_list sb))
    t.subs

let pairs_list t =
  let acc = ref [] in
  iter_pairs t ~f:(fun o a -> acc := (o, a) :: !acc);
  List.sort compare !acc

let max_size t j =
  let nff = float_of_int (max t.nf 256) in
  let lg = max 2. (log nff /. log 2.) in
  let base = 2. *. nff /. (lg *. lg) in
  max 32 (int_of_float (base *. (lg ** (0.5 *. float_of_int j))))

let sub_live t j = match t.subs.(j) with None -> 0 | Some sb -> Static_binrel.live_pairs sb

let build_sub t pairs = Static_binrel.build ~tau:t.tau (Array.of_list pairs)

let global_rebuild t ~extra =
  Obs.incr t.c_global_rebuilds;
  let pairs = ref (buffer_pairs t.c0) in
  for j = 1 to max_slots do
    (match t.subs.(j) with
    | None -> ()
    | Some sb -> pairs := Static_binrel.live_pairs_list sb @ !pairs);
    t.subs.(j) <- None
  done;
  let pairs = match extra with None -> !pairs | Some p -> p :: !pairs in
  t.c0 <- buffer_create ();
  t.nf <- max 256 (List.length pairs);
  t.live <- List.length pairs;
  if pairs <> [] then t.subs.(max_slots) <- Some (build_sub t pairs);
  Obs.record t.obs (Obs.Restructure { nf = t.nf; structures = (if pairs = [] then 0 else 1) })

let related t o a =
  buffer_mem t.c0 o a
  || Array.exists (function None -> false | Some sb -> Static_binrel.related sb o a) t.subs

(* Add pair (o, a); false if already present. *)
let add t o a =
  if related t o a then false
  else begin
    if t.c0.pairs + 1 <= max_size t 0 then ignore (buffer_add t.c0 o a)
    else begin
      (* cascade: smallest j that can absorb C0..Cj plus the new pair *)
      let rec find j acc =
        if j > max_slots then None
        else begin
          let acc = acc + sub_live t j in
          if acc + 1 <= max_size t j then Some j else find (j + 1) acc
        end
      in
      match find 1 t.c0.pairs with
      | Some j ->
        Obs.incr t.c_merges;
        Obs.record t.obs (Obs.Merge { from_level = 0; into_level = j; sync = true });
        let pairs = ref [ (o, a) ] in
        pairs := buffer_pairs t.c0 @ !pairs;
        for i = 1 to j do
          (match t.subs.(i) with
          | None -> ()
          | Some sb -> pairs := Static_binrel.live_pairs_list sb @ !pairs);
          t.subs.(i) <- None
        done;
        t.c0 <- buffer_create ();
        t.subs.(j) <- Some (build_sub t !pairs)
      | None -> global_rebuild t ~extra:(Some (o, a))
    end;
    t.live <- t.live + 1;
    if t.live > 2 * t.nf then global_rebuild t ~extra:None;
    Obs.incr t.c_adds;
    true
  end

let purge t j =
  match t.subs.(j) with
  | None -> ()
  | Some sb ->
    Obs.incr t.c_purges;
    let live = Static_binrel.live_pairs sb in
    let dead = Static_binrel.total_pairs sb - live in
    Obs.record t.obs (Obs.Purge { level = j; dead; total = live + dead });
    let pairs = Static_binrel.live_pairs_list sb in
    t.subs.(j) <- (if pairs = [] then None else Some (build_sub t pairs))

(* Remove pair (o, a); false if absent. *)
let remove t o a =
  if buffer_remove t.c0 o a then begin
    t.live <- t.live - 1;
    if 2 * t.live < t.nf && t.nf > 256 then global_rebuild t ~extra:None;
    Obs.incr t.c_removes;
    true
  end
  else begin
    let done_ = ref false in
    for j = 1 to max_slots do
      match t.subs.(j) with
      | Some sb when not !done_ ->
        if Static_binrel.delete sb o a then begin
          done_ := true;
          t.live <- t.live - 1;
          if Static_binrel.needs_purge sb then purge t j
        end
      | _ -> ()
    done;
    if !done_ && 2 * t.live < t.nf && t.nf > 256 then global_rebuild t ~extra:None;
    if !done_ then Obs.incr t.c_removes;
    !done_
  end

let labels_of_object t o ~f =
  (match Hashtbl.find_opt t.c0.by_obj o with
  | None -> ()
  | Some row -> Hashtbl.iter (fun a () -> f a) row);
  Array.iter
    (function None -> () | Some sb -> Static_binrel.labels_of_object sb o ~f)
    t.subs

let objects_of_label t a ~f =
  (match Hashtbl.find_opt t.c0.by_lab a with
  | None -> ()
  | Some col -> Hashtbl.iter (fun o () -> f o) col);
  Array.iter
    (function None -> () | Some sb -> Static_binrel.objects_of_label sb a ~f)
    t.subs

let labels_of_object_list t o =
  let acc = ref [] in
  labels_of_object t o ~f:(fun a -> acc := a :: !acc);
  List.sort compare !acc

let objects_of_label_list t a =
  let acc = ref [] in
  objects_of_label t a ~f:(fun o -> acc := o :: !acc);
  List.sort compare !acc

let count_labels_of_object t o =
  let c0 = match Hashtbl.find_opt t.c0.by_obj o with None -> 0 | Some row -> Hashtbl.length row in
  Array.fold_left
    (fun acc -> function None -> acc | Some sb -> acc + Static_binrel.count_labels_of_object sb o)
    c0 t.subs

let count_objects_of_label t a =
  let c0 = match Hashtbl.find_opt t.c0.by_lab a with None -> 0 | Some col -> Hashtbl.length col in
  Array.fold_left
    (fun acc -> function None -> acc | Some sb -> acc + Static_binrel.count_objects_of_label sb a)
    c0 t.subs

let space_bits t =
  let c0_bits = t.c0.pairs * 4 * 63 in
  Array.fold_left
    (fun acc -> function None -> acc | Some sb -> acc + Static_binrel.space_bits sb)
    c0_bits t.subs
