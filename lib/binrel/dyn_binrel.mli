(** Fully-dynamic compact binary relation (Theorem 2): object-label
    pairs with reporting/counting in both directions.

    Transformation-1 layout over pairs: an uncompressed buffer C0 plus
    geometrically growing deletion-only {!Static_binrel} structures with
    lazy deletion and 1/tau purging. Object and label ids are arbitrary
    ints. *)

type t

(** Read-only snapshot of the amortization counters (backed by the
    structure's {!Dsdg_obs.Obs} scope). *)
type stats = {
  merges : int;
  purges : int;
  global_rebuilds : int;
}

(** [create ()] is the empty relation; [tau] tunes the lazy-deletion
    purge threshold 1/tau (default 4). *)
val create : ?tau:int -> unit -> t

(** Counter snapshot (see {!stats}). *)
val stats : t -> stats

(** The relation's private observability scope: counters
    [merges]/[purges]/[global_rebuilds]/[adds]/[removes] plus the
    structural event ring. *)
val obs : t -> Dsdg_obs.Obs.scope

(** Number of live pairs. *)
val live_pairs : t -> int

(** [add t o a] relates object [o] to label [a]; [false] if already
    related. *)
val add : t -> int -> int -> bool

(** [remove t o a]; [false] if not related. *)
val remove : t -> int -> int -> bool

(** Membership test. *)
val related : t -> int -> int -> bool

(** Iterate the live labels of object [o]. *)
val labels_of_object : t -> int -> f:(int -> unit) -> unit

(** Iterate the live objects of label [a]. *)
val objects_of_label : t -> int -> f:(int -> unit) -> unit

(** Sorted list versions of the iterators. *)
val labels_of_object_list : t -> int -> int list

(** Sorted objects related to a label. *)
val objects_of_label_list : t -> int -> int list

(** Number of labels related to [o]. *)
val count_labels_of_object : t -> int -> int

(** Number of objects related to [a]. *)
val count_objects_of_label : t -> int -> int

(** Measured resident size in bits, all directory constants included;
    comparable with {!K2_relation.space_bits}. *)
val space_bits : t -> int

(** {1 Persistence}

    The snapshot unit serialized by [Dsdg_store]: the live pair set. A
    relation has no other state worth persisting -- the sub-structure
    layout is an amortization artifact, rebuilt on reinsertion. *)

(** Every live [(object, label)] pair, across the C0 buffer and all
    sub-structures, in no particular order. *)
val iter_pairs : t -> f:(int -> int -> unit) -> unit

(** {!iter_pairs} collected and sorted. *)
val pairs_list : t -> (int * int) list
