(** Deletion-only compact binary relation (Section 5): the string S in an
    H0-compressed wavelet tree, unary degrees N, and Lemma-3 liveness
    structures. Built once from a pair set; supports lazy pair deletion
    and the 1/tau purge signal. Objects/labels are arbitrary external
    ints (mapped internally to the effective alphabet). *)

type t

(** Raises [Invalid_argument] on duplicate pairs. *)
val build : ?tick:(unit -> unit) -> tau:int -> (int * int) array -> t

(** Number of pairs not yet lazily deleted. *)
val live_pairs : t -> int

(** Number of lazily deleted pairs still resident. *)
val dead_pairs : t -> int

(** [live_pairs + dead_pairs]. *)
val total_pairs : t -> int

(** Dead fraction exceeded 1/tau: the owner should rebuild. *)
val needs_purge : t -> bool

(** No live pairs left. *)
val is_empty : t -> bool

(** Membership of a live pair; O(log log + rank). *)
val related : t -> int -> int -> bool

(** Report live labels related to an object: O(1) per result after the
    range lookup. *)
val labels_of_object : t -> int -> f:(int -> unit) -> unit

(** Report live objects related to a label (select on S + rank on N per
    result). *)
val objects_of_label : t -> int -> f:(int -> unit) -> unit

(** O(log n) via the liveness counter. *)
val count_labels_of_object : t -> int -> int

(** O(1) (per-label live totals). *)
val count_objects_of_label : t -> int -> int

(** Lazy deletion of one pair; [false] if absent or already dead. *)
val delete : t -> int -> int -> bool

(** All live pairs, for rebuilds; [tick] charged per pair. *)
val live_pairs_list : ?tick:(unit -> unit) -> t -> (int * int) list

(** Measured resident size in bits. *)
val space_bits : t -> int
