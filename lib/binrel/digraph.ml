(* Dynamic directed graph (Theorem 3): a binary relation on the node set
   where object u related to label v encodes the edge u -> v.  Neighbor
   enumeration, reverse neighbors, adjacency tests and degree counting all
   reduce to relation queries, dispatched through the Rel_backend seam so
   one runtime choice switches the whole graph between the string-based
   hierarchy and the k2-tree adjacency matrix. *)

type t = { rel : Rel_backend.rel }

let create ?tau ?(backend = Rel_backend.Str) () =
  { rel = Rel_backend.create ?tau backend }

let backend t = Rel_backend.kind_of t.rel

(* Add edge u -> v; false if already present. *)
let add_edge t u v = Rel_backend.add t.rel u v

(* Remove edge u -> v; false if absent. *)
let remove_edge t u v = Rel_backend.remove t.rel u v

let mem_edge t u v = Rel_backend.related t.rel u v
let edge_count t = Rel_backend.live_pairs t.rel

(* Out-neighbors of u. *)
let successors t u = Rel_backend.labels_of_object_list t.rel u

(* In-neighbors of v. *)
let predecessors t v = Rel_backend.objects_of_label_list t.rel v

let iter_successors t u ~f = Rel_backend.labels_of_object t.rel u ~f
let iter_predecessors t v ~f = Rel_backend.objects_of_label t.rel v ~f
let out_degree t u = Rel_backend.count_labels_of_object t.rel u
let in_degree t v = Rel_backend.count_objects_of_label t.rel v
let space_bits t = Rel_backend.space_bits t.rel
let stats t = Rel_backend.stats t.rel

(* Persistence: a graph is its edge set. *)
let iter_edges t ~f = Rel_backend.iter_pairs t.rel ~f
let edges t = Rel_backend.pairs_list t.rel

let of_edges ?tau ?backend pairs =
  let t = create ?tau ?backend () in
  List.iter (fun (u, v) -> ignore (add_edge t u v)) pairs;
  t
