(* Dynamic directed graph (Theorem 3): a binary relation on the node set
   where object u related to label v encodes the edge u -> v.  Neighbor
   enumeration, reverse neighbors, adjacency tests and degree counting all
   reduce to relation queries. *)

type t = { rel : Dyn_binrel.t }

let create ?tau () = { rel = Dyn_binrel.create ?tau () }

(* Add edge u -> v; false if already present. *)
let add_edge t u v = Dyn_binrel.add t.rel u v

(* Remove edge u -> v; false if absent. *)
let remove_edge t u v = Dyn_binrel.remove t.rel u v

let mem_edge t u v = Dyn_binrel.related t.rel u v
let edge_count t = Dyn_binrel.live_pairs t.rel

(* Out-neighbors of u. *)
let successors t u = Dyn_binrel.labels_of_object_list t.rel u

(* In-neighbors of v. *)
let predecessors t v = Dyn_binrel.objects_of_label_list t.rel v

let iter_successors t u ~f = Dyn_binrel.labels_of_object t.rel u ~f
let iter_predecessors t v ~f = Dyn_binrel.objects_of_label t.rel v ~f
let out_degree t u = Dyn_binrel.count_labels_of_object t.rel u
let in_degree t v = Dyn_binrel.count_objects_of_label t.rel v
let space_bits t = Dyn_binrel.space_bits t.rel
let stats t = Dyn_binrel.stats t.rel

(* Persistence: a graph is its edge set. *)
let iter_edges t ~f = Dyn_binrel.iter_pairs t.rel ~f
let edges t = Dyn_binrel.pairs_list t.rel
