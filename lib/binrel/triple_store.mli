(** Dynamic RDF-style triple store (the paper's Section 1 database
    motivation): per-predicate compact digraphs plus subject/object to
    predicate relations. Supports the paper's example queries — all
    triples with a given subject, and all triples with a given subject
    and predicate — under insertions and deletions. *)

type t

(** [create ()] is the empty store. [tau] tunes the [Str] backend's
    lazy-deletion schedule; [rel_backend] (default [Str]) picks the
    {!Rel_backend} representation used by every per-predicate graph
    and both predicate-link relations. *)
val create : ?tau:int -> ?rel_backend:Rel_backend.kind -> unit -> t

(** The relation backend this store was created with. *)
val backend : t -> Rel_backend.kind

(** Number of live triples. *)
val triple_count : t -> int

(** Membership test for a triple. *)
val mem : t -> s:int -> p:int -> o:int -> bool

(** [add t ~s ~p ~o]; [false] if present. *)
val add : t -> s:int -> p:int -> o:int -> bool

(** [remove t ~s ~p ~o]; [false] if absent. *)
val remove : t -> s:int -> p:int -> o:int -> bool

(** Sorted predicates under which [s] occurs as a subject. *)
val predicates_of_subject : t -> int -> int list

(** Sorted predicates under which [o] occurs as an object. *)
val predicates_of_object : t -> int -> int list

(** All triples with subject [s] (the paper's first example query). *)
val triples_with_subject : t -> int -> (int * int * int) list

(** All triples with object [o]. *)
val triples_with_object : t -> int -> (int * int * int) list

(** All triples with subject [s] and predicate [p] (the second example
    query). *)
val triples_with_subject_predicate : t -> int -> int -> (int * int * int) list

(** All triples with object [o] and predicate [p]. *)
val triples_with_object_predicate : t -> int -> int -> (int * int * int) list

(** Number of triples with subject [s]. *)
val count_with_subject : t -> int -> int

(** Number of triples with object [o]. *)
val count_with_object : t -> int -> int

(** Number of triples with predicate [p]. *)
val count_with_predicate : t -> int -> int

(** Measured resident size of every graph and relation, in bits. *)
val space_bits : t -> int
