(** The dynamic-relation backend seam.

    Two backends implement the same dynamic binary-relation signature:
    the incumbent string-based Transformation-1 hierarchy
    ({!Dyn_binrel}, wavelet/Reporter sub-structures, amortized
    rebuilds) and the k²-tree adjacency matrix ({!K2_relation}, packed
    quadtree, space-competitive on sparse clustered graphs). The seam
    mirrors {!Dsdg_dynseq.Seq_backend}: a runtime [kind] selected by
    the [--rel-backend] CLI flag, a shared module type, and a packed
    existential for callers that hold a backend-chosen relation in an
    ordinary field.

    The kind is a runtime choice, never persisted: snapshots store the
    live pair set and recovery re-ingests it into whichever backend
    the reopening process selects. *)

type kind = Str | K2

(** ["str"] or ["k2"] — the CLI flag spelling. *)
val kind_to_string : kind -> string

(** Inverse of {!kind_to_string}; [None] on unknown names. *)
val kind_of_string : string -> kind option

(** All backends, in matrix order. *)
val all_kinds : kind list

(** Union of both backends' update counters; fields foreign to a
    backend read zero ([grows] for [Str]; [merges], [purges] and
    [global_rebuilds] for [K2]). *)
type stats = { merges : int; purges : int; global_rebuilds : int; grows : int }

(** Operations every relation backend provides; semantics mirror
    {!Dyn_binrel} (pair-set membership, ascending list queries, the
    live pair set as the snapshot unit). *)
module type S = sig
  type t

  val name : string
  val create : ?tau:int -> unit -> t
  val add : t -> int -> int -> bool
  val remove : t -> int -> int -> bool
  val related : t -> int -> int -> bool
  val labels_of_object : t -> int -> f:(int -> unit) -> unit
  val objects_of_label : t -> int -> f:(int -> unit) -> unit
  val labels_of_object_list : t -> int -> int list
  val objects_of_label_list : t -> int -> int list
  val count_labels_of_object : t -> int -> int
  val count_objects_of_label : t -> int -> int
  val live_pairs : t -> int
  val space_bits : t -> int
  val stats : t -> stats
  val obs : t -> Dsdg_obs.Obs.scope
  val iter_pairs : t -> f:(int -> int -> unit) -> unit
  val pairs_list : t -> (int * int) list
end

(** {!Dyn_binrel} under the seam signature. *)
module Str_backend : S

(** {!K2_relation} under the seam signature. *)
module K2_backend : S

(** The backend module for a kind. *)
val of_kind : kind -> (module S)

(** A relation packed with its backend's operations. *)
type rel = Rel : (module S with type t = 'a) * 'a -> rel

(** [create kind] is an empty relation of that backend; [tau] tunes
    the [Str] lazy-deletion schedule and is ignored by [K2]. *)
val create : ?tau:int -> kind -> rel

(** The kind a packed relation was created with. *)
val kind_of : rel -> kind

(** [add r o a]; [false] if already related. *)
val add : rel -> int -> int -> bool

(** [remove r o a]; [false] if not related. *)
val remove : rel -> int -> int -> bool

(** Membership test. *)
val related : rel -> int -> int -> bool

(** Iterate labels of [o], ascending. *)
val labels_of_object : rel -> int -> f:(int -> unit) -> unit

(** Iterate objects of [a], ascending. *)
val objects_of_label : rel -> int -> f:(int -> unit) -> unit

(** Sorted labels of an object. *)
val labels_of_object_list : rel -> int -> int list

(** Sorted objects of a label. *)
val objects_of_label_list : rel -> int -> int list

(** Out-degree of [o]. *)
val count_labels_of_object : rel -> int -> int

(** In-degree of [a]. *)
val count_objects_of_label : rel -> int -> int

(** Number of live pairs. *)
val live_pairs : rel -> int

(** Measured resident size in bits (comparable across backends). *)
val space_bits : rel -> int

(** Update-counter snapshot (see {!stats}). *)
val stats : rel -> stats

(** The backend's private observability scope. *)
val obs : rel -> Dsdg_obs.Obs.scope

(** Every live pair, unordered — the snapshot unit. *)
val iter_pairs : rel -> f:(int -> int -> unit) -> unit

(** {!iter_pairs} collected and sorted. *)
val pairs_list : rel -> (int * int) list
