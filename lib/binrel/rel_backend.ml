(* The dynamic-relation seam, mirroring Dsdg_dynseq.Seq_backend: one
   module type both relation backends satisfy, a runtime [kind] for the
   CLI flag, and a packed existential so Digraph / Triple_store can
   hold a backend-chosen relation in an ordinary field.  The kind is a
   runtime choice, never persisted: snapshots store the live pair set
   and recovery re-ingests it into whichever backend the reopening
   process selects. *)

type kind = Str | K2

let kind_to_string = function Str -> "str" | K2 -> "k2"
let kind_of_string = function "str" -> Some Str | "k2" -> Some K2 | _ -> None
let all_kinds = [ Str; K2 ]

(* Union of both backends' update counters; fields foreign to a
   backend read zero. *)
type stats = { merges : int; purges : int; global_rebuilds : int; grows : int }

module type S = sig
  type t

  val name : string
  val create : ?tau:int -> unit -> t
  val add : t -> int -> int -> bool
  val remove : t -> int -> int -> bool
  val related : t -> int -> int -> bool
  val labels_of_object : t -> int -> f:(int -> unit) -> unit
  val objects_of_label : t -> int -> f:(int -> unit) -> unit
  val labels_of_object_list : t -> int -> int list
  val objects_of_label_list : t -> int -> int list
  val count_labels_of_object : t -> int -> int
  val count_objects_of_label : t -> int -> int
  val live_pairs : t -> int
  val space_bits : t -> int
  val stats : t -> stats
  val obs : t -> Dsdg_obs.Obs.scope
  val iter_pairs : t -> f:(int -> int -> unit) -> unit
  val pairs_list : t -> (int * int) list
end

module Str_backend : S = struct
  include Dyn_binrel

  let name = "str"

  let stats t =
    let s = Dyn_binrel.stats t in
    {
      merges = s.Dyn_binrel.merges;
      purges = s.Dyn_binrel.purges;
      global_rebuilds = s.Dyn_binrel.global_rebuilds;
      grows = 0;
    }
end

module K2_backend : S = struct
  include K2_relation

  let name = "k2"
  let stats t = { merges = 0; purges = 0; global_rebuilds = 0; grows = (K2_relation.stats t).K2_relation.grows }
end

let of_kind : kind -> (module S) = function
  | Str -> (module Str_backend)
  | K2 -> (module K2_backend)

(* A relation packed with its operations: Digraph and Triple_store
   store one of these and stay backend-agnostic. *)
type rel = Rel : (module S with type t = 'a) * 'a -> rel

let create ?tau kind =
  let (module B) = of_kind kind in
  Rel ((module B), B.create ?tau ())

let kind_of (Rel ((module B), _)) =
  match kind_of_string B.name with Some k -> k | None -> assert false

let add (Rel ((module B), r)) o a = B.add r o a
let remove (Rel ((module B), r)) o a = B.remove r o a
let related (Rel ((module B), r)) o a = B.related r o a
let labels_of_object (Rel ((module B), r)) o ~f = B.labels_of_object r o ~f
let objects_of_label (Rel ((module B), r)) a ~f = B.objects_of_label r a ~f
let labels_of_object_list (Rel ((module B), r)) o = B.labels_of_object_list r o
let objects_of_label_list (Rel ((module B), r)) a = B.objects_of_label_list r a
let count_labels_of_object (Rel ((module B), r)) o = B.count_labels_of_object r o
let count_objects_of_label (Rel ((module B), r)) a = B.count_objects_of_label r a
let live_pairs (Rel ((module B), r)) = B.live_pairs r
let space_bits (Rel ((module B), r)) = B.space_bits r
let stats (Rel ((module B), r)) = B.stats r
let obs (Rel ((module B), r)) = B.obs r
let iter_pairs (Rel ((module B), r)) ~f = B.iter_pairs r ~f
let pairs_list (Rel ((module B), r)) = B.pairs_list r
