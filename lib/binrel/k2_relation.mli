(** k²-tree-style dynamic adjacency matrix (Brisaboa et al.): a
    recursive 16-ary quadtree (4×4 subsquares per level) over the
    node×node boolean matrix with packed child bitmaps and adaptive
    64×64 leaves — sparse leaves hold packed sorted cell offsets,
    dense leaves a 4096-bit bitmap — the space-competitive alternative
    to {!Dyn_binrel} behind the {!Rel_backend} seam.

    Empty subsquares are unrepresented; every update touches one
    root-to-leaf path (O(log side) nodes, no amortized rebuilds); the
    matrix side quadruples on demand when a pair lands beyond the
    current universe. Object/label ids are non-negative ints. *)

type t

(** Update counters: [grows] is the number of universe quadruplings
    (the k²-tree analogue of {!Dyn_binrel}'s global rebuilds). *)
type stats = { grows : int }

(** [create ()] is the empty relation over a 64×64 universe. [tau] is
    accepted for signature uniformity with {!Dyn_binrel.create} and
    ignored — there is no lazy-deletion schedule to tune. *)
val create : ?tau:int -> unit -> t

(** Counter snapshot (see {!stats}). *)
val stats : t -> stats

(** The relation's private observability scope: counters
    [adds]/[removes]/[grows] plus [Restructure] events on each
    universe growth. *)
val obs : t -> Dsdg_obs.Obs.scope

(** Number of live pairs. *)
val live_pairs : t -> int

(** Current matrix side (64 times a power of four); pairs with both
    coordinates below [side t] need no growth to insert. *)
val side : t -> int

(** [add t o a] relates object [o] to label [a], growing the universe
    as needed; [false] if already related. Raises [Invalid_argument]
    on negative ids. *)
val add : t -> int -> int -> bool

(** [remove t o a]; [false] if not related. Emptied blocks are pruned
    immediately, and drained dense leaves fall back to the sparse
    representation. *)
val remove : t -> int -> int -> bool

(** Membership test: is [o] related to [a]? *)
val related : t -> int -> int -> bool

(** Iterate the labels of object [o] (row [o] of the matrix) in
    ascending label order. *)
val labels_of_object : t -> int -> f:(int -> unit) -> unit

(** Iterate the objects of label [a] (column [a]) in ascending object
    order. *)
val objects_of_label : t -> int -> f:(int -> unit) -> unit

(** Sorted list versions of the iterators. *)
val labels_of_object_list : t -> int -> int list

(** Sorted objects related to a label. *)
val objects_of_label_list : t -> int -> int list

(** Number of labels related to [o] (out-degree). *)
val count_labels_of_object : t -> int -> int

(** Number of objects related to [a] (in-degree). *)
val count_objects_of_label : t -> int -> int

(** Measured resident size in bits, all directory constants included —
    comparable with {!Dyn_binrel.space_bits}. *)
val space_bits : t -> int

(** {1 Persistence}

    The snapshot unit is the live pair set, exactly as for
    {!Dyn_binrel}: the quadtree shape is a deterministic function of
    the pairs and is rebuilt on reinsertion. *)

(** Every live [(object, label)] pair, in block (quadtree) order. *)
val iter_pairs : t -> f:(int -> int -> unit) -> unit

(** {!iter_pairs} collected and sorted. *)
val pairs_list : t -> (int * int) list
