(* Dynamic RDF-style triple store (the paper's Section 1 motivation: "the
   set of subject-predicate-object RDF triples can be represented as a
   graph or as two binary relations").

   Representation: one dynamic compact digraph (subject -> object) per
   predicate, plus two binary relations linking subjects and objects to
   the predicates they occur with.  The paper's example queries map
   directly:

   - "enumerate all triples in which x occurs as a subject"
       = predicates of x (relation) x successors in each predicate graph;
   - "given x and p, enumerate all triples where x is the subject and p
      the predicate"
       = successors of x in p's graph. *)

type t = {
  graphs : (int, Digraph.t) Hashtbl.t; (* predicate -> subject->object edges *)
  sp : Rel_backend.rel; (* subject related to predicate *)
  op : Rel_backend.rel; (* object related to predicate *)
  tau : int;
  backend : Rel_backend.kind;
  mutable triples : int;
}

let create ?(tau = 8) ?(rel_backend = Rel_backend.Str) () =
  {
    graphs = Hashtbl.create 16;
    sp = Rel_backend.create ~tau rel_backend;
    op = Rel_backend.create ~tau rel_backend;
    tau;
    backend = rel_backend;
    triples = 0;
  }

let triple_count t = t.triples
let backend t = t.backend

let graph_of t p =
  match Hashtbl.find_opt t.graphs p with
  | Some g -> g
  | None ->
    let g = Digraph.create ~tau:t.tau ~backend:t.backend () in
    Hashtbl.replace t.graphs p g;
    g

let mem t ~s ~p ~o =
  match Hashtbl.find_opt t.graphs p with None -> false | Some g -> Digraph.mem_edge g s o

(* Add a triple; false if already present. *)
let add t ~s ~p ~o =
  let g = graph_of t p in
  if not (Digraph.add_edge g s o) then false
  else begin
    t.triples <- t.triples + 1;
    ignore (Rel_backend.add t.sp s p);
    ignore (Rel_backend.add t.op o p);
    true
  end

(* Remove a triple; false if absent.  The subject/object-to-predicate
   links are dropped when the last triple using them disappears. *)
let remove t ~s ~p ~o =
  match Hashtbl.find_opt t.graphs p with
  | None -> false
  | Some g ->
    if not (Digraph.remove_edge g s o) then false
    else begin
      t.triples <- t.triples - 1;
      if Digraph.out_degree g s = 0 then ignore (Rel_backend.remove t.sp s p);
      if Digraph.in_degree g o = 0 then ignore (Rel_backend.remove t.op o p);
      true
    end

(* Predicates under which [s] occurs as a subject. *)
let predicates_of_subject t s = Rel_backend.labels_of_object_list t.sp s

let predicates_of_object t o = Rel_backend.labels_of_object_list t.op o

(* All triples with subject [s]. *)
let triples_with_subject t s =
  List.concat_map
    (fun p ->
      match Hashtbl.find_opt t.graphs p with
      | None -> []
      | Some g -> List.map (fun o -> (s, p, o)) (Digraph.successors g s))
    (predicates_of_subject t s)

(* All triples with object [o]. *)
let triples_with_object t o =
  List.concat_map
    (fun p ->
      match Hashtbl.find_opt t.graphs p with
      | None -> []
      | Some g -> List.map (fun s -> (s, p, o)) (Digraph.predecessors g o))
    (predicates_of_object t o)

(* All triples with subject [s] and predicate [p]. *)
let triples_with_subject_predicate t s p =
  match Hashtbl.find_opt t.graphs p with
  | None -> []
  | Some g -> List.map (fun o -> (s, p, o)) (Digraph.successors g s)

let triples_with_object_predicate t o p =
  match Hashtbl.find_opt t.graphs p with
  | None -> []
  | Some g -> List.map (fun s -> (s, p, o)) (Digraph.predecessors g o)

(* Counting versions (Theorem 2's counting queries). *)
let count_with_subject t s =
  List.fold_left
    (fun acc p ->
      match Hashtbl.find_opt t.graphs p with
      | None -> acc
      | Some g -> acc + Digraph.out_degree g s)
    0 (predicates_of_subject t s)

let count_with_object t o =
  List.fold_left
    (fun acc p ->
      match Hashtbl.find_opt t.graphs p with
      | None -> acc
      | Some g -> acc + Digraph.in_degree g o)
    0 (predicates_of_object t o)

let count_with_predicate t p =
  match Hashtbl.find_opt t.graphs p with None -> 0 | Some g -> Digraph.edge_count g

let space_bits t =
  Hashtbl.fold (fun _ g acc -> acc + Digraph.space_bits g) t.graphs 0
  + Rel_backend.space_bits t.sp + Rel_backend.space_bits t.op
