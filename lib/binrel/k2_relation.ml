(* k2-tree-style dynamic adjacency matrix (Brisaboa et al., "Compressed
   Representation of Dynamic Binary Relations").

   The node x node boolean matrix is a recursive 16-ary quadtree: every
   inner node covers a [side x side] submatrix (side a power of four
   times the leaf side) and splits it into a 4x4 grid of subsquares;
   empty subsquares are not represented.  An inner node stores a packed
   child bitmap -- a 16-bit mask of non-empty subsquares plus an array
   holding only the present children, indexed by popcount over the mask
   prefix (the k2-tree trick, on the existing lib/bits primitives).

   Leaves cover [64 x 64] submatrices and adapt their representation to
   their population: sparse leaves hold a sorted array of 12-bit cell
   offsets (row-major, packed five to a word), dense leaves switch to a
   4096-bit {!Dsdg_bits.Bitvec} bitmap once the offset array would
   outgrow it, and convert back (with hysteresis) as removals drain
   them.  A lone edge in its own subtree therefore costs a handful of
   words, while a popular 64x64 block bottoms out at one bit per cell.

   The universe grows dynamically: adding a pair beyond the current
   side wraps the root into subsquare 0 of a four-times-as-large matrix
   (coordinates only ever extend upward, so the old tree is always the
   low block).  Removal prunes emptied leaves and inner nodes on the
   unwind, so the structure occupies space only for the blocks that
   intersect live pairs.  Unlike {!Dyn_binrel} there is no amortized
   rebuild schedule: every update touches one root-to-leaf path,
   O(log side) nodes. *)

open Dsdg_bits
open Dsdg_obs

let leaf_side = 64
let leaf_cells = leaf_side * leaf_side (* 4096; offsets fit 12 bits *)
let branch = 4 (* 4x4 subsquares per inner node *)

(* Sparse leaves pack five 12-bit offsets per word, so at [dense_at]
   pairs the offset array reaches the bitmap's 67 words and the leaf
   flips to a bitmap; [sparse_at] adds hysteresis on the way down. *)
let dense_at = 335
let sparse_at = 300

(* --- packed 12-bit offset arrays (sorted, row-major) --- *)

let pk_words n = (n + 4) / 5
let pk_get a i = (a.(i / 5) lsr (12 * (i mod 5))) land 0xfff

let pk_set a i v =
  let w = i / 5 and sh = 12 * (i mod 5) in
  a.(w) <- a.(w) land lnot (0xfff lsl sh) lor (v lsl sh)

(* first index whose offset is >= v (n if none) *)
let pk_lower a n v =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pk_get a mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

let pk_insert a n idx v =
  let b = Array.make (pk_words (n + 1)) 0 in
  for i = 0 to idx - 1 do
    pk_set b i (pk_get a i)
  done;
  pk_set b idx v;
  for i = idx to n - 1 do
    pk_set b (i + 1) (pk_get a i)
  done;
  b

let pk_remove a n idx =
  let b = Array.make (pk_words (n - 1)) 0 in
  for i = 0 to idx - 1 do
    pk_set b i (pk_get a i)
  done;
  for i = idx + 1 to n - 1 do
    pk_set b (i - 1) (pk_get a i)
  done;
  b

(* --- adaptive leaves --- *)

type cells = Sparse of int array | Dense of Bitvec.t

(* [rows] is an approximate row-occupancy filter: bit [r land 31] is
   set whenever row r holds a cell (rows r and r+32 alias -- one word
   of filter is cheaper than two, and with a couple of cells per
   typical leaf the aliasing costs almost nothing).  Set on every add,
   rebuilt on the dense->sparse conversion, never cleared by individual
   removes.  Row scans test it first, so the many leaves a row strip
   crosses that hold nothing in that particular row are rejected with
   one word test instead of a search. *)
type leaf = { mutable n : int; mutable cells : cells; mutable rows : int }

type node = Leaf of leaf | Inner of inner

and inner = {
  mutable mask : int; (* bit q set iff subsquare q is non-empty *)
  mutable kids : node array; (* packed: only present subsquares, in q order *)
}

let new_leaf () = { n = 0; cells = Sparse [||]; rows = 0 }

let leaf_mem lf off =
  match lf.cells with
  | Dense bv -> Bitvec.unsafe_get bv off
  | Sparse a ->
    let i = pk_lower a lf.n off in
    i < lf.n && pk_get a i = off

let mark_row lf off = lf.rows <- lf.rows lor (1 lsl (off / leaf_side land 31))
let row_maybe lf r = (lf.rows lsr (r land 31)) land 1 <> 0

let leaf_add lf off =
  mark_row lf off;
  match lf.cells with
  | Dense bv ->
    if Bitvec.unsafe_get bv off then false
    else begin
      Bitvec.set bv off;
      lf.n <- lf.n + 1;
      true
    end
  | Sparse a ->
    let i = pk_lower a lf.n off in
    if i < lf.n && pk_get a i = off then false
    else begin
      (if lf.n + 1 >= dense_at then begin
         let bv = Bitvec.create leaf_cells in
         for j = 0 to lf.n - 1 do
           Bitvec.set bv (pk_get a j)
         done;
         Bitvec.set bv off;
         lf.cells <- Dense bv
       end
       else lf.cells <- Sparse (pk_insert a lf.n i off));
      lf.n <- lf.n + 1;
      true
    end

(* returns (removed, leaf now empty) *)
let leaf_remove lf off =
  match lf.cells with
  | Dense bv ->
    if not (Bitvec.unsafe_get bv off) then (false, false)
    else begin
      Bitvec.clear bv off;
      lf.n <- lf.n - 1;
      if lf.n < sparse_at then begin
        let a = Array.make (pk_words lf.n) 0 in
        let j = ref 0 in
        lf.rows <- 0;
        (* iter_ones ascends, so the packed array comes out sorted;
           the row-occupancy bitmap is rebuilt exactly as a side effect *)
        Bitvec.iter_ones
          (fun o ->
            pk_set a !j o;
            incr j;
            mark_row lf o)
          bv;
        lf.cells <- Sparse a
      end;
      (true, lf.n = 0)
    end
  | Sparse a ->
    let i = pk_lower a lf.n off in
    if i >= lf.n || pk_get a i <> off then (false, false)
    else begin
      lf.cells <- Sparse (pk_remove a lf.n i);
      lf.n <- lf.n - 1;
      (true, lf.n = 0)
    end

type stats = { grows : int }

type t = {
  mutable side : int; (* current matrix side; leaf_side * 4^k *)
  mutable root : node option;
  mutable live : int;
  obs : Obs.scope;
  c_adds : Obs.counter;
  c_removes : Obs.counter;
  c_grows : Obs.counter;
}

(* [tau] is accepted for signature uniformity with {!Dyn_binrel} but
   unused: there is no lazy-deletion schedule to tune. *)
let create ?tau () =
  ignore tau;
  let obs = Obs.private_scope "k2rel" in
  {
    side = leaf_side;
    root = None;
    live = 0;
    obs;
    c_adds = Obs.counter obs "adds";
    c_removes = Obs.counter obs "removes";
    c_grows = Obs.counter obs "grows";
  }

let obs t = t.obs
let stats t = { grows = Obs.value t.c_grows }
let live_pairs t = t.live
let side t = t.side

(* --- packed child bitmaps --- *)

let kid_slot mask q = Popcount.count (mask land ((1 lsl q) - 1))

let kid inner q =
  if inner.mask land (1 lsl q) = 0 then None else Some inner.kids.(kid_slot inner.mask q)

let dummy = Leaf { n = 0; cells = Sparse [||]; rows = 0 }

let set_kid inner q n =
  let slot = kid_slot inner.mask q in
  if inner.mask land (1 lsl q) <> 0 then inner.kids.(slot) <- n
  else begin
    let old = inner.kids in
    let len = Array.length old in
    let kids = Array.make (len + 1) n in
    Array.blit old 0 kids 0 slot;
    Array.blit old slot kids (slot + 1) (len - slot);
    inner.mask <- inner.mask lor (1 lsl q);
    inner.kids <- kids
  end

let remove_kid inner q =
  let slot = kid_slot inner.mask q in
  let old = inner.kids in
  let len = Array.length old in
  let kids = Array.make (max 0 (len - 1)) dummy in
  Array.blit old 0 kids 0 slot;
  Array.blit old (slot + 1) kids slot (len - 1 - slot);
  inner.mask <- inner.mask land lnot (1 lsl q);
  inner.kids <- kids

(* subsquare of (r, c) within a node of side [s]: row band picks the
   high two bits, column band the low two, so kids stay in row-major
   block order and row/column enumeration comes out ascending. *)
let square ~sub r c = (r / sub * branch) + (c / sub)

(* --- membership --- *)

let rec mem_node node ~s r c =
  match node with
  | Leaf lf -> leaf_mem lf ((r * leaf_side) + c)
  | Inner inner -> (
    let sub = s / branch in
    match kid inner (square ~sub r c) with
    | None -> false
    | Some n -> mem_node n ~s:sub (r mod sub) (c mod sub))

let related t o a =
  o >= 0 && a >= 0 && o < t.side && a < t.side
  && match t.root with None -> false | Some n -> mem_node n ~s:t.side o a

(* --- insertion --- *)

let rec add_node node ~s r c =
  match node with
  | Leaf lf -> leaf_add lf ((r * leaf_side) + c)
  | Inner inner ->
    let sub = s / branch in
    let q = square ~sub r c in
    let child =
      match kid inner q with
      | Some n -> n
      | None ->
        let n =
          if sub = leaf_side then Leaf (new_leaf ()) else Inner { mask = 0; kids = [||] }
        in
        set_kid inner q n;
        n
    in
    add_node child ~s:sub (r mod sub) (c mod sub)

let grow t =
  (match t.root with
  | None -> ()
  | Some old -> t.root <- Some (Inner { mask = 1; kids = [| old |] }));
  t.side <- branch * t.side;
  Obs.incr t.c_grows;
  Obs.record t.obs (Obs.Restructure { nf = t.side; structures = 1 })

let add t o a =
  if o < 0 || a < 0 then invalid_arg "K2_relation.add: negative id";
  while o >= t.side || a >= t.side do
    grow t
  done;
  let root =
    match t.root with
    | Some n -> n
    | None ->
      let n =
        if t.side = leaf_side then Leaf (new_leaf ()) else Inner { mask = 0; kids = [||] }
      in
      t.root <- Some n;
      n
  in
  let added = add_node root ~s:t.side o a in
  if added then begin
    t.live <- t.live + 1;
    Obs.incr t.c_adds
  end;
  added

(* --- deletion (with path pruning) --- *)

(* returns (removed, child now empty) *)
let rec remove_node node ~s r c =
  match node with
  | Leaf lf -> leaf_remove lf ((r * leaf_side) + c)
  | Inner inner -> (
    let sub = s / branch in
    let q = square ~sub r c in
    match kid inner q with
    | None -> (false, false)
    | Some n ->
      let removed, empty = remove_node n ~s:sub (r mod sub) (c mod sub) in
      if empty then remove_kid inner q;
      (removed, removed && inner.mask = 0))

let remove t o a =
  if o < 0 || a < 0 || o >= t.side || a >= t.side then false
  else
    match t.root with
    | None -> false
    | Some root ->
      let removed, empty = remove_node root ~s:t.side o a in
      if empty then t.root <- None;
      if removed then begin
        t.live <- t.live - 1;
        Obs.incr t.c_removes
      end;
      removed

(* --- row / column enumeration --- *)

let leaf_iter_row lf ~cbase r ~f =
  if not (row_maybe lf r) then ()
  else
  let lo = r * leaf_side in
  match lf.cells with
  | Dense bv ->
    for c = 0 to leaf_side - 1 do
      if Bitvec.unsafe_get bv (lo + c) then f (cbase + c)
    done
  | Sparse a ->
    (* row-major offsets: the row is one contiguous sorted run *)
    let i = ref (pk_lower a lf.n lo) in
    let hi = lo + leaf_side in
    let continue = ref true in
    while !continue && !i < lf.n do
      let off = pk_get a !i in
      if off < hi then begin
        f (cbase + off - lo);
        incr i
      end
      else continue := false
    done

let leaf_iter_col lf ~rbase c ~f =
  match lf.cells with
  | Dense bv ->
    for r = 0 to leaf_side - 1 do
      if Bitvec.unsafe_get bv ((r * leaf_side) + c) then f (rbase + r)
    done
  | Sparse a ->
    for i = 0 to lf.n - 1 do
      let off = pk_get a i in
      if off land (leaf_side - 1) = c then f (rbase + (off / leaf_side))
    done

(* Enumerate row r of [node] (columns ascending: kids are visited in
   row-major block order, so the four column bands of the row's band
   are adjacent and ascending). *)
let rec iter_row node ~s ~cbase r ~f =
  match node with
  | Leaf lf -> leaf_iter_row lf ~cbase r ~f
  | Inner inner ->
    let sub = s / branch in
    let qr = r / sub * branch in
    let r' = r mod sub in
    for qc = 0 to branch - 1 do
      match kid inner (qr + qc) with
      | Some n -> iter_row n ~s:sub ~cbase:(cbase + (qc * sub)) r' ~f
      | None -> ()
    done

let rec iter_col node ~s ~rbase c ~f =
  match node with
  | Leaf lf -> leaf_iter_col lf ~rbase c ~f
  | Inner inner ->
    let sub = s / branch in
    let qc = c / sub in
    let c' = c mod sub in
    for qr = 0 to branch - 1 do
      match kid inner ((qr * branch) + qc) with
      | Some n -> iter_col n ~s:sub ~rbase:(rbase + (qr * sub)) c' ~f
      | None -> ()
    done

let labels_of_object t o ~f =
  if o >= 0 && o < t.side then
    match t.root with None -> () | Some n -> iter_row n ~s:t.side ~cbase:0 o ~f

let objects_of_label t a ~f =
  if a >= 0 && a < t.side then
    match t.root with None -> () | Some n -> iter_col n ~s:t.side ~rbase:0 a ~f

(* enumeration is already ascending; collect without re-sorting *)
let labels_of_object_list t o =
  let acc = ref [] in
  labels_of_object t o ~f:(fun a -> acc := a :: !acc);
  List.rev !acc

let objects_of_label_list t a =
  let acc = ref [] in
  objects_of_label t a ~f:(fun o -> acc := o :: !acc);
  List.rev !acc

let count_labels_of_object t o =
  let n = ref 0 in
  labels_of_object t o ~f:(fun _ -> incr n);
  !n

let count_objects_of_label t a =
  let n = ref 0 in
  objects_of_label t a ~f:(fun _ -> incr n);
  !n

(* --- full traversal (persistence) --- *)

let rec iter_node node ~s ~rbase ~cbase ~f =
  match node with
  | Leaf lf -> (
    match lf.cells with
    | Dense bv ->
      Bitvec.iter_ones (fun i -> f (rbase + (i / leaf_side)) (cbase + (i mod leaf_side))) bv
    | Sparse a ->
      for i = 0 to lf.n - 1 do
        let off = pk_get a i in
        f (rbase + (off / leaf_side)) (cbase + (off mod leaf_side))
      done)
  | Inner inner ->
    let sub = s / branch in
    for q = 0 to (branch * branch) - 1 do
      match kid inner q with
      | None -> ()
      | Some n ->
        iter_node n ~s:sub ~rbase:(rbase + (q / branch * sub)) ~cbase:(cbase + (q mod branch * sub))
          ~f
    done

(* Every live pair, in block (quadtree) order -- the snapshot unit,
   exactly as for {!Dyn_binrel}. *)
let iter_pairs t ~f =
  match t.root with None -> () | Some n -> iter_node n ~s:t.side ~rbase:0 ~cbase:0 ~f

let pairs_list t =
  let acc = ref [] in
  iter_pairs t ~f:(fun o a -> acc := (o, a) :: !acc);
  List.sort compare !acc

(* --- space --- *)

let word_bits = Popcount.word_bits

(* Measured resident size: per inner node one mask word, two words of
   array bookkeeping and one word per present child pointer; per leaf
   its population word, a pointer word, and either the packed offset
   array or the bitmap.  All directory constants included -- comparable
   with [Dyn_binrel.space_bits]. *)
let space_bits t =
  let rec go = function
    | Leaf lf -> (
      match lf.cells with
      | Sparse a -> (4 + Array.length a) * word_bits
      | Dense bv -> Bitvec.space_bits bv + (3 * word_bits))
    | Inner inner ->
      Array.fold_left
        (fun acc n -> acc + go n)
        ((3 + Array.length inner.kids) * word_bits)
        inner.kids
  in
  match t.root with None -> word_bits | Some n -> word_bits + go n
