(** Dynamic directed graph (Theorem 3): a binary relation on the node
    set; edge u -> v is "object u related to label v". *)

type t

val create : ?tau:int -> unit -> t

(** [add_edge t u v]; [false] if the edge exists. *)
val add_edge : t -> int -> int -> bool

(** [remove_edge t u v]; [false] if absent. *)
val remove_edge : t -> int -> int -> bool

val mem_edge : t -> int -> int -> bool
val edge_count : t -> int

(** Sorted out-neighbors of [u]. *)
val successors : t -> int -> int list

(** Sorted in-neighbors of [v]. *)
val predecessors : t -> int -> int list

val iter_successors : t -> int -> f:(int -> unit) -> unit
val iter_predecessors : t -> int -> f:(int -> unit) -> unit
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val space_bits : t -> int
val stats : t -> Dyn_binrel.stats

(** {1 Persistence}

    A graph's snapshot unit is its edge set (see
    {!Dyn_binrel.iter_pairs}). *)

(** Every live edge [u -> v], in no particular order. *)
val iter_edges : t -> f:(int -> int -> unit) -> unit

(** {!iter_edges} collected and sorted. *)
val edges : t -> (int * int) list
