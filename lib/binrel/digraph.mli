(** Dynamic directed graph (Theorem 3): a binary relation on the node
    set; edge u -> v is "object u related to label v". The relation
    itself is backend-chosen through {!Rel_backend} — the string-based
    hierarchy ([Str], the default) or the k²-tree adjacency matrix
    ([K2]) — with identical query answers either way. *)

type t

(** [create ()] is the empty graph. [tau] tunes the [Str] backend's
    lazy-deletion schedule (ignored by [K2]); [backend] (default
    [Str]) picks the relation representation for the graph's whole
    lifetime. *)
val create : ?tau:int -> ?backend:Rel_backend.kind -> unit -> t

(** The backend this graph was created with. *)
val backend : t -> Rel_backend.kind

(** [add_edge t u v]; [false] if the edge exists. *)
val add_edge : t -> int -> int -> bool

(** [remove_edge t u v]; [false] if absent. *)
val remove_edge : t -> int -> int -> bool

(** Adjacency test: does edge [u -> v] exist? *)
val mem_edge : t -> int -> int -> bool

(** Number of live edges. *)
val edge_count : t -> int

(** Sorted out-neighbors of [u]. *)
val successors : t -> int -> int list

(** Sorted in-neighbors of [v]. *)
val predecessors : t -> int -> int list

(** Iterate out-neighbors of [u] in ascending order. *)
val iter_successors : t -> int -> f:(int -> unit) -> unit

(** Iterate in-neighbors of [v] in ascending order. *)
val iter_predecessors : t -> int -> f:(int -> unit) -> unit

(** Out-degree of [u]. *)
val out_degree : t -> int -> int

(** In-degree of [v]. *)
val in_degree : t -> int -> int

(** Measured resident size in bits; comparable across backends. *)
val space_bits : t -> int

(** Update counters of the underlying relation; fields foreign to the
    chosen backend read zero (see {!Rel_backend.stats}). *)
val stats : t -> Rel_backend.stats

(** {1 Persistence}

    A graph's snapshot unit is its edge set — for {e every} backend:
    both representations are deterministic functions of the live pairs
    and are rebuilt on reinsertion ({!Rel_backend.iter_pairs}). The
    backend kind itself is a runtime choice and is deliberately not
    persisted: pairs recovered from a snapshot may be re-ingested into
    either backend. *)

(** Every live edge [u -> v], in no particular order. *)
val iter_edges : t -> f:(int -> int -> unit) -> unit

(** {!iter_edges} collected and sorted. *)
val edges : t -> (int * int) list

(** [of_edges pairs] rebuilds a graph from a persisted edge set
    (duplicates ignored) — the recovery path of the store codec. *)
val of_edges : ?tau:int -> ?backend:Rel_backend.kind -> (int * int) list -> t
