(** Linear-time suffix array construction (SA-IS, Nong-Zhang-Chan 2009).

    The optional [tick] callback is invoked once per O(1) of work, so the
    construction can run inside a [Dsdg_incr.Incremental] background
    job -- the paper's (u(n), w(n))-constructibility requirement. *)

(** [raw t sigma] is the suffix array of [t], which must end with a
    unique smallest sentinel and hold values in [[0, sigma)]. *)
val raw : ?tick:(unit -> unit) -> int array -> int -> int array

(** [suffix_array s] is the suffix order of an arbitrary non-negative
    array (a sentinel is appended internally and dropped). *)
val suffix_array : ?tick:(unit -> unit) -> int array -> int array

val suffix_array_of_string : ?tick:(unit -> unit) -> string -> int array

(** Quadratic reference implementation, for tests. *)
val naive : int array -> int array
