(* Baseline dynamic FM-index over a document collection, in the style of
   Chan-Hon-Lam [9] / Makinen-Navarro [30] / Navarro-Nekrich [35]: the
   BWT of the collection is maintained directly in a dynamic wavelet tree
   under document insertions and deletions.

   Every operation on the BWT costs O(log n log sigma) through the
   dynamic rank/select machinery -- this is precisely the Fredman-Saks
   bottleneck the paper's Transformations avoid.  Used as the comparison
   baseline for Table 2.  The wavelet tree and the symbol accumulator go
   through the backend seams (Seq_backend / Sums), so the baseline runs
   on either the AVL or the SPSI substrate.

   Conventions: separator/sentinel symbol 1 terminates every document
   (pattern characters are code+2 as elsewhere).  Sentinel rows occupy
   the prefix [0, ndocs) of the row space in document-insertion order.
   That order is tracked indexably: [sent_docs] appends each doc id to
   the next slot forever, [sent_alive] keeps one liveness bit per slot,
   and a doc's sentinel row is the rank of its slot among live slots --
   every lookup is O(log n), where the old list walk was O(ndocs) per
   insert/delete/locate (quadratic under churn).

   Counting queries (backward search) are fully supported.  Locating is
   supported by walking LF to the document start (cost O(off * log n
   log sigma)); the production-quality sampled-locate of the static side
   is deliberately not replicated here -- the baseline exists to measure
   count/update costs (see DESIGN.md). *)

open Dsdg_bits
open Dsdg_delbits

let sep = 1
let sigma = 258
let sym_of_char c = Char.code c + 2

type t = {
  backend : Seq_backend.kind;
  wt : Dyn_wavelet.t; (* the BWT *)
  alpha : Sums.t; (* symbol counts; C(c) = prefix sums *)
  mutable sent_docs : int array; (* slot -> doc id, append-only *)
  mutable sent_len : int; (* slots used *)
  sent_alive : Seq_backend.bv; (* one bit per slot: doc still present? *)
  sent_slot : (int, int) Hashtbl.t; (* doc id -> slot *)
  docs : (int, int) Hashtbl.t; (* doc id -> length *)
}

let create ?(backend = Seq_backend.Avl) () =
  {
    backend;
    wt = Dyn_wavelet.create ~backend ~sigma ();
    alpha = Sums.create backend sigma;
    sent_docs = Array.make 16 0;
    sent_len = 0;
    sent_alive = Seq_backend.create backend;
    sent_slot = Hashtbl.create 16;
    docs = Hashtbl.create 16;
  }

let backend t = t.backend
let doc_count t = Hashtbl.length t.docs
let total_symbols t = Dyn_wavelet.length t.wt
let mem t id = Hashtbl.mem t.docs id

(* C(c): number of BWT symbols strictly smaller than c. *)
let c_before t c = Sums.prefix t.alpha c

let wt_insert t pos c =
  Dyn_wavelet.insert t.wt pos c;
  Sums.add t.alpha c 1

let wt_delete t pos =
  let c = Dyn_wavelet.access t.wt pos in
  Dyn_wavelet.delete t.wt pos;
  Sums.add t.alpha c (-1);
  c

(* Sentinel-row index of a live doc: rank of its slot among live slots. *)
let sentinel_row t id =
  match Hashtbl.find_opt t.sent_slot id with
  | None -> invalid_arg "Dyn_fm.sentinel_row: unknown doc"
  | Some slot -> Seq_backend.rank1 t.sent_alive slot

(* Doc owning sentinel row [k] (k-th live slot). *)
let doc_of_sentinel t k = t.sent_docs.(Seq_backend.select1 t.sent_alive k)

let sentinel_append t id =
  if t.sent_len = Array.length t.sent_docs then begin
    let nd = Array.make (2 * t.sent_len) 0 in
    Array.blit t.sent_docs 0 nd 0 t.sent_len;
    t.sent_docs <- nd
  end;
  t.sent_docs.(t.sent_len) <- id;
  Hashtbl.replace t.sent_slot id t.sent_len;
  Seq_backend.push_back t.sent_alive true;
  t.sent_len <- t.sent_len + 1

let sentinel_remove t id =
  match Hashtbl.find_opt t.sent_slot id with
  | None -> ()
  | Some slot ->
    Seq_backend.set t.sent_alive slot false;
    Hashtbl.remove t.sent_slot id

(* Insert document [text] with id [id]: standard backward extension.  The
   new sentinel becomes the last sentinel row; we then insert the
   document's symbols from last to first, tracking the insertion point
   with LF steps. *)
let insert t ~doc (text : string) =
  if Hashtbl.mem t.docs doc then invalid_arg "Dyn_fm.insert: duplicate doc id";
  let m = String.length text in
  let ndocs = doc_count t in
  Hashtbl.replace t.docs doc m;
  sentinel_append t doc;
  (* the sentinel row of the new doc is row [ndocs]; its L-symbol is the
     last character of the text (or the sentinel itself if empty) *)
  let pos = ref ndocs in
  for i = m - 1 downto 0 do
    let c = sym_of_char text.[i] in
    wt_insert t !pos c;
    (* +1: the new document's sentinel-first row already exists (inserted
       first, always inside the sentinel block hence before any char
       block) but its sentinel symbol only enters L at the very end, so
       C-based LF undercounts by exactly one *)
    pos := c_before t c + Dyn_wavelet.rank t.wt c !pos + 1
  done;
  (* finally the row of the full suffix text[0..]: its L-symbol is the
     sentinel *)
  wt_insert t !pos sep

(* Backward search; returns the BWT row range of suffixes prefixed by p. *)
let range t (p : string) : (int * int) option =
  let len = String.length p in
  if len = 0 then invalid_arg "Dyn_fm.range: empty pattern";
  let sp = ref 0 and ep = ref (Dyn_wavelet.length t.wt) in
  let ok = ref true in
  let i = ref (len - 1) in
  while !ok && !i >= 0 do
    let c = sym_of_char p.[!i] in
    sp := c_before t c + Dyn_wavelet.rank t.wt c !sp;
    ep := c_before t c + Dyn_wavelet.rank t.wt c !ep;
    if !sp >= !ep then ok := false;
    decr i
  done;
  if !ok then Some (!sp, !ep) else None

let count t p = match range t p with None -> 0 | Some (sp, ep) -> ep - sp

(* First symbol of the suffix in [row]: the c with C(c) <= row < C(c+1) —
   one searchable-partial-sums descent over the symbol counts. *)
let first_symbol t row = Sums.search t.alpha row

(* One psi step: row of suffix T[j..] -> row of suffix T[j+1..].  This is
   the exact inverse of the LF links the insertion walk created, so it is
   consistent even across equal sentinels. *)
let psi t row =
  let c = first_symbol t row in
  (c, Dyn_wavelet.select t.wt c (row - c_before t c))

(* Delete document [id]: starting from its sentinel row, walk backward
   through the document with char-LF steps -- these never select within
   the sentinel class, where L-order and block order may disagree --
   collect the m+1 rows, then remove them in decreasing row order so
   earlier removals do not shift later targets. *)
let delete t id =
  match Hashtbl.find_opt t.docs id with
  | None -> false
  | Some len ->
    let k = sentinel_row t id in
    let rows = Array.make (len + 1) 0 in
    rows.(0) <- k;
    let cur = ref k in
    for step = 1 to len do
      (* L[cur] is a character of the document; LF to the previous row *)
      let c = Dyn_wavelet.access t.wt !cur in
      cur := c_before t c + Dyn_wavelet.rank t.wt c !cur;
      rows.(step) <- !cur
    done;
    (* at the end, L[cur] must be the document's sentinel *)
    Array.sort (fun a b -> compare b a) rows;
    Array.iter (fun row -> ignore (wt_delete t row)) rows;
    sentinel_remove t id;
    Hashtbl.remove t.docs id;
    true

(* Locate one occurrence: psi-walk forward until the sentinel block
   (rows [0, ndocs) hold the sentinel-first rotations, in slot order).
   Returns (doc, off).  O((len - off) * log n log sigma). *)
let locate t row =
  let row = ref row and steps = ref 0 in
  (* rows [0, ndocs) are exactly the sentinel-first rotations *)
  while !row >= doc_count t do
    let _, next = psi t !row in
    row := next;
    incr steps
  done;
  let doc = doc_of_sentinel t !row in
  let len = Hashtbl.find t.docs doc in
  (doc, len - !steps)

let search t p =
  match range t p with
  | None -> []
  | Some (sp, ep) -> List.sort compare (List.init (ep - sp) (fun k -> locate t (sp + k)))

(* Read-plane snapshot: O(sigma + ndocs).  The wavelet snapshot shares
   or copies bit data per the backend's snapshot semantics; alpha, the
   sentinel bookkeeping and the doc tables are small and copied
   outright. *)
let snapshot t =
  {
    backend = t.backend;
    wt = Dyn_wavelet.snapshot t.wt;
    alpha = Sums.copy t.alpha;
    sent_docs = Array.copy t.sent_docs;
    sent_len = t.sent_len;
    sent_alive = Seq_backend.snapshot t.sent_alive;
    sent_slot = Hashtbl.copy t.sent_slot;
    docs = Hashtbl.copy t.docs;
  }

let space_bits t =
  let w = Popcount.word_bits in
  Dyn_wavelet.space_bits t.wt + Sums.space_bits t.alpha
  + (Array.length t.sent_docs * w)
  + Seq_backend.space_bits t.sent_alive
  + (doc_count t * 4 * w)
