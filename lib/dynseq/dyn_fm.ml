(* Baseline dynamic FM-index over a document collection, in the style of
   Chan-Hon-Lam [9] / Makinen-Navarro [30] / Navarro-Nekrich [35]: the
   BWT of the collection is maintained directly in a dynamic wavelet tree
   under document insertions and deletions.

   Every operation on the BWT costs O(log n log sigma) through the
   dynamic rank/select machinery -- this is precisely the Fredman-Saks
   bottleneck the paper's Transformations avoid.  Used as the comparison
   baseline for Table 2.

   Conventions: separator/sentinel symbol 1 terminates every document
   (pattern characters are code+2 as elsewhere).  Sentinel rows occupy
   the prefix [0, ndocs) of the row space; a new document's sentinel is
   appended as the last of that block, and [sentinel_order] remembers
   which document owns which sentinel row.

   Counting queries (backward search) are fully supported.  Locating is
   supported by walking LF to the document start (cost O(off * log n
   log sigma)); the production-quality sampled-locate of the static side
   is deliberately not replicated here -- the baseline exists to measure
   count/update costs (see DESIGN.md). *)

open Dsdg_delbits

let sep = 1
let sigma = 258
let sym_of_char c = Char.code c + 2

type t = {
  wt : Dyn_wavelet.t; (* the BWT *)
  alpha : Fenwick.t; (* symbol counts; C(c) = prefix sums *)
  mutable sentinel_order : int list; (* doc ids in sentinel-row order *)
  docs : (int, int) Hashtbl.t; (* doc id -> length *)
}

let create () =
  {
    wt = Dyn_wavelet.create ~sigma;
    alpha = Fenwick.create sigma;
    sentinel_order = [];
    docs = Hashtbl.create 16;
  }

let doc_count t = Hashtbl.length t.docs
let total_symbols t = Dyn_wavelet.length t.wt
let mem t id = Hashtbl.mem t.docs id

(* C(c): number of BWT symbols strictly smaller than c. *)
let c_before t c = Fenwick.prefix t.alpha c

let wt_insert t pos c =
  Dyn_wavelet.insert t.wt pos c;
  Fenwick.add t.alpha c 1

let wt_delete t pos =
  let c = Dyn_wavelet.access t.wt pos in
  Dyn_wavelet.delete t.wt pos;
  Fenwick.add t.alpha c (-1);
  c

(* Insert document [text] with id [id]: standard backward extension.  The
   new sentinel becomes the last sentinel row; we then insert the
   document's symbols from last to first, tracking the insertion point
   with LF steps. *)
let insert t ~doc (text : string) =
  if Hashtbl.mem t.docs doc then invalid_arg "Dyn_fm.insert: duplicate doc id";
  let m = String.length text in
  let ndocs = doc_count t in
  Hashtbl.replace t.docs doc m;
  t.sentinel_order <- t.sentinel_order @ [ doc ];
  (* the sentinel row of the new doc is row [ndocs]; its L-symbol is the
     last character of the text (or the sentinel itself if empty) *)
  let pos = ref ndocs in
  for i = m - 1 downto 0 do
    let c = sym_of_char text.[i] in
    wt_insert t !pos c;
    (* +1: the new document's sentinel-first row already exists (inserted
       first, always inside the sentinel block hence before any char
       block) but its sentinel symbol only enters L at the very end, so
       C-based LF undercounts by exactly one *)
    pos := c_before t c + Dyn_wavelet.rank t.wt c !pos + 1
  done;
  (* finally the row of the full suffix text[0..]: its L-symbol is the
     sentinel *)
  wt_insert t !pos sep

(* Backward search; returns the BWT row range of suffixes prefixed by p. *)
let range t (p : string) : (int * int) option =
  let len = String.length p in
  if len = 0 then invalid_arg "Dyn_fm.range: empty pattern";
  let sp = ref 0 and ep = ref (Dyn_wavelet.length t.wt) in
  let ok = ref true in
  let i = ref (len - 1) in
  while !ok && !i >= 0 do
    let c = sym_of_char p.[!i] in
    sp := c_before t c + Dyn_wavelet.rank t.wt c !sp;
    ep := c_before t c + Dyn_wavelet.rank t.wt c !ep;
    if !sp >= !ep then ok := false;
    decr i
  done;
  if !ok then Some (!sp, !ep) else None

let count t p = match range t p with None -> 0 | Some (sp, ep) -> ep - sp

(* First symbol of the suffix in [row]: the c with C(c) <= row < C(c+1). *)
let first_symbol t row =
  let lo = ref 0 and hi = ref sigma in
  (* largest c with C(c) <= row *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if c_before t mid <= row then lo := mid else hi := mid
  done;
  !lo

(* One psi step: row of suffix T[j..] -> row of suffix T[j+1..].  This is
   the exact inverse of the LF links the insertion walk created, so it is
   consistent even across equal sentinels. *)
let psi t row =
  let c = first_symbol t row in
  (c, Dyn_wavelet.select t.wt c (row - c_before t c))

(* Delete document [id]: starting from its sentinel row (whose block
   position is tracked exactly by [sentinel_order]), walk backward through
   the document with char-LF steps -- these never select within the
   sentinel class, where L-order and block order may disagree -- collect
   the m+1 rows, then remove them in decreasing row order so earlier
   removals do not shift later targets. *)
let delete t id =
  match Hashtbl.find_opt t.docs id with
  | None -> false
  | Some len ->
    (* sentinel row index = position of id in sentinel_order *)
    let rec index_of i = function
      | [] -> invalid_arg "Dyn_fm.delete: corrupt sentinel order"
      | d :: rest -> if d = id then i else index_of (i + 1) rest
    in
    let k = index_of 0 t.sentinel_order in
    let rows = Array.make (len + 1) 0 in
    rows.(0) <- k;
    let cur = ref k in
    for step = 1 to len do
      (* L[cur] is a character of the document; LF to the previous row *)
      let c = Dyn_wavelet.access t.wt !cur in
      cur := c_before t c + Dyn_wavelet.rank t.wt c !cur;
      rows.(step) <- !cur
    done;
    (* at the end, L[cur] must be the document's sentinel *)
    Array.sort (fun a b -> compare b a) rows;
    Array.iter (fun row -> ignore (wt_delete t row)) rows;
    t.sentinel_order <- List.filter (fun d -> d <> id) t.sentinel_order;
    Hashtbl.remove t.docs id;
    true

(* Locate one occurrence: psi-walk forward until the sentinel block
   (rows [0, ndocs) hold the sentinel-first rotations, in sentinel_order).
   Returns (doc, off).  O((len - off) * log n log sigma). *)
let locate t row =
  let row = ref row and steps = ref 0 in
  (* rows [0, ndocs) are exactly the sentinel-first rotations *)
  while !row >= doc_count t do
    let _, next = psi t !row in
    row := next;
    incr steps
  done;
  let doc = List.nth t.sentinel_order !row in
  let len = Hashtbl.find t.docs doc in
  (doc, len - !steps)

let search t p =
  match range t p with
  | None -> []
  | Some (sp, ep) -> List.sort compare (List.init (ep - sp) (fun k -> locate t (sp + k)))

(* Read-plane snapshot: O(sigma + ndocs).  The wavelet snapshot shares
   all bit data (path-copying underneath); alpha and the doc table are
   small and copied outright; sentinel_order is an immutable list. *)
let snapshot t =
  {
    wt = Dyn_wavelet.snapshot t.wt;
    alpha = Fenwick.copy t.alpha;
    sentinel_order = t.sentinel_order;
    docs = Hashtbl.copy t.docs;
  }

let space_bits t =
  Dyn_wavelet.space_bits t.wt + Fenwick.space_bits t.alpha
  + (doc_count t * 2 * 63)
