(** SPSI-style dynamic bit vector: insert / delete / rank / select in
    O(log n) with cache-friendly constants.

    A B-tree of high-fanout internal nodes caching (subtree length,
    subtree popcount) in flat arrays, over word-packed leaves of several
    hundred bits — the layout of Prezza's DYNAMIC and Nishimoto's
    B-tree_plus_alpha. Same semantics as {!Dyn_bitvec} (the AVL
    baseline), including [Invalid_argument] on out-of-range indices;
    updates mutate in place, so {!snapshot} deep-copies. *)

type t

val create : unit -> t
val len : t -> int
val ones : t -> int
val zeros : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit

(** [insert t i b] inserts bit [b] at position [i], shifting the
    suffix. *)
val insert : t -> int -> bool -> unit

(** [delete t i] removes bit [i]. *)
val delete : t -> int -> unit

(** Ones in positions [[0, i)]. *)
val rank1 : t -> int -> int

val rank0 : t -> int -> int

(** Position of the [k]-th one (0-based); raises [Invalid_argument] out
    of range. *)
val select1 : t -> int -> int

(** Position of the [k]-th zero; raises [Invalid_argument] out of range. *)
val select0 : t -> int -> int

val push_back : t -> bool -> unit
val to_bools : t -> bool list

(** Deep copy, O(n/62) words: the B-tree mutates in place, so snapshot
    isolation costs a full copy (the price of allocation-free updates;
    the AVL backend snapshots in O(1) instead). *)
val snapshot : t -> t

(** Leaf payload words, counter arrays and headers, in 62-bit words. *)
val space_bits : t -> int

(**/**)

(** Internal geometry, exposed for the conformance suite's boundary
    cases. *)

val leaf_max : int

val fanout : int
