(* Dynamic wavelet tree over alphabet [0, sigma): access / rank / select /
   insert / delete in O(log n log sigma).  Combined with a dynamic
   bitvector this is the dynamic-rank/select machinery of the baseline
   indexes the paper improves on.  The per-node bitvectors go through
   the [Seq_backend] seam, so the whole tree runs on either the AVL or
   the SPSI substrate. *)

open Dsdg_bits

type node =
  | Leaf of int
  | Node of {
      bv : Seq_backend.bv;
      lo : int;
      hi : int;
      left : node;
      right : node;
    }

type t = {
  root : node;
  sigma : int;
  backend : Seq_backend.kind;
  mutable length : int;
}

let rec make_node backend lo hi =
  if hi - lo = 1 then Leaf lo
  else begin
    let mid = (lo + hi) / 2 in
    Node
      {
        bv = Seq_backend.create backend;
        lo;
        hi;
        left = make_node backend lo mid;
        right = make_node backend mid hi;
      }
  end

let create ?(backend = Seq_backend.Avl) ~sigma () =
  if sigma < 1 then invalid_arg "Dyn_wavelet.create";
  { root = make_node backend 0 sigma; sigma; backend; length = 0 }

let length t = t.length
let sigma t = t.sigma
let backend t = t.backend

let insert t pos sym =
  if pos < 0 || pos > t.length then invalid_arg "Dyn_wavelet.insert: pos";
  if sym < 0 || sym >= t.sigma then invalid_arg "Dyn_wavelet.insert: sym";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; lo; hi; left; right } ->
      let mid = (lo + hi) / 2 in
      let bit = sym >= mid in
      Seq_backend.insert bv pos bit;
      let child_pos = if bit then Seq_backend.rank1 bv pos else Seq_backend.rank0 bv pos in
      go (if bit then right else left) child_pos
  in
  go t.root pos;
  t.length <- t.length + 1

let delete t pos =
  if pos < 0 || pos >= t.length then invalid_arg "Dyn_wavelet.delete";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; left; right; _ } ->
      let bit = Seq_backend.get bv pos in
      let child_pos = if bit then Seq_backend.rank1 bv pos else Seq_backend.rank0 bv pos in
      Seq_backend.delete bv pos;
      go (if bit then right else left) child_pos
  in
  go t.root pos;
  t.length <- t.length - 1

let access t pos =
  if pos < 0 || pos >= t.length then invalid_arg "Dyn_wavelet.access";
  let rec go node pos =
    match node with
    | Leaf c -> c
    | Node { bv; left; right; _ } ->
      if Seq_backend.get bv pos then go right (Seq_backend.rank1 bv pos)
      else go left (Seq_backend.rank0 bv pos)
  in
  go t.root pos

let rank t sym pos =
  if pos < 0 || pos > t.length then invalid_arg "Dyn_wavelet.rank";
  if sym < 0 || sym >= t.sigma then 0
  else begin
    let rec go node pos =
      if pos = 0 then 0
      else
        match node with
        | Leaf _ -> pos
        | Node { bv; lo; hi; left; right } ->
          let mid = (lo + hi) / 2 in
          if sym >= mid then go right (Seq_backend.rank1 bv pos)
          else go left (Seq_backend.rank0 bv pos)
    in
    go t.root pos
  end

let select t sym k =
  if k < 0 then invalid_arg "Dyn_wavelet.select";
  if sym < 0 || sym >= t.sigma then raise Not_found;
  let rec go node k =
    match node with
    | Leaf _ -> k
    | Node { bv; lo; hi; left; right } ->
      let mid = (lo + hi) / 2 in
      if sym >= mid then begin
        let pos = go right k in
        if pos >= Seq_backend.ones bv then raise Not_found;
        Seq_backend.select1 bv pos
      end
      else begin
        let pos = go left k in
        if pos >= Seq_backend.zeros bv then raise Not_found;
        Seq_backend.select0 bv pos
      end
  in
  let pos = go t.root k in
  if pos >= t.length then raise Not_found else pos

let count t sym = rank t sym t.length

(* Snapshot in O(sigma) node visits: the node shape is fixed at
   creation, so a frozen copy only needs to capture each node's bitvec
   (O(1) for the AVL backend, a deep copy for SPSI).  The result is an
   independent [t] answering every query, safe to share across
   domains. *)
let snapshot t =
  let rec go = function
    | Leaf _ as l -> l
    | Node { bv; lo; hi; left; right } ->
      Node { bv = Seq_backend.snapshot bv; lo; hi; left = go left; right = go right }
  in
  { root = go t.root; sigma = t.sigma; backend = t.backend; length = t.length }

let to_array t = Array.init t.length (access t)

let space_bits t =
  let w = Popcount.word_bits in
  let rec go = function
    | Leaf _ -> w
    | Node { bv; left; right; _ } -> Seq_backend.space_bits bv + go left + go right + (4 * w)
  in
  go t.root
