(* Dynamic wavelet tree over alphabet [0, sigma): access / rank / select /
   insert / delete in O(log n log sigma).  Combined with Dyn_bitvec this
   is the dynamic-rank/select machinery of the baseline indexes the paper
   improves on. *)

type node =
  | Leaf of int
  | Node of {
      bv : Dyn_bitvec.t;
      lo : int;
      hi : int;
      left : node;
      right : node;
    }

type t = {
  root : node;
  sigma : int;
  mutable length : int;
}

let rec make_node lo hi =
  if hi - lo = 1 then Leaf lo
  else begin
    let mid = (lo + hi) / 2 in
    Node { bv = Dyn_bitvec.create (); lo; hi; left = make_node lo mid; right = make_node mid hi }
  end

let create ~sigma =
  if sigma < 1 then invalid_arg "Dyn_wavelet.create";
  { root = make_node 0 sigma; sigma; length = 0 }

let length t = t.length
let sigma t = t.sigma

let insert t pos sym =
  if pos < 0 || pos > t.length then invalid_arg "Dyn_wavelet.insert: pos";
  if sym < 0 || sym >= t.sigma then invalid_arg "Dyn_wavelet.insert: sym";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; lo; hi; left; right } ->
      let mid = (lo + hi) / 2 in
      let bit = sym >= mid in
      Dyn_bitvec.insert bv pos bit;
      let child_pos = if bit then Dyn_bitvec.rank1 bv pos else Dyn_bitvec.rank0 bv pos in
      go (if bit then right else left) child_pos
  in
  go t.root pos;
  t.length <- t.length + 1

let delete t pos =
  if pos < 0 || pos >= t.length then invalid_arg "Dyn_wavelet.delete";
  let rec go node pos =
    match node with
    | Leaf _ -> ()
    | Node { bv; left; right; _ } ->
      let bit = Dyn_bitvec.get bv pos in
      let child_pos = if bit then Dyn_bitvec.rank1 bv pos else Dyn_bitvec.rank0 bv pos in
      Dyn_bitvec.delete bv pos;
      go (if bit then right else left) child_pos
  in
  go t.root pos;
  t.length <- t.length - 1

let access t pos =
  if pos < 0 || pos >= t.length then invalid_arg "Dyn_wavelet.access";
  let rec go node pos =
    match node with
    | Leaf c -> c
    | Node { bv; left; right; _ } ->
      if Dyn_bitvec.get bv pos then go right (Dyn_bitvec.rank1 bv pos)
      else go left (Dyn_bitvec.rank0 bv pos)
  in
  go t.root pos

let rank t sym pos =
  if pos < 0 || pos > t.length then invalid_arg "Dyn_wavelet.rank";
  if sym < 0 || sym >= t.sigma then 0
  else begin
    let rec go node pos =
      if pos = 0 then 0
      else
        match node with
        | Leaf _ -> pos
        | Node { bv; lo; hi; left; right } ->
          let mid = (lo + hi) / 2 in
          if sym >= mid then go right (Dyn_bitvec.rank1 bv pos)
          else go left (Dyn_bitvec.rank0 bv pos)
    in
    go t.root pos
  end

let select t sym k =
  if k < 0 then invalid_arg "Dyn_wavelet.select";
  if sym < 0 || sym >= t.sigma then raise Not_found;
  let rec go node k =
    match node with
    | Leaf _ -> k
    | Node { bv; lo; hi; left; right } ->
      let mid = (lo + hi) / 2 in
      if sym >= mid then begin
        let pos = go right k in
        if pos >= Dyn_bitvec.ones bv then raise Not_found;
        Dyn_bitvec.select1 bv pos
      end
      else begin
        let pos = go left k in
        if pos >= Dyn_bitvec.zeros bv then raise Not_found;
        Dyn_bitvec.select0 bv pos
      end
  in
  let pos = go t.root k in
  if pos >= t.length then raise Not_found else pos

let count t sym = rank t sym t.length

(* Snapshot in O(sigma): the node shape is fixed at creation, so a
   frozen copy only needs to capture each node's bitvec root
   (Dyn_bitvec.snapshot is O(1)).  The result is an independent [t]
   answering every query, safe to share across domains. *)
let snapshot t =
  let rec go = function
    | Leaf _ as l -> l
    | Node { bv; lo; hi; left; right } ->
      Node { bv = Dyn_bitvec.snapshot bv; lo; hi; left = go left; right = go right }
  in
  { root = go t.root; sigma = t.sigma; length = t.length }

let to_array t = Array.init t.length (access t)

let space_bits t =
  let rec go = function
    | Leaf _ -> 63
    | Node { bv; left; right; _ } -> Dyn_bitvec.space_bits bv + go left + go right + (4 * 63)
  in
  go t.root
