(** Dynamic bit vector: insert / delete / rank / select in O(log n).

    An AVL tree over packed bit chunks -- the machinery of the pre-2015
    dynamic compressed indexes the paper's framework replaces; kept here
    as the baseline substrate. *)

type t

val create : unit -> t
val len : t -> int
val ones : t -> int
val zeros : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit

(** [insert t i b] inserts bit [b] at position [i], shifting the
    suffix. *)
val insert : t -> int -> bool -> unit

(** [delete t i] removes bit [i]. *)
val delete : t -> int -> unit

(** Ones in positions [[0, i)]. *)
val rank1 : t -> int -> int

val rank0 : t -> int -> int

(** Position of the [k]-th one (0-based); raises [Invalid_argument] if
    [k < 0] or [k >= ones t] — the same out-of-range convention as
    {!insert}/{!delete}/{!rank1}. *)
val select1 : t -> int -> int

(** Position of the [k]-th zero; raises [Invalid_argument] out of range. *)
val select0 : t -> int -> int
val push_back : t -> bool -> unit
val to_bools : t -> bool list

(** [snapshot t] is an O(1) frozen copy: updates are path-copying, so
    the captured tree is immutable and safe to query from any domain
    while [t] keeps mutating. *)
val snapshot : t -> t
val space_bits : t -> int

(**/**)

(** Test-suite hook for {e split_leaf}'s word-level blit paths: split a
    bool array at [len/2] through the packed-chunk representation.
    Production splits always cut at a word-aligned midpoint, so the
    unaligned shift-and-stitch branch is only reachable here. *)
val split_chunk_for_tests : bool array -> bool array * bool array
