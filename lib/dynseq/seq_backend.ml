(* The dynamic-bitvector seam: one module type both substrates satisfy,
   a runtime [kind] (shared with the partial-sums seam in delbits so a
   single CLI flag switches the whole family), and a packed existential
   so callers like [Dyn_wavelet] can hold a backend-chosen bitvector in
   an ordinary field. *)

type kind = Dsdg_delbits.Sums.kind = Avl | Spsi

let kind_to_string = Dsdg_delbits.Sums.kind_to_string
let kind_of_string = Dsdg_delbits.Sums.kind_of_string
let all_kinds = Dsdg_delbits.Sums.all_kinds

module type S = sig
  type t

  val name : string
  val create : unit -> t
  val len : t -> int
  val ones : t -> int
  val zeros : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val insert : t -> int -> bool -> unit
  val delete : t -> int -> unit
  val rank1 : t -> int -> int
  val rank0 : t -> int -> int
  val select1 : t -> int -> int
  val select0 : t -> int -> int
  val push_back : t -> bool -> unit
  val to_bools : t -> bool list
  val snapshot : t -> t
  val space_bits : t -> int
end

module Avl_backend : S = struct
  include Dyn_bitvec

  let name = "avl"
end

module Spsi_backend : S = struct
  include Spsi

  let name = "spsi"
end

let of_kind : kind -> (module S) = function
  | Avl -> (module Avl_backend)
  | Spsi -> (module Spsi_backend)

(* A bitvector packed with its operations: the wavelet tree stores one
   of these per node and stays backend-agnostic. *)
type bv = Bv : (module S with type t = 'a) * 'a -> bv

let create kind =
  let (module B) = of_kind kind in
  Bv ((module B), B.create ())

let kind_of (Bv ((module B), _)) =
  match kind_of_string B.name with Some k -> k | None -> assert false

let len (Bv ((module B), v)) = B.len v
let ones (Bv ((module B), v)) = B.ones v
let zeros (Bv ((module B), v)) = B.zeros v
let get (Bv ((module B), v)) i = B.get v i
let set (Bv ((module B), v)) i b = B.set v i b
let insert (Bv ((module B), v)) i b = B.insert v i b
let delete (Bv ((module B), v)) i = B.delete v i
let rank1 (Bv ((module B), v)) i = B.rank1 v i
let rank0 (Bv ((module B), v)) i = B.rank0 v i
let select1 (Bv ((module B), v)) k = B.select1 v k
let select0 (Bv ((module B), v)) k = B.select0 v k
let push_back (Bv ((module B), v)) b = B.push_back v b
let to_bools (Bv ((module B), v)) = B.to_bools v
let snapshot (Bv ((module B), v)) = Bv ((module B), B.snapshot v)
let space_bits (Bv ((module B), v)) = B.space_bits v
