(* Dynamic bit vector: insert/delete/rank/select in O(log n).

   This is the machinery underlying all pre-2015 dynamic compressed
   indexes ([30], [35] in the paper): a balanced search tree whose leaves
   are packed bit chunks.  The paper's whole point is that its
   Transformations AVOID paying this O(log n) per symbol on queries; we
   implement it as the baseline to compare against.

   Representation: an AVL tree; leaves hold up to [max_bits] bits packed
   in 62-bit words; every internal node caches length, popcount, height. *)

open Dsdg_bits

let w = Popcount.word_bits
let max_words = 8
let max_bits = max_words * w (* 496: split threshold *)

type tree =
  | Leaf of { len : int; data : int array }
  | Node of { l : tree; r : tree; len : int; ones : int; h : int }

type t = { mutable root : tree }

(* --- chunk (leaf) primitives --- *)

let chunk_ones data len =
  let nw = (len + w - 1) / w in
  let acc = ref 0 in
  for j = 0 to nw - 1 do
    acc := !acc + Popcount.count data.(j)
  done;
  !acc

let chunk_get data i = (data.(i / w) lsr (i mod w)) land 1

let chunk_set data i b =
  let j = i / w in
  if b = 1 then data.(j) <- data.(j) lor (1 lsl (i mod w))
  else data.(j) <- data.(j) land lnot (1 lsl (i mod w))

(* insert bit [b] at position [pos] in a chunk of [len] bits *)
let chunk_insert data len pos b =
  let nw = ((len + 1) + w - 1) / w in
  let out = Array.make nw 0 in
  let wi = pos / w and off = pos mod w in
  Array.blit data 0 out 0 (min wi (Array.length data));
  let mask_low = Popcount.low_mask off in
  let cur = if wi < Array.length data then data.(wi) else 0 in
  let low = cur land mask_low in
  let high = cur lsr off in
  out.(wi) <- (low lor (b lsl off) lor (high lsl (off + 1))) land Popcount.low_mask w;
  let carry = ref (high lsr (w - off - 1)) in
  for wj = wi + 1 to nw - 1 do
    let cur = if wj < Array.length data then data.(wj) else 0 in
    out.(wj) <- ((cur lsl 1) land Popcount.low_mask w) lor !carry;
    carry := cur lsr (w - 1)
  done;
  out

(* delete the bit at [pos] from a chunk of [len] bits *)
let chunk_delete data len pos =
  let nw = max 1 ((len - 1 + w - 1) / w) in
  let out = Array.make nw 0 in
  let wi = pos / w and off = pos mod w in
  Array.blit data 0 out 0 (min wi nw);
  let cur = data.(wi) in
  let low = cur land Popcount.low_mask off in
  let high = (cur lsr (off + 1)) lsl off in
  let first = low lor high in
  if wi < nw then out.(wi) <- first;
  let old_nw = (len + w - 1) / w in
  for wj = wi + 1 to old_nw - 1 do
    let bit0 = data.(wj) land 1 in
    if wj - 1 < nw then out.(wj - 1) <- out.(wj - 1) lor (bit0 lsl (w - 1));
    if wj < nw then out.(wj) <- data.(wj) lsr 1
  done;
  out

let chunk_rank1 data pos =
  (* pos may equal the chunk length, which can be word-aligned: the last
     word then lies past the array and contributes nothing *)
  let wi = pos / w and off = pos mod w in
  let acc = ref 0 in
  for j = 0 to min wi (Array.length data) - 1 do
    acc := !acc + Popcount.count data.(j)
  done;
  if off > 0 then acc := !acc + Popcount.count (data.(wi) land Popcount.low_mask off);
  !acc

(* --- tree helpers --- *)

let length = function Leaf { len; _ } -> len | Node { len; _ } -> len
let ones_of = function Leaf { len; data } -> chunk_ones data len | Node { ones; _ } -> ones
let height = function Leaf _ -> 1 | Node { h; _ } -> h

let mk_node l r =
  Node { l; r; len = length l + length r; ones = ones_of l + ones_of r; h = 1 + max (height l) (height r) }

let balance_factor = function Node { l; r; _ } -> height l - height r | Leaf _ -> 0

let rotate_left = function
  | Node { l; r = Node { l = rl; r = rr; _ }; _ } -> mk_node (mk_node l rl) rr
  | t -> t

let rotate_right = function
  | Node { l = Node { l = ll; r = lr; _ }; r; _ } -> mk_node ll (mk_node lr r)
  | t -> t

let rebalance t =
  match t with
  | Leaf _ -> t
  | Node { l; r; _ } ->
    let bf = balance_factor t in
    if bf > 1 then begin
      let l = if balance_factor l < 0 then rotate_left l else l in
      rotate_right (mk_node l r)
    end
    else if bf < -1 then begin
      let r = if balance_factor r > 0 then rotate_right r else r in
      rotate_left (mk_node l r)
    end
    else t

let empty_leaf () = Leaf { len = 0; data = [| 0 |] }

let split_leaf len data =
  (* split a full chunk into two halves: word-level blits, with a
     shift-and-stitch pass for the right half when the cut is not
     word-aligned.  Chunk arrays keep bits >= len zero, so only the
     shared boundary word needs masking. *)
  let half = len / 2 in
  let nl = max 1 ((half + w - 1) / w) in
  let nr = max 1 ((len - half + w - 1) / w) in
  let left = Array.make nl 0 in
  let right = Array.make nr 0 in
  let base = half / w and off = half mod w in
  Array.blit data 0 left 0 (min nl (Array.length data));
  if off > 0 then left.(nl - 1) <- left.(nl - 1) land Popcount.low_mask off;
  if off = 0 then Array.blit data base right 0 (min nr (Array.length data - base))
  else
    for j = 0 to nr - 1 do
      let lo = data.(base + j) lsr off in
      let hi = if base + j + 1 < Array.length data then data.(base + j + 1) else 0 in
      right.(j) <- (lo lor (hi lsl (w - off))) land Popcount.low_mask w
    done;
  mk_node (Leaf { len = half; data = left }) (Leaf { len = len - half; data = right })

let rec tree_insert t pos b =
  match t with
  | Leaf { len; data } ->
    let data' = chunk_insert data len pos b in
    if len + 1 > max_bits then split_leaf (len + 1) data' else Leaf { len = len + 1; data = data' }
  | Node { l; r; _ } ->
    let ll = length l in
    let t' = if pos <= ll then mk_node (tree_insert l pos b) r else mk_node l (tree_insert r (pos - ll) b) in
    rebalance t'

let rec tree_delete t pos =
  match t with
  | Leaf { len; data } -> Leaf { len = len - 1; data = chunk_delete data len pos }
  | Node { l; r; _ } ->
    let ll = length l in
    let t' =
      if pos < ll then begin
        let l' = tree_delete l pos in
        if length l' = 0 then r else mk_node l' r
      end
      else begin
        let r' = tree_delete r (pos - ll) in
        if length r' = 0 then l else mk_node l r'
      end
    in
    rebalance t'

let rec tree_get t pos =
  match t with
  | Leaf { data; _ } -> chunk_get data pos
  | Node { l; r; _ } ->
    let ll = length l in
    if pos < ll then tree_get l pos else tree_get r (pos - ll)

let rec tree_set t pos b =
  match t with
  | Leaf { len; data } ->
    let data = Array.copy data in
    chunk_set data pos b;
    Leaf { len; data }
  | Node { l; r; _ } ->
    let ll = length l in
    if pos < ll then mk_node (tree_set l pos b) r else mk_node l (tree_set r (pos - ll) b)

let rec tree_rank1 t pos =
  match t with
  | Leaf { data; _ } -> chunk_rank1 data pos
  | Node { l; r; _ } ->
    let ll = length l in
    if pos <= ll then tree_rank1 l pos else ones_of l + tree_rank1 r (pos - ll)

let rec tree_select t b k =
  (* position of the k-th (0-based) bit equal to b *)
  match t with
  | Leaf { len; data } ->
    let seen = ref 0 and res = ref (-1) in
    let i = ref 0 in
    while !res < 0 && !i < len do
      if chunk_get data !i = b then begin
        if !seen = k then res := !i;
        incr seen
      end;
      incr i
    done;
    !res
  | Node { l; r; _ } ->
    let cl = if b = 1 then ones_of l else length l - ones_of l in
    if k < cl then tree_select l b k else length l + tree_select r b (k - cl)

(* --- public API --- *)

let create () = { root = empty_leaf () }
let len t = length t.root
let ones t = ones_of t.root
let zeros t = len t - ones t

let get t i =
  if i < 0 || i >= len t then invalid_arg "Dyn_bitvec.get";
  tree_get t.root i = 1

let set t i b =
  if i < 0 || i >= len t then invalid_arg "Dyn_bitvec.set";
  t.root <- tree_set t.root i (if b then 1 else 0)

let insert t i b =
  if i < 0 || i > len t then invalid_arg "Dyn_bitvec.insert";
  t.root <- tree_insert t.root i (if b then 1 else 0)

let delete t i =
  if i < 0 || i >= len t then invalid_arg "Dyn_bitvec.delete";
  t.root <- tree_delete t.root i

let rank1 t i =
  if i < 0 || i > len t then invalid_arg "Dyn_bitvec.rank1";
  tree_rank1 t.root i

let rank0 t i = i - rank1 t i

let select1 t k =
  if k < 0 || k >= ones t then invalid_arg "Dyn_bitvec.select1";
  tree_select t.root 1 k

let select0 t k =
  if k < 0 || k >= zeros t then invalid_arg "Dyn_bitvec.select0";
  tree_select t.root 0 k

let push_back t b = insert t (len t) b

(* O(1) persistent snapshot: every tree node is immutable and
   insert/delete/set are path-copying (fresh leaf arrays, fresh spine),
   so capturing the root yields a frozen value that later mutations of
   [t] can never reach.  This is the read-plane primitive: a snapshot
   is safe to query from other domains while the original keeps
   mutating. *)
let snapshot t = { root = t.root }

let to_bools t = List.init (len t) (fun i -> get t i)

(* Testing hook: production splits always cut a 497-bit chunk at the
   word-aligned midpoint 248, so the shift-and-stitch branch of
   [split_leaf] is unreachable from the public API.  This packs an
   arbitrary-length bool array, splits it at len/2 and unpacks both
   halves, exercising the aligned and unaligned blit paths directly. *)
let split_chunk_for_tests (bits : bool array) =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Dyn_bitvec.split_chunk_for_tests: empty";
  let data = Array.make ((n + w - 1) / w) 0 in
  Array.iteri (fun i b -> if b then data.(i / w) <- data.(i / w) lor (1 lsl (i mod w))) bits;
  match split_leaf n data with
  | Node { l = Leaf { len = ll; data = ld }; r = Leaf { len = rl; data = rd }; _ } ->
    ( Array.init ll (fun i -> chunk_get ld i = 1),
      Array.init rl (fun i -> chunk_get rd i = 1) )
  | _ -> assert false

let rec space_tree = function
  | Leaf { data; _ } -> (Array.length data + 2) * w
  | Node { l; r; _ } -> space_tree l + space_tree r + (5 * w)

let space_bits t = space_tree t.root
