(* SPSI-style dynamic bit vector: a B-tree of high-fanout internal nodes
   whose (subtree length, subtree popcount) pairs live in flat arrays,
   over word-packed leaves of several hundred bits scanned with broadword
   popcount.  This is the cache-efficient substrate of Prezza's DYNAMIC
   and Nishimoto's B-tree_plus_alpha (He-Munro / Munro-Nekrich layouts):
   a descent reads one or two cache lines of counters per level instead
   of chasing one pointer per AVL node, and every in-leaf operation is a
   word-level shift or popcount.

   Layout invariants:
   - leaves hold [llen <= leaf_max] bits packed little-endian in 62-bit
     words; bits >= llen are zero; the array is sized to fit (exact
     words, grown in place on insert, rebuilt exactly on split/merge);
   - internal nodes hold [min_children <= nc <= fanout] children
     (root excepted) with per-child length/popcount in [clen]/[cones];
     slot arrays have one spare slot so a split child can be inserted
     before the node itself splits;
   - all leaves sit at the same depth (the tree only grows or shrinks
     at the root), so siblings always share a constructor.

   Mutation is in-place -- [snapshot] deep-copies in O(n / w) words --
   which trades the AVL backend's O(1) path-copying snapshots for
   allocation-free updates on the hot path. *)

open Dsdg_bits

let w = Popcount.word_bits
let mask_w = Popcount.low_mask w
let leaf_words = 16
let leaf_max = leaf_words * w (* 992 bits *)
let leaf_min = leaf_max / 4
let fanout = 16
let min_children = fanout / 2

type leaf = { mutable llen : int; mutable data : int array }

type node = L of leaf | N of inode

and inode = {
  mutable nc : int;
  ch : node array; (* fanout + 1 slots; >= nc hold [dummy] *)
  clen : int array; (* clen.(i) = total bits under ch.(i) *)
  cones : int array; (* cones.(i) = total ones under ch.(i) *)
}

type t = { mutable root : node; mutable tlen : int; mutable tones : int }

(* Placeholder for unused child slots; its empty array faults on use. *)
let dummy = L { llen = 0; data = [||] }

(* --- leaf primitives (word-level) --- *)

let mk_leaf () = { llen = 0; data = Array.make 1 0 }

let leaf_ones l =
  let acc = ref 0 in
  for j = 0 to Array.length l.data - 1 do
    acc := !acc + Popcount.count l.data.(j)
  done;
  !acc

let leaf_get l i = (l.data.(i / w) lsr (i mod w)) land 1

let leaf_set l i b =
  let j = i / w in
  if b = 1 then l.data.(j) <- l.data.(j) lor (1 lsl (i mod w))
  else l.data.(j) <- l.data.(j) land lnot (1 lsl (i mod w))

let ensure_cap l needed =
  if needed > Array.length l.data then begin
    let nd = Array.make needed 0 in
    Array.blit l.data 0 nd 0 (Array.length l.data);
    l.data <- nd
  end

let leaf_insert l pos b =
  ensure_cap l ((l.llen + 1 + w - 1) / w);
  let data = l.data in
  let wi = pos / w and off = pos mod w in
  (* shift whole words above the insertion word up by one bit *)
  for j = l.llen / w downto wi + 1 do
    data.(j) <- ((data.(j) lsl 1) land mask_w) lor (data.(j - 1) lsr (w - 1))
  done;
  let cur = data.(wi) in
  let low = cur land Popcount.low_mask off in
  let high = cur lsr off in
  data.(wi) <- low lor (b lsl off) lor ((high lsl (off + 1)) land mask_w);
  l.llen <- l.llen + 1

let leaf_delete l pos =
  let data = l.data in
  let wi = pos / w and off = pos mod w in
  let cur = data.(wi) in
  let b = (cur lsr off) land 1 in
  data.(wi) <- (cur land Popcount.low_mask off) lor ((cur lsr (off + 1)) lsl off);
  for j = wi + 1 to (l.llen - 1) / w do
    data.(j - 1) <- data.(j - 1) lor ((data.(j) land 1) lsl (w - 1));
    data.(j) <- data.(j) lsr 1
  done;
  l.llen <- l.llen - 1;
  b

let leaf_rank1 l pos =
  let data = l.data in
  let wi = pos / w and off = pos mod w in
  let acc = ref 0 in
  for j = 0 to min wi (Array.length data) - 1 do
    acc := !acc + Popcount.count data.(j)
  done;
  if off > 0 then acc := !acc + Popcount.count (data.(wi) land Popcount.low_mask off);
  !acc

(* Position of the k-th b-bit; requires k < #b-bits in the leaf. *)
let leaf_select l b k =
  let data = l.data in
  let res = ref (-1) and k = ref k and j = ref 0 in
  while !res < 0 do
    let valid = min w (l.llen - (!j * w)) in
    let word = data.(!j) in
    let c = if b = 1 then Popcount.count word else valid - Popcount.count word in
    if !k < c then begin
      let word' = if b = 1 then word else lnot word land Popcount.low_mask valid in
      res := (!j * w) + Popcount.select word' !k
    end
    else begin
      k := !k - c;
      incr j
    end
  done;
  !res

(* OR the first [slen] bits of [src] into [dst] starting at bit [doff].
   Bits >= doff of dst must be zero and the total must fit. *)
let blit_bits ~src ~slen ~dst ~doff =
  let sw = (slen + w - 1) / w in
  let base = doff / w and off = doff mod w in
  if off = 0 then Array.blit src 0 dst base sw
  else
    for j = 0 to sw - 1 do
      let x = src.(j) in
      dst.(base + j) <- dst.(base + j) lor ((x lsl off) land mask_w);
      let hi = x lsr (w - off) in
      if hi <> 0 then dst.(base + j + 1) <- dst.(base + j + 1) lor hi
    done

(* Fresh exact-fit array holding bits [from, from + n) of [src]. *)
let extract_bits ~src ~from ~n =
  let nw = max 1 ((n + w - 1) / w) in
  let dst = Array.make nw 0 in
  let base = from / w and off = from mod w in
  if off = 0 then Array.blit src base dst 0 (min nw (Array.length src - base))
  else
    for j = 0 to nw - 1 do
      let lo = src.(base + j) lsr off in
      let hi = if base + j + 1 < Array.length src then src.(base + j + 1) else 0 in
      dst.(j) <- (lo lor (hi lsl (w - off))) land mask_w
    done;
  let rem = n mod w in
  if rem > 0 then dst.(nw - 1) <- dst.(nw - 1) land Popcount.low_mask rem;
  dst

(* Split a full leaf in half (only called at llen = leaf_max, so the cut
   is word-aligned); the argument keeps the low half. *)
let leaf_split l =
  let hw = Array.length l.data / 2 in
  let rdata = Array.make (Array.length l.data - hw) 0 in
  Array.blit l.data hw rdata 0 (Array.length rdata);
  let ldata = Array.make hw 0 in
  Array.blit l.data 0 ldata 0 hw;
  let r = { llen = l.llen - (hw * w); data = rdata } in
  l.data <- ldata;
  l.llen <- hw * w;
  r

(* Append r into l (combined <= leaf_max). *)
let leaf_append l r =
  let total = l.llen + r.llen in
  let nd = Array.make (max 1 ((total + w - 1) / w)) 0 in
  Array.blit l.data 0 nd 0 (min (Array.length l.data) (Array.length nd));
  blit_bits ~src:r.data ~slen:r.llen ~dst:nd ~doff:l.llen;
  l.data <- nd;
  l.llen <- total

(* Redistribute into equal halves (combined > leaf_max). *)
let leaf_rebalance a b =
  let total = a.llen + b.llen in
  let tmp = Array.make ((total + w - 1) / w) 0 in
  Array.blit a.data 0 tmp 0 (min (Array.length a.data) (Array.length tmp));
  blit_bits ~src:b.data ~slen:b.llen ~dst:tmp ~doff:a.llen;
  let half = total / 2 in
  a.data <- extract_bits ~src:tmp ~from:0 ~n:half;
  a.llen <- half;
  b.data <- extract_bits ~src:tmp ~from:half ~n:(total - half);
  b.llen <- total - half

(* --- internal-node slot management --- *)

let mk_inode () =
  {
    nc = 0;
    ch = Array.make (fanout + 1) dummy;
    clen = Array.make (fanout + 1) 0;
    cones = Array.make (fanout + 1) 0;
  }

let inode_len nd =
  let acc = ref 0 in
  for i = 0 to nd.nc - 1 do
    acc := !acc + nd.clen.(i)
  done;
  !acc

let inode_ones nd =
  let acc = ref 0 in
  for i = 0 to nd.nc - 1 do
    acc := !acc + nd.cones.(i)
  done;
  !acc

let ins_child nd i child cl co =
  for j = nd.nc downto i + 1 do
    nd.ch.(j) <- nd.ch.(j - 1);
    nd.clen.(j) <- nd.clen.(j - 1);
    nd.cones.(j) <- nd.cones.(j - 1)
  done;
  nd.ch.(i) <- child;
  nd.clen.(i) <- cl;
  nd.cones.(i) <- co;
  nd.nc <- nd.nc + 1

let rm_child nd i =
  for j = i to nd.nc - 2 do
    nd.ch.(j) <- nd.ch.(j + 1);
    nd.clen.(j) <- nd.clen.(j + 1);
    nd.cones.(j) <- nd.cones.(j + 1)
  done;
  nd.nc <- nd.nc - 1;
  nd.ch.(nd.nc) <- dummy;
  nd.clen.(nd.nc) <- 0;
  nd.cones.(nd.nc) <- 0

(* Move the upper half of an overfull node (nc = fanout + 1) into a
   fresh right sibling. *)
let node_split nd =
  let right = mk_inode () in
  let keep = nd.nc / 2 in
  let moved = nd.nc - keep in
  for j = 0 to moved - 1 do
    right.ch.(j) <- nd.ch.(keep + j);
    right.clen.(j) <- nd.clen.(keep + j);
    right.cones.(j) <- nd.cones.(keep + j);
    nd.ch.(keep + j) <- dummy;
    nd.clen.(keep + j) <- 0;
    nd.cones.(keep + j) <- 0
  done;
  right.nc <- moved;
  nd.nc <- keep;
  right

(* --- descent --- *)

(* Returns [Some (sibling, len, ones)] when the child split. *)
let rec ins node pos b =
  match node with
  | L l ->
    if l.llen < leaf_max then begin
      leaf_insert l pos b;
      None
    end
    else begin
      let r = leaf_split l in
      if pos <= l.llen then leaf_insert l pos b else leaf_insert r (pos - l.llen) b;
      Some (L r, r.llen, leaf_ones r)
    end
  | N nd ->
    let i = ref 0 and p = ref pos in
    while !i < nd.nc - 1 && !p > nd.clen.(!i) do
      p := !p - nd.clen.(!i);
      incr i
    done;
    let i = !i in
    (match ins nd.ch.(i) !p b with
    | None ->
      nd.clen.(i) <- nd.clen.(i) + 1;
      nd.cones.(i) <- nd.cones.(i) + b
    | Some (r, rl, ro) ->
      nd.clen.(i) <- nd.clen.(i) + 1 - rl;
      nd.cones.(i) <- nd.cones.(i) + b - ro;
      ins_child nd (i + 1) r rl ro);
    if nd.nc > fanout then begin
      let right = node_split nd in
      Some (N right, inode_len right, inode_ones right)
    end
    else None

let underfull = function L l -> l.llen < leaf_min | N nd -> nd.nc < min_children

(* Re-establish the fill invariant for child [i] of [nd] by merging with
   or borrowing from an adjacent sibling.  All siblings share a
   constructor (uniform depth). *)
let fix_child nd i =
  let j = if i + 1 < nd.nc then i + 1 else i - 1 in
  let li = min i j and ri = max i j in
  (match (nd.ch.(li), nd.ch.(ri)) with
  | L a, L b ->
    if a.llen + b.llen <= leaf_max then begin
      leaf_append a b;
      nd.clen.(li) <- nd.clen.(li) + nd.clen.(ri);
      nd.cones.(li) <- nd.cones.(li) + nd.cones.(ri);
      rm_child nd ri
    end
    else begin
      let tl = nd.clen.(li) + nd.clen.(ri) and to_ = nd.cones.(li) + nd.cones.(ri) in
      leaf_rebalance a b;
      let ao = leaf_ones a in
      nd.clen.(li) <- a.llen;
      nd.cones.(li) <- ao;
      nd.clen.(ri) <- tl - a.llen;
      nd.cones.(ri) <- to_ - ao
    end
  | N a, N b ->
    if a.nc + b.nc <= fanout then begin
      for k = 0 to b.nc - 1 do
        a.ch.(a.nc + k) <- b.ch.(k);
        a.clen.(a.nc + k) <- b.clen.(k);
        a.cones.(a.nc + k) <- b.cones.(k)
      done;
      a.nc <- a.nc + b.nc;
      nd.clen.(li) <- nd.clen.(li) + nd.clen.(ri);
      nd.cones.(li) <- nd.cones.(li) + nd.cones.(ri);
      rm_child nd ri
    end
    else if a.nc < b.nc then begin
      (* borrow b's first child onto a's tail *)
      let c = b.ch.(0) and cl = b.clen.(0) and co = b.cones.(0) in
      rm_child b 0;
      a.ch.(a.nc) <- c;
      a.clen.(a.nc) <- cl;
      a.cones.(a.nc) <- co;
      a.nc <- a.nc + 1;
      nd.clen.(li) <- nd.clen.(li) + cl;
      nd.cones.(li) <- nd.cones.(li) + co;
      nd.clen.(ri) <- nd.clen.(ri) - cl;
      nd.cones.(ri) <- nd.cones.(ri) - co
    end
    else begin
      (* borrow a's last child onto b's head *)
      let k = a.nc - 1 in
      let c = a.ch.(k) and cl = a.clen.(k) and co = a.cones.(k) in
      a.ch.(k) <- dummy;
      a.clen.(k) <- 0;
      a.cones.(k) <- 0;
      a.nc <- k;
      ins_child b 0 c cl co;
      nd.clen.(li) <- nd.clen.(li) - cl;
      nd.cones.(li) <- nd.cones.(li) - co;
      nd.clen.(ri) <- nd.clen.(ri) + cl;
      nd.cones.(ri) <- nd.cones.(ri) + co
    end
  | _ -> assert false)

let rec del node pos =
  match node with
  | L l -> leaf_delete l pos
  | N nd ->
    let i = ref 0 and p = ref pos in
    while !i < nd.nc - 1 && !p >= nd.clen.(!i) do
      p := !p - nd.clen.(!i);
      incr i
    done;
    let i = !i in
    let b = del nd.ch.(i) !p in
    nd.clen.(i) <- nd.clen.(i) - 1;
    nd.cones.(i) <- nd.cones.(i) - b;
    if underfull nd.ch.(i) && nd.nc >= 2 then fix_child nd i;
    b

let rec get_bit node pos =
  match node with
  | L l -> leaf_get l pos
  | N nd ->
    let i = ref 0 and p = ref pos in
    while !i < nd.nc - 1 && !p >= nd.clen.(!i) do
      p := !p - nd.clen.(!i);
      incr i
    done;
    get_bit nd.ch.(!i) !p

let rec set_bit node pos b =
  match node with
  | L l ->
    let old = leaf_get l pos in
    leaf_set l pos b;
    old
  | N nd ->
    let i = ref 0 and p = ref pos in
    while !i < nd.nc - 1 && !p >= nd.clen.(!i) do
      p := !p - nd.clen.(!i);
      incr i
    done;
    let old = set_bit nd.ch.(!i) !p b in
    nd.cones.(!i) <- nd.cones.(!i) + b - old;
    old

let rec rank_bits node pos =
  match node with
  | L l -> leaf_rank1 l pos
  | N nd ->
    let i = ref 0 and p = ref pos and acc = ref 0 in
    while !i < nd.nc - 1 && !p > nd.clen.(!i) do
      acc := !acc + nd.cones.(!i);
      p := !p - nd.clen.(!i);
      incr i
    done;
    !acc + rank_bits nd.ch.(!i) !p

let rec select_bit node b k =
  match node with
  | L l -> leaf_select l b k
  | N nd ->
    let i = ref 0 and k = ref k and off = ref 0 in
    let count j = if b = 1 then nd.cones.(j) else nd.clen.(j) - nd.cones.(j) in
    while !i < nd.nc - 1 && !k >= count !i do
      k := !k - count !i;
      off := !off + nd.clen.(!i);
      incr i
    done;
    !off + select_bit nd.ch.(!i) b !k

let rec copy_node = function
  | L l -> L { llen = l.llen; data = Array.copy l.data }
  | N nd ->
    let c = mk_inode () in
    c.nc <- nd.nc;
    Array.blit nd.clen 0 c.clen 0 (fanout + 1);
    Array.blit nd.cones 0 c.cones 0 (fanout + 1);
    for i = 0 to nd.nc - 1 do
      c.ch.(i) <- copy_node nd.ch.(i)
    done;
    N c

let rec space_node = function
  | L l -> (Array.length l.data + 2) * w
  | N nd ->
    let acc = ref (((3 * (fanout + 1)) + 2) * w) in
    for i = 0 to nd.nc - 1 do
      acc := !acc + space_node nd.ch.(i)
    done;
    !acc

(* --- public API --- *)

let create () = { root = L (mk_leaf ()); tlen = 0; tones = 0 }
let len t = t.tlen
let ones t = t.tones
let zeros t = t.tlen - t.tones

let get t i =
  if i < 0 || i >= t.tlen then invalid_arg "Spsi.get";
  get_bit t.root i = 1

let set t i b =
  if i < 0 || i >= t.tlen then invalid_arg "Spsi.set";
  let b = if b then 1 else 0 in
  let old = set_bit t.root i b in
  t.tones <- t.tones + b - old

let insert t i b =
  if i < 0 || i > t.tlen then invalid_arg "Spsi.insert";
  let b = if b then 1 else 0 in
  (match ins t.root i b with
  | None -> ()
  | Some (r, rl, ro) ->
    let nd = mk_inode () in
    nd.ch.(0) <- t.root;
    nd.clen.(0) <- t.tlen + 1 - rl;
    nd.cones.(0) <- t.tones + b - ro;
    nd.ch.(1) <- r;
    nd.clen.(1) <- rl;
    nd.cones.(1) <- ro;
    nd.nc <- 2;
    t.root <- N nd);
  t.tlen <- t.tlen + 1;
  t.tones <- t.tones + b

let delete t i =
  if i < 0 || i >= t.tlen then invalid_arg "Spsi.delete";
  let b = del t.root i in
  t.tlen <- t.tlen - 1;
  t.tones <- t.tones - b;
  (* collapse single-child roots so the height tracks the size *)
  let rec collapse () =
    match t.root with
    | N nd when nd.nc = 1 ->
      t.root <- nd.ch.(0);
      collapse ()
    | _ -> ()
  in
  collapse ()

let rank1 t i =
  if i < 0 || i > t.tlen then invalid_arg "Spsi.rank1";
  rank_bits t.root i

let rank0 t i = i - rank1 t i

let select1 t k =
  if k < 0 || k >= t.tones then invalid_arg "Spsi.select1";
  select_bit t.root 1 k

let select0 t k =
  if k < 0 || k >= zeros t then invalid_arg "Spsi.select0";
  select_bit t.root 0 k

let push_back t b = insert t t.tlen b

(* Deep copy, O(n / w) words: the B-tree mutates in place, so snapshot
   isolation costs a full copy (the AVL backend's path-copying snapshots
   are O(1) instead -- that is the space/update-speed trade). *)
let snapshot t = { root = copy_node t.root; tlen = t.tlen; tones = t.tones }

let to_bools t = List.init t.tlen (fun i -> get t i)

let space_bits t = space_node t.root + (2 * w)
