(** The dynamic-bitvector backend seam.

    Two substrates implement the same dynamic-bitvector signature: the
    incumbent AVL tree ({!Dyn_bitvec}, path-copying, O(1) snapshots) and
    the SPSI B-tree ({!Spsi}, flat counter arrays and word-packed
    leaves, cache-friendly updates). [kind] is shared with
    {!Dsdg_delbits.Sums.kind} so one runtime choice switches bitvectors
    and partial sums together. *)

type kind = Dsdg_delbits.Sums.kind = Avl | Spsi

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** All backends, in matrix order. *)
val all_kinds : kind list

(** Operations every dynamic-bitvector backend provides; the semantics
    (including [Invalid_argument] on out-of-range indices) mirror
    {!Dyn_bitvec}. *)
module type S = sig
  type t

  val name : string
  val create : unit -> t
  val len : t -> int
  val ones : t -> int
  val zeros : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val insert : t -> int -> bool -> unit
  val delete : t -> int -> unit
  val rank1 : t -> int -> int
  val rank0 : t -> int -> int
  val select1 : t -> int -> int
  val select0 : t -> int -> int
  val push_back : t -> bool -> unit
  val to_bools : t -> bool list
  val snapshot : t -> t
  val space_bits : t -> int
end

module Avl_backend : S
module Spsi_backend : S

val of_kind : kind -> (module S)

(** A bitvector packed with its backend's operations. *)
type bv = Bv : (module S with type t = 'a) * 'a -> bv

val create : kind -> bv
val kind_of : bv -> kind
val len : bv -> int
val ones : bv -> int
val zeros : bv -> int
val get : bv -> int -> bool
val set : bv -> int -> bool -> unit
val insert : bv -> int -> bool -> unit
val delete : bv -> int -> unit
val rank1 : bv -> int -> int
val rank0 : bv -> int -> int
val select1 : bv -> int -> int
val select0 : bv -> int -> int
val push_back : bv -> bool -> unit
val to_bools : bv -> bool list

(** Snapshot semantics differ by backend: O(1) for [Avl] (path-copying
    tree), a deep O(n/w) copy for [Spsi] (in-place B-tree). Both yield
    a frozen value isolated from further mutation. *)
val snapshot : bv -> bv

val space_bits : bv -> int
