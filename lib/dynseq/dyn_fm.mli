(** Baseline dynamic FM-index (Chan-Hon-Lam / Makinen-Navarro style):
    the collection BWT maintained directly in a dynamic wavelet tree.
    Every BWT operation pays the O(log n log sigma) dynamic-rank price
    the paper's Transformations avoid -- this is the Table 2 comparison
    subject. *)

type t

(** [create ?backend ()] — [backend] picks the dynamic-sequence
    substrate (wavelet-tree bitvectors, symbol accumulator, sentinel
    liveness); default {!Seq_backend.Avl}. *)
val create : ?backend:Seq_backend.kind -> unit -> t

val backend : t -> Seq_backend.kind
val doc_count : t -> int

(** Total symbols including one sentinel per document. *)
val total_symbols : t -> int

val mem : t -> int -> bool

(** [insert t ~doc text]: backward extension of the dynamic BWT,
    O(|text| log n log sigma). Raises [Invalid_argument] on duplicate
    ids. *)
val insert : t -> doc:int -> string -> unit

(** [delete t id]: removes the document's rows; [false] if absent. *)
val delete : t -> int -> bool

(** Backward search: row range of suffixes prefixed by the pattern. *)
val range : t -> string -> (int * int) option

val count : t -> string -> int

(** [locate t row] walks forward to the sentinel block to identify the
    (document, offset); O((len - off) log n log sigma). *)
val locate : t -> int -> int * int

(** All occurrences, sorted. *)
val search : t -> string -> (int * int) list

(** [snapshot t] is an O(sigma + docs) frozen copy sharing all BWT bit
    data; safe to query from any domain while [t] keeps mutating. *)
val snapshot : t -> t

val space_bits : t -> int
