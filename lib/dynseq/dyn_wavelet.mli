(** Dynamic wavelet tree over [[0, sigma)]: access / rank / select /
    insert / delete in O(log n log sigma). Baseline substrate. *)

type t

(** [create ?backend ~sigma ()] — [backend] picks the dynamic-bitvector
    substrate for every node (default {!Seq_backend.Avl}). *)
val create : ?backend:Seq_backend.kind -> sigma:int -> unit -> t

val length : t -> int
val sigma : t -> int
val backend : t -> Seq_backend.kind

(** [insert t pos sym] inserts [sym] at position [pos]. *)
val insert : t -> int -> int -> unit

val delete : t -> int -> unit
val access : t -> int -> int

(** Occurrences of [sym] in [[0, pos)]. *)
val rank : t -> int -> int -> int

(** Raises [Not_found] past the last occurrence. *)
val select : t -> int -> int -> int

val count : t -> int -> int

(** [snapshot t] is an O(sigma) frozen copy (per-node O(1) bitvec
    captures) safe to query from any domain while [t] keeps mutating. *)
val snapshot : t -> t

val to_array : t -> int array
val space_bits : t -> int
