(** Domain-pool job executor for background rebuilds.

    Transformation 2 promises worst-case update bounds because the
    expensive [N_{j+1}] constructions happen "in the background". The
    cooperative realization ([Dsdg_incr.Incremental]) still pays that
    work inside the caller's [insert]/[delete]; this executor moves it
    onto OCaml 5 worker [Domain]s so the construction runs concurrently
    with queries and updates, while the owner keeps landing results only
    at the paper's install points.

    Contract highlights:

    - [workers = 0] is the deterministic [Sync] degenerate pool: every
      submitted job runs inline inside [submit], so results, ordering
      and counters are bit-for-bit reproducible (the mode tier-1 tests
      and the fuzz oracle run in by default);
    - the submission queue is bounded: when it is full, the job runs
      inline on the caller (counted in [exec_inline]) instead of
      growing the queue without bound;
    - {!await} {e steals} a job that is still queued and runs it on the
      caller -- exactly the synchronous forced completion the paper's
      scheduling lemma accounts for -- and only blocks when a worker has
      already picked the job up;
    - cancellation is cooperative: a worker observes {!cancel} at the
      job's next [tick] and unwinds with {!Cancelled} (composing with
      [Incremental.abandon] semantics: finalizers run, the job can
      never produce a result afterwards);
    - a worker that raises marks the job [`Failed] with the original
      exception; the owner decides how to recover (Transformation 2
      falls back to a synchronous in-place rebuild).

    Observability (recorded into the scope given at {!create}):
    [exec_submitted] / [exec_completed] / [exec_crashed] /
    [exec_cancelled] / [exec_inline] counters, an [exec_queue_depth]
    gauge, and [exec_wall_ns] (job start to finish on the worker) and
    [exec_handoff_ns] (job finish to first observation by the owner)
    histograms. *)

type t
(** A pool of worker domains plus a bounded submission queue. *)

type 'a handle
(** One submitted job; the only way to reach its result. *)

exception Cancelled
(** Raised inside a job when its handle has been cancelled (out of the
    job's [tick]), and by {!run} when awaiting a cancelled job. *)

val create : ?queue_cap:int -> ?obs:Dsdg_obs.Obs.scope -> workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains ([0] = synchronous
    degenerate pool, no domains). [queue_cap] bounds the submission
    queue (default [2 * workers + 2]; jobs past the bound run inline on
    the submitter). [obs] is the scope executor metrics are recorded
    into (default: a private scope named ["exec"]). *)

val workers : t -> int

(** [`Sync] iff the pool was created with [workers = 0]. *)
val mode : t -> [ `Sync | `Pool of int ]

val submit : t -> name:string -> ((unit -> unit) -> 'a) -> 'a handle
(** [submit t ~name f] enqueues [f] for a worker domain. [f] receives a
    [tick] callback it must call regularly (one call per unit of
    construction work); [tick] is the cancellation point. With 0
    workers, or when the queue is full, or after {!shutdown}, [f] runs
    inline before [submit] returns.

    Thread-safety is the submitter's contract: everything [f] touches
    must either be immutable, owned by the job, or tolerate concurrent
    mutation whose effect is re-applied at the install point (the
    deleted-during-rebuild replay of Transformation 2). *)

val poll : t -> 'a handle -> [ `Pending | `Done of 'a | `Failed of exn | `Cancelled ]
(** Non-blocking check; [`Pending] while queued or running. *)

val await : t -> 'a handle -> [ `Done of 'a | `Failed of exn | `Cancelled ]
(** Block until the job reaches a terminal state. A job still in the
    queue is stolen and run on the caller (a synchronous forced
    completion); a running job is waited on. *)

val cancel : t -> 'a handle -> unit
(** Queued: the job is discarded and will never run. Running: the
    worker raises {!Cancelled} out of the job's next [tick]. Terminal:
    no effect. *)

val run : t -> name:string -> ((unit -> unit) -> 'a) -> 'a
(** [submit] then [await]: offload one job and wait for it. Re-raises
    the job's exception on [`Failed]; raises {!Cancelled} on
    [`Cancelled]. *)

val work_spent : 'a handle -> int
(** [tick] calls the job has made so far; exact once the job is
    terminal, a racy lower bound while it is running. *)

val pending : t -> int
(** Jobs sitting in the submission queue (not yet claimed by a worker,
    stolen, or cancelled). *)

val breathe : t -> ticks:int -> unit
(** Donate the caller's processor to the pool: block until running jobs
    have collectively advanced by about [ticks] work units, or no
    submitted job is queued or running.  No-op in Sync mode.

    Transformation 2 calls this from its {e query} entry points
    (reader-assist): updates stay latency-clean, while a read-heavy
    interleaving hands the workers exactly the processor time that a
    multicore machine would give them for free, so on an oversubscribed
    machine the worker domains keep pace with the Dietz-Sleator install
    deadlines instead of being starved and force-completed. *)

val with_priority : t -> (unit -> 'a) -> 'a
(** [with_priority t f] runs [f] with update-priority: every worker
    domain parks at its next job [tick] until [f] returns, so the
    owner's synchronous critical section (an update holding schedule
    invariants) is not slowed by processor competition or GC barriers
    from half-built background work.  On a machine with enough cores
    the pause window is the update's own (short) duration; on an
    oversubscribed machine this is what keeps update latency at
    pooled-mode levels instead of degrading to interference-dominated
    levels.

    {!await}, {!run}, {!breathe} and an inline overflow inside [submit]
    temporarily release the priority while the owner itself runs or
    waits on job code (otherwise the owner would deadlock on its own
    flag), and restore it before returning.  Unparking is lazy: when [f]
    returns, workers stay parked until the next {!breathe} donation or
    owner-side blocking wait wakes them, so an update burst pays one
    atomic store per update rather than a park/unpark cycle, and the
    wake-up cost lands in donated query time instead of on the update's
    return path.  Identity (no parking, no flag) when [workers = 0] or
    when already inside [with_priority].  Single priority holder by
    contract: only the structure's owner thread may call this. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every worker domain. Idempotent.
    Jobs submitted afterwards run inline. *)
