(* Domain-pool job executor; semantics documented in executor.mli.

   Synchronization discipline: the pool has one mutex/condvar pair for
   the submission queue, and every handle has its own mutex/condvar pair
   for its state machine

       Queued -> Running -> Done | Failed | Cancelled
       Queued -> Cancelled

   State transitions happen only under the handle's mutex, so the value
   built by a worker is published to the owner with a proper
   happens-before edge (no torn reads of a half-built structure).  The
   cancel flag is an Atomic read from the job's [tick] so a running job
   notices cancellation without taking a lock per work unit. *)

open Dsdg_obs

exception Cancelled

type 'a state =
  | Queued
  | Running
  | Done of 'a
  | Failed of exn
  | Cancelled_

type 'a handle = {
  h_name : string;
  h_mu : Mutex.t;
  h_cv : Condition.t;
  mutable h_state : 'a state;
  h_cancel : bool Atomic.t;
  (* the thunk is kept here (not only in the queue) so [await] can steal
     a still-queued job and run it on the caller *)
  h_fn : (unit -> unit) -> 'a;
  mutable h_enqueued : bool; (* counted in [outstanding]; set before the handle escapes submit *)
  mutable h_ticks : int; (* work units the job consumed, worker-local until terminal *)
  mutable h_done_ns : int; (* clock at the terminal transition *)
  mutable h_observed : bool; (* handoff latency recorded once *)
}

(* The queue erases the result type; the worker only ever needs to run
   the job and flip its state. *)
type packed = Job : 'a handle -> packed

type t = {
  t_workers : int;
  t_queue_cap : int;
  q : packed Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  (* progress accounting for [breathe]: [outstanding] counts enqueued
     jobs not yet terminal; [quanta] advances once per [heartbeat] ticks
     of job execution (any domain) and once per terminal transition,
     with [progress] broadcast each time *)
  mutable outstanding : int;
  mutable quanta : int;
  mutable breathe_target : int; (* wake the breather only at its target quanta *)
  progress : Condition.t;
  (* update-priority: while set, workers park at their next tick so the
     owner's synchronous critical section runs without processor or GC
     barrier interference from half-built background work *)
  priority : bool Atomic.t;
  resume : Condition.t;
  c_submitted : Obs.counter;
  c_completed : Obs.counter;
  c_crashed : Obs.counter;
  c_cancelled : Obs.counter;
  c_inline : Obs.counter;
  g_depth : Obs.gauge;
  h_wall : Obs.histogram;
  h_handoff : Obs.histogram;
  h_breathe : Obs.histogram;
}

let workers t = t.t_workers
let mode t = if t.t_workers = 0 then `Sync else `Pool t.t_workers

let pending t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n

(* Work units per progress broadcast: coarse enough that the per-tick
   cost is amortized away, fine enough that [breathe] wakes promptly. *)
let heartbeat = 1024

(* Broadcasting on every quantum would wake a breather [beats] times per
   wait (each wake-sleep cycle costs real time on a loaded box); the
   breather publishes its target instead and is woken exactly once. *)
let pulse pool =
  Mutex.lock pool.mu;
  pool.quanta <- pool.quanta + 1;
  if pool.quanta >= pool.breathe_target then Condition.broadcast pool.progress;
  Mutex.unlock pool.mu

(* Run [h] to a terminal state on the current domain (worker, or the
   submitter/awaiter for inline and stolen jobs).  The caller must have
   already transitioned the handle to Running under its mutex. *)
let execute pool (h : 'a handle) =
  let t0 = Obs.now_ns () in
  let tick () =
    h.h_ticks <- h.h_ticks + 1;
    if h.h_ticks land (heartbeat - 1) = 0 then pulse pool;
    if Atomic.get pool.priority then begin
      (* parked workers sit in Condition.wait, which also exempts them
         from stop-the-world barriers while the owner runs *)
      Mutex.lock pool.mu;
      while Atomic.get pool.priority && not pool.stopping do
        Condition.wait pool.resume pool.mu
      done;
      Mutex.unlock pool.mu
    end;
    if Atomic.get h.h_cancel then raise Cancelled
  in
  let outcome = try Done (h.h_fn tick) with Cancelled -> Cancelled_ | exn -> Failed exn in
  Mutex.lock h.h_mu;
  h.h_state <- outcome;
  h.h_done_ns <- Obs.now_ns ();
  Condition.broadcast h.h_cv;
  Mutex.unlock h.h_mu;
  Obs.observe pool.h_wall (h.h_done_ns - t0);
  if h.h_enqueued then begin
    Mutex.lock pool.mu;
    pool.outstanding <- pool.outstanding - 1;
    pool.quanta <- pool.quanta + 1;
    Condition.broadcast pool.progress;
    Mutex.unlock pool.mu
  end;
  match outcome with
  | Done _ -> Obs.incr pool.c_completed
  | Failed _ -> Obs.incr pool.c_crashed
  | Cancelled_ -> Obs.incr pool.c_cancelled
  | Queued | Running -> assert false

(* Claim a queued job (Queued -> Running).  False if it was already
   claimed (stolen by [await]) or cancelled while waiting. *)
let claim (h : 'a handle) =
  Mutex.lock h.h_mu;
  let mine = h.h_state = Queued in
  if mine then h.h_state <- Running;
  Mutex.unlock h.h_mu;
  mine

let worker_loop pool () =
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mu;
    while Queue.is_empty pool.q && not pool.stopping do
      Condition.wait pool.nonempty pool.mu
    done;
    if Queue.is_empty pool.q then begin
      (* stopping and fully drained *)
      Mutex.unlock pool.mu;
      continue := false
    end
    else begin
      let (Job h) = Queue.pop pool.q in
      Obs.set_gauge pool.g_depth (Queue.length pool.q);
      Mutex.unlock pool.mu;
      if claim h then execute pool h
    end
  done

let create ?queue_cap ?obs ~workers () =
  if workers < 0 then invalid_arg "Executor.create: workers < 0";
  let obs = match obs with Some s -> s | None -> Obs.private_scope "exec" in
  let queue_cap =
    match queue_cap with
    | Some c -> if c < 1 then invalid_arg "Executor.create: queue_cap < 1" else c
    | None -> (2 * workers) + 2
  in
  let pool =
    {
      t_workers = workers;
      t_queue_cap = queue_cap;
      q = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      domains = [];
      outstanding = 0;
      quanta = 0;
      breathe_target = max_int;
      progress = Condition.create ();
      priority = Atomic.make false;
      resume = Condition.create ();
      c_submitted = Obs.counter obs "exec_submitted";
      c_completed = Obs.counter obs "exec_completed";
      c_crashed = Obs.counter obs "exec_crashed";
      c_cancelled = Obs.counter obs "exec_cancelled";
      c_inline = Obs.counter obs "exec_inline";
      g_depth = Obs.gauge obs "exec_queue_depth";
      h_wall = Obs.histogram obs "exec_wall_ns";
      h_handoff = Obs.histogram obs "exec_handoff_ns";
      h_breathe = Obs.histogram obs "exec_breathe_ns";
    }
  in
  pool.domains <- List.init workers (fun _ -> Domain.spawn (worker_loop pool));
  pool

(* Temporarily release update-priority while the owner itself runs job
   code or waits on a worker, restoring it afterwards.  Without this the
   owner would park itself on its own flag (inline and stolen jobs go
   through [execute]'s tick) or deadlock waiting on a parked worker
   ([await] on a running job, [breathe]).  Single priority holder by
   contract (see [with_priority]). *)
let priority_dropped pool f =
  if Atomic.get pool.priority then begin
    Atomic.set pool.priority false;
    Mutex.lock pool.mu;
    Condition.broadcast pool.resume;
    if not (Queue.is_empty pool.q) then Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mu;
    Fun.protect f ~finally:(fun () -> Atomic.set pool.priority true)
  end
  else f ()

(* Releasing the priority does NOT wake parked workers: a broadcast here
   would invite the scheduler to preempt the owner right at the update's
   return (the wake-up itself becomes update latency on an oversubscribed
   machine), and an update burst would pay park/unpark per update.
   Workers instead resume at the next point the owner wants their
   progress: a query's {!breathe} donation, or an owner-side blocking
   wait ([priority_dropped]) -- both broadcast [resume] on entry. *)
let with_priority pool f =
  if pool.t_workers = 0 || Atomic.get pool.priority then f ()
  else begin
    Atomic.set pool.priority true;
    Fun.protect f ~finally:(fun () -> Atomic.set pool.priority false)
  end

let make_handle ~name f =
  {
    h_name = name;
    h_mu = Mutex.create ();
    h_cv = Condition.create ();
    h_state = Queued;
    h_cancel = Atomic.make false;
    h_fn = f;
    h_enqueued = false;
    h_ticks = 0;
    h_done_ns = 0;
    h_observed = false;
  }

let submit pool ~name f =
  let h = make_handle ~name f in
  Obs.incr pool.c_submitted;
  let enqueued =
    pool.t_workers > 0
    && begin
         Mutex.lock pool.mu;
         let ok = (not pool.stopping) && Queue.length pool.q < pool.t_queue_cap in
         if ok then begin
           Queue.push (Job h) pool.q;
           h.h_enqueued <- true;
           pool.outstanding <- pool.outstanding + 1;
           Obs.set_gauge pool.g_depth (Queue.length pool.q);
           (* under update-priority the wake is deferred (like [resume]):
              signalling a sleeping worker mid-update invites the
              scheduler to preempt the submitter; the job is picked up at
              the next [breathe] or owner-side wait, or stolen by [await] *)
           if not (Atomic.get pool.priority) then Condition.signal pool.nonempty
         end;
         Mutex.unlock pool.mu;
         ok
       end
  in
  if not enqueued then begin
    (* Sync pool, queue full, or stopping: bounded submission means the
       caller pays for the job now instead of queueing without limit. *)
    if pool.t_workers > 0 then Obs.incr pool.c_inline;
    if claim h then priority_dropped pool (fun () -> execute pool h)
  end;
  h

(* Record the completion -> first-observation delay exactly once. *)
let observe_handoff pool (h : 'a handle) =
  if not h.h_observed then begin
    h.h_observed <- true;
    Obs.observe pool.h_handoff (Obs.now_ns () - h.h_done_ns)
  end

let poll pool (h : 'a handle) =
  Mutex.lock h.h_mu;
  let s = h.h_state in
  Mutex.unlock h.h_mu;
  match s with
  | Queued | Running -> `Pending
  | Done v ->
    observe_handoff pool h;
    `Done v
  | Failed e ->
    observe_handoff pool h;
    `Failed e
  | Cancelled_ ->
    observe_handoff pool h;
    `Cancelled

let await pool (h : 'a handle) =
  (* steal a still-queued job: the owner completes it synchronously (the
     paper's forced completion) rather than waiting for a busy worker *)
  priority_dropped pool (fun () ->
      if claim h then execute pool h
      else begin
        (* the claiming worker may be parked under an already-released
           update-priority whose unpark was deferred (lazy unparking):
           wake it unconditionally or this wait never ends *)
        Mutex.lock pool.mu;
        Condition.broadcast pool.resume;
        if not (Queue.is_empty pool.q) then Condition.broadcast pool.nonempty;
        Mutex.unlock pool.mu;
        Mutex.lock h.h_mu;
        while (match h.h_state with Queued | Running -> true | _ -> false) do
          Condition.wait h.h_cv h.h_mu
        done;
        Mutex.unlock h.h_mu
      end);
  match poll pool h with
  | `Pending -> assert false
  | (`Done _ | `Failed _ | `Cancelled) as terminal -> terminal

let work_spent (h : 'a handle) =
  Mutex.lock h.h_mu;
  let n = h.h_ticks in
  Mutex.unlock h.h_mu;
  n

let cancel pool (h : 'a handle) =
  Mutex.lock h.h_mu;
  let discarded =
    match h.h_state with
    | Queued ->
      h.h_state <- Cancelled_;
      h.h_done_ns <- Obs.now_ns ();
      Obs.incr pool.c_cancelled;
      Condition.broadcast h.h_cv;
      true
    | Running ->
      Atomic.set h.h_cancel true;
      false
    | Done _ | Failed _ | Cancelled_ -> false
  in
  Mutex.unlock h.h_mu;
  (* pool bookkeeping outside h_mu: pool.mu is never taken under a
     handle mutex (lock-order discipline with [execute]'s tick pulse) *)
  if discarded && h.h_enqueued then begin
    Mutex.lock pool.mu;
    pool.outstanding <- pool.outstanding - 1;
    pool.quanta <- pool.quanta + 1;
    Condition.broadcast pool.progress;
    Mutex.unlock pool.mu
  end

(* Donate the caller's processor to the pool: wait until the workers
   have collectively advanced by about [ticks] work units, or nothing is
   outstanding.  This is the pooled counterpart of the cooperative
   mode's per-update job stepping -- on a machine with fewer cores than
   domains it is what keeps background rebuilds on schedule between
   install points, instead of stalling at a forced completion. *)
let breathe pool ~ticks =
  if pool.t_workers > 0 && ticks > 0 then begin
    let t0 = Obs.now_ns () in
    let beats = max 1 (ticks / heartbeat) in
    priority_dropped pool (fun () ->
        Mutex.lock pool.mu;
        (* wake workers parked by a recently released update-priority
           (and any whose submission wake was deferred): donated time is
           exactly when their progress is wanted *)
        Condition.broadcast pool.resume;
        if not (Queue.is_empty pool.q) then Condition.broadcast pool.nonempty;
        let target = pool.quanta + beats in
        pool.breathe_target <- min pool.breathe_target target;
        while pool.quanta < target && pool.outstanding > 0 do
          Condition.wait pool.progress pool.mu
        done;
        (* single-breather reset: with concurrent breathers a survivor may
           miss quantum wakes until the next terminal transition, which
           always broadcasts -- progress, not correctness, is affected *)
        pool.breathe_target <- max_int;
        Mutex.unlock pool.mu);
    Obs.observe pool.h_breathe (Obs.now_ns () - t0)
  end

let run pool ~name f =
  match await pool (submit pool ~name f) with
  | `Done v -> v
  | `Failed e -> raise e
  | `Cancelled -> raise Cancelled

let shutdown pool =
  Mutex.lock pool.mu;
  pool.stopping <- true;
  Condition.broadcast pool.nonempty;
  Condition.broadcast pool.resume;
  Mutex.unlock pool.mu;
  List.iter Domain.join pool.domains;
  pool.domains <- []
