(* Shard-aware differential checking; see shard_check.mli. *)

module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
module Model = Dsdg_check.Model
module Opgen = Dsdg_check.Opgen
module Runner = Dsdg_check.Runner
module Durable = Dsdg_store.Durable
module Kill_check = Dsdg_store.Kill_check
module S = Sharded_index

type config = {
  sc_variant : Di.variant;
  sc_backend : Di.backend;
  sc_sample : int;
  sc_tau : int;
  sc_jobs : int;
  sc_readers : int;
  sc_seq : Dsdg_delbits.Sums.kind;
  sc_shard_counts : int list;
}

let default_config =
  {
    sc_variant = Di.Amortized;
    sc_backend = Di.Fm;
    sc_sample = 2;
    sc_tau = 4;
    sc_jobs = 0;
    sc_readers = 0;
    sc_seq = Dsdg_delbits.Sums.Avl;
    sc_shard_counts = [ 1; 2; 4 ];
  }

type failure = { sf_step : int; sf_shards : int; sf_op : Trace.op; sf_message : string }

exception Failed of failure

let capture f = try Ok (f ()) with Invalid_argument _ -> Error `Rejected

let pp_hits hits =
  let n = List.length hits in
  let shown = List.filteri (fun i _ -> i < 8) hits in
  let body = String.concat "; " (List.map (fun (d, o) -> Printf.sprintf "(%d,%d)" d o) shown) in
  if n > 8 then Printf.sprintf "[%s; ... %d total]" body n else Printf.sprintf "[%s]" body

let pp_str_opt = function
  | None -> "None"
  | Some s ->
    if String.length s > 24 then Printf.sprintf "Some %S..." (String.sub s 0 24)
    else Printf.sprintf "Some %S" s

let pp_outcome pp = function Ok v -> pp v | Error `Rejected -> "Invalid_argument"

(* How often the in-memory matrix stirs documents between shards, so
   migration sits inside the differentially-checked region. *)
let rebalance_every = 41

let run_trace ?(config = default_config) ops =
  let model = Model.create () in
  let mk_baseline () =
    Di.create ~variant:config.sc_variant ~backend:config.sc_backend ~sample:config.sc_sample
      ~tau:config.sc_tau ~jobs:config.sc_jobs ~readers:config.sc_readers
      ~seq_backend:config.sc_seq ()
  in
  let baseline = mk_baseline () in
  let shardeds =
    List.map
      (fun k ->
        ( k,
          S.create ~variant:config.sc_variant ~backend:config.sc_backend ~sample:config.sc_sample
            ~tau:config.sc_tau ~jobs:config.sc_jobs ~readers:config.sc_readers
            ~seq_backend:config.sc_seq ~shards:k () ))
      config.sc_shard_counts
  in
  Fun.protect
    ~finally:(fun () ->
      Di.close baseline;
      List.iter (fun (_, t) -> S.close t) shardeds)
  @@ fun () ->
  let step = ref 0 in
  let fail shards op fmt =
    Printf.ksprintf
      (fun m -> raise (Failed { sf_step = !step; sf_shards = shards; sf_op = op; sf_message = m }))
      fmt
  in
  (* baseline queries through the read plane when it owns readers, same
     as the variant matrix *)
  let b_search p =
    if config.sc_readers > 0 then Di.query baseline (fun v -> Di.view_search v p)
    else Di.search baseline p
  in
  let b_count p =
    if config.sc_readers > 0 then Di.query baseline (fun v -> Di.view_count v p)
    else Di.count baseline p
  in
  let b_extract ~doc ~off ~len =
    if config.sc_readers > 0 then Di.query baseline (fun v -> Di.view_extract v ~doc ~off ~len)
    else Di.extract baseline ~doc ~off ~len
  in
  let b_mem id =
    if config.sc_readers > 0 then Di.query baseline (fun v -> Di.view_mem v id)
    else Di.mem baseline id
  in
  try
    List.iter
      (fun op ->
        incr step;
        (match op with
        | Trace.Insert text ->
          let mid = Model.insert model text in
          let bid = Di.insert baseline text in
          if bid <> mid then fail 1 op "baseline insert returned id %d, model %d" bid mid;
          List.iter
            (fun (k, t) ->
              let id = S.insert t text in
              if id <> mid then fail k op "K=%d insert returned id %d, model %d" k id mid)
            shardeds
        | Trace.Delete id ->
          let expected = Model.delete model id in
          let bgot = Di.delete baseline id in
          if bgot <> expected then fail 1 op "baseline delete %d -> %b, model %b" id bgot expected;
          List.iter
            (fun (k, t) ->
              let got = S.delete t id in
              if got <> expected then fail k op "K=%d delete %d -> %b, model %b" k id got expected)
            shardeds
        | Trace.Search p ->
          let expected = capture (fun () -> Model.search model p) in
          let bgot = capture (fun () -> b_search p) in
          if bgot <> expected then
            fail 1 op "baseline search %S -> %s, model %s" p (pp_outcome pp_hits bgot)
              (pp_outcome pp_hits expected);
          List.iter
            (fun (k, t) ->
              let got = capture (fun () -> S.search t p) in
              if got <> expected then
                fail k op "K=%d search %S -> %s, model %s" k p (pp_outcome pp_hits got)
                  (pp_outcome pp_hits expected);
              if got <> bgot then
                fail k op "K=%d search %S diverges from the K=1 baseline" k p)
            shardeds
        | Trace.Count p ->
          let expected = capture (fun () -> Model.count model p) in
          let bgot = capture (fun () -> b_count p) in
          if bgot <> expected then
            fail 1 op "baseline count %S -> %s, model %s" p (pp_outcome string_of_int bgot)
              (pp_outcome string_of_int expected);
          List.iter
            (fun (k, t) ->
              let got = capture (fun () -> S.count t p) in
              if got <> expected then
                fail k op "K=%d count %S -> %s, model %s" k p (pp_outcome string_of_int got)
                  (pp_outcome string_of_int expected);
              if got <> bgot then fail k op "K=%d count %S diverges from the K=1 baseline" k p)
            shardeds
        | Trace.Extract { doc; off; len } ->
          let expected = Model.extract model ~doc ~off ~len in
          let bgot = b_extract ~doc ~off ~len in
          if bgot <> expected then
            fail 1 op "baseline extract %d %d %d -> %s, model %s" doc off len (pp_str_opt bgot)
              (pp_str_opt expected);
          List.iter
            (fun (k, t) ->
              let got = S.extract t ~doc ~off ~len in
              if got <> expected then
                fail k op "K=%d extract %d %d %d -> %s, model %s" k doc off len (pp_str_opt got)
                  (pp_str_opt expected))
            shardeds
        | Trace.Mem id ->
          let expected = Model.mem model id in
          let bgot = b_mem id in
          if bgot <> expected then fail 1 op "baseline mem %d -> %b, model %b" id bgot expected;
          List.iter
            (fun (k, t) ->
              let got = S.mem t id in
              if got <> expected then fail k op "K=%d mem %d -> %b, model %b" k id got expected)
            shardeds
        | Trace.Drain ->
          Di.drain baseline;
          List.iter (fun (_, t) -> S.drain t) shardeds);
        (* periodic migration churn, then the usual size accounting *)
        if !step mod rebalance_every = 0 then
          List.iter (fun (_, t) -> ignore (S.rebalance_hottest t)) shardeds;
        let mdc = Model.doc_count model and mts = Model.total_symbols model in
        let bdc = Di.doc_count baseline in
        if bdc <> mdc then fail 1 op "baseline doc_count %d, model %d" bdc mdc;
        List.iter
          (fun (k, t) ->
            let dc = S.doc_count t in
            if dc <> mdc then fail k op "K=%d doc_count %d, model %d" k dc mdc;
            let ts = S.total_symbols t in
            if ts <> mts then fail k op "K=%d total_symbols %d, model %d" k ts mts)
          shardeds)
      ops;
    Ok ()
  with Failed f -> Error f

let shrink ?(config = default_config) ?max_runs ops =
  Runner.shrink_ops ?max_runs ops ~fails:(fun candidate ->
      match run_trace ~config candidate with Error _ -> true | Ok () -> false)

type stream_outcome =
  | Pass
  | Fail of { failure : failure; trace : Trace.op list; shrunk : Trace.op list }

let run_stream ?(config = default_config) ?profile ?(shrink_budget = 200) ~seed ~ops () =
  let trace = Opgen.generate ?profile ~seed ~ops () in
  match run_trace ~config trace with
  | Ok () -> Pass
  | Error f ->
    let prefix = List.filteri (fun i _ -> i < f.sf_step) trace in
    let shrunk = shrink ~config ~max_runs:shrink_budget prefix in
    let failure = match run_trace ~config shrunk with Error f' -> f' | Ok () -> f in
    Fail { failure; trace; shrunk }

let hint_of_config config =
  {
    Trace.no_hint with
    Trace.h_shards =
      (match config.sc_shard_counts with [] -> None | ks -> Some (List.fold_left max 1 ks));
    h_readers = (if config.sc_readers > 0 then Some config.sc_readers else None);
    h_jobs = (if config.sc_jobs > 0 then Some config.sc_jobs else None);
    h_seq =
      (if config.sc_seq <> Dsdg_delbits.Sums.Avl then
         Some (Dsdg_delbits.Sums.kind_to_string config.sc_seq)
       else None);
  }

let report ?seed ~failure ~shrunk () =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match seed with
  | Some s -> add "shard differential check FAILED (seed %d)\n" s
  | None -> add "shard differential check FAILED\n");
  add "shards : K=%d\n" failure.sf_shards;
  add "at op  : #%d  %s\n" failure.sf_step (Trace.op_to_string failure.sf_op);
  add "because: %s\n" failure.sf_message;
  add "minimal trace (%d ops):\n%s" (List.length shrunk) (Trace.render shrunk);
  Buffer.contents buf

(* --- durable sweeps --- *)

let default_sweep_config =
  { Durable.default_config with checkpoint_every = 7 }

(* Insert payloads in id order: global ids are sequential, so
   [texts.(i)] is the text acked as document i. *)
let insert_texts ops =
  Array.of_list (List.filter_map (function Trace.Insert t -> Some t | _ -> None) ops)

(* Differential verification of a recovered sharded store against the
   model: counts, membership + extraction for every id ever assigned,
   and searches sampled from live document prefixes. *)
let verify ~what t model texts =
  let expect cond fmt =
    Printf.ksprintf (fun m -> if not cond then failwith (what ^ ": " ^ m)) fmt
  in
  let mdc = Model.doc_count model in
  expect (S.doc_count t = mdc) "doc_count %d, model %d" (S.doc_count t) mdc;
  let mts = Model.total_symbols model in
  expect (S.total_symbols t = mts) "total_symbols %d, model %d" (S.total_symbols t) mts;
  let upper = Array.length texts + 2 in
  for id = 0 to upper do
    let m = Model.mem model id in
    expect (S.mem t id = m) "mem %d -> %b, model %b" id (S.mem t id) m;
    let me = Model.extract model ~doc:id ~off:0 ~len:3 in
    let ge = S.extract t ~doc:id ~off:0 ~len:3 in
    expect (ge = me) "extract %d -> %s, model %s" id (pp_str_opt ge) (pp_str_opt me)
  done;
  let pats = ref [ "ab"; "a" ] in
  Array.iteri
    (fun id text ->
      if Model.mem model id && String.length text >= 2 && List.length !pats < 10 then
        pats := String.sub text 0 (min 3 (String.length text)) :: !pats)
    texts;
  List.iter
    (fun p ->
      if p <> "" then begin
        let ms = Model.search model p and gs = S.search t p in
        expect (gs = ms) "search %S -> %s, model %s" p (pp_hits gs) (pp_hits ms);
        let mc = Model.count model p and gc = S.count t p in
        expect (gc = mc) "count %S -> %d, model %d" p gc mc
      end)
    !pats

let apply_op t model op =
  match op with
  | Trace.Insert text ->
    let mid = Model.insert model text in
    let gid = S.insert t text in
    if gid <> mid then failwith (Printf.sprintf "insert id %d, model %d" gid mid)
  | Trace.Delete id ->
    let m = Model.delete model id in
    let g = S.delete t id in
    if g <> m then failwith (Printf.sprintf "delete %d -> %b, model %b" id g m)
  | Trace.Search p ->
    let m = capture (fun () -> Model.search model p) in
    let g = capture (fun () -> S.search t p) in
    if g <> m then failwith (Printf.sprintf "search %S disagrees" p)
  | Trace.Count p ->
    let m = capture (fun () -> Model.count model p) in
    let g = capture (fun () -> S.count t p) in
    if g <> m then failwith (Printf.sprintf "count %S disagrees" p)
  | Trace.Extract { doc; off; len } ->
    let m = Model.extract model ~doc ~off ~len in
    let g = S.extract t ~doc ~off ~len in
    if g <> m then failwith (Printf.sprintf "extract %d disagrees" doc)
  | Trace.Mem id ->
    let m = Model.mem model id in
    let g = S.mem t id in
    if g <> m then failwith (Printf.sprintf "mem %d -> %b, model %b" id g m)
  | Trace.Drain -> S.drain t

let kill_sweep ?variant ?backend ?sample ?tau ?seq_backend ?(config = default_sweep_config)
    ?(torn = true)
    ?(stride = 1) ~shards ~dir ~ops () =
  let ops_arr = Array.of_list ops in
  let n = Array.length ops_arr in
  let texts = insert_texts ops in
  let recovery_jobs = if shards > 1 then 2 else 0 in
  let failures = ref [] in
  let points = ref 0 in
  let point k =
    incr points;
    try
      Kill_check.reset_dir dir;
      let model = Model.create () in
      let t, _ =
        S.open_store ~config ?variant ?backend ?sample ?tau ?seq_backend ~shards ~dir ()
      in
      for i = 0 to k - 1 do
        apply_op t model ops_arr.(i)
      done;
      (* odd points carry a completed hot-shard split in the meta log,
         so recovery replays migrations as well as placements *)
      if k mod 2 = 1 then ignore (S.rebalance_hottest t);
      S.kill t ~torn;
      let t, _ =
        S.open_store ~config ?variant ?backend ?sample ?tau ?seq_backend ~recovery_jobs ~shards ~dir ()
      in
      Fun.protect ~finally:(fun () -> S.close t) @@ fun () ->
      verify ~what:(Printf.sprintf "recovery at point %d" k) t model texts;
      for i = k to n - 1 do
        apply_op t model ops_arr.(i)
      done;
      verify ~what:(Printf.sprintf "continuation after point %d" k) t model texts
    with e ->
      failures :=
        { Kill_check.kf_point = k; kf_detail = Printexc.to_string e } :: !failures
  in
  let k = ref 0 in
  while !k <= n do
    point !k;
    k := !k + max 1 stride
  done;
  { Kill_check.kc_points = !points; kc_failures = List.rev !failures }

exception Killed

let split_kill_sweep ?variant ?backend ?sample ?tau ?seq_backend
    ?(config = default_sweep_config)
    ?(torn = false) ~shards ~dir ~ops () =
  if shards < 2 then invalid_arg "Shard_check.split_kill_sweep: needs shards >= 2";
  let texts = insert_texts ops in
  let failures = ref [] in
  let points = ref 0 in
  let finished = ref false in
  let kill_at = ref 0 in
  (* rebuild store + model from scratch for every kill point; migrate
     every live doc of the fullest shard and kill at kill point k *)
  while not !finished do
    let k = !kill_at in
    incr points;
    (try
       Kill_check.reset_dir dir;
       let model = Model.create () in
       let t, _ = S.open_store ~config ?variant ?backend ?sample ?tau ?seq_backend ~shards ~dir () in
       List.iter (fun op -> apply_op t model op) ops;
       let upper = Array.length texts in
       let src = ref 0 and best = ref (-1) in
       for s = 0 to shards - 1 do
         let live = ref 0 in
         for id = 0 to upper do
           if S.mem t id && S.shard_of t id = Some s then incr live
         done;
         if !live > !best then begin
           best := !live;
           src := s
         end
       done;
       let dst = (!src + 1) mod shards in
       let docs = ref [] in
       for id = upper downto 0 do
         if S.mem t id && S.shard_of t id = Some !src then docs := id :: !docs
       done;
       (try
          ignore
            (S.rebalance t ~hook:(fun step -> if step = k then raise Killed) ~src:!src ~dst
               ~docs:!docs);
          finished := true
        with Killed -> ());
       S.kill t ~torn;
       let t, _ =
         S.open_store ~config ?variant ?backend ?sample ?tau ?seq_backend ~recovery_jobs:2 ~shards ~dir ()
       in
       Fun.protect ~finally:(fun () -> S.close t) @@ fun () ->
       verify ~what:(Printf.sprintf "split recovery at kill point %d" k) t model texts;
       (* acked-write continuity: the next global id must continue the
          sequence, and the new document must be immediately servable *)
       apply_op t model (Trace.Insert "post-split");
       apply_op t model (Trace.Search "post-spl");
       verify ~what:(Printf.sprintf "split continuation at kill point %d" k) t model texts
     with e ->
       failures := { Kill_check.kf_point = k; kf_detail = Printexc.to_string e } :: !failures;
       (* an exception before the unkilled run completes must not loop
          forever: treat repeated failure at the same point as fatal *)
       if List.length !failures > 4 then finished := true);
    incr kill_at
  done;
  { Kill_check.kc_points = !points; kc_failures = List.rev !failures }
