(** Shard-aware differential checking: fan one op stream over shard
    counts.

    The in-memory matrix ({!run_trace} / {!run_stream}) drives the
    same trace through the naive {!Dsdg_check.Model}, a plain K=1
    {!Dsdg_core.Dynamic_index} baseline, and a {!Sharded_index} per
    configured shard count, comparing {e every} answer -- insert ids,
    delete outcomes, search/count/extract/mem including the uniform
    empty-pattern rejection -- against both the model and the baseline,
    so a sharded collection must be byte-identical to the K=1 index it
    partitions.  Periodic {!Sharded_index.rebalance_hottest} churn
    keeps document migration inside the checked region.  Failing
    streams are delta-debugged with {!Dsdg_check.Runner.shrink_ops},
    and replay traces record the shard count in their
    {!Dsdg_check.Trace.hint}.

    The durable sweeps are the persistence analogue, mirroring
    {!Dsdg_store.Kill_check}: {!kill_sweep} crashes a sharded store at
    every stride along the trace (crossing checkpoint installs, with
    completed migrations in the meta log on odd points) and verifies
    every recovery against the model; {!split_kill_sweep} kills
    mid-migration at {e every} kill-point of the split state machine
    and asserts the recovered shards re-serve every acknowledged write
    exactly once -- no loss, no duplication across shards. *)

type config = {
  sc_variant : Dsdg_core.Dynamic_index.variant;
  sc_backend : Dsdg_core.Dynamic_index.backend;
  sc_sample : int;
  sc_tau : int;
  sc_jobs : int;  (** executor workers per index/shard (0 = sync) *)
  sc_readers : int;  (** reader-pool domains; > 0 routes queries through views *)
  sc_seq : Dsdg_delbits.Sums.kind;
      (** dynamic-sequence substrate for baseline and every shard
          (default [Avl]); recorded in replay hints as [seq=<name>] *)
  sc_shard_counts : int list;  (** K values under test (default [[1; 2; 4]]) *)
}

val default_config : config

type failure = {
  sf_step : int;  (** 1-based index of the failing op *)
  sf_shards : int;  (** shard count of the disagreeing index (1 = baseline) *)
  sf_op : Dsdg_check.Trace.op;
  sf_message : string;
}

(** Run a trace through model + baseline + every configured shard
    count; [Error] carries the first disagreement. *)
val run_trace : ?config:config -> Dsdg_check.Trace.op list -> (unit, failure) result

(** {!Dsdg_check.Runner.shrink_ops} against {!run_trace}. *)
val shrink : ?config:config -> ?max_runs:int -> Dsdg_check.Trace.op list -> Dsdg_check.Trace.op list

type stream_outcome =
  | Pass
  | Fail of {
      failure : failure;
      trace : Dsdg_check.Trace.op list;
      shrunk : Dsdg_check.Trace.op list;
    }

(** Generate (from [seed]), run, shrink on failure. *)
val run_stream :
  ?config:config ->
  ?profile:Dsdg_check.Opgen.profile ->
  ?shrink_budget:int ->
  seed:int ->
  ops:int ->
  unit ->
  stream_outcome

(** The {!Dsdg_check.Trace.hint} a saved replay of this configuration
    needs: shard count = max configured K, plus readers/jobs when
    non-zero. *)
val hint_of_config : config -> Dsdg_check.Trace.hint

(** Human-readable failure report (minimal trace included). *)
val report : ?seed:int -> failure:failure -> shrunk:Dsdg_check.Trace.op list -> unit -> string

(** {1 Durable sweeps} *)

(** [kill_sweep ~shards ~dir ~ops ()] exercises kill points [0,
    stride, ...] along [ops] against a sharded store under [dir]
    (scratch, wiped per point): apply the prefix (with a completed
    hot-shard rebalance on odd points), crash with {!Sharded_index.kill}
    ([torn] defaults to [true]), recover -- in parallel on 2 executor
    workers when K > 1 -- and differentially verify membership,
    extraction, counts and sampled searches against the model; then
    replay the remaining ops and re-verify.  Outcome/failure types are
    shared with {!Dsdg_store.Kill_check} ([kf_point] = ops applied
    before the crash). *)
val kill_sweep :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?config:Dsdg_store.Durable.config ->
  ?torn:bool ->
  ?stride:int ->
  shards:int ->
  dir:string ->
  ops:Dsdg_check.Trace.op list ->
  unit ->
  Dsdg_store.Kill_check.outcome

(** [split_kill_sweep ~shards ~dir ~ops ()] builds the collection from
    [ops], then migrates every live document of the fullest shard to
    the emptiest and kills ({!Sharded_index.kill}) at each successive
    kill point of the migration state machine (before/after the meta
    intent record, after the destination insert, after the source
    delete) until one run completes unkilled.  After every crash the
    store is reopened and checked against the model: every acknowledged
    write served exactly once, correct global-id continuation for new
    inserts.  [kf_point] reports the kill-point index within the
    migration. *)
val split_kill_sweep :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?config:Dsdg_store.Durable.config ->
  ?torn:bool ->
  shards:int ->
  dir:string ->
  ops:Dsdg_check.Trace.op list ->
  unit ->
  Dsdg_store.Kill_check.outcome
