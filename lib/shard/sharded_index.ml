(* Hash-partitioned sharding over Dynamic_index; contracts documented
   in sharded_index.mli and DESIGN.md section 12. *)

module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
module Durable = Dsdg_store.Durable
module Exec = Dsdg_exec.Executor
open Dsdg_obs

let obs = Obs.scope "shard"
let c_inserts = Obs.counter obs "inserts"
let c_deletes = Obs.counter obs "deletes"
let c_migrations = Obs.counter obs "migrations"
let c_fixups = Obs.counter obs "recovery_fixups"
let c_orphans = Obs.counter obs "recovery_orphans"
let c_scatter = Obs.counter obs "scatter_queries"
let h_gather_ns = Obs.histogram obs "gather_ns"
let h_recovery_ns = Obs.histogram obs "recovery_ns"

exception Shard_mismatch of { dir : string; on_disk : int; requested : int }

let () =
  Printexc.register_printer (function
    | Shard_mismatch { dir; on_disk; requested } ->
      Some
        (Printf.sprintf "Sharded_index.Shard_mismatch: %s holds %d shard(s), %d requested" dir
           on_disk requested)
    | _ -> None)

(* --- the partition function --- *)

(* A fixed avalanche mixer over the global id: deterministic across
   runs and processes (recovery re-derives every placement from the
   meta log, but fresh routing must also be reproducible), uniform
   enough that K shards stay balanced under sequential ids. *)
let mix g =
  let h = g + 0x1FC64E6DA3BC5C1 in
  let h = (h lxor (h lsr 33)) * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x9E3779B97F4A7 in
  (h lxor (h lsr 32)) land max_int

let route k g = mix g mod k

(* --- the global <-> local mapping, epoch-published --- *)

module Imap = Map.Make (Int)

type placement = { pl_shard : int; pl_local : int }

type mapping = {
  m_g2p : placement Imap.t;  (* global id -> current placement (kept for dead ids) *)
  m_l2g : int Imap.t array;  (* per shard: local id -> global id, live placements only *)
  m_next_global : int;
  m_version : int;
}

let mapping0 k =
  { m_g2p = Imap.empty; m_l2g = Array.make k Imap.empty; m_next_global = 0; m_version = 0 }

(* --- the placement meta log (store mode) --- *)

type ev = Ev_insert of int * int | Ev_migrate of int * int * int

let ev_to_line = function
  | Ev_insert (g, s) -> Printf.sprintf "I %d %d" g s
  | Ev_migrate (g, src, dst) -> Printf.sprintf "M %d %d %d" g src dst

let ev_of_line line =
  let scan fmt k = try Some (Scanf.sscanf line fmt k) with _ -> None in
  if String.length line < 2 then None
  else
    match line.[0] with
    | 'I' -> scan "I %d %d" (fun g s -> Ev_insert (g, s))
    | 'M' -> scan "M %d %d %d" (fun g a b -> Ev_migrate (g, a, b))
    | _ -> None

type meta = {
  mt_path : string;
  mutable mt_oc : out_channel;
  mt_fsync : bool;
  mutable mt_records : int; (* events in the file (durable once fsynced) *)
}

let meta_file ~dir = Filename.concat dir "shard.meta"
let header k = Printf.sprintf "dsdg-shard 1 %d" k

let parse_header line =
  try Some (Scanf.sscanf line "dsdg-shard 1 %d" (fun k -> k)) with _ -> None

let corrupt ~file reason =
  raise (Dsdg_store.Codec.Corrupt { file; section = "shardmeta"; reason })

(* Read the meta log: header + events.  The final record may be torn
   (crash mid-append): an unparseable or newline-less last line is
   dropped; an unparseable interior line is corruption. *)
let meta_read path =
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let complete, lines =
    match String.split_on_char '\n' raw with
    | [] -> (true, [])
    | parts ->
      let rec split acc = function
        | [ last ] -> (last = "", List.rev acc)
        | x :: rest -> split (x :: acc) rest
        | [] -> (true, List.rev acc)
      in
      let ended, body = split [] parts in
      if ended then (true, body)
      else (false, body @ [ List.nth parts (List.length parts - 1) ])
  in
  match lines with
  | [] -> corrupt ~file:path "empty meta log"
  | hd :: evs -> (
    match parse_header hd with
    | None -> corrupt ~file:path "bad header (expected \"dsdg-shard 1 K\")"
    | Some k ->
      let n = List.length evs in
      let events =
        List.filteri (fun _ l -> l <> "") evs
        |> List.mapi (fun i line -> (i, line))
        |> List.filter_map (fun (i, line) ->
               match ev_of_line line with
               | Some ev -> Some ev
               | None ->
                 (* only the final record may be garbage, and only when
                    the file does not end in a newline (torn append) *)
                 if i = n - 1 && not complete then None
                 else corrupt ~file:path (Printf.sprintf "unparseable record %S" line))
      in
      (k, events))

let meta_open_append ~fsync path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { mt_path = path; mt_oc = oc; mt_fsync = fsync; mt_records = 0 }

let meta_create ~fsync path k =
  let mt = meta_open_append ~fsync path in
  output_string mt.mt_oc (header k ^ "\n");
  flush mt.mt_oc;
  if fsync then Unix.fsync (Unix.descr_of_out_channel mt.mt_oc);
  mt

(* Append events with at most one fsync for the whole group -- the
   meta-log half of the sharded group commit. *)
let meta_append mt evs =
  List.iter (fun ev -> output_string mt.mt_oc (ev_to_line ev ^ "\n")) evs;
  flush mt.mt_oc;
  if mt.mt_fsync then Unix.fsync (Unix.descr_of_out_channel mt.mt_oc);
  mt.mt_records <- mt.mt_records + List.length evs

(* Compact the log to exactly the surviving events (recovery dropped an
   unacknowledged tail or adopted orphans): tmp + rename, the same
   atomic-install idiom as Wal.rewrite. *)
let meta_rewrite mt k evs =
  close_out_noerr mt.mt_oc;
  let tmp = mt.mt_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (header k ^ "\n");
  List.iter (fun ev -> output_string oc (ev_to_line ev ^ "\n")) evs;
  flush oc;
  if mt.mt_fsync then Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Unix.rename tmp mt.mt_path;
  mt.mt_oc <- (meta_open_append ~fsync:mt.mt_fsync mt.mt_path).mt_oc;
  mt.mt_records <- List.length evs

(* --- the sharded index --- *)

type backing = Mem | Store of { stores : Durable.t array; meta : meta }

type t = {
  k : int;
  idxs : Di.t array;
  backing : backing;
  mapping : mapping Atomic.t;
  readers : int;
  ins_total : int array;  (* inserts ever per shard (local next id); writer-owned *)
  mutable closed : bool;
  mutable poisoned : bool;  (* a shard failed mid-batch; refuse further writes *)
  (* as-of retention: recent mappings, newest first, so a composite
     epoch_vector stays resolvable while each shard's own retention
     ring holds the matching view.  The mapping version advances once
     per update (vs ~1/K per shard epoch), so the ring holds
     [retain * K] entries to cover roughly the same time window. *)
  retain : int;
  map_cap : int;
  map_ring : mapping list Atomic.t;
  pinned_maps : (int * mapping) list Atomic.t;
  pin_next : int Atomic.t;
  (* follower replay: placements shipped from the leader's meta stream,
     queued per destination shard until the matching shard WAL record
     arrives and binds the global id *)
  repl_pending : ev Queue.t array;
}

let shards t = t.k

let check_open t =
  if t.closed then invalid_arg "Sharded_index: closed";
  if t.poisoned then invalid_arg "Sharded_index: poisoned by a failed shard write"

let publish t m =
  Atomic.set t.mapping m;
  if t.retain > 0 then begin
    let rec keep n = function
      | [] -> []
      | _ :: _ when n = 0 -> []
      | x :: tl -> x :: keep (n - 1) tl
    in
    Atomic.set t.map_ring (keep t.map_cap (m :: Atomic.get t.map_ring))
  end

let set_l2g m s v =
  let a = Array.copy m.m_l2g in
  a.(s) <- v;
  a

let mk_retention ~shards retain_epochs =
  let retain = max 0 (match retain_epochs with Some r -> r | None -> 0) in
  (retain, retain * shards)

let create ?variant ?backend ?sample ?tau ?jobs ?readers ?seq_backend ?retain_epochs ~shards ()
    =
  if shards < 1 then invalid_arg "Sharded_index.create: shards must be >= 1";
  let idxs =
    Array.init shards (fun _ ->
        Di.create ?variant ?backend ?sample ?tau ?jobs ?readers ?seq_backend ?retain_epochs ())
  in
  let retain, map_cap = mk_retention ~shards retain_epochs in
  {
    k = shards;
    idxs;
    backing = Mem;
    mapping = Atomic.make (mapping0 shards);
    readers = (match readers with Some r -> r | None -> 0);
    ins_total = Array.make shards 0;
    closed = false;
    poisoned = false;
    retain;
    map_cap;
    map_ring = Atomic.make [];
    pinned_maps = Atomic.make [];
    pin_next = Atomic.make 0;
    repl_pending = Array.init shards (fun _ -> Queue.create ());
  }

let shard_dir dir s = Filename.concat dir (Printf.sprintf "shard-%d" s)

let store_shards ~dir =
  let path = meta_file ~dir in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_line with
    | None -> None
    | Some line -> parse_header line

let open_store ?(config = Durable.default_config) ?variant ?backend ?sample ?tau ?jobs ?readers
    ?seq_backend ?retain_epochs ?(recovery_jobs = 0) ~shards ~dir () =
  if shards < 1 then invalid_arg "Sharded_index.open_store: shards must be >= 1";
  let t0 = Obs.start () in
  Dsdg_store.Snapshot.ensure_dir dir;
  let fsync = config.Durable.sync <> Dsdg_store.Wal.Never in
  let path = meta_file ~dir in
  let k, events, meta =
    if Sys.file_exists path then begin
      let k, events = meta_read path in
      if k <> shards then raise (Shard_mismatch { dir; on_disk = k; requested = shards });
      (k, events, meta_open_append ~fsync path)
    end
    else (shards, [], meta_create ~fsync path shards)
  in
  (* open the K shard stores -- in parallel on an executor pool when
     recovery_jobs > 0; each store recovers independently (newest valid
     snapshot + WAL tail replay) *)
  let open_one s =
    Durable.open_ ~config ?variant ?backend ?sample ?tau ?jobs ?readers ?seq_backend
      ?retain_epochs ~dir:(shard_dir dir s) ()
  in
  let pairs =
    if recovery_jobs > 0 then begin
      let ex = Exec.create ~obs:(Obs.private_scope "shard/recovery") ~workers:recovery_jobs () in
      let handles = Array.init k (fun s -> Exec.submit ex ~name:"shard-open" (fun _ -> open_one s)) in
      let out =
        Array.map
          (fun h ->
            match Exec.await ex h with
            | `Done r -> Some r
            | `Failed e ->
              Exec.shutdown ex;
              raise e
            | `Cancelled -> None)
          handles
      in
      Exec.shutdown ex;
      Array.map (function Some r -> r | None -> failwith "shard open cancelled") out
    end
    else Array.init k open_one
  in
  let stores = Array.map fst pairs in
  let infos = Array.map snd pairs in
  let idxs = Array.map Durable.index stores in
  (* replay the meta log against the recovered shard insert counts:
     consume insert events in order per shard; events beyond a shard's
     durable inserts are an unacknowledged crash tail and are dropped,
     shard inserts beyond the meta log (possible only under --sync
     never) are adopted as orphans with fresh global ids *)
  let totals =
    Array.map
      (fun idx ->
        let next_id, _, _ = Di.dump_scalars idx in
        next_id)
      idxs
  in
  let consumed = Array.make k 0 in
  let g2p = ref Imap.empty in
  let l2g = Array.make k Imap.empty in
  let next_g = ref 0 in
  let surviving = ref [] in
  let changed = ref false in
  let fixups = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Ev_insert (g, s) ->
        if s < 0 || s >= k then corrupt ~file:path (Printf.sprintf "shard %d out of range" s);
        if consumed.(s) < totals.(s) then begin
          let l = consumed.(s) in
          consumed.(s) <- l + 1;
          g2p := Imap.add g { pl_shard = s; pl_local = l } !g2p;
          if Di.mem idxs.(s) l then l2g.(s) <- Imap.add l g l2g.(s);
          if g >= !next_g then next_g := g + 1;
          surviving := ev :: !surviving
        end
        else changed := true
      | Ev_migrate (g, src, dst) -> (
        if src < 0 || src >= k || dst < 0 || dst >= k then
          corrupt ~file:path "migration shard out of range";
        match Imap.find_opt g !g2p with
        | None -> changed := true (* migration of a dropped insert *)
        | Some { pl_shard; pl_local } ->
          if pl_shard <> src then
            corrupt ~file:path
              (Printf.sprintf "migration of doc %d from shard %d, but it lives on %d" g src
                 pl_shard);
          if consumed.(dst) < totals.(dst) then begin
            let l' = consumed.(dst) in
            consumed.(dst) <- l' + 1;
            l2g.(src) <- Imap.remove pl_local l2g.(src);
            g2p := Imap.add g { pl_shard = dst; pl_local = l' } !g2p;
            if Di.mem idxs.(dst) l' then l2g.(dst) <- Imap.add l' g l2g.(dst);
            surviving := ev :: !surviving;
            (* the destination insert landed but the source delete did
               not: finish the migration so the document is served
               exactly once *)
            if Di.mem idxs.(src) pl_local then begin
              ignore (Durable.delete stores.(src) pl_local);
              incr fixups;
              Obs.incr c_fixups
            end
          end
          else changed := true (* destination insert never landed; doc stays at src *)))
    events;
  (* orphans: shard WAL records with no meta record (meta lost its
     tail under --sync never); adopt them with fresh global ids *)
  for s = 0 to k - 1 do
    while consumed.(s) < totals.(s) do
      let l = consumed.(s) in
      consumed.(s) <- l + 1;
      let g = !next_g in
      next_g := g + 1;
      g2p := Imap.add g { pl_shard = s; pl_local = l } !g2p;
      if Di.mem idxs.(s) l then l2g.(s) <- Imap.add l g l2g.(s);
      surviving := Ev_insert (g, s) :: !surviving;
      changed := true;
      Obs.incr c_orphans
    done
  done;
  if !changed || !fixups > 0 then meta_rewrite meta k (List.rev !surviving)
  else meta.mt_records <- List.length events;
  let retain, map_cap = mk_retention ~shards:k retain_epochs in
  let t =
    {
      k;
      idxs;
      backing = Store { stores; meta };
      mapping =
        Atomic.make
          { m_g2p = !g2p; m_l2g = l2g; m_next_global = !next_g; m_version = 0 };
      readers = (match readers with Some r -> r | None -> 0);
      ins_total = totals;
      closed = false;
      poisoned = false;
      retain;
      map_cap;
      map_ring = Atomic.make [];
      pinned_maps = Atomic.make [];
      pin_next = Atomic.make 0;
      repl_pending = Array.init k (fun _ -> Queue.create ());
    }
  in
  Obs.stop h_recovery_ns t0;
  (t, infos)

(* --- mutations --- *)

let insert t text =
  check_open t;
  let m = Atomic.get t.mapping in
  let g = m.m_next_global in
  let s = route t.k g in
  (match t.backing with
  | Store { meta; _ } -> meta_append meta [ Ev_insert (g, s) ]
  | Mem -> ());
  let l =
    match t.backing with
    | Store { stores; _ } -> Durable.insert stores.(s) text
    | Mem -> Di.insert t.idxs.(s) text
  in
  t.ins_total.(s) <- t.ins_total.(s) + 1;
  publish t
    {
      m_g2p = Imap.add g { pl_shard = s; pl_local = l } m.m_g2p;
      m_l2g = set_l2g m s (Imap.add l g m.m_l2g.(s));
      m_next_global = g + 1;
      m_version = m.m_version + 1;
    };
  Obs.incr c_inserts;
  g

let delete t id =
  check_open t;
  let m = Atomic.get t.mapping in
  match Imap.find_opt id m.m_g2p with
  | None -> false
  | Some { pl_shard = s; pl_local = l } ->
    let ok =
      match t.backing with
      | Store { stores; _ } -> Durable.delete stores.(s) l
      | Mem -> Di.delete t.idxs.(s) l
    in
    if ok then begin
      publish t
        {
          m with
          m_l2g = set_l2g m s (Imap.remove l m.m_l2g.(s));
          m_version = m.m_version + 1;
        };
      Obs.incr c_deletes
    end;
    ok

(* --- queries: scatter across shard views, gather by translation --- *)

let q_view t s f = if t.readers > 0 then Di.query t.idxs.(s) f else f (Di.view t.idxs.(s))

(* Resolve a composite epoch_vector (per-shard epochs + mapping
   version, the shape {!epoch_vector} reports) into the frozen mapping
   and the K frozen shard views -- the live state, the retention rings,
   then the pin tables.  Everything resolved is immutable, so the as-of
   query runs without touching the live read plane. *)
let resolve_at t ev =
  if Array.length ev <> t.k + 1 then
    invalid_arg
      (Printf.sprintf "Sharded_index: epoch_vector has %d entries, want %d (K shards + mapping)"
         (Array.length ev) (t.k + 1));
  let version = ev.(t.k) in
  let m =
    let cur = Atomic.get t.mapping in
    if cur.m_version = version then Some cur
    else
      match List.find_opt (fun m -> m.m_version = version) (Atomic.get t.map_ring) with
      | Some _ as hit -> hit
      | None -> (
        match
          List.find_opt (fun (_, m) -> m.m_version = version) (Atomic.get t.pinned_maps)
        with
        | Some (_, m) -> Some m
        | None -> None)
  in
  match m with
  | None ->
    invalid_arg
      (Printf.sprintf "Sharded_index: mapping version %d is not retained or pinned" version)
  | Some m ->
    let views =
      Array.init t.k (fun s ->
          match Di.view_at t.idxs.(s) ~epoch:ev.(s) with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Sharded_index: shard %d epoch %d is not retained or pinned" s
                 ev.(s)))
    in
    (m, views)

(* Run [f] against shard [s] as the (possibly as-of) resolution
   dictates: the reader pool / live view when [at] is [None], the
   frozen view otherwise. *)
let q_at t at s f =
  match at with None -> q_view t s f | Some (_, views) -> f (views : Di.view array).(s)

let mapping_at t at = match at with None -> Atomic.get t.mapping | Some (m, _) -> m

let search ?epoch_vector t p =
  check_open t;
  if p = "" then invalid_arg "Dynamic_index: empty pattern";
  Obs.incr c_scatter;
  let t0 = Obs.start () in
  let at = Option.map (resolve_at t) epoch_vector in
  let m = mapping_at t at in
  let acc = ref [] in
  for s = 0 to t.k - 1 do
    let l2g = m.m_l2g.(s) in
    q_at t at s (fun v ->
        Di.view_iter_matches v p ~f:(fun ~doc ~off ->
            match Imap.find_opt doc l2g with
            | Some g -> acc := (g, off) :: !acc
            | None -> () (* unpublished in-flight copy: not yet visible *)))
  done;
  let hits = List.sort compare !acc in
  Obs.stop h_gather_ns t0;
  hits

let count ?epoch_vector t p =
  check_open t;
  if p = "" then invalid_arg "Dynamic_index: empty pattern";
  Obs.incr c_scatter;
  let t0 = Obs.start () in
  let at = Option.map (resolve_at t) epoch_vector in
  let m = mapping_at t at in
  let n = ref 0 in
  for s = 0 to t.k - 1 do
    let l2g = m.m_l2g.(s) in
    q_at t at s (fun v ->
        Di.view_iter_matches v p ~f:(fun ~doc ~off:_ -> if Imap.mem doc l2g then incr n))
  done;
  Obs.stop h_gather_ns t0;
  !n

let extract ?epoch_vector t ~doc ~off ~len =
  check_open t;
  let at = Option.map (resolve_at t) epoch_vector in
  let m = mapping_at t at in
  match Imap.find_opt doc m.m_g2p with
  | None -> None
  | Some { pl_shard = s; pl_local = l } -> q_at t at s (fun v -> Di.view_extract v ~doc:l ~off ~len)

let mem ?epoch_vector t id =
  check_open t;
  let at = Option.map (resolve_at t) epoch_vector in
  let m = mapping_at t at in
  match Imap.find_opt id m.m_g2p with
  | None -> false
  | Some { pl_shard = s; pl_local = l } ->
    Imap.mem l m.m_l2g.(s) && q_at t at s (fun v -> Di.view_mem v l)

let doc_count t = Array.fold_left (fun acc idx -> acc + Di.doc_count idx) 0 t.idxs
let total_symbols t = Array.fold_left (fun acc idx -> acc + Di.total_symbols idx) 0 t.idxs

let describe t =
  Printf.sprintf "sharded(K=%d) over %s" t.k (if t.k = 0 then "-" else Di.describe t.idxs.(0))

let drain t = Array.iter Di.drain t.idxs

(* --- batched mutations (the serve write path) --- *)

(* How one op of a batch resolves. *)
type plan = P_shard of int (* consume the next result of shard s *) | P_dead_delete

let apply_batch t ops =
  check_open t;
  List.iter
    (function
      | Trace.Insert _ | Trace.Delete _ -> ()
      | op ->
        invalid_arg
          (Printf.sprintf "Sharded_index.apply_batch: %S is not a mutation"
             (Trace.op_to_string op)))
    ops;
  match t.backing with
  | Mem ->
    List.map
      (function
        | Trace.Insert text -> Durable.Br_inserted (insert t text)
        | Trace.Delete id -> Durable.Br_deleted (delete t id)
        | _ -> assert false)
      ops
  | Store { stores; meta } ->
    (* plan the whole batch against a working copy of the mapping, so
       a delete later in the batch sees inserts earlier in it *)
    let m0 = Atomic.get t.mapping in
    let g2p = ref m0.m_g2p in
    let l2g = Array.copy m0.m_l2g in
    let next_g = ref m0.m_next_global in
    let queued = Array.make t.k 0 in
    let per_shard = Array.make t.k [] in
    let metas = ref [] in
    let globals = ref [] in
    let plan =
      List.map
        (fun op ->
          match op with
          | Trace.Insert _ ->
            let g = !next_g in
            next_g := g + 1;
            let s = route t.k g in
            let l = t.ins_total.(s) + queued.(s) in
            queued.(s) <- queued.(s) + 1;
            g2p := Imap.add g { pl_shard = s; pl_local = l } !g2p;
            l2g.(s) <- Imap.add l g l2g.(s);
            metas := Ev_insert (g, s) :: !metas;
            globals := g :: !globals;
            per_shard.(s) <- op :: per_shard.(s);
            P_shard s
          | Trace.Delete id -> (
            match Imap.find_opt id !g2p with
            | None -> P_dead_delete
            | Some { pl_shard = s; pl_local = l } ->
              l2g.(s) <- Imap.remove l l2g.(s);
              (* the shard store (and its WAL) speaks local ids: log the
                 translated delete, not the global one *)
              per_shard.(s) <- Trace.Delete l :: per_shard.(s);
              P_shard s)
          | _ -> assert false)
        ops
    in
    ignore !globals;
    (* log-ahead, group committed: all placements reach the meta log
       (one fsync) before any shard WAL write; then one WAL append +
       one fsync per shard *)
    if !metas <> [] then meta_append meta (List.rev !metas);
    let results = Array.make t.k [] in
    (try
       Array.iteri
         (fun s ops_rev ->
           if ops_rev <> [] then
             results.(s) <- Durable.apply_batch stores.(s) (List.rev ops_rev))
         per_shard
     with e ->
       t.poisoned <- true;
       raise e);
    (* stitch shard results back into op order; inserts report global ids *)
    let cursors = results in
    let out =
      List.map2
        (fun op pl ->
          match (op, pl) with
          | _, P_dead_delete -> Durable.Br_deleted false
          | Trace.Insert _, P_shard s -> (
            match cursors.(s) with
            | Durable.Br_inserted _ :: rest ->
              cursors.(s) <- rest;
              Durable.Br_inserted 0 (* patched below *)
            | _ ->
              t.poisoned <- true;
              failwith "Sharded_index.apply_batch: shard result misalignment")
          | Trace.Delete _, P_shard s -> (
            match cursors.(s) with
            | (Durable.Br_deleted _ as r) :: rest ->
              cursors.(s) <- rest;
              r
            | _ ->
              t.poisoned <- true;
              failwith "Sharded_index.apply_batch: shard result misalignment")
          | _ -> assert false)
        ops plan
    in
    (* second pass: fill in the global ids for inserts, in order *)
    let g = ref m0.m_next_global in
    let out =
      List.map2
        (fun op r ->
          match (op, r) with
          | Trace.Insert _, Durable.Br_inserted _ ->
            let id = !g in
            incr g;
            Obs.incr c_inserts;
            Durable.Br_inserted id
          | _, r ->
            (match r with Durable.Br_deleted true -> Obs.incr c_deletes | _ -> ());
            r)
        ops out
    in
    Array.iteri (fun s q -> t.ins_total.(s) <- t.ins_total.(s) + q) queued;
    publish t
      { m_g2p = !g2p; m_l2g = l2g; m_next_global = !next_g; m_version = m0.m_version + 1 };
    out

(* --- consistency probes --- *)

let shard_of t id =
  match Imap.find_opt id (Atomic.get t.mapping).m_g2p with
  | Some { pl_shard; _ } -> Some pl_shard
  | None -> None

let epoch_vector t =
  Array.init (t.k + 1) (fun s ->
      if s = t.k then (Atomic.get t.mapping).m_version
      else Di.view_epoch (Di.view t.idxs.(s)))

let wal_serials t =
  match t.backing with
  | Mem -> Array.make t.k 0
  | Store { stores; _ } -> Array.map Durable.wal_serial stores

let durable_serials t =
  match t.backing with
  | Mem -> Array.make t.k 0
  | Store { stores; _ } -> Array.map Durable.durable_serial stores

(* --- pinned epoch-vector backups --- *)

type pin_kind = Pk_mem of Di.pin array | Pk_store of Durable.pin array
type pin = { sp_token : int; sp_vector : int array; sp_kind : pin_kind }

(* Pin all K shards plus the mapping at one update boundary: the pinned
   state is exactly what the composite epoch_vector names, and it stays
   resolvable (as-of queries, backup) however far retention evicts. *)
let pin t =
  check_open t;
  let m = Atomic.get t.mapping in
  let kind =
    match t.backing with
    | Mem -> Pk_mem (Array.map Di.pin t.idxs)
    | Store { stores; _ } -> Pk_store (Array.map Durable.pin stores)
  in
  let vector =
    Array.init (t.k + 1) (fun s ->
        if s = t.k then m.m_version
        else
          match kind with
          | Pk_mem pins -> Di.pin_epoch pins.(s)
          | Pk_store pins -> Durable.pin_epoch pins.(s))
  in
  let token = Atomic.fetch_and_add t.pin_next 1 in
  Atomic.set t.pinned_maps ((token, m) :: Atomic.get t.pinned_maps);
  { sp_token = token; sp_vector = vector; sp_kind = kind }

let pin_epoch_vector p = Array.copy p.sp_vector

let unpin t p =
  (match (p.sp_kind, t.backing) with
  | Pk_mem pins, _ -> Array.iteri (fun s pn -> Di.unpin t.idxs.(s) pn) pins
  | Pk_store pins, Store { stores; _ } ->
    Array.iteri (fun s pn -> Durable.unpin stores.(s) pn) pins
  | Pk_store _, Mem -> ());
  Atomic.set t.pinned_maps
    (List.filter (fun (tok, _) -> tok <> p.sp_token) (Atomic.get t.pinned_maps))

let backup t p ~dest =
  check_open t;
  match (t.backing, p.sp_kind) with
  | Store { stores; meta }, Pk_store pins ->
    Dsdg_store.Snapshot.ensure_dir dest;
    Array.iteri
      (fun s pn -> ignore (Durable.backup stores.(s) pn ~dest:(shard_dir dest s)))
      pins;
    (* The meta log is copied whole.  The pin froze every shard at one
       update boundary, so events beyond the pin consume local ids past
       the pinned totals and recovery's reconciliation drops exactly
       that tail -- the copy recovers to the pinned prefix. *)
    let raw = In_channel.with_open_bin meta.mt_path In_channel.input_all in
    Out_channel.with_open_bin (meta_file ~dir:dest) (fun oc ->
        Out_channel.output_string oc raw);
    dest
  | _ -> invalid_arg "Sharded_index.backup: store-backed sharded indexes only"

(* --- replication surface --- *)

let backing_stores t =
  match t.backing with Mem -> None | Store { stores; _ } -> Some stores

let meta_log_path t =
  match t.backing with Mem -> None | Store { meta; _ } -> Some meta.mt_path

let meta_records t = match t.backing with Mem -> 0 | Store { meta; _ } -> meta.mt_records

(* Leader-side meta tail: events [from, ...) as wire lines.  The meta
   log is rewritten only by recovery, never while serving, so positional
   reads against a live leader are stable. *)
let meta_lines_from t ~from =
  match t.backing with
  | Mem -> []
  | Store { meta; _ } ->
    let _, events = meta_read meta.mt_path in
    List.filteri (fun i _ -> i >= from) events |> List.map ev_to_line

(* --- follower replay surface --- *)

(* Apply one shipped meta line: append it to the local meta log first
   (the leader's meta-before-shard-WAL group-commit discipline, so a
   killed follower recovers by the same reconciliation) and queue the
   placement until the matching shard WAL record binds the global id. *)
let replica_meta t line =
  check_open t;
  match t.backing with
  | Mem -> invalid_arg "Sharded_index.replica_meta: store-backed indexes only"
  | Store { meta; _ } -> (
    match ev_of_line line with
    | None -> invalid_arg (Printf.sprintf "Sharded_index.replica_meta: bad record %S" line)
    | Some ev ->
      let dst = match ev with Ev_insert (_, s) -> s | Ev_migrate (_, _, d) -> d in
      if dst < 0 || dst >= t.k then
        invalid_arg "Sharded_index.replica_meta: shard out of range";
      meta_append meta [ ev ];
      Queue.add ev t.repl_pending.(dst))

(* Apply one shipped shard WAL record through the replica's own durable
   store (identical serials leader/follower, so the replica is itself
   recoverable and promotable), then fold the effect into the mapping.

   Returns [false] when the record cannot be applied YET -- its
   cross-shard prerequisite has not arrived: an insert whose placement
   event is still in flight on the meta stream, or a migration copy
   whose document is not yet bound at the source shard because the
   original insert rides another shard's stream.  The caller must
   retry the same record (per-shard streams replay strictly in serial
   order) after making progress elsewhere; prerequisites follow the
   leader's temporal order, so the dependency graph is acyclic and a
   record that stays unappliable forever is a divergence, surfacing as
   replication lag that never drains. *)
let replica_op t ~shard op =
  check_open t;
  if shard < 0 || shard >= t.k then invalid_arg "Sharded_index.replica_op: shard out of range";
  match t.backing with
  | Mem -> invalid_arg "Sharded_index.replica_op: store-backed indexes only"
  | Store { stores; _ } -> (
    match op with
    | Trace.Insert text -> (
      match Queue.peek_opt t.repl_pending.(shard) with
      | None -> false (* placement still in flight on the meta stream *)
      | Some ev -> (
        let apply () =
          ignore (Queue.pop t.repl_pending.(shard));
          let l = Durable.insert stores.(shard) text in
          t.ins_total.(shard) <- t.ins_total.(shard) + 1;
          (l, Atomic.get t.mapping)
        in
        match ev with
        | Ev_insert (g, s) ->
          if s <> shard then failwith "Sharded_index.replica_op: placement/shard mismatch";
          let l, m = apply () in
          publish t
            {
              m_g2p = Imap.add g { pl_shard = shard; pl_local = l } m.m_g2p;
              m_l2g = set_l2g m shard (Imap.add l g m.m_l2g.(shard));
              m_next_global = max m.m_next_global (g + 1);
              m_version = m.m_version + 1;
            };
          Obs.incr c_inserts;
          true
        | Ev_migrate (g, src, dst) -> (
          if dst <> shard then failwith "Sharded_index.replica_op: placement/shard mismatch";
          match Imap.find_opt g (Atomic.get t.mapping).m_g2p with
          | Some { pl_shard; pl_local } when pl_shard = src ->
            let l, m = apply () in
            (* the one atomic flip: visibility moves src -> dst; the
               source retirement arrives later as a plain delete *)
            let l2g = Array.copy m.m_l2g in
            l2g.(src) <- Imap.remove pl_local l2g.(src);
            l2g.(dst) <- Imap.add l g l2g.(dst);
            publish t
              {
                m with
                m_g2p = Imap.add g { pl_shard = dst; pl_local = l } m.m_g2p;
                m_l2g = l2g;
                m_version = m.m_version + 1;
              };
            Obs.incr c_migrations;
            true
          | _ -> false (* the source binding rides another shard's stream *))))
    | Trace.Delete l ->
      let m = Atomic.get t.mapping in
      (match Imap.find_opt l m.m_l2g.(shard) with
      | Some _ ->
        ignore (Durable.delete stores.(shard) l);
        publish t
          {
            m with
            m_l2g = set_l2g m shard (Imap.remove l m.m_l2g.(shard));
            m_version = m.m_version + 1;
          };
        Obs.incr c_deletes
      | None ->
        (* migration-source retirement (visibility already flipped) or
           a dead-id replay: shard-local effect only *)
        ignore (Durable.delete stores.(shard) l));
      true
    | _ ->
      invalid_arg
        (Printf.sprintf "Sharded_index.replica_op: %S is not a mutation" (Trace.op_to_string op)))

(* Placements shipped but not yet bound by a shard record, per shard --
   zero everywhere at a replication quiesce point. *)
let replica_pending t = Array.map Queue.length t.repl_pending

(* --- rebalancing --- *)

(* Full text of a live local doc, through the index itself: documents
   have unknown length, so find it by doubling + binary search on
   extract acceptance. *)
let doc_text idx l =
  let ok len = Di.extract idx ~doc:l ~off:0 ~len <> None in
  if not (ok 0) then None
  else begin
    let hi = ref 1 in
    while ok !hi do
      hi := !hi * 2
    done;
    (* largest accepted length is in [hi/2, hi) *)
    let lo = ref (!hi / 2) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if ok mid then lo := mid else hi := mid
    done;
    Di.extract idx ~doc:l ~off:0 ~len:!lo
  end

let rebalance ?(hook = fun _ -> ()) t ~src ~dst ~docs =
  check_open t;
  if src < 0 || src >= t.k || dst < 0 || dst >= t.k then
    invalid_arg "Sharded_index.rebalance: shard out of range";
  if src = dst then invalid_arg "Sharded_index.rebalance: src = dst";
  let step = ref 0 in
  let pt () =
    hook !step;
    incr step
  in
  let moved = ref 0 in
  List.iter
    (fun g ->
      let m = Atomic.get t.mapping in
      match Imap.find_opt g m.m_g2p with
      | Some { pl_shard; pl_local } when pl_shard = src && Imap.mem pl_local m.m_l2g.(src) -> (
        match doc_text t.idxs.(src) pl_local with
        | None -> () (* died under us; nothing to move *)
        | Some text ->
          pt ();
          (* 1. intent record, durable before any shard write *)
          (match t.backing with
          | Store { meta; _ } -> meta_append meta [ Ev_migrate (g, src, dst) ]
          | Mem -> ());
          pt ();
          (* 2. the destination copy, through the WAL *)
          let l' =
            match t.backing with
            | Store { stores; _ } -> Durable.insert stores.(dst) text
            | Mem -> Di.insert t.idxs.(dst) text
          in
          t.ins_total.(dst) <- t.ins_total.(dst) + 1;
          pt ();
          (* 3. one atomic publish flips visibility src -> dst *)
          let m = Atomic.get t.mapping in
          let l2g = Array.copy m.m_l2g in
          l2g.(src) <- Imap.remove pl_local l2g.(src);
          l2g.(dst) <- Imap.add l' g l2g.(dst);
          publish t
            {
              m with
              m_g2p = Imap.add g { pl_shard = dst; pl_local = l' } m.m_g2p;
              m_l2g = l2g;
              m_version = m.m_version + 1;
            };
          (* 4. retire the source copy, through the WAL *)
          ignore
            (match t.backing with
            | Store { stores; _ } -> Durable.delete stores.(src) pl_local
            | Mem -> Di.delete t.idxs.(src) pl_local);
          pt ();
          incr moved;
          Obs.incr c_migrations)
      | _ -> ())
    docs;
  !moved

let rebalance_hottest t =
  if t.k < 2 then 0
  else begin
    let sym s = Di.total_symbols t.idxs.(s) in
    let src = ref 0 and dst = ref 0 in
    for s = 1 to t.k - 1 do
      if sym s > sym !src then src := s;
      if sym s < sym !dst then dst := s
    done;
    if !src = !dst then 0
    else begin
      let m = Atomic.get t.mapping in
      let live = List.rev (Imap.fold (fun _l g acc -> g :: acc) m.m_l2g.(!src) []) in
      let take = (List.length live + 1) / 2 in
      let docs = List.filteri (fun i _ -> i < take) live in
      rebalance t ~src:!src ~dst:!dst ~docs
    end
  end

(* --- lifecycle --- *)

let checkpoint t =
  check_open t;
  match t.backing with Mem -> () | Store { stores; _ } -> Array.iter Durable.checkpoint stores

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backing with
    | Mem -> Array.iter Di.close t.idxs
    | Store { stores; meta } ->
      Array.iter Durable.close stores;
      close_out_noerr meta.mt_oc
  end

let kill t ~torn =
  if not t.closed then begin
    t.closed <- true;
    match t.backing with
    | Mem -> Array.iter Di.close t.idxs
    | Store { stores; meta } ->
      Array.iter (fun st -> Durable.kill st ~torn) stores;
      close_out_noerr meta.mt_oc
  end
