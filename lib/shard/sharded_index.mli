(** Sharded scale-out: one document collection hash-partitioned across
    K {!Dsdg_core.Dynamic_index} shards.

    Every shard is a full per-index machine room -- its own writer
    path, executor jobs, reader pool, and (in store mode) its own
    durable directory with snapshot + WAL.  The sharded layer preserves
    the collection's global contract exactly: the k-th insert is
    assigned global document id [k] (the {!Dsdg_check.Model} contract),
    queries answer in global ids, and the empty pattern is uniformly
    rejected -- so a sharded index is byte-identical to the K=1 index
    and to the naive model under the differential runner.

    {2 Partitioning}

    A global id [g] routes to shard [mix g mod K] where [mix] is a
    fixed 64-bit integer mixer: deterministic across runs, uniform
    across shards, and independent of document content.  Inside shard
    [s] documents get dense local ids in arrival order; the global <->
    local translation lives in an immutable mapping published through
    one [Atomic.set] per update, so readers on any domain translate
    against a consistent snapshot (same discipline as the core
    read plane).

    {2 Scatter-gather}

    Doc sets are disjoint by construction, so queries merge trivially:
    [search] concatenates per-shard hits translated to global ids and
    sorts; [count] sums; [extract]/[mem]/[delete] route point-wise.
    Per-shard queries go through the epoch-published read plane
    ([Dynamic_index.query]) whenever the shards own reader pools.  The
    {!epoch_vector} is the composite of per-shard view epochs plus the
    mapping version -- two equal vectors bracket a consistent
    quiescent snapshot.

    {2 Durability}

    Store mode lays out [dir/shard-0 .. dir/shard-K-1] (one
    {!Dsdg_store.Durable} store each) plus a root [shard.meta] log that
    records every placement decision ([I g s]) and migration
    ([M g src dst]) {e before} the corresponding shard-WAL write.
    Recovery opens the K shard stores in parallel on an executor pool,
    then replays the meta log against the per-shard insert counts:
    placements whose shard write never landed (an unacknowledged crash
    tail) are dropped and the meta log is compacted; a migration whose
    destination insert landed but whose source delete did not is
    finished by issuing the missing delete -- so every acknowledged
    write is re-served exactly once, with no loss and no duplication
    across shards (the mid-split kill sweep in [Shard_check] pins this
    down).

    Observability lands in the registered scope ["shard"]:
    [inserts]/[deletes]/[migrations]/[recovery_fixups] counters, a
    [scatter_queries] counter, and [gather_ns] / [recovery_ns]
    histograms. *)

type t

exception
  Shard_mismatch of {
    dir : string;
    on_disk : int;  (** shard count recorded in [dir]'s meta log *)
    requested : int;  (** shard count the caller asked for *)
  }
(** Raised by {!open_store} when an existing store was created with a
    different shard count than the one requested. *)

(** {1 Construction} *)

val create :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  shards:int ->
  unit ->
  t
(** In-memory sharded index: [shards] independent
    [Dynamic_index.create]d shards ([jobs] executor workers and
    [readers] reader-pool domains {e each}).  [retain_epochs] threads to
    every shard and additionally retains recent mappings so composite
    {!epoch_vector}s stay resolvable for as-of queries (the mapping
    version advances once per update vs roughly [1/K] per shard epoch,
    so the mapping ring holds [retain_epochs * K] entries).  Raises
    [Invalid_argument] when [shards < 1]. *)

val open_store :
  ?config:Dsdg_store.Durable.config ->
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  ?recovery_jobs:int ->
  shards:int ->
  dir:string ->
  unit ->
  t * Dsdg_store.Recovery.info array
(** Open (or create) a durable sharded store under [dir]: K =
    [shards] sub-stores [dir/shard-s], each opened through
    [Durable.open_] with [config], plus the [shard.meta] placement log.
    [recovery_jobs > 0] opens the shard stores in parallel on that many
    executor worker domains (default [0]: sequential, deterministic).
    Returns per-shard recovery reports in shard order.

    Raises {!Shard_mismatch} when [dir] holds a store created with a
    different shard count, and [Dsdg_store.Codec.Corrupt] when the meta
    log is corrupt beyond its final (torn) record. *)

val store_shards : dir:string -> int option
(** The shard count recorded in [dir]'s meta log, if [dir] is a
    sharded store ([None] for fresh directories and plain single-index
    stores). *)

(** {1 The collection surface} *)

val shards : t -> int
(** The shard count K. *)

val insert : t -> string -> int
(** Insert a document; returns its {e global} id (sequential from 0). *)

val delete : t -> int -> bool
(** Delete a global id; [false] if it was never live or already dead. *)

val mem : ?epoch_vector:int array -> t -> int -> bool

val search : ?epoch_vector:int array -> t -> string -> (int * int) list
(** All (global doc id, offset) occurrences, sorted -- identical to the
    K=1 index.  Raises [Invalid_argument] on the empty pattern.

    [epoch_vector] (here and on {!count}/{!extract}/{!mem}) answers
    as-of the named composite epoch instead of the live state: element
    [s] resolves shard [s]'s retained or pinned view
    ([Dynamic_index.view_at]) and the final element resolves the
    retained or pinned mapping version.  Raises [Invalid_argument] when
    the vector has the wrong length or any component is no longer
    resolvable. *)

val count : ?epoch_vector:int array -> t -> string -> int
val extract : ?epoch_vector:int array -> t -> doc:int -> off:int -> len:int -> string option
val doc_count : t -> int
val total_symbols : t -> int
val describe : t -> string

val apply_batch : t -> Dsdg_check.Trace.op list -> Dsdg_store.Durable.batch_result list
(** Group commit across shards (store mode): placements for the whole
    batch are appended to the meta log first (one fsync), then each
    shard's sub-batch goes through [Durable.apply_batch] (one WAL
    append + one fsync per {e shard}), preserving in-shard op order.
    Results come back in the original op order, with insert results
    carrying global ids.  In-memory mode applies the batch directly.
    Only [Insert]/[Delete] ops are mutations; anything else raises
    [Invalid_argument]. *)

val drain : t -> unit
(** Land in-flight background jobs on every shard. *)

(** {1 Consistency probes} *)

val shard_of : t -> int -> int option
(** Current placement shard of a global id ([None] if never placed). *)

val epoch_vector : t -> int array
(** Composite epoch: element [s] is shard [s]'s published view epoch;
    the final element is the mapping version.  Length K+1.  Monotone
    under updates; two equal vectors bracket a quiescent, consistent
    read. *)

val wal_serials : t -> int array
(** Next WAL serial per shard (store mode; all zeros in memory). *)

val durable_serials : t -> int array
(** Stable WAL prefix bound per shard ([Durable.durable_serial]) -- the
    per-shard replication shipping bounds.  All zeros in memory. *)

(** {1 Pinned epoch-vector backups}

    {!pin} freezes all K shard views, the mapping, and (store mode) the
    per-shard WAL serials at one update boundary.  The pinned composite
    epoch stays resolvable by the as-of query surface however far
    retention evicts, and {!backup} serializes the frozen state while
    the writer proceeds. *)

type pin

val pin : t -> pin
(** Pin the current state.  Call between updates on the writer thread. *)

val pin_epoch_vector : pin -> int array
(** The composite epoch the pin froze (shape of {!epoch_vector}); pass
    it to the [?epoch_vector] query surface to read the pinned state. *)

val unpin : t -> pin -> unit
(** Release every per-shard pin and the pinned mapping. *)

val backup : t -> pin -> dest:string -> string
(** [backup t p ~dest] writes the pinned state into [dest] as a fresh,
    immediately openable sharded store: one WAL-less snapshot per
    [dest/shard-s] at the pinned serial, plus a copy of the meta log
    (whose post-pin tail recovery reconciliation provably drops).
    Store mode only; raises [Invalid_argument] in memory.  Returns
    [dest]. *)

(** {1 Replication surface}

    The leader side ships each shard's WAL plus the placement meta log;
    a follower applies shipped records through {!replica_meta} /
    {!replica_op}, preserving the leader's meta-before-shard-WAL
    discipline so the replica directory is itself recoverable and
    promotable. *)

val backing_stores : t -> Dsdg_store.Durable.t array option
(** The K durable stores (store mode), in shard order. *)

val meta_log_path : t -> string option
(** The live [shard.meta] path (store mode). *)

val meta_records : t -> int
(** Events currently in the meta log -- the meta stream's shipping
    bound (events are fsynced at append under any policy but [Never]). *)

val meta_lines_from : t -> from:int -> string list
(** Leader-side meta tail: events [from, ...) as wire lines ([I g s] /
    [M g src dst]).  Positional reads are stable while serving (the
    meta log is only rewritten by recovery). *)

val replica_meta : t -> string -> unit
(** Follower: apply one shipped meta line -- append it to the local
    meta log and queue the placement until the matching shard record
    arrives.  Raises [Invalid_argument] on an unparseable line or in
    memory mode. *)

val replica_op : t -> shard:int -> Dsdg_check.Trace.op -> bool
(** Follower: apply one shipped shard-WAL record through the replica's
    own durable store (identical serials leader/follower) and fold the
    effect into the global mapping.  Inserts bind the oldest queued
    placement for [shard].

    Returns [false] -- record NOT applied, retry it later -- when the
    cross-shard prerequisite has not arrived yet: the insert's
    placement is still in flight on the meta stream, or a migration
    copy's document is not yet bound at the source shard (the original
    insert rides another shard's stream).  Per-shard streams must
    still replay strictly in serial order, so the caller queues the
    record and retries after making progress on the other streams;
    prerequisites follow the leader's temporal order (acyclic), so
    everything shipped eventually applies, and a record that stays
    unappliable forever is a divergence, surfacing as lag that never
    drains.  Raises [Failure] on structural corruption (a placement
    whose destination disagrees with the stream it arrived on). *)

val replica_pending : t -> int array
(** Shipped-but-unbound placements per shard; all zeros at a
    replication quiesce point. *)

(** {1 Rebalancing} *)

val rebalance : ?hook:(int -> unit) -> t -> src:int -> dst:int -> docs:int list -> int
(** Migrate the listed global ids from shard [src] to shard [dst]
    through the WAL: per document, a meta [M] record, a destination
    WAL insert, an atomic mapping publish, then a source WAL delete --
    at every intermediate state exactly one copy is reachable, and a
    crash at any point recovers to exactly-once (see the module
    preamble).  Ids not currently live on [src] are skipped.  Returns
    the number of documents moved.

    [hook] is the kill-point instrument: it is called with an
    incrementing step number at each crash window boundary (before the
    meta record, after it, after the destination insert, after the
    source delete).  A hook that raises aborts the migration
    mid-flight, leaving on-disk state exactly as a crash there would --
    pair with {!kill} and {!open_store} to sweep every kill point.
    Raises [Invalid_argument] if [src = dst] or either is out of
    range. *)

val rebalance_hottest : t -> int
(** Move half the documents of the largest shard (by symbols) to the
    smallest.  Returns the number of documents moved; [0] when K = 1
    or the collection is empty. *)

(** {1 Lifecycle} *)

val checkpoint : t -> unit
(** Checkpoint every shard store (snapshot + WAL compaction); no-op in
    memory. *)

val close : t -> unit
(** Close every shard (and the meta log).  Idempotent. *)

val kill : t -> torn:bool -> unit
(** Crash simulation: abandon every shard store with no final fsync
    ([Durable.kill]); [torn] additionally plants a half-written final
    record in each shard WAL.  No-op in memory beyond closing. *)
