(* Replayable operation traces; format documented in trace.mli. *)

type op =
  | Insert of string
  | Delete of int
  | Search of string
  | Count of string
  | Extract of { doc : int; off : int; len : int }
  | Mem of int
  | Drain

let op_to_string = function
  | Insert text -> Printf.sprintf "+ %S" text
  | Delete id -> Printf.sprintf "- %d" id
  | Search p -> Printf.sprintf "? %S" p
  | Count p -> Printf.sprintf "# %S" p
  | Extract { doc; off; len } -> Printf.sprintf "= %d %d %d" doc off len
  | Mem id -> Printf.sprintf "@ %d" id
  | Drain -> "!!"

let op_of_string line =
  let fail () = invalid_arg (Printf.sprintf "Trace.op_of_string: %S" line) in
  if String.length line < 2 then fail ()
  else
    try
      match line.[0] with
      | '+' -> Scanf.sscanf line "+ %S" (fun s -> Insert s)
      | '-' -> Scanf.sscanf line "- %d" (fun id -> Delete id)
      | '?' -> Scanf.sscanf line "? %S" (fun p -> Search p)
      | '#' -> Scanf.sscanf line "# %S" (fun p -> Count p)
      | '=' -> Scanf.sscanf line "= %d %d %d" (fun doc off len -> Extract { doc; off; len })
      | '@' -> Scanf.sscanf line "@ %d" (fun id -> Mem id)
      | '!' -> if line = "!!" then Drain else fail ()
      | _ -> fail ()
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> fail ()

let render ops =
  let buf = Buffer.create 256 in
  List.iteri (fun i op -> Buffer.add_string buf (Printf.sprintf "%4d  %s\n" (i + 1) (op_to_string op))) ops;
  Buffer.contents buf

let save path ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun op -> output_string oc (op_to_string op ^ "\n")) ops)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ops = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '%' then ops := op_of_string line :: !ops
         done
       with End_of_file -> ());
      List.rev !ops)
