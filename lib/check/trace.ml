(* Replayable operation traces; format documented in trace.mli. *)

type op =
  | Insert of string
  | Delete of int
  | Search of string
  | Count of string
  | Extract of { doc : int; off : int; len : int }
  | Mem of int
  | Drain

type parse_error = { pe_line : int; pe_text : string; pe_reason : string }

exception Parse_error of parse_error

let parse_error_message ?file e =
  Printf.sprintf "%sline %d: %s (offending record: %S)"
    (match file with None -> "" | Some f -> f ^ ":")
    e.pe_line e.pe_reason e.pe_text

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some ("Trace.Parse_error: " ^ parse_error_message e)
    | _ -> None)

let op_to_string = function
  | Insert text -> Printf.sprintf "+ %S" text
  | Delete id -> Printf.sprintf "- %d" id
  | Search p -> Printf.sprintf "? %S" p
  | Count p -> Printf.sprintf "# %S" p
  | Extract { doc; off; len } -> Printf.sprintf "= %d %d %d" doc off len
  | Mem id -> Printf.sprintf "@ %d" id
  | Drain -> "!!"

(* One line -> op, with a field-level reason on failure.  The reasons
   name the field that failed to scan so that located errors (WAL
   recovery, --replay) can say *what* is corrupt, not just where. *)
let parse_op line : (op, string) result =
  let scan fmt k ~expect =
    try Ok (Scanf.sscanf line fmt k)
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Error expect
  in
  if String.length line < 2 then Error "record shorter than an opcode + argument"
  else
    match line.[0] with
    | '+' -> scan "+ %S" (fun s -> Insert s) ~expect:"expected a quoted document after '+'"
    | '-' -> scan "- %d" (fun id -> Delete id) ~expect:"expected a document id after '-'"
    | '?' -> scan "? %S" (fun p -> Search p) ~expect:"expected a quoted pattern after '?'"
    | '#' -> scan "# %S" (fun p -> Count p) ~expect:"expected a quoted pattern after '#'"
    | '=' ->
      scan "= %d %d %d"
        (fun doc off len -> Extract { doc; off; len })
        ~expect:"expected 'doc off len' integers after '='"
    | '@' -> scan "@ %d" (fun id -> Mem id) ~expect:"expected a document id after '@'"
    | '!' -> if line = "!!" then Ok Drain else Error "expected the bare drain record \"!!\""
    | c -> Error (Printf.sprintf "unknown opcode %C" c)

let op_of_string line =
  match parse_op line with
  | Ok op -> op
  | Error reason ->
    invalid_arg (Printf.sprintf "Trace.op_of_string: %S (%s)" line reason)

let render ops =
  let buf = Buffer.create 256 in
  List.iteri (fun i op -> Buffer.add_string buf (Printf.sprintf "%4d  %s\n" (i + 1) (op_to_string op))) ops;
  Buffer.contents buf

(* Replay hints ride in '%'-comment headers: old traces (no header)
   and old readers (comments skipped) both keep working. *)
type hint = {
  h_shards : int option;
  h_readers : int option;
  h_jobs : int option;
  h_seq : string option;
  h_rel : string option;
}

let no_hint =
  { h_shards = None; h_readers = None; h_jobs = None; h_seq = None; h_rel = None }

let hint_line hint =
  let field name = function None -> [] | Some v -> [ Printf.sprintf "%s=%d" name v ] in
  let field_s name = function None -> [] | Some v -> [ Printf.sprintf "%s=%s" name v ] in
  match
    field "shards" hint.h_shards @ field "readers" hint.h_readers @ field "jobs" hint.h_jobs
    @ field_s "seq" hint.h_seq @ field_s "rel" hint.h_rel
  with
  | [] -> None
  | fields -> Some ("% requires " ^ String.concat " " fields)

let parse_hint_line line =
  (* "% requires shards=2 readers=1 ..." -- unknown keys are ignored so
     future hints stay forward compatible *)
  match String.split_on_char ' ' (String.trim line) with
  | "%" :: "requires" :: fields ->
    let get key =
      List.find_map
        (fun f ->
          match String.split_on_char '=' f with
          | [ k; v ] when k = key -> int_of_string_opt v
          | _ -> None)
        fields
    in
    let get_s key =
      List.find_map
        (fun f ->
          match String.split_on_char '=' f with
          | [ k; v ] when k = key && v <> "" -> Some v
          | _ -> None)
        fields
    in
    Some
      { h_shards = get "shards"; h_readers = get "readers"; h_jobs = get "jobs";
        h_seq = get_s "seq"; h_rel = get_s "rel" }
  | _ -> None

let save ?(hint = no_hint) path ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match hint_line hint with Some l -> output_string oc (l ^ "\n") | None -> ());
      List.iter (fun op -> output_string oc (op_to_string op ^ "\n")) ops)

let load_hint path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> no_hint
        | line -> (
          let line = String.trim line in
          if line = "" then scan ()
          else
            match parse_hint_line line with
            | Some h -> h
            | None -> if line.[0] = '%' then scan () else no_hint)
      in
      scan ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ops = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '%' then
             match parse_op line with
             | Ok op -> ops := op :: !ops
             | Error reason ->
               raise (Parse_error { pe_line = !lineno; pe_text = line; pe_reason = reason })
         done
       with End_of_file -> ());
      List.rev !ops)
