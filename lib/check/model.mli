(** Reference models for differential checking.

    Deliberately naive: an association table of live documents with
    O(n m) substring scanning, and a flat edge set for the binary
    relation. Everything the dynamic structures compute cleverly
    (suffix trees, wavelet trees, Dietz-Sleator schedules) is recomputed
    here by brute force, so any disagreement indicts the structure, not
    the model. *)

type t

val create : unit -> t

(** Ids are assigned sequentially from 0, mirroring
    [Dynamic_index.insert] in every variant, so the k-th insert receives
    the same id in the model and in each structure under test. *)
val insert : t -> string -> int

val delete : t -> int -> bool
val mem : t -> int -> bool

(** Live [(id, text)] pairs, sorted by id. *)
val live : t -> (int * string) list

val doc_count : t -> int

(** Live symbols including one separator per document (matching
    [Dynamic_index.total_symbols]). *)
val total_symbols : t -> int

(** [occurrences docs p]: all [(doc, offset)] occurrences of [p] in the
    given documents, sorted -- the shared naive-search primitive, usable
    on any document list (the test suites drive it directly). *)
val occurrences : (int * string) list -> string -> (int * int) list

(** {!search}/{!count} raise [Invalid_argument] on the empty pattern and
    {!extract} with [len = 0] is [Some ""] iff the document is live --
    the same conventions [Dynamic_index] enforces, so the runner can
    compare outcomes (including the rejection) one-to-one. *)
val search : t -> string -> (int * int) list

val count : t -> string -> int
val extract : t -> doc:int -> off:int -> len:int -> string option

(** Naive model of the fully-dynamic binary relation / digraph: a flat
    set of (object, label) -- equivalently (source, target) -- pairs. *)
module Rel : sig
  type r

  val create : unit -> r

  (** [false] if the pair is already present, mirroring
      [Dsdg_binrel.Dyn_binrel.add]. *)
  val add : r -> int -> int -> bool

  val remove : r -> int -> int -> bool
  val related : r -> int -> int -> bool
  val size : r -> int

  (** Sorted label / object lists. *)
  val labels_of_object : r -> int -> int list

  val objects_of_label : r -> int -> int list
  val count_labels_of_object : r -> int -> int
  val count_objects_of_label : r -> int -> int

  (** Every live pair, sorted -- the snapshot the backends'
      [pairs_list] must reproduce byte-for-byte. *)
  val pairs : r -> (int * int) list
end
