(* Adversarial op-stream generator; see opgen.mli.

   Generation simulates id assignment (sequential from 0, like the
   structures) so deletes/extracts/mems can aim at live ids, dead ids or
   ids never assigned, with known proportions. *)

type profile = {
  w_insert : int;
  w_delete : int;
  w_search : int;
  w_count : int;
  w_extract : int;
  w_mem : int;
  w_drain : int;
  doc_len_min : int;
  doc_len_max : int;
  alphabet : int;
  oversized_permille : int;
  empty_permille : int;
  duplicate_permille : int;
  reinsert_permille : int;
  empty_pattern_permille : int;
}

let default =
  {
    w_insert = 40;
    w_delete = 20;
    w_search = 14;
    w_count = 12;
    w_extract = 9;
    w_mem = 5;
    w_drain = 3;
    doc_len_min = 0;
    doc_len_max = 60;
    alphabet = 3;
    oversized_permille = 30;
    empty_permille = 40;
    duplicate_permille = 120;
    reinsert_permille = 250;
    empty_pattern_permille = 20;
  }

let churny =
  {
    default with
    w_insert = 34;
    w_delete = 32;
    doc_len_max = 120;
    oversized_permille = 50;
    reinsert_permille = 400;
  }

type sim = {
  mutable next_id : int;
  mutable live_syms : int;
  live : (int, string) Hashtbl.t;
  mutable live_ids : int list; (* cached keys of [live] *)
  mutable dead_ids : int list;
  mutable pool : string list; (* every text ever inserted *)
  mutable pool_n : int;
}

let pick_live st sim = List.nth sim.live_ids (Random.State.int st (List.length sim.live_ids))

let rand_text st p len =
  String.init len (fun _ -> Char.chr (97 + Random.State.int st (max 1 p.alphabet)))

let gen_insert_text st p sim =
  let roll = Random.State.int st 1000 in
  if roll < p.empty_permille then ""
  else if roll < p.empty_permille + p.duplicate_permille && sim.pool_n > 0 then
    List.nth sim.pool (Random.State.int st sim.pool_n)
  else if roll < p.empty_permille + p.duplicate_permille + p.oversized_permille then
    (* oversized: comparable to the whole live collection, so it crosses
       the nf/tau own-top threshold of Transformation 2 *)
    rand_text st p (min 2048 (max 256 sim.live_syms) + Random.State.int st 256)
  else rand_text st p (p.doc_len_min + Random.State.int st (max 1 (p.doc_len_max - p.doc_len_min + 1)))

(* A pattern is usually a substring of some inserted text (live or
   already deleted), occasionally random, over letters never inserted,
   or empty (which every structure must uniformly reject). *)
let gen_pattern st p sim =
  if Random.State.int st 1000 < p.empty_pattern_permille then ""
  else
  let roll = Random.State.int st 100 in
  if roll < 60 && sim.pool_n > 0 then begin
    let text = List.nth sim.pool (Random.State.int st sim.pool_n) in
    let n = String.length text in
    if n = 0 then rand_text st p (1 + Random.State.int st 3)
    else begin
      let len = min n (1 + Random.State.int st 6) in
      let off = Random.State.int st (n - len + 1) in
      String.sub text off len
    end
  end
  else if roll < 85 then rand_text st p (1 + Random.State.int st 4)
  else String.init (1 + Random.State.int st 3) (fun _ -> Char.chr (122 - Random.State.int st 2))

(* Target id mix for delete/mem/extract: mostly live, sometimes dead,
   sometimes never assigned. *)
let gen_target_id st sim =
  let roll = Random.State.int st 100 in
  if roll < 72 && sim.live_ids <> [] then pick_live st sim
  else if roll < 88 && sim.dead_ids <> [] then
    List.nth sim.dead_ids (Random.State.int st (List.length sim.dead_ids))
  else sim.next_id + 7 + Random.State.int st 1000

let apply_insert sim text =
  let id = sim.next_id in
  sim.next_id <- id + 1;
  Hashtbl.replace sim.live id text;
  sim.live_ids <- id :: sim.live_ids;
  sim.live_syms <- sim.live_syms + String.length text + 1;
  sim.pool <- text :: sim.pool;
  sim.pool_n <- sim.pool_n + 1;
  id

let apply_delete sim id =
  match Hashtbl.find_opt sim.live id with
  | None -> None
  | Some text ->
    Hashtbl.remove sim.live id;
    sim.live_ids <- List.filter (fun i -> i <> id) sim.live_ids;
    sim.dead_ids <- id :: sim.dead_ids;
    sim.live_syms <- sim.live_syms - (String.length text + 1);
    Some text

let generate ?(profile = default) ~seed ~ops () =
  let p = profile in
  let st = Random.State.make [| seed; 0x5eed |] in
  let sim =
    { next_id = 0; live_syms = 0; live = Hashtbl.create 64; live_ids = []; dead_ids = []; pool = []; pool_n = 0 }
  in
  let total_w =
    p.w_insert + p.w_delete + p.w_search + p.w_count + p.w_extract + p.w_mem + p.w_drain
  in
  let acc = ref [] in
  let emitted = ref 0 in
  let emit op =
    acc := op :: !acc;
    incr emitted
  in
  while !emitted < ops do
    let roll = Random.State.int st total_w in
    if roll < p.w_insert || sim.live_ids = [] then begin
      let text = gen_insert_text st p sim in
      ignore (apply_insert sim text);
      emit (Trace.Insert text)
    end
    else if roll < p.w_insert + p.w_delete then begin
      let id = gen_target_id st sim in
      let deleted = apply_delete sim id in
      emit (Trace.Delete id);
      match deleted with
      | Some text when !emitted < ops && Random.State.int st 1000 < p.reinsert_permille ->
        (* delete-reinsert churn: same text, fresh id *)
        ignore (apply_insert sim text);
        emit (Trace.Insert text)
      | _ -> ()
    end
    else if roll < p.w_insert + p.w_delete + p.w_search then emit (Trace.Search (gen_pattern st p sim))
    else if roll < p.w_insert + p.w_delete + p.w_search + p.w_count then
      emit (Trace.Count (gen_pattern st p sim))
    else if roll < p.w_insert + p.w_delete + p.w_search + p.w_count + p.w_extract then begin
      let doc = gen_target_id st sim in
      let off, len =
        match Hashtbl.find_opt sim.live doc with
        | Some text when Random.State.int st 100 < 80 ->
          (* usually a valid range of a live document *)
          let n = String.length text in
          if n = 0 then (0, 0)
          else begin
            let len = Random.State.int st (n + 1) in
            (Random.State.int st (n - len + 1), len)
          end
        | _ -> (Random.State.int st 64, Random.State.int st 64)
      in
      emit (Trace.Extract { doc; off; len })
    end
    else if roll < p.w_insert + p.w_delete + p.w_search + p.w_count + p.w_extract + p.w_mem
    then emit (Trace.Mem (gen_target_id st sim))
    else emit Trace.Drain
  done;
  List.rev !acc
