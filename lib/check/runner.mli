(** Differential runner: fan one op stream across variant x backend
    pairs of {!Dsdg_core.Dynamic_index}, cross-check every answer
    against the naive {!Model} (and hence against each other), evaluate
    the {!Oracle} invariants after every operation, and delta-debug any
    failing stream down to a minimal replayable trace. *)

type target = {
  tg_name : string;  (** e.g. ["worst-case/fm"] -- CLI-compatible *)
  tg_variant : Dsdg_core.Dynamic_index.variant;
  tg_backend : Dsdg_core.Dynamic_index.backend;
}

(** All 9 variant x backend pairs. *)
val all_targets : target list

(** Subset selection by CLI-style names; ["all"] (or omission) keeps
    every choice. Raises [Invalid_argument] on unknown names. *)
val select_targets : ?variant:string -> ?backend:string -> unit -> target list

type config = {
  sample : int;
  tau : int;
  fault : Dsdg_core.Transform2.fault option;  (** planted defect, for self-tests *)
  check_invariants : bool;
  jobs : int;
      (** executor worker domains per index under test (default [0] =
          deterministic Sync mode). Pooled indexes are closed -- domains
          joined -- before [run_trace] returns, pass or fail. *)
  readers : int;
      (** reader-pool domains per index under test (default [0]). With
          [readers >= 1] every query op runs on a reader domain against
          the latest published view, so the read plane itself is
          differentially checked -- a stale or incomplete epoch
          publication (e.g. the planted [`Stale_epoch] fault) becomes a
          model disagreement. *)
  seq : Dsdg_delbits.Sums.kind;
      (** dynamic-sequence substrate every index under test is created
          with (default [Avl]); recorded in saved-trace hints as
          [seq=<name>]. *)
}

val default_config : config

type failure = {
  f_step : int;  (** 1-based index of the failing op *)
  f_target : string;  (** [tg_name] of the disagreeing pair *)
  f_op : Trace.op;
  f_message : string;
  f_events : string list;  (** the target's recent structural events *)
}

(** Run a trace against every target; [Error] carries the first
    disagreement, invariant violation or exception. *)
val run_trace : ?config:config -> targets:target list -> Trace.op list -> (unit, failure) result

(** Delta-debugging shrink: chunk removal then per-op simplification,
    preserving "still fails" ([max_runs] bounds re-executions). The
    input must fail under [run_trace] with the same arguments. *)
val shrink : ?config:config -> ?max_runs:int -> targets:target list -> Trace.op list -> Trace.op list

(** The generic delta-debugger behind {!shrink}: same chunk-removal +
    payload-simplification passes against an arbitrary [fails]
    predicate ([true] = candidate still reproduces), so other
    differential harnesses (the shard matrix in
    [Dsdg_shard.Shard_check]) shrink identically. [max_runs] bounds
    [fails] invocations; a candidate offered after the budget is spent
    counts as passing. *)
val shrink_ops : fails:(Trace.op list -> bool) -> ?max_runs:int -> Trace.op list -> Trace.op list

type stream_outcome =
  | Pass
  | Fail of { failure : failure; trace : Trace.op list; shrunk : Trace.op list }

(** Generate (from [seed]), run, and on failure shrink against the
    disagreeing target only (fast) before re-running for the final
    report. *)
val run_stream :
  ?config:config ->
  ?profile:Opgen.profile ->
  ?shrink_budget:int ->
  targets:target list ->
  seed:int ->
  ops:int ->
  unit ->
  stream_outcome

(** Human-readable failure report: the minimal trace, the failing op,
    the disagreement, and the structure's recent event ring. *)
val report : ?seed:int -> failure:failure -> shrunk:Trace.op list -> unit -> string
