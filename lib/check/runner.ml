(* Differential runner + delta-debugging shrinker; see runner.mli. *)

open Dsdg_core

type target = {
  tg_name : string;
  tg_variant : Dynamic_index.variant;
  tg_backend : Dynamic_index.backend;
}

let variants = [ ("amortized", Dynamic_index.Amortized); ("loglog", Dynamic_index.Amortized_loglog); ("worst-case", Dynamic_index.Worst_case) ]
let backends = [ ("fm", Dynamic_index.Fm); ("sa", Dynamic_index.Plain_sa); ("csa", Dynamic_index.Csa) ]

let all_targets =
  List.concat_map
    (fun (vn, v) ->
      List.map (fun (bn, b) -> { tg_name = vn ^ "/" ^ bn; tg_variant = v; tg_backend = b }) backends)
    variants

let select_targets ?(variant = "all") ?(backend = "all") () =
  let pick what name choices =
    if name = "all" then choices
    else
      match List.filter (fun (n, _) -> n = name) choices with
      | [] -> invalid_arg (Printf.sprintf "unknown %s: %s" what name)
      | l -> l
  in
  List.concat_map
    (fun (vn, v) ->
      List.map
        (fun (bn, b) -> { tg_name = vn ^ "/" ^ bn; tg_variant = v; tg_backend = b })
        (pick "backend" backend backends))
    (pick "variant" variant variants)

type config = {
  sample : int;
  tau : int;
  fault : Transform2.fault option;
  check_invariants : bool;
  jobs : int; (* executor workers per index under test; 0 = Sync *)
  readers : int; (* reader-pool domains; > 0 routes queries through views *)
  seq : Dsdg_delbits.Sums.kind; (* dynamic-sequence substrate for every index *)
}

let default_config =
  {
    sample = 2;
    tau = 4;
    fault = None;
    check_invariants = true;
    jobs = 0;
    readers = 0;
    seq = Dsdg_delbits.Sums.Avl;
  }

type failure = {
  f_step : int;
  f_target : string;
  f_op : Trace.op;
  f_message : string;
  f_events : string list;
}

exception Failed of failure

(* Bounded pretty-printers for disagreement messages. *)
let pp_hits hits =
  let n = List.length hits in
  let shown = List.filteri (fun i _ -> i < 8) hits in
  let body = String.concat "; " (List.map (fun (d, o) -> Printf.sprintf "(%d,%d)" d o) shown) in
  if n > 8 then Printf.sprintf "[%s; ... %d total]" body n else Printf.sprintf "[%s]" body

let pp_str_opt = function
  | None -> "None"
  | Some s ->
    if String.length s > 24 then Printf.sprintf "Some %S..." (String.sub s 0 24) else Printf.sprintf "Some %S" s

(* Queries and the model must agree on outcomes including the uniform
   empty-pattern rejection, so both sides run through [Ok]/[`Rejected]
   capture: a structure that *answers* the empty pattern (or rejects a
   legitimate one) disagrees with the model and fails the trace. *)
let capture f = try Ok (f ()) with Invalid_argument _ -> Error `Rejected

let pp_outcome pp = function
  | Ok v -> pp v
  | Error `Rejected -> "Invalid_argument"

let run_trace ?(config = default_config) ~targets ops =
  let model = Model.create () in
  let insts =
    List.map
      (fun tg ->
        ( tg,
          Dynamic_index.create ~variant:tg.tg_variant ~backend:tg.tg_backend ~sample:config.sample
            ~tau:config.tau ?fault:config.fault ~jobs:config.jobs ~readers:config.readers
            ~seq_backend:config.seq (),
          Oracle.create () ))
      targets
  in
  (* With a reader pool, queries run on reader domains against the
     latest published view: the read plane itself is under test, so a
     stale or incomplete epoch publication (e.g. the planted
     [`Stale_epoch] fault) becomes a model disagreement even though the
     write plane stays correct. *)
  let q_search idx p =
    if config.readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_search v p)
    else Dynamic_index.search idx p
  in
  let q_count idx p =
    if config.readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v p)
    else Dynamic_index.count idx p
  in
  let q_extract idx ~doc ~off ~len =
    if config.readers > 0 then
      Dynamic_index.query idx (fun v -> Dynamic_index.view_extract v ~doc ~off ~len)
    else Dynamic_index.extract idx ~doc ~off ~len
  in
  let q_mem idx id =
    if config.readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_mem v id)
    else Dynamic_index.mem idx id
  in
  (* pooled indexes own worker domains; leak none, whatever the verdict *)
  Fun.protect ~finally:(fun () -> List.iter (fun (_, idx, _) -> Dynamic_index.close idx) insts)
  @@ fun () ->
  let step = ref 0 in
  try
    List.iter
      (fun op ->
        incr step;
        let fail_on idx name fmt =
          Printf.ksprintf
            (fun m ->
              raise
                (Failed
                   { f_step = !step; f_target = name; f_op = op; f_message = m;
                     f_events = Dynamic_index.events idx }))
            fmt
        in
        (* the model moves first; each structure must agree with it (and
           therefore with every other structure) *)
        (match op with
        | Trace.Insert text ->
          let mid = Model.insert model text in
          List.iter
            (fun (tg, idx, _) ->
              let id =
                try Dynamic_index.insert idx text
                with exn -> fail_on idx tg.tg_name "insert raised %s" (Printexc.to_string exn)
              in
              if id <> mid then fail_on idx tg.tg_name "insert returned id %d, model %d" id mid)
            insts
        | Trace.Delete id ->
          let expected = Model.delete model id in
          List.iter
            (fun (tg, idx, _) ->
              let got =
                try Dynamic_index.delete idx id
                with exn -> fail_on idx tg.tg_name "delete %d raised %s" id (Printexc.to_string exn)
              in
              if got <> expected then
                fail_on idx tg.tg_name "delete %d returned %b, model %b" id got expected)
            insts
        | Trace.Search p ->
          let expected = capture (fun () -> Model.search model p) in
          List.iter
            (fun (tg, idx, _) ->
              let got =
                try Ok (q_search idx p) with
                | Invalid_argument _ -> Error `Rejected
                | exn -> fail_on idx tg.tg_name "search %S raised %s" p (Printexc.to_string exn)
              in
              if got <> expected then
                fail_on idx tg.tg_name "search %S -> %s, model %s" p (pp_outcome pp_hits got)
                  (pp_outcome pp_hits expected))
            insts
        | Trace.Count p ->
          let expected = capture (fun () -> Model.count model p) in
          List.iter
            (fun (tg, idx, _) ->
              let got =
                try Ok (q_count idx p) with
                | Invalid_argument _ -> Error `Rejected
                | exn -> fail_on idx tg.tg_name "count %S raised %s" p (Printexc.to_string exn)
              in
              if got <> expected then
                fail_on idx tg.tg_name "count %S -> %s, model %s" p
                  (pp_outcome string_of_int got) (pp_outcome string_of_int expected))
            insts
        | Trace.Extract { doc; off; len } ->
          let expected = Model.extract model ~doc ~off ~len in
          List.iter
            (fun (tg, idx, _) ->
              let got =
                try q_extract idx ~doc ~off ~len
                with exn ->
                  fail_on idx tg.tg_name "extract %d %d %d raised %s" doc off len
                    (Printexc.to_string exn)
              in
              if got <> expected then
                fail_on idx tg.tg_name "extract %d %d %d -> %s, model %s" doc off len (pp_str_opt got)
                  (pp_str_opt expected))
            insts
        | Trace.Mem id ->
          let expected = Model.mem model id in
          List.iter
            (fun (tg, idx, _) ->
              let got =
                try q_mem idx id
                with exn -> fail_on idx tg.tg_name "mem %d raised %s" id (Printexc.to_string exn)
              in
              if got <> expected then fail_on idx tg.tg_name "mem %d -> %b, model %b" id got expected)
            insts
        | Trace.Drain ->
          (* a random forced-completion point; the model has nothing to
             do, but every post-op equivalence below must still hold *)
          List.iter
            (fun (tg, idx, _) ->
              try Dynamic_index.drain idx
              with exn -> fail_on idx tg.tg_name "drain raised %s" (Printexc.to_string exn))
            insts);
        (* after every op: size accounting vs the model, then the paper
           invariants *)
        List.iter
          (fun (tg, idx, orc) ->
            let dc = Dynamic_index.doc_count idx and mdc = Model.doc_count model in
            if dc <> mdc then fail_on idx tg.tg_name "doc_count %d, model %d" dc mdc;
            let ts = Dynamic_index.total_symbols idx and mts = Model.total_symbols model in
            if ts <> mts then fail_on idx tg.tg_name "total_symbols %d, model %d" ts mts;
            if config.readers > 0 then begin
              (* the published view must agree with the write plane the
                 moment the writer is quiescent *)
              let vdc, vts =
                Dynamic_index.query idx (fun v ->
                    (Dynamic_index.view_doc_count v, Dynamic_index.view_total_symbols v))
              in
              if vdc <> mdc then fail_on idx tg.tg_name "view doc_count %d, model %d" vdc mdc;
              if vts <> mts then
                fail_on idx tg.tg_name "view total_symbols %d, model %d" vts mts
            end;
            if config.check_invariants then
              match Oracle.check orc idx with
              | [] -> ()
              | vs -> fail_on idx tg.tg_name "invariant violation: %s" (String.concat " | " vs))
          insts)
      ops;
    Ok ()
  with Failed f -> Error f

(* --- shrinking: ddmin-style chunk removal, then op simplification --- *)

(* The generic delta-debugger: chunk removal then per-op payload
   simplification against an arbitrary "still fails" predicate, so any
   harness that can re-run a trace (the variant matrix here, the shard
   matrix in [Dsdg_shard.Shard_check], ...) shrinks the same way. *)
let shrink_ops ~fails ?(max_runs = 500) ops =
  let runs = ref 0 in
  let fails candidate =
    !runs < max_runs
    && begin
         incr runs;
         fails candidate
       end
  in
  let current = ref (Array.of_list ops) in
  (* chunk-removal pass at a given granularity *)
  let removal_pass size =
    let i = ref 0 in
    while !i < Array.length !current do
      let arr = !current in
      let n = Array.length arr in
      let hi = min n (!i + size) in
      let candidate = Array.append (Array.sub arr 0 !i) (Array.sub arr hi (n - hi)) in
      if Array.length candidate < n && fails (Array.to_list candidate) then current := candidate
      else i := !i + size
    done
  in
  let size = ref (max 1 (Array.length !current / 2)) in
  while !size >= 1 do
    removal_pass !size;
    size := (if !size = 1 then 0 else !size / 2)
  done;
  (* per-op simplification: halve payloads while the trace still fails *)
  let simplify = function
    | Trace.Insert s when String.length s > 0 -> Some (Trace.Insert (String.sub s 0 (String.length s / 2)))
    | Trace.Search p when String.length p > 1 -> Some (Trace.Search (String.sub p 0 (String.length p / 2)))
    | Trace.Count p when String.length p > 1 -> Some (Trace.Count (String.sub p 0 (String.length p / 2)))
    | Trace.Extract { doc; off; len } when len > 0 -> Some (Trace.Extract { doc; off; len = len / 2 })
    | _ -> None
  in
  let improved = ref true in
  while !improved && !runs < max_runs do
    improved := false;
    Array.iteri
      (fun i op ->
        match simplify op with
        | None -> ()
        | Some op' ->
          let arr = Array.copy !current in
          arr.(i) <- op';
          if fails (Array.to_list arr) then begin
            current := arr;
            improved := true
          end)
      (Array.copy !current)
  done;
  Array.to_list !current

let shrink ?(config = default_config) ?(max_runs = 500) ~targets ops =
  shrink_ops ~max_runs ops ~fails:(fun candidate ->
      match run_trace ~config ~targets candidate with Error _ -> true | Ok () -> false)

type stream_outcome =
  | Pass
  | Fail of { failure : failure; trace : Trace.op list; shrunk : Trace.op list }

let run_stream ?(config = default_config) ?profile ?(shrink_budget = 500) ~targets ~seed ~ops () =
  let trace = Opgen.generate ?profile ~seed ~ops () in
  match run_trace ~config ~targets trace with
  | Ok () -> Pass
  | Error f ->
    (* everything after the failing op is noise; shrink the prefix, and
       only against the structure that disagreed *)
    let prefix = List.filteri (fun i _ -> i < f.f_step) trace in
    let shrink_targets =
      match List.find_opt (fun tg -> tg.tg_name = f.f_target) targets with
      | Some tg -> [ tg ]
      | None -> targets
    in
    let shrunk = shrink ~config ~max_runs:shrink_budget ~targets:shrink_targets prefix in
    let failure =
      match run_trace ~config ~targets:shrink_targets shrunk with Error f' -> f' | Ok () -> f
    in
    Fail { failure; trace; shrunk }

let report ?seed ~failure ~shrunk () =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match seed with
  | Some s -> add "differential check FAILED (seed %d)\n" s
  | None -> add "differential check FAILED\n");
  add "target : %s\n" failure.f_target;
  add "at op  : #%d  %s\n" failure.f_step (Trace.op_to_string failure.f_op);
  add "because: %s\n" failure.f_message;
  add "minimal trace (%d ops):\n%s" (List.length shrunk) (Trace.render shrunk);
  (match failure.f_events with
  | [] -> ()
  | events ->
    add "recent structural events (newest first):\n";
    List.iteri (fun i e -> if i < 12 then add "  %s\n" e) events);
  Buffer.contents buf
