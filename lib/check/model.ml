(* Naive reference models: the ground truth the dynamic structures are
   differentially checked against. See model.mli. *)

type t = {
  mutable next_id : int;
  docs : (int, string) Hashtbl.t;
}

let create () = { next_id = 0; docs = Hashtbl.create 64 }

let insert m text =
  let id = m.next_id in
  m.next_id <- id + 1;
  Hashtbl.replace m.docs id text;
  id

let delete m id =
  if Hashtbl.mem m.docs id then begin
    Hashtbl.remove m.docs id;
    true
  end
  else false

let mem m id = Hashtbl.mem m.docs id
let live m = List.sort compare (Hashtbl.fold (fun d s acc -> (d, s) :: acc) m.docs [])
let doc_count m = Hashtbl.length m.docs
let total_symbols m = Hashtbl.fold (fun _ s acc -> acc + String.length s + 1) m.docs 0

let occurrences (docs : (int * string) list) (p : string) : (int * int) list =
  let res = ref [] in
  let pl = String.length p in
  List.iter
    (fun (d, str) ->
      for off = 0 to String.length str - pl do
        if String.sub str off pl = p then res := (d, off) :: !res
      done)
    docs;
  List.sort compare !res

(* The Dynamic_index conventions, mirrored: the empty pattern is
   rejected, and a zero-length extract depends only on liveness. *)
let search m p =
  if p = "" then invalid_arg "Model: empty pattern";
  occurrences (live m) p

let count m p = List.length (search m p)

let extract m ~doc ~off ~len =
  match Hashtbl.find_opt m.docs doc with
  | None -> None
  | Some s ->
    if len = 0 then Some ""
    else if off < 0 || len < 0 || off + len > String.length s then None
    else Some (String.sub s off len)

module Rel = struct
  type r = (int * int, unit) Hashtbl.t

  let create () : r = Hashtbl.create 64

  let add r o a =
    if Hashtbl.mem r (o, a) then false
    else begin
      Hashtbl.replace r (o, a) ();
      true
    end

  let remove r o a =
    if Hashtbl.mem r (o, a) then begin
      Hashtbl.remove r (o, a);
      true
    end
    else false

  let related r o a = Hashtbl.mem r (o, a)
  let size r = Hashtbl.length r

  let labels_of_object r o =
    List.sort compare (Hashtbl.fold (fun (o', a) () acc -> if o' = o then a :: acc else acc) r [])

  let objects_of_label r a =
    List.sort compare (Hashtbl.fold (fun (o, a') () acc -> if a' = a then o :: acc else acc) r [])

  let count_labels_of_object r o = List.length (labels_of_object r o)
  let count_objects_of_label r a = List.length (objects_of_label r a)
  let pairs r = List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) r [])
end
