(** Weighted, adversarial op-sequence generator with deterministic
    seeds.

    Beyond uniform churn it deliberately produces the inputs the
    dynamization schedules are touchiest about: empty documents,
    duplicate texts, delete-then-reinsert of the same text, oversized
    documents (>= nf/tau, to force the own-top-collection path of
    Transformation 2), patterns sampled from documents inserted at
    different times (so query ranges straddle buffer-flush boundaries),
    and deletes/extracts/mems aimed at dead or never-assigned ids. *)

type profile = {
  w_insert : int;
  w_delete : int;
  w_search : int;
  w_count : int;
  w_extract : int;
  w_mem : int;
  w_drain : int;  (** op weights, relative; drain = random forced-completion point *)
  doc_len_min : int;
  doc_len_max : int;  (** regular document length range *)
  alphabet : int;  (** letters used, from ['a'] *)
  oversized_permille : int;  (** chance an insert is oversized *)
  empty_permille : int;  (** chance an insert is the empty document *)
  duplicate_permille : int;  (** chance an insert reuses an earlier text *)
  reinsert_permille : int;  (** chance a delete is followed by reinsertion *)
  empty_pattern_permille : int;  (** chance a search/count pattern is [""] *)
}

val default : profile

(** Heavier on deletions and reinsertion churn: drives purge and
    top-cleaning schedules. *)
val churny : profile

(** [generate ~seed ~ops ()] is deterministic in [(profile, seed, ops)]. *)
val generate : ?profile:profile -> seed:int -> ops:int -> unit -> Trace.op list
