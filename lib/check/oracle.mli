(** Paper-invariant oracles, evaluated after every operation.

    Each oracle checks a structural guarantee the paper's analysis
    rests on, via {!Dsdg_core.Dynamic_index.probe}:

    - {b buffer bound} (Section 2): C0 (and a locked L0) holds at most
      the schedule's level-0 capacity, 2n/log^2 n symbols, and its lazy
      deletions never let dead symbols outnumber live ones;
    - {b capacity schedule} (Transformation 1 / 3): every C_j and L_j
      holds at most max_j live symbols, and max_j is monotone in j
      (geometric / doubling growth);
    - {b cleaning schedule} (Lemma 1, Dietz-Sleator cleaning): one top
      rebuild is dispatched per delta = nf/(2 tau lg tau) deleted
      symbols, so the deleted-symbols counter never reaches twice the
      period (a per-top dead bound would be wrong: a top legitimately
      carries all its dead while its rebuild job is in flight);
    - {b job accounting} (Transformation 2 scheduling): pending jobs =
      started - completed, forced <= completed <= started, and all
      three counters are monotone over time;
    - {b size accounting}: the census's live symbols sum exactly to
      [total_symbols], and a non-empty collection reports positive
      measured space.

    An oracle instance is stateful (it remembers the last job counters
    to check monotonicity), so create one per structure under test. *)

type t

val create : unit -> t

(** All violations after the latest operation; empty means healthy. *)
val check : t -> Dsdg_core.Dynamic_index.t -> string list
