(* Invariant oracles over Dynamic_index.probe; the invariant list and
   its paper references live in oracle.mli and DESIGN.md section 6. *)

open Dsdg_core

type t = { mutable last_jobs : int * int * int (* started, completed, forced *) }

let create () = { last_jobs = (0, 0, 0) }

(* Census entry classification, following the Figure 2 naming the
   transformations emit: C0/L0 uncompressed buffers, C_j/L_j semi-static
   sub-collections, Temp_j single-document staging, T_k tops. *)
type entry =
  | Buffer (* C0 or L0 *)
  | Sub of int
  | Locked of int
  | Temp
  | Top

let classify name =
  let level s = int_of_string (String.sub s 1 (String.length s - 1)) in
  if name = "C0" || name = "L0" then Buffer
  else if String.length name >= 4 && String.sub name 0 4 = "Temp" then Temp
  else if name.[0] = 'C' then Sub (level name)
  else if name.[0] = 'L' then Locked (level name)
  else Top

let check o idx =
  let p = Dynamic_index.probe idx in
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  (* capacity schedule is monotone in the level *)
  for j = 0 to 8 do
    if p.pr_capacity j > p.pr_capacity (j + 1) then
      fail "capacity not monotone: max_%d = %d > max_%d = %d" j (p.pr_capacity j) (j + 1)
        (p.pr_capacity (j + 1))
  done;
  let amortized = p.pr_jobs = None in
  List.iter
    (fun (name, live, dead) ->
      match classify name with
      | Buffer ->
        (* 2n/log^2 n buffer bound, and the GST's dead<=live rebuild rule *)
        if live > p.pr_capacity 0 then
          fail "%s overflows the 2n/log^2 n buffer bound: %d live > capacity %d" name live
            (p.pr_capacity 0);
        if dead > max live 64 then fail "%s lazy deletions unpurged: %d dead > %d live" name dead live
      | Sub j | Locked j ->
        if live > p.pr_capacity j then
          fail "%s overflows its schedule capacity: %d live > max_%d = %d" name live j
            (p.pr_capacity j);
        (* Transformation 1 purges eagerly: dead * tau <= live + dead at
           rest. Transformation 2's purge is job-gated, so only the
           amortized variants get the strict check. *)
        if amortized && dead * p.pr_tau > live + dead + p.pr_tau then
          fail "%s missed its purge threshold: %d dead * tau=%d > %d total" name dead p.pr_tau
            (live + dead)
      | Temp -> ()
      | Top ->
        (* dead counts in individual tops are governed by the cleaning
           schedule checked below (a clean per delta deletions), not by
           a per-top fraction: a top legitimately carries all its dead
           while its rebuild is in flight *)
        ())
    p.pr_census;
  (* Dietz-Sleator cleaning schedule (Lemma 1): one top rebuild is
     dispatched per delta = nf/(2 tau lg tau) deleted symbols, and a
     rebuild still in flight after a second full period is forced -- so
     the deleted-symbols counter may never reach twice the period. *)
  (match p.pr_clean with
  | None -> ()
  | Some (counter, period) ->
    if counter > 2 * period then
      fail
        "Dietz-Sleator cleaning fell behind: %d symbols deleted since the last top-cleaning dispatch > 2 * delta = %d"
        counter (2 * period));
  (* census live total must equal the collection's own account *)
  let census_live = List.fold_left (fun a (_, l, _) -> a + l) 0 p.pr_census in
  let total = Dynamic_index.total_symbols idx in
  if census_live <> total then
    fail "census live sum %d <> total_symbols %d" census_live total;
  if total > 0 && Dynamic_index.space_bits idx <= 0 then
    fail "non-empty collection reports %d space bits" (Dynamic_index.space_bits idx);
  (* Transformation 2 job accounting: conservation and monotonicity *)
  (match p.pr_jobs with
  | None -> ()
  | Some (started, completed, forced) ->
    let ls, lc, lf = o.last_jobs in
    if started < ls || completed < lc || forced < lf then
      fail "job counters regressed: started %d->%d completed %d->%d forced %d->%d" ls started lc
        completed lf forced;
    if not (forced <= completed && completed <= started) then
      fail "job accounting broken: forced %d <= completed %d <= started %d expected" forced
        completed started;
    if p.pr_pending_jobs <> started - completed then
      fail "pending jobs %d <> started %d - completed %d" p.pr_pending_jobs started completed;
    o.last_jobs <- (started, completed, forced));
  List.rev !bad
