(** Differential checking for the relation backends: one stream of
    relation operations fanned over the {!Dsdg_binrel.Rel_backend}
    matrix and cross-checked answer-by-answer against the naive
    {!Model.Rel}, with failing streams delta-debugged to minimal
    replayable traces through the same ddmin core
    ({!Runner.shrink_ops}) the document and shard harnesses use. *)

(** One relation operation. The textual format is line-based, in the
    {!Trace} mold: ["> o a"] (add), ["< o a"] (remove), ["~ o a"]
    (related?), ["$ o"] (labels of object, list + count), ["^ a"]
    (objects of label, list + count), ["*"] (full pair-set snapshot
    comparison); blank lines and [%]-comments ignored. *)
type rop =
  | Radd of int * int
  | Rremove of int * int
  | Rrelated of int * int
  | Rsucc of int
  | Rpred of int
  | Rpairs

(** One line, no newline. *)
val rop_to_string : rop -> string

(** One-line parse with a field-level reason, mirroring
    {!Trace.parse_op}. *)
val parse_rop : string -> (rop, string) result

(** Raises [Invalid_argument] on garbage. *)
val rop_of_string : string -> rop

(** Numbered, one op per line — the shape printed with failures. *)
val render : rop list -> string

(** Which backends a stream fans over. *)
type spec = One of Dsdg_binrel.Rel_backend.kind | Both

(** ["str"], ["k2"] or ["both"] — the CLI flag spelling, and the value
    of the [rel=] trace-hint key. *)
val spec_to_string : spec -> string

(** Inverse of {!spec_to_string} (accepts ["all"] for [Both]); [None]
    on unknown names. *)
val spec_of_string : string -> spec option

(** The backend kinds a spec denotes. *)
val kinds_of_spec : spec -> Dsdg_binrel.Rel_backend.kind list

(** A deliberate harness defect for catch/shrink/replay self-tests
    (the relation-side analogue of [Transform2.fault]): [Lost_remove]
    silently drops removes of pairs with [(o + a) mod 3 = 0] from the
    structures under test while the model still applies them. The
    predicate depends only on the op payload, so shrunk traces keep
    failing. *)
type fault = Lost_remove

(** ["rel-lost-remove"]. *)
val fault_to_string : fault -> string

(** Inverse of {!fault_to_string}. *)
val fault_of_string : string -> fault option

(** A divergence: the 1-based failing step, the backend name, the op,
    and a human-readable disagreement. *)
type failure = { rf_step : int; rf_backend : string; rf_op : rop; rf_message : string }

(** Run a trace over fresh instances of every [kinds] backend;
    [Error] carries the first disagreement with the model (answers,
    live-pair census after every op, and pair-set snapshots). *)
val run_ops :
  ?fault:fault -> kinds:Dsdg_binrel.Rel_backend.kind list -> rop list -> (unit, failure) result

(** Deterministic bounded stream: a mostly-small id universe with
    occasional far-out ids (exercising k2 matrix growth), weighted
    toward updates with queries and snapshots interleaved. *)
val gen_ops : seed:int -> ops:int -> rop list

(** Delta-debug a failing trace, preserving "still fails", through
    {!Runner.shrink_ops} ([max_runs] bounds re-executions). *)
val shrink :
  ?fault:fault -> ?max_runs:int -> kinds:Dsdg_binrel.Rel_backend.kind list -> rop list -> rop list

(** Outcome of one generated stream. *)
type outcome = Pass | Fail of { failure : failure; trace : rop list; shrunk : rop list }

(** Generate (from [seed]), run, and on failure shrink before
    re-running for the final report. *)
val run_stream :
  ?fault:fault ->
  kinds:Dsdg_binrel.Rel_backend.kind list ->
  seed:int ->
  ops:int ->
  unit ->
  outcome

(** Save a relation trace with a ["% requires rel=<spec>"] hint header
    (readable back via {!Trace.load_hint}), so replays can refuse a
    different backend shape. *)
val save : ?fault:fault -> spec:spec -> string -> rop list -> unit

(** Load a relation trace; raises {!Trace.Parse_error} with the line
    number and offending field on garbage. *)
val load : string -> rop list

(** Human-readable failure report: the divergence and the minimal
    trace. *)
val report : ?seed:int -> failure:failure -> shrunk:rop list -> unit -> string
