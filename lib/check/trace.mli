(** Operation traces: the replayable currency of the fuzzer.

    A trace is a list of operations against a dynamic document
    collection. Document ids are not stored at insertion time -- the
    k-th [Insert] always receives id k from both the model and every
    structure under test -- so a trace is position-independent data that
    survives shrinking: deleting an [Insert] shifts later ids in the
    model and in the structures identically.

    The textual format is line-based (["+ \"text\""], ["- id"],
    ["? \"pat\""], ["# \"pat\""], ["= doc off len"], ["@ id"], ["!!"];
    blank lines and [%]-comments ignored) so failing CI seeds replay as
    one-liners: [dsdg fuzz --replay trace-file]. *)

type op =
  | Insert of string
  | Delete of int
  | Search of string
  | Count of string
  | Extract of { doc : int; off : int; len : int }
  | Mem of int
  | Drain
      (** Land every in-flight background job now
          ([Dynamic_index.drain]) -- a random forced-completion point,
          meaningful mostly for the pooled executor. *)

val op_to_string : op -> string

(** Raises [Invalid_argument] on garbage. *)
val op_of_string : string -> op

(** Numbered, one op per line -- the shape printed with failures. *)
val render : op list -> string

val save : string -> op list -> unit

(** Raises [Invalid_argument] (with the offending line) on parse
    errors, [Sys_error] if unreadable. *)
val load : string -> op list
