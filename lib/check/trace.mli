(** Operation traces: the replayable currency of the fuzzer.

    A trace is a list of operations against a dynamic document
    collection. Document ids are not stored at insertion time -- the
    k-th [Insert] always receives id k from both the model and every
    structure under test -- so a trace is position-independent data that
    survives shrinking: deleting an [Insert] shifts later ids in the
    model and in the structures identically.

    The textual format is line-based (["+ \"text\""], ["- id"],
    ["? \"pat\""], ["# \"pat\""], ["= doc off len"], ["@ id"], ["!!"];
    blank lines and [%]-comments ignored) so failing CI seeds replay as
    one-liners: [dsdg fuzz --replay trace-file]. *)

type op =
  | Insert of string
  | Delete of int
  | Search of string
  | Count of string
  | Extract of { doc : int; off : int; len : int }
  | Mem of int
  | Drain
      (** Land every in-flight background job now
          ([Dynamic_index.drain]) -- a random forced-completion point,
          meaningful mostly for the pooled executor. *)

(** A located parse failure: the 1-based line number, the offending
    record verbatim, and which field failed to scan. Raised by {!load}
    (and by the write-ahead-log reader in [Dsdg_store.Wal], which shares
    this format) so that a corrupt log reports {e where} it is corrupt. *)
type parse_error = { pe_line : int; pe_text : string; pe_reason : string }

exception Parse_error of parse_error

(** Render as ["file:line N: reason (offending record: ...)"]. *)
val parse_error_message : ?file:string -> parse_error -> string

val op_to_string : op -> string

(** One-line parse with a field-level reason; the building block of
    {!op_of_string}, {!load} and the WAL reader. *)
val parse_op : string -> (op, string) result

(** Raises [Invalid_argument] on garbage (with the offending field in
    the message). *)
val op_of_string : string -> op

(** Numbered, one op per line -- the shape printed with failures. *)
val render : op list -> string

(** A replay hint: the concurrency/sharding shape a recorded failure
    needs to reproduce. Saved as a ["% requires shards=K readers=N
    jobs=N seq=spsi"] comment header, so hinted traces remain loadable by any
    reader (comments are skipped) while hint-aware replayers
    ([dsdg fuzz --replay]) can refuse to replay under a different
    shape. *)
type hint = {
  h_shards : int option;
  h_readers : int option;
  h_jobs : int option;
  h_seq : string option;  (** dynamic-sequence backend name ("avl"/"spsi") *)
  h_rel : string option;
      (** relation backend spec of a relation-stream trace ("str"/"k2"/
          "both"); absent on document traces *)
}

(** All [None]: no requirements recorded. *)
val no_hint : hint

val save : ?hint:hint -> string -> op list -> unit

(** The hint header of a saved trace ({!no_hint} for pre-hint traces
    and traces saved without one). Never raises on parse trouble --
    unknown keys and malformed headers read as absent fields. *)
val load_hint : string -> hint

(** Raises {!Parse_error} (with the line number and offending field) on
    parse errors, [Sys_error] if unreadable. Blank lines and
    [%]-comments are skipped but still counted for line numbers. *)
val load : string -> op list
