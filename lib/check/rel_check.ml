(* Differential checking for the relation backends: fan one stream of
   relation operations over the Rel_backend matrix (str, k2, or both),
   cross-check every answer against the naive Model.Rel, and
   delta-debug failing streams down to minimal replayable traces with
   the same ddmin core (Runner.shrink_ops) the document and shard
   harnesses use.  Relation ops ride through the generic shrinker as
   transport-encoded Trace ops (each rop carried as an [Insert] whose
   payload is the rop's own line format); candidates that no longer
   decode simply count as passing, so chunk removal does the work and
   the result is always a valid rop list. *)

open Dsdg_binrel

(* --- relation operations and their line format --- *)

type rop =
  | Radd of int * int
  | Rremove of int * int
  | Rrelated of int * int
  | Rsucc of int (* labels_of_object: list + count *)
  | Rpred of int (* objects_of_label: list + count *)
  | Rpairs (* full pair-set snapshot comparison *)

let rop_to_string = function
  | Radd (o, a) -> Printf.sprintf "> %d %d" o a
  | Rremove (o, a) -> Printf.sprintf "< %d %d" o a
  | Rrelated (o, a) -> Printf.sprintf "~ %d %d" o a
  | Rsucc o -> Printf.sprintf "$ %d" o
  | Rpred a -> Printf.sprintf "^ %d" a
  | Rpairs -> "*"

let parse_rop line : (rop, string) result =
  let scan fmt k ~expect =
    try Ok (Scanf.sscanf line fmt k)
    with Scanf.Scan_failure _ | End_of_file | Failure _ -> Error expect
  in
  if line = "" then Error "empty record"
  else
    match line.[0] with
    | '>' -> scan "> %d %d" (fun o a -> Radd (o, a)) ~expect:"expected 'o a' integers after '>'"
    | '<' -> scan "< %d %d" (fun o a -> Rremove (o, a)) ~expect:"expected 'o a' integers after '<'"
    | '~' -> scan "~ %d %d" (fun o a -> Rrelated (o, a)) ~expect:"expected 'o a' integers after '~'"
    | '$' -> scan "$ %d" (fun o -> Rsucc o) ~expect:"expected an object id after '$'"
    | '^' -> scan "^ %d" (fun a -> Rpred a) ~expect:"expected a label id after '^'"
    | '*' -> if line = "*" then Ok Rpairs else Error "expected the bare snapshot record \"*\""
    | c -> Error (Printf.sprintf "unknown relation opcode %C" c)

let rop_of_string line =
  match parse_rop line with
  | Ok op -> op
  | Error reason -> invalid_arg (Printf.sprintf "Rel_check.rop_of_string: %S (%s)" line reason)

let render ops =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i op -> Buffer.add_string buf (Printf.sprintf "%4d  %s\n" (i + 1) (rop_to_string op)))
    ops;
  Buffer.contents buf

(* --- backend selection --- *)

type spec = One of Rel_backend.kind | Both

let spec_to_string = function One k -> Rel_backend.kind_to_string k | Both -> "both"

let spec_of_string = function
  | "both" | "all" -> Some Both
  | s -> Option.map (fun k -> One k) (Rel_backend.kind_of_string s)

let kinds_of_spec = function One k -> [ k ] | Both -> Rel_backend.all_kinds

(* --- planted faults --- *)

(* A deliberate defect in the harness's application of ops, so the
   checker can prove it catches, shrinks and replays real divergences
   (the relation-side analogue of Transform2.fault): [Lost_remove]
   silently drops removes of pairs with [(o + a) mod 3 = 0] from the
   structures under test while the model still applies them.  The
   predicate depends only on the op payload, never on stream position,
   so shrunk traces keep failing. *)
type fault = Lost_remove

let fault_to_string = function Lost_remove -> "rel-lost-remove"
let fault_of_string = function "rel-lost-remove" -> Some Lost_remove | _ -> None

(* --- differential run --- *)

type failure = { rf_step : int; rf_backend : string; rf_op : rop; rf_message : string }

let run_ops ?fault ~kinds (ops : rop list) : (unit, failure) result =
  let model = Model.Rel.create () in
  let rels =
    List.map (fun k -> (Rel_backend.kind_to_string k, Rel_backend.create ~tau:4 k)) kinds
  in
  let exception Diverged of failure in
  let fail step name op fmt =
    Printf.ksprintf (fun m -> raise (Diverged { rf_step = step; rf_backend = name; rf_op = op; rf_message = m })) fmt
  in
  let check_list step name op what expected got =
    if expected <> got then
      fail step name op "%s: model [%s] vs %s [%s]" what
        (String.concat ";" (List.map string_of_int expected))
        name
        (String.concat ";" (List.map string_of_int got))
  in
  try
    List.iteri
      (fun i op ->
        let step = i + 1 in
        (match op with
        | Radd (o, a) ->
          let want = Model.Rel.add model o a in
          List.iter
            (fun (name, r) ->
              let got = Rel_backend.add r o a in
              if got <> want then fail step name op "add %d %d: model %b vs %b" o a want got)
            rels
        | Rremove (o, a) ->
          let want = Model.Rel.remove model o a in
          let dropped = fault = Some Lost_remove && (o + a) mod 3 = 0 in
          List.iter
            (fun (name, r) ->
              let got = if dropped then false else Rel_backend.remove r o a in
              if got <> want then fail step name op "remove %d %d: model %b vs %b" o a want got)
            rels
        | Rrelated (o, a) ->
          let want = Model.Rel.related model o a in
          List.iter
            (fun (name, r) ->
              let got = Rel_backend.related r o a in
              if got <> want then fail step name op "related %d %d: model %b vs %b" o a want got)
            rels
        | Rsucc o ->
          let want = Model.Rel.labels_of_object model o in
          List.iter
            (fun (name, r) ->
              check_list step name op
                (Printf.sprintf "labels_of_object %d" o)
                want
                (Rel_backend.labels_of_object_list r o);
              let c = Rel_backend.count_labels_of_object r o in
              if c <> List.length want then
                fail step name op "count_labels_of_object %d: model %d vs %d" o
                  (List.length want) c)
            rels
        | Rpred a ->
          let want = Model.Rel.objects_of_label model a in
          List.iter
            (fun (name, r) ->
              check_list step name op
                (Printf.sprintf "objects_of_label %d" a)
                want
                (Rel_backend.objects_of_label_list r a);
              let c = Rel_backend.count_objects_of_label r a in
              if c <> List.length want then
                fail step name op "count_objects_of_label %d: model %d vs %d" a
                  (List.length want) c)
            rels
        | Rpairs ->
          let want = Model.Rel.pairs model in
          List.iter
            (fun (name, r) ->
              let got = Rel_backend.pairs_list r in
              if got <> want then
                fail step name op "pair-set snapshot: model %d pairs vs %s %d pairs%s"
                  (List.length want) name (List.length got)
                  (match
                     List.find_opt (fun p -> not (List.mem p got)) want
                   with
                  | Some (o, a) -> Printf.sprintf " (first missing: %d,%d)" o a
                  | None -> ""))
            rels);
        (* live-pair census after every op: cheap and catches drift early *)
        let want = Model.Rel.size model in
        List.iter
          (fun (name, r) ->
            let got = Rel_backend.live_pairs r in
            if got <> want then fail step name op "live_pairs: model %d vs %d" want got)
          rels)
      ops;
    Ok ()
  with Diverged f -> Error f

(* --- stream generation --- *)

(* Bounded universe with occasional far-out ids, so k2 exercises its
   matrix-growth path and str its alphabet spread; weighted toward
   updates with queries and snapshots interleaved. *)
let gen_ops ~seed ~ops =
  let st = Random.State.make [| seed; 0xbe1 |] in
  let id () =
    if Random.State.int st 40 = 0 then Random.State.int st 600 else Random.State.int st 24
  in
  List.init ops (fun _ ->
      match Random.State.int st 100 with
      | n when n < 40 -> Radd (id (), id ())
      | n when n < 65 -> Rremove (id (), id ())
      | n when n < 80 -> Rrelated (id (), id ())
      | n when n < 88 -> Rsucc (id ())
      | n when n < 96 -> Rpred (id ())
      | _ -> Rpairs)

(* --- shrinking through the shared ddmin core --- *)

let to_transport rops = List.map (fun r -> Trace.Insert (rop_to_string r)) rops

let of_transport tops =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Trace.Insert s :: rest -> (
      match parse_rop s with Ok r -> go (r :: acc) rest | Error _ -> None)
    | _ -> None
  in
  go [] tops

let shrink ?fault ?(max_runs = 400) ~kinds rops =
  let fails tops =
    match of_transport tops with
    | None -> false
    | Some cand -> Result.is_error (run_ops ?fault ~kinds cand)
  in
  match of_transport (Runner.shrink_ops ~fails ~max_runs (to_transport rops)) with
  | Some shrunk -> shrunk
  | None -> rops

type outcome = Pass | Fail of { failure : failure; trace : rop list; shrunk : rop list }

let run_stream ?fault ~kinds ~seed ~ops () =
  let trace = gen_ops ~seed ~ops in
  match run_ops ?fault ~kinds trace with
  | Ok () -> Pass
  | Error f ->
    let shrunk = shrink ?fault ~kinds trace in
    let failure = match run_ops ?fault ~kinds shrunk with Error f' -> f' | Ok () -> f in
    Fail { failure; trace; shrunk }

(* --- persistence (same header convention as Trace) --- *)

let save ?fault ~spec path ops =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Printf.sprintf "%% requires rel=%s\n" (spec_to_string spec));
      (match fault with
      | Some f -> output_string oc (Printf.sprintf "%% fault %s\n" (fault_to_string f))
      | None -> ());
      List.iter (fun op -> output_string oc (rop_to_string op ^ "\n")) ops)

(* Relation traces reuse Trace's hint header, so [Trace.load_hint]
   reads the [rel=] requirement back. *)
let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ops = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '%' then
             match parse_rop line with
             | Ok op -> ops := op :: !ops
             | Error reason ->
               raise
                 (Trace.Parse_error
                    { Trace.pe_line = !lineno; pe_text = line; pe_reason = reason })
         done
       with End_of_file -> ());
      List.rev !ops)

let report ?seed ~failure ~shrunk () =
  let buf = Buffer.create 512 in
  (match seed with
  | Some s -> Buffer.add_string buf (Printf.sprintf "relation stream (seed %d) diverged\n" s)
  | None -> Buffer.add_string buf "relation trace diverged\n");
  Buffer.add_string buf
    (Printf.sprintf "backend %s, op %d (%s): %s\n" failure.rf_backend failure.rf_step
       (rop_to_string failure.rf_op) failure.rf_message);
  Buffer.add_string buf (Printf.sprintf "minimal trace (%d ops):\n" (List.length shrunk));
  Buffer.add_string buf (render shrunk);
  Buffer.contents buf
