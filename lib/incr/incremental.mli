(** Incremental background jobs via OCaml 5 effects.

    Transformation 2 rebuilds sub-collections "in the background", paying
    a bounded amount of construction work per update. A job wraps a
    builder function that receives a [tick] callback (one call = one work
    unit); whenever the current budget is exhausted the job suspends via
    an effect, and [step] resumes it later. *)

type 'a t

exception Cancelled

(** [create f] wraps builder [f] (not started yet). [f] receives the
    tick function it must call once per unit of work. *)
val create : ((unit -> unit) -> 'a) -> 'a t

val is_finished : 'a t -> bool
val result : 'a t -> 'a option

(** Total work units consumed so far. *)
val work_spent : 'a t -> int

(** [step t ~budget] runs the job for at most [budget] work units.
    [`Done v] if it finished (now or earlier), [`More] otherwise.
    Raises {!Cancelled} if the job was {!abandon}ed (matching the
    executor's contract: a cancelled job can never be resumed). *)
val step : 'a t -> budget:int -> [ `Done of 'a | `More ]

(** Run to completion regardless of budget. *)
val force : 'a t -> 'a

(** Drop a paused job, unwinding its stack (finalizers run). The job
    cannot be stepped afterwards. *)
val abandon : 'a t -> unit
