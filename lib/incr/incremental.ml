(* Incremental background jobs via OCaml 5 effects.

   Transformation 2 requires that rebuilding a sub-collection runs "in the
   background", with each update paying a bounded amount of construction
   work.  We realize that literally: the builder function runs inside a
   coroutine that performs a [Yield] effect every time its work budget is
   exhausted; [step job ~budget] resumes it for [budget] more work units.
   Construction functions accept a [tick] callback (one call = one unit of
   work) -- see Sais.raw / Fm_index.build. *)

type _ Effect.t += Yield : unit Effect.t

type 'a outcome = Done of 'a | More

type 'a state =
  | Not_started of ((unit -> unit) -> 'a) (* receives the tick function *)
  | Paused of (unit, 'a outcome) Effect.Deep.continuation
  | Finished of 'a
  | Abandoned

type 'a t = {
  mutable state : 'a state;
  budget : int ref;
  mutable spent : int; (* total work units consumed, for accounting *)
}

exception Cancelled

let create f = { state = Not_started f; budget = ref 0; spent = 0 }

let is_finished t = match t.state with Finished _ -> true | _ -> false
let result t = match t.state with Finished v -> Some v | _ -> None
let work_spent t = t.spent

let handler t =
  {
    Effect.Deep.retc = (fun v -> Done v);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, _) Effect.Deep.continuation) ->
              t.state <- Paused k;
              More)
        | _ -> None);
  }

(* Run the job for [budget] work units.  Returns [`Done v] if it finished
   (now or earlier), [`More] if it yielded again. *)
let step t ~budget =
  if budget < 1 then invalid_arg "Incremental.step: budget < 1";
  match t.state with
  | Finished v -> `Done v
  | Abandoned -> raise Cancelled
  | Not_started f ->
    t.budget := budget;
    let tick () =
      t.spent <- t.spent + 1;
      decr t.budget;
      if !(t.budget) <= 0 then Effect.perform Yield
    in
    (match Effect.Deep.match_with (fun () -> f tick) () (handler t) with
    | Done v ->
      t.state <- Finished v;
      `Done v
    | More -> `More)
  | Paused k ->
    t.budget := budget;
    (match Effect.Deep.continue k () with
    | Done v ->
      t.state <- Finished v;
      `Done v
    | More -> `More)

(* Run the job to completion regardless of remaining work. *)
let force t =
  let rec go () =
    match step t ~budget:max_int with
    | `Done v -> v
    | `More -> go ()
  in
  go ()

(* Drop a paused job, unwinding its stack. *)
let abandon t =
  (match t.state with
  | Paused k -> ( try ignore (Effect.Deep.discontinue k Cancelled) with Cancelled -> ())
  | Not_started _ | Finished _ | Abandoned -> ());
  t.state <- Abandoned
