(** The Lemma 2/3 structure: a bit vector supporting [zero] and
    "report all surviving 1-positions in a range in O(1) per result".

    Substitute for the Mortensen-Pagh-Patrascu dynamic range reporting
    structure: a 62-way summary-bitmap hierarchy, giving successor
    queries in O(log_62 n) word probes. Used to filter deleted suffixes
    out of suffix-array ranges (Section 2) and deleted pairs out of
    binary relations (Section 5). *)

type t

(** All bits one. [seq] picks the partial-sums backend for the word
    counts (default [Sums.Avl], i.e. Fenwick). *)
val create_full : ?seq:Sums.kind -> int -> t

val of_bitvec : ?seq:Sums.kind -> Dsdg_bits.Bitvec.t -> t
val length : t -> int

(** Number of surviving one bits. *)
val ones : t -> int

val get : t -> int -> bool

(** [zero t i] clears bit [i] (idempotent). O(log_62 n). *)
val zero : t -> int -> unit

(** [next_one t i] is the smallest set position [>= i], if any. *)
val next_one : t -> int -> int option

(** [report t s e f] calls [f] on every set position in [[s, e)], in
    increasing order; O(1) amortized probes per reported position. *)
val report : t -> int -> int -> (int -> unit) -> unit

(** [count_range t s e] is the number of set positions in [[s, e)];
    O(log n) via a word-granular Fenwick tree (Theorem 1's counting at
    ~1 extra bit per position). *)
val count_range : t -> int -> int -> int

val to_list : t -> int list

(** Deep copy (pyramid + Fenwick), O(length/62) words; used when
    publishing read-plane snapshots. *)
val copy : t -> t

val space_bits : t -> int
