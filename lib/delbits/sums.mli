(** Searchable partial sums behind a runtime backend choice.

    [kind] selects between the incumbent family ([Avl]: Fenwick sums,
    AVL dynamic bitvectors) and the B-tree family ([Spsi]: implicit
    B-ary pyramid here, B-tree bitvectors in dynseq). The same [kind]
    value is threaded from the CLI's [--seq-backend] flag down through
    [Reporter], [Semi_static] and the dynamic-sequence layer. *)

type kind = Avl | Spsi

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** All backends, in matrix order — used to fan differential tests. *)
val all_kinds : kind list

type t

val kind : t -> kind

(** [create k n] is an all-zero structure over [n] cells. *)
val create : kind -> int -> t

(** [create_ones k n] is pre-filled with 1 in every cell; O(n). *)
val create_ones : kind -> int -> t

(** Linear-time construction from initial cell values. *)
val of_array : kind -> int array -> t

val length : t -> int

(** [add t i delta] adds [delta] to cell [i]. *)
val add : t -> int -> int -> unit

(** [prefix t i] is the sum of cells [[0, i)]. *)
val prefix : t -> int -> int

(** [range t l r] is the sum of cells [[l, r)]. *)
val range : t -> int -> int -> int

val total : t -> int

(** [search t k] is the smallest [i] with [prefix t (i + 1) > k].
    Requires non-negative cells and [0 <= k < total t]. *)
val search : t -> int -> int

(** Deep copy; used when publishing read-plane snapshots. *)
val copy : t -> t

val space_bits : t -> int
