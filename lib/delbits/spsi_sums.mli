(** Searchable partial sums over a fixed universe of cells, stored as an
    implicit B-ary pyramid of flat arrays (the SPSI layout of the B-tree
    exemplars, specialised to fixed length). Point update writes one
    slot per level; prefix sum and search scan at most one group per
    level — all probes are sequential, unlike the Fenwick lowbit walk. *)

type t

(** Group fanout of the pyramid (slots scanned per level). *)
val branch : int

(** [create n] is an all-zero structure over [n] cells. *)
val create : int -> t

(** [create_ones n] is pre-filled with 1 in every cell; O(n). *)
val create_ones : int -> t

(** Linear-time construction from initial cell values. *)
val of_array : int array -> t

val length : t -> int

(** [add t i delta] adds [delta] to cell [i]; O(log_B n) slot writes. *)
val add : t -> int -> int -> unit

(** [prefix t i] is the sum of cells [[0, i)]. *)
val prefix : t -> int -> int

(** [range t l r] is the sum of cells [[l, r)]. *)
val range : t -> int -> int -> int

val total : t -> int

(** [search t k] is the smallest [i] with [prefix t (i + 1) > k] — one
    top-down descent, no prefix recomputation. Requires non-negative
    cells and [0 <= k < total t]. *)
val search : t -> int -> int

(** Deep copy, O(n); used when publishing read-plane snapshots. *)
val copy : t -> t

val space_bits : t -> int
