(* The searchable-partial-sums seam: every structure that keeps integer
   counts per position (Reporter word counts, Dyn_fm symbol
   accumulators) goes through this dispatch so the whole engine can be
   switched between the incumbent Fenwick tree and the cache-friendly
   SPSI pyramid with one runtime choice.  [kind] is the same value the
   dynamic-bitvector seam uses (Seq_backend re-exports it): "avl" names
   the incumbent family (AVL bitvectors + Fenwick sums), "spsi" the
   B-tree family. *)

type kind = Avl | Spsi

let kind_to_string = function Avl -> "avl" | Spsi -> "spsi"

let kind_of_string = function
  | "avl" -> Some Avl
  | "spsi" -> Some Spsi
  | _ -> None

let all_kinds = [ Avl; Spsi ]

type t = F of Fenwick.t | S of Spsi_sums.t

let kind = function F _ -> Avl | S _ -> Spsi

let create k n =
  match k with Avl -> F (Fenwick.create n) | Spsi -> S (Spsi_sums.create n)

let create_ones k n =
  match k with Avl -> F (Fenwick.create_ones n) | Spsi -> S (Spsi_sums.create_ones n)

let of_array k a =
  match k with Avl -> F (Fenwick.of_array a) | Spsi -> S (Spsi_sums.of_array a)

let length = function F f -> Fenwick.length f | S s -> Spsi_sums.length s
let add t i d = match t with F f -> Fenwick.add f i d | S s -> Spsi_sums.add s i d
let prefix t i = match t with F f -> Fenwick.prefix f i | S s -> Spsi_sums.prefix s i
let range t l r = match t with F f -> Fenwick.range f l r | S s -> Spsi_sums.range s l r
let total = function F f -> Fenwick.total f | S s -> Spsi_sums.total s
let search t k = match t with F f -> Fenwick.search f k | S s -> Spsi_sums.search s k
let copy = function F f -> F (Fenwick.copy f) | S s -> S (Spsi_sums.copy s)
let space_bits = function F f -> Fenwick.space_bits f | S s -> Spsi_sums.space_bits s
