(** Fenwick (binary indexed) tree: point update and prefix sum in
    O(log n). Substitute for the Navarro-Sadakane dynamic counting
    structure in Theorem 1 (counting surviving occurrences). *)

type t

(** [create n] is an all-zero tree over [n] cells. *)
val create : int -> t

(** [create_ones n] is pre-filled with 1 in every cell; O(n). *)
val create_ones : int -> t

(** Linear-time construction from initial cell values. *)
val of_array : int array -> t

val length : t -> int

(** [add t i delta] adds [delta] to cell [i]. *)
val add : t -> int -> int -> unit

(** [prefix t i] is the sum of cells [[0, i)]. *)
val prefix : t -> int -> int

(** [range t l r] is the sum of cells [[l, r)]. *)
val range : t -> int -> int -> int

val total : t -> int

(** [search t k] is the smallest [i] with [prefix t (i + 1) > k]: the
    cell containing the [k]-th unit of mass. Binary lifting, O(log n).
    Requires non-negative cells and [0 <= k < total t]. *)
val search : t -> int -> int

(** Deep copy, O(n); used when publishing read-plane snapshots. *)
val copy : t -> t

val space_bits : t -> int
