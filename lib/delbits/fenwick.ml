(* Fenwick (binary indexed) tree over [n] integer cells: point update,
   prefix sum in O(log n).  Substitute for the Navarro-Sadakane dynamic
   counting structure: Theorem 1 uses it to count surviving suffixes in a
   suffix-array range of a semi-static index. *)

type t = {
  n : int;
  tree : int array; (* 1-based *)
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create";
  { n; tree = Array.make (n + 1) 0 }

let length t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add";
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Sum of cells [0, i). *)
let prefix t i =
  if i < 0 || i > t.n then invalid_arg "Fenwick.prefix";
  let acc = ref 0 and i = ref i in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

(* Sum of cells [l, r). *)
let range t l r = prefix t r - prefix t l

let total t = prefix t t.n

(* Fenwick tree pre-filled with ones (used for "count live suffixes").
   Closed form: node i of an all-ones tree holds lowbit(i) -- O(n). *)
let create_ones n =
  let t = create n in
  for i = 1 to n do
    t.tree.(i) <- i land (-i)
  done;
  t

(* Linear-time construction from initial cell values. *)
let of_array (a : int array) =
  let n = Array.length a in
  let t = create n in
  Array.blit a 0 t.tree 1 n;
  for i = 1 to n do
    let j = i + (i land -i) in
    if j <= n then t.tree.(j) <- t.tree.(j) + t.tree.(i)
  done;
  t

(* Smallest [i] with [prefix t (i + 1) > k], by binary lifting over the
   implicit tree: O(log n), no prefix-sum recomputation per probe.
   Requires all cells non-negative and [0 <= k < total t]. *)
let search t k =
  if k < 0 then invalid_arg "Fenwick.search";
  let log2 =
    let b = ref 1 and l = ref 0 in
    while !b * 2 <= t.n do
      b := !b * 2;
      incr l
    done;
    !l
  in
  let pos = ref 0 and rem = ref k in
  for j = log2 downto 0 do
    let next = !pos + (1 lsl j) in
    if next <= t.n && t.tree.(next) <= !rem then begin
      rem := !rem - t.tree.(next);
      pos := next
    end
  done;
  if !pos >= t.n then invalid_arg "Fenwick.search";
  !pos

(* Deep copy, O(n).  Snapshot publication (read-plane views) copies the
   Fenwick summaries of structures whose deletion state keeps mutating. *)
let copy t = { n = t.n; tree = Array.copy t.tree }

(* The tree array already includes the unused 1-based slot, so it is the
   whole footprint; charge payload words of [Popcount.word_bits]. *)
let space_bits t = Array.length t.tree * Dsdg_bits.Popcount.word_bits
