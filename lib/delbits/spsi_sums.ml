(* Searchable partial sums over a fixed universe of [n] cells, laid out
   as an implicit B-ary tree: level 0 holds the cells themselves and
   every higher level holds the sums of [branch]-sized groups of the
   level below.  Point update touches one slot per level (O(log_B n)
   cache lines); prefix sum and search scan at most [branch - 1]
   consecutive slots per level.  This is the flat-array SPSI layout of
   the B-tree exemplars (Prezza's DYNAMIC, B-tree_plus_alpha) restricted
   to the fixed-[n] partial-sums case the deletion path needs, trading
   the Fenwick tree's pointer-free but stride-hostile lowbit walk for
   strictly sequential probes. *)

open Dsdg_bits

let branch = 32

type t = {
  n : int;
  levels : int array array;
      (* levels.(0).(i) = cell i; levels.(l).(j) = sum of the j-th
         [branch]-group of level l-1.  The top level has <= branch
         entries. *)
}

let groups_for len = if len <= 1 then 1 else (len + branch - 1) / branch

let build_levels level0 =
  let levels = ref [ level0 ] and cur = ref level0 in
  while Array.length !cur > branch do
    let next = Array.make (groups_for (Array.length !cur)) 0 in
    Array.iteri (fun i x -> next.(i / branch) <- next.(i / branch) + x) !cur;
    levels := next :: !levels;
    cur := next
  done;
  Array.of_list (List.rev !levels)

let create n =
  if n < 0 then invalid_arg "Spsi_sums.create";
  { n; levels = build_levels (Array.make (max 1 n) 0) }

let of_array (a : int array) =
  { n = Array.length a; levels = build_levels (if Array.length a = 0 then [| 0 |] else Array.copy a) }

let create_ones n =
  if n < 0 then invalid_arg "Spsi_sums.create_ones";
  of_array (Array.make n 1)

let length t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Spsi_sums.add";
  let idx = ref i in
  for l = 0 to Array.length t.levels - 1 do
    let arr = t.levels.(l) in
    arr.(!idx) <- arr.(!idx) + delta;
    idx := !idx / branch
  done

(* Sum of cells [0, i): within each level, add the slots between the
   start of [i]'s group and [i] itself, then recurse on the group
   index.  <= branch - 1 sequential adds per level. *)
let prefix t i =
  if i < 0 || i > t.n then invalid_arg "Spsi_sums.prefix";
  let acc = ref 0 and idx = ref i in
  let top = Array.length t.levels - 1 in
  for l = 0 to top do
    let arr = t.levels.(l) in
    (* the top level delegates nothing upward, so its scan starts at 0
       (the group arithmetic would skip it when [idx] lands exactly on
       [branch]) *)
    let g = if l = top then 0 else !idx / branch * branch in
    for j = g to !idx - 1 do
      acc := !acc + arr.(j)
    done;
    idx := !idx / branch
  done;
  !acc

let range t l r = prefix t r - prefix t l
let total t = prefix t t.n

(* Smallest [i] with [prefix t (i + 1) > k]: descend the pyramid,
   scanning one group per level.  Requires non-negative cells and
   [0 <= k < total t]. *)
let search t k =
  if k < 0 then invalid_arg "Spsi_sums.search";
  let rem = ref k and start = ref 0 in
  for l = Array.length t.levels - 1 downto 0 do
    let arr = t.levels.(l) in
    let stop = min (Array.length arr) (!start + branch) in
    let j = ref !start in
    while !j < stop - 1 && !rem >= arr.(!j) do
      rem := !rem - arr.(!j);
      incr j
    done;
    start := if l = 0 then !j else !j * branch
  done;
  if !rem >= t.levels.(0).(!start) then invalid_arg "Spsi_sums.search";
  !start

let copy t = { n = t.n; levels = Array.map Array.copy t.levels }

let space_bits t =
  Array.fold_left (fun acc arr -> acc + Array.length arr) 2 t.levels * Popcount.word_bits
