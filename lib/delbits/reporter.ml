(* Lemma 2/3 structure: a bit vector B supporting

     zero i        -- clear bit i
     report s e f  -- call f on every set position in [s, e)   O(k)
     next_one      -- successor query

   Implementation substitute for the Mortensen-Pagh-Patrascu dynamic range
   reporting structure: a hierarchy of summary bitmaps with 62-way fanout.
   Finding the next set bit costs O(log_62 n) word probes -- effectively
   constant -- and zeroing costs the same, matching the role the lemma
   plays in the paper (report in O(k), updates in O(log^eps n)). *)

open Dsdg_bits

let w = Popcount.word_bits

type t = {
  len : int;
  levels : int array array; (* levels.(0): the words of B; each higher level summarises non-emptiness *)
  mutable ones : int;
  counts : Sums.t; (* live bits per level-0 word: O(log n) range counting
                      (Theorem 1) at ~1 bit of overhead per position;
                      Fenwick- or SPSI-backed per the seq backend *)
}

let words_for n = if n = 0 then 1 else (n + w - 1) / w

(* Build the summary pyramid on top of a level-0 word array. *)
let build_levels level0 =
  let levels = ref [ level0 ] in
  let cur = ref level0 in
  while Array.length !cur > 1 do
    let nw = words_for (Array.length !cur) in
    let next = Array.make nw 0 in
    Array.iteri (fun i x -> if x <> 0 then next.(i / w) <- next.(i / w) lor (1 lsl (i mod w))) !cur;
    levels := next :: !levels;
    cur := next
  done;
  Array.of_list (List.rev !levels)

let counts_of_level0 seq level0 =
  Sums.of_array seq (Array.map Popcount.count level0)

(* All bits initially one. *)
let create_full ?(seq = Sums.Avl) len =
  if len < 0 then invalid_arg "Reporter.create_full";
  let nw = words_for len in
  let level0 = Array.make nw 0 in
  for i = 0 to nw - 1 do
    level0.(i) <- Popcount.low_mask w
  done;
  let rem = len mod w in
  if rem <> 0 || len = 0 then level0.(nw - 1) <- Popcount.low_mask (if len = 0 then 0 else rem);
  { len; levels = build_levels level0; ones = len; counts = counts_of_level0 seq level0 }

let of_bitvec ?(seq = Sums.Avl) bv =
  let len = Bitvec.length bv in
  let nw = words_for len in
  let level0 = Array.init nw (fun j -> if j < Bitvec.num_words bv then Bitvec.word bv j else 0) in
  (* Stray bits above [len] in the last raw word would corrupt the summary
     pyramid, the Fenwick word counts and [ones]; mask them off. *)
  let rem = len mod w in
  if rem <> 0 || len = 0 then
    level0.(nw - 1) <- level0.(nw - 1) land Popcount.low_mask (if len = 0 then 0 else rem);
  let ones = Array.fold_left (fun a x -> a + Popcount.count x) 0 level0 in
  { len; levels = build_levels level0; ones; counts = counts_of_level0 seq level0 }

let length t = t.len
let ones t = t.ones

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Reporter.get";
  (t.levels.(0).(i / w) lsr (i mod w)) land 1 = 1

let zero t i =
  if i < 0 || i >= t.len then invalid_arg "Reporter.zero";
  let arr0 = t.levels.(0) in
  let j = i / w in
  let before = arr0.(j) in
  let after = before land lnot (1 lsl (i mod w)) in
  if after <> before then begin
    t.ones <- t.ones - 1;
    Sums.add t.counts j (-1);
    arr0.(j) <- after;
    (* propagate emptiness upwards *)
    let rec up level idx =
      if level < Array.length t.levels && t.levels.(level - 1).(idx) = 0 then begin
        let arr = t.levels.(level) in
        arr.(idx / w) <- arr.(idx / w) land lnot (1 lsl (idx mod w));
        up (level + 1) (idx / w)
      end
    in
    if after = 0 then up 1 j
  end

(* Smallest set position >= pos, or None. *)
let next_one t pos =
  let pos = max 0 pos in
  if pos >= t.len then None
  else begin
    (* search within level [level] for the first set bit at bit-position
       >= p; translate back down to level 0 *)
    let rec down level word =
      (* [word] at [level] is known non-zero; find its lowest set bit and
         descend *)
      let bit = Popcount.select t.levels.(level).(word) 0 in
      let p = (word * w) + bit in
      if level = 0 then p else down (level - 1) p
    in
    let rec search level p =
      if level >= Array.length t.levels then None
      else begin
        let arr = t.levels.(level) in
        let word = p / w and off = p mod w in
        if word >= Array.length arr then None
        else begin
          let bits = arr.(word) lsr off in
          if bits <> 0 then begin
            let q = p + Popcount.select bits 0 in
            Some (if level = 0 then q else down (level - 1) q)
          end
          else search (level + 1) (word + 1)
        end
      end
    in
    match search 0 pos with
    | Some q when q < t.len -> Some q
    | _ -> None
  end

(* Report every set position in [s, e) in increasing order: O(k) summary
   probes overall. *)
let report t s e f =
  let s = max 0 s and e = min e t.len in
  let rec go p =
    if p < e then
      match next_one t p with
      | Some q when q < e ->
        f q;
        go (q + 1)
      | _ -> ()
  in
  go s

(* Number of live bits in [s, e): Fenwick over whole words plus popcounts
   at the two partial edges.  O(log n). *)
let count_range t s e =
  let s = max 0 s and e = min e t.len in
  if s >= e then 0
  else begin
    let arr0 = t.levels.(0) in
    let ws = s / w and we = (e - 1) / w in
    if ws = we then
      Popcount.count (arr0.(ws) lsr (s mod w) land Popcount.low_mask (e - s))
    else begin
      let left = Popcount.count (arr0.(ws) lsr (s mod w)) in
      let right = Popcount.count (arr0.(we) land Popcount.low_mask (e - (we * w))) in
      left + Sums.range t.counts (ws + 1) we + right
    end
  end

(* Deep copy: fresh pyramid and Fenwick, O(len / w) words.  This is the
   per-delete snapshot cost of a semi-static structure's read plane. *)
let copy t =
  {
    len = t.len;
    levels = Array.map Array.copy t.levels;
    ones = t.ones;
    counts = Sums.copy t.counts;
  }

let to_list t =
  let acc = ref [] in
  report t 0 t.len (fun i -> acc := i :: !acc);
  List.rev !acc

let space_bits t =
  Array.fold_left (fun acc arr -> acc + (Array.length arr * w)) (2 * w) t.levels
  + Sums.space_bits t.counts
