(** Crash recovery: newest valid snapshot + WAL tail replay.

    The recovery state machine (DESIGN.md section 10):

    + scan the store directory for snapshots, newest first; load the
      first one that passes every {!Codec} checksum, skipping (and
      reporting) corrupt ones;
    + rebuild the index from the dump ({!Dsdg_core.Dynamic_index.restore}),
      or start empty if no snapshot survives;
    + read the WAL; drop a torn final record (truncating it on disk),
      fail loudly on interior corruption
      ({!Dsdg_check.Trace.Parse_error});
    + replay every WAL mutation with serial [>= ] the snapshot's
      serial. Replay is idempotent: a logged-but-failed delete fails
      again, a logged-then-crashed-before-apply mutation is applied now.

    Recovering twice from the same directory yields the same state --
    recovery mutates nothing except the torn-tail truncation, which is
    itself idempotent (and suppressed entirely under
    [~read_only:true]). *)

(** The WAL starts after the newest loadable snapshot: records between
    the snapshot serial and the WAL's first record are gone (this can
    only happen when a newer snapshot file was corrupted {e and} the
    WAL was already compacted past the older one). The store cannot be
    opened without data loss, so recovery refuses. *)
exception Gap of { dir : string; snapshot_serial : int; wal_serial0 : int }

type info = {
  ri_snapshot : string option;  (** snapshot file recovered from *)
  ri_snapshot_serial : int;  (** its WAL serial ([0] when starting empty) *)
  ri_skipped : (string * string) list;  (** corrupt snapshots skipped: (path, reason) *)
  ri_replayed : int;  (** WAL records replayed *)
  ri_truncated : bool;  (** a torn final WAL record was dropped *)
  ri_next_serial : int;  (** serial the WAL should continue from *)
}

(** One-line summary, as printed by the CLI on open. *)
val info_to_string : info -> string

(** [wal.log] inside a store directory. *)
val wal_path : dir:string -> string

(** Apply one replayed mutation to the index; queries in a hand-edited
    log are ignored. Exposed for the CLI's replay paths. *)
val apply_op : Dsdg_core.Dynamic_index.t -> Dsdg_check.Trace.op -> unit

(** [open_or_recover ~dir ()] runs the state machine above. The
    creation parameters ([variant] .. [tau]) are used only when the
    directory holds no usable snapshot {e and} no WAL -- a genuinely
    fresh store; otherwise the dump's recorded parameters win. [fault],
    [jobs], [readers] and [retain_epochs] are fresh runtime choices,
    never persisted.

    [read_only] (default [false]) guarantees no on-disk mutation: the
    torn-tail truncation is skipped (the torn record is still dropped
    from replay, and reported via [ri_truncated]). Inspectors
    ([dsdg stats --store]) and followers bootstrapping a replica use
    this path so observing a store never rewrites it.

    Raises {!Gap} on a snapshot/WAL serial gap (including the case
    where every snapshot is corrupt but the WAL was already compacted,
    so its records cannot stand alone) and
    {!Dsdg_check.Trace.Parse_error} on interior WAL corruption. *)
val open_or_recover :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?fault:Dsdg_core.Transform2.fault ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  ?read_only:bool ->
  dir:string ->
  unit ->
  Dsdg_core.Dynamic_index.t * info
