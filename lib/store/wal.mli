(** Write-ahead log for a durable index.

    The record format {e is} the {!Dsdg_check.Trace} line format: one
    mutation per line (["+ \"text\""], ["- id"]), preceded by a
    [%]-comment header carrying the serial number of the first record.
    A WAL is therefore a valid trace file -- [dsdg fuzz --replay
    path/to/wal.log] replays it directly -- while the header keeps
    replay aligned with snapshots: a snapshot taken at serial [s]
    covers every record with serial [< s], and recovery replays the
    records [>= s].

    Serial numbers are positional: record [k] (0-based) of a file with
    header serial [s0] has serial [s0 + k]. Failed mutations (a delete
    of a dead id) are logged too -- append happens {e before} apply --
    and replay idempotently re-fails them, so serials stay aligned
    without per-record ids.

    Torn-write rule: the final line of a crashed log may be a partial
    record. Any final line {e not} terminated by a newline is torn and
    is dropped by {!read} (even if its prefix happens to parse -- ["-
    12"] torn from ["- 123"] would otherwise replay the wrong id).
    A malformed line that {e is} newline-terminated was fully written,
    so it is real corruption: {!read} raises
    {!Dsdg_check.Trace.Parse_error} locating it. *)

(** When [append] forces the record to stable storage. [Always] fsyncs
    every record (full durability, the default); [Every n] fsyncs every
    [n] records (bounded loss window, much cheaper); [Never] leaves
    flushing to the OS (survives a process crash, not a power cut). *)
type sync = Always | Every of int | Never

(** Parses the CLI spellings ["always"] / ["every-N"] / ["never"];
    [Error] explains the accepted forms. *)
val sync_of_string : string -> (sync, string) result

(** Inverse of {!sync_of_string}. *)
val sync_to_string : sync -> string

(** An open log, positioned for appending. *)
type t

(** [create ~sync path ~serial0] truncates/creates the file with a
    fresh header. *)
val create : ?sync:sync -> string -> serial0:int -> t

(** Append one record; returns its serial. Flushes to the OS always,
    fsyncs per the {!sync} policy. *)
val append : t -> Dsdg_check.Trace.op -> int

(** [append_batch t ops] appends the whole batch, flushes once, and
    runs the {!sync} policy {e once} for the batch -- under [Always]
    that is a single fsync amortized over every record (group commit);
    under [Every n] the pending-append counter advances by the batch
    length, preserving the "fewer than [n] acknowledged records lost"
    crash window. Returns the serial of the first record ([ops = []]
    appends nothing and returns {!next_serial}). *)
val append_batch : t -> Dsdg_check.Trace.op list -> int

(** Serial the next {!append} will assign. *)
val next_serial : t -> int

(** The exclusive upper bound of the {e stable} prefix: every record
    with a smaller serial has survived an fsync (under [Always] /
    [Every n]); under [Never] this is {!next_serial} -- that policy has
    no durability to offer, so "flushed" is the only bound there is.
    The replication plane ships records strictly below this serial, so
    a follower can never observe a write the leader could still lose. *)
val durable_serial : t -> int

(** The log file this handle appends to. *)
val path : t -> string

(** Force everything appended so far to stable storage. *)
val sync : t -> unit

(** [sync] then close. *)
val close : t -> unit

(** Close the descriptor of a handle whose file has been superseded (a
    compaction renamed a fresh log over it) without any final fsync.
    Using the handle afterwards is an error. *)
val abandon : t -> unit

(** The [Every n] pending-append counter: acknowledged appends since
    the last fsync (always [0] under [Always] and [Never], which never
    advance it). Exposed so regression tests can pin the accounting
    across batches, compaction and reopen. *)
val unsynced : t -> int

(** Crash simulation for the kill-and-recover harness: close the file
    abruptly, with no final fsync; with [torn:true], first append a
    deliberately half-written record (no newline) -- the planted
    [`Torn_write] fault the recovery path must truncate. *)
val kill : t -> torn:bool -> unit

(** {1 Reading} *)

type contents = {
  wc_serial0 : int;  (** header serial *)
  wc_ops : (int * Dsdg_check.Trace.op) list;  (** (serial, op), in order *)
  wc_truncated : bool;  (** a torn final record was dropped *)
  wc_valid_bytes : int;  (** file prefix ending at the last whole record *)
}

(** Parse a log. Raises {!Dsdg_check.Trace.Parse_error} on a missing /
    malformed header or a malformed interior record, [Sys_error] if
    unreadable. A torn final record is dropped, not an error. *)
val read : string -> contents

(** Truncate the file to [wc_valid_bytes], discarding the torn tail on
    disk (idempotent when nothing was torn). *)
val truncate_torn : string -> contents -> unit

(** Reopen an existing (already {!read}, already truncated) log for
    appending. [next_serial] is [wc_serial0 + length wc_ops]. *)
val open_append : ?sync:sync -> string -> next_serial:int -> t

(** [rewrite ~sync path ~serial0 ops] atomically replaces the log with
    a fresh one whose header starts at [serial0] and whose records are
    [ops] -- WAL compaction after a checkpoint installs. With
    [~archive:true] the outgoing log is first hard-linked to
    [<path>.arch.<serial0>] (see {!archives}), so the compacted-away
    records stay shippable to lagging replicas. Returns the reopened
    log. *)
val rewrite : ?sync:sync -> ?archive:bool -> string -> serial0:int -> Dsdg_check.Trace.op list -> t

(** Archive segments next to [path] as [(file, end_serial)] pairs,
    ascending: segment [(f, e)] holds records with serials below [e],
    starting wherever the previous compaction left off (its own header
    records the exact start). Consecutive segments and the live log
    are contiguous in serials unless pruning removed a prefix. *)
val archives : string -> (string * int) list

(** Delete the oldest archive segments, keeping at most [keep]. *)
val prune_archives : string -> keep:int -> unit

(** {1 Tailing}

    A read-side streaming cursor: follow the records of a live log from
    a starting serial while a writer appends (and occasionally compacts)
    concurrently. The reader-side torn-write rule mirrors {!read}'s: a
    final line with no newline yet -- whether a write in flight or a
    genuinely torn record -- is held back until its newline arrives. *)

(** The cursor's next wanted serial was compacted away: the log was
    rewritten to start at a later serial, so the records in between can
    no longer be streamed. The consumer must re-bootstrap (e.g. from a
    snapshot). *)
exception Tail_gap of { wanted : int; serial0 : int }

type cursor

(** [tail ~from path] positions a cursor so the first delivered record
    has serial [>= from]. Nothing is read until the first {!tail_poll};
    the file may not even exist yet. [buf_size] (default 64 KiB) is the
    read-chunk size -- records straddling chunk boundaries are
    reassembled, so tests shrink it to force the boundary cases. *)
val tail : ?buf_size:int -> from:int -> string -> cursor

(** Deliver every complete record appended since the last poll, in
    serial order ([[]] when nothing new). With [~limit], records with
    serial [>= limit] stay queued inside the cursor for a later poll --
    the hook for shipping only up to {!durable_serial}. Detects
    compaction (inode change) and truncation (file shrank) at EOF and
    transparently reopens, skipping forward to the wanted serial.
    Raises {!Tail_gap} if the reopened log starts past it,
    {!Dsdg_check.Trace.Parse_error} on a malformed header or interior
    record. *)
val tail_poll : ?limit:int -> cursor -> (int * Dsdg_check.Trace.op) list

(** Serial the next delivered record will have. *)
val tail_next_serial : cursor -> int

(** Records parsed but held back by [~limit]. *)
val tail_pending : cursor -> int

(** Release the cursor's descriptor (idempotent; the cursor may be
    polled again -- it reopens). *)
val tail_close : cursor -> unit
