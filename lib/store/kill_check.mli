(** Kill-and-recover differential checking.

    For each kill point [k] along an operation sequence, this harness
    runs the first [k] operations through a {!Durable} store, crashes
    it ({!Durable.kill}, optionally with the planted torn-write fault),
    recovers from the directory, and compares the recovered index
    against the {!Dsdg_check.Model} driven over the same prefix --
    membership, extraction of every live document, document counts and
    sampled pattern searches. It then replays the {e remaining}
    operations on both and re-verifies, so a recovery that is correct
    at rest but leaves broken schedule state (wrong nf, wrong cleaning
    counter, resurrectable ids) is caught by the continuation.

    This is the persistence analogue of [Dsdg_check.Runner]: same
    model, same trace currency, crash faults instead of scheduling
    faults. *)

type failure = {
  kf_point : int;  (** kill point: ops applied before the crash *)
  kf_detail : string;
}

type outcome = {
  kc_points : int;  (** kill points exercised *)
  kc_failures : failure list;  (** empty = every recovery checked out *)
}

(** One-line summary, failures included. *)
val outcome_to_string : outcome -> string

(** [sweep ~dir ~ops ()] exercises kill points [0, stride, 2*stride,
    ..., length ops]. [dir] is scratch space, wiped per point. [torn]
    (default [true]) plants the half-written final record. [config]
    defaults to fsync-always with a checkpoint every 7 updates, so the
    sweep crosses snapshot installs as well as pure WAL tails. *)
val sweep :
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?config:Durable.config ->
  ?torn:bool ->
  ?stride:int ->
  dir:string ->
  ops:Dsdg_check.Trace.op list ->
  unit ->
  outcome

(** Remove a scratch directory tree (no-op if absent). Exposed for the
    CLI and tests that manage their own store directories. *)
val reset_dir : string -> unit

(** The differential verifier the sweep applies after each recovery:
    census, membership + full-text extraction of every live document,
    dead-id resurrection, sampled searches -- all against the model.
    Returns human-readable discrepancies (empty = converged). Exposed
    so the replication checkers ([Dsdg_serve.Repl_check]) apply the
    same oracle to promoted followers. *)
val verify :
  label:string -> Dsdg_core.Dynamic_index.t -> Dsdg_check.Model.t -> inserts:int -> string list
