(** Versioned, CRC-checked binary container for the durable artifacts.

    Every file [Dsdg_store] writes -- index snapshots and relation /
    digraph dumps -- shares one framing: a 4-byte magic, a format
    version, a kind tag, then named {e sections}, each carrying its
    payload length and a CRC-32 of the payload. The reader verifies the
    magic, the version, the kind and every checksum before any payload
    is interpreted, so a flipped byte or a truncated file is reported as
    {!Corrupt} (naming the section) rather than decoded into garbage.

    What goes {e inside} the sections is the logical state of the
    structures -- resident documents, deletion bit vectors, schedule
    scalars, pair sets. Derived structures (suffix arrays, BWTs, wavelet
    trees, Reporters) are deliberately never serialized: they are
    deterministic functions of the logical state, rebuilt on load (see
    DESIGN.md section 10 for the trade-off). *)

(** A failed integrity or decoding check: the file, the section (or
    ["header"]), and what was wrong. *)
exception Corrupt of { file : string; section : string; reason : string }

(** Render as ["file: section ...: reason"]. *)
val corrupt_message : file:string -> section:string -> reason:string -> string

(** Current container format version, written into every file. Readers
    reject newer versions (forward compatibility is explicit, not
    accidental). *)
val format_version : int

(** CRC-32 (IEEE 802.3 polynomial), as a non-negative int. *)
val crc32 : string -> int

(** {1 Primitive encoders}

    Little-endian, fixed-width primitives used inside section payloads:
    ints are 8 bytes, strings and bool arrays are length-prefixed. *)

module W : sig
  type t

  (** Fresh growable buffer. *)
  val create : unit -> t

  (** One byte; raises [Invalid_argument] outside [0, 255]. *)
  val u8 : t -> int -> unit

  (** 8 bytes, little-endian, sign-preserving. *)
  val int : t -> int -> unit

  (** Length-prefixed raw bytes. *)
  val string : t -> string -> unit

  (** Bit-packed, length-prefixed. *)
  val bool_array : t -> bool array -> unit

  (** Everything written so far, as a section payload. *)
  val contents : t -> string
end

module R : sig
  type t

  (** [of_string ~file ~section payload]: the labels are only used for
      {!Corrupt} reports on overrun or malformed data. *)
  val of_string : file:string -> section:string -> string -> t

  (** Each decoder below mirrors its {!W} counterpart and raises
      {!Corrupt} (with this reader's file/section) on overrun or
      malformed data. *)
  val u8 : t -> int

  (** Mirrors {!W.int}. *)
  val int : t -> int

  (** Mirrors {!W.string}. *)
  val string : t -> string

  (** Mirrors {!W.bool_array}. *)
  val bool_array : t -> bool array

  (** Whether the whole payload has been consumed. *)
  val at_end : t -> bool

  (** Raise {!Corrupt} for this reader's file/section. *)
  val fail : t -> string -> 'a
end

(** {1 Container files} *)

(** [write_file ~path ~kind sections] writes atomically: the bytes go
    to a temporary file in the same directory, which is fsynced and
    renamed into place, so a crash mid-write leaves either the old file
    or the new one -- never a torn hybrid. *)
val write_file : path:string -> kind:string -> (string * string) list -> unit

(** Validates magic, version, kind and every section CRC; raises
    {!Corrupt} otherwise (and [Sys_error] if unreadable). *)
val read_file : path:string -> kind:string -> (string * string) list

(** {1 Index snapshots}

    A {!Dsdg_core.Dynamic_index.dump} maps to one ["meta"] section
    (variant, backend, sample, tau, epoch, next id, nf, cleaning
    counter, component manifest) plus one ["c:<name>"] section per
    component -- so each structure's documents are independently
    checksummed, and a corrupt component is reported by its census
    name. *)

(** Sections for {!write_file}, in manifest order. *)
val encode_dump : Dsdg_core.Dynamic_index.dump -> (string * string) list

(** Raises {!Corrupt} on a missing/malformed section. *)
val decode_dump : file:string -> (string * string) list -> Dsdg_core.Dynamic_index.dump

(** {1 Relations and graphs}

    A {!Dsdg_binrel.Dyn_binrel.t} (and therefore a
    {!Dsdg_binrel.Digraph.t}, whose snapshot unit is its edge set) is
    persisted as its live pair set. *)

(** [write_relation path pairs] -- atomic, like {!write_file}. *)
val write_relation : string -> (int * int) list -> unit

(** Raises {!Corrupt} on any integrity failure. *)
val read_relation : string -> (int * int) list
