(* Write-ahead log on the Trace line format; semantics documented in
   wal.mli and DESIGN.md section 10. *)

module Trace = Dsdg_check.Trace
open Dsdg_obs

let obs = Obs.scope "store"
let c_appends = Obs.counter obs "wal_appends"
let c_fsyncs = Obs.counter obs "wal_fsyncs"
let c_torn = Obs.counter obs "wal_torn_truncations"
let h_append_ns = Obs.histogram obs "wal_append_ns"
let g_serial = Obs.gauge obs "wal_serial"

type sync = Always | Every of int | Never

let sync_of_string = function
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Every n)
    | _ -> Error (Printf.sprintf "bad sync policy %S (want always, never, or a record count)" s))

let sync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> string_of_int n

type t = {
  path : string;
  oc : out_channel;
  sync_policy : sync;
  mutable next_serial : int;
  mutable unsynced : int;
  mutable synced_serial : int; (* serial covered by the last fsync *)
}

let header_of serial0 = Printf.sprintf "%% dsdg-wal 1 serial0=%d" serial0

let parse_header line =
  try Some (Scanf.sscanf line "%% dsdg-wal 1 serial0=%d%!" (fun s -> s))
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  Obs.incr c_fsyncs

let create ?(sync = Always) path ~serial0 =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc (header_of serial0 ^ "\n");
  fsync_oc oc;
  { path; oc; sync_policy = sync; next_serial = serial0; unsynced = 0; synced_serial = serial0 }

let next_serial t = t.next_serial
let path t = t.path

(* The highest serial known stable: everything below it survived an
   fsync (or, under [Never], at least reached the OS -- that policy has
   no durability to offer).  This is the bound the replication plane
   ships up to, so a follower can never observe a record the leader
   might lose. *)
let durable_serial t =
  match t.sync_policy with Never -> t.next_serial | Always | Every _ -> t.synced_serial

let sync t =
  fsync_oc t.oc;
  t.unsynced <- 0;
  t.synced_serial <- t.next_serial

(* One sync-policy application covering [n] freshly appended records:
   the group-commit primitive. Under [Every k] the pending-append
   counter advances by the whole batch, so the crash-loss window stays
   "fewer than k acknowledged appends" whether records arrive one at a
   time or in batches. *)
let apply_sync_policy t ~appended:n =
  match t.sync_policy with
  | Always ->
    fsync_oc t.oc;
    t.synced_serial <- t.next_serial
  | Every k ->
    t.unsynced <- t.unsynced + n;
    if t.unsynced >= k then begin
      fsync_oc t.oc;
      t.unsynced <- 0;
      t.synced_serial <- t.next_serial
    end
  | Never -> ()

let append t op =
  let t0 = Obs.start () in
  let serial = t.next_serial in
  output_string t.oc (Trace.op_to_string op ^ "\n");
  flush t.oc;
  t.next_serial <- serial + 1;
  apply_sync_policy t ~appended:1;
  Obs.incr c_appends;
  Obs.set_gauge g_serial t.next_serial;
  Obs.stop h_append_ns t0;
  serial

(* Group commit: every record of the batch reaches the OS, then the
   sync policy runs once for the whole batch -- under [Always] that is
   one fsync amortized over [length ops] acknowledged mutations. *)
let append_batch t ops =
  match ops with
  | [] -> t.next_serial
  | _ ->
    let t0 = Obs.start () in
    let serial = t.next_serial in
    let n =
      List.fold_left
        (fun n op ->
          output_string t.oc (Trace.op_to_string op ^ "\n");
          n + 1)
        0 ops
    in
    flush t.oc;
    t.next_serial <- serial + n;
    apply_sync_policy t ~appended:n;
    Obs.add c_appends n;
    Obs.set_gauge g_serial t.next_serial;
    Obs.stop h_append_ns t0;
    serial

let close t =
  sync t;
  close_out_noerr t.oc

(* Release a handle superseded by compaction: its file was already
   renamed over, so there is nothing to fsync -- just drop the fd.
   Without this every [rewrite] leaks the old descriptor. *)
let abandon t = close_out_noerr t.oc

let unsynced t = t.unsynced

(* Crash simulation: no final fsync; [torn] plants a half-written final
   record -- a newline-less prefix of a real Insert line, exactly what a
   power cut mid-[write] leaves behind. *)
let kill t ~torn =
  if torn then begin
    let line = Trace.op_to_string (Trace.Insert "lost to the torn final write") in
    output_string t.oc (String.sub line 0 (String.length line / 2))
  end;
  flush t.oc;
  close_out_noerr t.oc

(* --- reading --- *)

type contents = {
  wc_serial0 : int;
  wc_ops : (int * Trace.op) list;
  wc_truncated : bool;
  wc_valid_bytes : int;
}

let read path =
  let ic = open_in_bin path in
  let data =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)
  in
  let len = String.length data in
  let ops = ref [] in
  let serial0 = ref 0 in
  let seen_header = ref false in
  let serial = ref 0 in
  let lineno = ref 0 in
  let valid = ref 0 in
  let truncated = ref false in
  let pos = ref 0 in
  while !pos < len do
    match String.index_from_opt data !pos '\n' with
    | None ->
      (* final bytes without a newline: a torn record, dropped -- even a
         parseable prefix must not replay (["- 12"] torn from ["- 123"]) *)
      truncated := true;
      pos := len
    | Some nl ->
      incr lineno;
      let line = String.trim (String.sub data !pos (nl - !pos)) in
      pos := nl + 1;
      (if line = "" then ()
       else if line.[0] = '%' then begin
         match parse_header line with
         | Some s0 when not !seen_header ->
           seen_header := true;
           serial0 := s0;
           serial := s0
         | _ -> () (* later comments (and repeated headers) are inert *)
       end
       else
         match Trace.parse_op line with
         | Ok op ->
           ops := (!serial, op) :: !ops;
           incr serial
         | Error reason ->
           raise
             (Trace.Parse_error { pe_line = !lineno; pe_text = line; pe_reason = reason }));
      valid := !pos
  done;
  if not !seen_header then
    raise
      (Trace.Parse_error
         {
           pe_line = 1;
           pe_text = (match String.index_opt data '\n' with
                     | Some nl -> String.sub data 0 nl
                     | None -> data);
           pe_reason = "missing '% dsdg-wal 1 serial0=N' header";
         });
  { wc_serial0 = !serial0; wc_ops = List.rev !ops; wc_truncated = !truncated; wc_valid_bytes = !valid }

let truncate_torn path c =
  if c.wc_truncated then begin
    Unix.truncate path c.wc_valid_bytes;
    Obs.incr c_torn
  end

(* --- tailing --- *)

exception Tail_gap of { wanted : int; serial0 : int }

let () =
  Printexc.register_printer (function
    | Tail_gap { wanted; serial0 } ->
      Some
        (Printf.sprintf
           "Wal.Tail_gap: cursor wants serial %d but the log now starts at serial %d -- the \
            records in between were compacted away"
           wanted serial0)
    | _ -> None)

(* A read-side streaming cursor over a live log.  The writer appends
   (and may compact: rename a fresh file over the path) concurrently;
   the cursor re-parses incrementally from its byte offset:

   - reads arrive in [buf_size] chunks, so a record straddling a chunk
     boundary is reassembled in [cur_partial];
   - a final line with no newline yet is indistinguishable from a torn
     record and from a write in flight -- either way it is held back
     until its newline arrives (the reader-side analogue of the
     torn-write rule);
   - on EOF the path is re-stat'ed: a changed inode or a shrunken file
     means compaction/truncation renamed or cut the log, so the cursor
     reopens from the top, parses the new header, and skips forward to
     the serial it wants -- raising {!Tail_gap} if the fresh log starts
     beyond it. *)
type cursor = {
  cur_path : string;
  cur_buf : Bytes.t;
  mutable cur_fd : Unix.file_descr option;
  mutable cur_ino : int;
  mutable cur_read : int; (* bytes consumed from the open fd *)
  mutable cur_partial : Buffer.t;
  mutable cur_seen_header : bool;
  mutable cur_lineno : int;
  mutable cur_serial : int; (* serial of the next record line in the file *)
  mutable cur_wanted : int; (* next serial to deliver *)
  cur_pending : (int * Trace.op) Queue.t; (* parsed, not yet delivered *)
}

let tail ?(buf_size = 65536) ~from path =
  {
    cur_path = path;
    cur_buf = Bytes.create (max 1 buf_size);
    cur_fd = None;
    cur_ino = -1;
    cur_read = 0;
    cur_partial = Buffer.create 128;
    cur_seen_header = false;
    cur_lineno = 0;
    cur_serial = 0;
    cur_wanted = from;
    cur_pending = Queue.create ();
  }

let tail_next_serial c = c.cur_wanted
let tail_pending c = Queue.length c.cur_pending

let tail_close c =
  match c.cur_fd with
  | Some fd ->
    c.cur_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let tail_reset c =
  tail_close c;
  c.cur_ino <- -1;
  c.cur_read <- 0;
  Buffer.clear c.cur_partial;
  c.cur_seen_header <- false;
  c.cur_lineno <- 0;
  c.cur_serial <- 0;
  (* parsed-but-undelivered records re-parse from the fresh file (which
     must still contain them, or Tail_gap fires on its header) *)
  Queue.clear c.cur_pending

let tail_line c line =
  c.cur_lineno <- c.cur_lineno + 1;
  let line = String.trim line in
  if not c.cur_seen_header then begin
    match parse_header line with
    | Some s0 ->
      c.cur_seen_header <- true;
      c.cur_serial <- s0;
      if s0 > c.cur_wanted then raise (Tail_gap { wanted = c.cur_wanted; serial0 = s0 })
    | None ->
      raise
        (Trace.Parse_error
           {
             pe_line = c.cur_lineno;
             pe_text = line;
             pe_reason = "missing '% dsdg-wal 1 serial0=N' header";
           })
  end
  else if line = "" || line.[0] = '%' then ()
  else
    match Trace.parse_op line with
    | Ok op ->
      let serial = c.cur_serial in
      c.cur_serial <- serial + 1;
      if serial >= c.cur_wanted then Queue.add (serial, op) c.cur_pending
    | Error reason ->
      raise (Trace.Parse_error { pe_line = c.cur_lineno; pe_text = line; pe_reason = reason })

(* Pull whatever the file has beyond our offset into the pending queue.
   Complete lines only; the trailing newline-less fragment stays in
   [cur_partial] for the next poll. *)
let tail_fill c =
  (match c.cur_fd with
  | Some _ -> ()
  | None -> (
    match Unix.openfile c.cur_path [ Unix.O_RDONLY ] 0 with
    | fd ->
      c.cur_fd <- Some fd;
      c.cur_ino <- (Unix.fstat fd).Unix.st_ino
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()));
  match c.cur_fd with
  | None -> false
  | Some fd ->
    let reopened = ref false in
    let continue = ref true in
    while !continue do
      let n = Unix.read fd c.cur_buf 0 (Bytes.length c.cur_buf) in
      if n = 0 then begin
        continue := false;
        (* EOF: detect compaction (inode changed) or truncation (file
           shrank below what we already consumed). *)
        match Unix.stat c.cur_path with
        | st ->
          if st.Unix.st_ino <> c.cur_ino || st.Unix.st_size < c.cur_read then begin
            tail_reset c;
            reopened := true
          end
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
      end
      else begin
        c.cur_read <- c.cur_read + n;
        for i = 0 to n - 1 do
          let ch = Bytes.get c.cur_buf i in
          if ch = '\n' then begin
            let line = Buffer.contents c.cur_partial in
            Buffer.clear c.cur_partial;
            tail_line c line
          end
          else Buffer.add_char c.cur_partial ch
        done
      end
    done;
    !reopened

let rec tail_poll ?limit c =
  if tail_fill c then tail_poll ?limit c
  else begin
    let out = ref [] in
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty c.cur_pending) do
      let serial, _ = Queue.peek c.cur_pending in
      match limit with
      | Some l when serial >= l -> stop := true
      | _ ->
        let item = Queue.pop c.cur_pending in
        c.cur_wanted <- serial + 1;
        out := item :: !out
    done;
    List.rev !out
  end

let open_append ?(sync = Always) path ~next_serial =
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  { path; oc; sync_policy = sync; next_serial; unsynced = 0; synced_serial = next_serial }

(* --- archive segments --- *)

(* Compaction with [~archive:true] preserves the outgoing log as an
   immutable segment named by its exclusive end serial: [wal.arch.N]
   holds the records below [N] that the live log no longer starts at.
   This is the replication horizon -- a follower that lags past a
   checkpoint can still be shipped the compacted-away records from the
   archive instead of being forced into a snapshot re-seed. *)
let archive_path path ~serial_end = Printf.sprintf "%s.arch.%d" path serial_end

(* Archive segments next to [path], sorted by ascending end serial. *)
let archives path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".arch." in
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun name ->
           if String.starts_with ~prefix name then
             Option.map
               (fun e -> (Filename.concat dir name, e))
               (int_of_string_opt
                  (String.sub name (String.length prefix)
                     (String.length name - String.length prefix)))
           else None)
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  | exception Sys_error _ -> []

let prune_archives path ~keep =
  let ar = archives path in
  let excess = List.length ar - max 0 keep in
  if excess > 0 then
    List.iteri
      (fun i (p, _) -> if i < excess then try Sys.remove p with Sys_error _ -> ())
      ar

(* Compaction: fresh log in a temporary file, fsynced, renamed over the
   old one.  The returned handle holds the (still valid) fd of the
   renamed file. *)
let rewrite ?(sync = Always) ?(archive = false) path ~serial0 ops =
  let tmp = path ^ ".tmp" in
  let t = create ~sync tmp ~serial0 in
  List.iter (fun op -> ignore (append t op)) ops;
  fsync_oc t.oc;
  t.unsynced <- 0;
  t.synced_serial <- t.next_serial;
  (* hard-link the outgoing log into the archive before the rename
     replaces it -- the old records stay reachable without any copy
     (EEXIST = a zero-update checkpoint reused the end serial: the
     existing segment already covers it) *)
  if archive then
    (try Unix.link path (archive_path path ~serial_end:serial0)
     with Unix.Unix_error _ -> ());
  Unix.rename tmp path;
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  { t with path }
