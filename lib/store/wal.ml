(* Write-ahead log on the Trace line format; semantics documented in
   wal.mli and DESIGN.md section 10. *)

module Trace = Dsdg_check.Trace
open Dsdg_obs

let obs = Obs.scope "store"
let c_appends = Obs.counter obs "wal_appends"
let c_fsyncs = Obs.counter obs "wal_fsyncs"
let c_torn = Obs.counter obs "wal_torn_truncations"
let h_append_ns = Obs.histogram obs "wal_append_ns"
let g_serial = Obs.gauge obs "wal_serial"

type sync = Always | Every of int | Never

let sync_of_string = function
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Every n)
    | _ -> Error (Printf.sprintf "bad sync policy %S (want always, never, or a record count)" s))

let sync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> string_of_int n

type t = {
  path : string;
  oc : out_channel;
  sync_policy : sync;
  mutable next_serial : int;
  mutable unsynced : int;
}

let header_of serial0 = Printf.sprintf "%% dsdg-wal 1 serial0=%d" serial0

let parse_header line =
  try Some (Scanf.sscanf line "%% dsdg-wal 1 serial0=%d%!" (fun s -> s))
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  Obs.incr c_fsyncs

let create ?(sync = Always) path ~serial0 =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc (header_of serial0 ^ "\n");
  fsync_oc oc;
  { path; oc; sync_policy = sync; next_serial = serial0; unsynced = 0 }

let next_serial t = t.next_serial
let path t = t.path

let sync t =
  fsync_oc t.oc;
  t.unsynced <- 0

(* One sync-policy application covering [n] freshly appended records:
   the group-commit primitive. Under [Every k] the pending-append
   counter advances by the whole batch, so the crash-loss window stays
   "fewer than k acknowledged appends" whether records arrive one at a
   time or in batches. *)
let apply_sync_policy t ~appended:n =
  match t.sync_policy with
  | Always -> fsync_oc t.oc
  | Every k ->
    t.unsynced <- t.unsynced + n;
    if t.unsynced >= k then begin
      fsync_oc t.oc;
      t.unsynced <- 0
    end
  | Never -> ()

let append t op =
  let t0 = Obs.start () in
  let serial = t.next_serial in
  output_string t.oc (Trace.op_to_string op ^ "\n");
  flush t.oc;
  t.next_serial <- serial + 1;
  apply_sync_policy t ~appended:1;
  Obs.incr c_appends;
  Obs.set_gauge g_serial t.next_serial;
  Obs.stop h_append_ns t0;
  serial

(* Group commit: every record of the batch reaches the OS, then the
   sync policy runs once for the whole batch -- under [Always] that is
   one fsync amortized over [length ops] acknowledged mutations. *)
let append_batch t ops =
  match ops with
  | [] -> t.next_serial
  | _ ->
    let t0 = Obs.start () in
    let serial = t.next_serial in
    let n =
      List.fold_left
        (fun n op ->
          output_string t.oc (Trace.op_to_string op ^ "\n");
          n + 1)
        0 ops
    in
    flush t.oc;
    t.next_serial <- serial + n;
    apply_sync_policy t ~appended:n;
    Obs.add c_appends n;
    Obs.set_gauge g_serial t.next_serial;
    Obs.stop h_append_ns t0;
    serial

let close t =
  sync t;
  close_out_noerr t.oc

(* Release a handle superseded by compaction: its file was already
   renamed over, so there is nothing to fsync -- just drop the fd.
   Without this every [rewrite] leaks the old descriptor. *)
let abandon t = close_out_noerr t.oc

let unsynced t = t.unsynced

(* Crash simulation: no final fsync; [torn] plants a half-written final
   record -- a newline-less prefix of a real Insert line, exactly what a
   power cut mid-[write] leaves behind. *)
let kill t ~torn =
  if torn then begin
    let line = Trace.op_to_string (Trace.Insert "lost to the torn final write") in
    output_string t.oc (String.sub line 0 (String.length line / 2))
  end;
  flush t.oc;
  close_out_noerr t.oc

(* --- reading --- *)

type contents = {
  wc_serial0 : int;
  wc_ops : (int * Trace.op) list;
  wc_truncated : bool;
  wc_valid_bytes : int;
}

let read path =
  let ic = open_in_bin path in
  let data =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)
  in
  let len = String.length data in
  let ops = ref [] in
  let serial0 = ref 0 in
  let seen_header = ref false in
  let serial = ref 0 in
  let lineno = ref 0 in
  let valid = ref 0 in
  let truncated = ref false in
  let pos = ref 0 in
  while !pos < len do
    match String.index_from_opt data !pos '\n' with
    | None ->
      (* final bytes without a newline: a torn record, dropped -- even a
         parseable prefix must not replay (["- 12"] torn from ["- 123"]) *)
      truncated := true;
      pos := len
    | Some nl ->
      incr lineno;
      let line = String.trim (String.sub data !pos (nl - !pos)) in
      pos := nl + 1;
      (if line = "" then ()
       else if line.[0] = '%' then begin
         match parse_header line with
         | Some s0 when not !seen_header ->
           seen_header := true;
           serial0 := s0;
           serial := s0
         | _ -> () (* later comments (and repeated headers) are inert *)
       end
       else
         match Trace.parse_op line with
         | Ok op ->
           ops := (!serial, op) :: !ops;
           incr serial
         | Error reason ->
           raise
             (Trace.Parse_error { pe_line = !lineno; pe_text = line; pe_reason = reason }));
      valid := !pos
  done;
  if not !seen_header then
    raise
      (Trace.Parse_error
         {
           pe_line = 1;
           pe_text = (match String.index_opt data '\n' with
                     | Some nl -> String.sub data 0 nl
                     | None -> data);
           pe_reason = "missing '% dsdg-wal 1 serial0=N' header";
         });
  { wc_serial0 = !serial0; wc_ops = List.rev !ops; wc_truncated = !truncated; wc_valid_bytes = !valid }

let truncate_torn path c =
  if c.wc_truncated then begin
    Unix.truncate path c.wc_valid_bytes;
    Obs.incr c_torn
  end

let open_append ?(sync = Always) path ~next_serial =
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  { path; oc; sync_policy = sync; next_serial; unsynced = 0 }

(* Compaction: fresh log in a temporary file, fsynced, renamed over the
   old one.  The returned handle holds the (still valid) fd of the
   renamed file. *)
let rewrite ?(sync = Always) path ~serial0 ops =
  let tmp = path ^ ".tmp" in
  let t = create ~sync tmp ~serial0 in
  List.iter (fun op -> ignore (append t op)) ops;
  fsync_oc t.oc;
  t.unsynced <- 0;
  Unix.rename tmp path;
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  { t with path }
