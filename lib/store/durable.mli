(** A {!Dsdg_core.Dynamic_index} with durability: write-ahead logging
    of every mutation, periodic checkpoints, crash recovery on open.

    Log-ahead contract: {!insert} and {!delete} append the mutation to
    the WAL (and fsync, per the {!Wal.sync} policy) {e before} applying
    it, so any update whose effect was ever observable is on stable
    storage. Queries go straight to the index and are never logged.

    Checkpointing: every [checkpoint_every] updates the index state is
    snapshotted and the WAL is compacted to the records since. With
    [checkpoint_jobs >= 1] the expensive part -- extracting and
    serializing the documents of the published view -- runs on a
    {!Dsdg_exec.Executor} worker domain against the immutable
    read-plane view, Transformation 2 style: the writer only captures
    the O(1) scalars at the trigger update and installs the finished
    file (rename + WAL compaction) at a later update boundary, so
    update latency stays flat while checkpoints happen. *)

type config = {
  sync : Wal.sync;  (** WAL fsync policy (default [Always]) *)
  checkpoint_every : int;  (** updates between checkpoints; [0] = only explicit {!checkpoint} *)
  checkpoint_jobs : int;  (** worker domains for checkpoint serialization; [0] = synchronous *)
  keep_snapshots : int;  (** snapshots retained after a new one installs (>= 1) *)
  wal_archives : int;
      (** compacted WAL segments kept as {!Wal.archives} so lagging
          replicas can still be shipped pre-checkpoint records; [0]
          disables archiving (default 4) *)
}

(** [Always] fsync, checkpoint only on demand, synchronous
    serialization, one retained snapshot. *)
val default_config : config

type t

(** Open a store directory, running crash recovery if it has prior
    state (see {!Recovery.open_or_recover} for parameter semantics and
    exceptions). Creates the directory and a fresh WAL as needed. *)
val open_ :
  ?config:config ->
  ?variant:Dsdg_core.Dynamic_index.variant ->
  ?backend:Dsdg_core.Dynamic_index.backend ->
  ?sample:int ->
  ?tau:int ->
  ?fault:Dsdg_core.Transform2.fault ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  dir:string ->
  unit ->
  t * Recovery.info

(** The store directory this handle was opened on. *)
val dir : t -> string

(** The wrapped index, for queries (search/count/extract/views/stats).
    Mutating it directly bypasses the WAL -- use {!insert}/{!delete}. *)
val index : t -> Dsdg_core.Dynamic_index.t

(** WAL-append + fsync, then apply; returns the new document id. *)
val insert : t -> string -> int

(** WAL-append + fsync, then apply; [false] if the document was already
    dead (the record still lands in the log and replays idempotently). *)
val delete : t -> int -> bool

(** Outcome of one mutation of a batch, in batch order. *)
type batch_result = Br_inserted of int | Br_deleted of bool

(** [apply_batch t ops] is the group-commit write path: the whole batch
    is WAL-appended and the fsync policy runs {e once}
    ({!Wal.append_batch}) before any mutation is applied, so under
    [Always] an arbitrarily large batch costs a single fsync and every
    acknowledged mutation is durable. Only [Insert]/[Delete] ops are
    legal; anything else raises [Invalid_argument] before the log is
    touched. [apply_batch t [op]] is equivalent to {!insert}/{!delete}. *)
val apply_batch : t -> Dsdg_check.Trace.op list -> batch_result list

(** Serial the next mutation will be logged under. *)
val wal_serial : t -> int

(** Exclusive upper bound of the stable WAL prefix
    ({!Wal.durable_serial}) -- what the replication plane may ship. *)
val durable_serial : t -> int

(** The live WAL file (the path a replication stream tails; compaction
    atomically renames a fresh log over it). *)
val wal_path : t -> string

(** Force an fsync of the WAL now, advancing {!durable_serial} to
    {!wal_serial} -- the leader's idle-flush hook under lazy sync
    policies. *)
val sync_wal : t -> unit

(** {1 Pinned-view backups}

    {!pin} freezes the published view {e and} its WAL serial (and the
    O(1) writer scalars a consistent dump needs) at one update boundary;
    {!backup} then serializes that frozen state while the writer keeps
    mutating. *)

type pin

(** Pin the current state. Call between updates on the writer thread. *)
val pin : t -> pin

(** Read-plane epoch of the pinned view. *)
val pin_epoch : pin -> int

(** WAL serial the pinned view is aligned with: the pinned state is
    exactly the effect of every record with a smaller serial. *)
val pin_serial : pin -> int

(** Release the pin ({!Dsdg_core.Dynamic_index.unpin}). *)
val unpin : t -> pin -> unit

(** [backup t p ~dest] writes the pinned state into [dest] as a fresh,
    immediately openable store directory (one snapshot at the pinned
    serial, no WAL) and returns the snapshot path. O(n) in the pinned
    view; safe while the writer proceeds. *)
val backup : t -> pin -> dest:string -> string

(** Force a checkpoint now, synchronously: any in-flight background
    checkpoint is awaited and installed first, then a fresh snapshot of
    the current state is written and the WAL is compacted to empty. *)
val checkpoint : t -> unit

(** Finish in-flight checkpoints, fsync the WAL, release worker
    domains, close the index. The store reopens with zero replay work
    after a {!checkpoint}; otherwise reopening replays the WAL tail. *)
val close : t -> unit

(** Crash simulation for the kill-and-recover harness: abandon the
    store with no draining, no checkpoint install and no final fsync;
    [torn:true] plants a half-written final WAL record ({!Wal.kill}).
    Worker domains are joined (a process-level courtesy the real crash
    would not extend) but no store file is touched beyond the torn
    bytes. The [t] is unusable afterwards; reopen with {!open_}. *)
val kill : t -> torn:bool -> unit
