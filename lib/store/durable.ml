(* Durable index wrapper: WAL-ahead updates, checkpoint scheduling,
   crash simulation.  Contracts documented in durable.mli and DESIGN.md
   section 10. *)

module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
module Exec = Dsdg_exec.Executor
open Dsdg_obs

let obs = Obs.scope "store"
let c_checkpoints = Obs.counter obs "checkpoints"
let c_checkpoints_bg = Obs.counter obs "checkpoints_bg"
let c_checkpoint_failures = Obs.counter obs "checkpoint_failures"
let h_checkpoint_ns = Obs.histogram obs "checkpoint_ns"
let h_install_ns = Obs.histogram obs "checkpoint_install_ns"

type config = {
  sync : Wal.sync;
  checkpoint_every : int;
  checkpoint_jobs : int;
  keep_snapshots : int;
  wal_archives : int;
}

let default_config =
  { sync = Wal.Always; checkpoint_every = 0; checkpoint_jobs = 0; keep_snapshots = 2; wal_archives = 4 }

(* One in-flight background checkpoint: the worker serializes the view
   into [p_tmp]; the writer buffers every mutation logged since the
   trigger so WAL compaction at install time can rewrite the tail
   without re-reading the file. *)
type pending = {
  p_handle : unit Exec.handle;
  p_tmp : string;
  p_serial : int;
  mutable p_tail : Trace.op list; (* newest first *)
}

type t = {
  dir : string;
  idx : Di.t;
  cfg : config;
  exec : Exec.t option;
  mutable wal : Wal.t;
  mutable pending : pending option;
  mutable updates_since_checkpoint : int;
  mutable closed : bool;
}

let dir t = t.dir
let index t = t.idx
let wal_serial t = Wal.next_serial t.wal
let durable_serial t = Wal.durable_serial t.wal
let wal_path t = Wal.path t.wal
let sync_wal t = Wal.sync t.wal

let open_ ?(config = default_config) ?variant ?backend ?sample ?tau ?fault ?jobs ?readers
    ?seq_backend ?retain_epochs ~dir () =
  let idx, info =
    Recovery.open_or_recover ?variant ?backend ?sample ?tau ?fault ?jobs ?readers ?seq_backend
      ?retain_epochs ~dir ()
  in
  Snapshot.ensure_dir dir;
  let wal_file = Recovery.wal_path ~dir in
  let wal =
    if Sys.file_exists wal_file then
      Wal.open_append ~sync:config.sync wal_file ~next_serial:info.Recovery.ri_next_serial
    else Wal.create ~sync:config.sync wal_file ~serial0:info.Recovery.ri_next_serial
  in
  let exec =
    if config.checkpoint_jobs > 0 then
      Some (Exec.create ~obs:(Obs.private_scope "store/checkpoint") ~workers:config.checkpoint_jobs ())
    else None
  in
  ( {
      dir;
      idx;
      cfg = { config with keep_snapshots = max 1 config.keep_snapshots };
      exec;
      wal;
      pending = None;
      updates_since_checkpoint = 0;
      closed = false;
    },
    info )

(* --- checkpointing --- *)

(* Install a finished snapshot: rename the worker's scratch file to its
   canonical name, prune old snapshots, compact the WAL down to the
   records logged since the trigger.  Runs on the writer, at an update
   boundary -- the paper's install-point pattern. *)
let install t ~tmp ~serial ~tail =
  let t0 = Obs.start () in
  Unix.rename tmp (Snapshot.path_for ~dir:t.dir ~wal_serial:serial);
  Snapshot.prune ~dir:t.dir ~keep:t.cfg.keep_snapshots;
  let old = t.wal in
  t.wal <-
    Wal.rewrite ~sync:t.cfg.sync ~archive:(t.cfg.wal_archives > 0) (Wal.path t.wal)
      ~serial0:serial (List.rev tail);
  Wal.abandon old;
  Wal.prune_archives (Wal.path t.wal) ~keep:t.cfg.wal_archives;
  Obs.incr c_checkpoints;
  Obs.stop h_install_ns t0

let poll_pending t =
  match (t.pending, t.exec) with
  | Some p, Some ex -> (
    match Exec.poll ex p.p_handle with
    | `Pending -> ()
    | `Done () ->
      t.pending <- None;
      install t ~tmp:p.p_tmp ~serial:p.p_serial ~tail:p.p_tail
    | `Failed _ | `Cancelled ->
      t.pending <- None;
      Obs.incr c_checkpoint_failures;
      (try Sys.remove p.p_tmp with Sys_error _ -> ()))
  | _ -> ()

let await_pending t =
  match (t.pending, t.exec) with
  | Some p, Some ex -> (
    match Exec.await ex p.p_handle with
    | `Done () ->
      t.pending <- None;
      install t ~tmp:p.p_tmp ~serial:p.p_serial ~tail:p.p_tail
    | `Failed _ | `Cancelled ->
      t.pending <- None;
      Obs.incr c_checkpoint_failures;
      (try Sys.remove p.p_tmp with Sys_error _ -> ()))
  | _ -> ()

(* Synchronous checkpoint of the current published state. *)
let checkpoint_now t =
  let t0 = Obs.start () in
  let v = Di.view t.idx in
  let serial = Wal.next_serial t.wal in
  let dump = Di.checkpoint_body (Di.checkpoint_header t.idx v) v in
  ignore (Snapshot.save ~dir:t.dir ~wal_serial:serial dump);
  Snapshot.prune ~dir:t.dir ~keep:t.cfg.keep_snapshots;
  let old = t.wal in
  t.wal <-
    Wal.rewrite ~sync:t.cfg.sync ~archive:(t.cfg.wal_archives > 0) (Wal.path t.wal)
      ~serial0:serial [];
  Wal.abandon old;
  Wal.prune_archives (Wal.path t.wal) ~keep:t.cfg.wal_archives;
  t.updates_since_checkpoint <- 0;
  Obs.incr c_checkpoints;
  Obs.stop h_checkpoint_ns t0

(* Trigger a background checkpoint: capture the O(1) header on the
   writer, hand the O(n) extraction + serialization of the immutable
   view to a worker domain.  The scratch file carries a non-snapshot
   suffix so a crash before install leaves debris recovery ignores. *)
let checkpoint_bg t ex =
  let v = Di.view t.idx in
  let serial = Wal.next_serial t.wal in
  let header = Di.checkpoint_header t.idx v in
  let tmp = Filename.concat t.dir (Printf.sprintf "snap-%d.dsdg.bg" serial) in
  let handle =
    Exec.submit ex ~name:"checkpoint" (fun _tick ->
        let t0 = Obs.start () in
        let dump = Di.checkpoint_body header v in
        Snapshot.write ~path:tmp ~wal_serial:serial dump;
        Obs.incr c_checkpoints_bg;
        Obs.stop h_checkpoint_ns t0)
  in
  t.pending <- Some { p_handle = handle; p_tmp = tmp; p_serial = serial; p_tail = [] }

let after_update t op =
  (match t.pending with Some p -> p.p_tail <- op :: p.p_tail | None -> ());
  t.updates_since_checkpoint <- t.updates_since_checkpoint + 1;
  poll_pending t;
  if
    t.cfg.checkpoint_every > 0
    && t.updates_since_checkpoint >= t.cfg.checkpoint_every
    && t.pending = None
  then begin
    t.updates_since_checkpoint <- 0;
    match t.exec with None -> checkpoint_now t | Some ex -> checkpoint_bg t ex
  end

let check_open t = if t.closed then invalid_arg "Durable: store is closed"

(* Log-ahead: the record reaches the WAL (and, under [Always], the
   disk) before the index mutates, so no observable update can be lost
   -- at worst a logged mutation is re-applied by recovery. *)
let insert t text =
  check_open t;
  let op = Trace.Insert text in
  ignore (Wal.append t.wal op);
  let id = Di.insert t.idx text in
  after_update t op;
  id

let delete t id =
  check_open t;
  let op = Trace.Delete id in
  ignore (Wal.append t.wal op);
  let ok = Di.delete t.idx id in
  after_update t op;
  ok

type batch_result = Br_inserted of int | Br_deleted of bool

(* Group commit: the whole batch is logged (and fsynced once, per the
   policy) before any of it is applied, so a batch acknowledged to a
   client is durable as a unit -- a crash either replays all of it or
   none of the unacknowledged suffix. *)
let apply_batch t ops =
  check_open t;
  List.iter
    (function
      | Trace.Insert _ | Trace.Delete _ -> ()
      | op ->
        invalid_arg
          (Printf.sprintf "Durable.apply_batch: %S is not a mutation" (Trace.op_to_string op)))
    ops;
  ignore (Wal.append_batch t.wal ops);
  List.map
    (fun op ->
      let r =
        match op with
        | Trace.Insert text -> Br_inserted (Di.insert t.idx text)
        | Trace.Delete id -> Br_deleted (Di.delete t.idx id)
        | _ -> assert false
      in
      after_update t op;
      r)
    ops

let checkpoint t =
  check_open t;
  await_pending t;
  checkpoint_now t

(* --- pinned-view backups --- *)

(* A pin captures the whole epoch<->serial correspondence at one update
   boundary on the writer: the immutable view, the WAL serial it is
   aligned with, and the O(1) writer scalars ([checkpoint_header]) that
   a consistent dump of that view needs.  The writer can then proceed --
   the backup serializes the frozen state, not the live one. *)
type pin = { pv_pin : Di.pin; pv_serial : int; pv_header : Di.dump }

let pin t =
  check_open t;
  let p = Di.pin t.idx in
  let serial = Wal.next_serial t.wal in
  { pv_pin = p; pv_serial = serial; pv_header = Di.checkpoint_header t.idx (Di.pin_view p) }

let pin_epoch p = Di.pin_epoch p.pv_pin
let pin_serial p = p.pv_serial
let unpin t p = Di.unpin t.idx p.pv_pin

(* Write the pinned state as a fresh store directory: one snapshot at
   the pinned serial, no WAL (recovery of a WAL-less directory starts at
   the snapshot serial with zero replay).  Returns the snapshot path. *)
let backup t p ~dest =
  check_open t;
  let dump = Di.checkpoint_body p.pv_header (Di.pin_view p.pv_pin) in
  Snapshot.save ~dir:dest ~wal_serial:p.pv_serial dump

let close t =
  if not t.closed then begin
    t.closed <- true;
    await_pending t;
    Wal.close t.wal;
    (match t.exec with Some ex -> Exec.shutdown ex | None -> ());
    Di.close t.idx
  end

(* Crash simulation: abandon everything.  An in-flight checkpoint job
   is cancelled (its scratch file, if any, is crash debris recovery
   ignores); the WAL gets no final fsync and, with [torn], a half
   record.  Worker domains are joined only so the test process does not
   leak them. *)
let kill t ~torn =
  if not t.closed then begin
    t.closed <- true;
    (match (t.pending, t.exec) with
    | Some p, Some ex -> Exec.cancel ex p.p_handle
    | _ -> ());
    Wal.kill t.wal ~torn;
    (match t.exec with Some ex -> Exec.shutdown ex | None -> ());
    Di.close t.idx
  end
