(* Kill-and-recover differential checking; harness shape documented in
   kill_check.mli and DESIGN.md section 10. *)

module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
module Model = Dsdg_check.Model

type failure = { kf_point : int; kf_detail : string }
type outcome = { kc_points : int; kc_failures : failure list }

let outcome_to_string o =
  if o.kc_failures = [] then Printf.sprintf "kill-check: %d kill point(s), all recovered" o.kc_points
  else
    Printf.sprintf "kill-check: %d kill point(s), %d FAILURE(S)\n%s" o.kc_points
      (List.length o.kc_failures)
      (String.concat "\n"
         (List.map (fun f -> Printf.sprintf "  point %d: %s" f.kf_point f.kf_detail) o.kc_failures))

let rec reset_dir path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> reset_dir (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Drive one op into the durable store + model.  Inserts assert the
   id contract (k-th insert gets id k on both sides); queries exercise
   the index but are not compared here -- the crash-point verification
   is the differential check. *)
let apply d m inserts (op : Trace.op) =
  match op with
  | Trace.Insert s ->
    let a = Durable.insert d s in
    let b = Model.insert m s in
    incr inserts;
    if a <> b then failwith (Printf.sprintf "insert id drift: structure %d, model %d" a b)
  | Trace.Delete id ->
    ignore (Durable.delete d id);
    ignore (Model.delete m id)
  | Trace.Search p -> ( try ignore (Di.search (Durable.index d) p) with Invalid_argument _ -> ())
  | Trace.Count p -> ( try ignore (Di.count (Durable.index d) p) with Invalid_argument _ -> ())
  | Trace.Extract { doc; off; len } -> ignore (Di.extract (Durable.index d) ~doc ~off ~len)
  | Trace.Mem id -> ignore (Di.mem (Durable.index d) id)
  | Trace.Drain -> Di.drain (Durable.index d)

(* Compare the recovered index against the model: census, membership
   and full-text extraction of every live document, death of every
   dead id, and pattern searches sampled from the live texts. *)
let verify ~label idx m ~inserts =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> if List.length !errs < 5 then errs := s :: !errs) fmt in
  let live = Model.live m in
  if Di.doc_count idx <> Model.doc_count m then
    err "%s: doc_count %d, model %d" label (Di.doc_count idx) (Model.doc_count m);
  if Di.total_symbols idx <> Model.total_symbols m then
    err "%s: total_symbols %d, model %d" label (Di.total_symbols idx) (Model.total_symbols m);
  List.iter
    (fun (id, text) ->
      if not (Di.mem idx id) then err "%s: live doc %d not mem" label id
      else
        match Di.extract idx ~doc:id ~off:0 ~len:(String.length text) with
        | Some s when s = text -> ()
        | Some s -> err "%s: doc %d extracts %S, model %S" label id s text
        | None -> err "%s: doc %d extract failed" label id)
    live;
  for id = 0 to inserts - 1 do
    if not (List.mem_assoc id live) && Di.mem idx id then err "%s: dead doc %d resurrected" label id
  done;
  let sampled =
    List.filteri (fun i _ -> i < 6) live
    |> List.filter_map (fun (_, text) ->
           if String.length text >= 2 then Some (String.sub text 0 (min 3 (String.length text)))
           else None)
  in
  let patterns = List.sort_uniq compare ("ab" :: sampled) in
  List.iter
    (fun p ->
      let got = Di.search idx p in
      let want = Model.search m p in
      if got <> want then
        err "%s: search %S reports %d occurrence(s), model %d" label p (List.length got)
          (List.length want))
    patterns;
  List.rev !errs

let default_sweep_config =
  { Durable.sync = Wal.Always; checkpoint_every = 7; checkpoint_jobs = 0; keep_snapshots = 2; wal_archives = 4 }

let sweep ?variant ?backend ?sample ?tau ?seq_backend ?(config = default_sweep_config)
    ?(torn = true) ?(stride = 1) ~dir ~ops () =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let stride = max 1 stride in
  let failures = ref [] in
  let points = ref 0 in
  let point k =
    incr points;
    reset_dir dir;
    let d, _ = Durable.open_ ~config ?variant ?backend ?sample ?tau ?seq_backend ~dir () in
    let m = Model.create () in
    let inserts = ref 0 in
    let fail detail = failures := { kf_point = k; kf_detail = detail } :: !failures in
    match
      for i = 0 to k - 1 do
        apply d m inserts ops.(i)
      done;
      Durable.kill d ~torn;
      let d2, _ = Durable.open_ ~config ?variant ?backend ?sample ?tau ?seq_backend ~dir () in
      List.iter fail (verify ~label:"after recovery" (Durable.index d2) m ~inserts:!inserts);
      for i = k to n - 1 do
        apply d2 m inserts ops.(i)
      done;
      List.iter fail (verify ~label:"after continuation" (Durable.index d2) m ~inserts:!inserts);
      Durable.close d2
    with
    | () -> ()
    | exception e -> fail (Printf.sprintf "exception: %s" (Printexc.to_string e))
  in
  let k = ref 0 in
  while !k < n do
    point !k;
    k := !k + stride
  done;
  point n;
  reset_dir dir;
  { kc_points = !points; kc_failures = List.rev !failures }
