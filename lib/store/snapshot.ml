(* Whole-index snapshots; layout documented in snapshot.mli. *)

module Di = Dsdg_core.Dynamic_index
open Dsdg_obs

let obs = Obs.scope "store"
let c_saves = Obs.counter obs "snapshot_saves"
let c_loads = Obs.counter obs "snapshot_loads"
let h_save_ns = Obs.histogram obs "snapshot_save_ns"
let h_load_ns = Obs.histogram obs "snapshot_load_ns"
let g_bytes = Obs.gauge obs "snapshot_bytes"

let path_for ~dir ~wal_serial = Filename.concat dir (Printf.sprintf "snap-%d.dsdg" wal_serial)

let serial_of_name name =
  try Scanf.sscanf name "snap-%d.dsdg%!" (fun s -> Some s)
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

(* The "store" section is the epoch<->serial correspondence made
   durable: [wal_serial] names the WAL prefix the snapshot covers,
   [epoch] the published read-plane epoch at capture time -- so an
   epoch names a durable prefix, not just an in-memory counter.  Old
   files carry only the serial; [epoch] then falls back to the dump's
   [dm_epoch] on full loads and [0] on header-only reads. *)
let store_section ~wal_serial ~epoch =
  let b = Codec.W.create () in
  Codec.W.int b wal_serial;
  Codec.W.int b epoch;
  ("store", Codec.W.contents b)

let read_store_section ~path payload =
  let r = Codec.R.of_string ~file:path ~section:"store" payload in
  let wal_serial = Codec.R.int r in
  let epoch = if Codec.R.at_end r then None else Some (Codec.R.int r) in
  (wal_serial, epoch)

let write ~path ~wal_serial dump =
  let t0 = Obs.start () in
  Codec.write_file ~path ~kind:"snapshot"
    (store_section ~wal_serial ~epoch:dump.Di.dm_epoch :: Codec.encode_dump dump);
  Obs.incr c_saves;
  (try Obs.set_gauge g_bytes (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> ());
  Obs.stop h_save_ns t0

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~wal_serial dump =
  ensure_dir dir;
  let path = path_for ~dir ~wal_serial in
  write ~path ~wal_serial dump;
  path

let load path =
  let t0 = Obs.start () in
  let sections = Codec.read_file ~path ~kind:"snapshot" in
  let wal_serial =
    match List.assoc_opt "store" sections with
    | None -> raise (Codec.Corrupt { file = path; section = "store"; reason = "section missing" })
    | Some payload -> fst (read_store_section ~path payload)
  in
  let dump = Codec.decode_dump ~file:path sections in
  Obs.incr c_loads;
  Obs.stop h_load_ns t0;
  (dump, wal_serial)

let info path =
  let sections = Codec.read_file ~path ~kind:"snapshot" in
  match List.assoc_opt "store" sections with
  | None -> raise (Codec.Corrupt { file = path; section = "store"; reason = "section missing" })
  | Some payload ->
    let wal_serial, epoch = read_store_section ~path payload in
    (wal_serial, Option.value epoch ~default:0)

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match serial_of_name name with
           | Some s -> Some (Filename.concat dir name, s)
           | None -> None)
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let prune ~dir ~keep =
  list ~dir
  |> List.iteri (fun i (path, _) ->
         if i >= keep then try Sys.remove path with Sys_error _ -> ())
