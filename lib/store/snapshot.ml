(* Whole-index snapshots; layout documented in snapshot.mli. *)

module Di = Dsdg_core.Dynamic_index
open Dsdg_obs

let obs = Obs.scope "store"
let c_saves = Obs.counter obs "snapshot_saves"
let c_loads = Obs.counter obs "snapshot_loads"
let h_save_ns = Obs.histogram obs "snapshot_save_ns"
let h_load_ns = Obs.histogram obs "snapshot_load_ns"
let g_bytes = Obs.gauge obs "snapshot_bytes"

let path_for ~dir ~wal_serial = Filename.concat dir (Printf.sprintf "snap-%d.dsdg" wal_serial)

let serial_of_name name =
  try Scanf.sscanf name "snap-%d.dsdg%!" (fun s -> Some s)
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let store_section ~wal_serial =
  let b = Codec.W.create () in
  Codec.W.int b wal_serial;
  ("store", Codec.W.contents b)

let write ~path ~wal_serial dump =
  let t0 = Obs.start () in
  Codec.write_file ~path ~kind:"snapshot" (store_section ~wal_serial :: Codec.encode_dump dump);
  Obs.incr c_saves;
  (try Obs.set_gauge g_bytes (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> ());
  Obs.stop h_save_ns t0

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~wal_serial dump =
  ensure_dir dir;
  let path = path_for ~dir ~wal_serial in
  write ~path ~wal_serial dump;
  path

let load path =
  let t0 = Obs.start () in
  let sections = Codec.read_file ~path ~kind:"snapshot" in
  let wal_serial =
    match List.assoc_opt "store" sections with
    | None -> raise (Codec.Corrupt { file = path; section = "store"; reason = "section missing" })
    | Some payload -> Codec.R.int (Codec.R.of_string ~file:path ~section:"store" payload)
  in
  let dump = Codec.decode_dump ~file:path sections in
  Obs.incr c_loads;
  Obs.stop h_load_ns t0;
  (dump, wal_serial)

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match serial_of_name name with
           | Some s -> Some (Filename.concat dir name, s)
           | None -> None)
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let prune ~dir ~keep =
  list ~dir
  |> List.iteri (fun i (path, _) ->
         if i >= keep then try Sys.remove path with Sys_error _ -> ())
