(* Versioned, CRC-checked binary container; format documented in
   codec.mli and DESIGN.md section 10. *)

module Di = Dsdg_core.Dynamic_index

exception Corrupt of { file : string; section : string; reason : string }

let corrupt_message ~file ~section ~reason = Printf.sprintf "%s: section %s: %s" file section reason

let () =
  Printexc.register_printer (function
    | Corrupt { file; section; reason } ->
      Some ("Codec.Corrupt: " ^ corrupt_message ~file ~section ~reason)
    | _ -> None)

let format_version = 1
let magic = "DSDG"

(* CRC-32, IEEE 802.3 polynomial (reflected 0xEDB88320), table-driven.
   Pure OCaml on 63-bit ints; the result is always in [0, 2^32). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* --- primitive encoders --- *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
  let int b v = Buffer.add_int64_le b (Int64.of_int v)

  let string b s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s

  let bool_array b (a : bool array) =
    let n = Array.length a in
    Buffer.add_int32_le b (Int32.of_int n);
    let byte = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) then byte := !byte lor (1 lsl (i land 7));
      if i land 7 = 7 then begin
        Buffer.add_char b (Char.chr !byte);
        byte := 0
      end
    done;
    if n land 7 <> 0 then Buffer.add_char b (Char.chr !byte)

  let contents = Buffer.contents
end

module R = struct
  type t = { file : string; section : string; data : string; mutable pos : int }

  let of_string ~file ~section data = { file; section; data; pos = 0 }
  let fail t reason = raise (Corrupt { file = t.file; section = t.section; reason })

  let need t n =
    if t.pos + n > String.length t.data then
      fail t
        (Printf.sprintf "payload truncated: need %d byte(s) at offset %d of %d" n t.pos
           (String.length t.data))

  let u8 t =
    need t 1;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.data t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let int t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let bool_array t =
    let n = u32 t in
    let bytes = (n + 7) / 8 in
    need t bytes;
    let a =
      Array.init n (fun i -> Char.code t.data.[t.pos + (i lsr 3)] land (1 lsl (i land 7)) <> 0)
    in
    t.pos <- t.pos + bytes;
    a

  let at_end t = t.pos = String.length t.data
end

(* --- container files --- *)

(* File layout: magic, u8 format version, kind string, u32 section
   count, then per section: name string, u32 payload length, payload,
   u32 CRC-32 of the payload. *)
let encode_container ~kind sections =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr format_version);
  Buffer.add_int32_le b (Int32.of_int (String.length kind));
  Buffer.add_string b kind;
  Buffer.add_int32_le b (Int32.of_int (List.length sections));
  List.iter
    (fun (name, payload) ->
      Buffer.add_int32_le b (Int32.of_int (String.length name));
      Buffer.add_string b name;
      Buffer.add_int32_le b (Int32.of_int (String.length payload));
      Buffer.add_string b payload;
      Buffer.add_int32_le b (Int32.of_int (crc32 payload)))
    sections;
  Buffer.contents b

(* Atomic install: temporary file in the same directory, fsync, rename
   into place, fsync the directory so the rename itself is durable.  A
   crash at any point leaves either the old file or the new one. *)
let write_file ~path ~kind sections =
  let data = encode_container ~kind sections in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd data !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
     Fun.protect ~finally:(fun () -> Unix.close dfd) (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ())

let read_file ~path ~kind =
  let ic = open_in_bin path in
  let data =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)
  in
  let r = R.of_string ~file:path ~section:"header" data in
  let m = try String.init 4 (fun _ -> Char.chr (R.u8 r)) with Corrupt _ -> "" in
  if m <> magic then R.fail r (Printf.sprintf "bad magic %S (want %S)" m magic);
  let version = R.u8 r in
  if version > format_version then
    R.fail r (Printf.sprintf "format version %d is newer than this reader (max %d)" version format_version);
  let k = R.string r in
  if k <> kind then R.fail r (Printf.sprintf "file kind is %S, expected %S" k kind);
  let nsections = R.u32 r in
  let sections = ref [] in
  for _ = 1 to nsections do
    let name = R.string r in
    let payload = R.string r in
    let stored = R.u32 r in
    let actual = crc32 payload in
    if stored <> actual then
      raise
        (Corrupt
           {
             file = path;
             section = name;
             reason = Printf.sprintf "checksum mismatch: stored %08x, computed %08x" stored actual;
           });
    sections := (name, payload) :: !sections
  done;
  if not (R.at_end r) then R.fail r "trailing bytes after the last section";
  List.rev !sections

(* --- index snapshots --- *)

let variant_tag = function Di.Amortized -> 0 | Di.Amortized_loglog -> 1 | Di.Worst_case -> 2
let backend_tag = function Di.Fm -> 0 | Di.Plain_sa -> 1 | Di.Csa -> 2

let encode_dump (d : Di.dump) =
  let meta = W.create () in
  W.u8 meta (variant_tag d.Di.dm_variant);
  W.u8 meta (backend_tag d.Di.dm_backend);
  W.int meta d.Di.dm_sample;
  W.int meta d.Di.dm_tau;
  W.int meta d.Di.dm_epoch;
  W.int meta d.Di.dm_next_id;
  W.int meta d.Di.dm_nf;
  W.int meta d.Di.dm_del_counter;
  W.int meta (List.length d.Di.dm_components);
  List.iter (fun (name, _, _) -> W.string meta name) d.Di.dm_components;
  ("meta", W.contents meta)
  :: List.map
       (fun (name, (docs : (int * string) array), (dead : bool array)) ->
         let b = W.create () in
         W.int b (Array.length docs);
         Array.iter
           (fun (id, text) ->
             W.int b id;
             W.string b text)
           docs;
         W.bool_array b dead;
         ("c:" ^ name, W.contents b))
       d.Di.dm_components

let decode_dump ~file sections =
  let meta_payload =
    match List.assoc_opt "meta" sections with
    | Some p -> p
    | None -> raise (Corrupt { file; section = "meta"; reason = "section missing" })
  in
  let r = R.of_string ~file ~section:"meta" meta_payload in
  let variant =
    match R.u8 r with
    | 0 -> Di.Amortized
    | 1 -> Di.Amortized_loglog
    | 2 -> Di.Worst_case
    | n -> R.fail r (Printf.sprintf "unknown variant tag %d" n)
  in
  let backend =
    match R.u8 r with
    | 0 -> Di.Fm
    | 1 -> Di.Plain_sa
    | 2 -> Di.Csa
    | n -> R.fail r (Printf.sprintf "unknown backend tag %d" n)
  in
  let sample = R.int r in
  let tau = R.int r in
  let epoch = R.int r in
  let next_id = R.int r in
  let nf = R.int r in
  let del_counter = R.int r in
  let ncomp = R.int r in
  if ncomp < 0 || ncomp > 1_000_000 then R.fail r (Printf.sprintf "absurd component count %d" ncomp);
  (* explicit loops below: [Array.init]/[List.init] leave the evaluation
     order of the generator unspecified, and the reader is stateful *)
  let names = ref [] in
  for _ = 1 to ncomp do
    names := R.string r :: !names
  done;
  let names = List.rev !names in
  let components =
    List.map
      (fun name ->
        let section = "c:" ^ name in
        let payload =
          match List.assoc_opt section sections with
          | Some p -> p
          | None -> raise (Corrupt { file; section; reason = "section missing from manifest" })
        in
        let cr = R.of_string ~file ~section payload in
        let ndocs = R.int cr in
        if ndocs < 0 then R.fail cr (Printf.sprintf "negative document count %d" ndocs);
        let docs = Array.make ndocs (0, "") in
        for i = 0 to ndocs - 1 do
          let id = R.int cr in
          let text = R.string cr in
          docs.(i) <- (id, text)
        done;
        let dead = R.bool_array cr in
        if Array.length dead <> 0 && Array.length dead <> ndocs then
          R.fail cr
            (Printf.sprintf "deletion bit vector length %d does not match %d document(s)"
               (Array.length dead) ndocs);
        (name, docs, dead))
      names
  in
  {
    Di.dm_variant = variant;
    dm_backend = backend;
    dm_sample = sample;
    dm_tau = tau;
    dm_epoch = epoch;
    dm_next_id = next_id;
    dm_nf = nf;
    dm_del_counter = del_counter;
    dm_components = components;
  }

(* --- relations and graphs --- *)

let write_relation path (pairs : (int * int) list) =
  let b = W.create () in
  W.int b (List.length pairs);
  List.iter
    (fun (o, a) ->
      W.int b o;
      W.int b a)
    pairs;
  write_file ~path ~kind:"relation" [ ("pairs", W.contents b) ]

let read_relation path =
  let sections = read_file ~path ~kind:"relation" in
  let payload =
    match List.assoc_opt "pairs" sections with
    | Some p -> p
    | None -> raise (Corrupt { file = path; section = "pairs"; reason = "section missing" })
  in
  let r = R.of_string ~file:path ~section:"pairs" payload in
  let n = R.int r in
  if n < 0 then R.fail r (Printf.sprintf "negative pair count %d" n);
  let pairs = ref [] in
  for _ = 1 to n do
    let o = R.int r in
    let a = R.int r in
    pairs := (o, a) :: !pairs
  done;
  List.rev !pairs
