(* Crash recovery: newest valid snapshot + WAL tail replay; state
   machine documented in recovery.mli and DESIGN.md section 10. *)

module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
open Dsdg_obs

let obs = Obs.scope "store"
let c_recoveries = Obs.counter obs "recoveries"
let c_recovered_ops = Obs.counter obs "recovered_ops"
let c_skipped = Obs.counter obs "snapshots_skipped"
let h_recovery_ns = Obs.histogram obs "recovery_ns"

exception Gap of { dir : string; snapshot_serial : int; wal_serial0 : int }

let () =
  Printexc.register_printer (function
    | Gap { dir; snapshot_serial; wal_serial0 } ->
      Some
        (Printf.sprintf
           "Recovery.Gap: %s: WAL starts at serial %d but the newest loadable snapshot covers \
            only serial %d -- records in between are lost"
           dir wal_serial0 snapshot_serial)
    | _ -> None)

type info = {
  ri_snapshot : string option;
  ri_snapshot_serial : int;
  ri_skipped : (string * string) list;
  ri_replayed : int;
  ri_truncated : bool;
  ri_next_serial : int;
}

let info_to_string i =
  Printf.sprintf "snapshot=%s serial=%d skipped=%d replayed=%d%s next_serial=%d"
    (match i.ri_snapshot with None -> "none" | Some p -> Filename.basename p)
    i.ri_snapshot_serial (List.length i.ri_skipped) i.ri_replayed
    (if i.ri_truncated then " torn-tail-truncated" else "")
    i.ri_next_serial

let wal_path ~dir = Filename.concat dir "wal.log"

(* Replay applies mutations only: queries in a hand-edited log are
   legal trace lines but carry no state, so they are skipped. *)
let apply_op idx (op : Trace.op) =
  match op with
  | Trace.Insert text -> ignore (Di.insert idx text)
  | Trace.Delete id -> ignore (Di.delete idx id)
  | Trace.Search _ | Trace.Count _ | Trace.Extract _ | Trace.Mem _ | Trace.Drain -> ()

(* Newest snapshot that passes every checksum; corrupt ones are skipped
   and reported, not fatal (the WAL may still cover their window). *)
let load_newest ~dir =
  let rec go skipped = function
    | [] -> (None, List.rev skipped)
    | (path, _serial) :: rest -> (
      match Snapshot.load path with
      | dump, wal_serial -> (Some (path, dump, wal_serial), List.rev skipped)
      | exception Codec.Corrupt { section; reason; _ } ->
        Obs.incr c_skipped;
        go ((path, Printf.sprintf "%s: %s" section reason) :: skipped) rest)
  in
  go [] (Snapshot.list ~dir)

let open_or_recover ?(variant = Di.Worst_case) ?(backend = Di.Fm) ?(sample = 8) ?(tau = 8)
    ?fault ?(jobs = 0) ?(readers = 0) ?seq_backend ?retain_epochs ?(read_only = false) ~dir () =
  let t0 = Obs.start () in
  let loaded, skipped = load_newest ~dir in
  let idx, snap_path, snap_serial =
    match loaded with
    | Some (path, dump, wal_serial) ->
      (Di.restore ?fault ~jobs ~readers ?seq_backend ?retain_epochs dump, Some path, wal_serial)
    | None ->
      ( Di.create ~variant ~backend ~sample ~tau ?fault ~jobs ~readers ?seq_backend
          ?retain_epochs (),
        None,
        0 )
  in
  let wal = wal_path ~dir in
  let replayed, truncated, next_serial =
    if Sys.file_exists wal then begin
      let c = Wal.read wal in
      if c.Wal.wc_serial0 > snap_serial then
        raise (Gap { dir; snapshot_serial = snap_serial; wal_serial0 = c.Wal.wc_serial0 });
      if not read_only then Wal.truncate_torn wal c;
      let n = ref 0 in
      List.iter
        (fun (serial, op) ->
          if serial >= snap_serial then begin
            apply_op idx op;
            incr n
          end)
        c.Wal.wc_ops;
      Obs.add c_recovered_ops !n;
      (!n, c.Wal.wc_truncated, c.Wal.wc_serial0 + List.length c.Wal.wc_ops)
    end
    else (0, false, snap_serial)
  in
  Obs.incr c_recoveries;
  Obs.stop h_recovery_ns t0;
  ( idx,
    {
      ri_snapshot = snap_path;
      ri_snapshot_serial = snap_serial;
      ri_skipped = skipped;
      ri_replayed = replayed;
      ri_truncated = truncated;
      ri_next_serial = next_serial;
    } )
