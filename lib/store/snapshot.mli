(** Whole-index snapshots on disk.

    A snapshot file is a {!Codec} container of kind ["snapshot"]: the
    index dump's sections plus a ["store"] section recording the WAL
    serial the snapshot is aligned with -- the state after applying
    every WAL record with serial [< wal_serial]. Files are named
    [snap-<serial>.dsdg] and written atomically (temp + rename), so the
    newest {e valid} file in a store directory is always a complete,
    checksummed snapshot, whatever the process was doing when it
    died. *)

(** [snap-<serial>.dsdg] inside [dir]. *)
val path_for : dir:string -> wal_serial:int -> string

(** [mkdir -p]. *)
val ensure_dir : string -> unit

(** Write a snapshot container to an explicit path (used by background
    checkpoint jobs, which serialize to a scratch name and let the
    writer rename at the install point). *)
val write : path:string -> wal_serial:int -> Dsdg_core.Dynamic_index.dump -> unit

(** [save ~dir ~wal_serial dump] writes {!path_for} atomically
    (creating [dir] if needed) and returns the path. *)
val save : dir:string -> wal_serial:int -> Dsdg_core.Dynamic_index.dump -> string

(** Load and fully validate one snapshot file; returns the dump and its
    WAL serial. Raises {!Codec.Corrupt} on any integrity failure. *)
val load : string -> Dsdg_core.Dynamic_index.dump * int

(** [(wal_serial, epoch)] from the ["store"] section -- the durable
    epoch<->serial correspondence: the snapshot is the state after
    every WAL record with serial [< wal_serial], published as read-plane
    epoch [epoch]. Validates the container but does not decode the
    dump; [epoch] is [0] for files written before the correspondence
    was recorded. Raises {!Codec.Corrupt} on integrity failure. *)
val info : string -> int * int

(** All [(path, wal_serial)] snapshots in [dir], newest (highest
    serial) first. Empty if the directory does not exist. *)
val list : dir:string -> (string * int) list

(** Delete all but the [keep] newest snapshot files. *)
val prune : dir:string -> keep:int -> unit
