(** Observability layer for the dynamization machinery.

    The paper's worst-case bounds rest on scheduling claims -- bounded
    dead fractions under Dietz-Sleator cleaning, rare forced job
    completions, bounded per-update background work -- that the
    structures must *report* before anyone can validate or tune them.
    This module is the shared instrumentation substrate:

    - monotonic {e counters} and max-tracking {e gauges};
    - {e latency histograms}, log-bucketed (bucket [b] holds values in
      [[2^(b-1), 2^b)]), updated without allocating on the hot path;
    - a structured {e event trace} (purge, merge, lock, job
      start/step/force/finish, install, top cleaning, restructure) in a
      fixed-size ring buffer;
    - {e space accounting} helpers ([set_gauge] per component) so
      measured bits can be compared with the paper's [nHk + o(n)]
      budget.

    Every recording entry point checks {!enabled} first and is a no-op
    when the flag is off, so instrumented code pays one load-and-branch
    per probe when disabled (< 5% of any indexing operation).

    All counters, gauges and histogram cells are [Atomic.t], so probes
    may fire concurrently from worker and reader domains without losing
    increments; registration, the event ring and [reset] serialize on a
    per-scope lock. [enabled] itself is a configuration flag -- set it
    before spawning domains. *)

val enabled : bool ref

(** [set_enabled b] toggles all recording at runtime. *)
val set_enabled : bool -> unit

(** Nanosecond clock used by {!start}/{!stop} and {!time}. Replaceable
    (e.g. with a bench harness's monotonic clock). *)
val set_clock : (unit -> int) -> unit

val now_ns : unit -> int

(** {1 Scopes}

    A scope is a named bag of counters, gauges, histograms and an event
    ring -- one per instrumented component. [scope name] is
    get-or-create in a global registry (use it for module-level,
    process-wide scopes such as ["semi_static"]); [private_scope] makes
    an unregistered scope owned by a single structure instance, so
    short-lived instances do not accumulate in the registry. *)

type scope
type counter
type gauge
type histogram

val scope : string -> scope
val private_scope : string -> scope
val scope_name : scope -> string

(** All scopes created with {!scope}, in creation order. *)
val registered : unit -> scope list

(** {1 Counters and gauges} *)

(** Get-or-create by name within the scope. *)
val counter : scope -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : scope -> string -> gauge
val set_gauge : gauge -> int -> unit

(** [set_max g v] raises [g] to [v] if [v] is larger. *)
val set_max : gauge -> int -> unit

val gauge_value : gauge -> int

(** {1 Histograms} *)

val histogram : scope -> string -> histogram

(** [observe h v] adds one sample; log-bucketed, no allocation. *)
val observe : histogram -> int -> unit

(** [start ()] reads the clock (0 when disabled); [stop h t0] records
    the elapsed nanoseconds. The pair avoids a closure allocation on hot
    paths; {!time} is the convenient closure form. *)
val start : unit -> int

val stop : histogram -> int -> unit
val time : histogram -> (unit -> 'a) -> 'a

type histogram_summary = {
  n : int;  (** samples *)
  sum : int;
  max : int;
  p50 : int;  (** bucket upper bounds *)
  p90 : int;
  p99 : int;
}

val summarize : histogram -> histogram_summary

(** {1 Event trace} *)

(** The structural-event taxonomy of the dynamization machinery
    (DESIGN.md "Observability"). [level]/[slot] identify sub-collection
    indexes; [work] is in construction ticks. *)
type event =
  | Purge of { level : int; dead : int; total : int }
      (** a sub-collection crossed its dead-fraction threshold *)
  | Merge of { from_level : int; into_level : int; sync : bool }
  | Lock of { level : int; target : string }
      (** C_j renamed L_j; background build started toward [target] *)
  | Job_start of { slot : int; target : string }
  | Job_step of { slot : int; work : int }
  | Job_force of { slot : int }
      (** a pending job was completed synchronously (the rare event the
          scheduling lemma bounds) *)
  | Job_finish of { slot : int; work : int }
  | Install of { slot : int; target : string; live : int }
  | Top_clean of { key : int; dead : int }  (** Dietz-Sleator cleaning *)
  | Restructure of { nf : int; structures : int }  (** nf re-snapshot *)
  | Epoch_publish of { epoch : int; cause : string }
      (** a new read-plane snapshot became the current epoch *)
  | Note of string

val record : scope -> event -> unit

(** Newest first, as [(sequence number, event)]. The ring keeps the most
    recent {!ring_capacity} events. *)
val recent : scope -> (int * event) list

val ring_capacity : int
val event_to_string : event -> string

(** {1 Reporting} *)

(** Counters then gauges, in registration order. *)
val counters : scope -> (string * int) list

val histograms : scope -> (string * histogram_summary) list

(** Counters, gauges and flattened histogram fields
    ([name.n] / [name.p50] / [name.p99] / [name.max]) -- the shape bench
    JSON rows embed. *)
val snapshot : scope -> (string * int) list

(** Zero every counter, gauge and histogram and clear the ring. *)
val reset : scope -> unit

(** Multi-line human-readable report of one scope. *)
val render : ?max_events:int -> scope -> string
