(* Shared instrumentation for the dynamization machinery: counters,
   max-gauges, log-bucketed histograms and a structured event ring.

   Everything funnels through [!enabled]: when the flag is off every
   probe is a single load-and-branch, and nothing allocates. When it is
   on, counter/gauge/histogram updates are a few stores (histograms
   bucket by bit length, no allocation); only event recording allocates
   (one constructor per rare structural event). *)

let enabled = ref true
let set_enabled b = enabled := b

(* Default nanosecond clock.  gettimeofday is wall-clock, not monotonic,
   but it is dependency-light and the histograms only feed statistics;
   bench harnesses install their monotonic clock via [set_clock]. *)
let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)
let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable gv : int }

let hist_buckets = 63

type histogram = {
  h_name : string;
  buckets : int array; (* bucket b: values v with bit-length b, i.e. [2^(b-1), 2^b) *)
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type event =
  | Purge of { level : int; dead : int; total : int }
  | Merge of { from_level : int; into_level : int; sync : bool }
  | Lock of { level : int; target : string }
  | Job_start of { slot : int; target : string }
  | Job_step of { slot : int; work : int }
  | Job_force of { slot : int }
  | Job_finish of { slot : int; work : int }
  | Install of { slot : int; target : string; live : int }
  | Top_clean of { key : int; dead : int }
  | Restructure of { nf : int; structures : int }
  | Note of string

let ring_capacity = 512

type scope = {
  s_name : string;
  mutable cs : counter list; (* newest first; reversed on read *)
  mutable gs : gauge list;
  mutable hs : histogram list;
  ring : (int * event) option array;
  mutable ring_next : int; (* next write slot *)
  mutable seq : int; (* events recorded since creation/reset *)
}

let make_scope name =
  {
    s_name = name;
    cs = [];
    gs = [];
    hs = [];
    ring = Array.make ring_capacity None;
    ring_next = 0;
    seq = 0;
  }

let registry : (string, scope) Hashtbl.t = Hashtbl.create 16
let registry_order : scope list ref = ref []

let scope name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let s = make_scope name in
    Hashtbl.replace registry name s;
    registry_order := s :: !registry_order;
    s

let private_scope name = make_scope name
let scope_name s = s.s_name
let registered () = List.rev !registry_order

(* --- counters / gauges (get-or-create by name within a scope) --- *)

let counter s name =
  match List.find_opt (fun c -> c.c_name = name) s.cs with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    s.cs <- c :: s.cs;
    c

let[@inline] incr c = if !enabled then c.count <- c.count + 1
let[@inline] add c n = if !enabled then c.count <- c.count + n
let value c = c.count

let gauge s name =
  match List.find_opt (fun g -> g.g_name = name) s.gs with
  | Some g -> g
  | None ->
    let g = { g_name = name; gv = 0 } in
    s.gs <- g :: s.gs;
    g

let[@inline] set_gauge g v = if !enabled then g.gv <- v
let[@inline] set_max g v = if !enabled && v > g.gv then g.gv <- v
let gauge_value g = g.gv

(* --- histograms --- *)

let histogram s name =
  match List.find_opt (fun h -> h.h_name = name) s.hs with
  | Some h -> h
  | None ->
    let h = { h_name = name; buckets = Array.make hist_buckets 0; h_n = 0; h_sum = 0; h_max = 0 } in
    s.hs <- h :: s.hs;
    h

(* bit length of v, clamped to the bucket range; bucket 0 holds v <= 0 *)
let[@inline] bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    if !b >= hist_buckets then hist_buckets - 1 else !b
  end

let observe h v =
  if !enabled then begin
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.h_n <- h.h_n + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v
  end

let[@inline] start () = if !enabled then !clock () else 0
let[@inline] stop h t0 = if !enabled then observe h (!clock () - t0)

let time h f =
  if !enabled then begin
    let t0 = !clock () in
    let r = f () in
    observe h (!clock () - t0);
    r
  end
  else f ()

type histogram_summary = { n : int; sum : int; max : int; p50 : int; p90 : int; p99 : int }

(* Upper bound of bucket [b]: the largest value with bit length b. *)
let bucket_upper b = if b = 0 then 0 else (1 lsl b) - 1

let percentile h q =
  if h.h_n = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.h_n))) in
    let acc = ref 0 and res = ref (bucket_upper (hist_buckets - 1)) and found = ref false in
    for b = 0 to hist_buckets - 1 do
      if not !found then begin
        acc := !acc + h.buckets.(b);
        if !acc >= target then begin
          res := bucket_upper b;
          found := true
        end
      end
    done;
    !res
  end

let summarize h =
  {
    n = h.h_n;
    sum = h.h_sum;
    max = h.h_max;
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
  }

(* --- events --- *)

let record s e =
  if !enabled then begin
    s.ring.(s.ring_next) <- Some (s.seq, e);
    s.seq <- s.seq + 1;
    s.ring_next <- (s.ring_next + 1) mod ring_capacity
  end

let recent s =
  let acc = ref [] in
  for i = 0 to ring_capacity - 1 do
    (* walk forward from the oldest slot so [acc] ends newest-first *)
    match s.ring.((s.ring_next + i) mod ring_capacity) with
    | None -> ()
    | Some entry -> acc := entry :: !acc
  done;
  !acc

let event_to_string = function
  | Purge { level; dead; total } ->
    Printf.sprintf "purge: C%d has %d/%d dead syms; rebuilding without them" level dead total
  | Merge { from_level; into_level; sync } ->
    Printf.sprintf "%s: C%d -> C%d" (if sync then "sync merge" else "merge") from_level into_level
  | Lock { level; target } ->
    Printf.sprintf "lock: C%d -> L%d; building %s in background" level level target
  | Job_start { slot; target } -> Printf.sprintf "job start: slot %d -> %s" slot target
  | Job_step { slot; work } -> Printf.sprintf "job step: slot %d advanced %d ticks" slot work
  | Job_force { slot } -> Printf.sprintf "force: finishing job at slot %d synchronously" slot
  | Job_finish { slot; work } -> Printf.sprintf "job finish: slot %d after %d ticks" slot work
  | Install { slot; target; live } ->
    Printf.sprintf "install: slot %d -> %s (%d live syms)" slot target live
  | Top_clean { key; dead } ->
    Printf.sprintf "clean: rebuilding top T%d in background (%d dead syms)" key dead
  | Restructure { nf; structures } ->
    Printf.sprintf "restructure: nf=%d, %d structures" nf structures
  | Note s -> s

(* --- reporting --- *)

let counters s =
  List.rev_map (fun c -> (c.c_name, c.count)) s.cs
  @ List.rev_map (fun g -> (g.g_name, g.gv)) s.gs

let histograms s = List.rev_map (fun h -> (h.h_name, summarize h)) s.hs

let snapshot s =
  counters s
  @ List.concat_map
      (fun (name, sm) ->
        [ (name ^ ".n", sm.n); (name ^ ".p50", sm.p50); (name ^ ".p99", sm.p99); (name ^ ".max", sm.max) ])
      (histograms s)

let reset s =
  List.iter (fun c -> c.count <- 0) s.cs;
  List.iter (fun g -> g.gv <- 0) s.gs;
  List.iter
    (fun h ->
      Array.fill h.buckets 0 hist_buckets 0;
      h.h_n <- 0;
      h.h_sum <- 0;
      h.h_max <- 0)
    s.hs;
  Array.fill s.ring 0 ring_capacity None;
  s.ring_next <- 0;
  s.seq <- 0

let render ?(max_events = 20) s =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "[%s]\n" s.s_name);
  let cs = counters s in
  if cs <> [] then begin
    let width = List.fold_left (fun a (n, _) -> max a (String.length n)) 0 cs in
    List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-*s %d\n" width n v)) cs
  end;
  List.iter
    (fun (n, sm) ->
      if sm.n > 0 then
        Buffer.add_string b
          (Printf.sprintf "  %s: n=%d mean=%d p50<=%d p90<=%d p99<=%d max=%d\n" n sm.n
             (sm.sum / sm.n) sm.p50 sm.p90 sm.p99 sm.max))
    (histograms s);
  let evs = recent s in
  if evs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "  recent events (%d total, newest first):\n" s.seq);
    List.iteri
      (fun i (seq, e) ->
        if i < max_events then
          Buffer.add_string b (Printf.sprintf "    #%-5d %s\n" seq (event_to_string e)))
      evs
  end;
  Buffer.contents b
