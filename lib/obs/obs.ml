(* Shared instrumentation for the dynamization machinery: counters,
   max-gauges, log-bucketed histograms and a structured event ring.

   Everything funnels through [!enabled]: when the flag is off every
   probe is a single load-and-branch, and nothing allocates. When it is
   on, counter/gauge/histogram updates are a few atomic RMWs (histograms
   bucket by bit length, no allocation); only event recording allocates
   (one constructor per rare structural event).

   Domain safety: probes fire from worker domains (background rebuilds)
   and reader domains (the query plane), so every cell is an [Atomic.t]
   -- a plain [mutable int] would lose increments under contention. The
   rare paths (registration, the event ring, [reset]) serialize on a
   lock instead of paying per-cell atomics. Histogram summaries and
   [snapshot] read each cell atomically but not the set of cells as one
   transaction; concurrent recording can make n/sum momentarily
   inconsistent by the in-flight sample, which statistics reporting
   tolerates. *)

let enabled = ref true
let set_enabled b = enabled := b

(* Default nanosecond clock.  gettimeofday is wall-clock, not monotonic,
   but it is dependency-light and the histograms only feed statistics;
   bench harnesses install their monotonic clock via [set_clock]. *)
let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)
let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; gv : int Atomic.t }

let hist_buckets = 63

type histogram = {
  h_name : string;
  buckets : int Atomic.t array; (* bucket b: values v with bit-length b, i.e. [2^(b-1), 2^b) *)
  h_n : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type event =
  | Purge of { level : int; dead : int; total : int }
  | Merge of { from_level : int; into_level : int; sync : bool }
  | Lock of { level : int; target : string }
  | Job_start of { slot : int; target : string }
  | Job_step of { slot : int; work : int }
  | Job_force of { slot : int }
  | Job_finish of { slot : int; work : int }
  | Install of { slot : int; target : string; live : int }
  | Top_clean of { key : int; dead : int }
  | Restructure of { nf : int; structures : int }
  | Epoch_publish of { epoch : int; cause : string }
  | Note of string

let ring_capacity = 512

type scope = {
  s_name : string;
  lock : Mutex.t; (* guards cs/gs/hs registration and the event ring *)
  mutable cs : counter list; (* newest first; reversed on read *)
  mutable gs : gauge list;
  mutable hs : histogram list;
  ring : (int * event) option array;
  mutable ring_next : int; (* next write slot *)
  mutable seq : int; (* events recorded since creation/reset *)
}

let make_scope name =
  {
    s_name = name;
    lock = Mutex.create ();
    cs = [];
    gs = [];
    hs = [];
    ring = Array.make ring_capacity None;
    ring_next = 0;
    seq = 0;
  }

let locked m f =
  Mutex.lock m;
  match f () with
  | r ->
    Mutex.unlock m;
    r
  | exception e ->
    Mutex.unlock m;
    raise e

let registry : (string, scope) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()
let registry_order : scope list ref = ref []

let scope name =
  locked registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
        let s = make_scope name in
        Hashtbl.replace registry name s;
        registry_order := s :: !registry_order;
        s)

let private_scope name = make_scope name
let scope_name s = s.s_name
let registered () = locked registry_lock (fun () -> List.rev !registry_order)

(* --- counters / gauges (get-or-create by name within a scope) --- *)

let counter s name =
  locked s.lock (fun () ->
      match List.find_opt (fun c -> c.c_name = name) s.cs with
      | Some c -> c
      | None ->
        let c = { c_name = name; count = Atomic.make 0 } in
        s.cs <- c :: s.cs;
        c)

let[@inline] incr c = if !enabled then Atomic.incr c.count
let[@inline] add c n = if !enabled then ignore (Atomic.fetch_and_add c.count n)
let value c = Atomic.get c.count

let gauge s name =
  locked s.lock (fun () ->
      match List.find_opt (fun g -> g.g_name = name) s.gs with
      | Some g -> g
      | None ->
        let g = { g_name = name; gv = Atomic.make 0 } in
        s.gs <- g :: s.gs;
        g)

let[@inline] set_gauge g v = if !enabled then Atomic.set g.gv v

let[@inline] atomic_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

let[@inline] set_max g v = if !enabled then atomic_max g.gv v
let gauge_value g = Atomic.get g.gv

(* --- histograms --- *)

let histogram s name =
  locked s.lock (fun () ->
      match List.find_opt (fun h -> h.h_name = name) s.hs with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
            h_n = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_max = Atomic.make 0;
          }
        in
        s.hs <- h :: s.hs;
        h)

(* bit length of v, clamped to the bucket range; bucket 0 holds v <= 0 *)
let[@inline] bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    if !b >= hist_buckets then hist_buckets - 1 else !b
  end

let observe h v =
  if !enabled then begin
    let b = bucket_of v in
    Atomic.incr h.buckets.(b);
    Atomic.incr h.h_n;
    ignore (Atomic.fetch_and_add h.h_sum v);
    atomic_max h.h_max v
  end

let[@inline] start () = if !enabled then !clock () else 0
let[@inline] stop h t0 = if !enabled then observe h (!clock () - t0)

let time h f =
  if !enabled then begin
    let t0 = !clock () in
    let r = f () in
    observe h (!clock () - t0);
    r
  end
  else f ()

type histogram_summary = { n : int; sum : int; max : int; p50 : int; p90 : int; p99 : int }

(* Upper bound of bucket [b]: the largest value with bit length b. *)
let bucket_upper b = if b = 0 then 0 else (1 lsl b) - 1

let percentile ~counts ~total q =
  if total = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and res = ref (bucket_upper (hist_buckets - 1)) and found = ref false in
    for b = 0 to hist_buckets - 1 do
      if not !found then begin
        acc := !acc + counts.(b);
        if !acc >= target then begin
          res := bucket_upper b;
          found := true
        end
      end
    done;
    !res
  end

let summarize h =
  (* one coherent pass over the buckets; percentiles are computed from
     this local copy so a concurrent observe cannot skew them mid-scan *)
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  {
    n = Atomic.get h.h_n;
    sum = Atomic.get h.h_sum;
    max = Atomic.get h.h_max;
    p50 = percentile ~counts ~total 0.50;
    p90 = percentile ~counts ~total 0.90;
    p99 = percentile ~counts ~total 0.99;
  }

(* --- events --- *)

let record s e =
  if !enabled then
    locked s.lock (fun () ->
        s.ring.(s.ring_next) <- Some (s.seq, e);
        s.seq <- s.seq + 1;
        s.ring_next <- (s.ring_next + 1) mod ring_capacity)

let recent s =
  locked s.lock (fun () ->
      let acc = ref [] in
      for i = 0 to ring_capacity - 1 do
        (* walk forward from the oldest slot so [acc] ends newest-first *)
        match s.ring.((s.ring_next + i) mod ring_capacity) with
        | None -> ()
        | Some entry -> acc := entry :: !acc
      done;
      !acc)

let event_to_string = function
  | Purge { level; dead; total } ->
    Printf.sprintf "purge: C%d has %d/%d dead syms; rebuilding without them" level dead total
  | Merge { from_level; into_level; sync } ->
    Printf.sprintf "%s: C%d -> C%d" (if sync then "sync merge" else "merge") from_level into_level
  | Lock { level; target } ->
    Printf.sprintf "lock: C%d -> L%d; building %s in background" level level target
  | Job_start { slot; target } -> Printf.sprintf "job start: slot %d -> %s" slot target
  | Job_step { slot; work } -> Printf.sprintf "job step: slot %d advanced %d ticks" slot work
  | Job_force { slot } -> Printf.sprintf "force: finishing job at slot %d synchronously" slot
  | Job_finish { slot; work } -> Printf.sprintf "job finish: slot %d after %d ticks" slot work
  | Install { slot; target; live } ->
    Printf.sprintf "install: slot %d -> %s (%d live syms)" slot target live
  | Top_clean { key; dead } ->
    Printf.sprintf "clean: rebuilding top T%d in background (%d dead syms)" key dead
  | Restructure { nf; structures } ->
    Printf.sprintf "restructure: nf=%d, %d structures" nf structures
  | Epoch_publish { epoch; cause } -> Printf.sprintf "epoch publish: #%d after %s" epoch cause
  | Note s -> s

(* --- reporting --- *)

let counters s =
  let cs, gs = locked s.lock (fun () -> (s.cs, s.gs)) in
  List.rev_map (fun c -> (c.c_name, Atomic.get c.count)) cs
  @ List.rev_map (fun g -> (g.g_name, Atomic.get g.gv)) gs

let histograms s =
  let hs = locked s.lock (fun () -> s.hs) in
  List.rev_map (fun h -> (h.h_name, summarize h)) hs

let snapshot s =
  counters s
  @ List.concat_map
      (fun (name, sm) ->
        [ (name ^ ".n", sm.n); (name ^ ".p50", sm.p50); (name ^ ".p99", sm.p99); (name ^ ".max", sm.max) ])
      (histograms s)

let reset s =
  locked s.lock (fun () ->
      List.iter (fun c -> Atomic.set c.count 0) s.cs;
      List.iter (fun g -> Atomic.set g.gv 0) s.gs;
      List.iter
        (fun h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_n 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_max 0)
        s.hs;
      Array.fill s.ring 0 ring_capacity None;
      s.ring_next <- 0;
      s.seq <- 0)

let render ?(max_events = 20) s =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "[%s]\n" s.s_name);
  let cs = counters s in
  if cs <> [] then begin
    let width = List.fold_left (fun a (n, _) -> max a (String.length n)) 0 cs in
    List.iter (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-*s %d\n" width n v)) cs
  end;
  List.iter
    (fun (n, sm) ->
      if sm.n > 0 then
        Buffer.add_string b
          (Printf.sprintf "  %s: n=%d mean=%d p50<=%d p90<=%d p99<=%d max=%d\n" n sm.n
             (sm.sum / sm.n) sm.p50 sm.p90 sm.p99 sm.max))
    (histograms s);
  let evs = recent s in
  let seq = locked s.lock (fun () -> s.seq) in
  if evs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "  recent events (%d total, newest first):\n" seq);
    List.iteri
      (fun i (seq, e) ->
        if i < max_events then
          Buffer.add_string b (Printf.sprintf "    #%-5d %s\n" seq (event_to_string e)))
      evs
  end;
  Buffer.contents b
