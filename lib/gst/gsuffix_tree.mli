(** Generalized suffix tree with online (Ukkonen) insertion: the paper's
    uncompressed fully-dynamic buffer C0 (Appendix A.2).

    Insertion of a document is O(|T|) expected; queries report all [occ]
    occurrences in O(|P| + occ) plus dead-leaf filtering. Deletion is
    doc-level lazy with an automatic rebuild once dead symbols outnumber
    live ones, so it is amortized O(1) per symbol. Edge labels hold
    GC-managed handles to their source text and never dangle. *)

type t

val create : unit -> t

(** [insert t ~doc text] adds a document under a caller-chosen unique id.
    Raises [Invalid_argument] on a duplicate id. *)
val insert : t -> doc:int -> string -> unit

(** [delete t doc] lazily removes the document; [false] if absent. *)
val delete : t -> int -> bool

val mem : t -> int -> bool
val get_doc : t -> int -> string option
val doc_count : t -> int
val doc_ids : t -> int list

(** Live symbols, counting one separator per document. *)
val live_symbols : t -> int

val dead_symbols : t -> int

(** [search t p ~f] calls [f] on every occurrence of [p] in live
    documents. *)
val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

val count : t -> string -> int

(** All occurrences, sorted by (doc, offset). *)
val occurrences : t -> string -> (int * int) list

(** {1 Read-plane views}

    A {!view} is an immutable snapshot of the live documents, safe to
    query from any domain while the tree keeps mutating. The buffer is
    bounded by [2n / log^2 n] symbols, so views answer queries by naive
    scanning within the paper's buffer budget, and the snapshot copy
    amortizes against the update that invalidated it (snapshots are
    cached until the next insert/delete). *)

type view

val snapshot : t -> view
val view_doc_count : view -> int
val view_live_symbols : view -> int
val view_dead_symbols : view -> int
val view_mem : view -> int -> bool
val view_get_doc : view -> int -> string option

(** The frozen live documents, sorted by id -- the C0 snapshot unit the
    persistence layer ([Dsdg_store]) serializes. O(doc_count). *)
val view_docs : view -> (int * string) list

(** Raises [Invalid_argument] on the empty pattern, like tree search. *)
val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit

val view_count : view -> string -> int

(** Sorted by (doc, offset). *)
val view_occurrences : view -> string -> (int * int) list

val space_bits : t -> int
