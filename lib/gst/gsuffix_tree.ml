(* Generalized suffix tree with online (Ukkonen) insertion of documents:
   the uncompressed fully-dynamic buffer C0 of the paper (Appendix A.2).

   - Insertion of a document T is O(|T|) expected (hashed child dispatch,
     the paper's own choice for large alphabets).
   - Every document is terminated by a unique negative symbol, so all its
     suffixes end at leaves and patterns (non-negative symbols) never
     match across documents.
   - Deletion is doc-level lazy: the document is marked dead, its leaves
     are filtered during reporting, and the whole tree is rebuilt from the
     live documents once dead symbols outnumber live ones (amortized
     O(1)/symbol).  Edge labels hold a GC-managed handle to their source
     text, so labels never dangle.
   - Queries: all occ occurrences of P reported in O(|P| + occ) plus the
     cost of skipping dead leaves (bounded on average by the <= 1/2 dead
     fraction). *)

open Dsdg_obs

(* Process-wide scope shared by every tree instance (C0 buffers are
   created and discarded constantly by the dynamization layers). *)
let obs = Obs.scope "gst"
let c_inserts = Obs.counter obs "inserts"
let c_deletes = Obs.counter obs "deletes"
let c_rebuilds = Obs.counter obs "rebuilds"
let c_searches = Obs.counter obs "searches"
let h_rebuild_syms = Obs.histogram obs "rebuild_syms"

type text = {
  doc : int;
  chars : string;
}

(* Symbol at position [i] of [txt], where position [length chars] is the
   unique terminator. *)
let[@inline] sym txt i =
  if i < String.length txt.chars then Char.code txt.chars.[i] else -txt.doc - 1

let text_len txt = String.length txt.chars + 1

type node = {
  mutable text : text; (* source of the incoming edge label *)
  mutable start : int; (* label = text[start .. start + elen) *)
  mutable elen : int; (* -1 = open edge (current insertion run) *)
  mutable children : (int, node) Hashtbl.t; (* empty for leaves *)
  mutable slink : node option;
  mutable suffix : int; (* for leaves: starting offset of the suffix; -1 otherwise *)
}

(* Read-plane view: a frozen copy of the live documents.  The Ukkonen
   tree itself is too mutable to share across domains, but C0 is bounded
   by 2n/log^2 n symbols, so a view answers queries by naive scanning
   over the (few, short) buffered documents -- O(sum |doc|) per pattern,
   within the paper's budget for the buffer, and entirely immutable. *)
type view = {
  v_docs : (int * string) array; (* live documents, frozen, sorted by id *)
  v_tbl : (int, string) Hashtbl.t; (* id -> contents; never mutated after build *)
  v_live_syms : int;
  v_dead_syms : int;
}

type t = {
  mutable root : node;
  mutable docs : (int, string) Hashtbl.t; (* live documents *)
  mutable dead : (int, unit) Hashtbl.t;
  mutable live_syms : int;
  mutable dead_syms : int;
  mutable node_count : int;
  mutable leaf_end : int; (* end position of open edges during insertion *)
  mutable view_cache : view option; (* invalidated by insert/delete *)
}

let dummy_text = { doc = min_int / 2; chars = "" }

let new_root () =
  {
    text = dummy_text;
    start = 0;
    elen = 0;
    children = Hashtbl.create 8;
    slink = None;
    suffix = -1;
  }

let create () =
  {
    root = new_root ();
    docs = Hashtbl.create 16;
    dead = Hashtbl.create 16;
    live_syms = 0;
    dead_syms = 0;
    node_count = 1;
    leaf_end = 0;
    view_cache = None;
  }

let is_leaf nd = Hashtbl.length nd.children = 0
let[@inline] edge_len t nd = if nd.elen >= 0 then nd.elen else t.leaf_end - nd.start + 1

(* Core Ukkonen insertion of one document (assumes doc id not present). *)
let ukkonen_insert t txt =
  let total = text_len txt in
  let new_leaves = ref [] in
  let active_node = ref t.root in
  let active_edge = ref 0 in
  let active_len = ref 0 in
  let remainder = ref 0 in
  for i = 0 to total - 1 do
    t.leaf_end <- i;
    incr remainder;
    let last_new = ref None in
    let link_pending target =
      match !last_new with
      | None -> ()
      | Some nd ->
        nd.slink <- Some target;
        last_new := None
    in
    let continue = ref true in
    while !continue && !remainder > 0 do
      if !active_len = 0 then active_edge := i;
      let ae_sym = sym txt !active_edge in
      match Hashtbl.find_opt !active_node.children ae_sym with
      | None ->
        (* new leaf hanging off the active node *)
        let leaf =
          {
            text = txt;
            start = i;
            elen = -1;
            children = Hashtbl.create 1;
            slink = None;
            suffix = i - !remainder + 1;
          }
        in
        t.node_count <- t.node_count + 1;
        new_leaves := leaf :: !new_leaves;
        Hashtbl.replace !active_node.children ae_sym leaf;
        link_pending !active_node;
        decr remainder;
        if !active_node == t.root && !active_len > 0 then begin
          decr active_len;
          active_edge := i - !remainder + 1
        end
        else if not (!active_node == t.root) then
          active_node := (match !active_node.slink with Some s -> s | None -> t.root)
      | Some next ->
        let el = edge_len t next in
        if !active_len >= el then begin
          (* walk down *)
          active_edge := !active_edge + el;
          active_len := !active_len - el;
          active_node := next
        end
        else if sym next.text (next.start + !active_len) = sym txt i then begin
          (* symbol already present: rule 3, stop here *)
          incr active_len;
          link_pending !active_node;
          continue := false
        end
        else begin
          (* split the edge *)
          let split =
            {
              text = next.text;
              start = next.start;
              elen = !active_len;
              children = Hashtbl.create 2;
              slink = None;
              suffix = -1;
            }
          in
          t.node_count <- t.node_count + 1;
          Hashtbl.replace !active_node.children ae_sym split;
          next.start <- next.start + !active_len;
          if next.elen >= 0 then next.elen <- next.elen - !active_len;
          Hashtbl.replace split.children (sym next.text next.start) next;
          let leaf =
            {
              text = txt;
              start = i;
              elen = -1;
              children = Hashtbl.create 1;
              slink = None;
              suffix = i - !remainder + 1;
            }
          in
          t.node_count <- t.node_count + 1;
          new_leaves := leaf :: !new_leaves;
          Hashtbl.replace split.children (sym txt i) leaf;
          link_pending split;
          last_new := Some split;
          decr remainder;
          if !active_node == t.root && !active_len > 0 then begin
            decr active_len;
            active_edge := i - !remainder + 1
          end
          else if not (!active_node == t.root) then
            active_node := (match !active_node.slink with Some s -> s | None -> t.root)
        end
    done
  done;
  (* freeze open edges: only leaves created in this run have them, so the
     whole insertion stays O(|T|) *)
  List.iter (fun nd -> if nd.elen < 0 then nd.elen <- total - nd.start) !new_leaves

let insert t ~doc (contents : string) =
  if Hashtbl.mem t.docs doc then invalid_arg "Gsuffix_tree.insert: duplicate doc id";
  let txt = { doc; chars = contents } in
  Hashtbl.replace t.docs doc contents;
  t.live_syms <- t.live_syms + text_len txt;
  t.view_cache <- None;
  Obs.incr c_inserts;
  ukkonen_insert t txt

let rebuild t =
  Obs.incr c_rebuilds;
  Obs.observe h_rebuild_syms t.live_syms;
  let docs = Hashtbl.fold (fun d s acc -> (d, s) :: acc) t.docs [] in
  t.root <- new_root ();
  t.node_count <- 1;
  t.dead <- Hashtbl.create 16;
  t.dead_syms <- 0;
  List.iter (fun (d, s) -> ukkonen_insert t { doc = d; chars = s }) docs

let delete t doc =
  match Hashtbl.find_opt t.docs doc with
  | None -> false
  | Some contents ->
    Hashtbl.remove t.docs doc;
    Hashtbl.replace t.dead doc ();
    let len = String.length contents + 1 in
    t.live_syms <- t.live_syms - len;
    t.dead_syms <- t.dead_syms + len;
    t.view_cache <- None;
    Obs.incr c_deletes;
    if t.dead_syms > t.live_syms then rebuild t;
    true

let mem t doc = Hashtbl.mem t.docs doc
let get_doc t doc = Hashtbl.find_opt t.docs doc
let doc_count t = Hashtbl.length t.docs
let doc_ids t = Hashtbl.fold (fun d _ acc -> d :: acc) t.docs []
let live_symbols t = t.live_syms
let dead_symbols t = t.dead_syms

(* Find the locus of pattern [p]: the node whose subtree holds exactly the
   suffixes starting with [p]. *)
let locus t (p : string) : node option =
  let pl = String.length p in
  if pl = 0 then invalid_arg "Gsuffix_tree.locus: empty pattern";
  let rec go nd i =
    (* i = number of pattern symbols already matched *)
    if i >= pl then Some nd
    else
      match Hashtbl.find_opt nd.children (Char.code p.[i]) with
      | None -> None
      | Some child ->
        let el = child.elen in
        let rec scan k =
          (* compare pattern[i+k] with label[k] for k < el *)
          if k >= el || i + k >= pl then Some k
          else if sym child.text (child.start + k) = Char.code p.[i + k] then scan (k + 1)
          else None
        in
        (match scan 0 with
        | None -> None
        | Some k -> if i + k >= pl then Some child else go child (i + k))
  in
  go t.root 0

let iter_live_leaves t nd ~f =
  let rec go nd =
    if is_leaf nd then begin
      if not (Hashtbl.mem t.dead nd.text.doc) then f ~doc:nd.text.doc ~off:nd.suffix
    end
    else Hashtbl.iter (fun _ c -> go c) nd.children
  in
  go nd

(* Report all (doc, off) occurrences of [p] among live documents. *)
let search t (p : string) ~f =
  Obs.incr c_searches;
  match locus t p with
  | None -> ()
  | Some nd ->
    (* occurrences whose suffix would run past the end of the document are
       impossible: terminators are unique negative symbols, so any match
       of [p] lies fully inside a live or dead document. *)
    iter_live_leaves t nd ~f

let count t p =
  let c = ref 0 in
  search t p ~f:(fun ~doc:_ ~off:_ -> incr c);
  !c

let occurrences t p =
  let acc = ref [] in
  search t p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
  List.sort compare !acc

(* --- read-plane snapshots --- *)

(* Freeze the live documents.  O(doc_count) when cached (cache hit costs
   nothing); a miss copies the live doc table -- C0 holds at most
   2n/log^2 n symbols, so the copy amortizes against the update that
   invalidated the cache. *)
let snapshot t =
  match t.view_cache with
  | Some v -> v
  | None ->
    let docs = Hashtbl.fold (fun d s acc -> (d, s) :: acc) t.docs [] in
    let arr = Array.of_list (List.sort compare docs) in
    let tbl = Hashtbl.create (max 16 (Array.length arr)) in
    Array.iter (fun (d, s) -> Hashtbl.replace tbl d s) arr;
    let v = { v_docs = arr; v_tbl = tbl; v_live_syms = t.live_syms; v_dead_syms = t.dead_syms } in
    t.view_cache <- Some v;
    v

let view_doc_count v = Array.length v.v_docs

(* The frozen live documents, sorted by id: the C0 snapshot unit the
   persistence layer serializes (Dsdg_store). *)
let view_docs v = Array.to_list v.v_docs
let view_live_symbols v = v.v_live_syms
let view_dead_symbols v = v.v_dead_syms
let view_mem v doc = Hashtbl.mem v.v_tbl doc
let view_get_doc v doc = Hashtbl.find_opt v.v_tbl doc

(* Naive per-document scan; fine because views only ever cover the
   bounded C0 buffer (see module comment on [view]). *)
let view_search v (p : string) ~f =
  let pl = String.length p in
  if pl = 0 then invalid_arg "Gsuffix_tree.view_search: empty pattern";
  Array.iter
    (fun (doc, s) ->
      let n = String.length s in
      for off = 0 to n - pl do
        let rec eq k = k >= pl || (s.[off + k] = p.[k] && eq (k + 1)) in
        if eq 0 then f ~doc ~off
      done)
    v.v_docs

let view_count v p =
  let c = ref 0 in
  view_search v p ~f:(fun ~doc:_ ~off:_ -> incr c);
  !c

let view_occurrences v p =
  let acc = ref [] in
  view_search v p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
  List.rev !acc

(* Rough accounting: nodes dominate (hashtable + fields); count ~16 words
   per node plus the raw document bytes. *)
let space_bits t =
  (t.node_count * 16 * 63)
  + (Hashtbl.fold (fun _ s acc -> acc + String.length s) t.docs 0 * 8)
