(* Synthetic graph / binary-relation generators for the Section 5
   benchmarks: Erdos-Renyi digraphs, preferential-attachment digraphs
   (power-law in-degrees, like web/RDF graphs), and RDF-ish triple
   streams (subject-predicate-object, the paper's motivating database
   application, encoded as two binary relations). *)

type rng = Random.State.t

let erdos_renyi st ~nodes ~edges =
  let seen = Hashtbl.create (2 * edges) in
  let out = ref [] in
  let made = ref 0 in
  while !made < edges do
    let u = Random.State.int st nodes and v = Random.State.int st nodes in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.replace seen (u, v) ();
      out := (u, v) :: !out;
      incr made
    end
  done;
  Array.of_list !out

(* Preferential attachment: node i attaches [out_deg] edges to targets
   chosen proportionally to in-degree + 1. *)
let preferential st ~nodes ~out_deg =
  let targets = ref [] in
  let ntargets = ref 0 in
  let edges = ref [] in
  for u = 0 to nodes - 1 do
    for _ = 1 to out_deg do
      let v =
        if !ntargets = 0 || Random.State.float st 1.0 < 0.2 then Random.State.int st (u + 1)
        else List.nth !targets (Random.State.int st !ntargets)
      in
      edges := (u, v) :: !edges;
      targets := v :: !targets;
      incr ntargets
    done
  done;
  (* dedup *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    !edges
  |> Array.of_list

(* Web-crawl-shaped edge stream at scale: pages are discovered in crawl
   order (sources advance sequentially through [0, nodes)), and each
   page's out-links mix preferential attachment (a uniform draw from the
   endpoint log, i.e. proportional to current degree) with Zipf rank
   skew over the page universe (early pages are the popular ones,
   P(rank) ~ 1/rank).  Array-based throughout -- O(edges) overall,
   unlike [preferential]'s list walk -- so it generates the 10^6..10^7
   edge streams the Section 5 benchmarks need. *)
let web_crawl st ~nodes ~edges =
  if nodes < 2 then invalid_arg "Graph_gen.web_crawl: nodes < 2";
  if edges < 1 then invalid_arg "Graph_gen.web_crawl: edges < 1";
  let out = Array.make edges (0, 0) in
  let log = Array.make (2 * edges) 0 in
  let nlog = ref 0 in
  let push v =
    if !nlog < Array.length log then begin
      log.(!nlog) <- v;
      incr nlog
    end
  in
  let seen = Hashtbl.create (2 * edges) in
  let made = ref 0 in
  let attempts = ref 0 in
  while !made < edges && !attempts < 50 * edges do
    incr attempts;
    (* crawl frontier: the !made-th emitted edge comes from page
       [!made * nodes / edges]; one draw in ten re-visits an earlier
       page (a re-crawl). *)
    let frontier = min (nodes - 1) (!made * nodes / edges) in
    let u =
      if frontier > 0 && Random.State.int st 10 = 0 then Random.State.int st frontier
      else frontier
    in
    (* out-links point anywhere in the page universe, Zipf-ranked so the
       early (low-id) pages are the popular ones; the other half of the
       draws are preferential, from the endpoint log *)
    let v =
      if !nlog > 0 && Random.State.bool st then log.(Random.State.int st !nlog)
      else Text_gen.zipf st ~max:nodes - 1
    in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.replace seen (u, v) ();
      out.(!made) <- (u, v);
      incr made;
      push v;
      if Random.State.int st 4 = 0 then push u
    end
  done;
  if !made = edges then out else Array.sub out 0 !made

(* Degree-biased query nodes: the source endpoint of a uniformly random
   edge -- a node is drawn proportionally to its out-degree, the
   neighbor-scan mix of a crawler re-walking what it found. *)
let neighbor_queries st ~edges ~count =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Graph_gen.neighbor_queries: empty edge set";
  Array.init count (fun _ -> fst edges.(Random.State.int st n))

(* BFS start nodes: either endpoint of a random edge, so traversals
   start from nodes that are actually connected. *)
let bfs_sources st ~edges ~count =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Graph_gen.bfs_sources: empty edge set";
  Array.init count (fun _ ->
      let u, v = edges.(Random.State.int st n) in
      if Random.State.bool st then u else v)

(* RDF-ish triples: few predicates, Zipf-ish subjects/objects.  Returned
   as (subject, predicate, object). *)
let rdf_triples st ~subjects ~predicates ~count =
  Array.init count (fun _ ->
      let s = Random.State.int st subjects in
      let p = Random.State.int st predicates in
      let o = Random.State.int st subjects in
      (s, p, o))
