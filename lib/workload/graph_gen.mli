(** Synthetic graph and triple generators for the Section 5 benchmarks:
    classic random digraphs, web-crawl-shaped edge streams at
    10⁶–10⁷-edge scale, degree-biased query generators, and RDF-ish
    triple streams. *)

(** Deterministic random source ([Random.State.t]); share one across
    calls for a reproducible workload. *)
type rng = Random.State.t

(** Distinct directed edges, uniform endpoints. *)
val erdos_renyi : rng -> nodes:int -> edges:int -> (int * int) array

(** Preferential attachment: power-law in-degrees (web/RDF-like).
    List-based and quadratic — fine up to ~10⁴ edges; use {!web_crawl}
    for larger streams. *)
val preferential : rng -> nodes:int -> out_deg:int -> (int * int) array

(** [web_crawl st ~nodes ~edges] is a web-crawl-shaped stream of
    distinct directed edges: sources advance in crawl order through
    [0, nodes), targets mix preferential attachment (proportional to
    current degree) with Zipf rank skew over the page universe
    (early pages are popular, P(rank) ~ 1/rank). O(edges) time and
    space; returns exactly [edges] pairs unless the density cap is hit
    (then fewer). Raises [Invalid_argument] if [nodes < 2] or
    [edges < 1]. *)
val web_crawl : rng -> nodes:int -> edges:int -> (int * int) array

(** [neighbor_queries st ~edges ~count] draws [count] query nodes for
    successor scans, each the source of a uniformly random edge — i.e.
    out-degree-biased, the re-walk mix of a crawler. Raises
    [Invalid_argument] on an empty edge set. *)
val neighbor_queries : rng -> edges:(int * int) array -> count:int -> int array

(** [bfs_sources st ~edges ~count] draws [count] BFS start nodes, each
    a uniformly random endpoint of a random edge (so traversals start
    connected). Raises [Invalid_argument] on an empty edge set. *)
val bfs_sources : rng -> edges:(int * int) array -> count:int -> int array

(** (subject, predicate, object) triples; duplicates possible. *)
val rdf_triples : rng -> subjects:int -> predicates:int -> count:int -> (int * int * int) array
