(** Synthetic document generators with controllable statistics. The
    paper has no datasets; benches use these (Markov text for Hk < H0,
    Zipf document lengths, URL-shaped strings for the search-log
    motivation). All deterministic given the seed. *)

type rng = Random.State.t

(** Fresh deterministic generator from an integer seed. *)
val rng : int -> rng

(** i.i.d. symbols over ['a'..'a'+sigma); H0 = log2 sigma. *)
val uniform : rng -> sigma:int -> len:int -> string

(** Order-1 Markov chain with a skewed favourite transition: higher
    [skew] lowers H1 below H0. *)
val markov : rng -> sigma:int -> len:int -> skew:float -> string

(** Zipf-ish value in [1, max] (P(v) ~ 1/v). Total on [max >= 1] --
    the result is always within [1, max], including [max = 1] and
    values of [max] large enough that the float draw overflows; raises
    [Invalid_argument] on [max < 1] (an empty value range). *)
val zipf : rng -> max:int -> int

(** [count] draws of [zipf ~max:max_len]; raises [Invalid_argument] on
    [count < 0] or [max_len < 1]. *)
val zipf_lengths : rng -> count:int -> max_len:int -> int array

(** Small word vocabulary used by [english_like] and [url_log]. *)
val words : string array

(** Synthetic https URLs. *)
val url_log : rng -> count:int -> string array

(** Space-separated words from a small vocabulary. *)
val english_like : rng -> len:int -> string

(** [corpus st ~count ~avg_len ~kind] draws [count] documents with
    Zipf-distributed lengths. *)
val corpus :
  rng ->
  count:int ->
  avg_len:int ->
  kind:[ `Uniform of int | `Markov of int * float | `English ] ->
  string array

(** A pattern guaranteed to occur (a random substring of a random
    document); [None] if every document is shorter than [len]. *)
val planted_pattern : rng -> string array -> len:int -> string option

(** A pattern that cannot occur in generated corpora. *)
val miss_pattern : len:int -> string
