(* Synthetic document generators.

   The paper has no experimental section, so benchmarks run on synthetic
   corpora whose statistics are controllable:
   - [uniform]: i.i.d. symbols over a given alphabet (H0 = log sigma);
   - [markov]: order-k chain with skewed transitions, giving Hk < H0
     (exercises the "compressible text" regime of the nHk space claims);
   - [zipf_lengths]: document length distribution with a heavy tail;
   - [url_log]: URL-shaped strings, the paper's search-log motivation;
   - [english_like]: word-based text from a small vocabulary. *)

type rng = Random.State.t

let rng seed = Random.State.make [| seed; 0x5eed |]

let uniform st ~sigma ~len =
  if sigma < 1 || sigma > 26 then invalid_arg "Text_gen.uniform: sigma in [1,26]";
  String.init len (fun _ -> Char.chr (97 + Random.State.int st sigma))

(* Order-1 Markov chain: from each symbol, one "favourite" successor has
   probability [skew]; others share the rest.  Higher skew -> lower H1. *)
let markov st ~sigma ~len ~skew =
  if sigma < 2 || sigma > 26 then invalid_arg "Text_gen.markov: sigma in [2,26]";
  let favourite = Array.init sigma (fun c -> (c + 7) mod sigma) in
  let buf = Bytes.create len in
  let cur = ref (Random.State.int st sigma) in
  for i = 0 to len - 1 do
    Bytes.set buf i (Char.chr (97 + !cur));
    cur :=
      (if Random.State.float st 1.0 < skew then favourite.(!cur)
       else Random.State.int st sigma)
  done;
  Bytes.to_string buf

(* Zipf-ish value in [1, max]: P(v) ~ 1/v.  Guarded against the
   degenerate ends of the parameter range: [max < 1] has an empty value
   range and is a caller bug (previously it silently produced the
   out-of-range 0); [max = 1] short-circuits (log 1 = 0 makes the draw
   pointless); a huge [max] can push [exp] past [max_int] into +inf,
   whose [int_of_float] is undefined -- clamp in float space first. *)
let zipf st ~max =
  if max < 1 then invalid_arg "Text_gen.zipf: max < 1 (the value range [1, max] is empty)";
  if max = 1 then 1
  else begin
    let fmax = float_of_int max in
    let u = Random.State.float st 1.0 in
    let f = exp (u *. log fmax) in
    if Float.is_nan f then 1
    else if f >= fmax then max
    else Stdlib.max 1 (int_of_float f)
  end

let zipf_lengths st ~count ~max_len =
  if count < 0 then invalid_arg "Text_gen.zipf_lengths: count < 0";
  Array.init count (fun _ -> zipf st ~max:max_len)

let words =
  [| "data"; "index"; "query"; "search"; "page"; "user"; "click"; "shop"; "cart"; "item";
     "view"; "list"; "home"; "blog"; "post"; "news"; "wiki"; "docs"; "api"; "help" |]

let url_log st ~count =
  Array.init count (fun _ ->
      let host = words.(Random.State.int st (Array.length words)) in
      let tld = [| "com"; "org"; "net"; "io" |].(Random.State.int st 4) in
      let depth = 1 + Random.State.int st 3 in
      let path =
        String.concat "/"
          (List.init depth (fun _ ->
               words.(Random.State.int st (Array.length words))
               ^ string_of_int (Random.State.int st 100)))
      in
      Printf.sprintf "https://www.%s.%s/%s" host tld path)

let english_like st ~len =
  let buf = Buffer.create len in
  while Buffer.length buf < len do
    Buffer.add_string buf words.(Random.State.int st (Array.length words));
    Buffer.add_char buf ' '
  done;
  String.sub (Buffer.contents buf) 0 len

(* A corpus: [count] documents with the given length distribution and
   symbol source. *)
let corpus st ~count ~avg_len ~kind =
  let gen_one len =
    match kind with
    | `Uniform sigma -> uniform st ~sigma ~len
    | `Markov (sigma, skew) -> markov st ~sigma ~len ~skew
    | `English -> english_like st ~len
  in
  Array.init count (fun _ ->
      let len = Stdlib.max 1 (zipf st ~max:(2 * avg_len)) in
      gen_one len)

(* A pattern that occurs in the corpus: a random substring of a random
   document (guaranteed hits); [miss] instead gives a pattern unlikely to
   occur. *)
let planted_pattern st (docs : string array) ~len =
  let candidates = Array.to_list (Array.map (fun d -> String.length d >= len) docs) in
  if not (List.mem true candidates) then None
  else begin
    let rec pick () =
      let d = docs.(Random.State.int st (Array.length docs)) in
      if String.length d < len then pick ()
      else
        let off = Random.State.int st (String.length d - len + 1) in
        String.sub d off len
    in
    Some (pick ())
  end

let miss_pattern ~len = String.make len 'Z'
