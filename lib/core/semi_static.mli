(** Semi-static deletion-only index (Section 2, first half): a static
    index augmented with a Reporter (Lemma 3) over suffix-array rows, the
    Reporter's integrated counter (Theorem 1), document liveness
    bookkeeping and the n/tau purge threshold.

    The only post-build mutation is {!Make.delete}; when dead symbols
    exceed live/tau the owner is expected to rebuild (see
    {!Make.needs_purge}) -- this module never rebuilds itself. *)

(** The n/tau purge rule as a standalone predicate, computed in division
    form so [dead * tau] cannot overflow near [max_int]. *)
val purge_threshold_exceeded : dead_syms:int -> total_symbols:int -> tau:int -> bool

module Make (I : Static_index.S) : sig
  type t

  (** Immutable read-plane snapshot: the static index and id maps shared
      by reference, the deletion state (dead flags, Reporter, census
      counters) copied at snapshot time. Safe to query from any domain
      while the write plane keeps deleting. *)
  type view

  (** [build ~sample ~tau docs] indexes [(id, text)] pairs. Raises
      [Invalid_argument] on duplicate ids or [tau < 1]. [tick] is called
      once per O(1) construction work. *)
  val build : ?tick:(unit -> unit) -> sample:int -> tau:int -> (int * string) array -> t

  (** [false] for dead or absent documents. *)
  val mem : t -> int -> bool

  val live_symbols : t -> int
  val dead_symbols : t -> int
  val total_symbols : t -> int
  val doc_count : t -> int

  (** Whether dead symbols exceed the n/tau threshold. *)
  val needs_purge : t -> bool

  val is_empty : t -> bool

  (** Lazy deletion: zeroes the document's rows; [false] if absent or
      already dead. *)
  val delete : t -> int -> bool

  (** Report (doc, off) for every surviving occurrence of [p]. *)
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** Count surviving occurrences in O(trange + log n) (Theorem 1). *)
  val count : t -> string -> int

  (** Substring of a live document; [None] if dead/absent/out of range. *)
  val extract : t -> doc:int -> off:int -> len:int -> string option

  val doc_len : t -> int -> int option
  val live_ids : t -> int list

  (** Live documents with contents re-extracted from the index; [tick]
      is charged once per extracted symbol. *)
  val live_docs : ?tick:(unit -> unit) -> t -> (int * string) list

  val space_bits : t -> int
  val index : t -> I.t

  (** {1 Read plane} *)

  (** Cached between deletes; a miss costs one Reporter + dead-array
      copy, amortized against the deletes that invalidated it. *)
  val snapshot : t -> view

  val view_mem : view -> int -> bool
  val view_live_symbols : view -> int
  val view_dead_symbols : view -> int
  val view_doc_count : view -> int
  val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit
  val view_count : view -> string -> int
  val view_extract : view -> doc:int -> off:int -> len:int -> string option
  val view_doc_len : view -> int -> int option
end
