(** Semi-static deletion-only index (Section 2, first half): a static
    index augmented with a Reporter (Lemma 3) over suffix-array rows, the
    Reporter's integrated counter (Theorem 1), document liveness
    bookkeeping and the n/tau purge threshold.

    The only post-build mutation is [delete]; when dead symbols
    exceed live/tau the owner is expected to rebuild (see
    [needs_purge]) -- this module never rebuilds itself. *)

(** The n/tau purge rule as a standalone predicate, computed in division
    form so [dead * tau] cannot overflow near [max_int]. *)
val purge_threshold_exceeded : dead_syms:int -> total_symbols:int -> tau:int -> bool

module Make (I : Static_index.S) : sig
  type t

  (** Immutable read-plane snapshot: the static index and id maps shared
      by reference, the deletion state (dead flags, Reporter, census
      counters) copied at snapshot time. Safe to query from any domain
      while the write plane keeps deleting. *)
  type view

  (** [build ~sample ~tau docs] indexes [(id, text)] pairs. Raises
      [Invalid_argument] on duplicate ids or [tau < 1]. [tick] is called
      once per O(1) construction work. [seq] picks the partial-sums
      backend of the liveness Reporter (default [Sums.Avl]). *)
  val build :
    ?tick:(unit -> unit) ->
    ?seq:Dsdg_delbits.Sums.kind ->
    sample:int ->
    tau:int ->
    (int * string) array ->
    t

  (** [false] for dead or absent documents. *)
  val mem : t -> int -> bool

  (** Symbols of live documents, separators included. O(1). *)
  val live_symbols : t -> int

  (** Symbols of lazily-deleted documents still resident. O(1). *)
  val dead_symbols : t -> int

  (** [live_symbols + dead_symbols] -- the built size. O(1). *)
  val total_symbols : t -> int

  (** Live documents. O(1). *)
  val doc_count : t -> int

  (** Whether dead symbols exceed the n/tau threshold. *)
  val needs_purge : t -> bool

  (** No live documents left. *)
  val is_empty : t -> bool

  (** Lazy deletion: zeroes the document's rows; [false] if absent or
      already dead. *)
  val delete : t -> int -> bool

  (** Report (doc, off) for every surviving occurrence of [p]. *)
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** Count surviving occurrences in O(trange + log n) (Theorem 1). *)
  val count : t -> string -> int

  (** Substring of a live document; [None] if dead/absent/out of range. *)
  val extract : t -> doc:int -> off:int -> len:int -> string option

  (** Length of a live document; [None] if dead or absent. *)
  val doc_len : t -> int -> int option

  (** Ids of the live documents, ascending. *)
  val live_ids : t -> int list

  (** Live documents with contents re-extracted from the index; [tick]
      is charged once per extracted symbol. *)
  val live_docs : ?tick:(unit -> unit) -> t -> (int * string) list

  (** Measured bits: static index + Reporter + deletion bookkeeping. *)
  val space_bits : t -> int

  (** The wrapped static index (shared, immutable). *)
  val index : t -> I.t

  (** {1 Read plane} *)

  (** Cached between deletes; a miss costs one Reporter + dead-array
      copy, amortized against the deletes that invalidated it. *)
  val snapshot : t -> view

  (** Liveness at snapshot time, like [mem]. *)
  val view_mem : view -> int -> bool

  (** Like [live_symbols], frozen at snapshot time. *)
  val view_live_symbols : view -> int

  (** Like [dead_symbols], frozen at snapshot time. *)
  val view_dead_symbols : view -> int

  (** Like [doc_count], frozen at snapshot time. *)
  val view_doc_count : view -> int

  (** Like [search], against the snapshot's dead set. *)
  val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** Like [count], against the snapshot's Reporter. *)
  val view_count : view -> string -> int

  (** Like [extract], against the snapshot's dead set. *)
  val view_extract : view -> doc:int -> off:int -> len:int -> string option

  (** Like [doc_len], against the snapshot's dead set. *)
  val view_doc_len : view -> int -> int option

  (** {1 Persistence}

      The snapshot unit serialized by [Dsdg_store]: every resident
      document (live and dead, in slot order, contents re-extracted from
      the static index) plus the deletion bit vector. The Reporter is
      not serialized -- it is a deterministic function of the index and
      the dead set, reconstructed by {!of_dump}. *)

  (** O(n) extraction; mutates nothing. *)
  val dump : t -> (int * string) array * bool array

  (** Same, from an immutable view -- safe on a checkpoint worker domain
      while the write plane keeps deleting. *)
  val view_dump : view -> (int * string) array * bool array

  (** Inverse of {!dump}: rebuild, then replay the deletion bit vector,
      restoring census counters and query answers exactly. Raises
      [Invalid_argument] if the bit vector length does not match. *)
  val of_dump :
    ?seq:Dsdg_delbits.Sums.kind ->
    sample:int ->
    tau:int ->
    (int * string) array ->
    bool array ->
    t
end
