(** The contract a static index must satisfy to be dynamized by the
    Transformations (Section 2): it must be (u(n), w(n))-constructible
    with an interruptible construction ([tick]), answer queries by the
    two-step range-finding/locating method over a suffix-array row
    domain, and recover the rank of any document suffix (tSA) so that
    lazy deletions can mark the right rows.

    Implementations must be immutable after [build]: the read-plane
    snapshots of [Semi_static] share the index by reference across
    reader domains. *)

module type S = sig
  type t

  (** Short backend tag, e.g. ["fm"], used in [describe] strings. *)
  val name : string

  (** Construction; [tick] is called once per O(1) work so the build can
      run inside an Incremental job. [sample] is the space/time
      parameter s. *)
  val build : ?tick:(unit -> unit) -> sample:int -> string array -> t

  (** Number of indexed documents (they are all resident: deletion is
      the wrapping [Semi_static]'s job). *)
  val doc_count : t -> int

  (** Length of document [i] in symbols, separator excluded. O(1). *)
  val doc_len : t -> int -> int

  (** Total symbols including one separator per document. *)
  val total_len : t -> int

  (** Size of the suffix-array row domain ([>= total_len]). *)
  val row_count : t -> int

  (** Range-finding: the half-open row range of suffixes starting with
      the pattern, or [None]. O(trange). *)
  val range : t -> string -> (int * int) option

  (** Locating: row -> (document, offset). O(tlocate). *)
  val locate : t -> int -> int * int

  (** Extraction of a document substring. O(textract). *)
  val extract : t -> doc:int -> off:int -> len:int -> string

  (** Rows of every suffix of a document (including its separator), used
      to implement lazy deletion: O(|doc| + tSA) total. *)
  val iter_doc_rows : t -> int -> f:(int -> unit) -> unit

  (** Measured size of every component, in bits (the empirical side of
      the paper's space claims). *)
  val space_bits : t -> int
end
