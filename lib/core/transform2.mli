(** Transformation 2 (Section 3): static index -> fully-dynamic index
    with worst-case update bounds.

    On top of Transformation 1's layout: locked copies L_j that keep
    answering queries during merges, background construction of the new
    sub-collections (cooperative Incremental jobs when [jobs = 0],
    domain-pool workers when [jobs >= 1]), single-document Temp indexes
    so new text is queryable immediately, and top collections cleaned by
    the Dietz-Sleator schedule.

    Every successful update also publishes an immutable [view]
    through an atomic epoch pointer, so queries can run on other domains
    against the latest snapshot while the single writer keeps mutating
    (see DESIGN.md section 9). *)

(** Deliberate scheduling defects, injectable for differential-checker
    self-tests. [`Skip_top_clean] disables Dietz-Sleator top cleaning;
    [`Worker_crash] (pooled mode) crashes every worker job and breaks
    the recovery so documents are lost; [`Stale_epoch] makes successful
    deletes skip the epoch publication, so the write plane stays correct
    while published views serve stale data -- only a concurrent-reader
    oracle can catch it. *)
type fault = [ `Skip_top_clean | `Worker_crash | `Stale_epoch ]

(** Read-only snapshot of the scheduling counters. *)
type stats = {
  jobs_started : int;
  jobs_completed : int;
  forced : int;
  restructures : int;
  top_cleanings : int;
  sync_merges : int;
  max_job_step : int; (* largest single-update job work, for the worst-case claim *)
  crash_fallbacks : int; (* pooled jobs that failed and were rebuilt synchronously *)
}

module Make (I : Static_index.S) : sig
  type t

  (** Immutable read-plane snapshot: every queryable structure (C0/L0
      buffers, C_j / L_j / Temp_j / T_k) frozen under its census name,
      plus the census scalars. Safe to query from any domain. *)
  type view

  (** [jobs = 0] (default) steps background jobs cooperatively inside
      updates; [jobs >= 1] runs them on a domain-pool executor. *)
  val create :
    ?sample:int ->
    ?tau:int ->
    ?epsilon:float ->
    ?work_factor:int ->
    ?fault:fault ->
    ?jobs:int ->
    ?seq:Dsdg_delbits.Sums.kind ->
    unit ->
    t

  (** Returns the fresh document id. *)
  val insert : t -> string -> int

  (** [false] if the document is absent (or already deleted). *)
  val delete : t -> int -> bool

  (** Whether [id] names a live document. O(1). *)
  val mem : t -> int -> bool

  (** Report every surviving occurrence, querying buffers, locked
      copies, Temps and tops (Section 3's query decomposition). *)
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** All [(doc, off)] occurrences, sorted. *)
  val matches : t -> string -> (int * int) list

  (** Occurrence count, summed across structures (Theorem 1). *)
  val count : t -> string -> int

  (** Substring of a live document; [None] if dead or out of range. *)
  val extract : t -> doc:int -> off:int -> len:int -> string option

  (** Live documents across all structures. *)
  val doc_count : t -> int

  (** Live symbols, one separator per document. *)
  val total_symbols : t -> int

  (** Measured bits of every live structure. *)
  val space_bits : t -> int

  (** Scheduling counters (jobs, forced completions, cleanings). *)
  val stats : t -> stats

  (** The instance's observability scope. *)
  val obs : t -> Dsdg_obs.Obs.scope

  (** Recent structural events, newest first. *)
  val events : t -> string list

  (** [`Sync] when [jobs = 0], otherwise the executor's mode. *)
  val jobs_mode : t -> [ `Sync | `Pool of int ]

  (** Current nf snapshot and schedule capacity of level [j], for the
      differential checker's invariant oracles. *)
  val nf : t -> int

  (** Schedule capacity of level [j] under the current [nf]. *)
  val level_capacity : t -> int -> int

  (** Deleted symbols since the last cleaning dispatch, and the
      Dietz-Sleator period delta = nf/(2 tau lg tau). *)
  val clean_schedule : t -> int * int

  (** Census of all structures as [(name, live, dead)]: the measured
      counterpart of Figure 2. *)
  val census : t -> (string * int * int) list

  (** Space per structure, for the nHk + o(n) accounting. *)
  val space_census : t -> (string * int) list

  (** Background construction jobs currently in flight. *)
  val pending_jobs : t -> int

  (** Land every in-flight job now (each counts as a forced completion).
      Publishes a fresh epoch only if jobs actually landed. *)
  val drain : t -> unit

  (** Drain, then stop and join the worker domains. The index stays
      fully usable afterwards; new jobs simply run synchronously. *)
  val close : t -> unit

  (** {1 Read plane}

      [view t] is wait-free: one [Atomic.get]. The writer publishes a
      fresh view (epoch + 1) after every successful update (and after a
      [drain] that landed jobs), so with a single-threaded writer the
      epoch tracks the number of completed updates. *)

  val view : t -> view

  (** Completed updates when the view was published. *)
  val view_epoch : view -> int

  (** The nf snapshot frozen at publish time. *)
  val view_nf : view -> int

  (** Like [doc_count], frozen at publish time. *)
  val view_doc_count : view -> int

  (** Like [total_symbols], frozen at publish time. *)
  val view_total_symbols : view -> int

  (** Background jobs that were in flight at publish time. *)
  val view_pending_jobs : view -> int

  (** Like [search], against the snapshot. *)
  val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** Like [matches], against the snapshot. *)
  val view_matches : view -> string -> (int * int) list

  (** Like [count], against the snapshot. *)
  val view_count : view -> string -> int

  (** Like [mem], against the snapshot. *)
  val view_mem : view -> int -> bool

  (** Like [extract], against the snapshot. *)
  val view_extract : view -> doc:int -> off:int -> len:int -> string option

  (** Per-structure (name, live, dead) symbol counts frozen at publish
      time. *)
  val view_census : view -> (string * int * int) list

  (** {1 Persistence}

      Hooks for [Dsdg_store]: a dump is the logical state of a published
      epoch -- per-structure resident documents + deletion bit vectors
      under their census names -- from which {!restore} rebuilds an
      equivalent index (same document ids, same query answers, same
      Dietz-Sleator schedule state). *)

  (** The next document id the index would assign. *)
  val next_id : t -> int

  (** Snapshot units of a published epoch under their census names: the
      C0/L0 buffers as frozen live documents (empty deletion bit
      vectors), every semi-static structure ([Cj], [Lj], [Tempj], [Tk])
      as resident documents + deletion bit vector. Immutable inputs only
      -- safe to call (and serialize from) a checkpoint worker domain. *)
  val view_components : view -> (string * (int * string) array * bool array) list

  (** Inverse of {!view_components}. Canonical structures ([C0], [Cj],
      [Tk]) are rebuilt exactly where the dump says they lived; a locked
      copy or staging area ([L0]/[Lj]/[Tempj]) marks a rebuild job that
      died with the process, so its live documents are folded into fresh
      top collections (the job's work completed eagerly). [nf] and
      [del_counter] restore the schedule state verbatim; the first
      published view continues [epoch]. Raises [Invalid_argument] on an
      unrecognized component name. O(n) index construction. *)
  val restore :
    ?sample:int ->
    ?tau:int ->
    ?epsilon:float ->
    ?work_factor:int ->
    ?fault:fault ->
    ?jobs:int ->
    ?seq:Dsdg_delbits.Sums.kind ->
    next_id:int ->
    nf:int ->
    del_counter:int ->
    epoch:int ->
    components:(string * (int * string) array * bool array) list ->
    unit ->
    t
end
