(** FM-index static backend (compressed, nHk-style space): BWT +
    wavelet tree with sampled locate. Satisfies {!Static_index.S};
    immutable after [build]. *)

include Static_index.S
