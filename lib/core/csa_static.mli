(** Sadakane-style psi-based compressed suffix array (Table 1's row
    [39]): psi function + sampled positions. Satisfies
    {!Static_index.S}; immutable after [build]. *)

include Static_index.S
