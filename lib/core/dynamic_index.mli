(** Dynamic compressed document index: the library's front door.

    A changing collection of documents supporting pattern search,
    counting, substring extraction, insertion and deletion -- the
    paper's "library management" problem, with the dynamization strategy
    and the static backend pluggable at creation time. *)

(** Dynamization strategy. *)
type variant =
  | Amortized  (** Transformation 1: geometric schedule, amortized updates. *)
  | Amortized_loglog
      (** Transformation 3 (Appendix A.4): doubling schedule, cheaper
          amortized insertions, O(log log n) sub-collections. *)
  | Worst_case
      (** Transformation 2: locked copies + background incremental
          rebuilds; worst-case update bounds. *)

(** Static index plugged into the transformation. *)
type backend =
  | Fm  (** FM-index: compressed (nHk-style) space. *)
  | Plain_sa  (** Plain suffix array: Table 3's fast/large class. *)
  | Csa  (** Sadakane-style psi-based CSA: Table 1's row [39]. *)

type t

(** [create ()] defaults to [Worst_case] over [Fm]. [sample] is the
    suffix-array sampling rate s (locate cost vs space); [tau] the
    lazy-deletion threshold (dead fraction tolerated before purge).
    [fault] plants a deliberate scheduling defect (see
    {!Transform2.fault}) so the differential checker can prove it
    catches real bugs; it only affects [Worst_case] instances.

    [jobs] (default [0]) sets the background-rebuild executor: [0] is
    the deterministic Sync mode (rebuild jobs stepped cooperatively
    inside updates, bit-for-bit the historical behaviour); [n >= 1]
    spawns [n] worker domains ({!Dsdg_exec.Executor}) that run
    [Worst_case] rebuild jobs (and the amortized variants'
    purge/global-rebuild constructions) off the update path, with
    results installed at exactly the paper's install points.

    [readers] (default [0]) sets the reader pool: [n >= 1] spawns [n]
    domains that serve {!query} calls against the latest published
    {!view} while updates stay exclusive on the caller's domain. Call
    {!close} when done with a pooled index (jobs or readers).

    [retain_epochs] (default [0]) bounds the epoch-retention ring: the
    [n] most recently published views stay resolvable by {!view_at} /
    [query ~epoch] after the writer has moved on. [0] retains nothing
    beyond the live view -- the historical behavior. *)
val create :
  ?variant:variant ->
  ?backend:backend ->
  ?sample:int ->
  ?tau:int ->
  ?fault:Transform2.fault ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  unit ->
  t

(** [insert t text] adds a document and returns its id. *)
val insert : t -> string -> int

(** [delete t id]; [false] if no such live document. *)
val delete : t -> int -> bool

(** Whether [id] names a live document. O(1). *)
val mem : t -> int -> bool

(** All (document, offset) occurrences, sorted. Raises
    [Invalid_argument] on the empty pattern (uniformly across variants
    and backends; under the paper's occurrence definition [""] would
    degenerately match every position). *)
val search : t -> string -> (int * int) list

(** Same occurrences as {!search}, streamed. Raises [Invalid_argument]
    on the empty pattern. *)
val iter_matches : t -> string -> f:(doc:int -> off:int -> unit) -> unit

(** Number of occurrences; cheaper than reporting (Theorem 1). Raises
    [Invalid_argument] on the empty pattern. *)
val count : t -> string -> int

(** Substring of a live document; [None] if the document is dead or the
    range is invalid. [len = 0] is uniformly [Some ""] for a live
    document and [None] otherwise, regardless of [off] and of which
    sub-collection (including a locked [L_j] mid-rebuild) holds the
    document. *)
val extract : t -> doc:int -> off:int -> len:int -> string option

(** Number of live documents. *)
val doc_count : t -> int

(** Live symbols including one separator per document. *)
val total_symbols : t -> int

(** Measured space of all live structures. *)
val space_bits : t -> int

(** e.g. ["transform2/fm"]. *)
val describe : t -> string

(** The underlying transformation's observability scope: counters
    (inserts, deletes, merges/purges or jobs/forced), latency and
    dead-fraction histograms, and the structural event ring. See
    {!Dsdg_obs.Obs} and the "Observability" section of DESIGN.md. *)
val obs_scope : t -> Dsdg_obs.Obs.scope

(** Human-readable recent structural events, newest first. *)
val events : t -> string list

(** Read-only structural snapshot for invariant checking (consumed by
    the differential-checking oracles in [Dsdg_check.Oracle]). *)
type probe = {
  pr_census : (string * int * int) list;
      (** per-structure [(name, live, dead)] symbol counts; names follow
          the paper's Figure 2: ["C0"], ["C3"], ["L2"], ["Temp4"],
          ["T7"]. *)
  pr_capacity : int -> int;
      (** level [j] -> the schedule's max size under the current [nf]
          snapshot ([2 nf / log^2 nf * log^(eps j) nf] for the geometric
          schedule). *)
  pr_nf : int;  (** the current global size snapshot nf *)
  pr_tau : int;  (** lazy-deletion threshold the instance was built with *)
  pr_pending_jobs : int;
      (** background construction jobs in flight; always [0] for the
          amortized variants. *)
  pr_jobs : (int * int * int) option;
      (** [Worst_case] only: [(jobs_started, jobs_completed, forced)]. *)
  pr_clean : (int * int) option;
      (** [Worst_case] only: [(deleted symbols since the last
          Dietz-Sleator top-cleaning dispatch, period delta)]. The
          schedule keeps the counter below twice the period. *)
}

(** Capture the current structural state as a {!probe}. *)
val probe : t -> probe

(** {1 Read plane}

    Every successful update publishes an immutable snapshot of the whole
    index through an atomic epoch pointer. [view t] fetches the latest
    one -- a single [Atomic.get] -- and the snapshot can then be queried
    from any domain, without synchronization, while the writer keeps
    mutating. See DESIGN.md section 9. *)

(** An immutable point-in-time snapshot of the index. Queries on a view
    follow the same conventions as their write-plane counterparts
    (empty-pattern rejection, [len = 0] extraction). *)
type view

(** The latest published snapshot: one [Atomic.get], wait-free. *)
val view : t -> view

(** Number of completed updates when the view was published (0 = the
    empty index; with a single-threaded writer, epoch [e] is the state
    after exactly [e] successful updates). *)
val view_epoch : view -> int

(** Live documents at publish time. *)
val view_doc_count : view -> int

(** Live symbols (one separator per document) at publish time. *)
val view_total_symbols : view -> int

(** Per-structure [(name, live, dead)] symbol counts frozen at publish
    time (same names as {!probe}'s census). *)
val view_census : view -> (string * int * int) list

(** Liveness at publish time, like {!mem}. *)
val view_mem : view -> int -> bool

(** All (document, offset) occurrences, sorted. *)
val view_search : view -> string -> (int * int) list

(** Streamed occurrences, like {!iter_matches}. *)
val view_iter_matches : view -> string -> f:(doc:int -> off:int -> unit) -> unit

(** Occurrence count, like {!count}. *)
val view_count : view -> string -> int

(** Substring extraction, like {!extract}. *)
val view_extract : view -> doc:int -> off:int -> len:int -> string option

(** Size of the reader pool ([0] when queries run on the caller's
    domain). *)
val readers : t -> int

(** [query t f] runs [f] against the latest published view -- on a
    reader-pool domain when the index was created with [readers >= 1],
    inline otherwise. The view is fetched on the serving domain, so a
    pooled query sees the epoch current when it actually runs. With
    [~epoch], [f] instead runs against the retained or pinned view of
    that epoch ({!view_at}); [Invalid_argument] if the epoch is neither
    the live one, in the retention ring, nor pinned. Exceptions from
    [f] are re-raised on the caller. *)
val query : ?epoch:int -> t -> (view -> 'a) -> 'a

(** {1 Epoch retention and pinning}

    With [create ~retain_epochs:n], the [n] most recently published
    views are kept in an immutable ring (one [Atomic.set] per update on
    the writer; wait-free [Atomic.get] resolution on any domain), so
    recent epochs can be named by point-in-time queries. A {!pin}
    additionally shields one view from ring eviction until {!unpin} --
    the mechanism behind consistent backups taken while the writer
    proceeds. *)

(** The [retain_epochs] this instance was created with. *)
val retain_epochs : t -> int

(** Resolve an epoch: the live view, the retention ring, then the pin
    table. [None] if the epoch is no longer (or not yet) resolvable. *)
val view_at : t -> epoch:int -> view option

(** Epochs currently resolvable by {!view_at}, ascending (live view +
    ring + pins). *)
val retained : t -> int list

(** A pinned view: survives retention eviction until {!unpin}. *)
type pin

(** Pin the current view (or, with [~epoch], a retained one --
    [Invalid_argument] if it is not resolvable). Call on the writer
    thread; the pin table is published for wait-free readers but
    mutated single-threaded. *)
val pin : ?epoch:int -> t -> pin

(** The pinned view itself (immutable, query from any domain). *)
val pin_view : pin -> view

(** Epoch of the pinned view. *)
val pin_epoch : pin -> int

(** Release a pin (idempotent). *)
val unpin : t -> pin -> unit

(** Live pins on this instance. *)
val pinned_count : t -> int

(** {1 Persistence}

    Hooks consumed by [Dsdg_store]: a {!dump} is the logical state of
    one published epoch -- per-structure resident documents + deletion
    bit vectors under their census names, plus the scalars that are not
    derivable from them. Derived structures (suffix arrays, BWTs,
    wavelet trees, Reporters) are deliberately absent from a dump: they
    are deterministic functions of the components and are rebuilt by
    {!restore}. See DESIGN.md section 10. *)

type dump = {
  dm_variant : variant;
  dm_backend : backend;
  dm_sample : int;
  dm_tau : int;
  dm_epoch : int;  (** completed updates at capture time *)
  dm_next_id : int;  (** next document id the index would assign *)
  dm_nf : int;  (** global size snapshot nf (schedule state) *)
  dm_del_counter : int;
      (** Dietz-Sleator cleaning counter ([Worst_case] only; [0]
          otherwise) *)
  dm_components : (string * (int * string) array * bool array) list;
      (** per-structure (census name, resident docs, deletion bit
          vector) *)
}

(** Full synchronous dump: drains in-flight background jobs first (so
    the component list is canonical -- [C0]/[Cj]/[Tk] only), then
    captures the published view and the writer scalars. O(n). *)
val dump : t -> dump

(** [(next_id, nf, del_counter)] -- the writer-mutable scalars a
    checkpoint must capture synchronously on the writer domain. *)
val dump_scalars : t -> int * int * int

(** Per-structure (census name, resident documents, deletion bit
    vector) of a published view. Reads only immutable data -- safe on
    any domain. O(n). *)
val view_components : view -> (string * (int * string) array * bool array) list

(** Two-phase capture for background checkpoints: [checkpoint_header t
    v] is O(1) and must run on the writer domain (it reads the mutable
    scalars); it returns a dump with [dm_components = []]. *)
val checkpoint_header : t -> view -> dump

(** [checkpoint_body d v] fills [d.dm_components] from the immutable
    view [v] -- the O(n) extraction, safe on a checkpoint worker
    domain. *)
val checkpoint_body : dump -> view -> dump

(** Rebuild an equivalent index from a dump: same document ids, same
    query answers, same schedule state, first published view continuing
    [dm_epoch]. Locked-copy / staging components ([L*], [Temp*]) in the
    dump mark rebuild jobs that died with the process; their live
    documents are folded into fresh top collections. [fault], [jobs]
    and [readers] are fresh runtime choices, not part of the dump.
    O(n) index construction. *)
val restore :
  ?fault:Transform2.fault ->
  ?jobs:int ->
  ?readers:int ->
  ?seq_backend:Dsdg_delbits.Sums.kind ->
  ?retain_epochs:int ->
  dump ->
  t

(** Land every in-flight background job now (each counts as a forced
    completion); no-op for the amortized variants. *)
val drain : t -> unit

(** Drain, then stop and join the executor's worker domains (background
    rebuilds and the reader pool alike). Required for a clean exit when
    the index was created with [jobs >= 1] or [readers >= 1]; harmless
    (and idempotent) otherwise. The index stays usable -- subsequent
    rebuilds run inline and queries fall back to the caller's domain. *)
val close : t -> unit
