(** Dynamic compressed document index: the library's front door.

    A changing collection of documents supporting pattern search,
    counting, substring extraction, insertion and deletion -- the
    paper's "library management" problem, with the dynamization strategy
    and the static backend pluggable at creation time. *)

(** Dynamization strategy. *)
type variant =
  | Amortized  (** Transformation 1: geometric schedule, amortized updates. *)
  | Amortized_loglog
      (** Transformation 3 (Appendix A.4): doubling schedule, cheaper
          amortized insertions, O(log log n) sub-collections. *)
  | Worst_case
      (** Transformation 2: locked copies + background incremental
          rebuilds; worst-case update bounds. *)

(** Static index plugged into the transformation. *)
type backend =
  | Fm  (** FM-index: compressed (nHk-style) space. *)
  | Plain_sa  (** Plain suffix array: Table 3's fast/large class. *)
  | Csa  (** Sadakane-style psi-based CSA: Table 1's row [39]. *)

type t

(** [create ()] defaults to [Worst_case] over [Fm]. [sample] is the
    suffix-array sampling rate s (locate cost vs space); [tau] the
    lazy-deletion threshold (dead fraction tolerated before purge).
    [fault] plants a deliberate scheduling defect (see
    {!Transform2.fault}) so the differential checker can prove it
    catches real bugs; it only affects [Worst_case] instances. *)
val create :
  ?variant:variant ->
  ?backend:backend ->
  ?sample:int ->
  ?tau:int ->
  ?fault:Transform2.fault ->
  unit ->
  t

(** [insert t text] adds a document and returns its id. *)
val insert : t -> string -> int

(** [delete t id]; [false] if no such live document. *)
val delete : t -> int -> bool

val mem : t -> int -> bool

(** All (document, offset) occurrences, sorted. *)
val search : t -> string -> (int * int) list

val iter_matches : t -> string -> f:(doc:int -> off:int -> unit) -> unit

(** Number of occurrences; cheaper than reporting (Theorem 1). *)
val count : t -> string -> int

(** Substring of a live document; [None] if the document is dead or the
    range is invalid. *)
val extract : t -> doc:int -> off:int -> len:int -> string option

val doc_count : t -> int

(** Live symbols including one separator per document. *)
val total_symbols : t -> int

(** Measured space of all live structures. *)
val space_bits : t -> int

(** e.g. ["transform2/fm"]. *)
val describe : t -> string

(** The underlying transformation's observability scope: counters
    (inserts, deletes, merges/purges or jobs/forced), latency and
    dead-fraction histograms, and the structural event ring. See
    {!Dsdg_obs.Obs} and the "Observability" section of DESIGN.md. *)
val obs_scope : t -> Dsdg_obs.Obs.scope

(** Human-readable recent structural events, newest first. *)
val events : t -> string list

(** Read-only structural snapshot for invariant checking (consumed by
    the differential-checking oracles in [Dsdg_check.Oracle]). *)
type probe = {
  pr_census : (string * int * int) list;
      (** per-structure [(name, live, dead)] symbol counts; names follow
          the paper's Figure 2: ["C0"], ["C3"], ["L2"], ["Temp4"],
          ["T7"]. *)
  pr_capacity : int -> int;
      (** level [j] -> the schedule's max size under the current [nf]
          snapshot ([2 nf / log^2 nf * log^(eps j) nf] for the geometric
          schedule). *)
  pr_nf : int;  (** the current global size snapshot nf *)
  pr_tau : int;  (** lazy-deletion threshold the instance was built with *)
  pr_pending_jobs : int;
      (** background construction jobs in flight; always [0] for the
          amortized variants. *)
  pr_jobs : (int * int * int) option;
      (** [Worst_case] only: [(jobs_started, jobs_completed, forced)]. *)
  pr_clean : (int * int) option;
      (** [Worst_case] only: [(deleted symbols since the last
          Dietz-Sleator top-cleaning dispatch, period delta)]. The
          schedule keeps the counter below twice the period. *)
}

val probe : t -> probe
