(* Top-level convenience API over the Transformations: a dynamic
   compressed document index with pluggable dynamization strategy and
   static-index backend.

   {[
     let idx = Dynamic_index.create () in
     let id = Dynamic_index.insert idx "some document text" in
     Dynamic_index.search idx "cument"   (* [(id, 4)] *)
   ]} *)

type variant =
  | Amortized (* Transformation 1, geometric schedule *)
  | Amortized_loglog (* Transformation 3 (Appendix A.4), doubling schedule *)
  | Worst_case (* Transformation 2 *)

type backend =
  | Fm (* compressed: FM-index (BWT + wavelet), nHk-style space *)
  | Plain_sa (* fast/large: plain suffix array, Table 3 class *)
  | Csa (* compressed: Sadakane-style psi-based CSA, Table 1 row [39] *)

(* Read-only structural snapshot for the invariant oracles in Dsdg_check:
   the per-structure census (with dead counts), the schedule's level
   capacities, the current nf snapshot and, for Transformation 2, the
   background-job counters. *)
type probe = {
  pr_census : (string * int * int) list; (* name, live, dead *)
  pr_capacity : int -> int; (* level j -> schedule capacity under current nf *)
  pr_nf : int;
  pr_tau : int;
  pr_pending_jobs : int; (* background jobs in flight (always 0 for T1/T3) *)
  pr_jobs : (int * int * int) option; (* T2 only: started, completed, forced *)
  pr_clean : (int * int) option;
      (* T2 only: (deleted symbols since the last top-cleaning dispatch,
         period delta); the Dietz-Sleator schedule keeps the counter
         below twice the period *)
}

(* Read-plane snapshot, uniform across every variant x backend: the
   underlying transformation's typed view captured in closures.  A view
   is immutable end to end, so it can be queried from any domain (the
   reader pool, or raw [Domain.spawn]) without synchronization. *)
type view = {
  vw_epoch : int;
  vw_doc_count : int;
  vw_total_symbols : int;
  vw_census : (string * int * int) list;
  vw_search : string -> f:(doc:int -> off:int -> unit) -> unit;
  vw_count : string -> int;
  vw_extract : doc:int -> off:int -> len:int -> string option;
  vw_mem : int -> bool;
  vw_components : unit -> (string * (int * string) array * bool array) list;
      (* persistence: per-structure resident docs + deletion bit vectors,
         extracted lazily (O(n)) from the frozen structures -- safe to
         call on a checkpoint worker domain *)
}

(* The logical state of one published epoch -- everything [Dsdg_store]
   serializes.  Derived structures (suffix arrays, BWTs, wavelet trees,
   Reporters) are deliberately absent: they are deterministic functions
   of the components, rebuilt on [restore]. *)
type dump = {
  dm_variant : variant;
  dm_backend : backend;
  dm_sample : int;
  dm_tau : int;
  dm_epoch : int;
  dm_next_id : int;
  dm_nf : int;
  dm_del_counter : int; (* Dietz-Sleator cleaning counter; 0 for T1/T3 *)
  dm_components : (string * (int * string) array * bool array) list;
}

type ops = {
  op_insert : string -> int;
  op_delete : int -> bool;
  op_mem : int -> bool;
  op_search : string -> f:(doc:int -> off:int -> unit) -> unit;
  op_count : string -> int;
  op_extract : doc:int -> off:int -> len:int -> string option;
  op_doc_count : unit -> int;
  op_total_symbols : unit -> int;
  op_space_bits : unit -> int;
  op_describe : unit -> string;
  op_obs : unit -> Dsdg_obs.Obs.scope;
  op_events : unit -> string list;
  op_probe : unit -> probe;
  op_next_id : unit -> int; (* persistence: the next id the index would assign *)
  op_view : unit -> view; (* latest published epoch: one Atomic.get *)
  op_drain : unit -> unit; (* land every in-flight background job now *)
  op_close : unit -> unit; (* drain + stop/join executor domains, if any *)
}

module Exec = Dsdg_exec.Executor

(* Retention/pinning metrics live on a "core" scope so the read-plane
   time-travel machinery is observable alongside the per-transformation
   scopes. *)
let obs_core = Dsdg_obs.Obs.scope "core"
let c_evictions = Dsdg_obs.Obs.counter obs_core "retention_evictions"
let c_retained = Dsdg_obs.Obs.counter obs_core "epochs_retained"
let g_ring = Dsdg_obs.Obs.gauge obs_core "retained_views"
let g_pinned = Dsdg_obs.Obs.gauge obs_core "pinned_views"

type t = {
  ops : ops;
  readers : Exec.t option;
  (* creation parameters, recorded verbatim into every dump *)
  variant : variant;
  backend : backend;
  sample : int;
  tau : int;
  (* bounded epoch retention: the [retain] most recently published
     views, newest first, held in an immutable list behind one Atomic so
     any domain can resolve [view_at] wait-free while the writer pushes.
     [retain = 0] keeps the ring empty -- the historical behavior. *)
  retain : int;
  ring : view list Atomic.t;
  (* pinned views survive ring eviction until [unpin]; tokens are local
     to this instance. *)
  pins : (int * view) list Atomic.t;
  pin_next : int Atomic.t;
}

module T1_fm = Transform1.Make (Fm_static)
module T1_sa = Transform1.Make (Sa_static)
module T1_csa = Transform1.Make (Csa_static)
module T2_fm = Transform2.Make (Fm_static)
module T2_sa = Transform2.Make (Sa_static)
module T2_csa = Transform2.Make (Csa_static)


(* API conventions enforced uniformly across every variant x backend
   (the backends disagree on these edge cases, which is exactly the kind
   of drift the differential checker exists to catch):

   - the empty pattern is rejected with [Invalid_argument]: under the
     paper's occurrence definition [""] would match at every position of
     every live document (live symbols + one sentinel per document), a
     degenerate query no backend answers in sublinear time -- and the
     three static indexes each rejected it with a *different* message;
   - [extract ~len:0] is [Some ""] for a live document and [None] for a
     dead/absent one, regardless of [off] and of which sub-collection
     (including a locked [L_j] mid-rebuild) owns the document. *)
let enforce_conventions ops =
  {
    ops with
    op_search =
      (fun p ~f ->
        if p = "" then invalid_arg "Dynamic_index: empty pattern";
        ops.op_search p ~f);
    op_count =
      (fun p ->
        if p = "" then invalid_arg "Dynamic_index: empty pattern";
        ops.op_count p);
    op_extract =
      (fun ~doc ~off ~len ->
        if len = 0 then (if ops.op_mem doc then Some "" else None)
        else ops.op_extract ~doc ~off ~len);
  }

(* Views get the same conventions as the write-plane ops: a query must
   behave identically whichever plane answers it. *)
let mk_view ~epoch ~docs ~syms ~census ~search ~count ~extract ~mem ~components =
  {
    vw_epoch = epoch;
    vw_doc_count = docs;
    vw_total_symbols = syms;
    vw_census = census;
    vw_components = components;
    vw_search =
      (fun p ~f ->
        if p = "" then invalid_arg "Dynamic_index: empty pattern";
        search p ~f);
    vw_count =
      (fun p ->
        if p = "" then invalid_arg "Dynamic_index: empty pattern";
        count p);
    vw_extract =
      (fun ~doc ~off ~len ->
        if len = 0 then (if mem doc then Some "" else None) else extract ~doc ~off ~len);
    vw_mem = mem;
  }

(* Shared constructor behind [create] and [restore]: when [restore_from]
   is set, each branch rebuilds the transformation from the dump's
   components instead of starting empty -- everything else (closure
   wiring, conventions, reader pool) is identical. *)
let make ~variant ~backend ~sample ~tau ~seq ?fault ~jobs ~readers ?(retain_epochs = 0)
    ?restore_from () : t =
  let t1_probe census_full level_capacity nf () =
    {
      pr_census = census_full ();
      pr_capacity = level_capacity;
      pr_nf = nf ();
      pr_tau = tau;
      pr_pending_jobs = 0;
      pr_jobs = None;
      pr_clean = None;
    }
  in
  let t2_probe census level_capacity nf pending stats clean () =
    let s : Transform2.stats = stats () in
    {
      pr_census = census ();
      pr_capacity = level_capacity;
      pr_nf = nf ();
      pr_tau = tau;
      pr_pending_jobs = pending ();
      pr_jobs =
        Some (s.Transform2.jobs_started, s.Transform2.jobs_completed, s.Transform2.forced);
      pr_clean = Some (clean ());
    }
  in
  let t1 schedule name =
    match backend with
    | Fm ->
      let t =
        match restore_from with
        | None -> T1_fm.create ~schedule ~sample ~tau ~jobs ~seq ()
        | Some d ->
          T1_fm.restore ~schedule ~sample ~tau ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T1_fm.insert t;
        op_delete = T1_fm.delete t;
        op_mem = T1_fm.mem t;
        op_search = (fun p ~f -> T1_fm.search t p ~f);
        op_count = T1_fm.count t;
        op_extract = (fun ~doc ~off ~len -> T1_fm.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T1_fm.doc_count t);
        op_total_symbols = (fun () -> T1_fm.total_symbols t);
        op_space_bits = (fun () -> T1_fm.space_bits t);
        op_describe = (fun () -> name ^ "/fm");
        op_obs = (fun () -> T1_fm.obs t);
        op_events = (fun () -> T1_fm.events t);
        op_probe =
          t1_probe (fun () -> T1_fm.census_full t) (T1_fm.level_capacity t) (fun () -> T1_fm.nf t);
        op_next_id = (fun () -> T1_fm.next_id t);
        op_view =
          (fun () ->
            let v = T1_fm.view t in
            mk_view ~epoch:(T1_fm.view_epoch v) ~docs:(T1_fm.view_doc_count v)
              ~syms:(T1_fm.view_total_symbols v) ~census:(T1_fm.view_census v)
              ~search:(fun p ~f -> T1_fm.view_search v p ~f)
              ~count:(T1_fm.view_count v)
              ~extract:(fun ~doc ~off ~len -> T1_fm.view_extract v ~doc ~off ~len)
              ~mem:(T1_fm.view_mem v)
              ~components:(fun () -> T1_fm.view_components v));
        op_drain = (fun () -> ());
        op_close = (fun () -> T1_fm.close t);
      }
    | Plain_sa ->
      let t =
        match restore_from with
        | None -> T1_sa.create ~schedule ~sample ~tau ~jobs ~seq ()
        | Some d ->
          T1_sa.restore ~schedule ~sample ~tau ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T1_sa.insert t;
        op_delete = T1_sa.delete t;
        op_mem = T1_sa.mem t;
        op_search = (fun p ~f -> T1_sa.search t p ~f);
        op_count = T1_sa.count t;
        op_extract = (fun ~doc ~off ~len -> T1_sa.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T1_sa.doc_count t);
        op_total_symbols = (fun () -> T1_sa.total_symbols t);
        op_space_bits = (fun () -> T1_sa.space_bits t);
        op_describe = (fun () -> name ^ "/sa");
        op_obs = (fun () -> T1_sa.obs t);
        op_events = (fun () -> T1_sa.events t);
        op_probe =
          t1_probe (fun () -> T1_sa.census_full t) (T1_sa.level_capacity t) (fun () -> T1_sa.nf t);
        op_next_id = (fun () -> T1_sa.next_id t);
        op_view =
          (fun () ->
            let v = T1_sa.view t in
            mk_view ~epoch:(T1_sa.view_epoch v) ~docs:(T1_sa.view_doc_count v)
              ~syms:(T1_sa.view_total_symbols v) ~census:(T1_sa.view_census v)
              ~search:(fun p ~f -> T1_sa.view_search v p ~f)
              ~count:(T1_sa.view_count v)
              ~extract:(fun ~doc ~off ~len -> T1_sa.view_extract v ~doc ~off ~len)
              ~mem:(T1_sa.view_mem v)
              ~components:(fun () -> T1_sa.view_components v));
        op_drain = (fun () -> ());
        op_close = (fun () -> T1_sa.close t);
      }
    | Csa ->
      let t =
        match restore_from with
        | None -> T1_csa.create ~schedule ~sample ~tau ~jobs ~seq ()
        | Some d ->
          T1_csa.restore ~schedule ~sample ~tau ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T1_csa.insert t;
        op_delete = T1_csa.delete t;
        op_mem = T1_csa.mem t;
        op_search = (fun p ~f -> T1_csa.search t p ~f);
        op_count = T1_csa.count t;
        op_extract = (fun ~doc ~off ~len -> T1_csa.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T1_csa.doc_count t);
        op_total_symbols = (fun () -> T1_csa.total_symbols t);
        op_space_bits = (fun () -> T1_csa.space_bits t);
        op_describe = (fun () -> name ^ "/csa");
        op_obs = (fun () -> T1_csa.obs t);
        op_events = (fun () -> T1_csa.events t);
        op_probe =
          t1_probe (fun () -> T1_csa.census_full t) (T1_csa.level_capacity t)
            (fun () -> T1_csa.nf t);
        op_next_id = (fun () -> T1_csa.next_id t);
        op_view =
          (fun () ->
            let v = T1_csa.view t in
            mk_view ~epoch:(T1_csa.view_epoch v) ~docs:(T1_csa.view_doc_count v)
              ~syms:(T1_csa.view_total_symbols v) ~census:(T1_csa.view_census v)
              ~search:(fun p ~f -> T1_csa.view_search v p ~f)
              ~count:(T1_csa.view_count v)
              ~extract:(fun ~doc ~off ~len -> T1_csa.view_extract v ~doc ~off ~len)
              ~mem:(T1_csa.view_mem v)
              ~components:(fun () -> T1_csa.view_components v));
        op_drain = (fun () -> ());
        op_close = (fun () -> T1_csa.close t);
      }
  in
  let ops =
    enforce_conventions
    @@ match variant with
  | Amortized -> t1 (Transform1.geometric ()) "transform1"
  | Amortized_loglog -> t1 (Transform1.doubling ()) "transform3"
  | Worst_case -> (
    match backend with
    | Fm ->
      let t =
        match restore_from with
        | None -> T2_fm.create ~sample ~tau ?fault ~jobs ~seq ()
        | Some d ->
          T2_fm.restore ~sample ~tau ?fault ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~del_counter:d.dm_del_counter ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T2_fm.insert t;
        op_delete = T2_fm.delete t;
        op_mem = T2_fm.mem t;
        op_search = (fun p ~f -> T2_fm.search t p ~f);
        op_count = T2_fm.count t;
        op_extract = (fun ~doc ~off ~len -> T2_fm.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T2_fm.doc_count t);
        op_total_symbols = (fun () -> T2_fm.total_symbols t);
        op_space_bits = (fun () -> T2_fm.space_bits t);
        op_describe = (fun () -> "transform2/fm");
        op_obs = (fun () -> T2_fm.obs t);
        op_events = (fun () -> T2_fm.events t);
        op_probe =
          t2_probe (fun () -> T2_fm.census t) (T2_fm.level_capacity t) (fun () -> T2_fm.nf t)
            (fun () -> T2_fm.pending_jobs t) (fun () -> T2_fm.stats t)
            (fun () -> T2_fm.clean_schedule t);
        op_next_id = (fun () -> T2_fm.next_id t);
        op_view =
          (fun () ->
            let v = T2_fm.view t in
            mk_view ~epoch:(T2_fm.view_epoch v) ~docs:(T2_fm.view_doc_count v)
              ~syms:(T2_fm.view_total_symbols v) ~census:(T2_fm.view_census v)
              ~search:(fun p ~f -> T2_fm.view_search v p ~f)
              ~count:(T2_fm.view_count v)
              ~extract:(fun ~doc ~off ~len -> T2_fm.view_extract v ~doc ~off ~len)
              ~mem:(T2_fm.view_mem v)
              ~components:(fun () -> T2_fm.view_components v));
        op_drain = (fun () -> T2_fm.drain t);
        op_close = (fun () -> T2_fm.close t);
      }
    | Plain_sa ->
      let t =
        match restore_from with
        | None -> T2_sa.create ~sample ~tau ?fault ~jobs ~seq ()
        | Some d ->
          T2_sa.restore ~sample ~tau ?fault ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~del_counter:d.dm_del_counter ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T2_sa.insert t;
        op_delete = T2_sa.delete t;
        op_mem = T2_sa.mem t;
        op_search = (fun p ~f -> T2_sa.search t p ~f);
        op_count = T2_sa.count t;
        op_extract = (fun ~doc ~off ~len -> T2_sa.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T2_sa.doc_count t);
        op_total_symbols = (fun () -> T2_sa.total_symbols t);
        op_space_bits = (fun () -> T2_sa.space_bits t);
        op_describe = (fun () -> "transform2/sa");
        op_obs = (fun () -> T2_sa.obs t);
        op_events = (fun () -> T2_sa.events t);
        op_probe =
          t2_probe (fun () -> T2_sa.census t) (T2_sa.level_capacity t) (fun () -> T2_sa.nf t)
            (fun () -> T2_sa.pending_jobs t) (fun () -> T2_sa.stats t)
            (fun () -> T2_sa.clean_schedule t);
        op_next_id = (fun () -> T2_sa.next_id t);
        op_view =
          (fun () ->
            let v = T2_sa.view t in
            mk_view ~epoch:(T2_sa.view_epoch v) ~docs:(T2_sa.view_doc_count v)
              ~syms:(T2_sa.view_total_symbols v) ~census:(T2_sa.view_census v)
              ~search:(fun p ~f -> T2_sa.view_search v p ~f)
              ~count:(T2_sa.view_count v)
              ~extract:(fun ~doc ~off ~len -> T2_sa.view_extract v ~doc ~off ~len)
              ~mem:(T2_sa.view_mem v)
              ~components:(fun () -> T2_sa.view_components v));
        op_drain = (fun () -> T2_sa.drain t);
        op_close = (fun () -> T2_sa.close t);
      }
    | Csa ->
      let t =
        match restore_from with
        | None -> T2_csa.create ~sample ~tau ?fault ~jobs ~seq ()
        | Some d ->
          T2_csa.restore ~sample ~tau ?fault ~jobs ~seq ~next_id:d.dm_next_id ~nf:d.dm_nf
            ~del_counter:d.dm_del_counter ~epoch:d.dm_epoch ~components:d.dm_components ()
      in
      {
        op_insert = T2_csa.insert t;
        op_delete = T2_csa.delete t;
        op_mem = T2_csa.mem t;
        op_search = (fun p ~f -> T2_csa.search t p ~f);
        op_count = T2_csa.count t;
        op_extract = (fun ~doc ~off ~len -> T2_csa.extract t ~doc ~off ~len);
        op_doc_count = (fun () -> T2_csa.doc_count t);
        op_total_symbols = (fun () -> T2_csa.total_symbols t);
        op_space_bits = (fun () -> T2_csa.space_bits t);
        op_describe = (fun () -> "transform2/csa");
        op_obs = (fun () -> T2_csa.obs t);
        op_events = (fun () -> T2_csa.events t);
        op_probe =
          t2_probe (fun () -> T2_csa.census t) (T2_csa.level_capacity t) (fun () -> T2_csa.nf t)
            (fun () -> T2_csa.pending_jobs t) (fun () -> T2_csa.stats t)
            (fun () -> T2_csa.clean_schedule t);
        op_next_id = (fun () -> T2_csa.next_id t);
        op_view =
          (fun () ->
            let v = T2_csa.view t in
            mk_view ~epoch:(T2_csa.view_epoch v) ~docs:(T2_csa.view_doc_count v)
              ~syms:(T2_csa.view_total_symbols v) ~census:(T2_csa.view_census v)
              ~search:(fun p ~f -> T2_csa.view_search v p ~f)
              ~count:(T2_csa.view_count v)
              ~extract:(fun ~doc ~off ~len -> T2_csa.view_extract v ~doc ~off ~len)
              ~mem:(T2_csa.view_mem v)
              ~components:(fun () -> T2_csa.view_components v));
        op_drain = (fun () -> T2_csa.drain t);
        op_close = (fun () -> T2_csa.close t);
      })
  in
  let readers =
    if readers > 0 then
      Some
        (Exec.create
           ~obs:(Dsdg_obs.Obs.private_scope (ops.op_describe () ^ "/readers"))
           ~workers:readers ())
    else None
  in
  {
    ops;
    readers;
    variant;
    backend;
    sample;
    tau;
    retain = max 0 retain_epochs;
    ring = Atomic.make [];
    pins = Atomic.make [];
    pin_next = Atomic.make 0;
  }

let create ?(variant = Worst_case) ?(backend = Fm) ?(sample = 8) ?(tau = 8) ?fault
    ?(jobs = 0) ?(readers = 0) ?(seq_backend = Dsdg_delbits.Sums.Avl) ?retain_epochs () : t =
  make ~variant ~backend ~sample ~tau ~seq:seq_backend ?fault ~jobs ~readers ?retain_epochs ()

(* Record the newest published view in the retention ring (writer side;
   called after every update).  Epochs advance by one per successful
   update, so the ring holds a dense window of recent epochs; entries
   beyond [retain] fall off the tail and can no longer be named by
   [view_at] unless pinned. *)
let retain_note t =
  if t.retain > 0 then begin
    let v = t.ops.op_view () in
    match Atomic.get t.ring with
    | w :: _ when w.vw_epoch >= v.vw_epoch -> ()
    | ring ->
      let rec keep n = function
        | [] -> []
        | _ :: _ when n = 0 -> []
        | x :: tl -> x :: keep (n - 1) tl
      in
      let full = v :: ring in
      let kept = keep t.retain full in
      let dropped = List.length full - List.length kept in
      if dropped > 0 then Dsdg_obs.Obs.add c_evictions dropped;
      Dsdg_obs.Obs.incr c_retained;
      Dsdg_obs.Obs.set_gauge g_ring (List.length kept);
      Atomic.set t.ring kept
  end

(* Insert a document; returns its id. *)
let insert t text =
  let id = t.ops.op_insert text in
  retain_note t;
  id

(* Delete a document by id; false if absent. *)
let delete t id =
  let ok = t.ops.op_delete id in
  retain_note t;
  ok

let mem t id = t.ops.op_mem id

(* All (doc, off) occurrences, sorted. *)
let search t p =
  let acc = ref [] in
  t.ops.op_search p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
  List.sort compare !acc

let iter_matches t p ~f = t.ops.op_search p ~f
let count t p = t.ops.op_count p
let extract t ~doc ~off ~len = t.ops.op_extract ~doc ~off ~len
let doc_count t = t.ops.op_doc_count ()
let total_symbols t = t.ops.op_total_symbols ()
let space_bits t = t.ops.op_space_bits ()
let describe t = t.ops.op_describe ()

(* The underlying transformation's observability scope (counters,
   histograms, event ring) and its rendered recent-event log. *)
let obs_scope t = t.ops.op_obs ()
let events t = t.ops.op_events ()
let probe t = t.ops.op_probe ()

(* --- read plane --- *)

(* The latest published epoch: one Atomic.get plus closure allocation.
   The returned view is immutable and never changes -- re-fetch to see
   later updates. *)
let view t = t.ops.op_view ()
let view_epoch v = v.vw_epoch
let view_doc_count v = v.vw_doc_count
let view_total_symbols v = v.vw_total_symbols
let view_census v = v.vw_census
let view_mem v id = v.vw_mem id
let view_iter_matches v p ~f = v.vw_search p ~f

let view_search v p =
  let acc = ref [] in
  v.vw_search p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
  List.sort compare !acc

let view_count v p = v.vw_count p
let view_extract v ~doc ~off ~len = v.vw_extract ~doc ~off ~len

(* --- epoch retention and pinning --- *)

let retain_epochs t = t.retain

(* Resolve an epoch against the live view, the retention ring, then the
   pin table.  Wait-free on any domain: each is one Atomic.get over
   immutable data. *)
let view_at t ~epoch =
  let v = t.ops.op_view () in
  if v.vw_epoch = epoch then Some v
  else
    match List.find_opt (fun w -> w.vw_epoch = epoch) (Atomic.get t.ring) with
    | Some _ as hit -> hit
    | None -> (
      match List.find_opt (fun (_, w) -> w.vw_epoch = epoch) (Atomic.get t.pins) with
      | Some (_, w) -> Some w
      | None -> None)

let retained t =
  let v = t.ops.op_view () in
  let ring = List.map (fun w -> w.vw_epoch) (Atomic.get t.ring) in
  let pinned = List.map (fun (_, w) -> w.vw_epoch) (Atomic.get t.pins) in
  List.sort_uniq compare ((v.vw_epoch :: ring) @ pinned)

type pin = { pn_token : int; pn_view : view }

let pin_view p = p.pn_view
let pin_epoch p = p.pn_view.vw_epoch

let pin ?epoch t =
  let v =
    match epoch with
    | None -> t.ops.op_view ()
    | Some e -> (
      match view_at t ~epoch:e with
      | Some v -> v
      | None ->
        invalid_arg (Printf.sprintf "Dynamic_index.pin: epoch %d is not retained or pinned" e))
  in
  let token = Atomic.fetch_and_add t.pin_next 1 in
  let p = { pn_token = token; pn_view = v } in
  Atomic.set t.pins ((token, v) :: Atomic.get t.pins);
  Dsdg_obs.Obs.set_gauge g_pinned (List.length (Atomic.get t.pins));
  p

let unpin t p =
  Atomic.set t.pins (List.filter (fun (tok, _) -> tok <> p.pn_token) (Atomic.get t.pins));
  Dsdg_obs.Obs.set_gauge g_pinned (List.length (Atomic.get t.pins))

let pinned_count t = List.length (Atomic.get t.pins)

let readers t =
  match t.readers with
  | None -> 0
  | Some ex -> ( match Exec.mode ex with `Sync -> 0 | `Pool n -> n)

(* --- persistence (Dsdg_store) --- *)

let view_components v = v.vw_components ()

(* Writer-side mutable scalars a checkpoint must capture synchronously
   (on the writer, at the trigger update) before handing the immutable
   view to a worker domain for serialization. *)
let dump_scalars t =
  let p = t.ops.op_probe () in
  ( t.ops.op_next_id (),
    p.pr_nf,
    match p.pr_clean with Some (c, _) -> c | None -> 0 )

(* Full synchronous dump: land in-flight jobs first so the snapshot is
   canonical (C0/Cj/Tk only), then capture the published view plus the
   writer scalars.  Background checkpoints skip the drain and dump the
   raw view instead -- restore folds any L/Temp components it finds. *)
let dump t : dump =
  t.ops.op_drain ();
  let v = t.ops.op_view () in
  let next_id, nf, del_counter = dump_scalars t in
  {
    dm_variant = t.variant;
    dm_backend = t.backend;
    dm_sample = t.sample;
    dm_tau = t.tau;
    dm_epoch = v.vw_epoch;
    dm_next_id = next_id;
    dm_nf = nf;
    dm_del_counter = del_counter;
    dm_components = v.vw_components ();
  }

(* Two-phase capture for background checkpoints: [checkpoint_header] is
   O(1) and must run on the writer domain (it reads writer-mutable
   scalars); [checkpoint_body] is the O(n) document extraction over the
   immutable view and may run on a checkpoint worker domain. *)
let checkpoint_header t (v : view) : dump =
  let next_id, nf, del_counter = dump_scalars t in
  {
    dm_variant = t.variant;
    dm_backend = t.backend;
    dm_sample = t.sample;
    dm_tau = t.tau;
    dm_epoch = v.vw_epoch;
    dm_next_id = next_id;
    dm_nf = nf;
    dm_del_counter = del_counter;
    dm_components = [];
  }

let checkpoint_body (d : dump) (v : view) : dump = { d with dm_components = v.vw_components () }

let restore ?fault ?(jobs = 0) ?(readers = 0) ?(seq_backend = Dsdg_delbits.Sums.Avl)
    ?retain_epochs (d : dump) : t =
  make ~variant:d.dm_variant ~backend:d.dm_backend ~sample:d.dm_sample ~tau:d.dm_tau
    ~seq:seq_backend ?fault ~jobs ~readers ?retain_epochs ~restore_from:d ()

(* Run [f] against the latest published view -- on one of the reader
   domains when the index was created with [readers >= 1], inline
   otherwise.  The view is fetched inside the closure, on the reader
   domain, so a pooled query always sees the epoch current at the moment
   it actually runs.  With [~epoch] the view is resolved against the
   retention ring / pin table instead, so the query answers as of that
   point in time.  Exceptions from [f] are re-raised on the caller. *)
let query ?epoch t f =
  match epoch with
  | None -> (
    match t.readers with
    | None -> f (view t)
    | Some ex -> Exec.run ex ~name:"query" (fun _tick -> f (view t)))
  | Some e -> (
    match view_at t ~epoch:e with
    | None ->
      invalid_arg (Printf.sprintf "Dynamic_index.query: epoch %d is not retained or pinned" e)
    | Some v -> (
      match t.readers with
      | None -> f v
      | Some ex -> Exec.run ex ~name:"query" (fun _tick -> f v)))

(* Land every in-flight background job now (a forced completion of each;
   no-op for the amortized variants, whose rebuilds are synchronous). *)
let drain t = t.ops.op_drain ()

(* Drain, then stop and join the executor's worker domains (background
   rebuilds and the reader pool alike).  Required for a clean exit when
   [create ~jobs:(n > 0)] or [~readers:(n > 0)]; harmless otherwise.
   The index remains usable -- subsequent rebuilds run inline and
   queries fall back to the caller's domain. *)
let close t =
  t.ops.op_close ();
  match t.readers with None -> () | Some ex -> Exec.shutdown ex
