(* Semi-static deletion-only index (Section 2, first half): a static index
   augmented with

   - a Reporter (Lemma 3) over suffix-array rows so that surviving
     occurrences in a query range are reported in O(1) each,
   - the Reporter's integrated word-level counter so that surviving
     occurrences are *counted* in O(log n) (Theorem 1),
   - document liveness bookkeeping and the n/tau purge threshold.

   Deleting a document walks the rows of its suffixes (O(|T| + tSA)) and
   zeroes them.  When dead symbols exceed live/tau the owner is expected
   to rebuild (see [needs_purge]); this module never rebuilds itself. *)

open Dsdg_delbits
open Dsdg_obs

(* Process-wide scope shared by every Semi_static instance: build/delete/
   search/count totals and a build-size histogram.  Per-instance detail
   lives in the owning transformation's private scope. *)
(* The n/tau purge rule as a standalone predicate: dead * tau > total,
   computed as a division so the product cannot overflow for
   collections (or tau values) near max_int.  For dead, total >= 0 and
   tau >= 1,  dead * tau > total  <=>  dead > total / tau  (floor
   division): both say dead >= floor(total/tau) + 1. *)
let purge_threshold_exceeded ~dead_syms ~total_symbols ~tau =
  dead_syms > total_symbols / tau

let obs = Obs.scope "semi_static"
let c_builds = Obs.counter obs "builds"
let c_deletes = Obs.counter obs "deletes"
let c_searches = Obs.counter obs "searches"
let c_counts = Obs.counter obs "counts"
let h_build_syms = Obs.histogram obs "build_syms"

module Make (I : Static_index.S) = struct
  (* Read-plane view: everything immutable.  The static index, the id
     maps and [slot_of] never change after build and are shared by
     reference; the deletion state ([dead], the Reporter and the census
     counters) is copied at snapshot time, so a published view answers
     queries -- including the census -- consistently while the write
     plane keeps flipping dead bits. *)
  type view = {
    v_index : I.t;
    v_ids : int array;
    v_slot_of : (int, int) Hashtbl.t; (* read-only after build *)
    v_dead : bool array;
    v_alive : Reporter.t;
    v_live_syms : int;
    v_dead_syms : int;
  }

  type t = {
    index : I.t;
    ids : int array; (* slot -> external doc id *)
    slot_of : (int, int) Hashtbl.t; (* external doc id -> slot *)
    dead : bool array;
    alive_rows : Reporter.t;
    mutable live_syms : int;
    mutable dead_syms : int;
    tau : int;
    mutable view_cache : view option; (* invalidated by delete *)
  }

  let build ?tick ?(seq = Sums.Avl) ~sample ~tau (docs : (int * string) array) : t =
    if tau < 1 then invalid_arg "Semi_static.build: tau < 1";
    let texts = Array.map snd docs in
    let index = I.build ?tick ~sample texts in
    let ids = Array.map fst docs in
    let slot_of = Hashtbl.create (Array.length ids) in
    Array.iteri
      (fun slot id ->
        if Hashtbl.mem slot_of id then invalid_arg "Semi_static.build: duplicate doc id";
        Hashtbl.replace slot_of id slot)
      ids;
    let m = I.row_count index in
    Obs.incr c_builds;
    Obs.observe h_build_syms (I.total_len index);
    {
      index;
      ids;
      slot_of;
      dead = Array.make (Array.length ids) false;
      alive_rows = Reporter.create_full ~seq m;
      live_syms = I.total_len index;
      dead_syms = 0;
      tau;
      view_cache = None;
    }

  let mem t id =
    match Hashtbl.find_opt t.slot_of id with
    | None -> false
    | Some slot -> not t.dead.(slot)

  let live_symbols t = t.live_syms
  let dead_symbols t = t.dead_syms
  let total_symbols t = t.live_syms + t.dead_syms
  let doc_count t = Hashtbl.length t.slot_of - Array.fold_left (fun a d -> if d then a + 1 else a) 0 t.dead
  let needs_purge t =
    purge_threshold_exceeded ~dead_syms:t.dead_syms ~total_symbols:(total_symbols t)
      ~tau:t.tau
  let is_empty t = t.live_syms = 0

  let delete t id =
    match Hashtbl.find_opt t.slot_of id with
    | None -> false
    | Some slot ->
      if t.dead.(slot) then false
      else begin
        t.dead.(slot) <- true;
        I.iter_doc_rows t.index slot ~f:(fun row -> Reporter.zero t.alive_rows row);
        let syms = I.doc_len t.index slot + 1 in
        t.live_syms <- t.live_syms - syms;
        t.dead_syms <- t.dead_syms + syms;
        t.view_cache <- None;
        Obs.incr c_deletes;
        true
      end

  (* Report (doc, off) for every surviving occurrence of [p]. *)
  let search t p ~f =
    Obs.incr c_searches;
    match I.range t.index p with
    | None -> ()
    | Some (sp, ep) ->
      Reporter.report t.alive_rows sp ep (fun row ->
          let slot, off = I.locate t.index row in
          f ~doc:t.ids.(slot) ~off)

  (* Count surviving occurrences in O(trange + log n) (Theorem 1): the
     Reporter's word-level Fenwick counts live rows in the range. *)
  let count t p =
    Obs.incr c_counts;
    match I.range t.index p with
    | None -> 0
    | Some (sp, ep) -> Reporter.count_range t.alive_rows sp ep

  let extract t ~doc ~off ~len =
    match Hashtbl.find_opt t.slot_of doc with
    | None -> None
    | Some slot ->
      if t.dead.(slot) || off < 0 || len < 0 || off + len > I.doc_len t.index slot then None
      else Some (I.extract t.index ~doc:slot ~off ~len)

  let doc_len t id =
    match Hashtbl.find_opt t.slot_of id with
    | None -> None
    | Some slot -> if t.dead.(slot) then None else Some (I.doc_len t.index slot)

  let live_ids t =
    let acc = ref [] in
    Array.iteri (fun slot id -> if not t.dead.(slot) then acc := id :: !acc) t.ids;
    !acc

  (* Live documents with their contents, re-extracted from the index
     itself (the dynamic structures never retain plaintext for compressed
     sub-collections).  [tick] is charged once per extracted symbol so
     this can run inside an Incremental job. *)
  let live_docs ?(tick = fun () -> ()) t : (int * string) list =
    let acc = ref [] in
    Array.iteri
      (fun slot id ->
        if not t.dead.(slot) then begin
          let len = I.doc_len t.index slot in
          let text = I.extract t.index ~doc:slot ~off:0 ~len in
          for _ = 0 to len do
            tick ()
          done;
          acc := (id, text) :: !acc
        end)
      t.ids;
    List.rev !acc

  let space_bits t =
    I.space_bits t.index + Reporter.space_bits t.alive_rows
    + (Array.length t.ids * 2 * 63)
    + (Array.length t.dead * 8)
    + (4 * 63)

  let index t = t.index

  (* --- read-plane snapshots --- *)

  (* Cached between deletes: only [delete] mutates a built instance, so
     a snapshot after k deletes since the last one costs one Reporter +
     dead-array copy, amortized against those deletes. *)
  let snapshot t =
    match t.view_cache with
    | Some v -> v
    | None ->
      let v =
        {
          v_index = t.index;
          v_ids = t.ids;
          v_slot_of = t.slot_of;
          v_dead = Array.copy t.dead;
          v_alive = Reporter.copy t.alive_rows;
          v_live_syms = t.live_syms;
          v_dead_syms = t.dead_syms;
        }
      in
      t.view_cache <- Some v;
      v

  let view_mem v id =
    match Hashtbl.find_opt v.v_slot_of id with
    | None -> false
    | Some slot -> not v.v_dead.(slot)

  let view_live_symbols v = v.v_live_syms
  let view_dead_symbols v = v.v_dead_syms

  let view_doc_count v =
    Hashtbl.length v.v_slot_of - Array.fold_left (fun a d -> if d then a + 1 else a) 0 v.v_dead

  let view_search v p ~f =
    Obs.incr c_searches;
    match I.range v.v_index p with
    | None -> ()
    | Some (sp, ep) ->
      Reporter.report v.v_alive sp ep (fun row ->
          let slot, off = I.locate v.v_index row in
          f ~doc:v.v_ids.(slot) ~off)

  let view_count v p =
    Obs.incr c_counts;
    match I.range v.v_index p with
    | None -> 0
    | Some (sp, ep) -> Reporter.count_range v.v_alive sp ep

  let view_extract v ~doc ~off ~len =
    match Hashtbl.find_opt v.v_slot_of doc with
    | None -> None
    | Some slot ->
      if v.v_dead.(slot) || off < 0 || len < 0 || off + len > I.doc_len v.v_index slot then None
      else Some (I.extract v.v_index ~doc:slot ~off ~len)

  let view_doc_len v id =
    match Hashtbl.find_opt v.v_slot_of id with
    | None -> None
    | Some slot -> if v.v_dead.(slot) then None else Some (I.doc_len v.v_index slot)

  (* --- persistence (Dsdg_store) --- *)

  (* The snapshot unit: every resident document (live and dead, in slot
     order, contents re-extracted from the static index) plus the
     deletion bit vector.  Everything read here is immutable inside a
     view, so [view_dump] may run on a checkpoint worker domain while
     the write plane keeps flipping dead bits in the live structure. *)
  let dump_of ~index ~ids ~(dead : bool array) =
    let docs =
      Array.mapi
        (fun slot id ->
          let len = I.doc_len index slot in
          (id, I.extract index ~doc:slot ~off:0 ~len))
        ids
    in
    (docs, Array.copy dead)

  let dump t = dump_of ~index:t.index ~ids:t.ids ~dead:t.dead
  let view_dump v = dump_of ~index:v.v_index ~ids:v.v_ids ~dead:v.v_dead

  (* Inverse of [dump]: rebuild the static index over all resident
     documents, then replay the deletion bit vector so the Reporter,
     the census counters and every query answer come back exactly as
     dumped.  (The Reporter is reconstructed, not serialized raw: it is
     a deterministic function of the index and the dead set.) *)
  let of_dump ?(seq = Sums.Avl) ~sample ~tau (docs : (int * string) array) (dead : bool array) =
    if Array.length dead <> Array.length docs then
      invalid_arg "Semi_static.of_dump: deletion bit vector length mismatch";
    let t = build ~seq ~sample ~tau docs in
    Array.iteri (fun slot d -> if d then ignore (delete t (fst docs.(slot)))) dead;
    t
end
