(** Plain suffix-array static index (Table 3's fast/large class):
    SA-IS construction, binary-search range-finding, direct locate.
    Satisfies {!Static_index.S}; immutable after [build]. *)

include Static_index.S
