(** Transformation 1 (Section 2): static index -> fully-dynamic index
    with amortized update bounds.

    The collection is split into C0 (an uncompressed generalized suffix
    tree) and sub-collections C1..Cr held in semi-static deletion-only
    indexes whose maximum sizes follow a pluggable growth schedule:
    {!geometric} is the paper's Transformation 1, {!doubling} is
    Transformation 3 from Appendix A.4.

    Every completed update additionally publishes an immutable
    [view] through an atomic epoch pointer, so queries can run on
    other domains against the latest snapshot while the single writer
    keeps mutating (see DESIGN.md section 9). *)

(** Growth schedule for the sub-collection capacities. Construct with
    {!geometric} or {!doubling}. *)
type schedule

(** The paper's Transformation 1: max_j = 2(nf/log^2 nf) log^(eps*j) nf,
    O(1) sub-collections. *)
val geometric : ?epsilon:float -> unit -> schedule

(** Transformation 3 (Appendix A.4): capacities double per level,
    O(log log n) sub-collections. *)
val doubling : unit -> schedule

(** Read-only snapshot of the amortization counters. *)
type stats = {
  merges : int;
  purges : int;
  global_rebuilds : int;
  symbols_rebuilt : int;
}

module Make (I : Static_index.S) : sig
  type t

  (** Immutable read-plane snapshot of the whole index: the C0 buffer
      frozen as a GST view, every sub-collection as a semi-static view,
      plus the census scalars. Safe to query from any domain. *)
  type view

  (** [jobs > 0] attaches a worker pool that runs purge / global-rebuild
      index constructions off-thread. *)
  val create :
    ?schedule:schedule ->
    ?sample:int ->
    ?tau:int ->
    ?jobs:int ->
    ?seq:Dsdg_delbits.Sums.kind ->
    unit ->
    t

  (** Returns the fresh document id. *)
  val insert : t -> string -> int

  (** [false] if the document is absent (or already deleted). *)
  val delete : t -> int -> bool

  (** Whether [id] names a live document. O(1). *)
  val mem : t -> int -> bool

  (** Report every surviving occurrence, querying C0 and each
      sub-collection (Lemma 4's query decomposition). *)
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** All [(doc, off)] occurrences, sorted. *)
  val matches : t -> string -> (int * int) list

  (** Occurrence count, summed across sub-collections (Theorem 1). *)
  val count : t -> string -> int

  (** Substring of a live document; [None] if dead or out of range. *)
  val extract : t -> doc:int -> off:int -> len:int -> string option

  (** Live documents across C0 and all sub-collections. *)
  val doc_count : t -> int

  (** Live symbols, one separator per document. *)
  val total_symbols : t -> int

  (** Measured bits of every live structure. *)
  val space_bits : t -> int

  (** Merge everything into one sub-collection now (an explicit global
      rebuild). *)
  val consolidate : t -> unit

  (** Amortization counters (merges, purges, global rebuilds). *)
  val stats : t -> stats

  (** The instance's observability scope. *)
  val obs : t -> Dsdg_obs.Obs.scope

  (** Recent structural events, newest first. *)
  val events : t -> string list

  (** Current nf snapshot and schedule capacity of level [j], for the
      differential checker's invariant oracles. *)
  val nf : t -> int

  (** Schedule capacity of level [j] under the current [nf]. *)
  val level_capacity : t -> int -> int

  (** ["geometric"] or ["doubling"]. *)
  val schedule_name : t -> string

  (** Live sizes of C0, C1..Cr (the measured counterpart of Figure 1). *)
  val census : t -> (string * int) list

  (** [census] plus dead-symbol counts. *)
  val census_full : t -> (string * int * int) list

  (** Stop and join the worker domains (no-op without a pool); the index
      stays usable, rebuilds simply run inline afterwards. *)
  val close : t -> unit

  (** {1 Read plane}

      [view t] is wait-free: one [Atomic.get]. The writer publishes a
      fresh view (epoch + 1) after every completed update, so with a
      single-threaded writer the epoch equals the number of completed
      updates. *)

  val view : t -> view

  (** Completed updates when the view was published. *)
  val view_epoch : view -> int

  (** The nf snapshot frozen at publish time. *)
  val view_nf : view -> int

  (** Like [doc_count], frozen at publish time. *)
  val view_doc_count : view -> int

  (** Like [total_symbols], frozen at publish time. *)
  val view_total_symbols : view -> int

  (** Like [search], against the snapshot. *)
  val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** Like [matches], against the snapshot. *)
  val view_matches : view -> string -> (int * int) list

  (** Like [count], against the snapshot. *)
  val view_count : view -> string -> int

  (** Like [mem], against the snapshot. *)
  val view_mem : view -> int -> bool

  (** Like [extract], against the snapshot. *)
  val view_extract : view -> doc:int -> off:int -> len:int -> string option

  (** Per-structure (name, live, dead) symbol counts frozen at publish
      time. *)
  val view_census : view -> (string * int * int) list

  (** {1 Persistence}

      Hooks for [Dsdg_store]: a dump is the logical state of a published
      epoch -- per-structure resident documents + deletion bit vectors
      under their census names -- from which {!restore} rebuilds an
      equivalent index (same document ids, same query answers, same
      schedule state). *)

  (** The next document id the index would assign. *)
  val next_id : t -> int

  (** Snapshot units of a published epoch under their census names:
      [("C0", live docs, [||])] plus [("Cj", resident docs, deletion bit
      vector)] per sub-collection. Immutable inputs only -- safe to call
      (and serialize from) a checkpoint worker domain. *)
  val view_components : view -> (string * (int * string) array * bool array) list

  (** Inverse of {!view_components}: rebuild every structure where the
      dump says it lived, restore [nf] and the id counter, and publish a
      first view continuing [epoch]. Raises [Invalid_argument] on a
      component name that is not [C0]/[Cj]. O(n) index construction. *)
  val restore :
    ?schedule:schedule ->
    ?sample:int ->
    ?tau:int ->
    ?jobs:int ->
    ?seq:Dsdg_delbits.Sums.kind ->
    next_id:int ->
    nf:int ->
    epoch:int ->
    components:(string * (int * string) array * bool array) list ->
    unit ->
    t
end
