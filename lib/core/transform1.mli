(** Transformation 1 (Section 2): static index -> fully-dynamic index
    with amortized update bounds.

    The collection is split into C0 (an uncompressed generalized suffix
    tree) and sub-collections C1..Cr held in semi-static deletion-only
    indexes whose maximum sizes follow a pluggable growth schedule:
    {!geometric} is the paper's Transformation 1, {!doubling} is
    Transformation 3 from Appendix A.4.

    Every completed update additionally publishes an immutable
    {!Make.view} through an atomic epoch pointer, so queries can run on
    other domains against the latest snapshot while the single writer
    keeps mutating (see DESIGN.md section 9). *)

(** Growth schedule for the sub-collection capacities. Construct with
    {!geometric} or {!doubling}. *)
type schedule

(** The paper's Transformation 1: max_j = 2(nf/log^2 nf) log^(eps*j) nf,
    O(1) sub-collections. *)
val geometric : ?epsilon:float -> unit -> schedule

(** Transformation 3 (Appendix A.4): capacities double per level,
    O(log log n) sub-collections. *)
val doubling : unit -> schedule

(** Read-only snapshot of the amortization counters. *)
type stats = {
  merges : int;
  purges : int;
  global_rebuilds : int;
  symbols_rebuilt : int;
}

module Make (I : Static_index.S) : sig
  type t

  (** Immutable read-plane snapshot of the whole index: the C0 buffer
      frozen as a GST view, every sub-collection as a semi-static view,
      plus the census scalars. Safe to query from any domain. *)
  type view

  (** [jobs > 0] attaches a worker pool that runs purge / global-rebuild
      index constructions off-thread. *)
  val create : ?schedule:schedule -> ?sample:int -> ?tau:int -> ?jobs:int -> unit -> t

  (** Returns the fresh document id. *)
  val insert : t -> string -> int

  (** [false] if the document is absent (or already deleted). *)
  val delete : t -> int -> bool

  val mem : t -> int -> bool
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

  (** All [(doc, off)] occurrences, sorted. *)
  val matches : t -> string -> (int * int) list

  val count : t -> string -> int
  val extract : t -> doc:int -> off:int -> len:int -> string option
  val doc_count : t -> int
  val total_symbols : t -> int
  val space_bits : t -> int

  (** Merge everything into one sub-collection now (an explicit global
      rebuild). *)
  val consolidate : t -> unit

  val stats : t -> stats
  val obs : t -> Dsdg_obs.Obs.scope
  val events : t -> string list

  (** Current nf snapshot and schedule capacity of level [j], for the
      differential checker's invariant oracles. *)
  val nf : t -> int

  val level_capacity : t -> int -> int
  val schedule_name : t -> string

  (** Live sizes of C0, C1..Cr (the measured counterpart of Figure 1). *)
  val census : t -> (string * int) list

  (** [census] plus dead-symbol counts. *)
  val census_full : t -> (string * int * int) list

  (** Stop and join the worker domains (no-op without a pool); the index
      stays usable, rebuilds simply run inline afterwards. *)
  val close : t -> unit

  (** {1 Read plane}

      [view t] is wait-free: one [Atomic.get]. The writer publishes a
      fresh view (epoch + 1) after every completed update, so with a
      single-threaded writer the epoch equals the number of completed
      updates. *)

  val view : t -> view
  val view_epoch : view -> int
  val view_nf : view -> int
  val view_doc_count : view -> int
  val view_total_symbols : view -> int
  val view_search : view -> string -> f:(doc:int -> off:int -> unit) -> unit
  val view_matches : view -> string -> (int * int) list
  val view_count : view -> string -> int
  val view_mem : view -> int -> bool
  val view_extract : view -> doc:int -> off:int -> len:int -> string option

  (** Per-structure (name, live, dead) symbol counts frozen at publish
      time. *)
  val view_census : view -> (string * int * int) list
end
