(* Transformation 2 (Section 3): static index -> fully-dynamic index with
   worst-case update bounds.

   On top of Transformation 1's layout this adds:

   - locked copies: when C_j must be merged upward it is renamed L_j and a
     fresh empty C_j takes its place; L_j keeps answering queries;
   - background construction: the new N_{j+1} = L_j ∪ C_{j+1} ∪ {T} is a
     background job.  In the default Sync mode (jobs = 0) it is an
     Incremental job: every subsequent update steps all pending jobs by a
     budget proportional to the update's size (work_factor * |T|), which is
     the paper's "O(log^eps n * u(n)) time per symbol" accounting.  With
     jobs >= 1 the build runs on a Dsdg_exec.Executor worker domain
     instead: updates merely poll for finished results and install them
     at exactly the same points, so the Dietz-Sleator schedule and the
     max_j capacity invariants are enforced unchanged while construction
     work leaves the update critical path;
   - Temp_{j+1}: a single-document index for the new text so it is
     queryable while N_{j+1} is under construction (Figure 3);
   - top collections T_1..T_g holding the bulk of the data (never the
     target of insertions once finished), cleaned by the Dietz-Sleator
     schedule: after every delta = nf/(2 tau log tau) deleted symbols, the
     top with the most dead symbols is rebuilt in the background (Lemma 1
     bounds every top's dead fraction by O(1/tau));
   - oversized documents (|T| >= nf/tau) get their own top collection.

   Deviations (documented in DESIGN.md): the L'_r staging collection is
   folded into the generic top-construction path; the nf-resnapshot
   restructure runs synchronously (a rare amortized event); and if an
   update needs a slot whose background job has not finished, the job is
   force-completed (counted in the [forced] counter -- the paper's
   scheduling lemma makes this rare, and the counter lets benches verify
   that).

   All scheduling-health accounting (counters, per-update latency
   histograms, purge-time dead fractions, the structural event trace)
   goes through the shared Dsdg_obs.Obs layer; [stats] is a read-only
   view assembled from those counters. *)

open Dsdg_gst
open Dsdg_incr
open Dsdg_obs

(* Deliberate scheduling defects, injectable for differential-checker
   self-tests (Dsdg_check): a harness that cannot catch a planted bug
   proves nothing.  [`Skip_top_clean] disables the Dietz-Sleator top
   cleaning so deleted symbols accumulate in top collections and the
   Lemma 1 dead-fraction bound is eventually violated.  [`Worker_crash]
   (pooled mode only, [jobs >= 1]) makes every executor job raise on its
   first tick AND breaks the crash recovery: instead of the synchronous
   in-place fallback rebuild the owner silently discards the job, so the
   documents of the locked source (and any Temp riding on the job) are
   lost -- the model comparison and the census oracle must catch it.
   [`Stale_epoch] breaks the read plane only: successful deletes skip
   the epoch publication, so the write plane stays correct (direct
   queries see the deletion) while published views keep resurrecting
   deleted documents -- only a concurrent-reader oracle comparing views
   against the per-epoch model can catch it. *)
type fault = [ `Skip_top_clean | `Worker_crash | `Stale_epoch ]

(* Read-only snapshot of the scheduling counters (all maintained in the
   instance's Obs scope; see [obs]). *)
type stats = {
  jobs_started : int;
  jobs_completed : int;
  forced : int;
  restructures : int;
  top_cleanings : int;
  sync_merges : int;
  max_job_step : int; (* largest single-update job work, for the worst-case claim *)
  crash_fallbacks : int; (* pooled jobs that failed and were rebuilt synchronously *)
}

module Make (I : Static_index.S) = struct
  module SS = Semi_static.Make (I)
  module Exec = Dsdg_exec.Executor

  let max_slots = 64

  (* Per-query cap on the processor time donated to pooled workers (in
     job work units; see [donate]).  Small enough that a single query's
     latency stays bounded, large enough that a read-heavy interleaving
     keeps the workers ahead of their install deadlines on a machine
     with fewer cores than domains. *)
  let query_grain = 2048

  (* How a background job is being run: [Incr] is the cooperative
     effects-based realization stepped inside updates (the only mode
     when [jobs = 0], bit-for-bit the pre-executor behaviour); [Pooled]
     is a handle into the domain-pool executor plus the same build
     closure kept caller-side, so a crashed worker can be recovered by
     rebuilding synchronously in place. *)
  type job_run =
    | Incr of SS.t Incremental.t
    | Pooled of { handle : SS.t Exec.handle; builder : (unit -> unit) -> SS.t }

  type job = {
    run : job_run;
    target : [ `Sub of int | `Top | `Replace_top of int ];
    frees_locked : int option; (* level whose L_j this job consumes; -1 = L0 *)
    mutable deleted_during : int list;
  }

  (* Read-plane snapshot: every queryable structure frozen under its
     census name -- the C0/L0 buffers as GST views, the C_j / L_j /
     Temp_j / T_k semi-static structures as SS views -- plus the census
     scalars and scheduling gauges.  Immutable end to end; readers on
     any domain query it without synchronization. *)
  type view = {
    vw_epoch : int;
    vw_gsts : (string * Gsuffix_tree.view) list; (* C0 and, if locked, L0 *)
    vw_sss : (string * SS.view) list; (* C_j, L_j, Temp_j, T_k *)
    vw_nf : int;
    vw_live : int;
    vw_docs : int;
    vw_pending : int; (* background jobs in flight at publish time *)
  }

  type t = {
    sample : int;
    tau : int;
    seq : Dsdg_delbits.Sums.kind;
    epsilon : float;
    work_factor : int;
    mutable gst : Gsuffix_tree.t; (* C0 *)
    mutable locked_gst : Gsuffix_tree.t option; (* L0 *)
    subs : SS.t option array; (* C_1..C_r *)
    locked : SS.t option array; (* L_1..L_r *)
    temps : SS.t option array; (* Temp_1..Temp_{r+1} *)
    jobs : job option array; (* index j: builds the new C_j (or a top for j=r+1) *)
    mutable tops : (int * SS.t) list;
    mutable next_top_key : int;
    mutable next_id : int;
    mutable nf : int;
    mutable live : int;
    mutable doc_count : int;
    mutable del_counter : int; (* deleted symbols since last top-clean dispatch *)
    fault : fault option;
    exec : Exec.t option; (* None = Sync mode: jobs stepped cooperatively *)
    published : view Atomic.t; (* the read plane: latest epoch *)
    obs : Obs.scope;
    c_epoch_published : Obs.counter;
    g_epoch_current : Obs.gauge;
    h_epoch_publish_ns : Obs.histogram;
    c_jobs_started : Obs.counter;
    c_jobs_completed : Obs.counter;
    c_forced : Obs.counter;
    c_restructures : Obs.counter;
    c_top_cleanings : Obs.counter;
    c_sync_merges : Obs.counter;
    c_crash_fallbacks : Obs.counter;
    c_inserts : Obs.counter;
    c_deletes : Obs.counter;
    g_max_job_step : Obs.gauge;
    h_insert_ns : Obs.histogram;
    h_delete_ns : Obs.histogram;
    h_merge_ns : Obs.histogram; (* synchronous carry-propagation merges inside insert *)
    h_purge_dead_frac : Obs.histogram; (* per-mille dead fraction at purge/clean time *)
  }

  let create ?(sample = 8) ?(tau = 8) ?(epsilon = 0.5) ?(work_factor = 64) ?fault
      ?(jobs = 0) ?(seq = Dsdg_delbits.Sums.Avl) () =
    let obs = Obs.private_scope ("transform2/" ^ I.name) in
    let gst = Gsuffix_tree.create () in
    let view0 =
      {
        vw_epoch = 0;
        vw_gsts = [ ("C0", Gsuffix_tree.snapshot gst) ];
        vw_sss = [];
        vw_nf = 256;
        vw_live = 0;
        vw_docs = 0;
        vw_pending = 0;
      }
    in
    {
      fault;
      exec = (if jobs > 0 then Some (Exec.create ~obs ~workers:jobs ()) else None);
      published = Atomic.make view0;
      sample;
      tau;
      seq;
      epsilon;
      work_factor;
      gst;
      locked_gst = None;
      subs = Array.make (max_slots + 2) None;
      locked = Array.make (max_slots + 2) None;
      temps = Array.make (max_slots + 2) None;
      jobs = Array.make (max_slots + 2) None;
      tops = [];
      next_top_key = 0;
      next_id = 0;
      nf = 256;
      live = 0;
      doc_count = 0;
      del_counter = 0;
      obs;
      c_jobs_started = Obs.counter obs "jobs_started";
      c_jobs_completed = Obs.counter obs "jobs_completed";
      c_forced = Obs.counter obs "forced";
      c_restructures = Obs.counter obs "restructures";
      c_top_cleanings = Obs.counter obs "top_cleanings";
      c_sync_merges = Obs.counter obs "sync_merges";
      c_crash_fallbacks = Obs.counter obs "crash_fallbacks";
      c_inserts = Obs.counter obs "inserts";
      c_deletes = Obs.counter obs "deletes";
      g_max_job_step = Obs.gauge obs "max_job_step";
      h_insert_ns = Obs.histogram obs "insert_ns";
      h_delete_ns = Obs.histogram obs "delete_ns";
      h_merge_ns = Obs.histogram obs "sync_merge_ns";
      h_purge_dead_frac = Obs.histogram obs "purge_dead_permille";
      c_epoch_published = Obs.counter obs "exec_epoch_published";
      g_epoch_current = Obs.gauge obs "exec_epoch_current";
      h_epoch_publish_ns = Obs.histogram obs "exec_epoch_publish_ns";
    }

  let obs t = t.obs
  let events t = List.map (fun (_, e) -> Obs.event_to_string e) (Obs.recent t.obs)

  let stats t =
    {
      jobs_started = Obs.value t.c_jobs_started;
      jobs_completed = Obs.value t.c_jobs_completed;
      forced = Obs.value t.c_forced;
      restructures = Obs.value t.c_restructures;
      top_cleanings = Obs.value t.c_top_cleanings;
      sync_merges = Obs.value t.c_sync_merges;
      max_job_step = Obs.gauge_value t.g_max_job_step;
      crash_fallbacks = Obs.value t.c_crash_fallbacks;
    }

  let jobs_mode t = match t.exec with None -> `Sync | Some e -> Exec.mode e

  let doc_count t = t.doc_count
  let total_symbols t = t.live

  (* Read-only introspection for the differential checker (Dsdg_check). *)
  let nf t = t.nf

  let max_size t j =
    let nff = float_of_int (max t.nf 256) in
    let lg = max 2. (log nff /. log 2.) in
    let base = 2. *. nff /. (lg *. lg) in
    max 64 (int_of_float (base *. (lg ** (t.epsilon *. float_of_int j))))

  (* r: first level whose capacity reaches the top-collection grain nf/tau. *)
  let r_of t =
    let target = max 64 (t.nf / t.tau) in
    let rec go j = if j >= max_slots || max_size t j >= target then j else go (j + 1) in
    go 1

  let top_grain t = max 64 (t.nf / t.tau)
  let level_capacity t j = max_size t j

  let sub_live t j = match t.subs.(j) with None -> 0 | Some ss -> SS.live_symbols ss

  (* --- documents-of helpers (with tick accounting for job bodies) --- *)

  let gst_docs ?(tick = fun () -> ()) g =
    List.filter_map
      (fun d ->
        Option.map
          (fun s ->
            String.iter (fun _ -> tick ()) s;
            tick ();
            (d, s))
          (Gsuffix_tree.get_doc g d))
      (Gsuffix_tree.doc_ids g)

  (* --- job management --- *)

  let build_ss t ?tick docs =
    SS.build ?tick ~seq:t.seq ~sample:t.sample ~tau:t.tau (Array.of_list docs)

  let target_name = function
    | `Sub jj -> Printf.sprintf "N%d" jj
    | `Top -> "new top"
    | `Replace_top key -> Printf.sprintf "rebuilt T%d" key

  (* Wrap a build closure as a job in the current mode.  The planted
     [`Worker_crash] fault sabotages only the worker-side copy (raises
     on the first tick); the caller-side [builder] copy stays intact --
     though the fault's broken drop recovery never runs it. *)
  let make_run t ~name body =
    match t.exec with
    | None -> Incr (Incremental.create body)
    | Some exec ->
      let worker_body tick =
        if t.fault = Some `Worker_crash then begin
          tick ();
          failwith "planted worker crash"
        end;
        body tick
      in
      Pooled { handle = Exec.submit exec ~name worker_body; builder = body }

  let install t j job ss =
    List.iter (fun id -> ignore (SS.delete ss id)) job.deleted_during;
    (match job.frees_locked with
    | Some 0 -> t.locked_gst <- None
    | Some l -> t.locked.(l) <- None
    | None -> ());
    (match job.target with
    | `Sub jj ->
      t.subs.(jj) <- (if SS.is_empty ss then None else Some ss);
      t.temps.(jj) <- None
    | `Top ->
      t.temps.(j) <- None;
      if not (SS.is_empty ss) then begin
        let key = t.next_top_key in
        t.next_top_key <- key + 1;
        t.tops <- (key, ss) :: t.tops
      end
    | `Replace_top key ->
      t.tops <- List.filter (fun (k, _) -> k <> key) t.tops;
      if not (SS.is_empty ss) then t.tops <- (key, ss) :: t.tops);
    Obs.record t.obs
      (Obs.Install { slot = j; target = target_name job.target; live = SS.live_symbols ss });
    t.jobs.(j) <- None;
    Obs.incr t.c_jobs_completed

  (* Recovery for a pooled job whose worker raised (or was cancelled):
     the owner rebuilds synchronously in place with the very closure the
     worker was running, then installs normally -- queries never observe
     a gap because the locked sources stayed queryable the whole time.
     Under the planted [`Worker_crash] fault the recovery is deliberately
     broken: the job is discarded wholesale (locked source, Temp and --
     for a cleaning job -- the top being rebuilt all dropped), which
     loses documents and must trip the differential checker. *)
  let crash_recover t j job builder =
    if t.fault = Some `Worker_crash then begin
      (match job.frees_locked with
      | Some 0 -> t.locked_gst <- None
      | Some l -> t.locked.(l) <- None
      | None -> ());
      (match job.target with
      | `Sub jj -> t.temps.(jj) <- None
      | `Top -> t.temps.(max_slots + 1) <- None
      | `Replace_top key -> t.tops <- List.filter (fun (k, _) -> k <> key) t.tops);
      Obs.record t.obs (Obs.Note (Printf.sprintf "worker crash: job %d dropped" j));
      t.jobs.(j) <- None;
      Obs.incr t.c_jobs_completed
    end
    else begin
      Obs.incr t.c_crash_fallbacks;
      Obs.record t.obs (Obs.Note (Printf.sprintf "worker crash: slot %d rebuilt in place" j));
      let spent = ref 0 in
      let ss = builder (fun () -> incr spent) in
      Obs.set_max t.g_max_job_step !spent;
      Obs.record t.obs (Obs.Job_finish { slot = j; work = !spent });
      install t j job ss
    end

  (* Land a pooled job from its terminal executor state. *)
  let land_pooled t j job handle builder = function
    | `Done ss ->
      Obs.record t.obs (Obs.Job_finish { slot = j; work = Exec.work_spent handle });
      install t j job ss
    | `Failed _ | `Cancelled -> crash_recover t j job builder

  (* A job force-completed during an update counts as [forced] exactly
     once, and the synchronous work it performs still feeds the
     max-single-update-work gauge (the worst-case claim covers forced
     completions too).  Forcing a pooled job awaits the worker (or
     steals the job from the queue and runs it on the caller). *)
  let force_job t j =
    match t.jobs.(j) with
    | None -> ()
    | Some job -> (
      Obs.incr t.c_forced;
      Obs.record t.obs (Obs.Job_force { slot = j });
      match job.run with
      | Incr task ->
        let before = Incremental.work_spent task in
        let ss = Incremental.force task in
        let spent = Incremental.work_spent task - before in
        Obs.set_max t.g_max_job_step spent;
        Obs.record t.obs (Obs.Job_finish { slot = j; work = Incremental.work_spent task });
        install t j job ss
      | Pooled { handle; builder } ->
        let exec = Option.get t.exec in
        land_pooled t j job handle builder (Exec.await exec handle))

  (* Step every pending cooperative job by a budget proportional to the
     update size; poll every pooled job and install the finished ones.
     Under the planted [`Worker_crash] fault pooled jobs are awaited
     instead of polled so the (deliberately broken) recovery lands at a
     deterministic point in the op stream -- shrinking and replay of the
     fault would otherwise be timing-dependent. *)
  let pump t work =
    let budget = max 1 (t.work_factor * work) in
    for j = 0 to max_slots + 1 do
      match t.jobs.(j) with
      | None -> ()
      | Some job -> (
        match job.run with
        | Incr task -> (
          let before = Incremental.work_spent task in
          match Incremental.step task ~budget with
          | `Done ss ->
            let spent = Incremental.work_spent task - before in
            Obs.set_max t.g_max_job_step spent;
            Obs.record t.obs (Obs.Job_step { slot = j; work = spent });
            Obs.record t.obs (Obs.Job_finish { slot = j; work = Incremental.work_spent task });
            install t j job ss
          | `More ->
            let spent = Incremental.work_spent task - before in
            Obs.set_max t.g_max_job_step spent;
            Obs.record t.obs (Obs.Job_step { slot = j; work = spent }))
        | Pooled { handle; builder } -> (
          let exec = Option.get t.exec in
          if t.fault = Some `Worker_crash then
            land_pooled t j job handle builder (Exec.await exec handle)
          else
            match Exec.poll exec handle with
            | `Pending -> ()
            | (`Done _ | `Failed _ | `Cancelled) as terminal ->
              land_pooled t j job handle builder terminal))
    done

  let register_deletion_with_jobs t id =
    for j = 0 to max_slots + 1 do
      match t.jobs.(j) with
      | None -> ()
      | Some job -> job.deleted_during <- id :: job.deleted_during
    done

  let start_job t j job =
    assert (t.jobs.(j) = None);
    Obs.incr t.c_jobs_started;
    Obs.record t.obs (Obs.Job_start { slot = j; target = target_name job.target });
    t.jobs.(j) <- Some job

  (* --- queries --- *)

  (* Reader-assist donation.  Updates are the latency-critical path (they
     hold the schedule's invariants), so pooled mode keeps them free of
     construction work entirely: submission, polling and the occasional
     forced completion at a missed deadline.  Queries instead donate a
     bounded processor slice to the workers -- on a multicore machine the
     background builds run during query time anyway; on a machine with
     fewer cores than domains this makes that explicit, so the workers
     keep pace with their install deadlines instead of being starved by
     the update loop.  [Exec.breathe] returns immediately when no job is
     queued or running, and never touches index state, so query results
     are identical with or without the donation. *)
  let donate t =
    match t.exec with
    | Some exec when t.fault <> Some `Worker_crash -> Exec.breathe exec ~ticks:query_grain
    | _ -> ()

  let iter_structures t ~fss ~fgst =
    fgst t.gst;
    (match t.locked_gst with None -> () | Some g -> fgst g);
    for j = 1 to max_slots + 1 do
      (match t.subs.(j) with None -> () | Some ss -> fss ss);
      (match t.locked.(j) with None -> () | Some ss -> fss ss);
      match t.temps.(j) with None -> () | Some ss -> fss ss
    done;
    List.iter (fun (_, ss) -> fss ss) t.tops

  let search t p ~f =
    donate t;
    iter_structures t
      ~fss:(fun ss -> SS.search ss p ~f)
      ~fgst:(fun g -> Gsuffix_tree.search g p ~f)

  let matches t p =
    let acc = ref [] in
    search t p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc

  let count t p =
    donate t;
    let c = ref 0 in
    iter_structures t
      ~fss:(fun ss -> c := !c + SS.count ss p)
      ~fgst:(fun g -> c := !c + Gsuffix_tree.count g p);
    !c

  let extract t ~doc ~off ~len =
    donate t;
    let result = ref None in
    iter_structures t
      ~fss:(fun ss ->
        if !result = None && SS.mem ss doc then result := SS.extract ss ~doc ~off ~len)
      ~fgst:(fun g ->
        if !result = None then
          match Gsuffix_tree.get_doc g doc with
          | Some s when off >= 0 && len >= 0 && off + len <= String.length s ->
            result := Some (String.sub s off len)
          | _ -> ());
    !result

  let mem t doc =
    donate t;
    let found = ref false in
    iter_structures t
      ~fss:(fun ss -> if SS.mem ss doc then found := true)
      ~fgst:(fun g -> if Gsuffix_tree.mem g doc then found := true);
    !found

  (* --- restructuring (nf re-snapshot; synchronous, rare) --- *)

  let all_docs t =
    let acc = ref [] in
    iter_structures t
      ~fss:(fun ss -> acc := SS.live_docs ss @ !acc)
      ~fgst:(fun g -> acc := gst_docs g @ !acc);
    (* a document can appear both in a Temp and nowhere else; Temps are the
       only queryable holders of their doc, so no dedup is needed except
       defensively *)
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (id, _) ->
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.replace seen id ();
          true
        end)
      !acc

  (* Greedy partition into top collections of <= 2 nf/tau symbols each
     (oversized documents get their own); shared by the nf-resnapshot
     restructure and crash-recovery restore, so a restored index obeys
     the same top-grain the oracle expects of a restructured one. *)
  let add_docs_as_tops t docs =
    let grain = 2 * top_grain t in
    let chunk = ref [] and chunk_size = ref 0 in
    let flush () =
      if !chunk <> [] then begin
        let key = t.next_top_key in
        t.next_top_key <- key + 1;
        t.tops <- (key, build_ss t !chunk) :: t.tops;
        chunk := [];
        chunk_size := 0
      end
    in
    List.iter
      (fun (id, s) ->
        let len = String.length s + 1 in
        if len >= grain then begin
          let key = t.next_top_key in
          t.next_top_key <- key + 1;
          t.tops <- (key, build_ss t [ (id, s) ]) :: t.tops
        end
        else begin
          if !chunk_size + len > grain then flush ();
          chunk := (id, s) :: !chunk;
          chunk_size := !chunk_size + len
        end)
      docs;
    flush ()

  let restructure t =
    Obs.incr t.c_restructures;
    (* finish pending jobs first so no work is lost *)
    for j = 0 to max_slots + 1 do
      force_job t j
    done;
    let docs = all_docs t in
    t.gst <- Gsuffix_tree.create ();
    t.locked_gst <- None;
    Array.fill t.subs 0 (Array.length t.subs) None;
    Array.fill t.locked 0 (Array.length t.locked) None;
    Array.fill t.temps 0 (Array.length t.temps) None;
    t.tops <- [];
    let total = List.fold_left (fun a (_, s) -> a + String.length s + 1) 0 docs in
    t.nf <- max 256 total;
    t.live <- total;
    (* every top is rebuilt dead-free below, so the cleaning epoch
       restarts (nf, and with it the period delta, just changed too) *)
    t.del_counter <- 0;
    add_docs_as_tops t docs;
    Obs.record t.obs (Obs.Restructure { nf = t.nf; structures = List.length t.tops })

  (* --- insertion --- *)

  (* Lock level j (C_j becomes L_j, C_j empties) and start the background
     job building the new C_{j+1} (or a new top if j = r). *)
  let lock_and_start t j ~extra_doc ~target =
    (match t.jobs.(match target with `Sub jj -> jj | `Top -> max_slots + 1 | `Replace_top _ -> assert false) with
    | Some _ -> assert false
    | None -> ());
    let job_slot = match target with `Sub jj -> jj | `Top -> max_slots + 1 | `Replace_top _ -> assert false in
    (* snapshot sources *)
    let locked_source, frees_locked =
      if j = 0 then begin
        let g = t.gst in
        t.locked_gst <- Some g;
        t.gst <- Gsuffix_tree.create ();
        (`Gst g, Some 0)
      end
      else begin
        let ss = t.subs.(j) in
        t.locked.(j) <- ss;
        t.subs.(j) <- None;
        (`Ss ss, Some j)
      end
    in
    let absorbed =
      match target with
      | `Sub jj -> t.subs.(jj) (* the old C_{j+1}, rebuilt into the new one *)
      | _ -> None
    in
    (* the new document is queryable through Temp while the job runs *)
    (match extra_doc with
    | None -> ()
    | Some (id, text) -> t.temps.(job_slot) <- Some (build_ss t [ (id, text) ]));
    Obs.record t.obs (Obs.Lock { level = j; target = target_name target });
    (* In pooled mode the L0 suffix tree cannot be read from a worker
       domain (Hashtbl buckets plus whole-tree rebuilds are not
       domain-safe), so its documents are materialized eagerly on the
       caller; semi-static sources ARE read worker-side -- the only
       concurrent mutation is the owner flipping dead bits, which is
       memory-safe under the OCaml memory model and semantically repaired
       by the deleted-during replay at the install point. *)
    let source =
      match (locked_source, t.exec) with
      | `Gst g, Some _ -> `Docs (gst_docs g)
      | (`Gst _ | `Ss _), _ -> locked_source
    in
    let body tick =
      let docs0 =
        match source with
        | `Gst g -> gst_docs ~tick g
        | `Docs docs -> docs
        | `Ss None -> []
        | `Ss (Some ss) -> SS.live_docs ~tick ss
      in
      let docs1 = match absorbed with None -> [] | Some ss -> SS.live_docs ~tick ss in
      let extra = match extra_doc with None -> [] | Some d -> [ d ] in
      build_ss t ~tick (docs0 @ docs1 @ extra)
    in
    let run = make_run t ~name:(target_name target) body in
    start_job t job_slot { run; target; frees_locked; deleted_during = [] }

  let insert_body t (text : string) : int =
    let t0 = Obs.start () in
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let tlen = String.length text + 1 in
    pump t tlen;
    let r = r_of t in
    if tlen >= top_grain t then begin
      (* oversized document: its own top collection, built now *)
      let key = t.next_top_key in
      t.next_top_key <- key + 1;
      t.tops <- (key, build_ss t [ (id, text) ]) :: t.tops;
      Obs.record t.obs
        (Obs.Note (Printf.sprintf "insert: oversized doc %d as top T%d" id key))
    end
    else if Gsuffix_tree.live_symbols t.gst + tlen <= max_size t 0 then
      Gsuffix_tree.insert t.gst ~doc:id text
    else begin
      (* smallest j with |C_j| + |C_{j+1}| + |T| <= max_{j+1} *)
      let size_of j = if j = 0 then Gsuffix_tree.live_symbols t.gst else sub_live t j in
      let rec find j =
        if j >= r then None
        else if size_of j + size_of (j + 1) + tlen <= max_size t (j + 1) then Some j
        else find (j + 1)
      in
      (* Forcing pending jobs below installs new sub-collections, so the
         sizes [find] saw can be stale by the time the slot is locked --
         locking anyway can overflow max_{j+1} (the differential checker
         caught exactly that). Hence the placement loop: pick j, land the
         conflicting jobs, and only proceed if the capacity condition
         still holds under the post-install sizes; otherwise re-find.
         Each retry has strictly fewer pending jobs, so it terminates. *)
      let rec place () =
        match find 0 with
        | Some j ->
          (* Invariant: before consuming or locking C_k, any pending job that
             would rebuild C_k (slot k) must land first, otherwise its
             snapshot would resurrect documents we are about to move. *)
          if j > 0 then force_job t j;
          force_job t (j + 1);
          if (j = 0 && t.locked_gst <> None) || (j > 0 && t.locked.(j) <> None) then begin
            (* L_j still alive: its job targets j+1; finish it *)
            force_job t (j + 1);
            (* if still locked the job lives elsewhere (top slot) *)
            force_job t (max_slots + 1)
          end;
          if size_of j + size_of (j + 1) + tlen > max_size t (j + 1) then place ()
          else if tlen >= max_size t j / 2 then begin
            (* big enough to pay for a synchronous rebuild *)
            Obs.incr t.c_sync_merges;
            let m0 = Obs.start () in
            let docs0 = if j = 0 then gst_docs t.gst else match t.subs.(j) with None -> [] | Some ss -> SS.live_docs ss in
            let docs1 = match t.subs.(j + 1) with None -> [] | Some ss -> SS.live_docs ss in
            if j = 0 then t.gst <- Gsuffix_tree.create () else t.subs.(j) <- None;
            t.subs.(j + 1) <- Some (build_ss t (docs0 @ docs1 @ [ (id, text) ]));
            Obs.stop t.h_merge_ns m0;
            Obs.record t.obs (Obs.Merge { from_level = j; into_level = j + 1; sync = true })
          end
          else lock_and_start t j ~extra_doc:(Some (id, text)) ~target:(`Sub (j + 1))
        | None ->
          (* everything full: C_r (plus T) becomes a new top *)
          force_job t r;
          force_job t (max_slots + 1);
          if t.locked.(r) <> None then force_job t (max_slots + 1);
          if find 0 <> None then place ()
          else lock_and_start t r ~extra_doc:(Some (id, text)) ~target:`Top
      in
      place ()
    end;
    t.live <- t.live + tlen;
    t.doc_count <- t.doc_count + 1;
    if t.live > 2 * t.nf then restructure t;
    Obs.incr t.c_inserts;
    Obs.stop t.h_insert_ns t0;
    id

  (* --- deletion --- *)

  let doc_size t id =
    let size = ref None in
    iter_structures t
      ~fss:(fun ss -> if !size = None then match SS.doc_len ss id with Some l -> size := Some (l + 1) | None -> ())
      ~fgst:(fun g ->
        if !size = None then
          match Gsuffix_tree.get_doc g id with Some s -> size := Some (String.length s + 1) | None -> ());
    !size

  (* Dietz-Sleator cleaning period: one top rebuild is dispatched per
     delta = nf / (2 tau lg tau) deleted symbols. *)
  let clean_period t =
    let lg_tau = max 1 (int_of_float (ceil (log (float_of_int (max 2 t.tau)) /. log 2.))) in
    max 64 (t.nf / (2 * t.tau * lg_tau))

  (* Deleted symbols since the last cleaning dispatch, and the period.
     Schedule invariant: the counter stays below twice the period. *)
  let clean_schedule t = (t.del_counter, clean_period t)

  (* Dietz-Sleator top cleaning: after every delta deleted symbols, rebuild
     the top with the most dead symbols (one background job at a time). *)
  let maybe_clean_tops t =
    if t.fault = Some `Skip_top_clean then ()
    else begin
    let delta = clean_period t in
    (* if the previous cleaning is still in flight after a full second
       period of deletions, land it now -- otherwise the schedule (and the
       dead-space bound that rests on it) can fall arbitrarily behind *)
    if t.del_counter >= 2 * delta && t.jobs.(max_slots + 1) <> None then
      force_job t (max_slots + 1);
    if t.del_counter >= delta && t.jobs.(max_slots + 1) = None then begin
      t.del_counter <- 0;
      let worst =
        List.fold_left
          (fun acc (k, ss) ->
            match acc with
            | Some (_, best) when SS.dead_symbols best >= SS.dead_symbols ss -> acc
            | _ -> if SS.dead_symbols ss > 0 then Some (k, ss) else acc)
          None t.tops
      in
      match worst with
      | None -> ()
      | Some (key, ss) ->
        Obs.incr t.c_top_cleanings;
        let dead = SS.dead_symbols ss in
        let total = SS.live_symbols ss + dead in
        Obs.observe t.h_purge_dead_frac (if total = 0 then 0 else dead * 1000 / total);
        Obs.record t.obs (Obs.Top_clean { key; dead });
        let run =
          make_run t ~name:(target_name (`Replace_top key)) (fun tick ->
              build_ss t ~tick (SS.live_docs ~tick ss))
        in
        start_job t (max_slots + 1)
          { run; target = `Replace_top key; frees_locked = None; deleted_during = [] }
    end
    end

  (* Deleting a nonexistent or already-deleted document must return false
     without pumping jobs, touching counters or running purge checks --
     so the structure is located and marked dead first, and all side
     effects happen only on success. *)
  let delete_body t id =
    match doc_size t id with
    | None -> false
    | Some syms ->
      let t0 = Obs.start () in
      let deleted = ref false in
      (* try the uncompressed buffers first, then every SS *)
      if Gsuffix_tree.mem t.gst id then deleted := Gsuffix_tree.delete t.gst id
      else begin
        (match t.locked_gst with
        | Some g when Gsuffix_tree.mem g id -> deleted := Gsuffix_tree.delete g id
        | _ -> ());
        if not !deleted then begin
          let try_ss ss = if (not !deleted) && SS.mem ss id then deleted := SS.delete ss id in
          for j = 1 to max_slots + 1 do
            (match t.subs.(j) with None -> () | Some ss -> try_ss ss);
            (match t.locked.(j) with None -> () | Some ss -> try_ss ss);
            match t.temps.(j) with None -> () | Some ss -> try_ss ss
          done;
          List.iter (fun (_, ss) -> try_ss ss) t.tops
        end
      end;
      if not !deleted then false
      else begin
        (* in-flight snapshots must learn about the deletion before any
           pending job is allowed to land, or the job would resurrect it *)
        register_deletion_with_jobs t id;
        pump t syms;
        t.live <- t.live - syms;
        t.doc_count <- t.doc_count - 1;
        t.del_counter <- t.del_counter + syms;
        (* drop emptied one-document tops immediately *)
        t.tops <- List.filter (fun (_, ss) -> not (SS.is_empty ss)) t.tops;
        (* C_j purge rule: dead >= max_j / 2 -> merge into C_{j+1} (or top).
           The merge is only legal if the live symbols actually fit in the
           next level's schedule capacity; otherwise rebuild C_j in place
           ([`Sub j]: the lock empties the slot, so the job reinstalls the
           live documents at the same level). *)
        let r = r_of t in
        for j = 1 to r do
          match t.subs.(j) with
          | Some ss when SS.dead_symbols ss >= max 32 (max_size t j / 2) && t.locked.(j) = None ->
            let target =
              if j >= r then `Top
              else if SS.live_symbols ss + sub_live t (j + 1) <= max_size t (j + 1) then `Sub (j + 1)
              else `Sub j
            in
            let slot = match target with `Sub jj -> jj | _ -> max_slots + 1 in
            if t.jobs.(slot) = None && t.jobs.(j) = None then begin
              let dead = SS.dead_symbols ss in
              let total = SS.live_symbols ss + dead in
              Obs.observe t.h_purge_dead_frac (if total = 0 then 0 else dead * 1000 / total);
              Obs.record t.obs (Obs.Purge { level = j; dead; total });
              lock_and_start t j ~extra_doc:None ~target
            end
          | _ -> ()
        done;
        maybe_clean_tops t;
        if 2 * t.live < t.nf && t.nf > 256 then restructure t;
        Obs.incr t.c_deletes;
        Obs.stop t.h_delete_ns t0;
        true
      end

  (* --- read plane --- *)

  (* Build and publish the next epoch: freeze every queryable structure
     under its census name.  Structure snapshots are cached inside the
     GST / each SS, so only the structures the update actually touched
     pay a copy; the single [Atomic.set] is the linearization point
     readers see.  Published once per successful update (plus once by
     [drain] if it landed jobs), so with a single-threaded writer the
     epoch equals the number of completed updates. *)
  let publish t ~cause =
    let t0 = Obs.start () in
    let gsts = ref [ ("C0", Gsuffix_tree.snapshot t.gst) ] in
    (match t.locked_gst with
    | None -> ()
    | Some g -> gsts := !gsts @ [ ("L0", Gsuffix_tree.snapshot g) ]);
    let sss = ref [] in
    let add name ss = sss := (name, SS.snapshot ss) :: !sss in
    List.iter (fun (k, ss) -> add (Printf.sprintf "T%d" k) ss) t.tops;
    for j = max_slots + 1 downto 1 do
      (match t.temps.(j) with None -> () | Some ss -> add (Printf.sprintf "Temp%d" j) ss);
      (match t.locked.(j) with None -> () | Some ss -> add (Printf.sprintf "L%d" j) ss);
      match t.subs.(j) with None -> () | Some ss -> add (Printf.sprintf "C%d" j) ss
    done;
    let pending = ref 0 in
    for j = 0 to max_slots + 1 do
      if t.jobs.(j) <> None then incr pending
    done;
    let epoch = (Atomic.get t.published).vw_epoch + 1 in
    let v =
      {
        vw_epoch = epoch;
        vw_gsts = !gsts;
        vw_sss = !sss;
        vw_nf = t.nf;
        vw_live = t.live;
        vw_docs = t.doc_count;
        vw_pending = !pending;
      }
    in
    Atomic.set t.published v;
    Obs.incr t.c_epoch_published;
    Obs.set_gauge t.g_epoch_current epoch;
    Obs.stop t.h_epoch_publish_ns t0;
    match cause with
    | `Update -> ()
    | `Drain -> Obs.record t.obs (Obs.Epoch_publish { epoch; cause = "drain" })

  let view t = Atomic.get t.published
  let view_epoch v = v.vw_epoch
  let view_nf v = v.vw_nf
  let view_doc_count v = v.vw_docs
  let view_total_symbols v = v.vw_live
  let view_pending_jobs v = v.vw_pending

  let view_search v p ~f =
    List.iter (fun (_, g) -> Gsuffix_tree.view_search g p ~f) v.vw_gsts;
    List.iter (fun (_, sv) -> SS.view_search sv p ~f) v.vw_sss

  let view_matches v p =
    let acc = ref [] in
    view_search v p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc

  let view_count v p =
    List.fold_left (fun a (_, g) -> a + Gsuffix_tree.view_count g p) 0 v.vw_gsts
    + List.fold_left (fun a (_, sv) -> a + SS.view_count sv p) 0 v.vw_sss

  let view_mem v doc =
    List.exists (fun (_, g) -> Gsuffix_tree.view_mem g doc) v.vw_gsts
    || List.exists (fun (_, sv) -> SS.view_mem sv doc) v.vw_sss

  let view_extract v ~doc ~off ~len =
    let from_gst =
      List.fold_left
        (fun acc (_, g) ->
          if acc <> None then acc
          else
            match Gsuffix_tree.view_get_doc g doc with
            | Some s when off >= 0 && len >= 0 && off + len <= String.length s ->
              Some (String.sub s off len)
            | _ -> acc)
        None v.vw_gsts
    in
    if from_gst <> None then from_gst
    else
      List.fold_left
        (fun acc (_, sv) ->
          if acc = None && SS.view_mem sv doc then SS.view_extract sv ~doc ~off ~len else acc)
        None v.vw_sss

  (* Per-structure (name, live, dead) symbol counts frozen at publish
     time: the view-side counterpart of [census]. *)
  let view_census v =
    List.map
      (fun (name, g) ->
        (name, Gsuffix_tree.view_live_symbols g, Gsuffix_tree.view_dead_symbols g))
      v.vw_gsts
    @ List.map
        (fun (name, sv) -> (name, SS.view_live_symbols sv, SS.view_dead_symbols sv))
        v.vw_sss

  (* --- persistence (Dsdg_store) --- *)

  (* The snapshot units of a published epoch, under their census names:
     the C0/L0 buffers as frozen live documents, every semi-static
     structure (C_j, L_j, Temp_j, T_k) as resident documents + deletion
     bit vector.  Everything here is immutable, so a checkpoint job may
     serialize it on a worker domain while the writer keeps mutating. *)
  let view_components v =
    List.map
      (fun (name, g) -> (name, Array.of_list (Gsuffix_tree.view_docs g), [||]))
      v.vw_gsts
    @ List.map
        (fun (name, sv) ->
          let docs, dead = SS.view_dump sv in
          (name, docs, dead))
        v.vw_sss

  let next_id t = t.next_id

  (* Inverse of [view_components].  Canonical structures (C0, C_j, T_k)
     are rebuilt exactly where the dump says they lived -- their sizes
     were legal under [nf] pre-crash and both are restored verbatim, so
     the capacity and buffer-bound invariants hold by construction.  A
     locked copy (L0/L_j) or staging Temp_j in the dump means a rebuild
     job was in flight when the snapshot was taken; the job died with
     the process, so restore completes its work synchronously by folding
     the live documents into fresh top collections under the same
     top-grain partition restructure uses.  (Documents deleted while
     that job was in flight are already marked dead in the dumped
     deletion bit vector, so the fold cannot resurrect them -- the same
     guarantee the deleted-during replay gives a live install.)  The
     first published view continues the dumped epoch, preserving
     epoch = completed updates across a restart. *)
  let restore ?sample ?tau ?epsilon ?work_factor ?fault ?jobs ?seq ~next_id:nid ~nf
      ~del_counter ~epoch ~components () =
    let t = create ?sample ?tau ?epsilon ?work_factor ?fault ?jobs ?seq () in
    t.nf <- max 256 nf;
    t.next_id <- nid;
    t.del_counter <- del_counter;
    let level name prefix =
      let pl = String.length prefix in
      if String.length name > pl && String.sub name 0 pl = prefix then
        int_of_string_opt (String.sub name pl (String.length name - pl))
      else None
    in
    let leftovers = ref [] in
    List.iter
      (fun (name, (docs : (int * string) array), (dead : bool array)) ->
        let live_docs () =
          let acc = ref [] in
          Array.iteri
            (fun i d -> if i >= Array.length dead || not dead.(i) then acc := d :: !acc)
            docs;
          List.rev !acc
        in
        if name = "C0" then
          List.iter
            (fun (id, text) ->
              Gsuffix_tree.insert t.gst ~doc:id text;
              t.live <- t.live + String.length text + 1;
              t.doc_count <- t.doc_count + 1)
            (live_docs ())
        else
          match (level name "C", level name "T") with
          | Some j, _ when j >= 1 && j <= max_slots && t.subs.(j) = None ->
            let ss = SS.of_dump ~seq:t.seq ~sample:t.sample ~tau:t.tau docs dead in
            if not (SS.is_empty ss) then begin
              t.subs.(j) <- Some ss;
              t.live <- t.live + SS.live_symbols ss;
              t.doc_count <- t.doc_count + SS.doc_count ss
            end
          | _, Some k ->
            let ss = SS.of_dump ~seq:t.seq ~sample:t.sample ~tau:t.tau docs dead in
            if not (SS.is_empty ss) then begin
              t.tops <- (k, ss) :: t.tops;
              t.next_top_key <- max t.next_top_key (k + 1);
              t.live <- t.live + SS.live_symbols ss;
              t.doc_count <- t.doc_count + SS.doc_count ss
            end
          | _ ->
            if level name "L" = None && level name "Temp" = None then
              invalid_arg ("Transform2.restore: unknown component " ^ name);
            leftovers := !leftovers @ live_docs ())
      components;
    (* complete the interrupted jobs: their sources fold into fresh tops
       (defensively deduplicated, as all_docs does for Temps) *)
    let fresh = List.filter (fun (id, _) -> not (mem t id)) !leftovers in
    List.iter
      (fun (_, s) ->
        t.live <- t.live + String.length s + 1;
        t.doc_count <- t.doc_count + 1)
      fresh;
    add_docs_as_tops t fresh;
    publish t ~cause:`Update;
    let v = Atomic.get t.published in
    Atomic.set t.published { v with vw_epoch = epoch };
    Obs.set_gauge t.g_epoch_current epoch;
    Obs.record t.obs
      (Obs.Note
         (Printf.sprintf "restored %d component(s) (%d folded doc(s)) at epoch %d"
            (List.length components) (List.length fresh) epoch));
    t

  (* Updates are the schedule's synchronous critical sections: in pooled
     mode they run under update-priority, so worker domains park at
     their next tick instead of competing with the owner for processor
     time and GC barriers mid-update.  [Exec.await] (forced completion)
     and inline overflow release the priority internally, so landing a
     job from inside an update cannot deadlock.  The epoch publication
     happens after the priority section: readers never contend with the
     critical section itself. *)
  let insert t text =
    let id =
      match t.exec with
      | Some exec -> Exec.with_priority exec (fun () -> insert_body t text)
      | None -> insert_body t text
    in
    publish t ~cause:`Update;
    id

  (* Under the planted [`Stale_epoch] fault a successful delete skips
     the publication: the write plane stays correct while the read
     plane serves stale views. *)
  let delete t id =
    let ok =
      match t.exec with
      | Some exec -> Exec.with_priority exec (fun () -> delete_body t id)
      | None -> delete_body t id
    in
    if ok && t.fault <> Some `Stale_epoch then publish t ~cause:`Update;
    ok

  (* Census of all structures: the measured counterpart of Figure 2. *)
  let census t =
    let acc = ref [] in
    let add name live dead = acc := (name, live, dead) :: !acc in
    add "C0" (Gsuffix_tree.live_symbols t.gst) (Gsuffix_tree.dead_symbols t.gst);
    (match t.locked_gst with
    | None -> ()
    | Some g -> add "L0" (Gsuffix_tree.live_symbols g) (Gsuffix_tree.dead_symbols g));
    for j = 1 to max_slots + 1 do
      (match t.subs.(j) with
      | None -> ()
      | Some ss -> add (Printf.sprintf "C%d" j) (SS.live_symbols ss) (SS.dead_symbols ss));
      (match t.locked.(j) with
      | None -> ()
      | Some ss -> add (Printf.sprintf "L%d" j) (SS.live_symbols ss) (SS.dead_symbols ss));
      match t.temps.(j) with
      | None -> ()
      | Some ss -> add (Printf.sprintf "Temp%d" j) (SS.live_symbols ss) (SS.dead_symbols ss)
    done;
    List.iter (fun (k, ss) -> add (Printf.sprintf "T%d" k) (SS.live_symbols ss) (SS.dead_symbols ss)) t.tops;
    List.rev !acc

  (* Space per structure, for the nHk + o(n) accounting. *)
  let space_census t =
    let acc = ref [] in
    let add name bits = acc := (name, bits) :: !acc in
    add "C0" (Gsuffix_tree.space_bits t.gst);
    (match t.locked_gst with None -> () | Some g -> add "L0" (Gsuffix_tree.space_bits g));
    for j = 1 to max_slots + 1 do
      (match t.subs.(j) with None -> () | Some ss -> add (Printf.sprintf "C%d" j) (SS.space_bits ss));
      (match t.locked.(j) with None -> () | Some ss -> add (Printf.sprintf "L%d" j) (SS.space_bits ss));
      match t.temps.(j) with
      | None -> ()
      | Some ss -> add (Printf.sprintf "Temp%d" j) (SS.space_bits ss)
    done;
    List.iter (fun (k, ss) -> add (Printf.sprintf "T%d" k) (SS.space_bits ss)) t.tops;
    List.rev !acc

  let pending_jobs t =
    let c = ref 0 in
    for j = 0 to max_slots + 1 do
      if t.jobs.(j) <> None then incr c
    done;
    !c

  (* Land every in-flight job now (each counts as a forced completion,
     exactly like a capacity conflict would).  Publishes a fresh epoch
     only if jobs actually landed -- a no-op drain must not disturb the
     epoch = completed-updates invariant. *)
  let drain t =
    let pending = pending_jobs t in
    for j = 0 to max_slots + 1 do
      force_job t j
    done;
    if pending > 0 then publish t ~cause:`Drain

  (* Drain, then stop and join the worker domains.  The index stays
     fully usable afterwards; new jobs simply run synchronously. *)
  let close t =
    match t.exec with
    | None -> ()
    | Some exec ->
      drain t;
      Exec.shutdown exec

  let space_bits t =
    let total = ref 0 in
    iter_structures t
      ~fss:(fun ss -> total := !total + SS.space_bits ss)
      ~fgst:(fun g -> total := !total + Gsuffix_tree.space_bits g);
    !total
end
