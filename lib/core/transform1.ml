(* Transformation 1 (Section 2): static index -> fully-dynamic index with
   amortized update bounds.

   The collection is split into C0 (an uncompressed generalized suffix
   tree) and sub-collections C1..Cr held in semi-static deletion-only
   indexes whose maximum sizes grow geometrically:

       max_j = 2 (nf / log^2 nf) * log^(eps*j) nf.

   A new document goes to the smallest Cj that can absorb it together
   with all smaller sub-collections (logarithmic method).  Deletions are
   lazy; a sub-collection is purged when a 1/tau fraction of its symbols
   is dead.  A global rebuild re-snapshots nf when the live size doubles
   or halves.

   The schedule is pluggable: [geometric] gives the paper's
   Transformation 1 (O(1) sub-collections, O(u log^eps n) insertion);
   [doubling] gives Transformation 3 from Appendix A.4 (O(log log n)
   sub-collections, O(u log log n) insertion).

   Merge/purge/rebuild accounting goes through the shared Dsdg_obs.Obs
   layer; [stats] is a read-only view over those counters. *)

open Dsdg_gst
open Dsdg_obs

type schedule = {
  schedule_name : string;
  slots : int -> int; (* nf -> index r of the last sub-collection *)
  max_size : int -> int -> int; (* nf -> j -> max_j *)
}

let log2 x = log x /. log 2.

let geometric ?(epsilon = 0.5) () =
  let r = int_of_float (ceil (2. /. epsilon)) + 1 in
  {
    schedule_name = Printf.sprintf "geometric(eps=%.2f)" epsilon;
    slots = (fun _nf -> r);
    max_size =
      (fun nf j ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        let base = 2. *. nff /. (lg *. lg) in
        max 64 (int_of_float (base *. (lg ** (epsilon *. float_of_int j)))));
  }

let doubling () =
  {
    schedule_name = "doubling";
    slots =
      (fun nf ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        max 2 (int_of_float (ceil (2. *. log2 lg)) + 1));
    max_size =
      (fun nf j ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        let base = 2. *. nff /. (lg *. lg) in
        max 64 (int_of_float (base *. (2. ** float_of_int j))));
  }

type location = In_buffer | In_sub of int

(* Read-only snapshot of the amortization counters. *)
type stats = {
  merges : int;
  purges : int;
  global_rebuilds : int;
  symbols_rebuilt : int;
}

module Make (I : Static_index.S) = struct
  module SS = Semi_static.Make (I)
  module Exec = Dsdg_exec.Executor

  (* Sub-collection slots are stored in a fixed array of generous size;
     the live prefix in use is [1 .. slots nf]. *)
  let max_slots = 64

  (* Read-plane snapshot: the C0 buffer frozen as a Gsuffix_tree.view,
     every sub-collection as an SS.view, plus the census scalars.  A
     view is immutable end to end, so readers on any domain query it
     without synchronization; the writer publishes a fresh one (epoch
     +1) after every completed update via one [Atomic.set]. *)
  type view = {
    vw_epoch : int;
    vw_gst : Gsuffix_tree.view;
    vw_subs : (int * SS.view) list; (* level j, ascending *)
    vw_nf : int;
    vw_live : int;
    vw_docs : int;
  }

  type t = {
    schedule : schedule;
    sample : int;
    tau : int;
    seq : Dsdg_delbits.Sums.kind; (* partial-sums/bitvec substrate for sub-indexes *)
    mutable gst : Gsuffix_tree.t; (* C0 *)
    subs : SS.t option array; (* C_1 .. C_r *)
    locs : (int, location) Hashtbl.t;
    mutable next_id : int;
    mutable nf : int;
    mutable live : int; (* live symbols including separators *)
    exec : Exec.t option; (* purge/global-rebuild offload; None = all inline *)
    published : view Atomic.t; (* the read plane: latest epoch *)
    obs : Obs.scope;
    c_epoch_published : Obs.counter;
    g_epoch_current : Obs.gauge;
    h_epoch_publish_ns : Obs.histogram;
    c_merges : Obs.counter;
    c_purges : Obs.counter;
    c_global_rebuilds : Obs.counter;
    c_symbols_rebuilt : Obs.counter;
    c_crash_fallbacks : Obs.counter;
    c_inserts : Obs.counter;
    c_deletes : Obs.counter;
    h_insert_ns : Obs.histogram;
    h_delete_ns : Obs.histogram;
    h_purge_dead_frac : Obs.histogram; (* per-mille dead fraction at purge time *)
  }

  let create ?(schedule = geometric ()) ?(sample = 8) ?(tau = 8) ?(jobs = 0)
      ?(seq = Dsdg_delbits.Sums.Avl) () =
    let obs = Obs.private_scope ("transform1/" ^ I.name) in
    let gst = Gsuffix_tree.create () in
    let view0 =
      {
        vw_epoch = 0;
        vw_gst = Gsuffix_tree.snapshot gst;
        vw_subs = [];
        vw_nf = 256;
        vw_live = 0;
        vw_docs = 0;
      }
    in
    {
      exec = (if jobs > 0 then Some (Exec.create ~obs ~workers:jobs ()) else None);
      schedule;
      sample;
      tau;
      seq;
      gst;
      published = Atomic.make view0;
      subs = Array.make (max_slots + 1) None;
      locs = Hashtbl.create 64;
      next_id = 0;
      nf = 256;
      live = 0;
      obs;
      c_merges = Obs.counter obs "merges";
      c_purges = Obs.counter obs "purges";
      c_global_rebuilds = Obs.counter obs "global_rebuilds";
      c_symbols_rebuilt = Obs.counter obs "symbols_rebuilt";
      c_crash_fallbacks = Obs.counter obs "crash_fallbacks";
      c_inserts = Obs.counter obs "inserts";
      c_deletes = Obs.counter obs "deletes";
      h_insert_ns = Obs.histogram obs "insert_ns";
      h_delete_ns = Obs.histogram obs "delete_ns";
      h_purge_dead_frac = Obs.histogram obs "purge_dead_permille";
      c_epoch_published = Obs.counter obs "exec_epoch_published";
      g_epoch_current = Obs.gauge obs "exec_epoch_current";
      h_epoch_publish_ns = Obs.histogram obs "exec_epoch_publish_ns";
    }

  let obs t = t.obs
  let events t = List.map (fun (_, e) -> Obs.event_to_string e) (Obs.recent t.obs)

  let stats t =
    {
      merges = Obs.value t.c_merges;
      purges = Obs.value t.c_purges;
      global_rebuilds = Obs.value t.c_global_rebuilds;
      symbols_rebuilt = Obs.value t.c_symbols_rebuilt;
    }

  let r_of t = min max_slots (t.schedule.slots t.nf)
  let max_size t j = t.schedule.max_size t.nf j

  (* Read-only introspection for the differential checker (Dsdg_check):
     the current nf snapshot and the schedule's capacity for level j. *)
  let nf t = t.nf
  let level_capacity t j = max_size t j
  let sub_size t j = match t.subs.(j) with None -> 0 | Some ss -> SS.live_symbols ss

  let doc_count t = Hashtbl.length t.locs
  let total_symbols t = t.live
  let schedule_name t = t.schedule.schedule_name

  (* Gather all live documents of slot [j] (None -> []). *)
  let sub_docs t j =
    match t.subs.(j) with
    | None -> []
    | Some ss -> SS.live_docs ss

  let gst_docs t =
    List.filter_map (fun d -> Option.map (fun s -> (d, s)) (Gsuffix_tree.get_doc t.gst d))
      (Gsuffix_tree.doc_ids t.gst)

  let build_sub t (docs : (int * string) list) : SS.t =
    let arr = Array.of_list docs in
    Obs.add t.c_symbols_rebuilt
      (Array.fold_left (fun a (_, s) -> a + String.length s + 1) 0 arr);
    SS.build ~seq:t.seq ~sample:t.sample ~tau:t.tau arr

  (* Purge/global-rebuild offload: run the build on a worker domain when
     a pool is attached (the docs list is immutable, so the job is
     trivially domain-safe), falling back to an inline build if the
     worker crashes.  With no pool this IS [build_sub]. *)
  let offload_build t ~name docs =
    match t.exec with
    | None -> build_sub t docs
    | Some exec -> (
      match Exec.await exec (Exec.submit exec ~name (fun _tick -> build_sub t docs)) with
      | `Done ss -> ss
      | `Failed _ | `Cancelled ->
        Obs.incr t.c_crash_fallbacks;
        Obs.record t.obs (Obs.Note ("worker crash: " ^ name ^ " rebuilt inline"));
        build_sub t docs)

  let set_locations t docs loc = List.iter (fun (id, _) -> Hashtbl.replace t.locs id loc) docs

  (* --- read plane --- *)

  (* Build and publish the next epoch.  Structure snapshots are cached
     inside the GST / each SS, so an update that touched only C0 pays
     one buffer copy here and reuses every sub-collection's cached view;
     the single [Atomic.set] is the linearization point readers see. *)
  let publish t ~cause =
    let t0 = Obs.start () in
    let subs = ref [] in
    for j = max_slots downto 1 do
      match t.subs.(j) with None -> () | Some ss -> subs := (j, SS.snapshot ss) :: !subs
    done;
    let epoch = (Atomic.get t.published).vw_epoch + 1 in
    let v =
      {
        vw_epoch = epoch;
        vw_gst = Gsuffix_tree.snapshot t.gst;
        vw_subs = !subs;
        vw_nf = t.nf;
        vw_live = t.live;
        vw_docs = Hashtbl.length t.locs;
      }
    in
    Atomic.set t.published v;
    Obs.incr t.c_epoch_published;
    Obs.set_gauge t.g_epoch_current epoch;
    Obs.stop t.h_epoch_publish_ns t0;
    if cause <> `Update then
      Obs.record t.obs (Obs.Epoch_publish { epoch; cause = "consolidate" })

  let view t = Atomic.get t.published
  let view_epoch v = v.vw_epoch
  let view_nf v = v.vw_nf
  let view_doc_count v = v.vw_docs
  let view_total_symbols v = v.vw_live

  let view_search v p ~f =
    Gsuffix_tree.view_search v.vw_gst p ~f;
    List.iter (fun (_, sv) -> SS.view_search sv p ~f) v.vw_subs

  let view_matches v p =
    let acc = ref [] in
    view_search v p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc

  let view_count v p =
    Gsuffix_tree.view_count v.vw_gst p
    + List.fold_left (fun a (_, sv) -> a + SS.view_count sv p) 0 v.vw_subs

  let view_mem v doc =
    Gsuffix_tree.view_mem v.vw_gst doc
    || List.exists (fun (_, sv) -> SS.view_mem sv doc) v.vw_subs

  let view_extract v ~doc ~off ~len =
    match Gsuffix_tree.view_get_doc v.vw_gst doc with
    | Some s ->
      if off < 0 || len < 0 || off + len > String.length s then None
      else Some (String.sub s off len)
    | None ->
      List.fold_left
        (fun acc (_, sv) ->
          if acc = None && SS.view_mem sv doc then SS.view_extract sv ~doc ~off ~len else acc)
        None v.vw_subs

  let view_census v =
    ("C0", Gsuffix_tree.view_live_symbols v.vw_gst, Gsuffix_tree.view_dead_symbols v.vw_gst)
    :: List.map
         (fun (j, sv) ->
           (Printf.sprintf "C%d" j, SS.view_live_symbols sv, SS.view_dead_symbols sv))
         v.vw_subs

  (* --- persistence (Dsdg_store) --- *)

  (* The snapshot units of a published epoch, under their census names:
     C0 as its frozen live documents, every sub-collection as resident
     documents + deletion bit vector.  Everything here is immutable, so
     a checkpoint job may serialize it on a worker domain. *)
  let view_components v =
    ("C0", Array.of_list (Gsuffix_tree.view_docs v.vw_gst), [||])
    :: List.map
         (fun (j, sv) ->
           let docs, dead = SS.view_dump sv in
           (Printf.sprintf "C%d" j, docs, dead))
         v.vw_subs

  let next_id t = t.next_id

  (* Inverse of [view_components]: rebuild every structure where the
     dump says it lived.  The capacity invariants hold by construction
     -- each component held at most max_j live symbols under [nf] when
     the dump was taken, and both the sizes and nf are restored
     verbatim.  The first published view continues the dumped epoch so
     that epoch = completed updates keeps holding across a restart. *)
  let restore ?schedule ?sample ?tau ?jobs ?seq ~next_id:nid ~nf ~epoch ~components () =
    let t = create ?schedule ?sample ?tau ?jobs ?seq () in
    t.nf <- max 256 nf;
    t.next_id <- nid;
    List.iter
      (fun (name, (docs : (int * string) array), (dead : bool array)) ->
        if name = "C0" then
          Array.iteri
            (fun i (id, text) ->
              if i >= Array.length dead || not dead.(i) then begin
                Gsuffix_tree.insert t.gst ~doc:id text;
                Hashtbl.replace t.locs id In_buffer;
                t.live <- t.live + String.length text + 1
              end)
            docs
        else
          match
            if String.length name >= 2 && name.[0] = 'C' then
              int_of_string_opt (String.sub name 1 (String.length name - 1))
            else None
          with
          | Some j when j >= 1 && j <= max_slots && t.subs.(j) = None ->
            let ss = SS.of_dump ~seq:t.seq ~sample:t.sample ~tau:t.tau docs dead in
            if not (SS.is_empty ss) then begin
              t.subs.(j) <- Some ss;
              Array.iteri
                (fun i (id, _) ->
                  if not dead.(i) then Hashtbl.replace t.locs id (In_sub j))
                docs;
              t.live <- t.live + SS.live_symbols ss
            end
          | _ -> invalid_arg ("Transform1.restore: unknown or duplicate component " ^ name))
      components;
    publish t ~cause:`Update;
    let v = Atomic.get t.published in
    Atomic.set t.published { v with vw_epoch = epoch };
    Obs.set_gauge t.g_epoch_current epoch;
    Obs.record t.obs (Obs.Note (Printf.sprintf "restored %d component(s) at epoch %d" (List.length components) epoch));
    t

  (* Move every live document into the top sub-collection and re-snapshot
     nf (the paper's global re-build). *)
  let global_rebuild t ~extra =
    Obs.incr t.c_global_rebuilds;
    let docs = ref (gst_docs t) in
    for j = 1 to max_slots do
      docs := sub_docs t j @ !docs;
      t.subs.(j) <- None
    done;
    let docs = (match extra with None -> !docs | Some d -> d :: !docs) in
    t.gst <- Gsuffix_tree.create ();
    let total = List.fold_left (fun a (_, s) -> a + String.length s + 1) 0 docs in
    t.nf <- max 256 total;
    t.live <- total;
    let r = r_of t in
    if docs <> [] then begin
      t.subs.(r) <- Some (offload_build t ~name:"global_rebuild" docs);
      set_locations t docs (In_sub r)
    end;
    Obs.record t.obs (Obs.Restructure { nf = t.nf; structures = (if docs = [] then 0 else 1) })

  let insert t (text : string) : int =
    let t0 = Obs.start () in
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let tlen = String.length text + 1 in
    let r = r_of t in
    if Gsuffix_tree.live_symbols t.gst + tlen <= max_size t 0 then begin
      Gsuffix_tree.insert t.gst ~doc:id text;
      Hashtbl.replace t.locs id In_buffer;
      t.live <- t.live + tlen
    end
    else begin
      (* smallest j with |C0| + .. + |Cj| + |T| <= max_j *)
      let rec find j acc =
        if j > r then None
        else begin
          let acc = acc + sub_size t j in
          if acc + tlen <= max_size t j then Some (j, acc) else find (j + 1) acc
        end
      in
      match find 1 (Gsuffix_tree.live_symbols t.gst) with
      | Some (j, _) ->
        Obs.incr t.c_merges;
        Obs.record t.obs (Obs.Merge { from_level = 0; into_level = j; sync = true });
        let docs = ref [ (id, text) ] in
        docs := gst_docs t @ !docs;
        for i = 1 to j do
          docs := sub_docs t i @ !docs;
          t.subs.(i) <- None
        done;
        t.gst <- Gsuffix_tree.create ();
        t.subs.(j) <- Some (build_sub t !docs);
        set_locations t !docs (In_sub j);
        t.live <- t.live + tlen
      | None -> global_rebuild t ~extra:(Some (id, text))
    end;
    if t.live > 2 * t.nf then global_rebuild t ~extra:None;
    publish t ~cause:`Update;
    Obs.incr t.c_inserts;
    Obs.stop t.h_insert_ns t0;
    id

  (* Purge a sub-collection that has accumulated too many dead symbols:
     rebuild it in place from its live documents. *)
  let purge t j =
    match t.subs.(j) with
    | None -> ()
    | Some ss ->
      Obs.incr t.c_purges;
      let dead = SS.dead_symbols ss in
      let total = SS.live_symbols ss + dead in
      Obs.observe t.h_purge_dead_frac (if total = 0 then 0 else dead * 1000 / total);
      Obs.record t.obs (Obs.Purge { level = j; dead; total });
      let docs = SS.live_docs ss in
      if docs = [] then t.subs.(j) <- None
      else begin
        t.subs.(j) <- Some (offload_build t ~name:(Printf.sprintf "purge C%d" j) docs);
        set_locations t docs (In_sub j)
      end

  (* Deleting a nonexistent (or stale-location) document returns false
     and leaves every counter and structure untouched. *)
  let delete t id =
    match Hashtbl.find_opt t.locs id with
    | None -> false
    | Some In_buffer -> (
      match Gsuffix_tree.get_doc t.gst id with
      | None -> false (* stale location: treat as absent, mutate nothing *)
      | Some contents ->
        let t0 = Obs.start () in
        let len = String.length contents + 1 in
        ignore (Gsuffix_tree.delete t.gst id);
        Hashtbl.remove t.locs id;
        t.live <- t.live - len;
        if t.live * 2 < t.nf && t.nf > 256 then global_rebuild t ~extra:None;
        publish t ~cause:`Update;
        Obs.incr t.c_deletes;
        Obs.stop t.h_delete_ns t0;
        true)
    | Some (In_sub j) -> (
      match t.subs.(j) with
      | None -> false
      | Some ss ->
        let len = match SS.doc_len ss id with None -> 0 | Some l -> l + 1 in
        let t0 = Obs.start () in
        let ok = SS.delete ss id in
        if ok then begin
          Hashtbl.remove t.locs id;
          t.live <- t.live - len;
          if SS.needs_purge ss then purge t j;
          if t.live * 2 < t.nf && t.nf > 256 then global_rebuild t ~extra:None;
          publish t ~cause:`Update;
          Obs.incr t.c_deletes;
          Obs.stop t.h_delete_ns t0
        end;
        ok)

  let mem t id = Hashtbl.mem t.locs id

  let search t p ~f =
    Gsuffix_tree.search t.gst p ~f;
    for j = 1 to max_slots do
      match t.subs.(j) with None -> () | Some ss -> SS.search ss p ~f
    done

  let matches t p =
    let acc = ref [] in
    search t p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc

  let count t p =
    let c = ref (Gsuffix_tree.count t.gst p) in
    for j = 1 to max_slots do
      match t.subs.(j) with None -> () | Some ss -> c := !c + SS.count ss p
    done;
    !c

  let extract t ~doc ~off ~len =
    match Hashtbl.find_opt t.locs doc with
    | None -> None
    | Some In_buffer -> (
      match Gsuffix_tree.get_doc t.gst doc with
      | None -> None
      | Some s -> if off < 0 || len < 0 || off + len > String.length s then None else Some (String.sub s off len))
    | Some (In_sub j) -> (
      match t.subs.(j) with None -> None | Some ss -> SS.extract ss ~doc ~off ~len)

  (* Merge everything into one sub-collection now (an explicit global
     rebuild): afterwards queries probe a single static index plus the
     empty C0.  The library-management analogue of a force-merge. *)
  let consolidate t =
    global_rebuild t ~extra:None;
    publish t ~cause:`Consolidate

  (* Live sizes of all sub-collections: the measured counterpart of the
     paper's Figure 1. *)
  let census t =
    let acc = ref [ ("C0", Gsuffix_tree.live_symbols t.gst) ] in
    for j = 1 to max_slots do
      match t.subs.(j) with
      | None -> ()
      | Some ss -> acc := (Printf.sprintf "C%d" j, SS.live_symbols ss) :: !acc
    done;
    List.rev !acc

  (* [census] plus dead-symbol counts, for the invariant oracles. *)
  let census_full t =
    let acc =
      ref [ ("C0", Gsuffix_tree.live_symbols t.gst, Gsuffix_tree.dead_symbols t.gst) ]
    in
    for j = 1 to max_slots do
      match t.subs.(j) with
      | None -> ()
      | Some ss -> acc := (Printf.sprintf "C%d" j, SS.live_symbols ss, SS.dead_symbols ss) :: !acc
    done;
    List.rev !acc

  let space_bits t =
    let sub_space =
      Array.fold_left (fun a -> function None -> a | Some ss -> a + SS.space_bits ss) 0 t.subs
    in
    Gsuffix_tree.space_bits t.gst + sub_space + (Hashtbl.length t.locs * 3 * 63)

  (* Stop and join the worker domains (no-op without a pool); the index
     stays usable, rebuilds simply run inline afterwards. *)
  let close t = match t.exec with None -> () | Some exec -> Exec.shutdown exec
end
