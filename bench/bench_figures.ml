(* Figures 1-3 are structural diagrams in the paper; we reproduce them as
   measured traces of the live data structures. *)

open Dsdg_core
open Dsdg_workload

module T1 = Transform1.Make (Fm_static)
module T2 = Transform2.Make (Fm_static)

(* Figure 1: geometric sub-collections C0..Cr under an insert stream. *)
let fig1 () =
  let st = Text_gen.rng 31 in
  let t = T1.create ~sample:8 ~tau:8 () in
  Printf.printf "\n[fig1] Transformation 1 sub-collection sizes over an insertion stream\n";
  let rows = ref [] in
  for i = 1 to 4000 do
    ignore (T1.insert t (Text_gen.english_like st ~len:(20 + Random.State.int st 60)));
    if i mod 800 = 0 then begin
      let census = T1.census t in
      let cells =
        List.map (fun (name, size) -> Printf.sprintf "%s=%d" name size) census
      in
      rows := [ string_of_int i; String.concat "  " cells ] :: !rows
    end
  done;
  Bench_util.print_table ~title:"Figure 1: census after N insertions  [expect geometric size profile]"
    ~header:[ "inserts"; "sub-collections (live symbols)" ] (List.rev !rows);
  let s = T1.stats t in
  Printf.printf "merges=%d purges=%d global_rebuilds=%d symbols_rebuilt=%d (amortized %.1f rebuilt syms per inserted sym)\n"
    s.Transform1.merges s.Transform1.purges s.Transform1.global_rebuilds s.Transform1.symbols_rebuilt
    (float_of_int s.Transform1.symbols_rebuilt /. float_of_int (T1.total_symbols t));
  Bench_util.emit_json_row ~scope:(T1.obs t) ~bench:"fig1_insert_stream"
    [ ("inserts", Bench_util.I 4000) ]

(* Figure 2: Transformation 2's structure census under mixed churn. *)
let fig2 () =
  let st = Text_gen.rng 33 in
  let t = T2.create ~sample:8 ~tau:8 () in
  Printf.printf "\n[fig2] Transformation 2 structures under mixed insert/delete churn\n";
  let live = ref [] and nlive = ref 0 in
  let rows = ref [] in
  for i = 1 to 5000 do
    if Random.State.float st 1.0 < 0.65 || !nlive = 0 then begin
      live := T2.insert t (Text_gen.english_like st ~len:(20 + Random.State.int st 60)) :: !live;
      incr nlive
    end
    else begin
      let k = Random.State.int st !nlive in
      let id = List.nth !live k in
      ignore (T2.delete t id);
      live := List.filter (fun x -> x <> id) !live;
      decr nlive
    end;
    if i mod 1000 = 0 then begin
      let census = T2.census t in
      let kind prefix = List.filter (fun (n, _, _) -> String.length n >= String.length prefix
                                                     && String.sub n 0 (String.length prefix) = prefix) census in
      let total sel = List.fold_left (fun a (_, l, _) -> a + l) 0 sel in
      let dead sel = List.fold_left (fun a (_, _, d) -> a + d) 0 sel in
      rows :=
        [ string_of_int i;
          Printf.sprintf "%d" (total (kind "C"));
          Printf.sprintf "%d" (total (kind "L"));
          Printf.sprintf "%d" (total (kind "Temp"));
          Printf.sprintf "%d in %d tops" (total (kind "T")) (List.length (kind "T"));
          Printf.sprintf "%.1f%%" (100. *. float_of_int (dead census) /. float_of_int (max 1 (total census + dead census)));
          string_of_int (T2.pending_jobs t) ]
        :: !rows
    end
  done;
  Bench_util.print_table
    ~title:"Figure 2: live symbols per structure kind  [expect bulk in tops; C/L/Temp small; dead bounded]"
    ~header:[ "ops"; "C*"; "L*"; "Temp*"; "tops"; "dead frac"; "jobs" ]
    (List.rev !rows);
  let census = T2.census t in
  let total = List.fold_left (fun a (_, l, _) -> a + l) 0 census in
  let dead = List.fold_left (fun a (_, _, d) -> a + d) 0 census in
  Bench_util.emit_json_row ~scope:(T2.obs t) ~bench:"fig2_churn"
    [ ("ops", Bench_util.I 5000);
      ("live_syms", Bench_util.I total);
      ("dead_syms", Bench_util.I dead);
      ("dead_permille", Bench_util.I (if total + dead = 0 then 0 else dead * 1000 / (total + dead))) ]

(* Figure 3: the lock -> background build -> install protocol, as an
   event trace. *)
let fig3 () =
  let st = Text_gen.rng 35 in
  (* small work factor so a background build spans many updates *)
  let t = T2.create ~sample:8 ~tau:8 ~work_factor:8 () in
  for _ = 1 to 600 do
    ignore (T2.insert t (Text_gen.english_like st ~len:(30 + Random.State.int st 50)))
  done;
  Printf.printf "\n[fig3] Transformation 2 event trace (newest first), showing Figure 3's protocol:\n";
  Printf.printf "       lock C_j -> L_j, Temp holds the new doc, N_{j+1} builds in background, install swaps\n\n";
  List.iteri (fun i ev -> if i < 18 then Printf.printf "   %s\n" ev) (T2.events t);
  let s = T2.stats t in
  Printf.printf
    "\njobs: %d started, %d completed in background, %d forced synchronously, max per-update job work = %d ticks\n"
    s.Transform2.jobs_started s.Transform2.jobs_completed s.Transform2.forced s.Transform2.max_job_step
