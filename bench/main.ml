(* Benchmark harness: one experiment per table and figure of the paper
   (see DESIGN.md section 3 for the experiment index), plus ablations.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- LIST    -- run selected experiments

   Also registers one Bechamel micro-benchmark group per paper table
   ("microbench" target) for per-operation statistics. *)

open Bechamel

let micro () =
  (* One Test.make per table: the headline per-op of each experiment. *)
  let open Dsdg_core in
  let open Dsdg_workload in
  let st = Text_gen.rng 99 in
  let docs = Text_gen.corpus st ~count:100 ~avg_len:300 ~kind:(`Markov (8, 0.6)) in
  let fm = Dsdg_fm.Fm_index.build ~sample:8 docs in
  let module T2 = Transform2.Make (Fm_static) in
  let t2 = T2.create ~sample:8 ~tau:8 () in
  Array.iter (fun d -> ignore (T2.insert t2 d)) docs;
  let base = Dsdg_dynseq.Dyn_fm.create () in
  Array.iteri (fun i d -> Dsdg_dynseq.Dyn_fm.insert base ~doc:i d) docs;
  let rel = Dsdg_binrel.Dyn_binrel.create () in
  for i = 0 to 5000 do
    ignore (Dsdg_binrel.Dyn_binrel.add rel (i mod 500) (i mod 37))
  done;
  let pat = match Text_gen.planted_pattern st docs ~len:4 with Some p -> p | None -> "data" in
  let tests =
    [
      Test.make ~name:"table1/static-fm-count" (Staged.stage (fun () -> Dsdg_fm.Fm_index.count fm pat));
      Test.make ~name:"table2/transform2-count" (Staged.stage (fun () -> T2.count t2 pat));
      Test.make ~name:"table2/baseline-dynbwt-count"
        (Staged.stage (fun () -> Dsdg_dynseq.Dyn_fm.count base pat));
      Test.make ~name:"table3/plain-sa-backend-count"
        (let module T2s = Transform2.Make (Sa_static) in
         let t2s = T2s.create ~sample:8 ~tau:8 () in
         Array.iter (fun d -> ignore (T2s.insert t2s d)) docs;
         Staged.stage (fun () -> T2s.count t2s pat));
      Test.make ~name:"table4/count-with-liveness" (Staged.stage (fun () -> T2.count t2 pat));
      Test.make ~name:"binrel/related"
        (Staged.stage (fun () -> Dsdg_binrel.Dyn_binrel.related rel 123 7));
    ]
  in
  let results = Bench_util.run_tests ~quota:0.4 tests in
  Bench_util.print_table ~title:"Bechamel micro-benchmarks (ns/op, OLS estimate)"
    ~header:[ "benchmark"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; Bench_util.ns_str ns ]) results)

let experiments =
  [
    ("table1", Table1.run);
    ("backends", Bench_backends.run);
    ("sequences", Bench_sequences.run);
    ("cst", Bench_cst.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("binrel", Bench_binrel.run);
    ("graph", Bench_binrel.run_graph);
    ("fig1", Bench_figures.fig1);
    ("fig2", Bench_figures.fig2);
    ("fig3", Bench_figures.fig3);
    ("exec", Bench_exec.run);
    ("readers", Bench_readers.run);
    ("store", Bench_store.run);
    ("serve", Bench_serve.run);
    ("follow", Bench_follow.run);
    ("shard", Bench_shard.run);
    ("ablation_tau", Bench_ablations.ablation_tau);
    ("ablation_s", Bench_ablations.ablation_s);
    ("ablation_t3", Bench_ablations.ablation_t3);
    ("ablation_work", Bench_ablations.ablation_work_factor);
    ("ablation_obs", Bench_ablations.ablation_obs_overhead);
    ("lemma23", Bench_ablations.lemma23);
    ("microbench", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; available: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        requested
  in
  Printf.printf "dsdg benchmark harness -- reproducing Munro-Nekrich-Vitter (PODS 2015)\n";
  List.iter
    (fun (name, f) ->
      let _, ns = Bench_util.time_ns f in
      Printf.printf "[%s done in %s]\n%!" name (Bench_util.ns_str ns))
    to_run
