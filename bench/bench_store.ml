(* Store benchmark: what durability costs and what recovery buys.

   Three experiments over the same Markov-generated corpus:

   - WAL append overhead per insert: a plain in-memory index vs a
     --store index under each fsync policy (always / every-64 / never).
     The gap between "none" and "never" is the logging overhead proper
     (format + write); the gap between "never" and "always" is fsync.
   - Snapshot economics: checkpoint wall time, snapshot bytes vs raw
     text bytes (snapshots store the logical documents plus deletion
     bit vectors, not the derived structures, so the ratio should sit
     near 1), and cold-open time from the snapshot with an empty WAL.
   - Recovery throughput: crash with a WAL-only store (no snapshot,
     torn final record) and time open_or_recover's full replay, in
     ops/s -- the number that bounds worst-case restart time. *)

open Dsdg_core
module Store = Dsdg_store

let n_docs = 600
let avg_len = 240

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsdg-bench-store-%d" (Unix.getpid ()))
  in
  Store.Kill_check.reset_dir dir;
  Fun.protect ~finally:(fun () -> Store.Kill_check.reset_dir dir) (fun () -> f dir)

(* Insert the corpus one document at a time, returning (sorted
   per-insert ns, total ns). *)
let timed_inserts insert docs =
  let lat = Array.make (Array.length docs) 0 in
  let t0 = Dsdg_obs.Obs.now_ns () in
  Array.iteri
    (fun i d ->
      let a = Dsdg_obs.Obs.now_ns () in
      ignore (insert d);
      lat.(i) <- Dsdg_obs.Obs.now_ns () - a)
    docs;
  let total = Dsdg_obs.Obs.now_ns () - t0 in
  Array.sort compare lat;
  (lat, total)

let wal_overhead docs =
  let raw_bytes = Array.fold_left (fun a d -> a + String.length d) 0 docs in
  let run_plain () =
    let idx = Dynamic_index.create () in
    let r = timed_inserts (Dynamic_index.insert idx) docs in
    Dynamic_index.close idx;
    r
  in
  let run_store sync =
    with_tmp_dir (fun dir ->
        let config = { Store.Durable.default_config with Store.Durable.sync } in
        let d, _ = Store.Durable.open_ ~config ~dir () in
        let r = timed_inserts (Store.Durable.insert d) docs in
        Store.Durable.close d;
        r)
  in
  let modes =
    [ ("none", None); ("never", Some Store.Wal.Never); ("every-64", Some (Store.Wal.Every 64));
      ("always", Some Store.Wal.Always) ]
  in
  let rows =
    List.map
      (fun (name, sync) ->
        let lat, total = match sync with None -> run_plain () | Some s -> run_store s in
        let mean = float_of_int total /. float_of_int n_docs in
        let p99 = percentile lat 0.99 in
        Bench_util.emit_json_row ~bench:"store/wal-append"
          [ ("sync", Bench_util.S name);
            ("docs", Bench_util.I n_docs);
            ("raw_bytes", Bench_util.I raw_bytes);
            ("mean_ns", Bench_util.F mean);
            ("p99_ns", Bench_util.I p99);
            ("total_ms", Bench_util.F (float_of_int total /. 1e6)) ];
        [ name; Bench_util.ns_str mean; Bench_util.ns_str (float_of_int p99);
          Printf.sprintf "%.1f ms" (float_of_int total /. 1e6) ])
      modes
  in
  Bench_util.print_table
    ~title:(Printf.sprintf "Store: per-insert cost by WAL policy (%d docs, %d KiB)" n_docs
              (raw_bytes / 1024))
    ~header:[ "sync"; "mean/insert"; "p99"; "total" ]
    rows

let snapshot_economics docs =
  let raw_bytes = Array.fold_left (fun a d -> a + String.length d) 0 docs in
  with_tmp_dir (fun dir ->
      let config = { Store.Durable.default_config with Store.Durable.sync = Store.Wal.Never } in
      let d, _ = Store.Durable.open_ ~config ~dir () in
      Array.iter (fun doc -> ignore (Store.Durable.insert d doc)) docs;
      let _, save_ns = Bench_util.time_ns (fun () -> Store.Durable.checkpoint d) in
      Store.Durable.close d;
      let snap_bytes =
        match Store.Snapshot.list ~dir with
        | (path, _) :: _ -> (Unix.stat path).Unix.st_size
        | [] -> 0
      in
      let (d2, info), load_ns = Bench_util.time_ns (fun () -> Store.Durable.open_ ~config ~dir ()) in
      assert (info.Store.Recovery.ri_replayed = 0);
      let symbols = Dynamic_index.total_symbols (Store.Durable.index d2) in
      Store.Durable.close d2;
      let ratio = float_of_int snap_bytes /. float_of_int raw_bytes in
      Bench_util.emit_json_row ~bench:"store/snapshot"
        [ ("docs", Bench_util.I n_docs);
          ("raw_bytes", Bench_util.I raw_bytes);
          ("snapshot_bytes", Bench_util.I snap_bytes);
          ("bytes_ratio", Bench_util.F ratio);
          ("total_symbols", Bench_util.I symbols);
          ("save_ms", Bench_util.F (save_ns /. 1e6));
          ("load_ms", Bench_util.F (load_ns /. 1e6)) ];
      Bench_util.print_table ~title:"Store: snapshot size and cold open"
        ~header:[ "raw text"; "snapshot"; "ratio"; "save"; "load (0 replay)" ]
        [ [ Printf.sprintf "%d B" raw_bytes; Printf.sprintf "%d B" snap_bytes;
            Printf.sprintf "%.2fx" ratio; Bench_util.ns_str save_ns; Bench_util.ns_str load_ns ] ])

let recovery_throughput docs =
  with_tmp_dir (fun dir ->
      let config = { Store.Durable.default_config with Store.Durable.sync = Store.Wal.Never } in
      let d, _ = Store.Durable.open_ ~config ~dir () in
      Array.iter (fun doc -> ignore (Store.Durable.insert d doc)) docs;
      (* crash: no checkpoint ever ran, so recovery must replay the
         whole stream, and the final record is torn *)
      Store.Durable.kill d ~torn:true;
      let (d2, info), rec_ns = Bench_util.time_ns (fun () -> Store.Durable.open_ ~config ~dir ()) in
      let replayed = info.Store.Recovery.ri_replayed in
      let truncated = info.Store.Recovery.ri_truncated in
      Store.Durable.close d2;
      let ops_per_s = float_of_int replayed /. (rec_ns /. 1e9) in
      Bench_util.emit_json_row ~bench:"store/recovery"
        [ ("docs", Bench_util.I n_docs);
          ("replayed", Bench_util.I replayed);
          ("torn_truncated", Bench_util.I (if truncated then 1 else 0));
          ("recover_ms", Bench_util.F (rec_ns /. 1e6));
          ("replay_ops_per_s", Bench_util.F ops_per_s) ];
      Bench_util.print_table ~title:"Store: crash recovery, WAL-only (torn final record)"
        ~header:[ "replayed"; "torn dropped"; "recover"; "replay ops/s" ]
        [ [ string_of_int replayed; (if truncated then "yes" else "NO");
            Bench_util.ns_str rec_ns; Printf.sprintf "%.0f" ops_per_s ] ])

let run () =
  let open Dsdg_workload in
  let st = Text_gen.rng 31 in
  let docs = Text_gen.corpus st ~count:n_docs ~avg_len ~kind:(`Markov (8, 0.6)) in
  wal_overhead docs;
  snapshot_economics docs;
  recovery_throughput docs
