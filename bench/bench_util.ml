(* Shared benchmark plumbing: a thin wrapper over Bechamel for per-op
   micro-benchmarks, a monotonic stopwatch for macro sweeps, and aligned
   table printing. *)

open Bechamel

(* --- machine-readable results --- *)

(* One JSON object per line, appended to $DSDG_BENCH_JSON (default
   BENCH_RESULTS.json in the working directory).  When [scope] is given,
   its full Obs snapshot -- jobs_started/completed, forced, max_job_step,
   purge_dead_permille percentiles, latency histograms -- is merged into
   the row, so every bench run carries the observability counters that
   back the paper's scheduling claims. *)
let json_path () =
  match Sys.getenv_opt "DSDG_BENCH_JSON" with Some p -> p | None -> "BENCH_RESULTS.json"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type json_field = S of string | I of int | F of float

let emit_json_row ?scope ~bench (fields : (string * json_field) list) =
  let fields =
    match scope with
    | None -> fields
    | Some sc ->
      fields
      @ List.map (fun (k, v) -> (Dsdg_obs.Obs.scope_name sc ^ "." ^ k, I v))
          (Dsdg_obs.Obs.snapshot sc)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "{\"bench\":\"%s\"" (json_escape bench));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":" (json_escape k));
      Buffer.add_string buf
        (match v with
        | S s -> Printf.sprintf "\"%s\"" (json_escape s)
        | I i -> string_of_int i
        | F f -> if Float.is_nan f then "null" else Printf.sprintf "%.3f" f))
    fields;
  Buffer.add_string buf "}\n";
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (json_path ()) in
  output_string oc (Buffer.contents buf);
  close_out oc


(* ns/run estimates for a list of Bechamel tests. *)
let run_tests ?(quota = 0.5) (tests : Test.t list) : (string * float) list =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let b = Benchmark.run cfg [ instance ] elt in
          let r = Analyze.one ols instance b in
          let ns = match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan in
          emit_json_row ~bench:(Test.Elt.name elt) [ ("ns_per_op", F ns) ];
          (Test.Elt.name elt, ns))
        (Test.elements test))
    tests

(* Monotonic stopwatch in nanoseconds. *)
let now_ns () = Monotonic_clock.now ()

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0))

(* Time [f] and return ns per iteration over [iters] runs. *)
let per_op ~iters f =
  let t0 = now_ns () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = now_ns () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int iters

(* --- table printing --- *)

let hr width = String.make width '-'

let print_table ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    rows;
  let total = Array.fold_left ( + ) (3 * (ncols - 1)) widths in
  Printf.printf "\n== %s ==\n%s\n" title (hr (max total (String.length title + 6)));
  let print_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then print_string " | ";
        Printf.printf "%-*s" widths.(i) cell)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.mapi (fun i _ -> hr widths.(i)) header);
  List.iter print_row rows;
  print_newline ();
  flush stdout

let ns_str ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let bits_per_sym bits syms =
  if syms = 0 then "n/a" else Printf.sprintf "%.2f" (float_of_int bits /. float_of_int syms)
