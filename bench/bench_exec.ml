(* Executor benchmark: per-insert latency of the worst-case variant over
   a ~1M-symbol mixed workload, Sync (jobs = 0) vs pooled (jobs = 2).

   The workload interleaves each insert with a handful of count queries
   -- the regime Transformation 2's background construction is for: a
   collection that is queried while it grows.  In Sync mode every insert
   must also step the pending rebuild jobs (work_factor * |T| budget
   each), so inserts issued while jobs are active carry multi-ms
   construction slices and dominate p99.  Pooled inserts only pay
   submission, polling and a bounded processor donation; the bulk of the
   construction runs on worker domains during the query time between
   updates.  We record exact per-insert wall times -- no sampling -- and
   report p50/p99/max plus end-to-end throughput. *)

open Dsdg_core

let n_docs = 5000
let doc_len = 200 (* n_docs * (doc_len + separator) ~ 1M symbols *)
let queries_per_insert = 4

let make_docs () =
  let st = Random.State.make [| 0xbe5c; 42 |] in
  Array.init n_docs (fun _ -> String.init doc_len (fun _ -> Char.chr (97 + Random.State.int st 4)))

(* Deterministic 4-char patterns over the same alphabet. *)
let make_patterns () =
  let st = Random.State.make [| 0xfaced; 7 |] in
  Array.init 64 (fun _ -> String.init 4 (fun _ -> Char.chr (97 + Random.State.int st 4)))

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* One full insert sweep; returns (sorted per-insert ns, total wall ns,
   symbols indexed). *)
let run_mode ~jobs docs =
  let idx =
    Dynamic_index.create ~variant:Dynamic_index.Worst_case ~backend:Dynamic_index.Plain_sa
      ~sample:8 ~tau:8 ~jobs ()
  in
  let patterns = make_patterns () in
  let lat = Array.make (Array.length docs) 0 in
  let sink = ref 0 in
  let t0 = Dsdg_obs.Obs.now_ns () in
  Array.iteri
    (fun i d ->
      let a = Dsdg_obs.Obs.now_ns () in
      ignore (Dynamic_index.insert idx d);
      lat.(i) <- Dsdg_obs.Obs.now_ns () - a;
      for q = 0 to queries_per_insert - 1 do
        sink := !sink + Dynamic_index.count idx patterns.(((i * queries_per_insert) + q) mod 64)
      done)
    docs;
  ignore !sink;
  (* outstanding background work lands before the clock stops, so the
     two modes account for the same total construction *)
  Dynamic_index.drain idx;
  let total = Dsdg_obs.Obs.now_ns () - t0 in
  let symbols = Dynamic_index.total_symbols idx in
  let scope = Dynamic_index.obs_scope idx in
  Dynamic_index.close idx;
  if Sys.getenv_opt "DSDG_EXEC_PROBE" <> None then begin
    let indexed = Array.mapi (fun i ns -> (ns, i)) lat in
    Array.sort (fun a b -> compare b a) indexed;
    Printf.printf "  [probe jobs=%d] slowest inserts (ns, index):\n" jobs;
    Array.iteri (fun k (ns, i) -> if k < 40 then Printf.printf "    %9d @%d\n" ns i) indexed
  end;
  Array.sort compare lat;
  (lat, total, symbols, scope)

(* Minor heap for this experiment (words).  Under the 256k-word default,
   construction allocates so fast that stop-the-world minor collections
   fire every few updates and dominate the p99 of both modes, burying
   the scheduling effect this benchmark measures.  Both modes run under
   the identical enlarged setting; it is recorded in the JSON row. *)
let minor_heap_words = 2 * 1024 * 1024

let run () =
  Gc.set { (Gc.get ()) with minor_heap_size = minor_heap_words };
  let docs = make_docs () in
  let modes = [ ("sync", 0); ("pooled", 2) ] in
  let results =
    List.map
      (fun (name, jobs) ->
        let lat, total, symbols, scope = run_mode ~jobs docs in
        let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
        let mx = lat.(Array.length lat - 1) in
        Bench_util.emit_json_row ~scope ~bench:"exec/insert-latency"
          [ ("mode", Bench_util.S name);
            ("jobs", Bench_util.I jobs);
            ("docs", Bench_util.I n_docs);
            ("minor_heap_words", Bench_util.I minor_heap_words);
            ("total_symbols", Bench_util.I symbols);
            ("p50_ns", Bench_util.I p50);
            ("p99_ns", Bench_util.I p99);
            ("max_ns", Bench_util.I mx);
            ("total_ms", Bench_util.F (float_of_int total /. 1e6)) ];
        (name, jobs, p50, p99, mx, total))
      modes
  in
  Bench_util.print_table ~title:"Executor: per-insert latency, 1M-symbol stream (worst-case/sa)"
    ~header:[ "mode"; "jobs"; "p50"; "p99"; "max"; "total" ]
    (List.map
       (fun (name, jobs, p50, p99, mx, total) ->
         [ name; string_of_int jobs; Bench_util.ns_str (float_of_int p50);
           Bench_util.ns_str (float_of_int p99); Bench_util.ns_str (float_of_int mx);
           Printf.sprintf "%.1f ms" (float_of_int total /. 1e6) ])
       results);
  match results with
  | [ (_, _, _, sync_p99, _, _); (_, _, _, pooled_p99, _, _) ] ->
    Printf.printf "  p99 insert latency: pooled %s vs sync %s -- %s\n"
      (Bench_util.ns_str (float_of_int pooled_p99))
      (Bench_util.ns_str (float_of_int sync_p99))
      (if pooled_p99 < sync_p99 then "pooled wins" else "POOLED DID NOT WIN")
  | _ -> ()
