(* Reader-pool benchmark: aggregate query throughput of K reader domains
   served from the epoch-published read plane, while a single writer
   keeps applying a mixed insert/delete stream.

   Each reader domain loops fetching the latest published view (one
   Atomic.get) and running a count query against it -- the wait-free
   path the read-plane split exists for.  The writer runs on the main
   domain, interleaving its own occasional queries through
   [Dynamic_index.query], which routes them over the index's reader
   pool when K >= 1, so the Executor-backed pool path is exercised
   under the same load.  We report aggregate reader queries/sec per K,
   the writer's per-update p50/p99 (updates must not degrade when
   readers are added -- they never touch the write plane), and the
   final epoch (= number of successful updates, a determinism check).

   On a single-core host the K > 1 rows cannot show real speedup --
   the domains time-share one processor -- but the harness is the same
   one a multi-core host runs, and the JSON rows record nproc so
   downstream plotting can annotate that. *)

open Dsdg_core

let preload = 3000
let doc_len = 200 (* ~600k preloaded symbols, ~740k live at the end *)
let updates = 800
let writer_queries_per_update = 2
let reader_counts = [ 0; 1; 2; 4; 8 ]

let make_docs n seed =
  let st = Random.State.make [| 0x5eed; seed |] in
  Array.init n (fun _ -> String.init doc_len (fun _ -> Char.chr (97 + Random.State.int st 4)))

let make_patterns () =
  let st = Random.State.make [| 0xfaced; 7 |] in
  Array.init 64 (fun _ -> String.init 4 (fun _ -> Char.chr (97 + Random.State.int st 4)))

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* One reader domain: hammer the latest view until [stop]; returns the
   query count and whether the observed epochs were monotone. *)
let reader_loop idx patterns stop () =
  let queries = ref 0 and last_epoch = ref (-1) and monotone = ref true in
  let sink = ref 0 in
  while not (Atomic.get stop) do
    let v = Dynamic_index.view idx in
    let e = Dynamic_index.view_epoch v in
    if e < !last_epoch then monotone := false;
    last_epoch := e;
    sink := !sink + Dynamic_index.view_count v patterns.(!queries mod 64);
    incr queries
  done;
  ignore !sink;
  (!queries, !monotone)

(* One full run at pool size K: preload, spawn K readers, drive the
   mixed update stream, join.  Returns (qps, update latencies sorted,
   total reader queries, final epoch, scope). *)
let run_mode ~k docs upd_docs =
  let idx =
    Dynamic_index.create ~variant:Dynamic_index.Worst_case ~backend:Dynamic_index.Plain_sa
      ~sample:8 ~tau:8 ~jobs:0 ~readers:k ()
  in
  let patterns = make_patterns () in
  Array.iter (fun d -> ignore (Dynamic_index.insert idx d)) docs;
  let ids = Array.make (preload + updates) 0 in
  let n_live = ref 0 in
  (* preload ids are 1..preload in insertion order *)
  for i = 1 to preload do
    ids.(!n_live) <- i;
    incr n_live
  done;
  let stop = Atomic.make false in
  let readers = List.init k (fun _ -> Domain.spawn (reader_loop idx patterns stop)) in
  let st = Random.State.make [| 0xdead; k |] in
  let lat = Array.make updates 0 in
  let sink = ref 0 in
  let t0 = Dsdg_obs.Obs.now_ns () in
  for i = 0 to updates - 1 do
    let a = Dsdg_obs.Obs.now_ns () in
    if i mod 4 = 3 && !n_live > 0 then begin
      let j = Random.State.int st !n_live in
      let id = ids.(j) in
      ids.(j) <- ids.(!n_live - 1);
      decr n_live;
      ignore (Dynamic_index.delete idx id)
    end
    else begin
      let id = Dynamic_index.insert idx upd_docs.(i) in
      ids.(!n_live) <- id;
      incr n_live
    end;
    lat.(i) <- Dsdg_obs.Obs.now_ns () - a;
    (* the writer's own queries ride the reader pool when K >= 1 *)
    for q = 0 to writer_queries_per_update - 1 do
      sink :=
        !sink
        + Dynamic_index.query idx (fun v ->
              Dynamic_index.view_count v patterns.(((i * writer_queries_per_update) + q) mod 64))
    done
  done;
  ignore !sink;
  let wall = Dsdg_obs.Obs.now_ns () - t0 in
  Atomic.set stop true;
  let joined = List.map Domain.join readers in
  let queries = List.fold_left (fun acc (q, _) -> acc + q) 0 joined in
  List.iteri
    (fun i (_, monotone) ->
      if not monotone then Printf.printf "  READER %d SAW A NON-MONOTONE EPOCH (bug)\n" i)
    joined;
  let epoch = Dynamic_index.view_epoch (Dynamic_index.view idx) in
  let scope = Dynamic_index.obs_scope idx in
  Dynamic_index.close idx;
  Array.sort compare lat;
  let qps = float_of_int queries /. (float_of_int wall /. 1e9) in
  (qps, lat, queries, epoch, wall, scope)

(* Same minor-heap setting (and rationale) as bench_exec. *)
let minor_heap_words = 2 * 1024 * 1024

let run () =
  Gc.set { (Gc.get ()) with minor_heap_size = minor_heap_words };
  let docs = make_docs preload 42 in
  let upd_docs = make_docs updates 43 in
  let nproc = Domain.recommended_domain_count () in
  let results =
    List.map
      (fun k ->
        let qps, lat, queries, epoch, wall, scope = run_mode ~k docs upd_docs in
        let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
        Bench_util.emit_json_row ~scope ~bench:"readers/query-throughput"
          [ ("readers", Bench_util.I k);
            ("nproc", Bench_util.I nproc);
            ("preload_docs", Bench_util.I preload);
            ("updates", Bench_util.I updates);
            ("minor_heap_words", Bench_util.I minor_heap_words);
            ("reader_queries", Bench_util.I queries);
            ("qps", Bench_util.F qps);
            ("update_p50_ns", Bench_util.I p50);
            ("update_p99_ns", Bench_util.I p99);
            ("final_epoch", Bench_util.I epoch);
            ("wall_ms", Bench_util.F (float_of_int wall /. 1e6)) ];
        (k, qps, queries, p50, p99, epoch))
      reader_counts
  in
  let base_qps =
    match List.find_opt (fun (k, _, _, _, _, _) -> k = 1) results with
    | Some (_, q, _, _, _, _) when q > 0. -> q
    | _ -> 0.
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf "Read plane: reader-domain query throughput, mixed stream (nproc=%d)" nproc)
    ~header:[ "readers"; "queries"; "qps"; "vs 1"; "upd p50"; "upd p99"; "epoch" ]
    (List.map
       (fun (k, qps, queries, p50, p99, epoch) ->
         [ string_of_int k;
           string_of_int queries;
           (if k = 0 then "-" else Printf.sprintf "%.0f" qps);
           (if k <= 1 || base_qps = 0. then "-" else Printf.sprintf "%.2fx" (qps /. base_qps));
           Bench_util.ns_str (float_of_int p50);
           Bench_util.ns_str (float_of_int p99);
           string_of_int epoch ])
       results);
  if nproc <= 1 then
    Printf.printf
      "  single processor: reader rows time-share one core, so qps cannot scale with K here\n"
