(* Ablations over the design parameters DESIGN.md calls out, plus the
   Lemma 2/3 micro-benchmark. *)

open Dsdg_core
open Dsdg_bits
open Dsdg_delbits
open Dsdg_workload

module T1 = Transform1.Make (Fm_static)
module T2 = Transform2.Make (Fm_static)

(* A1: lazy-deletion threshold tau: space overhead vs purge work. *)
let ablation_tau () =
  let mk_stream seed =
    let st = Text_gen.rng seed in
    List.init 1500 (fun _ -> Text_gen.english_like st ~len:(30 + Random.State.int st 60))
  in
  Printf.printf "\n[ablation tau] higher tau = less dead space tolerated = more rebuild work\n";
  let rows =
    List.map
      (fun tau ->
        let t = T1.create ~sample:8 ~tau () in
        let docs = mk_stream 91 in
        let ids = List.map (T1.insert t) docs in
        (* delete 40% *)
        List.iteri (fun i id -> if i mod 5 < 2 then ignore (T1.delete t id)) ids;
        let s = T1.stats t in
        let q = Bench_util.per_op ~iters:30 (fun () -> T1.count t "data") in
        [ string_of_int tau; string_of_int s.Transform1.purges;
          string_of_int s.Transform1.symbols_rebuilt;
          Bench_util.bits_per_sym (T1.space_bits t) (T1.total_symbols t);
          Bench_util.ns_str q ])
      [ 2; 4; 8; 16; 32 ]
  in
  Bench_util.print_table
    ~title:"Ablation A1: tau sweep (40% of documents deleted)"
    ~header:[ "tau"; "purges"; "symbols rebuilt"; "bits/sym"; "count query" ]
    rows

(* A2: suffix-array sample rate: the classic space/locate-time curve,
   at the level of the full dynamic index. *)
let ablation_s () =
  let st = Text_gen.rng 93 in
  let docs = Text_gen.corpus st ~count:200 ~avg_len:400 ~kind:(`Markov (8, 0.6)) in
  let pat = Option.get (Text_gen.planted_pattern st docs ~len:3) in
  Printf.printf "\n[ablation s] sample-rate trade-off through the dynamic index\n";
  let rows =
    List.map
      (fun sample ->
        let t = T2.create ~sample ~tau:8 () in
        Array.iter (fun d -> ignore (T2.insert t d)) docs;
        let occ = T2.count t pat in
        let report_ns =
          Bench_util.per_op ~iters:10 (fun () ->
              let c = ref 0 in
              T2.search t pat ~f:(fun ~doc:_ ~off:_ -> incr c);
              !c)
        in
        [ string_of_int sample;
          Bench_util.ns_str (if occ = 0 then nan else report_ns /. float_of_int occ);
          Bench_util.bits_per_sym (T2.space_bits t) (T2.total_symbols t) ])
      [ 1; 4; 16; 64 ]
  in
  Bench_util.print_table ~title:"Ablation A2: locate cost rises with s while space falls"
    ~header:[ "s"; "report/occ"; "bits/sym" ] rows

(* A3: Transformation 1 vs Transformation 3 (doubling schedule,
   O(log log n) sub-collections): cheaper merges, more structures to
   query. *)
let ablation_t3 () =
  Printf.printf "\n[ablation t3] geometric (T1) vs doubling (T3 / Appendix A.4) schedules\n";
  let rows =
    List.map
      (fun (name, schedule) ->
        let st = Text_gen.rng 95 in
        let t = T1.create ~schedule ~sample:8 ~tau:8 () in
        let _, ins_ns =
          Bench_util.time_ns (fun () ->
              for _ = 1 to 3000 do
                ignore (T1.insert t (Text_gen.english_like st ~len:(20 + Random.State.int st 60)))
              done)
        in
        let s = T1.stats t in
        let q = Bench_util.per_op ~iters:30 (fun () -> T1.count t "index") in
        Bench_util.emit_json_row ~bench:"ablation_t3"
          [ ("schedule", Bench_util.S name);
            ("insert_ns_per_sym", Bench_util.F (ins_ns /. float_of_int (T1.total_symbols t)));
            ("merges", Bench_util.I s.Transform1.merges);
            ("collections", Bench_util.I (List.length (T1.census t)));
            ("symbols_rebuilt", Bench_util.I s.Transform1.symbols_rebuilt);
            ("count_ns", Bench_util.F q) ];
        [ name; Bench_util.ns_str (ins_ns /. float_of_int (T1.total_symbols t));
          string_of_int s.Transform1.merges; string_of_int (List.length (T1.census t));
          string_of_int s.Transform1.symbols_rebuilt; Bench_util.ns_str q ])
      [ ("geometric (Transformation 1)", Transform1.geometric ());
        ("doubling (Transformation 3)", Transform1.doubling ()) ]
  in
  Bench_util.print_table
    ~title:"Ablation A3: schedule comparison  [expect T3 fewer rebuilt symbols, more sub-collections]"
    ~header:[ "schedule"; "insert/sym"; "merges"; "#collections"; "symbols rebuilt"; "count query" ]
    rows

(* A4: Transformation 2's background work budget (the O(log^eps n u(n))
   per-symbol constant).  Too small a budget forces synchronous
   completions (latency spikes); enough budget makes the worst-case
   guarantee real.  The paper's scheduling lemma corresponds to the
   regime where forced completions vanish. *)
let ablation_work_factor () =
  Printf.printf "\n[ablation work_factor] background budget vs forced synchronous completions\n";
  let rows =
    List.map
      (fun wf ->
        let st = Text_gen.rng 97 in
        let t = T2.create ~sample:8 ~tau:8 ~work_factor:wf () in
        let live = ref [] and nlive = ref 0 in
        for _ = 1 to 2500 do
          if Random.State.float st 1.0 < 0.7 || !nlive = 0 then begin
            live := T2.insert t (Text_gen.english_like st ~len:(20 + Random.State.int st 80)) :: !live;
            incr nlive
          end
          else begin
            let k = Random.State.int st !nlive in
            let id = List.nth !live k in
            ignore (T2.delete t id);
            live := List.filter (fun x -> x <> id) !live;
            decr nlive
          end
        done;
        let s = T2.stats t in
        Bench_util.emit_json_row ~scope:(T2.obs t) ~bench:"ablation_work_factor"
          [ ("work_factor", Bench_util.I wf) ];
        let jobs = max 1 s.Transform2.jobs_started in
        [ string_of_int wf; string_of_int s.Transform2.jobs_started;
          string_of_int s.Transform2.forced;
          Printf.sprintf "%.0f%%" (100. *. float_of_int s.Transform2.forced /. float_of_int jobs);
          string_of_int s.Transform2.max_job_step ])
      [ 1; 4; 16; 64; 256 ]
  in
  Bench_util.print_table
    ~title:"Ablation A4: work_factor sweep  [expect forced%% -> 0 as the budget grows]"
    ~header:[ "work_factor"; "jobs"; "forced"; "forced %"; "max ticks/update" ]
    rows

(* Lemma 2/3: reporting 1-bits in a range in O(k) vs scanning. *)
let lemma23 () =
  let n = 1_000_000 in
  Printf.printf "\n[lemma23] Reporter over %d bits\n" n;
  let rows =
    List.map
      (fun survivors ->
        let r = Reporter.create_full n in
        let bv = Bitvec.create_full n in
        let st = Random.State.make [| survivors |] in
        (* knock out all but ~survivors bits *)
        let keep = Hashtbl.create survivors in
        for _ = 1 to survivors do
          Hashtbl.replace keep (Random.State.int st n) ()
        done;
        for i = 0 to n - 1 do
          if not (Hashtbl.mem keep i) then begin
            Reporter.zero r i;
            Bitvec.clear bv i
          end
        done;
        let k = ref 0 in
        let rep_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              k := 0;
              Reporter.report r 0 n (fun _ -> incr k))
        in
        let scan_ns =
          Bench_util.per_op ~iters:5 (fun () ->
              k := 0;
              for i = 0 to n - 1 do
                if Bitvec.unsafe_get bv i then incr k
              done)
        in
        [ string_of_int !k; Bench_util.ns_str rep_ns;
          Bench_util.ns_str (rep_ns /. float_of_int (max 1 !k)); Bench_util.ns_str scan_ns ])
      [ 100; 1000; 10000 ]
  in
  Bench_util.print_table
    ~title:"Lemma 2/3: report(0,n) cost is O(k), independent of n; naive scan is O(n)"
    ~header:[ "k survivors"; "report all"; "per survivor"; "naive scan" ]
    rows;
  (* zero() cost *)
  let r = Reporter.create_full n in
  let i = ref 0 in
  let zero_ns = Bench_util.per_op ~iters:100000 (fun () -> Reporter.zero r !i; i := (!i + 7919) mod n) in
  Printf.printf "zero(): %s per call\n" (Bench_util.ns_str zero_ns)

(* A5: cost of the observability layer itself.  The same churn workload
   with Obs recording on vs off; the acceptance bar is < 5% overhead
   when disabled (every probe then is one load-and-branch). *)
let ablation_obs_overhead () =
  Printf.printf "\n[ablation obs] observability layer overhead on a churn workload\n";
  let churn () =
    let st = Text_gen.rng 131 in
    let t = T2.create ~sample:8 ~tau:8 () in
    let live = ref [] and nlive = ref 0 in
    for _ = 1 to 1500 do
      if Random.State.float st 1.0 < 0.7 || !nlive = 0 then begin
        live := T2.insert t (Text_gen.english_like st ~len:(20 + Random.State.int st 80)) :: !live;
        incr nlive
      end
      else begin
        let id = List.hd !live in
        ignore (T2.delete t id);
        live := List.tl !live;
        decr nlive
      end
    done
  in
  let open Dsdg_obs in
  let was = !Obs.enabled in
  (* warm up allocators and caches once before timing either mode *)
  churn ();
  Obs.set_enabled true;
  let _, on_ns = Bench_util.time_ns churn in
  let _, on_ns2 = Bench_util.time_ns churn in
  let on_ns = min on_ns on_ns2 in
  Obs.set_enabled false;
  let _, off_ns = Bench_util.time_ns churn in
  let _, off_ns2 = Bench_util.time_ns churn in
  let off_ns = min off_ns off_ns2 in
  Obs.set_enabled was;
  let overhead = 100. *. (on_ns -. off_ns) /. off_ns in
  Bench_util.print_table ~title:"Ablation A5: Obs enabled vs disabled  [expect < 5% when disabled]"
    ~header:[ "mode"; "churn time"; "overhead" ]
    [
      [ "disabled"; Bench_util.ns_str off_ns; "baseline" ];
      [ "enabled"; Bench_util.ns_str on_ns; Printf.sprintf "%+.1f%%" overhead ];
    ];
  Bench_util.emit_json_row ~bench:"ablation_obs_overhead"
    [ ("enabled_ns", Bench_util.F on_ns); ("disabled_ns", Bench_util.F off_ns);
      ("overhead_pct", Bench_util.F overhead) ]
