(* Theorem 2 / Theorem 3: dynamic binary relations and graphs.

   Baseline: the Navarro-Nekrich [35] approach -- S and N maintained in
   *dynamic* rank/select structures, paying the Fredman-Saks O(log n)
   per elementary operation.  Ours keeps S in static H0-compressed
   structures under the transformation framework.

   Shape to reproduce: ours answers membership / listing / counting
   queries several times faster at comparable space; baseline updates are
   single-symbol edits while ours amortize rebuilds. *)

open Dsdg_binrel
open Dsdg_dynseq
open Dsdg_workload

(* [35]-style baseline over a fixed object universe [0, objects). *)
module Baseline_rel = struct
  type t = {
    s : Dyn_wavelet.t; (* labels in object order *)
    n : Dyn_bitvec.t; (* 1^{deg 0} 0 1^{deg 1} 0 ... *)
    objects : int;
  }

  let create ~objects ~labels =
    let n = Dyn_bitvec.create () in
    for _ = 1 to objects do
      Dyn_bitvec.push_back n false
    done;
    { s = Dyn_wavelet.create ~sigma:labels (); n; objects }

  let seg t o =
    let l = if o = 0 then 0 else Dyn_bitvec.rank1 t.n (Dyn_bitvec.select0 t.n (o - 1)) in
    let r = Dyn_bitvec.rank1 t.n (Dyn_bitvec.select0 t.n o) in
    (l, r)

  let related t o a =
    let l, r = seg t o in
    Dyn_wavelet.rank t.s a r - Dyn_wavelet.rank t.s a l > 0

  let add t o a =
    if related t o a then false
    else begin
      let _, r = seg t o in
      Dyn_wavelet.insert t.s r a;
      Dyn_bitvec.insert t.n (Dyn_bitvec.select0 t.n o) true;
      true
    end

  let remove t o a =
    let l, r = seg t o in
    let before = Dyn_wavelet.rank t.s a l in
    if Dyn_wavelet.rank t.s a r - before = 0 then false
    else begin
      let j = Dyn_wavelet.select t.s a before in
      Dyn_wavelet.delete t.s j;
      Dyn_bitvec.delete t.n (Dyn_bitvec.select0 t.n o - 1);
      true
    end

  let labels_of_object t o ~f =
    let l, r = seg t o in
    for j = l to r - 1 do
      f (Dyn_wavelet.access t.s j)
    done

  let objects_of_label t a ~f =
    let total = Dyn_wavelet.count t.s a in
    for k = 0 to total - 1 do
      let pos = Dyn_wavelet.select t.s a k in
      f (Dyn_bitvec.rank0 t.n (Dyn_bitvec.select1 t.n pos))
    done

  let count_labels_of_object t o =
    let l, r = seg t o in
    r - l

  let count_objects_of_label t a = Dyn_wavelet.count t.s a
  let space_bits t = Dyn_wavelet.space_bits t.s + Dyn_bitvec.space_bits t.n
end

(* --- backend x scale matrix over web-crawl streams ---

   The Section 5 graph workload: a crawl-ordered edge stream with
   Zipf-skewed targets ({!Graph_gen.web_crawl}) ingested into both
   relation backends behind the {!Rel_backend} seam.  Full mode runs
   str and k2 at 10^6 edges (the space acceptance point: k2 must come
   in strictly below str in bits/edge) and pushes k2 alone to 10^7;
   DSDG_BENCH_QUICK=1 shrinks everything to CI size.  Every row also
   lands in the BENCH JSON stream. *)

let quick () = Sys.getenv_opt "DSDG_BENCH_QUICK" <> None
let backend_name = function Rel_backend.Str -> "str" | Rel_backend.K2 -> "k2"

(* Breadth-first traversal from [src], capped at [cap] node visits so
   a full-mode k2 run stays minutes, not hours; returns visits made. *)
let bfs_bounded g ~src ~cap =
  let seen = Hashtbl.create 4096 in
  let q = Queue.create () in
  Hashtbl.replace seen src ();
  Queue.push src q;
  let visits = ref 0 in
  while (not (Queue.is_empty q)) && !visits < cap do
    let u = Queue.pop q in
    incr visits;
    Digraph.iter_successors g u ~f:(fun v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          Queue.push v q
        end)
  done;
  !visits

(* One matrix cell: build the crawl graph on [backend], measure insert
   and delete throughput, successor+predecessor scan rate, bounded-BFS
   rate, and bits/edge; returns the printed table row. *)
let crawl_cell ~backend ~nodes ~edges =
  let st = Random.State.make [| 47; edges; nodes |] in
  let stream = Graph_gen.web_crawl st ~nodes ~edges in
  let n_edges = Array.length stream in
  let g = Digraph.create ~backend () in
  let _, build_ns =
    Bench_util.time_ns (fun () ->
        Array.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) stream)
  in
  let insert_s = float_of_int n_edges /. (build_ns /. 1e9) in
  (* delete throughput: remove a stride sample, then restore it *)
  let stride = max 1 (n_edges / 2000) in
  let batch = ref [] in
  let i = ref 0 in
  while !i < n_edges do
    batch := stream.(!i) :: !batch;
    i := !i + stride
  done;
  let batch = Array.of_list !batch in
  let _, del_ns =
    Bench_util.time_ns (fun () ->
        Array.iter (fun (u, v) -> ignore (Digraph.remove_edge g u v)) batch)
  in
  Array.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) batch;
  let delete_s = float_of_int (Array.length batch) /. (del_ns /. 1e9) in
  (* degree-biased neighbor scans, both directions *)
  let sources = Graph_gen.neighbor_queries st ~edges:stream ~count:(if quick () then 50 else 200) in
  let touched = ref 0 in
  let _, scan_ns =
    Bench_util.time_ns (fun () ->
        Array.iter
          (fun u ->
            Digraph.iter_successors g u ~f:(fun _ -> incr touched);
            Digraph.iter_predecessors g u ~f:(fun _ -> incr touched))
          sources)
  in
  let scan_s = float_of_int !touched /. (scan_ns /. 1e9) in
  (* bounded BFS from connected sources *)
  let bfs_srcs = Graph_gen.bfs_sources st ~edges:stream ~count:4 in
  let cap = if quick () then 2_000 else 25_000 in
  let visits = ref 0 in
  let _, bfs_ns =
    Bench_util.time_ns (fun () ->
        Array.iter (fun s -> visits := !visits + bfs_bounded g ~src:s ~cap) bfs_srcs)
  in
  let bfs_s = float_of_int !visits /. (bfs_ns /. 1e9) in
  let bpe = float_of_int (Digraph.space_bits g) /. float_of_int (Digraph.edge_count g) in
  Bench_util.(emit_json_row ~bench:"binrel/webcrawl")
    Bench_util.
      [ ("backend", S (backend_name backend));
      ("nodes", I nodes);
      ("edges", I n_edges);
      ("insert_ops_s", F insert_s);
      ("delete_ops_s", F delete_s);
      ("scan_edges_s", F scan_s);
        ("bfs_nodes_s", F bfs_s);
        ("bits_per_edge", F bpe)
      ];
  ( bpe,
    [ backend_name backend;
      string_of_int nodes;
      string_of_int n_edges;
      Printf.sprintf "%.0f" insert_s;
      Printf.sprintf "%.0f" delete_s;
      Printf.sprintf "%.0f" scan_s;
      Printf.sprintf "%.0f" bfs_s;
      Printf.sprintf "%.1f" bpe ] )

let run_crawl_matrix () =
  let cells =
    if quick () then [ (Rel_backend.Str, 4_000, 20_000); (Rel_backend.K2, 4_000, 20_000) ]
    else
      [ (Rel_backend.Str, 100_000, 1_000_000);
        (Rel_backend.K2, 100_000, 1_000_000);
        (Rel_backend.K2, 1_000_000, 10_000_000) ]
  in
  let rows = List.map (fun (b, n, e) -> crawl_cell ~backend:b ~nodes:n ~edges:e) cells in
  Bench_util.print_table
    ~title:
      "Web-crawl matrix: backend x scale [expect k2 bits/edge < str bits/edge at the shared scale]"
    ~header:[ "backend"; "nodes"; "edges"; "ins/s"; "del/s"; "scan e/s"; "bfs n/s"; "bits/edge" ]
    (List.map snd rows);
  match rows with
  | (str_bpe, _) :: (k2_bpe, _) :: _ ->
    Printf.printf "space at shared scale: str %.1f bits/edge, k2 %.1f bits/edge (%s)\n" str_bpe
      k2_bpe
      (if k2_bpe < str_bpe then "k2 smaller, as required" else "ACCEPTANCE FAILED: k2 not smaller")
  | _ -> ()

let run () =
  let st = Random.State.make [| 3; 14 |] in
  let objects = 2000 and labels = 200 and pairs = 30000 in
  Printf.printf "\n[binrel] relation: %d objects x %d labels, ~%d pairs\n" objects labels pairs;
  let edges =
    Array.init pairs (fun _ -> (Random.State.int st objects, Random.State.int st labels))
  in
  let ours = Dyn_binrel.create ~tau:8 () in
  let base = Baseline_rel.create ~objects ~labels in
  let _, ours_ins = Bench_util.time_ns (fun () -> Array.iter (fun (o, a) -> ignore (Dyn_binrel.add ours o a)) edges) in
  let _, base_ins = Bench_util.time_ns (fun () -> Array.iter (fun (o, a) -> ignore (Baseline_rel.add base o a)) edges) in
  let q_objs = Array.init 200 (fun _ -> Random.State.int st objects) in
  let q_labs = Array.init 200 (fun _ -> Random.State.int st labels) in
  let bench_pair name f_ours f_base =
    let ours_ns = Bench_util.per_op ~iters:20 f_ours /. 200. in
    let base_ns = Bench_util.per_op ~iters:20 f_base /. 200. in
    [ name; Bench_util.ns_str ours_ns; Bench_util.ns_str base_ns;
      Printf.sprintf "%.1fx" (base_ns /. ours_ns) ]
  in
  let sink = ref 0 in
  let rows =
    [
      bench_pair "related?"
        (fun () -> Array.iter (fun o -> if Dyn_binrel.related ours o 7 then incr sink) q_objs)
        (fun () -> Array.iter (fun o -> if Baseline_rel.related base o 7 then incr sink) q_objs);
      bench_pair "labels of object (list)"
        (fun () -> Array.iter (fun o -> Dyn_binrel.labels_of_object ours o ~f:(fun _ -> incr sink)) q_objs)
        (fun () -> Array.iter (fun o -> Baseline_rel.labels_of_object base o ~f:(fun _ -> incr sink)) q_objs);
      bench_pair "objects of label (list)"
        (fun () -> Array.iter (fun a -> Dyn_binrel.objects_of_label ours a ~f:(fun _ -> incr sink)) q_labs)
        (fun () -> Array.iter (fun a -> Baseline_rel.objects_of_label base a ~f:(fun _ -> incr sink)) q_labs);
      bench_pair "count labels of object"
        (fun () -> Array.iter (fun o -> sink := !sink + Dyn_binrel.count_labels_of_object ours o) q_objs)
        (fun () -> Array.iter (fun o -> sink := !sink + Baseline_rel.count_labels_of_object base o) q_objs);
      bench_pair "count objects of label"
        (fun () -> Array.iter (fun a -> sink := !sink + Dyn_binrel.count_objects_of_label ours a) q_labs)
        (fun () -> Array.iter (fun a -> sink := !sink + Baseline_rel.count_objects_of_label base a) q_labs);
    ]
  in
  Bench_util.print_table
    ~title:"Theorem 2: dynamic binary relation, ours vs dynamic-rank baseline [expect speedup > 1]"
    ~header:[ "operation"; "ours"; "baseline [35]"; "speedup" ]
    rows;
  let live = Dyn_binrel.live_pairs ours in
  Printf.printf
    "build: ours %s (%s/pair, incl. rebuild schedule), baseline %s (%s/pair)\n"
    (Bench_util.ns_str ours_ins)
    (Bench_util.ns_str (ours_ins /. float_of_int (Array.length edges)))
    (Bench_util.ns_str base_ins)
    (Bench_util.ns_str (base_ins /. float_of_int (Array.length edges)));
  Printf.printf "space: ours %s bits/pair, baseline %s bits/pair (live pairs: %d)\n"
    (Bench_util.bits_per_sym (Dyn_binrel.space_bits ours) live)
    (Bench_util.bits_per_sym (Baseline_rel.space_bits base) live)
    live;
  run_crawl_matrix ()

let run_graph () =
  let st = Random.State.make [| 2; 72 |] in
  let nodes = 3000 in
  let edges = Graph_gen.preferential st ~nodes ~out_deg:6 in
  Printf.printf "\n[graph] preferential-attachment digraph: %d nodes, %d edges\n" nodes
    (Array.length edges);
  let g = Digraph.create ~tau:8 () in
  let _, ins = Bench_util.time_ns (fun () -> Array.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges) in
  let qs = Array.init 300 (fun _ -> Random.State.int st nodes) in
  let sink = ref 0 in
  let adj_ns =
    Bench_util.per_op ~iters:20 (fun () ->
        Array.iter (fun u -> if Digraph.mem_edge g u ((u + 1) mod nodes) then incr sink) qs)
    /. 300.
  in
  let succ_ns =
    Bench_util.per_op ~iters:20 (fun () ->
        Array.iter (fun u -> Digraph.iter_successors g u ~f:(fun _ -> incr sink)) qs)
    /. 300.
  in
  let pred_ns =
    Bench_util.per_op ~iters:20 (fun () ->
        Array.iter (fun u -> Digraph.iter_predecessors g u ~f:(fun _ -> incr sink)) qs)
    /. 300.
  in
  let deg_ns =
    Bench_util.per_op ~iters:20 (fun () ->
        Array.iter (fun u -> sink := !sink + Digraph.out_degree g u + Digraph.in_degree g u) qs)
    /. 300.
  in
  (* churn: remove and re-add a batch *)
  let batch = Array.sub edges 0 (Array.length edges / 10) in
  let _, churn_ns =
    Bench_util.time_ns (fun () ->
        Array.iter (fun (u, v) -> ignore (Digraph.remove_edge g u v)) batch;
        Array.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) batch)
  in
  Bench_util.print_table
    ~title:"Theorem 3: dynamic graph operations"
    ~header:[ "operation"; "time" ]
    [
      [ "add_edge (bulk build, per edge)"; Bench_util.ns_str (ins /. float_of_int (Array.length edges)) ];
      [ "mem_edge"; Bench_util.ns_str adj_ns ];
      [ "successors (per node)"; Bench_util.ns_str succ_ns ];
      [ "predecessors (per node)"; Bench_util.ns_str pred_ns ];
      [ "degrees (out+in)"; Bench_util.ns_str deg_ns ];
      [ "churn remove+re-add (per edge)";
        Bench_util.ns_str (churn_ns /. float_of_int (2 * Array.length batch)) ];
    ];
  Printf.printf "space: %s bits/edge over %d edges\n"
    (Bench_util.bits_per_sym (Digraph.space_bits g) (Digraph.edge_count g))
    (Digraph.edge_count g)
