(* Replication-plane benchmarks.

   follow/lag: a real leader (server over a Unix socket) with a real
   WAL-tailing follower, driven at a paced write rate; reports the
   replica's serial lag (mean and max of samples taken during the
   drive) and the time the follower needs to drain to the leader's
   watermark once the writers stop -- lag vs write rate is the
   headline replication trade-off.

   follow/pinned_backup: the cost of a consistent pinned backup
   (epoch-vector pin + serialization to a fresh store directory) as
   the index grows, against the live writer it does not stop. *)

module Durable = Dsdg_store.Durable
module Server = Dsdg_serve.Server
module Client = Dsdg_serve.Client
module Follower = Dsdg_serve.Follower
module SI = Dsdg_shard.Sharded_index
module Text_gen = Dsdg_workload.Text_gen

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let rm_rf = Dsdg_store.Kill_check.reset_dir

let corpus st ~count = Text_gen.corpus st ~count ~avg_len:200 ~kind:(`Markov (8, 0.6))

(* Drive [ops] inserts through the wire at [rate] writes/s (0 =
   unthrottled), sampling follower lag after every write. *)
let lag_cell ~rate ~ops =
  let dir = tmp_dir "dsdg-bench-follow" in
  let leader_dir = Filename.concat dir "leader" in
  let replica_dir = Filename.concat dir "replica" in
  let sock = Filename.concat dir "leader.sock" in
  Unix.mkdir dir 0o755;
  let store, _ = Durable.open_ ~dir:leader_dir () in
  let srv = Server.start ~store (`Unix sock) in
  let fol = Follower.start ~leader:(`Unix sock) ~dir:replica_dir () in
  let c = Client.connect (`Unix sock) in
  let st = Text_gen.rng (4242 + rate) in
  let docs = corpus st ~count:ops in
  let period = if rate = 0 then 0. else 1. /. float_of_int rate in
  let lag_sum = ref 0 and lag_max = ref 0 and samples = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i doc ->
      ignore (Client.insert c doc);
      let l = (Follower.lag fol).Follower.lg_serials in
      lag_sum := !lag_sum + l;
      lag_max := max !lag_max l;
      incr samples;
      if period > 0. then begin
        (* pace against the wall clock, not per-op sleeps, so slow
           writes borrow from the budget instead of stacking delay *)
        let target = t0 +. (float_of_int (i + 1) *. period) in
        let now = Unix.gettimeofday () in
        if target > now then Thread.delay (target -. now)
      end)
    docs;
  let drive_s = Unix.gettimeofday () -. t0 in
  (* catch-up: how long until the replica has applied everything *)
  let t1 = Unix.gettimeofday () in
  let target = Durable.wal_serial store in
  while (Follower.watermark fol).(0) < target do
    Thread.delay 0.001
  done;
  let catchup_ms = (Unix.gettimeofday () -. t1) *. 1000. in
  let applied = (Follower.lag fol).Follower.lg_applied in
  Client.close c;
  Follower.stop fol;
  Server.stop srv;
  rm_rf dir;
  let mean_lag = if !samples = 0 then 0. else float_of_int !lag_sum /. float_of_int !samples in
  (float_of_int ops /. drive_s, mean_lag, !lag_max, catchup_ms, applied)

(* Pin + backup a K=2 sharded store of [count] documents while its
   writer keeps inserting; measure the backup wall time and size. *)
let backup_cell ~count =
  let dir = tmp_dir "dsdg-bench-pin" in
  let store_dir = Filename.concat dir "store" in
  let dest = Filename.concat dir "backup" in
  Unix.mkdir dir 0o755;
  let sh, _ = SI.open_store ~shards:2 ~dir:store_dir () in
  let st = Text_gen.rng (9 + count) in
  Array.iter (fun d -> ignore (SI.insert sh d)) (corpus st ~count);
  let symbols = SI.total_symbols sh in
  let t0 = Unix.gettimeofday () in
  let pin = SI.pin sh in
  let pin_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* the writer does not stop for the backup *)
  let writer_done = ref false in
  let writer =
    Thread.create
      (fun () ->
        let st' = Text_gen.rng (10 + count) in
        Array.iter (fun d -> if not !writer_done then ignore (SI.insert sh d))
          (corpus st' ~count:64))
      ()
  in
  let t1 = Unix.gettimeofday () in
  ignore (SI.backup sh pin ~dest);
  let backup_ms = (Unix.gettimeofday () -. t1) *. 1000. in
  writer_done := true;
  Thread.join writer;
  SI.unpin sh pin;
  let bytes =
    let rec walk p =
      if Sys.is_directory p then
        Array.fold_left (fun a e -> a + walk (Filename.concat p e)) 0 (Sys.readdir p)
      else (Unix.stat p).Unix.st_size
    in
    walk dest
  in
  SI.close sh;
  rm_rf dir;
  (symbols, pin_ms, backup_ms, bytes)

let run () =
  let rows = ref [] in
  let ops = 600 in
  List.iter
    (fun rate ->
      let achieved, mean_lag, max_lag, catchup_ms, applied = lag_cell ~rate ~ops in
      Bench_util.emit_json_row ~bench:"follow/lag"
        [ ("target_rate", Bench_util.I rate);
          ("ops", Bench_util.I ops);
          ("achieved_rate", Bench_util.F achieved);
          ("mean_lag_serials", Bench_util.F mean_lag);
          ("max_lag_serials", Bench_util.I max_lag);
          ("catchup_ms", Bench_util.F catchup_ms);
          ("replayed", Bench_util.I applied) ];
      rows :=
        [ (if rate = 0 then "max" else string_of_int rate);
          Printf.sprintf "%.0f" achieved;
          Printf.sprintf "%.1f" mean_lag;
          string_of_int max_lag;
          Printf.sprintf "%.1f" catchup_ms ]
        :: !rows)
    [ 100; 400; 0 ];
  Bench_util.print_table ~title:"follow: replica lag vs leader write rate (Unix socket, sync=always)"
    ~header:[ "rate (w/s)"; "achieved"; "mean lag"; "max lag"; "catch-up ms" ]
    (List.rev !rows);
  let rows = ref [] in
  List.iter
    (fun count ->
      let symbols, pin_ms, backup_ms, bytes = backup_cell ~count in
      Bench_util.emit_json_row ~bench:"follow/pinned_backup"
        [ ("docs", Bench_util.I count);
          ("symbols", Bench_util.I symbols);
          ("pin_ms", Bench_util.F pin_ms);
          ("backup_ms", Bench_util.F backup_ms);
          ("backup_bytes", Bench_util.I bytes) ];
      rows :=
        [ string_of_int count;
          string_of_int symbols;
          Printf.sprintf "%.2f" pin_ms;
          Printf.sprintf "%.1f" backup_ms;
          string_of_int bytes ]
        :: !rows)
    [ 100; 400; 1600 ];
  Bench_util.print_table ~title:"follow: pinned-backup cost vs index size (K=2, live writer)"
    ~header:[ "docs"; "symbols"; "pin ms"; "backup ms"; "bytes" ]
    (List.rev !rows)
