(* Service-plane throughput: qps and exact latency percentiles vs
   client count and group-commit batch size, over a Unix socket with
   --sync always (the durability setting where fsync dominates and
   group commit earns its keep). Each cell also reports the WAL fsync
   count, so the amortization is visible directly: fsyncs/write drops
   from ~1 at max_batch=1 toward 1/batch as concurrency rises. *)

module Durable = Dsdg_store.Durable
module Server = Dsdg_serve.Server
module Load_gen = Dsdg_serve.Load_gen
module Obs = Dsdg_obs.Obs

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let store_fsyncs () =
  match List.assoc_opt "wal_fsyncs" (Obs.counters (Obs.scope "store")) with
  | Some n -> n
  | None -> 0

(* write-heavy mix: group commit only amortizes the mutation path *)
let mix = { Load_gen.insert = 40; delete = 10; search = 30; count = 10; extract = 10 }

let cell ~clients ~max_batch ~ops =
  let dir = tmp_dir "dsdg-bench-serve" in
  let sock = dir ^ ".sock" in
  let store, _info =
    Durable.open_ ~config:{ Durable.default_config with sync = Dsdg_store.Wal.Always } ~dir ()
  in
  let config = { Server.default_config with max_batch } in
  let srv = Server.start ~config ~store (`Unix sock) in
  let f0 = store_fsyncs () in
  let r = Load_gen.run ~mix (`Unix sock) ~clients ~ops ~seed:(1000 + clients + max_batch) in
  let fsyncs = store_fsyncs () - f0 in
  Server.stop srv;
  Dsdg_store.Kill_check.reset_dir dir;
  (r, fsyncs)

let run () =
  let ops = 1500 in
  let rows = ref [] in
  List.iter
    (fun max_batch ->
      List.iter
        (fun clients ->
          let r, fsyncs = cell ~clients ~max_batch ~ops in
          let fsyncs_per_write =
            if r.Load_gen.writes = 0 then 0. else float_of_int fsyncs /. float_of_int r.Load_gen.writes
          in
          Bench_util.emit_json_row ~bench:"serve/group_commit"
            [
              ("clients", Bench_util.I clients);
              ("max_batch", Bench_util.I max_batch);
              ("ops", Bench_util.I r.Load_gen.ops);
              ("writes", Bench_util.I r.Load_gen.writes);
              ("errors", Bench_util.I r.Load_gen.errors);
              ("qps", Bench_util.F r.Load_gen.qps);
              ("p50_us", Bench_util.F r.Load_gen.p50_us);
              ("p99_us", Bench_util.F r.Load_gen.p99_us);
              ("p999_us", Bench_util.F r.Load_gen.p999_us);
              ("write_p99_us", Bench_util.F r.Load_gen.write_p99_us);
              ("wal_fsyncs", Bench_util.I fsyncs);
              ("fsyncs_per_write", Bench_util.F fsyncs_per_write);
            ];
          rows :=
            [
              string_of_int clients;
              string_of_int max_batch;
              Printf.sprintf "%.0f" r.Load_gen.qps;
              Printf.sprintf "%.0f" r.Load_gen.p50_us;
              Printf.sprintf "%.0f" r.Load_gen.p99_us;
              Printf.sprintf "%.0f" r.Load_gen.p999_us;
              string_of_int fsyncs;
              Printf.sprintf "%.3f" fsyncs_per_write;
            ]
            :: !rows)
        [ 1; 4; 8 ])
    [ 1; 256 ];
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "service plane: group commit under --sync always (%d ops, write-heavy mix, unix socket)"
         ops)
    ~header:[ "clients"; "max_batch"; "qps"; "p50 us"; "p99 us"; "p999 us"; "wal fsyncs"; "fsyncs/write" ]
    (List.rev !rows)
