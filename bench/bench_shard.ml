(* Shard benchmark: what hash-partitioning the collection across K
   independent index shards buys (and costs) on the same ~1M-symbol
   stream.

   Three numbers per K in {1, 2, 4, 8}:

   - scatter-gather query throughput: count queries fanned across the
     K shard views and summed, from one driver thread.  Per-shard
     structures are ~1/K the size, so individual probes get cheaper as
     K grows even single-threaded; the gather loop adds a fixed merge
     cost.
   - update p50/p99: per-insert/delete latency through the sharded
     write path (route, mapping publish, shard write).  Updates touch
     exactly one shard, so the per-op cost should track the 1/K-sized
     shard, not the collection.
   - recovery: build a durable store from the same stream via batched
     group commits (sync=never), crash it with a torn final record,
     and time [open_store] replaying all K shard WALs -- once
     sequentially (recovery_jobs=0) and once on a parallel executor
     pool (recovery_jobs=min K 4), the restart-time win sharding
     exists for.

   On a single-core host the parallel-recovery rows time-share one
   processor; the JSON rows record nproc so plots can annotate that. *)

open Dsdg_shard
module Store = Dsdg_store

let preload = 5000
let doc_len = 200 (* preload * doc_len = 1M symbols *)
let updates = 600
let queries = 2000
let batch = 256
let shard_counts = [ 1; 2; 4; 8 ]

let make_docs n seed =
  let st = Random.State.make [| 0x5eed; seed |] in
  Array.init n (fun _ -> String.init doc_len (fun _ -> Char.chr (97 + Random.State.int st 4)))

let make_patterns () =
  let st = Random.State.make [| 0xfaced; 11 |] in
  Array.init 64 (fun _ -> String.init 4 (fun _ -> Char.chr (97 + Random.State.int st 4)))

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsdg-bench-shard-%d" (Unix.getpid ()))
  in
  Store.Kill_check.reset_dir dir;
  Fun.protect ~finally:(fun () -> Store.Kill_check.reset_dir dir) (fun () -> f dir)

(* In-memory phase: preload the stream, then measure update latency and
   scatter-gather query throughput at shard count [k]. *)
let run_mem ~k docs upd_docs =
  let sh =
    Sharded_index.create ~variant:Dsdg_core.Dynamic_index.Worst_case
      ~backend:Dsdg_core.Dynamic_index.Plain_sa ~sample:8 ~tau:8 ~jobs:0 ~readers:0 ~shards:k ()
  in
  let patterns = make_patterns () in
  Array.iter (fun d -> ignore (Sharded_index.insert sh d)) docs;
  let st = Random.State.make [| 0xdead; k |] in
  let lat = Array.make updates 0 in
  let live = Array.init preload (fun i -> i) in
  let n_live = ref preload in
  for i = 0 to updates - 1 do
    let a = Dsdg_obs.Obs.now_ns () in
    if i mod 4 = 3 && !n_live > 0 then begin
      let j = Random.State.int st !n_live in
      let id = live.(j) in
      live.(j) <- live.(!n_live - 1);
      decr n_live;
      ignore (Sharded_index.delete sh id)
    end
    else ignore (Sharded_index.insert sh upd_docs.(i mod Array.length upd_docs));
    lat.(i) <- Dsdg_obs.Obs.now_ns () - a
  done;
  let sink = ref 0 in
  let t0 = Dsdg_obs.Obs.now_ns () in
  for q = 0 to queries - 1 do
    sink := !sink + Sharded_index.count sh patterns.(q mod 64)
  done;
  let q_wall = Dsdg_obs.Obs.now_ns () - t0 in
  ignore !sink;
  let symbols = Sharded_index.total_symbols sh in
  Sharded_index.close sh;
  Array.sort compare lat;
  let qps = float_of_int queries /. (float_of_int q_wall /. 1e9) in
  (qps, lat, symbols)

(* Store phase: stream the corpus in through batched group commits,
   crash torn, and time recovery of the K shard stores -- sequential
   and parallel. *)
let run_store ~k docs =
  let config =
    { Store.Durable.default_config with Store.Durable.sync = Store.Wal.Never }
  in
  let recover ~recovery_jobs dir =
    let (sh, infos), ns =
      Bench_util.time_ns (fun () ->
          Sharded_index.open_store ~config ~recovery_jobs ~shards:k ~dir ())
    in
    let replayed = Array.fold_left (fun a i -> a + i.Store.Recovery.ri_replayed) 0 infos in
    (sh, replayed, ns)
  in
  let build dir =
    let sh, _ = Sharded_index.open_store ~config ~shards:k ~dir () in
    let n = Array.length docs in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + batch) in
      let ops = ref [] in
      for j = stop - 1 downto !i do
        ops := Dsdg_check.Trace.Insert docs.(j) :: !ops
      done;
      ignore (Sharded_index.apply_batch sh !ops);
      i := stop
    done;
    Sharded_index.kill sh ~torn:true
  in
  with_tmp_dir (fun dir ->
      build dir;
      let sh, replayed_seq, seq_ns = recover ~recovery_jobs:0 dir in
      Sharded_index.kill sh ~torn:false;
      let sh, replayed_par, par_ns = recover ~recovery_jobs:(min k 4) dir in
      Sharded_index.close sh;
      assert (replayed_seq = replayed_par);
      (replayed_seq, seq_ns, par_ns))

let run () =
  let docs = make_docs preload 42 in
  let upd_docs = make_docs updates 43 in
  let nproc = Domain.recommended_domain_count () in
  let results =
    List.map
      (fun k ->
        let qps, lat, symbols = run_mem ~k docs upd_docs in
        let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
        let replayed, seq_ns, par_ns = run_store ~k docs in
        Bench_util.emit_json_row ~bench:"shard/scatter-gather"
          [ ("shards", Bench_util.I k);
            ("nproc", Bench_util.I nproc);
            ("preload_docs", Bench_util.I preload);
            ("total_symbols", Bench_util.I symbols);
            ("updates", Bench_util.I updates);
            ("queries", Bench_util.I queries);
            ("qps", Bench_util.F qps);
            ("update_p50_ns", Bench_util.I p50);
            ("update_p99_ns", Bench_util.I p99);
            ("wal_replayed", Bench_util.I replayed);
            ("recover_seq_ms", Bench_util.F (seq_ns /. 1e6));
            ("recover_par_ms", Bench_util.F (par_ns /. 1e6)) ];
        (k, qps, p50, p99, seq_ns, par_ns))
      shard_counts
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "Sharded scale-out: K-way partition of a %dk-symbol stream (nproc=%d)"
         (preload * doc_len / 1000) nproc)
    ~header:[ "K"; "qps"; "upd p50"; "upd p99"; "recover seq"; "recover par" ]
    (List.map
       (fun (k, qps, p50, p99, seq_ns, par_ns) ->
         [ string_of_int k;
           Printf.sprintf "%.0f" qps;
           Bench_util.ns_str (float_of_int p50);
           Bench_util.ns_str (float_of_int p99);
           Bench_util.ns_str seq_ns;
           Bench_util.ns_str par_ns ])
       results);
  if nproc <= 1 then
    Printf.printf
      "  single processor: parallel-recovery rows time-share one core, no speedup possible here\n"
