(* Compressed sequence representations head-to-head: balanced wavelet
   tree vs Huffman-shaped wavelet tree vs the alphabet-partitioned
   structure of Appendix A.6 / [3].  These are the rank/select/access
   engines inside every index here; the paper's Section 4 plugs [3] into
   the Transformations, and A.6 shows how to build it.

   The second half benches the *dynamic* substrate those engines run on
   when the collection mutates: the AVL Dyn_bitvec vs the SPSI B-tree
   (Spsi) on a mixed insert/delete/rank/select stream, per-op-class
   throughput and bits/symbol emitted as BENCH JSON rows.
   DSDG_BENCH_QUICK=1 shrinks both halves to CI size. *)

open Dsdg_wavelet
open Dsdg_entropy

type seq_impl = {
  sname : string;
  access : int -> int;
  rank : int -> int -> int;
  select : int -> int -> int;
  space : int;
}

let impls (a : int array) sigma =
  let wt = Wavelet_tree.build ~sigma a in
  let hw = Huffman_wavelet.build ~sigma a in
  let ap = Alphabet_partition.build ~sigma a in
  [
    { sname = "balanced wavelet"; access = Wavelet_tree.access wt;
      rank = Wavelet_tree.rank wt; select = Wavelet_tree.select wt;
      space = Wavelet_tree.space_bits wt };
    { sname = "huffman wavelet"; access = Huffman_wavelet.access hw;
      rank = Huffman_wavelet.rank hw; select = Huffman_wavelet.select hw;
      space = Huffman_wavelet.space_bits hw };
    { sname = "alphabet partition (A.6)"; access = Alphabet_partition.access ap;
      rank = Alphabet_partition.rank ap; select = Alphabet_partition.select ap;
      space = Alphabet_partition.space_bits ap };
  ]

let quick () = Sys.getenv_opt "DSDG_BENCH_QUICK" <> None

(* --- dynamic substrate: AVL Dyn_bitvec vs SPSI B-tree --- *)

(* One mixed stream per backend, same seed: grow to [n] bits with
   inserts at random positions, interleaving deletes, rank1 and select1
   along the way (roughly 62% insert / 12% delete / 16% rank / 10%
   select).  Each op class gets its own accumulated wall-clock, so the
   row reports ops/s per class out of one realistic interleaving rather
   than four artificially segregated phases. *)
let dynamic_stream kind n =
  let open Dsdg_dynseq in
  let bv = Seq_backend.create kind in
  let st = Random.State.make [| 73; n |] in
  let ins_ns = ref 0. and del_ns = ref 0. and rank_ns = ref 0. and sel_ns = ref 0. in
  let ins_n = ref 0 and del_n = ref 0 and rank_n = ref 0 and sel_n = ref 0 in
  let sink = ref 0 in
  let timed acc_ns acc_n f =
    let t0 = Bench_util.now_ns () in
    f ();
    let t1 = Bench_util.now_ns () in
    acc_ns := !acc_ns +. Int64.to_float (Int64.sub t1 t0);
    incr acc_n
  in
  while Seq_backend.len bv < n do
    let len = Seq_backend.len bv in
    let r = Random.State.float st 1.0 in
    if r < 0.62 || len < 64 then
      let pos = Random.State.int st (len + 1) in
      let b = Random.State.bool st in
      timed ins_ns ins_n (fun () -> Seq_backend.insert bv pos b)
    else if r < 0.74 then
      let pos = Random.State.int st len in
      timed del_ns del_n (fun () -> Seq_backend.delete bv pos)
    else if r < 0.90 then
      let pos = Random.State.int st len in
      timed rank_ns rank_n (fun () -> sink := !sink + Seq_backend.rank1 bv pos)
    else begin
      let ones = Seq_backend.ones bv in
      if ones > 0 then
        let k = Random.State.int st ones in
        timed sel_ns sel_n (fun () -> sink := !sink + Seq_backend.select1 bv k)
    end
  done;
  ignore (Sys.opaque_identity !sink);
  let ops_s ns cnt = if ns <= 0. then nan else float_of_int cnt /. (ns /. 1e9) in
  ( Seq_backend.space_bits bv,
    Seq_backend.len bv,
    [ ("insert", ops_s !ins_ns !ins_n, !ins_n);
      ("delete", ops_s !del_ns !del_n, !del_n);
      ("rank", ops_s !rank_ns !rank_n, !rank_n);
      ("select", ops_s !sel_ns !sel_n, !sel_n) ] )

let run_dynamic () =
  let open Dsdg_dynseq in
  let n = if quick () then 100_000 else 1_000_000 in
  Printf.printf "
[sequences/dynamic] mixed stream to n=%d bits per backend
%!" n;
  let rows =
    List.map
      (fun kind ->
        let name = Dsdg_delbits.Sums.kind_to_string kind in
        let space, len, classes = dynamic_stream kind n in
        let bps = float_of_int space /. float_of_int len in
        Bench_util.emit_json_row ~bench:"sequences"
          ([ ("section", Bench_util.S "dynamic");
             ("backend", Bench_util.S name);
             ("n", Bench_util.I len);
             ("bits_per_symbol", Bench_util.F bps) ]
          @ List.map (fun (op, ops_s, _) -> (op ^ "_ops_s", Bench_util.F ops_s)) classes);
        name :: List.map (fun (_, ops_s, _) -> Printf.sprintf "%.0f" ops_s) classes
        @ [ Printf.sprintf "%.2f" bps ])
      Dsdg_delbits.Sums.all_kinds
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "Dynamic bitvector substrate, %d-bit mixed stream  [expect spsi ahead on rank/select \
          at <= avl space]"
         n)
    ~header:[ "backend"; "insert/s"; "delete/s"; "rank/s"; "select/s"; "bits/sym" ]
    rows;
  ignore (Seq_backend.Avl : Seq_backend.kind)

let run () =
  let st = Random.State.make [| 61 |] in
  let n = (if quick () then 50_000 else 200_000) and sigma = 200 in
  (* Zipf-ish symbol distribution: low H0 relative to log sigma *)
  let a =
    Array.init n (fun _ ->
        let z = Dsdg_workload.Text_gen.zipf st ~max:sigma in
        z - 1)
  in
  let h0 = Entropy.h0_ints a in
  Printf.printf "\n[sequences] n=%d sigma=%d H0=%.2f (log sigma = %.2f)\n" n sigma h0
    (log (float_of_int sigma) /. log 2.);
  let queries = Array.init 2000 (fun _ -> Random.State.int st n) in
  let syms = Array.init 2000 (fun _ -> a.(Random.State.int st n)) in
  let sink = ref 0 in
  let rows =
    List.map
      (fun impl ->
        let acc_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iter (fun q -> sink := !sink + impl.access q) queries)
          /. 2000.
        in
        let rank_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iteri (fun i c -> sink := !sink + impl.rank c queries.(i)) syms)
          /. 2000.
        in
        let sel_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iter (fun c -> sink := !sink + impl.select c 0) syms)
          /. 2000.
        in
        [ impl.sname; Bench_util.ns_str acc_ns; Bench_util.ns_str rank_ns;
          Bench_util.ns_str sel_ns; Bench_util.bits_per_sym impl.space n ])
      (impls a sigma)
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "Sequence representations  [expect huffman & A.6 near H0=%.2f bits/sym; balanced near log sigma]"
         h0)
    ~header:[ "representation"; "access"; "rank"; "select"; "bits/sym" ]
    rows;
  run_dynamic ()
