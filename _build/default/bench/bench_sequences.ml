(* Compressed sequence representations head-to-head: balanced wavelet
   tree vs Huffman-shaped wavelet tree vs the alphabet-partitioned
   structure of Appendix A.6 / [3].  These are the rank/select/access
   engines inside every index here; the paper's Section 4 plugs [3] into
   the Transformations, and A.6 shows how to build it. *)

open Dsdg_wavelet
open Dsdg_entropy

type seq_impl = {
  sname : string;
  access : int -> int;
  rank : int -> int -> int;
  select : int -> int -> int;
  space : int;
}

let impls (a : int array) sigma =
  let wt = Wavelet_tree.build ~sigma a in
  let hw = Huffman_wavelet.build ~sigma a in
  let ap = Alphabet_partition.build ~sigma a in
  [
    { sname = "balanced wavelet"; access = Wavelet_tree.access wt;
      rank = Wavelet_tree.rank wt; select = Wavelet_tree.select wt;
      space = Wavelet_tree.space_bits wt };
    { sname = "huffman wavelet"; access = Huffman_wavelet.access hw;
      rank = Huffman_wavelet.rank hw; select = Huffman_wavelet.select hw;
      space = Huffman_wavelet.space_bits hw };
    { sname = "alphabet partition (A.6)"; access = Alphabet_partition.access ap;
      rank = Alphabet_partition.rank ap; select = Alphabet_partition.select ap;
      space = Alphabet_partition.space_bits ap };
  ]

let run () =
  let st = Random.State.make [| 61 |] in
  let n = 200_000 and sigma = 200 in
  (* Zipf-ish symbol distribution: low H0 relative to log sigma *)
  let a =
    Array.init n (fun _ ->
        let z = Dsdg_workload.Text_gen.zipf st ~max:sigma in
        z - 1)
  in
  let h0 = Entropy.h0_ints a in
  Printf.printf "\n[sequences] n=%d sigma=%d H0=%.2f (log sigma = %.2f)\n" n sigma h0
    (log (float_of_int sigma) /. log 2.);
  let queries = Array.init 2000 (fun _ -> Random.State.int st n) in
  let syms = Array.init 2000 (fun _ -> a.(Random.State.int st n)) in
  let sink = ref 0 in
  let rows =
    List.map
      (fun impl ->
        let acc_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iter (fun q -> sink := !sink + impl.access q) queries)
          /. 2000.
        in
        let rank_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iteri (fun i c -> sink := !sink + impl.rank c queries.(i)) syms)
          /. 2000.
        in
        let sel_ns =
          Bench_util.per_op ~iters:20 (fun () ->
              Array.iter (fun c -> sink := !sink + impl.select c 0) syms)
          /. 2000.
        in
        [ impl.sname; Bench_util.ns_str acc_ns; Bench_util.ns_str rank_ns;
          Bench_util.ns_str sel_ns; Bench_util.bits_per_sym impl.space n ])
      (impls a sigma)
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "Sequence representations  [expect huffman & A.6 near H0=%.2f bits/sym; balanced near log sigma]"
         h0)
    ~header:[ "representation"; "access"; "rank"; "select"; "bits/sym" ]
    rows
