(* Table 4 / Theorem 1: counting queries.

   Counting surviving occurrences uses a Fenwick range count over the
   liveness vector: tcount = trange + O(log n), *independent of occ*.
   Reporting pays per occurrence.  The crossover as occ grows is the
   shape to reproduce. *)

open Dsdg_core
open Dsdg_workload

module T1 = Transform1.Make (Fm_static)

let run () =
  let st = Text_gen.rng 23 in
  (* low-entropy corpus so short patterns have many occurrences *)
  let docs = Text_gen.corpus st ~count:200 ~avg_len:500 ~kind:(`Uniform 4) in
  let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
  let t = T1.create ~sample:8 ~tau:8 () in
  Array.iter (fun d -> ignore (T1.insert t d)) docs;
  (* delete a slice so the liveness machinery is actually exercised *)
  for id = 0 to Array.length docs - 1 do
    if id mod 5 = 0 then ignore (T1.delete t id)
  done;
  Printf.printf "\n[table4] corpus: %d symbols, 20%% deleted\n" n;
  let rows =
    List.filter_map
      (fun plen ->
        match Text_gen.planted_pattern st docs ~len:plen with
        | None -> None
        | Some p ->
          let occ = T1.count t p in
          let count_ns = Bench_util.per_op ~iters:50 (fun () -> T1.count t p) in
          let report_ns =
            Bench_util.per_op ~iters:10 (fun () ->
                let c = ref 0 in
                T1.search t p ~f:(fun ~doc:_ ~off:_ -> incr c);
                !c)
          in
          Some
            [ string_of_int plen; string_of_int occ; Bench_util.ns_str count_ns;
              Bench_util.ns_str report_ns;
              (if occ = 0 then "n/a" else Printf.sprintf "%.1fx" (report_ns /. count_ns)) ])
      [ 1; 2; 3; 4; 6; 8; 12 ]
  in
  Bench_util.print_table
    ~title:
      "Table 4: counting vs reporting  [expect count ~flat in occ, report ~linear; ratio grows]"
    ~header:[ "|P|"; "occ"; "count time"; "report time"; "report/count" ]
    rows
