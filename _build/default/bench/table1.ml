(* Table 1: static compressed indexing.

   The paper's Table 1 lists static indexes whose costs are
     trange  ~ |P| (x small factors),
     tlocate ~ s  per occurrence,
     textract ~ s + l,
   in nHk + O(n log n / s) bits.  We reproduce the *shape* with the
   FM-index: query time linear in |P|; locate cost per occurrence linear
   in s; extraction linear in l + s; space falling with s toward nHk. *)

open Dsdg_core
open Dsdg_fm
open Dsdg_workload
open Dsdg_entropy

let corpus () =
  let st = Text_gen.rng 42 in
  Text_gen.corpus st ~count:64 ~avg_len:4096 ~kind:(`Markov (8, 0.7))

let run () =
  let docs = corpus () in
  let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
  let text = String.concat "" (Array.to_list docs) in
  let h0 = Entropy.h0 text and h2 = Entropy.hk ~k:2 text in
  Printf.printf "\n[table1] corpus: %d docs, %d symbols, H0=%.3f H2=%.3f bits/sym\n" (Array.length docs) n h0 h2;
  let st = Text_gen.rng 43 in

  (* (a) trange: count time vs |P| at fixed s *)
  let fm = Fm_index.build ~sample:8 docs in
  let rows_a =
    List.map
      (fun plen ->
        let pats =
          List.init 50 (fun _ ->
              match Text_gen.planted_pattern st docs ~len:plen with
              | Some p -> p
              | None -> Text_gen.miss_pattern ~len:plen)
        in
        let ns =
          Bench_util.per_op ~iters:200 (fun () ->
              List.iter (fun p -> ignore (Fm_index.count fm p)) pats)
          /. 50.
        in
        [ string_of_int plen; Bench_util.ns_str ns; Bench_util.ns_str (ns /. float_of_int plen) ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Bench_util.print_table ~title:"Table 1a: trange (count) vs |P|  [expect ~linear in |P|]"
    ~header:[ "|P|"; "count time"; "per pattern symbol" ] rows_a;

  (* (b) tlocate per occurrence and space, vs sample rate s *)
  let pat = Option.get (Text_gen.planted_pattern st docs ~len:3) in
  let rows_b =
    List.map
      (fun s ->
        let fm = Fm_index.build ~sample:s docs in
        let occ = Fm_index.count fm pat in
        let ns =
          Bench_util.per_op ~iters:5 (fun () ->
              match Fm_index.range fm pat with
              | None -> ()
              | Some (sp, ep) ->
                for row = sp to ep - 1 do
                  ignore (Sys.opaque_identity (Fm_index.locate fm row))
                done)
        in
        let per_occ = if occ = 0 then nan else ns /. float_of_int occ in
        (* extraction of l=64 *)
        let ext_ns =
          Bench_util.per_op ~iters:50 (fun () -> Fm_index.extract fm ~doc:0 ~off:0 ~len:64)
        in
        [ string_of_int s; string_of_int occ; Bench_util.ns_str per_occ; Bench_util.ns_str ext_ns;
          Bench_util.bits_per_sym (Fm_index.space_bits fm) n ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "Table 1b: tlocate/occ, textract(l=64), space vs s  [expect locate ~ s; space -> nHk=%.2f]"
         h2)
    ~header:[ "s"; "occ"; "locate/occ"; "extract l=64"; "bits/sym" ] rows_b;

  (* (c) textract vs l at fixed s *)
  let fm = Fm_index.build ~sample:8 docs in
  let rows_c =
    List.map
      (fun l ->
        let ns = Bench_util.per_op ~iters:100 (fun () -> Fm_index.extract fm ~doc:0 ~off:0 ~len:l) in
        [ string_of_int l; Bench_util.ns_str ns; Bench_util.ns_str (ns /. float_of_int l) ])
      [ 8; 32; 128; 512 ]
  in
  Bench_util.print_table ~title:"Table 1c: textract vs l at s=8  [expect ~linear in l]"
    ~header:[ "l"; "extract time"; "per char" ] rows_c;
  ignore (module Sa_static : Static_index.S)
