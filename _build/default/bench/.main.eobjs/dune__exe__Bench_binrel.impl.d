bench/bench_binrel.ml: Array Bench_util Digraph Dsdg_binrel Dsdg_dynseq Dsdg_workload Dyn_binrel Dyn_bitvec Dyn_wavelet Graph_gen Printf Random
