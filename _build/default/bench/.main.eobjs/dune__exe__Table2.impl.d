bench/table2.ml: Array Bench_util Dsdg_core Dsdg_dynseq Dsdg_fm Dsdg_workload Dyn_fm Fm_index Fm_static List Printf String Text_gen Transform1 Transform2
