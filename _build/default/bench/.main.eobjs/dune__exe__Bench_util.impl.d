bench/bench_util.ml: Analyze Array Bechamel Benchmark Float Int64 List Measure Monotonic_clock Printf String Sys Test Time Toolkit
