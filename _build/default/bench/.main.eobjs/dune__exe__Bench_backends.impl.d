bench/bench_backends.ml: Array Bench_util Csa_static Dsdg_core Dsdg_workload Fm_static List Printf Sa_static String Sys Text_gen
