bench/bench_figures.ml: Bench_util Dsdg_core Dsdg_workload Fm_static List Printf Random String Text_gen Transform1 Transform2
