bench/bench_ablations.ml: Array Bench_util Bitvec Dsdg_bits Dsdg_core Dsdg_delbits Dsdg_workload Fm_static Hashtbl List Option Printf Random Reporter Text_gen Transform1 Transform2
