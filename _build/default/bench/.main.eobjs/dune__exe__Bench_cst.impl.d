bench/bench_cst.ml: Array Bench_util Cst Dsdg_bp Dsdg_workload Printf Random String Sys Text_gen
