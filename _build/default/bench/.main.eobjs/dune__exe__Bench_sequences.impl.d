bench/bench_sequences.ml: Alphabet_partition Array Bench_util Dsdg_entropy Dsdg_wavelet Dsdg_workload Entropy Huffman_wavelet List Printf Random Wavelet_tree
