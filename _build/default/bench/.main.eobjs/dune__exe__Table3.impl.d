bench/table3.ml: Array Bench_util Dsdg_core Dsdg_workload Fm_static List Printf Sa_static String Text_gen Transform2
