bench/table1.ml: Array Bench_util Dsdg_core Dsdg_entropy Dsdg_fm Dsdg_workload Entropy Fm_index List Option Printf Sa_static Static_index String Sys Text_gen
