bench/table4.ml: Array Bench_util Dsdg_core Dsdg_workload Fm_static List Printf String Text_gen Transform1
