bench/main.mli:
