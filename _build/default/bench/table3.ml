(* Table 3: O(n log sigma)-bit indexes (the fast/large class).

   The paper's Table 3 shows that plugging the Grossi-Vitter-class static
   index into Transformation 2 keeps its fast query time (trange sublinear
   factors, tlocate = O(log^eps n)) while supporting updates -- prior
   dynamic structures in this class paid O(|P| log n).

   Reproduced shape: the dynamized plain-SA backend (Table 3 class) locates
   occurrences much faster than the compressed backend, at a large space
   cost; its count time grows with |P| log n (binary search) vs the FM's
   |P| backward steps; both are dynamized by the same Transformation with
   identical update machinery. *)

open Dsdg_core
open Dsdg_workload

module T2_fm = Transform2.Make (Fm_static)
module T2_sa = Transform2.Make (Sa_static)

let run () =
  let st = Text_gen.rng 17 in
  let docs = Text_gen.corpus st ~count:300 ~avg_len:400 ~kind:(`Markov (8, 0.6)) in
  let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
  Printf.printf "\n[table3] corpus: %d docs, %d symbols\n" (Array.length docs) n;
  let t_fm = T2_fm.create ~sample:8 ~tau:8 () in
  let t_sa = T2_sa.create ~sample:8 ~tau:8 () in
  Array.iter (fun d -> ignore (T2_fm.insert t_fm d)) docs;
  Array.iter (fun d -> ignore (T2_sa.insert t_sa d)) docs;
  let pats plen =
    List.init 30 (fun _ ->
        match Text_gen.planted_pattern st docs ~len:plen with
        | Some p -> p
        | None -> Text_gen.miss_pattern ~len:plen)
  in
  let bench_count name count plen =
    let ps = pats plen in
    let ns = Bench_util.per_op ~iters:10 (fun () -> List.iter (fun p -> ignore (count p)) ps) in
    (name, ns /. float_of_int (List.length ps))
  in
  let report_per_occ search count =
    let ps = pats 4 in
    let occ = List.fold_left (fun a p -> a + count p) 0 ps in
    let ns = Bench_util.per_op ~iters:5 (fun () -> List.iter (fun p -> ignore (search p)) ps) in
    if occ = 0 then nan else ns /. float_of_int occ
  in
  let fm_report p =
    let c = ref 0 in
    T2_fm.search t_fm p ~f:(fun ~doc:_ ~off:_ -> incr c);
    !c
  in
  let sa_report p =
    let c = ref 0 in
    T2_sa.search t_sa p ~f:(fun ~doc:_ ~off:_ -> incr c);
    !c
  in
  let rows =
    List.map
      (fun plen ->
        let _, fm_ns = bench_count "fm" (T2_fm.count t_fm) plen in
        let _, sa_ns = bench_count "sa" (T2_sa.count t_sa) plen in
        [ string_of_int plen; Bench_util.ns_str fm_ns; Bench_util.ns_str sa_ns ])
      [ 4; 16; 64 ]
  in
  Bench_util.print_table
    ~title:"Table 3a: dynamized count query vs |P| (both under Transformation 2)"
    ~header:[ "|P|"; "compressed backend (fm)"; "plain-SA backend (Table 3 class)" ]
    rows;
  let rows2 =
    [
      [ "compressed backend (fm)";
        Bench_util.ns_str (report_per_occ fm_report (T2_fm.count t_fm));
        Bench_util.bits_per_sym (T2_fm.space_bits t_fm) n ];
      [ "plain-SA backend (Table 3 class)";
        Bench_util.ns_str (report_per_occ sa_report (T2_sa.count t_sa));
        Bench_util.bits_per_sym (T2_sa.space_bits t_sa) n ];
    ]
  in
  Bench_util.print_table
    ~title:"Table 3b: locate per occurrence & space  [expect SA much faster locate, much bigger]"
    ~header:[ "index"; "report/occ"; "bits/sym" ] rows2
