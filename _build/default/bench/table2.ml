(* Table 2: dynamic indexing.

   The paper's Table 2 compares dynamic compressed indexes.  Prior work
   pays O(log n / log log n) dynamic-rank time *per pattern symbol and
   per occurrence*; the paper's transformations answer queries at
   static-index speed and pay polylog only on updates.

   Reproduced shape, on the same corpus and query set:
   - query (count & report) time: Transform1/Transform2 must beat the
     dynamic-BWT baseline clearly and sit close to the static FM-index;
   - update time: the baseline's insert is cheap-ish per symbol but its
     queries are slow; ours pay the rebuild schedule on insert. *)

open Dsdg_core
open Dsdg_fm
open Dsdg_dynseq
open Dsdg_workload

module T1 = Transform1.Make (Fm_static)
module T2 = Transform2.Make (Fm_static)

type subject = {
  name : string;
  insert : string -> int;
  delete : int -> bool;
  count : string -> int;
  report : string -> int;
  space : unit -> int;
}

let subjects () =
  let t1 = T1.create ~sample:8 ~tau:8 () in
  let t2 = T2.create ~sample:8 ~tau:8 () in
  let base = Dyn_fm.create () in
  let base_next = ref 0 in
  [
    {
      name = "transform1/fm (ours, amortized)";
      insert = T1.insert t1;
      delete = T1.delete t1;
      count = T1.count t1;
      report =
        (fun p ->
          let c = ref 0 in
          T1.search t1 p ~f:(fun ~doc:_ ~off:_ -> incr c);
          !c);
      space = (fun () -> T1.space_bits t1);
    };
    {
      name = "transform2/fm (ours, worst-case)";
      insert = T2.insert t2;
      delete = T2.delete t2;
      count = T2.count t2;
      report =
        (fun p ->
          let c = ref 0 in
          T2.search t2 p ~f:(fun ~doc:_ ~off:_ -> incr c);
          !c);
      space = (fun () -> T2.space_bits t2);
    };
    {
      name = "dynamic BWT baseline [30]/[35]";
      insert =
        (fun text ->
          let id = !base_next in
          incr base_next;
          Dyn_fm.insert base ~doc:id text;
          id);
      delete = (fun id -> Dyn_fm.delete base id);
      count = Dyn_fm.count base;
      report = (fun p -> List.length (Dyn_fm.search base p));
      space = (fun () -> Dyn_fm.space_bits base);
    };
  ]

let run () =
  let st = Text_gen.rng 7 in
  let docs = Text_gen.corpus st ~count:1200 ~avg_len:400 ~kind:(`Markov (8, 0.6)) in
  let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
  Printf.printf "\n[table2] corpus: %d docs, %d symbols\n" (Array.length docs) n;
  let patterns =
    List.init 30 (fun i ->
        match Text_gen.planted_pattern st docs ~len:(5 + (i mod 4)) with
        | Some p -> p
        | None -> Text_gen.miss_pattern ~len:5)
  in
  let rows =
    List.map
      (fun s ->
        (* build by insertion, measuring update cost *)
        let ids = ref [] in
        let _, ins_ns =
          Bench_util.time_ns (fun () -> Array.iter (fun d -> ids := s.insert d :: !ids) docs)
        in
        let ins_per_sym = ins_ns /. float_of_int n in
        (* queries *)
        let count_ns =
          Bench_util.per_op ~iters:10 (fun () -> List.iter (fun p -> ignore (s.count p)) patterns)
          /. float_of_int (List.length patterns)
        in
        let occ_total = List.fold_left (fun a p -> a + s.count p) 0 patterns in
        let report_ns =
          Bench_util.per_op ~iters:2 (fun () -> List.iter (fun p -> ignore (s.report p)) patterns)
        in
        let report_per_occ = if occ_total = 0 then nan else report_ns /. float_of_int occ_total in
        (* deletions of a third of the documents *)
        let victims = List.filteri (fun i _ -> i mod 3 = 0) !ids in
        let vict_syms =
          List.length victims * (n / Array.length docs)
        in
        let _, del_ns = Bench_util.time_ns (fun () -> List.iter (fun id -> ignore (s.delete id)) victims) in
        [ s.name; Bench_util.ns_str ins_per_sym; Bench_util.ns_str count_ns;
          Bench_util.ns_str report_per_occ;
          Bench_util.ns_str (del_ns /. float_of_int (max 1 vict_syms));
          Bench_util.bits_per_sym (s.space ()) n ])
      (subjects ())
  in
  Bench_util.print_table
    ~title:"Table 2: dynamic indexing  [expect: ours far faster report; baseline O(log n) queries]"
    ~header:[ "index"; "insert/sym"; "count query"; "report/occ"; "delete/sym"; "bits/sym" ]
    rows;
  (* static reference point: query times of the underlying static index *)
  let fm = Fm_index.build ~sample:8 docs in
  let count_ns =
    Bench_util.per_op ~iters:20 (fun () -> List.iter (fun p -> ignore (Fm_index.count fm p)) patterns)
    /. float_of_int (List.length patterns)
  in
  Printf.printf "reference: static FM count query = %s (dynamic ours should be within ~small factor)\n"
    (Bench_util.ns_str count_ns);

  (* scaling: count-query time vs n -- the baseline pays O(log n) per
     pattern symbol; ours stays at static speed (a fixed number of
     sub-collection probes). *)
  let scale_rows =
    List.map
      (fun count ->
        let st = Text_gen.rng (1000 + count) in
        let docs = Text_gen.corpus st ~count ~avg_len:400 ~kind:(`Markov (8, 0.6)) in
        let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
        let pats =
          List.init 20 (fun _ ->
              match Text_gen.planted_pattern st docs ~len:6 with
              | Some p -> p
              | None -> Text_gen.miss_pattern ~len:6)
        in
        let t1 = T1.create ~sample:8 ~tau:8 () in
        Array.iter (fun d -> ignore (T1.insert t1 d)) docs;
        T1.consolidate t1;
        let base = Dyn_fm.create () in
        Array.iteri (fun i d -> Dyn_fm.insert base ~doc:i d) docs;
        let ours_ns =
          Bench_util.per_op ~iters:10 (fun () -> List.iter (fun p -> ignore (T1.count t1 p)) pats)
          /. 20.
        in
        let base_ns =
          Bench_util.per_op ~iters:10 (fun () -> List.iter (fun p -> ignore (Dyn_fm.count base p)) pats)
          /. 20.
        in
        [ string_of_int n; Bench_util.ns_str ours_ns; Bench_util.ns_str base_ns;
          Printf.sprintf "%.1fx" (base_ns /. ours_ns) ])
      [ 100; 400; 1600; 6400 ]
  in
  Bench_util.print_table
    ~title:"Table 2 (scaling): count query vs n, ours consolidated  [ratio grows with n]"
    ~header:[ "n (symbols)"; "ours (transform1)"; "baseline dyn-BWT"; "ratio" ]
    scale_rows
