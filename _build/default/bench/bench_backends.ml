(* Cross-index comparison of the three static backends -- the rows of the
   paper's Table 1 (and Table 3) side by side on the same corpus:

     fm   BWT + Huffman wavelet        (Ferragina-Manzini class, rows [14]/[5]/[3]/[7])
     csa  psi in per-block Elias-Fano  (Sadakane class, row [39])
     sa   plain suffix array           (Grossi-Vitter stand-in, Table 3)

   Expected shape: sa fastest and largest; fm and csa compressed with
   s-dependent locate; csa's count pays |P| log n (binary search), fm's
   pays |P| backward steps. *)

open Dsdg_core
open Dsdg_workload

type backend = {
  bname : string;
  range : string -> (int * int) option;
  locate : int -> int * int;
  extract : doc:int -> off:int -> len:int -> string;
  space : int;
}

let make_backends docs =
  let fm = Fm_static.build ~sample:8 docs in
  let csa = Csa_static.build ~sample:8 docs in
  let sa = Sa_static.build ~sample:8 docs in
  [
    {
      bname = "fm (BWT+wavelet)";
      range = Fm_static.range fm;
      locate = Fm_static.locate fm;
      extract = (fun ~doc ~off ~len -> Fm_static.extract fm ~doc ~off ~len);
      space = Fm_static.space_bits fm;
    };
    {
      bname = "csa (psi/Elias-Fano)";
      range = Csa_static.range csa;
      locate = Csa_static.locate csa;
      extract = (fun ~doc ~off ~len -> Csa_static.extract csa ~doc ~off ~len);
      space = Csa_static.space_bits csa;
    };
    {
      bname = "sa (plain)";
      range = Sa_static.range sa;
      locate = Sa_static.locate sa;
      extract = (fun ~doc ~off ~len -> Sa_static.extract sa ~doc ~off ~len);
      space = Sa_static.space_bits sa;
    };
  ]

let run () =
  let st = Text_gen.rng 51 in
  let docs = Text_gen.corpus st ~count:100 ~avg_len:2000 ~kind:(`Markov (8, 0.7)) in
  let n = Array.fold_left (fun a d -> a + String.length d + 1) 0 docs in
  Printf.printf "\n[backends] corpus: %d docs, %d symbols; all indexes at s=8\n" (Array.length docs) n;
  let backends = make_backends docs in
  let pats plen =
    List.init 40 (fun _ ->
        match Text_gen.planted_pattern st docs ~len:plen with
        | Some p -> p
        | None -> Text_gen.miss_pattern ~len:plen)
  in
  let short = pats 4 and long = pats 32 in
  let rows =
    List.map
      (fun b ->
        let count ps =
          Bench_util.per_op ~iters:20 (fun () -> List.iter (fun p -> ignore (b.range p)) ps)
          /. float_of_int (List.length ps)
        in
        let c_short = count short and c_long = count long in
        (* locate per occurrence on one frequent pattern *)
        let pat = List.hd short in
        let occ, loc_ns =
          match b.range pat with
          | None -> (0, nan)
          | Some (sp, ep) ->
            let ns =
              Bench_util.per_op ~iters:5 (fun () ->
                  for row = sp to ep - 1 do
                    ignore (Sys.opaque_identity (b.locate row))
                  done)
            in
            (ep - sp, ns /. float_of_int (max 1 (ep - sp)))
        in
        ignore occ;
        let ext = Bench_util.per_op ~iters:50 (fun () -> b.extract ~doc:0 ~off:0 ~len:64) in
        [ b.bname; Bench_util.ns_str c_short; Bench_util.ns_str c_long; Bench_util.ns_str loc_ns;
          Bench_util.ns_str ext; Bench_util.bits_per_sym b.space n ])
      backends
  in
  Bench_util.print_table
    ~title:"Static backends on one corpus  [expect: sa fastest+largest; fm/csa compressed]"
    ~header:[ "index"; "count |P|=4"; "count |P|=32"; "locate/occ"; "extract l=64"; "bits/sym" ]
    rows
