(* Succinct-tree substrate micro-benchmark: balanced-parentheses
   navigation and compressed-suffix-tree operations ([37], the machinery
   of the static index whose construction A.6 walks through). *)

open Dsdg_bp
open Dsdg_workload

let run () =
  let st = Text_gen.rng 71 in
  let text = Text_gen.markov st ~sigma:8 ~len:100_000 ~skew:0.6 in
  let n = String.length text in
  let (), build_ns = Bench_util.time_ns (fun () -> ignore (Sys.opaque_identity (Cst.build_string text))) in
  let cst = Cst.build_string text in
  Printf.printf "\n[cst] text n=%d; CST build %s (%.0f ns/char); %d leaves\n" n
    (Bench_util.ns_str build_ns)
    (build_ns /. float_of_int n)
    (Cst.leaf_count cst);
  let leaves = Array.init 1000 (fun _ -> Cst.leaf cst (Random.State.int st n)) in
  let sink = ref 0 in
  let parent_walk_ns =
    Bench_util.per_op ~iters:10 (fun () ->
        Array.iter
          (fun v ->
            let cur = ref v in
            let continue = ref true in
            while !continue do
              match Cst.parent cst !cur with
              | None -> continue := false
              | Some p ->
                incr sink;
                cur := p
            done)
          leaves)
    /. 1000.
  in
  let lca_ns =
    Bench_util.per_op ~iters:10 (fun () ->
        for i = 0 to 998 do
          sink := !sink + Cst.lca cst leaves.(i) leaves.(i + 1)
        done)
    /. 999.
  in
  let interval_ns =
    Bench_util.per_op ~iters:10 (fun () ->
        Array.iter (fun v -> sink := !sink + fst (Cst.sa_interval cst v)) leaves)
    /. 1000.
  in
  let depth_ns =
    Bench_util.per_op ~iters:10 (fun () ->
        Array.iter (fun v -> sink := !sink + Cst.depth cst v) leaves)
    /. 1000.
  in
  Bench_util.print_table ~title:"CST / balanced-parentheses operations"
    ~header:[ "operation"; "time" ]
    [
      [ "leaf -> root parent walk"; Bench_util.ns_str parent_walk_ns ];
      [ "lca(leaf, leaf)"; Bench_util.ns_str lca_ns ];
      [ "sa_interval"; Bench_util.ns_str interval_ns ];
      [ "depth"; Bench_util.ns_str depth_ns ];
    ];
  Printf.printf "topology space: %s bits per text symbol (incl. plain SA+LCP arrays)\n"
    (Bench_util.bits_per_sym (Cst.space_bits cst) n)
