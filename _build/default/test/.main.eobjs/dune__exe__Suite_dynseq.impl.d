test/suite_dynseq.ml: Alcotest Array Char Dsdg_dynseq Dyn_bitvec Dyn_fm Dyn_wavelet Hashtbl List Printf QCheck QCheck_alcotest Random String
