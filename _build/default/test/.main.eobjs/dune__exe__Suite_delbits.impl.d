test/suite_delbits.ml: Alcotest Array Bitvec Dsdg_bits Dsdg_delbits Dsdg_incr Dsdg_sa Fenwick Fun Incremental List QCheck QCheck_alcotest Reporter Sais
