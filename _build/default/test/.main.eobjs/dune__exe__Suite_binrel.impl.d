test/suite_binrel.ml: Alcotest Digraph Dsdg_binrel Dyn_binrel Hashtbl List QCheck QCheck_alcotest Random Static_binrel Triple_store
