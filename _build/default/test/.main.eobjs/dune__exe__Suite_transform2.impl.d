test/suite_transform2.ml: Alcotest Char Dsdg_core Fm_static Hashtbl List Printf QCheck QCheck_alcotest Random String Transform2
