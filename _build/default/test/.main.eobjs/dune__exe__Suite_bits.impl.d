test/suite_bits.ml: Alcotest Array Bitvec Dsdg_bits Elias_fano Gen Int_vec List Popcount Printf QCheck QCheck_alcotest Random Rank_select
