test/suite_gst.ml: Alcotest Char Dsdg_gst Gen Gsuffix_tree Hashtbl List Printf QCheck QCheck_alcotest String
