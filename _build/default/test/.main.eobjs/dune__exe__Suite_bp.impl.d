test/suite_bp.ml: Alcotest Array Balanced_parens Buffer Char Cst Dsdg_bp Dsdg_fm Gen List Printf QCheck QCheck_alcotest Random String
