test/suite_core.ml: Alcotest Array Char Csa_static Dsdg_core Fm_static Gen Hashtbl List Printf QCheck QCheck_alcotest Random Sa_static Semi_static String Transform1
