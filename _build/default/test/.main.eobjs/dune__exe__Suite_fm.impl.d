test/suite_fm.ml: Alcotest Array Char Dsdg_fm Fm_index Gen List Printf QCheck QCheck_alcotest String
