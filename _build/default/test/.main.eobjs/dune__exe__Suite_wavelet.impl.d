test/suite_wavelet.ml: Alcotest Alphabet_partition Array Dsdg_wavelet Gen Huffman Huffman_wavelet List Printf QCheck QCheck_alcotest Random Wavelet_tree
