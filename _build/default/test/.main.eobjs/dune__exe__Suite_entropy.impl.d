test/suite_entropy.ml: Alcotest Dsdg_entropy Entropy Gen Hashtbl List QCheck QCheck_alcotest String
