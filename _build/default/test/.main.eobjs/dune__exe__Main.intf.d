test/main.mli:
