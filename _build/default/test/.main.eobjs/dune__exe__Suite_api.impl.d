test/suite_api.ml: Alcotest Char Dsdg_core Dynamic_index Hashtbl List Printf Random String
