test/suite_rrr.ml: Alcotest Bitvec Dsdg_bits Gen List Printf QCheck QCheck_alcotest Random Rank_select Rrr
