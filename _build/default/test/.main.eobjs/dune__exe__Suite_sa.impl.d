test/suite_sa.ml: Alcotest Array Bwt Char Dsdg_sa Gen Lcp List Printf QCheck QCheck_alcotest Random Sais String
