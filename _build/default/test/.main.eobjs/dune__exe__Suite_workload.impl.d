test/suite_workload.ml: Alcotest Array Dsdg_entropy Dsdg_workload Entropy Graph_gen Hashtbl List Printf QCheck QCheck_alcotest Query_gen Random String Text_gen
