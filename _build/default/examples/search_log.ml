(* Search-log analytics (the paper's motivating example): keep a rolling
   window of accessed URLs and answer "how many times did URLs containing
   substring X get accessed?" while the log churns.

   Run with:  dune exec examples/search_log.exe *)

open Dsdg_core
open Dsdg_workload

let () =
  let st = Text_gen.rng 2025 in
  let idx = Dynamic_index.create ~variant:Dynamic_index.Worst_case ~sample:4 () in

  (* Ingest a synthetic access log. *)
  let window = 400 in
  let urls = Text_gen.url_log st ~count:1200 in
  let live = Queue.create () in
  Array.iter
    (fun url ->
      let id = Dynamic_index.insert idx url in
      Queue.add id live;
      (* rolling window: expire the oldest entries *)
      if Queue.length live > window then ignore (Dynamic_index.delete idx (Queue.pop live)))
    urls;

  Printf.printf "log window: %d URLs, %d symbols, %.2f bits/symbol\n"
    (Dynamic_index.doc_count idx) (Dynamic_index.total_symbols idx)
    (float_of_int (Dynamic_index.space_bits idx) /. float_of_int (Dynamic_index.total_symbols idx));

  (* Substring analytics over the live window. *)
  List.iter
    (fun sub -> Printf.printf "URLs containing %-9S : %d\n" sub (Dynamic_index.count idx sub))
    [ "shop"; "cart"; ".org"; "api"; "https"; "zzz" ];

  (* Which URLs mention "blog"?  Report a few. *)
  let hits = Dynamic_index.search idx "blog" in
  Printf.printf "\"blog\" occurs at %d positions; first documents:\n" (List.length hits);
  List.iteri
    (fun i (d, _off) ->
      if i < 5 then
        match Dynamic_index.extract idx ~doc:d ~off:0 ~len:38 with
        | Some prefix -> Printf.printf "  doc %d: %s...\n" d prefix
        | None ->
          (* short URL: take what is there *)
          Printf.printf "  doc %d\n" d)
    hits
