(* Substring selectivity estimation (the paper's Section 1 motivation,
   via Orlandi-Venturini [38] and the LIKE-predicate literature): a query
   optimizer wants the selectivity of  WHERE col LIKE '%pattern%'  over a
   *changing* table without scanning it.

   With a dynamic compressed index over the column values, selectivity is
   a counting query (Theorem 1): count / total, exact, in microseconds,
   and it stays correct as rows are inserted and deleted.

   Run with:  dune exec examples/selectivity.exe *)

open Dsdg_core
open Dsdg_workload

let () =
  let st = Text_gen.rng 99 in
  let idx = Dynamic_index.create ~sample:4 () in

  (* a "product names" column *)
  let adjectives = [| "small"; "large"; "blue"; "red"; "heavy"; "smart"; "eco" |] in
  let nouns = [| "widget"; "gadget"; "bracket"; "socket"; "cable"; "sensor" |] in
  let row () =
    Printf.sprintf "%s %s %d"
      adjectives.(Random.State.int st (Array.length adjectives))
      nouns.(Random.State.int st (Array.length nouns))
      (Random.State.int st 1000)
  in
  let ids = ref [] in
  for _ = 1 to 3000 do
    ids := Dynamic_index.insert idx (row ()) :: !ids
  done;

  let rows () = Dynamic_index.doc_count idx in
  let selectivity p =
    (* fraction of rows containing the pattern: distinct docs among hits *)
    let seen = Hashtbl.create 64 in
    Dynamic_index.iter_matches idx p ~f:(fun ~doc ~off:_ -> Hashtbl.replace seen doc ());
    float_of_int (Hashtbl.length seen) /. float_of_int (rows ())
  in
  Printf.printf "table: %d rows, %d symbols\n\n" (rows ()) (Dynamic_index.total_symbols idx);
  Printf.printf "%-28s %10s %12s\n" "predicate" "matches" "selectivity";
  List.iter
    (fun p ->
      Printf.printf "LIKE '%%%s%%' %*s %10d %11.1f%%\n" p (max 0 (17 - String.length p)) ""
        (Dynamic_index.count idx p)
        (100. *. selectivity p))
    [ "widget"; "blue"; "smart"; "cke"; "e c"; "zzz" ];

  (* the table churns; estimates stay exact *)
  List.iteri (fun i id -> if i mod 2 = 0 then ignore (Dynamic_index.delete idx id)) !ids;
  for _ = 1 to 500 do
    ignore (Dynamic_index.insert idx (row ()))
  done;
  Printf.printf "\nafter churn (%d rows):\n" (rows ());
  List.iter
    (fun p ->
      Printf.printf "LIKE '%%%s%%' -> %.1f%%\n" p (100. *. selectivity p))
    [ "widget"; "blue"; "zzz" ]
