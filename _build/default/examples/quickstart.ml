(* Quickstart: a dynamic compressed document index in a dozen lines.

   Run with:  dune exec examples/quickstart.exe *)

open Dsdg_core

let () =
  (* A worst-case-update dynamic index over the compressed FM backend. *)
  let idx = Dynamic_index.create ~variant:Dynamic_index.Worst_case () in

  let doc1 = Dynamic_index.insert idx "the quick brown fox jumps over the lazy dog" in
  let doc2 = Dynamic_index.insert idx "pack my box with five dozen liquor jugs" in
  let doc3 = Dynamic_index.insert idx "the five boxing wizards jump quickly" in

  Printf.printf "indexed %d documents (%d symbols) using %s\n"
    (Dynamic_index.doc_count idx) (Dynamic_index.total_symbols idx) (Dynamic_index.describe idx);

  (* Pattern queries report (document id, offset) pairs. *)
  let show p =
    let hits = Dynamic_index.search idx p in
    Printf.printf "%-8s -> %d hit(s):%s\n" (Printf.sprintf "%S" p) (List.length hits)
      (String.concat "" (List.map (fun (d, o) -> Printf.sprintf " (doc %d, off %d)" d o) hits))
  in
  show "quick";
  show "five";
  show "the";
  show "zebra";

  (* Counting without reporting is cheaper. *)
  Printf.printf "count \"jump\" = %d\n" (Dynamic_index.count idx "jump");

  (* Extract any substring of any live document. *)
  (match Dynamic_index.extract idx ~doc:doc2 ~off:8 ~len:3 with
  | Some s -> Printf.printf "doc2[8..10] = %S\n" s
  | None -> assert false);

  (* Deletion is immediate; queries never see deleted documents. *)
  ignore (Dynamic_index.delete idx doc1);
  Printf.printf "after deleting doc %d: count \"the\" = %d, count \"five\" = %d\n" doc1
    (Dynamic_index.count idx "the") (Dynamic_index.count idx "five");
  ignore doc3;

  Printf.printf "space: %d bits (%.2f bits/symbol)\n" (Dynamic_index.space_bits idx)
    (float_of_int (Dynamic_index.space_bits idx) /. float_of_int (Dynamic_index.total_symbols idx))
