(* Library management (the paper's name for the dynamic indexing
   problem): drive a document collection through a mixed
   insert/delete/search/count stream and show the sub-collection
   structure doing its job -- geometric sizes, locked copies, background
   rebuilds, lazy deletions.

   Run with:  dune exec examples/library_mgmt.exe *)

open Dsdg_core
open Dsdg_workload

module T2 = Transform2.Make (Fm_static)

let () =
  let st = Text_gen.rng 11 in
  let t = T2.create ~sample:4 ~tau:8 () in
  let live_ids = ref [] in
  let nlive = ref 0 in

  let doc_gen () = Text_gen.english_like st ~len:(20 + Random.State.int st 200) in
  let pattern_gen () =
    Text_gen.words.(Random.State.int st (Array.length Text_gen.words))
  in
  let ops =
    Query_gen.stream st ~mix:Query_gen.default_mix ~ops:3000 ~doc_gen ~pattern_gen
  in
  let counters =
    Query_gen.run st ops
      ~insert:(fun text ->
        let id = T2.insert t text in
        live_ids := id :: !live_ids;
        incr nlive)
      ~delete_random:(fun () ->
        match !live_ids with
        | [] -> false
        | ids ->
          let k = Random.State.int st !nlive in
          let id = List.nth ids k in
          live_ids := List.filter (fun i -> i <> id) ids;
          decr nlive;
          T2.delete t id)
      ~search:(fun p ->
        let c = ref 0 in
        T2.search t p ~f:(fun ~doc:_ ~off:_ -> incr c);
        !c)
      ~count:(fun p -> T2.count t p)
  in

  Printf.printf "stream: %d inserts, %d deletes, %d searches, %d counts; %d matches touched\n"
    counters.Query_gen.inserts counters.Query_gen.deletes counters.Query_gen.searches
    counters.Query_gen.counts counters.Query_gen.matches_reported;
  Printf.printf "collection: %d documents, %d live symbols\n" (T2.doc_count t) (T2.total_symbols t);

  let s = T2.stats t in
  Printf.printf
    "machinery: %d background jobs started, %d completed, %d forced, %d sync merges, %d top cleanings, %d restructures\n"
    s.Transform2.jobs_started s.Transform2.jobs_completed s.Transform2.forced
    s.Transform2.sync_merges s.Transform2.top_cleanings s.Transform2.restructures;

  Printf.printf "\nsub-collection census (live/dead symbols):\n";
  List.iter
    (fun (name, live, dead) -> Printf.printf "  %-7s live=%-7d dead=%d\n" name live dead)
    (T2.census t);

  Printf.printf "\nrecent structural events:\n";
  List.iteri (fun i ev -> if i < 10 then Printf.printf "  %s\n" ev) (T2.events t)
