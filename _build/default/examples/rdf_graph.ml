(* RDF-style triples in dynamic compact structures (Section 5): the
   triple set lives in per-predicate compact digraphs plus two binary
   relations, supporting exactly the paper's example queries:
   - all triples in which x occurs as a subject;
   - given x and p, all triples with subject x and predicate p;
   - all triples in which y occurs as an object.

   Run with:  dune exec examples/rdf_graph.exe *)

open Dsdg_binrel
open Dsdg_workload

let pred_names = [| "knows"; "likes"; "cites"; "links"; "owns"; "near"; "follows"; "reads" |]

let () =
  let st = Random.State.make [| 77 |] in
  let ts = Triple_store.create () in

  let triples = Graph_gen.rdf_triples st ~subjects:300 ~predicates:8 ~count:3000 in
  Array.iter (fun (s, p, o) -> ignore (Triple_store.add ts ~s ~p ~o)) triples;
  Printf.printf "loaded %d distinct triples (of %d raw) in %d bits\n"
    (Triple_store.triple_count ts) (Array.length triples) (Triple_store.space_bits ts);

  let x = 42 in
  (* "enumerate all the triples in which x occurs as a subject" *)
  let subj = Triple_store.triples_with_subject ts x in
  Printf.printf "\ntriples with subject %d: %d, e.g.\n" x (List.length subj);
  List.iteri
    (fun i (s, p, o) -> if i < 5 then Printf.printf "  (%d, %s, %d)\n" s pred_names.(p) o)
    subj;

  (* "given x and p, enumerate all triples in which x occurs as a subject
     and p as a predicate" *)
  let sp = Triple_store.triples_with_subject_predicate ts x 2 in
  Printf.printf "\ntriples (%d, %s, ?): %d:%s\n" x pred_names.(2) (List.length sp)
    (String.concat "" (List.map (fun (_, _, o) -> Printf.sprintf " %d" o) sp));

  (* reverse direction *)
  Printf.printf "\ntriples with object %d: %d (across predicates:%s)\n" x
    (Triple_store.count_with_object ts x)
    (String.concat ""
       (List.map (fun p -> " " ^ pred_names.(p)) (Triple_store.predicates_of_object ts x)));

  (* counting per predicate *)
  Printf.printf "\ntriples per predicate:\n";
  Array.iteri
    (fun p name -> Printf.printf "  %-8s %d\n" name (Triple_store.count_with_predicate ts p))
    pred_names;

  (* dynamic: retract everything subject 42 asserted *)
  List.iter (fun (s, p, o) -> ignore (Triple_store.remove ts ~s ~p ~o))
    (Triple_store.triples_with_subject ts x);
  Printf.printf "\nafter retracting subject %d: %d triples remain, count_with_subject = %d\n" x
    (Triple_store.triple_count ts) (Triple_store.count_with_subject ts x)
