lib/delbits/reporter.mli: Dsdg_bits
