lib/delbits/fenwick.mli:
