lib/delbits/reporter.ml: Array Bitvec Dsdg_bits Fenwick List Popcount
