lib/delbits/fenwick.ml: Array
