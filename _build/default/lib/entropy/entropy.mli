(** Empirical entropy of symbol sequences (Manzini 2001), used for the
    space accounting in EXPERIMENTS.md. *)

(** Zero-order empirical entropy, bits per symbol. *)
val h0 : string -> float

val h0_ints : int array -> float

(** [h0_of_counts counts n]: entropy of a distribution given symbol
    counts and total. *)
val h0_of_counts : int array -> int -> float

(** k-th order empirical entropy: length-weighted average H0 of each
    k-gram context class. [hk ~k:0] = [h0]. *)
val hk : k:int -> string -> float

(** Entropy of a binary sequence with [ones] ones out of [len]. *)
val h0_binary : ones:int -> len:int -> float
