(* Empirical entropy of symbol sequences.

   [h0 s] is the zero-order empirical entropy in bits per symbol;
   [hk ~k s] is the k-th order empirical entropy (the lower bound for any
   statistical compressor that encodes each symbol from its k-symbol
   context -- Manzini 2001).  Used for the space accounting reported in
   EXPERIMENTS.md. *)

let log2 x = log x /. log 2.

let h0_of_counts counts n =
  if n = 0 then 0.0
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. float_of_int n in
          acc -. (p *. log2 p))
      0.0 counts

let h0_ints (s : int array) =
  let n = Array.length s in
  if n = 0 then 0.0
  else begin
    let m = Array.fold_left max 0 s in
    let counts = Array.make (m + 1) 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) s;
    h0_of_counts counts n
  end

let h0 (s : string) =
  let counts = Array.make 256 0 in
  String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) s;
  h0_of_counts counts (String.length s)

(* k-th order: group symbols by their preceding k-gram context; Hk is the
   length-weighted average of the H0 of each context class. *)
let hk ~k (s : string) =
  if k = 0 then h0 s
  else begin
    let n = String.length s in
    if n <= k then 0.0
    else begin
      let ctxs : (string, (char, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 97 in
      for i = k to n - 1 do
        let ctx = String.sub s (i - k) k in
        let tbl =
          match Hashtbl.find_opt ctxs ctx with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 7 in
            Hashtbl.add ctxs ctx tbl;
            tbl
        in
        let c = s.[i] in
        Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c))
      done;
      let total = ref 0.0 in
      Hashtbl.iter
        (fun _ tbl ->
          let nc = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0 in
          let counts = Array.make 256 0 in
          Hashtbl.iter (fun ch c -> counts.(Char.code ch) <- c) tbl;
          total := !total +. (float_of_int nc *. h0_of_counts counts nc))
        ctxs;
      !total /. float_of_int (n - k)
    end
  end

(* Entropy of a {0,1} sequence given the count of ones. *)
let h0_binary ~ones ~len =
  if len = 0 || ones = 0 || ones = len then 0.0
  else
    let p = float_of_int ones /. float_of_int len in
    -.((p *. log2 p) +. ((1. -. p) *. log2 (1. -. p)))
