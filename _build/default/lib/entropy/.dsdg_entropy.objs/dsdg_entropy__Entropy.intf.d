lib/entropy/entropy.mli:
