lib/entropy/entropy.ml: Array Char Hashtbl Option String
