(* Canonical Huffman code construction from symbol frequencies.

   Codes are returned MSB-first as (bits, length) pairs; the code tree is
   also exposed so that Huffman_wavelet can shape itself on it. *)

type tree =
  | Sym of int
  | Branch of tree * tree

(* Simple binary min-heap over (weight, tiebreak, tree). *)
module Heap = struct
  type elt = int * int * tree
  type t = { mutable a : elt array; mutable n : int }

  let create () = { a = Array.make 16 (0, 0, Sym 0); n = 0 }
  let less (w1, t1, _) (w2, t2, _) = w1 < w2 || (w1 = w2 && t1 < t2)

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) h.a.(0) in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.n && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  let size h = h.n
end

(* Build the Huffman tree for symbols with freqs.(c) > 0.  A single-symbol
   alphabet yields a one-bit code (Branch (Sym c, Sym c) would be wasteful;
   we special-case it with a degenerate branch so every code has length
   >= 1 and the wavelet shape stays a proper tree). *)
let build_tree (freqs : int array) : tree option =
  let h = Heap.create () in
  let tie = ref 0 in
  Array.iteri
    (fun c f ->
      if f > 0 then begin
        Heap.push h (f, !tie, Sym c);
        incr tie
      end)
    freqs;
  if Heap.size h = 0 then None
  else begin
    if Heap.size h = 1 then begin
      (* degenerate: pair the symbol with itself on the right of a branch *)
      let (f, _, t) = Heap.pop h in
      ignore f;
      match t with
      | Sym c -> Some (Branch (Sym c, Sym c))
      | Branch _ -> assert false
    end
    else begin
      while Heap.size h > 1 do
        let (f1, _, t1) = Heap.pop h in
        let (f2, _, t2) = Heap.pop h in
        Heap.push h (f1 + f2, !tie, Branch (t1, t2));
        incr tie
      done;
      let (_, _, t) = Heap.pop h in
      Some t
    end
  end

type code = { bits : int; len : int }

(* codes.(c) is meaningful only for symbols with non-zero frequency. *)
let codes_of_tree ~sigma tree =
  let codes = Array.make sigma { bits = 0; len = 0 } in
  let rec go t bits len =
    match t with
    | Sym c -> if codes.(c).len = 0 then codes.(c) <- { bits; len }
    | Branch (l, r) ->
      go l (bits lsl 1) (len + 1);
      go r ((bits lsl 1) lor 1) (len + 1)
  in
  go tree 0 0;
  codes

let codes ~sigma (freqs : int array) =
  match build_tree freqs with
  | None -> Array.make sigma { bits = 0; len = 0 }
  | Some t -> codes_of_tree ~sigma t

(* Average code length in bits per symbol (equals within 1 bit of H0). *)
let average_length (freqs : int array) (codes : code array) =
  let total = Array.fold_left ( + ) 0 freqs in
  if total = 0 then 0.0
  else begin
    let sum = ref 0 in
    Array.iteri (fun c f -> sum := !sum + (f * codes.(c).len)) freqs;
    float_of_int !sum /. float_of_int total
  end
