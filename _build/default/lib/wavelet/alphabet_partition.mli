(** Alphabet-partitioned compressed sequence (Barbay et al. [3]; built
    exactly as the paper's Appendix A.6 describes): symbols grouped by
    frequency, one small-alphabet subsequence per group plus the group
    index sequence. Space nH0 + o(nH0) + O(sigma log n); same interface
    as {!Huffman_wavelet}. *)

type t

val build : ?tick:(unit -> unit) -> sigma:int -> int array -> t
val length : t -> int
val sigma : t -> int
val access : t -> int -> int

(** Occurrences of [c] in [0, p); 0 for absent symbols. *)
val rank : t -> int -> int -> int

(** Raises [Not_found] past the last occurrence / for absent symbols. *)
val select : t -> int -> int -> int

val count : t -> int -> int
val rank_range : t -> int -> int -> int -> int
val to_array : t -> int array
val space_bits : t -> int
