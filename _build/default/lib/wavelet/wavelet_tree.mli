(** Balanced binary wavelet tree over an integer alphabet [[0, sigma)]:
    access / rank / select in O(log sigma). *)

type t

(** [build ~sigma seq]; symbols must lie in [[0, sigma)]. [tick] is
    charged once per symbol per level during construction. *)
val build : ?tick:(unit -> unit) -> sigma:int -> int array -> t

val length : t -> int
val sigma : t -> int

(** [access t i] is the [i]-th symbol. *)
val access : t -> int -> int

(** [rank t c i] counts occurrences of [c] in positions [[0, i)]. *)
val rank : t -> int -> int -> int

(** [select t c k] is the position of the [k]-th (0-based) occurrence of
    [c]. Raises [Not_found] if there are at most [k]. *)
val select : t -> int -> int -> int

(** Occurrences of [c] in [[l, r)]. *)
val rank_range : t -> int -> int -> int -> int

val count : t -> int -> int
val space_bits : t -> int
val to_array : t -> int array
