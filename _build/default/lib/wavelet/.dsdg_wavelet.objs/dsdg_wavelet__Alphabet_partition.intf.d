lib/wavelet/alphabet_partition.mli:
