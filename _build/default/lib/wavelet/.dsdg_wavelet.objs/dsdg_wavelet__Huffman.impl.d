lib/wavelet/huffman.ml: Array
