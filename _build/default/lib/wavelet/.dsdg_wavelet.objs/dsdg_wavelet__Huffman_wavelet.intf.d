lib/wavelet/huffman_wavelet.mli:
