lib/wavelet/wavelet_tree.ml: Array Bitvec Dsdg_bits Rank_select
