lib/wavelet/alphabet_partition.ml: Array Dsdg_bits Int_vec Wavelet_tree
