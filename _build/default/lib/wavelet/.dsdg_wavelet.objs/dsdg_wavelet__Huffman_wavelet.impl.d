lib/wavelet/huffman_wavelet.ml: Array Bitvec Dsdg_bits Huffman Rank_select
