lib/wavelet/wavelet_tree.mli:
