(* Alphabet partitioning (Barbay-Gagie-Navarro-Nekrich [3]): the
   compressed sequence representation whose construction the paper walks
   through in Appendix A.6.

   Symbols are grouped by frequency: group g holds the symbols occurring
   between 2^g and 2^{g+1} - 1 times.  The structure stores
   - G: the per-position group index sequence ("Cs(G)" in A.6), and
   - for each group, the subsequence induced by its symbols over the
     group's small effective alphabet.

   Queries reduce to one operation on G plus one on the group
   subsequence; space is nH0 + o(nH0) + O(sigma log n) because symbols of
   similar frequency share a group whose alphabet entropy matches their
   code length.  Functionally interchangeable with {!Huffman_wavelet};
   kept as the faithful realization of A.6 and benched against it. *)

open Dsdg_bits

type t = {
  len : int;
  sigma : int;
  g_seq : Wavelet_tree.t; (* position -> group *)
  groups : Wavelet_tree.t array; (* group -> induced subsequence over local alphabet *)
  group_of : Int_vec.t; (* symbol -> group *)
  local_of : Int_vec.t; (* symbol -> index within its group's alphabet *)
  global_of : int array array; (* group -> local index -> symbol *)
}

let length t = t.len
let sigma t = t.sigma

let build ?(tick = fun () -> ()) ~sigma (seq : int array) : t =
  Array.iter
    (fun c -> if c < 0 || c >= sigma then invalid_arg "Alphabet_partition.build: symbol out of range")
    seq;
  let n = Array.length seq in
  let freq = Array.make (max 1 sigma) 0 in
  Array.iter (fun c -> freq.(c) <- freq.(c) + 1) seq;
  let group_of_freq f =
    (* 0 unused for absent symbols; group = floor(log2 f) *)
    let rec go g x = if x <= 1 then g else go (g + 1) (x / 2) in
    go 0 f
  in
  let ngroups = 1 + group_of_freq (max 1 n) in
  let group_of = Int_vec.create ~width:(max 1 (Int_vec.width_for ngroups)) (max 1 sigma) in
  let local_of = Int_vec.create ~width:(max 1 (Int_vec.width_for (max 1 sigma))) (max 1 sigma) in
  let members = Array.make ngroups [] in
  for c = sigma - 1 downto 0 do
    if freq.(c) > 0 then begin
      let g = group_of_freq freq.(c) in
      Int_vec.set group_of c g;
      members.(g) <- c :: members.(g)
    end
  done;
  let global_of = Array.map Array.of_list members in
  Array.iteri
    (fun _g syms -> Array.iteri (fun local c -> Int_vec.set local_of c local) syms)
    global_of;
  (* group sequence + per-group subsequences *)
  let g_arr = Array.make n 0 in
  let subs = Array.make ngroups [] in
  for p = n - 1 downto 0 do
    tick ();
    let c = seq.(p) in
    let g = Int_vec.get group_of c in
    g_arr.(p) <- g;
    subs.(g) <- Int_vec.get local_of c :: subs.(g)
  done;
  let g_seq = Wavelet_tree.build ~tick ~sigma:(max 1 ngroups) g_arr in
  let groups =
    Array.mapi
      (fun g sub ->
        let alpha = max 1 (Array.length global_of.(g)) in
        Wavelet_tree.build ~tick ~sigma:alpha (Array.of_list sub))
      subs
  in
  { len = n; sigma; g_seq; groups; group_of; local_of; global_of }

let access t p =
  if p < 0 || p >= t.len then invalid_arg "Alphabet_partition.access";
  let g = Wavelet_tree.access t.g_seq p in
  let k = Wavelet_tree.rank t.g_seq g p in
  t.global_of.(g).(Wavelet_tree.access t.groups.(g) k)

(* Occurrences of [c] in positions [0, p). *)
let rank t c p =
  if p < 0 || p > t.len then invalid_arg "Alphabet_partition.rank";
  if c < 0 || c >= t.sigma then 0
  else begin
    let g = Int_vec.get t.group_of c in
    if g >= Array.length t.groups || Array.length t.global_of.(g) = 0 then 0
    else begin
      let local = Int_vec.get t.local_of c in
      if t.global_of.(g).(local) <> c then 0 (* absent symbol *)
      else begin
        let k = Wavelet_tree.rank t.g_seq g p in
        Wavelet_tree.rank t.groups.(g) local k
      end
    end
  end

(* Position of the [j]-th (0-based) occurrence of [c]. *)
let select t c j =
  if j < 0 then invalid_arg "Alphabet_partition.select";
  if c < 0 || c >= t.sigma then raise Not_found;
  let g = Int_vec.get t.group_of c in
  if g >= Array.length t.groups || Array.length t.global_of.(g) = 0 then raise Not_found;
  let local = Int_vec.get t.local_of c in
  if t.global_of.(g).(local) <> c then raise Not_found;
  let k = Wavelet_tree.select t.groups.(g) local j in
  Wavelet_tree.select t.g_seq g k

let count t c = rank t c t.len
let rank_range t c l r = rank t c r - rank t c l
let to_array t = Array.init t.len (access t)

let space_bits t =
  Wavelet_tree.space_bits t.g_seq
  + Array.fold_left (fun a g -> a + Wavelet_tree.space_bits g) 0 t.groups
  + Int_vec.space_bits t.group_of + Int_vec.space_bits t.local_of
  + Array.fold_left (fun a g -> a + (Array.length g * 63)) 0 t.global_of
  + (3 * 63)
