(* Huffman-shaped wavelet tree: a wavelet tree whose shape follows the
   Huffman code of the sequence, so total bit-vector length is
   n (H0 + 1) + o(..) bits.  This is the zero-order compressed sequence
   representation backing the string S of binary relations (Section 5) and
   the BWT of the FM-index. *)

open Dsdg_bits

type node =
  | Leaf of int
  | Node of {
      bv : Rank_select.t;
      left : node;
      right : node;
    }

type t = {
  root : node option; (* None iff the sequence is empty *)
  len : int;
  sigma : int;
  codes : Huffman.code array;
}

let length t = t.len
let sigma t = t.sigma

let rec build_node (seq : int array) (codes : Huffman.code array) depth tick =
  let n = Array.length seq in
  (* all symbols in [seq] share the same code prefix of length [depth] *)
  let c0 = seq.(0) in
  if codes.(c0).len = depth then Leaf c0
  else begin
    let bit_of c =
      let code = codes.(c) in
      (code.Huffman.bits lsr (code.Huffman.len - 1 - depth)) land 1
    in
    let bv = Bitvec.create n in
    let nleft = ref 0 in
    for i = 0 to n - 1 do
      tick ();
      if bit_of seq.(i) = 1 then Bitvec.set bv i else incr nleft
    done;
    let left_seq = Array.make (max 1 !nleft) 0 in
    let right_seq = Array.make (max 1 (n - !nleft)) 0 in
    let li = ref 0 and ri = ref 0 in
    for i = 0 to n - 1 do
      if bit_of seq.(i) = 1 then begin
        right_seq.(!ri) <- seq.(i);
        incr ri
      end
      else begin
        left_seq.(!li) <- seq.(i);
        incr li
      end
    done;
    (* A Huffman tree has no unary nodes, so both sides are non-empty --
       except for the degenerate single-symbol alphabet where the code is
       Branch(Sym c, Sym c) and one side may be empty.  Guard for that. *)
    let left =
      if !li = 0 then Leaf c0
      else build_node (Array.sub left_seq 0 !li) codes (depth + 1) tick
    in
    let right =
      if !ri = 0 then Leaf c0
      else build_node (Array.sub right_seq 0 !ri) codes (depth + 1) tick
    in
    Node { bv = Rank_select.build bv; left; right }
  end

let build ?(tick = fun () -> ()) ~sigma (seq : int array) =
  Array.iter
    (fun c -> if c < 0 || c >= sigma then invalid_arg "Huffman_wavelet.build: symbol out of range")
    seq;
  let freqs = Array.make sigma 0 in
  Array.iter (fun c -> freqs.(c) <- freqs.(c) + 1) seq;
  let codes = Huffman.codes ~sigma freqs in
  let root = if Array.length seq = 0 then None else Some (build_node seq codes 0 tick) in
  { root; len = Array.length seq; sigma; codes }

let access t i =
  if i < 0 || i >= t.len then invalid_arg "Huffman_wavelet.access";
  let rec go node i =
    match node with
    | Leaf c -> c
    | Node { bv; left; right } ->
      if Rank_select.get bv i then go right (Rank_select.rank1 bv i)
      else go left (Rank_select.rank0 bv i)
  in
  match t.root with
  | None -> invalid_arg "Huffman_wavelet.access: empty"
  | Some root -> go root i

let rank t c i =
  if i < 0 || i > t.len then invalid_arg "Huffman_wavelet.rank";
  if c < 0 || c >= t.sigma || t.codes.(c).Huffman.len = 0 then 0
  else begin
    let code = t.codes.(c) in
    let rec go node depth i =
      if i = 0 then 0
      else
        match node with
        | Leaf _ -> i
        | Node { bv; left; right } ->
          let bit = (code.Huffman.bits lsr (code.Huffman.len - 1 - depth)) land 1 in
          if bit = 1 then go right (depth + 1) (Rank_select.rank1 bv i)
          else go left (depth + 1) (Rank_select.rank0 bv i)
    in
    match t.root with None -> 0 | Some root -> go root 0 i
  end

let select t c k =
  if k < 0 then invalid_arg "Huffman_wavelet.select";
  if c < 0 || c >= t.sigma || t.codes.(c).Huffman.len = 0 then raise Not_found;
  let code = t.codes.(c) in
  let rec go node depth k =
    match node with
    | Leaf _ -> k
    | Node { bv; left; right } ->
      let bit = (code.Huffman.bits lsr (code.Huffman.len - 1 - depth)) land 1 in
      if bit = 1 then begin
        let pos = go right (depth + 1) k in
        if pos >= Rank_select.ones bv then raise Not_found;
        Rank_select.select1 bv pos
      end
      else begin
        let pos = go left (depth + 1) k in
        if pos >= Rank_select.zeros bv then raise Not_found;
        Rank_select.select0 bv pos
      end
  in
  match t.root with
  | None -> raise Not_found
  | Some root ->
    let pos = go root 0 k in
    if pos >= t.len then raise Not_found else pos

let count t c = rank t c t.len
let rank_range t c l r = rank t c r - rank t c l

let space_bits t =
  let rec go = function
    | Leaf _ -> 63
    | Node { bv; left; right } -> Rank_select.space_bits bv + go left + go right + (3 * 63)
  in
  (match t.root with None -> 0 | Some r -> go r) + (Array.length t.codes * 2 * 63) + (3 * 63)

let to_array t = Array.init t.len (access t)
