(* Balanced binary wavelet tree over an integer alphabet [0, sigma).

   Supports access / rank / select in O(log sigma) time using one
   rank/select bit vector per internal node.  This is the static sequence
   representation used for the BWT inside the FM-index (the role played by
   the structures of Grossi et al. / Ferragina et al. in the paper). *)

open Dsdg_bits

type node =
  | Leaf of int (* symbol *)
  | Node of {
      bv : Rank_select.t; (* bit i = 1 iff i-th sequence symbol goes right *)
      lo : int;
      hi : int; (* alphabet sub-range [lo, hi) *)
      left : node;
      right : node;
    }

type t = {
  root : node;
  len : int;
  sigma : int;
}

let length t = t.len
let sigma t = t.sigma

let rec build_node (seq : int array) lo hi tick =
  if hi - lo = 1 then Leaf lo
  else begin
    let mid = (lo + hi) / 2 in
    let n = Array.length seq in
    let bv = Bitvec.create n in
    let nleft = ref 0 in
    for i = 0 to n - 1 do
      tick ();
      if seq.(i) >= mid then Bitvec.set bv i else incr nleft
    done;
    let left_seq = Array.make !nleft 0 in
    let right_seq = Array.make (n - !nleft) 0 in
    let li = ref 0 and ri = ref 0 in
    for i = 0 to n - 1 do
      if seq.(i) >= mid then begin
        right_seq.(!ri) <- seq.(i);
        incr ri
      end
      else begin
        left_seq.(!li) <- seq.(i);
        incr li
      end
    done;
    Node
      {
        bv = Rank_select.build bv;
        lo;
        hi;
        left = build_node left_seq lo mid tick;
        right = build_node right_seq mid hi tick;
      }
  end

let build ?(tick = fun () -> ()) ~sigma (seq : int array) =
  if sigma < 1 then invalid_arg "Wavelet_tree.build: sigma < 1";
  Array.iter (fun c -> if c < 0 || c >= sigma then invalid_arg "Wavelet_tree.build: symbol out of range") seq;
  { root = build_node seq 0 sigma tick; len = Array.length seq; sigma }

let access t i =
  if i < 0 || i >= t.len then invalid_arg "Wavelet_tree.access";
  let rec go node i =
    match node with
    | Leaf c -> c
    | Node { bv; left; right; _ } ->
      if Rank_select.get bv i then go right (Rank_select.rank1 bv i)
      else go left (Rank_select.rank0 bv i)
  in
  go t.root i

(* Number of occurrences of symbol [c] in positions [0, i). *)
let rank t c i =
  if i < 0 || i > t.len then invalid_arg "Wavelet_tree.rank";
  if c < 0 || c >= t.sigma then 0
  else begin
    let rec go node i =
      if i = 0 then 0
      else
        match node with
        | Leaf _ -> i
        | Node { bv; lo; hi; left; right } ->
          let mid = (lo + hi) / 2 in
          if c >= mid then go right (Rank_select.rank1 bv i)
          else go left (Rank_select.rank0 bv i)
    in
    go t.root i
  end

(* Position of the [k]-th (0-based) occurrence of [c]; raises Not_found if
   there are at most [k] occurrences. *)
let select t c k =
  if k < 0 then invalid_arg "Wavelet_tree.select";
  if c < 0 || c >= t.sigma then raise Not_found;
  let rec go node k =
    match node with
    | Leaf _ -> k
    | Node { bv; lo; hi; left; right } ->
      let mid = (lo + hi) / 2 in
      if c >= mid then begin
        let pos = go right k in
        if pos >= Rank_select.ones bv then raise Not_found;
        Rank_select.select1 bv pos
      end
      else begin
        let pos = go left k in
        if pos >= Rank_select.zeros bv then raise Not_found;
        Rank_select.select0 bv pos
      end
  in
  let pos = go t.root k in
  if pos >= t.len then raise Not_found else pos

(* rank over a half-open range: occurrences of c in [l, r). *)
let rank_range t c l r = rank t c r - rank t c l

let count t c = rank t c t.len

let space_bits t =
  let rec go = function
    | Leaf _ -> 63
    | Node { bv; left; right; _ } -> Rank_select.space_bits bv + go left + go right + (4 * 63)
  in
  go t.root + (3 * 63)

let to_array t = Array.init t.len (access t)
