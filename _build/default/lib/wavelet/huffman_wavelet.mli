(** Huffman-shaped wavelet tree: total bit-vector length n (H0 + 1), the
    zero-order compressed sequence representation backing the FM-index
    BWT and the binary-relation string S (Section 5). Same interface as
    {!Wavelet_tree} with per-operation cost proportional to the symbol's
    code length. *)

type t

val build : ?tick:(unit -> unit) -> sigma:int -> int array -> t
val length : t -> int
val sigma : t -> int
val access : t -> int -> int

(** [rank t c i]: occurrences of [c] in [[0, i)]; 0 for symbols that do
    not occur in the sequence. *)
val rank : t -> int -> int -> int

(** Raises [Not_found] past the last occurrence (or for absent
    symbols). *)
val select : t -> int -> int -> int

val rank_range : t -> int -> int -> int -> int
val count : t -> int -> int
val space_bits : t -> int
val to_array : t -> int array
