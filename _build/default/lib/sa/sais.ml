(* Linear-time suffix array construction (SA-IS, Nong-Zhang-Chan 2009).

   [raw t sigma] computes the suffix array of [t], which must end with a
   unique, smallest sentinel (conventionally 0) and contain values in
   [0, sigma).  [suffix_array s] is the user entry point: it accepts any
   non-negative int array, appends a sentinel internally, and returns the
   order of the suffixes of [s] itself.

   The optional [tick] callback is invoked once per processed position in
   the main loops; Transformation 2 uses it to run construction inside an
   incremental background job with bounded per-update work. *)

let no_tick () = ()

(* Induced sort: given LMS positions already placed (or to place), fill in
   L-type then S-type suffixes. *)
let rec raw ?(tick = no_tick) (t : int array) (sigma : int) : int array =
  let n = Array.length t in
  if n = 0 then [||]
  else if n = 1 then [| 0 |]
  else begin
    let sa = Array.make n (-1) in
    (* stype.(i) = true iff suffix i is S-type *)
    let stype = Array.make n false in
    stype.(n - 1) <- true;
    for i = n - 2 downto 0 do
      tick ();
      stype.(i) <- t.(i) < t.(i + 1) || (t.(i) = t.(i + 1) && stype.(i + 1))
    done;
    let is_lms i = i > 0 && stype.(i) && not stype.(i - 1) in
    let bucket_sizes = Array.make sigma 0 in
    Array.iter (fun c -> bucket_sizes.(c) <- bucket_sizes.(c) + 1) t;
    let bucket_heads () =
      let b = Array.make sigma 0 in
      let acc = ref 0 in
      for c = 0 to sigma - 1 do
        b.(c) <- !acc;
        acc := !acc + bucket_sizes.(c)
      done;
      b
    in
    let bucket_tails () =
      let b = Array.make sigma 0 in
      let acc = ref 0 in
      for c = 0 to sigma - 1 do
        acc := !acc + bucket_sizes.(c);
        b.(c) <- !acc
      done;
      b
    in
    let induce () =
      (* L-type left-to-right *)
      let heads = bucket_heads () in
      for i = 0 to n - 1 do
        tick ();
        let j = sa.(i) in
        if j > 0 && not stype.(j - 1) then begin
          let c = t.(j - 1) in
          sa.(heads.(c)) <- j - 1;
          heads.(c) <- heads.(c) + 1
        end
      done;
      (* S-type right-to-left *)
      let tails = bucket_tails () in
      for i = n - 1 downto 0 do
        tick ();
        let j = sa.(i) in
        if j > 0 && stype.(j - 1) then begin
          let c = t.(j - 1) in
          tails.(c) <- tails.(c) - 1;
          sa.(tails.(c)) <- j - 1
        end
      done
    in
    (* Step 1: place LMS suffixes at bucket tails in text order, induce. *)
    let tails = bucket_tails () in
    for i = n - 1 downto 0 do
      tick ();
      if is_lms i then begin
        let c = t.(i) in
        tails.(c) <- tails.(c) - 1;
        sa.(tails.(c)) <- i
      end
    done;
    induce ();
    (* Step 2: name LMS substrings in the order they appear in sa. *)
    let lms_count = ref 0 in
    for i = 0 to n - 1 do
      if is_lms i then incr lms_count
    done;
    let lms_count = !lms_count in
    if lms_count > 0 then begin
      (* Collect sorted LMS positions. *)
      let sorted_lms = Array.make lms_count 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        tick ();
        if sa.(i) >= 0 && is_lms sa.(i) then begin
          sorted_lms.(!k) <- sa.(i);
          incr k
        end
      done;
      (* Assign names by comparing consecutive LMS substrings. *)
      let names = Array.make n (-1) in
      let lms_substring_equal a b =
        (* compare LMS substrings starting at a and b *)
        if a = b then true
        else begin
          let rec go d =
            let ia = a + d and ib = b + d in
            if ia >= n || ib >= n then false
            else if t.(ia) <> t.(ib) || stype.(ia) <> stype.(ib) then false
            else if d > 0 && (is_lms ia || is_lms ib) then is_lms ia && is_lms ib
            else go (d + 1)
          in
          go 0
        end
      in
      let name = ref 0 in
      names.(sorted_lms.(0)) <- 0;
      for i = 1 to lms_count - 1 do
        tick ();
        if not (lms_substring_equal sorted_lms.(i - 1) sorted_lms.(i)) then incr name;
        names.(sorted_lms.(i)) <- !name
      done;
      let distinct = !name + 1 in
      (* Build the reduced problem: names of LMS positions in text order. *)
      let lms_in_order = Array.make lms_count 0 in
      let reduced = Array.make lms_count 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if is_lms i then begin
          lms_in_order.(!k) <- i;
          reduced.(!k) <- names.(i);
          incr k
        end
      done;
      let reduced_sa =
        if distinct = lms_count then begin
          (* names already unique: direct inverse *)
          let rsa = Array.make lms_count 0 in
          Array.iteri (fun i nm -> rsa.(nm) <- i) reduced;
          rsa
        end
        else raw ~tick reduced distinct
      in
      (* Step 3: place LMS suffixes in their final order and re-induce. *)
      Array.fill sa 0 n (-1);
      let tails = bucket_tails () in
      for i = lms_count - 1 downto 0 do
        tick ();
        let j = lms_in_order.(reduced_sa.(i)) in
        let c = t.(j) in
        tails.(c) <- tails.(c) - 1;
        sa.(tails.(c)) <- j
      done;
      induce ()
    end;
    sa
  end

(* Suffix array of an arbitrary non-negative int array (no sentinel
   required; one is appended internally and dropped from the result). *)
let suffix_array ?tick (s : int array) : int array =
  let n = Array.length s in
  if n = 0 then [||]
  else begin
    let sigma = ref 0 in
    let t = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      if s.(i) < 0 then invalid_arg "Sais.suffix_array: negative symbol";
      t.(i) <- s.(i) + 1;
      if t.(i) >= !sigma then sigma := t.(i) + 1
    done;
    let sa = raw ?tick t !sigma in
    (* sa.(0) = n (the sentinel suffix); drop it *)
    Array.sub sa 1 n
  end

let suffix_array_of_string ?tick (s : string) : int array =
  suffix_array ?tick (Array.init (String.length s) (fun i -> Char.code s.[i]))

(* Quadratic reference implementation used by the test suite. *)
let naive (s : int array) : int array =
  let n = Array.length s in
  let idx = Array.init n (fun i -> i) in
  let cmp i j =
    let rec go i j =
      if i >= n && j >= n then 0
      else if i >= n then -1
      else if j >= n then 1
      else if s.(i) <> s.(j) then compare s.(i) s.(j)
      else go (i + 1) (j + 1)
    in
    go i j
  in
  Array.sort cmp idx;
  idx
