(* Burrows-Wheeler transform and LF-mapping utilities.

   Conventions: the text [t] is an int array whose last symbol is a unique
   smallest sentinel (0).  [sa] is its full suffix array (including the
   sentinel suffix).  The BWT is then bwt.(i) = t.((sa.(i) + n - 1) mod n). *)

let of_sa (t : int array) (sa : int array) : int array =
  let n = Array.length t in
  if Array.length sa <> n then invalid_arg "Bwt.of_sa: length mismatch";
  Array.init n (fun i ->
      let j = sa.(i) in
      if j = 0 then t.(n - 1) else t.(j - 1))

(* Build text+sentinel from a plain symbol array with values >= 0
   (symbols get shifted by +1).  Returns (t, sigma). *)
let with_sentinel (s : int array) : int array * int =
  let n = Array.length s in
  let t = Array.make (n + 1) 0 in
  let sigma = ref 1 in
  for i = 0 to n - 1 do
    t.(i) <- s.(i) + 1;
    if t.(i) >= !sigma then sigma := t.(i) + 1
  done;
  (t, !sigma)

let transform ?tick (s : int array) : int array =
  let t, sigma = with_sentinel s in
  let sa = Sais.raw ?tick t sigma in
  of_sa t sa

(* Counts-before array: c_before.(c) = number of symbols in [bwt] that are
   strictly smaller than [c]. *)
let counts_before (bwt : int array) (sigma : int) : int array =
  let counts = Array.make sigma 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) bwt;
  let before = Array.make (sigma + 1) 0 in
  for c = 1 to sigma do
    before.(c) <- before.(c - 1) + counts.(c - 1)
  done;
  before

(* Invert a BWT produced by [transform]; returns the original array [s].
   Quadratic-free: uses an occurrence-count walk (O(n) time, O(n) space). *)
let inverse (bwt : int array) : int array =
  let n = Array.length bwt in
  if n = 0 then [||]
  else begin
    let sigma = 1 + Array.fold_left max 0 bwt in
    let before = counts_before bwt sigma in
    (* occ.(i) = number of occurrences of bwt.(i) in bwt[0..i-1] *)
    let occ = Array.make n 0 in
    let seen = Array.make sigma 0 in
    for i = 0 to n - 1 do
      occ.(i) <- seen.(bwt.(i));
      seen.(bwt.(i)) <- seen.(bwt.(i)) + 1
    done;
    let lf i = before.(bwt.(i)) + occ.(i) in
    (* Row 0 is the sentinel suffix; walk backwards recovering symbols. *)
    let out = Array.make (n - 1) 0 in
    let row = ref 0 in
    for k = n - 2 downto 0 do
      out.(k) <- bwt.(!row) - 1;
      row := lf !row
    done;
    out
  end
