(** Burrows-Wheeler transform and LF-mapping utilities. The text
    convention is a unique smallest sentinel 0 at the end. *)

(** [of_sa t sa] is the BWT given the text (with sentinel) and its full
    suffix array. *)
val of_sa : int array -> int array -> int array

(** [with_sentinel s] shifts symbols by +1 and appends the sentinel;
    returns the new text and its alphabet size. *)
val with_sentinel : int array -> int array * int

(** [transform s] is the BWT of an arbitrary non-negative array. *)
val transform : ?tick:(unit -> unit) -> int array -> int array

(** [counts_before bwt sigma] maps each symbol [c] to the number of
    strictly smaller symbols in [bwt] (the C array of FM-indexes). *)
val counts_before : int array -> int -> int array

(** Invert a BWT produced by {!transform}. O(n). *)
val inverse : int array -> int array
