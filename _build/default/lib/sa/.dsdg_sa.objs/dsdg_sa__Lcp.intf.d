lib/sa/lcp.mli:
