lib/sa/sais.ml: Array Char String
