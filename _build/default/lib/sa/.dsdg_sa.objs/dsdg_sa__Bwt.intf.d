lib/sa/bwt.mli:
