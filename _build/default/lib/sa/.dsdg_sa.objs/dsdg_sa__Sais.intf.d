lib/sa/sais.mli:
