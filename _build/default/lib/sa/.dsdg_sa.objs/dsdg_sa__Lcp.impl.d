lib/sa/lcp.ml: Array
