lib/sa/bwt.ml: Array Sais
