(* LCP array construction (Kasai et al. 2001), O(n).

   lcp.(i) = length of the longest common prefix of the suffixes at
   sa.(i-1) and sa.(i); lcp.(0) = 0. *)

let of_sa (s : int array) (sa : int array) : int array =
  let n = Array.length s in
  if Array.length sa <> n then invalid_arg "Lcp.of_sa: length mismatch";
  let rank = Array.make n 0 in
  Array.iteri (fun i p -> rank.(p) <- i) sa;
  let lcp = Array.make n 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    if rank.(i) > 0 then begin
      let j = sa.(rank.(i) - 1) in
      while i + !h < n && j + !h < n && s.(i + !h) = s.(j + !h) do
        incr h
      done;
      lcp.(rank.(i)) <- !h;
      if !h > 0 then decr h
    end
    else h := 0
  done;
  lcp

let naive (s : int array) (sa : int array) : int array =
  let n = Array.length s in
  let common i j =
    let rec go d = if i + d < n && j + d < n && s.(i + d) = s.(j + d) then go (d + 1) else d in
    go 0
  in
  Array.init n (fun k -> if k = 0 then 0 else common sa.(k - 1) sa.(k))
