(** LCP array construction (Kasai et al. 2001), O(n).
    [lcp.(i)] is the longest common prefix length of the suffixes in
    suffix-array rows [i-1] and [i]; [lcp.(0) = 0]. *)

val of_sa : int array -> int array -> int array

(** Quadratic reference, for tests. *)
val naive : int array -> int array -> int array
