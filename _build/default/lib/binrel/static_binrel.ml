(* Deletion-only compact binary relation (Section 5, first half).

   A relation R between objects and labels is stored as
   - S: the labels, listed object by object, in an H0-compressed
     (Huffman-shaped) wavelet tree -- nH bits where H is the zero-order
     entropy of S, exactly the space term of Theorem 2;
   - N: the unary object-degree sequence 1^{n_1} 0 1^{n_2} 0 ...;
   - D: a Reporter (Lemma 3) over S marking live pairs (with integrated
     O(log n) range counting for labels-of-object);
   - Da: per label, a Reporter over that label's occurrences, plus a
     plain live counter (objects of a label need only totals).

   Objects and labels are arbitrary external ints; internally they are
   mapped to dense local indices (the "effective alphabet" of the paper's
   GC bitmaps plays this role in the dynamic wrapper). *)

open Dsdg_bits
open Dsdg_wavelet
open Dsdg_delbits

type t = {
  objects : int array; (* sorted external object ids *)
  labels : int array; (* sorted external label ids *)
  s : Huffman_wavelet.t; (* local labels in object order *)
  n_bv : Rank_select.t; (* unary degrees: object i owns 1-runs *)
  d : Reporter.t;
  da : Reporter.t array; (* per local label: live occurrences *)
  da_live : int array; (* per local label: live count *)
  obj_start : int array; (* local object -> first S position *)
  mutable live_pairs : int;
  mutable dead_pairs : int;
  tau : int;
}

let dedup_sorted l =
  let rec go = function
    | a :: b :: rest -> if a = b then go (b :: rest) else a :: go (b :: rest)
    | rest -> rest
  in
  go (List.sort compare l)

let find_local (arr : int array) (v : int) : int option =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) <= v then lo := mid else hi := mid
  done;
  if Array.length arr > 0 && arr.(!lo) = v then Some !lo else None

let build ?(tick = fun () -> ()) ~tau (pairs : (int * int) array) : t =
  if tau < 1 then invalid_arg "Static_binrel.build: tau";
  let n = Array.length pairs in
  let objects = Array.of_list (dedup_sorted (Array.to_list (Array.map fst pairs))) in
  let labels = Array.of_list (dedup_sorted (Array.to_list (Array.map snd pairs))) in
  let t_objs = Array.length objects in
  let local_obj v = match find_local objects v with Some i -> i | None -> assert false in
  let local_lab v = match find_local labels v with Some i -> i | None -> assert false in
  (* sort pairs by (object, label) and reject duplicates *)
  let sorted = Array.map (fun (o, a) -> (local_obj o, local_lab a)) pairs in
  Array.sort compare sorted;
  for i = 1 to n - 1 do
    if sorted.(i) = sorted.(i - 1) then invalid_arg "Static_binrel.build: duplicate pair"
  done;
  let s_arr = Array.map snd sorted in
  let sigma_l = Array.length labels in
  let s = Huffman_wavelet.build ~tick ~sigma:(max 1 sigma_l) s_arr in
  (* N: for each object, its degree in unary *)
  let n_bits = Bitvec.create (n + t_objs) in
  let obj_start = Array.make (t_objs + 1) 0 in
  let pos = ref 0 in
  let cur = ref 0 in
  Array.iteri
    (fun i (o, _) ->
      tick ();
      while !cur < o do
        incr cur;
        obj_start.(!cur) <- i;
        incr pos
      done;
      Bitvec.set n_bits !pos;
      incr pos)
    sorted;
  while !cur < t_objs do
    incr cur;
    obj_start.(!cur) <- n;
    incr pos
  done;
  let da =
    Array.init (max 1 sigma_l) (fun a -> Reporter.create_full (Huffman_wavelet.count s a))
  in
  let da_live = Array.init (max 1 sigma_l) (fun a -> Huffman_wavelet.count s a) in
  {
    objects;
    labels;
    s;
    n_bv = Rank_select.build n_bits;
    d = Reporter.create_full n;
    da;
    da_live;
    obj_start;
    live_pairs = n;
    dead_pairs = 0;
    tau;
  }

let live_pairs t = t.live_pairs
let dead_pairs t = t.dead_pairs
let total_pairs t = t.live_pairs + t.dead_pairs
let needs_purge t = t.dead_pairs * t.tau > total_pairs t
let is_empty t = t.live_pairs = 0

(* S-range of an external object, if present. *)
let obj_range t o =
  match find_local t.objects o with
  | None -> None
  | Some i -> Some (i, t.obj_start.(i), t.obj_start.(i + 1))

(* S-position of pair (o, a), if the pair is in the relation (live or
   dead). *)
let pair_pos t o a =
  match (obj_range t o, find_local t.labels a) with
  | Some (_, l, r), Some la ->
    let before = Huffman_wavelet.rank t.s la l in
    let within = Huffman_wavelet.rank t.s la r - before in
    if within = 0 then None
    else begin
      (* the relation is a set: at most one occurrence of la in [l, r) *)
      let j = Huffman_wavelet.select t.s la before in
      if j < r then Some (la, j) else None
    end
  | _ -> None

let related t o a =
  match pair_pos t o a with None -> false | Some (_, j) -> Reporter.get t.d j

(* Report the external labels related to object [o]. *)
let labels_of_object t o ~f =
  match obj_range t o with
  | None -> ()
  | Some (_, l, r) ->
    Reporter.report t.d l r (fun j -> f t.labels.(Huffman_wavelet.access t.s j))

(* Report the external objects related to label [a]. *)
let objects_of_label t a ~f =
  match find_local t.labels a with
  | None -> ()
  | Some la ->
    let rep = t.da.(la) in
    Reporter.report rep 0 (Reporter.length rep) (fun k ->
        let j = Huffman_wavelet.select t.s la k in
        (* object owning S position j, via the unary degree sequence N *)
        let obj = Rank_select.rank0 t.n_bv (Rank_select.select1 t.n_bv j) in
        f t.objects.(obj))

let count_labels_of_object t o =
  match obj_range t o with None -> 0 | Some (_, l, r) -> Reporter.count_range t.d l r

let count_objects_of_label t a =
  match find_local t.labels a with
  | None -> 0
  | Some la -> t.da_live.(la)

let delete t o a =
  match pair_pos t o a with
  | None -> false
  | Some (la, j) ->
    if not (Reporter.get t.d j) then false
    else begin
      Reporter.zero t.d j;
      let k = Huffman_wavelet.rank t.s la j in
      Reporter.zero t.da.(la) k;
      t.da_live.(la) <- t.da_live.(la) - 1;
      t.live_pairs <- t.live_pairs - 1;
      t.dead_pairs <- t.dead_pairs + 1;
      true
    end

(* All live pairs, for rebuilds. *)
let live_pairs_list ?(tick = fun () -> ()) t =
  let acc = ref [] in
  Reporter.report t.d 0 (Reporter.length t.d) (fun j ->
      tick ();
      let la = Huffman_wavelet.access t.s j in
      let obj = Rank_select.rank0 t.n_bv (Rank_select.select1 t.n_bv j) in
      acc := (t.objects.(obj), t.labels.(la)) :: !acc);
  List.rev !acc

let space_bits t =
  Huffman_wavelet.space_bits t.s + Rank_select.space_bits t.n_bv
  + Reporter.space_bits t.d
  + Array.fold_left (fun acc r -> acc + Reporter.space_bits r) 0 t.da
  + (Array.length t.da_live * 63)
  + ((Array.length t.objects + Array.length t.labels + Array.length t.obj_start) * 63)
