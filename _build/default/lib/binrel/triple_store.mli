(** Dynamic RDF-style triple store (the paper's Section 1 database
    motivation): per-predicate compact digraphs plus subject/object to
    predicate relations. Supports the paper's example queries — all
    triples with a given subject, and all triples with a given subject
    and predicate — under insertions and deletions. *)

type t

val create : ?tau:int -> unit -> t
val triple_count : t -> int
val mem : t -> s:int -> p:int -> o:int -> bool

(** [add t ~s ~p ~o]; [false] if present. *)
val add : t -> s:int -> p:int -> o:int -> bool

(** [remove t ~s ~p ~o]; [false] if absent. *)
val remove : t -> s:int -> p:int -> o:int -> bool

val predicates_of_subject : t -> int -> int list
val predicates_of_object : t -> int -> int list

(** All triples with subject [s] (the paper's first example query). *)
val triples_with_subject : t -> int -> (int * int * int) list

val triples_with_object : t -> int -> (int * int * int) list

(** All triples with subject [s] and predicate [p] (the second example
    query). *)
val triples_with_subject_predicate : t -> int -> int -> (int * int * int) list

val triples_with_object_predicate : t -> int -> int -> (int * int * int) list
val count_with_subject : t -> int -> int
val count_with_object : t -> int -> int
val count_with_predicate : t -> int -> int
val space_bits : t -> int
