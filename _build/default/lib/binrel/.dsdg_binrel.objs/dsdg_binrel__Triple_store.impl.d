lib/binrel/triple_store.ml: Digraph Dyn_binrel Hashtbl List
