lib/binrel/static_binrel.ml: Array Bitvec Dsdg_bits Dsdg_delbits Dsdg_wavelet Huffman_wavelet List Rank_select Reporter
