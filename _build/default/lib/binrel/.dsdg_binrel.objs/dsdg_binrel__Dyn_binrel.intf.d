lib/binrel/dyn_binrel.mli:
