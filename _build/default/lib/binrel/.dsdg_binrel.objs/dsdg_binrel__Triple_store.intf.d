lib/binrel/triple_store.mli:
