lib/binrel/static_binrel.mli:
