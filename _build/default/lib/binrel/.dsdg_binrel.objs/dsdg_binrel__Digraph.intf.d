lib/binrel/digraph.mli: Dyn_binrel
