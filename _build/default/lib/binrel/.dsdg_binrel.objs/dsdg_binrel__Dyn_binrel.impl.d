lib/binrel/dyn_binrel.ml: Array Hashtbl List Static_binrel
