lib/binrel/digraph.ml: Dyn_binrel
