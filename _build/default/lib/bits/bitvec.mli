(** Fixed-length mutable bit vector over 62-bit words.

    This is the raw storage primitive for every succinct structure in the
    library; rank/select directories are layered on top by
    {!Rank_select}. *)

type t

(** [create n] is an all-zero bit vector of length [n]. *)
val create : int -> t

(** [create_full n] is an all-one bit vector of length [n]. *)
val create_full : int -> t

(** [init n f] sets bit [i] to [f i]. *)
val init : int -> (int -> bool) -> t

(** Number of bits. *)
val length : t -> int

(** [get t i] is bit [i]. Raises [Invalid_argument] out of bounds. *)
val get : t -> int -> bool

(** [get] without the bounds check. *)
val unsafe_get : t -> int -> bool

(** [set t i] sets bit [i] to one. *)
val set : t -> int -> unit

(** [clear t i] sets bit [i] to zero. *)
val clear : t -> int -> unit

(** [set_to t i b] writes [b] into bit [i]. *)
val set_to : t -> int -> bool -> unit

(** Set every bit to one. *)
val fill_ones : t -> unit

(** Number of one bits (popcount over all words). *)
val count : t -> int

(** Number of backing words; for rank/select directories. *)
val num_words : t -> int

(** [word t j] is the [j]-th backing word (62 valid bits). *)
val word : t -> int -> int

(** Valid-bit mask of word [j]; the last word may be partial. *)
val word_mask : t -> int -> int

val copy : t -> t
val equal : t -> t -> bool

(** [iter_ones f t] calls [f] on each set position in increasing order. *)
val iter_ones : (int -> unit) -> t -> unit

(** Measured size in bits, including bookkeeping. *)
val space_bits : t -> int

val of_bools : bool list -> t
val to_bools : t -> bool list
val pp : Format.formatter -> t -> unit
