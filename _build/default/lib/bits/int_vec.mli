(** Packed vector of fixed-width non-negative integers (width <= 62),
    used for suffix-array samples and other o(n log n)-bit payloads. *)

type t

(** [create ~width n] is a zero-filled vector of [n] [width]-bit cells. *)
val create : width:int -> int -> t

val length : t -> int
val width : t -> int

(** Smallest width (>= 1) able to hold value [v]. *)
val width_for : int -> int

val get : t -> int -> int

(** [set t i v] stores [v]; raises [Invalid_argument] if [v] does not fit
    in the vector's width. *)
val set : t -> int -> int -> unit

val of_array : width:int -> int array -> t

(** [of_array_auto a] picks the minimal width for the largest element. *)
val of_array_auto : int array -> t

val to_array : t -> int array
val space_bits : t -> int
