(* Population count and in-word select for 63-bit OCaml native integers.

   All bit-packed structures in this library use 63-bit words (the tagged
   native [int]).  Counting uses a 16-bit lookup table: four probes per
   word.  In-word select walks bytes using the same table. *)

let word_bits = 62

let table16 =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set t i (Char.chr (count i 0))
  done;
  t

let[@inline] popcount16 x = Char.code (Bytes.unsafe_get table16 (x land 0xffff))

let[@inline] count x =
  popcount16 x + popcount16 (x lsr 16) + popcount16 (x lsr 32) + popcount16 (x lsr 48)

(* Position (0-based, from LSB) of the [k]-th (0-based) set bit of [x].
   Requires [k < count x]. *)
let select x k =
  let k = ref k and pos = ref 0 and x = ref x in
  let c = ref (popcount16 !x) in
  while !k >= !c do
    k := !k - !c;
    pos := !pos + 16;
    x := !x lsr 16;
    c := popcount16 !x
  done;
  (* scan the 16-bit chunk bit by bit *)
  let chunk = ref (!x land 0xffff) in
  while !k > 0 || !chunk land 1 = 0 do
    if !chunk land 1 = 1 then decr k;
    chunk := !chunk lsr 1;
    incr pos
  done;
  !pos

(* Mask keeping the [n] lowest bits, 0 <= n <= 62.  Note (1 lsl 62) - 1
   wraps to max_int, which is exactly the 62-bit mask. *)
let[@inline] low_mask n = (1 lsl n) - 1
