(** Static rank/select directory over a {!Bitvec.t}.

    Superblock counts give [rank] in O(1) word probes; [select] binary
    searches the directory. The underlying bit vector must not be
    mutated after {!build}. *)

type t

(** Build the directory; O(n/w) time, o(n) extra bits. *)
val build : Bitvec.t -> t

val of_bitvec : Bitvec.t -> t
val length : t -> int

(** Number of one bits. *)
val ones : t -> int

(** Number of zero bits. *)
val zeros : t -> int

val get : t -> int -> bool
val bitvec : t -> Bitvec.t

(** [rank1 t i] is the number of ones in positions [[0, i)]. *)
val rank1 : t -> int -> int

(** [rank0 t i] is the number of zeros in positions [[0, i)]. *)
val rank0 : t -> int -> int

(** [select1 t k] is the position of the [k]-th (0-based) one.
    Raises [Invalid_argument] if [k >= ones t]. *)
val select1 : t -> int -> int

(** [select0 t k] is the position of the [k]-th (0-based) zero. *)
val select0 : t -> int -> int

val space_bits : t -> int
