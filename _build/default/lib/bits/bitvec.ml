(* Fixed-length mutable bit vector over 63-bit words. *)

let w = Popcount.word_bits

type t = {
  len : int;
  data : int array;
}

let words_for n = if n = 0 then 1 else (n + w - 1) / w

let create n =
  if n < 0 then invalid_arg "Bitvec.create";
  { len = n; data = Array.make (words_for n) 0 }

let length t = t.len

let[@inline] check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let[@inline] get t i =
  check t i;
  (Array.unsafe_get t.data (i / w) lsr (i mod w)) land 1 = 1

let[@inline] unsafe_get t i =
  (Array.unsafe_get t.data (i / w) lsr (i mod w)) land 1 = 1

let set t i =
  check t i;
  let j = i / w in
  t.data.(j) <- t.data.(j) lor (1 lsl (i mod w))

let clear t i =
  check t i;
  let j = i / w in
  t.data.(j) <- t.data.(j) land lnot (1 lsl (i mod w))

let set_to t i b = if b then set t i else clear t i

let init n f =
  let t = create n in
  for i = 0 to n - 1 do
    if f i then set t i
  done;
  t

let fill_ones t =
  let nw = Array.length t.data in
  for j = 0 to nw - 1 do
    t.data.(j) <- Popcount.low_mask w
  done;
  (* clear bits beyond [len] in the last word *)
  let rem = t.len mod w in
  if rem <> 0 || t.len = 0 then t.data.(nw - 1) <- Popcount.low_mask (if t.len = 0 then 0 else rem)

let create_full n =
  let t = create n in
  fill_ones t;
  t

let count t = Array.fold_left (fun acc x -> acc + Popcount.count x) 0 t.data

(* Number of words; internal, used by rank/select directories. *)
let num_words t = Array.length t.data

let word t j = t.data.(j)

(* Valid-bit mask of word [j] (the last word may be partial). *)
let word_mask t j =
  let full = Popcount.low_mask w in
  if j < num_words t - 1 then full
  else
    let rem = t.len - (j * w) in
    Popcount.low_mask rem

let copy t = { len = t.len; data = Array.copy t.data }

let equal a b = a.len = b.len && a.data = b.data

(* Iterate positions of set bits in increasing order. *)
let iter_ones f t =
  for j = 0 to num_words t - 1 do
    let x = ref t.data.(j) in
    while !x <> 0 do
      let b = !x land - !x in
      let pos = (j * w) + Popcount.select b 0 in
      f pos;
      x := !x land lnot b
    done
  done

let space_bits t = (num_words t * w) + (2 * 63)

let of_bools l =
  let n = List.length l in
  let t = create n in
  List.iteri (fun i b -> if b then set t i) l;
  t

let to_bools t = List.init t.len (fun i -> get t i)

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
