(* Packed vector of fixed-width non-negative integers (width <= 62),
   stored across 63-bit words. *)

let w = Popcount.word_bits

type t = {
  width : int;
  len : int;
  data : int array;
}

let create ~width len =
  if width < 1 || width > 62 then invalid_arg "Int_vec.create: width";
  if len < 0 then invalid_arg "Int_vec.create: len";
  let total_bits = width * len in
  let nw = if total_bits = 0 then 1 else (total_bits + w - 1) / w in
  { width; len; data = Array.make nw 0 }

let length t = t.len
let width t = t.width

(* Smallest width that can hold [v] (at least 1). *)
let width_for v =
  if v < 0 then invalid_arg "Int_vec.width_for";
  let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 v

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.get";
  let bitpos = i * t.width in
  let word = bitpos / w and off = bitpos mod w in
  let mask = Popcount.low_mask t.width in
  if off + t.width <= w then (Array.unsafe_get t.data word lsr off) land mask
  else begin
    let lo_bits = w - off in
    let lo = Array.unsafe_get t.data word lsr off in
    let hi = Array.unsafe_get t.data (word + 1) land Popcount.low_mask (t.width - lo_bits) in
    lo lor (hi lsl lo_bits)
  end

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Int_vec.set";
  let mask = Popcount.low_mask t.width in
  if v < 0 || v land lnot mask <> 0 then invalid_arg "Int_vec.set: value too wide";
  let bitpos = i * t.width in
  let word = bitpos / w and off = bitpos mod w in
  if off + t.width <= w then
    t.data.(word) <- t.data.(word) land lnot (mask lsl off) lor (v lsl off)
  else begin
    let lo_bits = w - off in
    t.data.(word) <- t.data.(word) land Popcount.low_mask off lor (v lsl off) land Popcount.low_mask w;
    let hi_mask = Popcount.low_mask (t.width - lo_bits) in
    t.data.(word + 1) <- t.data.(word + 1) land lnot hi_mask lor (v lsr lo_bits)
  end

let of_array ~width a =
  let t = create ~width (Array.length a) in
  Array.iteri (fun i v -> set t i v) a;
  t

let of_array_auto a =
  let m = Array.fold_left max 0 a in
  of_array ~width:(width_for m) a

let to_array t = Array.init t.len (get t)

let space_bits t = (Array.length t.data * w) + (3 * 63)
