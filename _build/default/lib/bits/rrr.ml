(* RRR (Raman-Raman-Rao) H0-compressed bit vector with rank/select.

   The vector is cut into blocks of [b] = 15 bits; each block is encoded
   as a (class, offset) pair where the class is its popcount (4 bits) and
   the offset indexes the block within the enumeration of all 15-bit
   words of that class (combinatorial number system,
   ceil(log2 C(15, c)) bits).  Superblocks of 32 blocks store absolute
   ranks and offset-stream positions.  Total space approaches n H0 + o(n)
   and all queries stay O(1)-ish (superblock + one 32-block scan).

   Used where the paper's indexes assume entropy-compressed bit vectors
   (e.g. degree sequences of very skewed relations). *)

let b = 15
let sb_blocks = 32

(* binomials C(0..15, 0..15) *)
let binom =
  let t = Array.make_matrix (b + 1) (b + 1) 0 in
  for n = 0 to b do
    t.(n).(0) <- 1;
    for k = 1 to n do
      t.(n).(k) <- t.(n - 1).(k - 1) + (if k <= n - 1 then t.(n - 1).(k) else 0)
    done
  done;
  t

(* bits needed for the offset of class c *)
let class_bits =
  Array.init (b + 1) (fun c ->
      let v = binom.(b).(c) in
      let rec go acc x = if x <= 1 then acc else go (acc + 1) ((x + 1) / 2) in
      if v <= 1 then 0 else go 0 v)

(* offset of word [x] (b bits, class c) in the canonical enumeration:
   combinatorial number system, scanning from the high bit *)
let offset_of_word x =
  let c = Popcount.count x in
  let off = ref 0 in
  let remaining = ref c in
  for pos = b - 1 downto 0 do
    if (x lsr pos) land 1 = 1 then begin
      (* all words with a 0 here (and the same prefix) come first *)
      off := !off + binom.(pos).(!remaining);
      decr remaining
    end
  done;
  (c, !off)

(* inverse: word of class [c] with offset [off] *)
let word_of_offset c off =
  let x = ref 0 in
  let off = ref off and remaining = ref c in
  for pos = b - 1 downto 0 do
    if !remaining > 0 && !off >= binom.(pos).(!remaining) then begin
      off := !off - binom.(pos).(!remaining);
      decr remaining;
      x := !x lor (1 lsl pos)
    end
  done;
  !x

type t = {
  len : int;
  nblocks : int;
  classes : Int_vec.t; (* 4 bits per block *)
  offsets : Bitvec.t; (* variable-width offset stream *)
  sb_rank : int array; (* ones before each superblock *)
  sb_pos : int array; (* offset-stream bit position of each superblock *)
  ones : int;
}

(* read [nbits] bits at [pos] from the offset stream *)
let read_bits bv pos nbits =
  let v = ref 0 in
  for k = 0 to nbits - 1 do
    if Bitvec.unsafe_get bv (pos + k) then v := !v lor (1 lsl k)
  done;
  !v

let of_bitvec src =
  let len = Bitvec.length src in
  let nblocks = (len + b - 1) / b in
  let classes = Int_vec.create ~width:4 (max 1 nblocks) in
  let block_word i =
    let x = ref 0 in
    let base = i * b in
    for k = 0 to b - 1 do
      if base + k < len && Bitvec.unsafe_get src (base + k) then x := !x lor (1 lsl k)
    done;
    !x
  in
  (* first pass: total offset bits *)
  let total_off_bits = ref 0 in
  for i = 0 to nblocks - 1 do
    let c, _ = offset_of_word (block_word i) in
    total_off_bits := !total_off_bits + class_bits.(c)
  done;
  let offsets = Bitvec.create (max 1 !total_off_bits) in
  let nsb = (nblocks + sb_blocks - 1) / sb_blocks in
  let sb_rank = Array.make (nsb + 1) 0 in
  let sb_pos = Array.make (nsb + 1) 0 in
  let rank = ref 0 and pos = ref 0 in
  for i = 0 to nblocks - 1 do
    if i mod sb_blocks = 0 then begin
      sb_rank.(i / sb_blocks) <- !rank;
      sb_pos.(i / sb_blocks) <- !pos
    end;
    let w = block_word i in
    let c, off = offset_of_word w in
    Int_vec.set classes i c;
    for k = 0 to class_bits.(c) - 1 do
      if (off lsr k) land 1 = 1 then Bitvec.set offsets (!pos + k)
    done;
    pos := !pos + class_bits.(c);
    rank := !rank + c
  done;
  sb_rank.(nsb) <- !rank;
  sb_pos.(nsb) <- !pos;
  { len; nblocks; classes; offsets; sb_rank; sb_pos; ones = !rank }

let length t = t.len
let ones t = t.ones
let zeros t = t.len - t.ones

(* decode block [i] given its offset-stream position *)
let decode_block t i pos =
  let c = Int_vec.get t.classes i in
  let off = read_bits t.offsets pos class_bits.(c) in
  word_of_offset c off

(* rank1 over [0, i) *)
let rank1 t i =
  if i < 0 || i > t.len then invalid_arg "Rrr.rank1";
  if i = 0 || t.nblocks = 0 then 0
  else begin
    let blk = min ((i - 1) / b) (t.nblocks - 1) in
    let sb = blk / sb_blocks in
    let rank = ref t.sb_rank.(sb) and pos = ref t.sb_pos.(sb) in
    for j = sb * sb_blocks to blk - 1 do
      let c = Int_vec.get t.classes j in
      rank := !rank + c;
      pos := !pos + class_bits.(c)
    done;
    let w = decode_block t blk !pos in
    let within = i - (blk * b) in
    !rank + Popcount.count (w land Popcount.low_mask (min within b))
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Rrr.get";
  rank1 t (i + 1) - rank1 t i = 1

let rank0 t i = i - rank1 t i

(* position of the k-th (0-based) one *)
let select1 t k =
  if k < 0 || k >= t.ones then invalid_arg "Rrr.select1";
  (* binary search superblocks *)
  let lo = ref 0 and hi = ref (Array.length t.sb_rank - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.sb_rank.(mid) <= k then lo := mid else hi := mid
  done;
  let sb = !lo in
  let rank = ref t.sb_rank.(sb) and pos = ref t.sb_pos.(sb) in
  let blk = ref (sb * sb_blocks) in
  let c = ref (Int_vec.get t.classes !blk) in
  while !rank + !c <= k do
    rank := !rank + !c;
    pos := !pos + class_bits.(!c);
    incr blk;
    c := Int_vec.get t.classes !blk
  done;
  let w = decode_block t !blk !pos in
  (!blk * b) + Popcount.select w (k - !rank)

let select0 t k =
  if k < 0 || k >= zeros t then invalid_arg "Rrr.select0";
  (* binary search on rank0 over positions (simple O(log n) fallback) *)
  let lo = ref 0 and hi = ref t.len in
  (* invariant: rank0(lo) <= k < rank0(hi) *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if rank0 t mid <= k then lo := mid else hi := mid
  done;
  !lo

let space_bits t =
  (* superblock directories counted at their packed width *)
  let sb_width a = Array.length a * max 1 (Int_vec.width_for (max 1 a.(Array.length a - 1))) in
  Int_vec.space_bits t.classes + Bitvec.space_bits t.offsets
  + sb_width t.sb_rank + sb_width t.sb_pos
  + (4 * 63)
