lib/bits/bitvec.ml: Array Format List Popcount
