lib/bits/rrr.ml: Array Bitvec Int_vec Popcount
