lib/bits/int_vec.ml: Array Popcount
