lib/bits/rank_select.ml: Array Bitvec Popcount
