lib/bits/elias_fano.ml: Array Bitvec Int_vec Popcount Rank_select
