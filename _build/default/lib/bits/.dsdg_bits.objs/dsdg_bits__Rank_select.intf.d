lib/bits/rank_select.mli: Bitvec
