lib/bits/int_vec.mli:
