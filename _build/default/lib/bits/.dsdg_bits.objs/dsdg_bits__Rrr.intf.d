lib/bits/rrr.mli: Bitvec
