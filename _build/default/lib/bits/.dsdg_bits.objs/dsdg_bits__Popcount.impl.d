lib/bits/popcount.ml: Bytes Char
