lib/bits/elias_fano.mli:
