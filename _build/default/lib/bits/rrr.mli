(** RRR (Raman-Raman-Rao) H0-compressed bit vector with rank/select:
    15-bit blocks stored as (class, offset) pairs in the combinatorial
    number system; space approaches n H0 + o(n). *)

type t

val of_bitvec : Bitvec.t -> t
val length : t -> int
val ones : t -> int
val zeros : t -> int
val get : t -> int -> bool

(** Ones in [0, i). *)
val rank1 : t -> int -> int

val rank0 : t -> int -> int

(** Position of the k-th (0-based) one. *)
val select1 : t -> int -> int

val select0 : t -> int -> int
val space_bits : t -> int
