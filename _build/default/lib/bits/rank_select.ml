(* Static rank/select directory over an (immutable from here on) Bitvec.

   Layout: superblocks of [sb_words] words; [super.(k)] is the number of
   1-bits strictly before superblock [k].  rank scans at most [sb_words]
   words; select binary-searches superblocks then scans. *)

let w = Popcount.word_bits
let sb_words = 8
let sb_bits = sb_words * w

type t = {
  bv : Bitvec.t;
  super : int array;
  ones : int;
}

let build bv =
  let nw = Bitvec.num_words bv in
  let nsb = (nw + sb_words - 1) / sb_words in
  let super = Array.make (nsb + 1) 0 in
  let acc = ref 0 in
  for j = 0 to nw - 1 do
    if j mod sb_words = 0 then super.(j / sb_words) <- !acc;
    acc := !acc + Popcount.count (Bitvec.word bv j)
  done;
  super.(nsb) <- !acc;
  { bv; super; ones = !acc }

let of_bitvec = build
let length t = Bitvec.length t.bv
let ones t = t.ones
let zeros t = Bitvec.length t.bv - t.ones
let get t i = Bitvec.get t.bv i
let bitvec t = t.bv

(* Number of 1-bits in positions [0, i). *)
let rank1 t i =
  if i < 0 || i > Bitvec.length t.bv then invalid_arg "Rank_select.rank1";
  if i = 0 then 0
  else begin
    let word = (i - 1) / w in
    let sb = word / sb_words in
    let acc = ref t.super.(sb) in
    for j = sb * sb_words to word - 1 do
      acc := !acc + Popcount.count (Bitvec.word t.bv j)
    done;
    let rem = i - (word * w) in
    !acc + Popcount.count (Bitvec.word t.bv word land Popcount.low_mask rem)
  end

let rank0 t i = i - rank1 t i

(* Position of the [k]-th (0-based) 1-bit.  Requires [0 <= k < ones]. *)
let select1 t k =
  if k < 0 || k >= t.ones then invalid_arg "Rank_select.select1";
  (* binary search: largest sb with super.(sb) <= k *)
  let lo = ref 0 and hi = ref (Array.length t.super - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.super.(mid) <= k then lo := mid else hi := mid
  done;
  let sb = !lo in
  let acc = ref t.super.(sb) in
  let nw = Bitvec.num_words t.bv in
  let j = ref (sb * sb_words) in
  let rec find () =
    let c = Popcount.count (Bitvec.word t.bv !j) in
    if !acc + c > k then ()
    else begin
      acc := !acc + c;
      incr j;
      if !j >= nw then invalid_arg "Rank_select.select1: corrupt directory";
      find ()
    end
  in
  find ();
  (!j * w) + Popcount.select (Bitvec.word t.bv !j) (k - !acc)

(* Position of the [k]-th (0-based) 0-bit. *)
let select0 t k =
  let nzeros = zeros t in
  if k < 0 || k >= nzeros then invalid_arg "Rank_select.select0";
  let zeros_before_sb sb =
    let bits = min (sb * sb_bits) (Bitvec.length t.bv) in
    bits - t.super.(sb)
  in
  let lo = ref 0 and hi = ref (Array.length t.super - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if zeros_before_sb mid <= k then lo := mid else hi := mid
  done;
  let sb = !lo in
  let acc = ref (zeros_before_sb sb) in
  let nw = Bitvec.num_words t.bv in
  let j = ref (sb * sb_words) in
  let word_zeros j =
    let mask = Bitvec.word_mask t.bv j in
    Popcount.count (mask land lnot (Bitvec.word t.bv j))
  in
  let rec find () =
    let c = word_zeros !j in
    if !acc + c > k then ()
    else begin
      acc := !acc + c;
      incr j;
      if !j >= nw then invalid_arg "Rank_select.select0: corrupt directory";
      find ()
    end
  in
  find ();
  let inv = Bitvec.word_mask t.bv !j land lnot (Bitvec.word t.bv !j) in
  (!j * w) + Popcount.select inv (k - !acc)

let space_bits t =
  Bitvec.space_bits t.bv + (Array.length t.super * 63) + (2 * 63)
