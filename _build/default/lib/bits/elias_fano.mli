(** Elias-Fano encoding of a monotone non-decreasing integer sequence:
    n (2 + log(u/n)) + o(n) bits with O(1) access. *)

type t

(** [build values] encodes a non-decreasing array. Raises
    [Invalid_argument] on an empty or non-monotone input. *)
val build : int array -> t

val length : t -> int

(** [get t i] is the [i]-th value. O(1). *)
val get : t -> int -> int

(** [rank_lt t v] is the number of elements strictly below [v]. *)
val rank_lt : t -> int -> int

val space_bits : t -> int
