(* Elias-Fano encoding of a monotone non-decreasing integer sequence.
   Access in O(1); ~ n (2 + log(u/n)) bits.  Used for sparse monotone
   sequences such as cumulative document offsets. *)

type t = {
  n : int;
  low_width : int;
  low : Int_vec.t option; (* None when low_width = 0 *)
  high : Rank_select.t;   (* unary-coded high parts: bit (v_i >> l) + i set *)
}

let build values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Elias_fano.build: empty";
  let u = values.(n - 1) + 1 in
  (* check monotone *)
  for i = 1 to n - 1 do
    if values.(i) < values.(i - 1) then invalid_arg "Elias_fano.build: not monotone"
  done;
  let rec log2 x = if x <= 1 then 0 else 1 + log2 (x / 2) in
  let low_width = max 0 (log2 (u / n)) in
  let low =
    if low_width = 0 then None
    else begin
      let lv = Int_vec.create ~width:low_width n in
      let mask = Popcount.low_mask low_width in
      Array.iteri (fun i v -> Int_vec.set lv i (v land mask)) values;
      Some lv
    end
  in
  let high_len = n + (u lsr low_width) + 1 in
  let hb = Bitvec.create high_len in
  Array.iteri (fun i v -> Bitvec.set hb ((v lsr low_width) + i)) values;
  { n; low_width; low; high = Rank_select.build hb }

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Elias_fano.get";
  let hi = Rank_select.select1 t.high i - i in
  match t.low with
  | None -> hi
  | Some low -> (hi lsl t.low_width) lor Int_vec.get low i

(* Number of elements strictly less than [v]. *)
let rank_lt t v =
  let hv = v lsr t.low_width in
  (* elements with high part < hv: all ones before the hv-th zero *)
  let zeros = Rank_select.zeros t.high in
  let start = if hv = 0 then 0 else if hv > zeros then t.n else Rank_select.select0 t.high (hv - 1) - (hv - 1) in
  let stop = if hv >= zeros then t.n else Rank_select.select0 t.high hv - hv in
  (* binary search within [start, stop) on full values *)
  let lo = ref start and hi = ref stop in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get t mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

let space_bits t =
  (match t.low with None -> 0 | Some l -> Int_vec.space_bits l)
  + Rank_select.space_bits t.high + (2 * 63)
