lib/workload/query_gen.ml: List Random
