lib/workload/graph_gen.mli: Random
