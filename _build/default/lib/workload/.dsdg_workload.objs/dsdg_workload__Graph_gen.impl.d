lib/workload/graph_gen.ml: Array Hashtbl List Random
