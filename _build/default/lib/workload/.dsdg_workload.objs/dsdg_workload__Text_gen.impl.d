lib/workload/text_gen.ml: Array Buffer Bytes Char List Printf Random Stdlib String
