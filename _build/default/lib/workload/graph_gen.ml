(* Synthetic graph / binary-relation generators for the Section 5
   benchmarks: Erdos-Renyi digraphs, preferential-attachment digraphs
   (power-law in-degrees, like web/RDF graphs), and RDF-ish triple
   streams (subject-predicate-object, the paper's motivating database
   application, encoded as two binary relations). *)

type rng = Random.State.t

let erdos_renyi st ~nodes ~edges =
  let seen = Hashtbl.create (2 * edges) in
  let out = ref [] in
  let made = ref 0 in
  while !made < edges do
    let u = Random.State.int st nodes and v = Random.State.int st nodes in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.replace seen (u, v) ();
      out := (u, v) :: !out;
      incr made
    end
  done;
  Array.of_list !out

(* Preferential attachment: node i attaches [out_deg] edges to targets
   chosen proportionally to in-degree + 1. *)
let preferential st ~nodes ~out_deg =
  let targets = ref [] in
  let ntargets = ref 0 in
  let edges = ref [] in
  for u = 0 to nodes - 1 do
    for _ = 1 to out_deg do
      let v =
        if !ntargets = 0 || Random.State.float st 1.0 < 0.2 then Random.State.int st (u + 1)
        else List.nth !targets (Random.State.int st !ntargets)
      in
      edges := (u, v) :: !edges;
      targets := v :: !targets;
      incr ntargets
    done
  done;
  (* dedup *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    !edges
  |> Array.of_list

(* RDF-ish triples: few predicates, Zipf-ish subjects/objects.  Returned
   as (subject, predicate, object). *)
let rdf_triples st ~subjects ~predicates ~count =
  Array.init count (fun _ ->
      let s = Random.State.int st subjects in
      let p = Random.State.int st predicates in
      let o = Random.State.int st subjects in
      (s, p, o))
