(** Synthetic graph and triple generators for the Section 5 benchmarks. *)

type rng = Random.State.t

(** Distinct directed edges, uniform endpoints. *)
val erdos_renyi : rng -> nodes:int -> edges:int -> (int * int) array

(** Preferential attachment: power-law in-degrees (web/RDF-like). *)
val preferential : rng -> nodes:int -> out_deg:int -> (int * int) array

(** (subject, predicate, object) triples; duplicates possible. *)
val rdf_triples : rng -> subjects:int -> predicates:int -> count:int -> (int * int * int) array
