(* Mixed operation streams for driving a dynamic index: the "library
   management" workload (inserts, deletes, pattern queries in given
   proportions).  Deterministic given the seed. *)

type op =
  | Insert of string
  | Delete_random (* delete a uniformly random live document *)
  | Search of string
  | Count of string

type mix = {
  p_insert : float;
  p_delete : float;
  p_search : float; (* remainder = count *)
}

let default_mix = { p_insert = 0.4; p_delete = 0.2; p_search = 0.3 }

let stream st ~mix ~ops ~doc_gen ~pattern_gen =
  List.init ops (fun _ ->
      let r = Random.State.float st 1.0 in
      if r < mix.p_insert then Insert (doc_gen ())
      else if r < mix.p_insert +. mix.p_delete then Delete_random
      else if r < mix.p_insert +. mix.p_delete +. mix.p_search then Search (pattern_gen ())
      else Count (pattern_gen ()))

(* Drive an index through a stream given closures; returns per-op class
   counters (useful for reporting ops/s per class). *)
type counters = {
  mutable inserts : int;
  mutable deletes : int;
  mutable searches : int;
  mutable counts : int;
  mutable matches_reported : int;
}

let run st stream ~insert ~delete_random ~search ~count =
  let c = { inserts = 0; deletes = 0; searches = 0; counts = 0; matches_reported = 0 } in
  ignore st;
  List.iter
    (fun op ->
      match op with
      | Insert text ->
        insert text;
        c.inserts <- c.inserts + 1
      | Delete_random ->
        if delete_random () then c.deletes <- c.deletes + 1
      | Search p ->
        c.matches_reported <- c.matches_reported + search p;
        c.searches <- c.searches + 1
      | Count p ->
        c.matches_reported <- c.matches_reported + count p;
        c.counts <- c.counts + 1)
    stream;
  c
