(** Mixed operation streams: the library-management workload (inserts,
    deletes, searches, counts in given proportions). *)

type op =
  | Insert of string
  | Delete_random  (** delete a uniformly random live document *)
  | Search of string
  | Count of string

type mix = {
  p_insert : float;
  p_delete : float;
  p_search : float; (* remainder = count queries *)
}

val default_mix : mix

(** Deterministic op stream given the rng state. *)
val stream :
  Random.State.t ->
  mix:mix ->
  ops:int ->
  doc_gen:(unit -> string) ->
  pattern_gen:(unit -> string) ->
  op list

type counters = {
  mutable inserts : int;
  mutable deletes : int;
  mutable searches : int;
  mutable counts : int;
  mutable matches_reported : int;
}

(** Drive an index through a stream; [search]/[count] return the number
    of matches they saw. *)
val run :
  Random.State.t ->
  op list ->
  insert:(string -> unit) ->
  delete_random:(unit -> bool) ->
  search:(string -> int) ->
  count:(string -> int) ->
  counters
