(* Balanced parentheses with a range min-max (rmM) directory, after
   Navarro-Sadakane [37] ("fully-functional succinct trees") -- the
   substrate of compressed suffix trees such as the one inside the
   Belazzougui-Navarro index whose construction Appendix A.6 describes.

   A bit vector (1 = open paren) is cut into blocks; a perfect binary
   segment tree over blocks stores each block's total excess and minimum
   prefix excess.  fwd_search / bwd_search / rmq run in O(block + log)
   and give find_close, find_open, enclose, and LCA machinery. *)

open Dsdg_bits

let block_bits = 128

type t = {
  bv : Bitvec.t; (* 1 = '(' *)
  rs : Rank_select.t;
  n : int;
  nblocks : int;
  base : int; (* leaves of the segment tree start at [base] *)
  tot : int array; (* per segment-tree node: total excess *)
  mins : int array; (* per segment-tree node: min prefix excess (>= 1 positions in) *)
}

let[@inline] bit_excess b = if b then 1 else -1

let build bv =
  let n = Bitvec.length bv in
  let nblocks = max 1 ((n + block_bits - 1) / block_bits) in
  let base =
    let rec go b = if b >= nblocks then b else go (2 * b) in
    go 1
  in
  let size = 2 * base in
  let tot = Array.make size 0 in
  let mins = Array.make size max_int in
  for blk = 0 to nblocks - 1 do
    let lo = blk * block_bits in
    let hi = min n (lo + block_bits) in
    let e = ref 0 and m = ref max_int in
    for i = lo to hi - 1 do
      e := !e + bit_excess (Bitvec.unsafe_get bv i);
      if !e < !m then m := !e
    done;
    tot.(base + blk) <- !e;
    mins.(base + blk) <- !m
  done;
  for v = base - 1 downto 1 do
    let l = 2 * v and r = (2 * v) + 1 in
    tot.(v) <- tot.(l) + tot.(r);
    mins.(v) <- min mins.(l) (if mins.(r) = max_int then max_int else tot.(l) + mins.(r))
  done;
  { bv; rs = Rank_select.build bv; n; nblocks; base; tot; mins }

let of_string s =
  let bv = Bitvec.create (String.length s) in
  String.iteri
    (fun i ch ->
      match ch with
      | '(' -> Bitvec.set bv i
      | ')' -> ()
      | _ -> invalid_arg "Balanced_parens.of_string")
    s;
  build bv

let length t = t.n
let is_open t i = Bitvec.get t.bv i

(* E(i): excess of the prefix [0..i]. *)
let excess t i =
  if i < 0 then 0 else (2 * Rank_select.rank1 t.rs (i + 1)) - (i + 1)

(* smallest j > from with E(j) = target, for target < E(from) (the only
   regime find_close / enclose need): excess moves by +-1, so the first
   block whose minimum reaches the target contains the answer. *)
let fwd_search t from target =
  if target >= excess t from then invalid_arg "Balanced_parens.fwd_search: target >= E(from)";
  let scan_block lo hi e0 =
    (* e0 = E(lo - 1); returns the first hit in [lo, hi) or -1 *)
    let e = ref e0 and res = ref (-1) and i = ref lo in
    while !res < 0 && !i < hi do
      e := !e + bit_excess (Bitvec.unsafe_get t.bv !i);
      if !e = target then res := !i;
      incr i
    done;
    !res
  in
  if from + 1 >= t.n then None
  else begin
    let b0 = (from + 1) / block_bits in
    let first_hi = min t.n ((b0 + 1) * block_bits) in
    let r = scan_block (from + 1) first_hi (excess t from) in
    if r >= 0 then Some r
    else begin
      (* walk later blocks; [e] = E just before the block *)
      let e = ref (excess t (first_hi - 1)) in
      let blk = ref (b0 + 1) in
      let res = ref None in
      while !res = None && !blk < t.nblocks do
        let bmin = t.mins.(t.base + !blk) in
        if bmin <> max_int && !e + bmin <= target then begin
          let lo = !blk * block_bits and hi = min t.n ((!blk + 1) * block_bits) in
          let r = scan_block lo hi !e in
          if r >= 0 then res := Some r
        end;
        e := !e + t.tot.(t.base + !blk);
        incr blk
      done;
      !res
    end
  end

(* largest j < from with E(j) = target, or None; j = -1 (E(-1) = 0) is a
   valid answer.  Exact block gate: a block can hold E = target iff its
   minimum excess reaches the target. *)
let bwd_search t from target =
  (* test j = last, last-1, ..., lo-1; [e_last] = E(last); hit or min_int *)
  let scan_back lo last e_last =
    let e = ref e_last and res = ref min_int and j = ref last in
    while !res = min_int && !j >= lo - 1 do
      if !e = target then res := !j
      else begin
        if !j >= 0 then e := !e - bit_excess (Bitvec.unsafe_get t.bv !j);
        decr j
      end
    done;
    !res
  in
  if from <= 0 then (if target = 0 then Some (-1) else None)
  else begin
    let b0 = (from - 1) / block_bits in
    let lo0 = b0 * block_bits in
    let r = scan_back lo0 (from - 1) (excess t (from - 1)) in
    if r > min_int then Some r
    else begin
      let rec go blk =
        if blk < 0 then if target = 0 then Some (-1) else None
        else begin
          let e_before = if blk = 0 then 0 else excess t ((blk * block_bits) - 1) in
          let bmin = t.mins.(t.base + blk) in
          if bmin <> max_int && e_before + bmin <= target then begin
            let lo = blk * block_bits in
            let hi = min t.n ((blk + 1) * block_bits) in
            let r = scan_back lo (hi - 1) (excess t (hi - 1)) in
            if r > min_int then Some r else go (blk - 1)
          end
          else go (blk - 1)
        end
      in
      go (b0 - 1)
    end
  end

(* matching close of the open at [i] *)
let find_close t i =
  if not (is_open t i) then invalid_arg "Balanced_parens.find_close: not an open";
  match fwd_search t i (excess t i - 1) with
  | Some j -> j
  | None -> invalid_arg "Balanced_parens.find_close: unbalanced"

(* matching open of the close at [j] *)
let find_open t j =
  if is_open t j then invalid_arg "Balanced_parens.find_open: not a close";
  match bwd_search t j (excess t j) with
  | Some i -> i + 1
  | None -> invalid_arg "Balanced_parens.find_open: unbalanced"

(* open position of the tightest pair strictly enclosing the open at [i] *)
let enclose t i =
  if not (is_open t i) then invalid_arg "Balanced_parens.enclose: not an open";
  match bwd_search t i (excess t i - 2) with
  | Some j -> Some (j + 1)
  | None -> None

(* position of the leftmost minimum of E over [i..j]: partial edge
   blocks are scanned; the run of full blocks is resolved through the
   segment tree in O(log n), then the single winning block is scanned. *)
let rmq t i j =
  if i > j then invalid_arg "Balanced_parens.rmq";
  let best_pos = ref (-1) and best = ref max_int in
  let scan_range lo hi =
    (* positions lo..hi inclusive, strict < keeps the leftmost winner *)
    if lo <= hi then begin
      let e = ref (excess t (lo - 1)) in
      for p = lo to hi do
        e := !e + bit_excess (Bitvec.unsafe_get t.bv p);
        if !e < !best then begin
          best := !e;
          best_pos := p
        end
      done
    end
  in
  let bi = i / block_bits and bj = j / block_bits in
  if bi = bj then scan_range i j
  else begin
    (* left partial edge *)
    scan_range i ((bi + 1) * block_bits - 1);
    (* full blocks bi+1 .. bj-1 via the tree *)
    let ba = bi + 1 and bb = bj - 1 in
    if ba <= bb then begin
      (* find the leftmost block whose (base + min) is strictly below the
         current best; O(log) nodes, O(1) rank calls each *)
      let node_value v first_blk =
        if t.mins.(v) = max_int then max_int
        else begin
          let base = if first_blk = 0 then 0 else excess t ((first_blk * block_bits) - 1) in
          base + t.mins.(v)
        end
      in
      let best_blk = ref (-1) and best_blk_val = ref max_int in
      let rec go v vlo vhi =
        (* node v covers blocks [vlo, vhi) *)
        if vhi <= ba || vlo > bb || vlo >= t.nblocks then ()
        else if ba <= vlo && vhi - 1 <= bb then begin
          let value = node_value v vlo in
          if value < !best_blk_val then begin
            (* descend to the leftmost block realizing this minimum *)
            let rec down v vlo vhi =
              if v >= t.base then (v - t.base, node_value v vlo)
              else begin
                let mid = (vlo + vhi) / 2 in
                let lv = node_value (2 * v) vlo in
                if lv = value then down (2 * v) vlo mid else down ((2 * v) + 1) mid vhi
              end
            in
            let blk, bv = down v vlo vhi in
            if bv < !best_blk_val then begin
              best_blk_val := bv;
              best_blk := blk
            end
          end
        end
        else begin
          let mid = (vlo + vhi) / 2 in
          go (2 * v) vlo mid;
          go ((2 * v) + 1) mid vhi
        end
      in
      go 1 0 t.base;
      if !best_blk >= 0 && !best_blk_val < !best then begin
        let lo = !best_blk * block_bits in
        scan_range lo (min (t.n - 1) (lo + block_bits - 1))
      end
    end;
    (* right partial edge *)
    scan_range (bj * block_bits) j
  end;
  !best_pos

(* number of opens in [0, i) *)
let rank_open t i = Rank_select.rank1 t.rs i

(* position of the k-th (0-based) open *)
let select_open t k = Rank_select.select1 t.rs k

let depth t i = excess t i
let space_bits t = Rank_select.space_bits t.rs + ((Array.length t.tot + Array.length t.mins) * 63)
