lib/bp/balanced_parens.ml: Array Bitvec Dsdg_bits Rank_select String
