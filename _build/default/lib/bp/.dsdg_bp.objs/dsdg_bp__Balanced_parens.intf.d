lib/bp/balanced_parens.mli: Dsdg_bits
