lib/bp/cst.ml: Array Balanced_parens Bitvec Buffer Char Dsdg_bits Dsdg_sa Float Lcp List Rank_select Sais String
