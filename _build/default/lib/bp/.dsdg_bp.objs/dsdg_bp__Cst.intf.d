lib/bp/cst.mli:
