(* Compressed suffix tree (Sadakane-style): suffix-tree *topology* as
   balanced parentheses + the LCP array + the suffix array.  This is the
   "compressed suffix tree" component of the Belazzougui-Navarro index
   whose construction Appendix A.6 walks through (built there in
   O(n log^eps n) via Hon-Sadakane-Sung; here from the LCP-interval tree
   in linear time, which matches the SA-IS construction budget).

   Node identifiers are open-parenthesis positions in the BP sequence.
   Supported: parent / LCA / subtree leaf interval (= suffix-array
   range) / string depth / child navigation -- the navigation toolkit
   compressed indexes build on. *)

open Dsdg_bits
open Dsdg_sa

type t = {
  bp : Balanced_parens.t;
  leaves : Rank_select.t; (* marks the "(" of each leaf "()", in BP order *)
  sa : int array;
  lcp : int array;
  text_len : int;
}

(* --- construction: recursive lcp-interval decomposition ---

   The node over suffix-array interval [l, r) has string depth
   d = min lcp(l, r); its children are the segments between the
   positions where the lcp equals d.  A sparse-table RMQ on the lcp
   array makes each split O(1), so emission is linear in the number of
   parentheses. *)

module Rmq = struct
  (* sparse table over an int array: position of the minimum (leftmost) *)
  type t = { a : int array; table : int array array }

  let build a =
    let n = Array.length a in
    let levels = max 1 (int_of_float (Float.log2 (float_of_int (max 2 n))) + 1) in
    let table = Array.make levels [||] in
    table.(0) <- Array.init n (fun i -> i);
    for k = 1 to levels - 1 do
      let half = 1 lsl (k - 1) in
      let len = n - (1 lsl k) + 1 in
      if len > 0 then
        table.(k) <-
          Array.init len (fun i ->
              let x = table.(k - 1).(i) and y = table.(k - 1).(i + half) in
              if a.(x) <= a.(y) then x else y)
    done;
    { a; table }

  (* leftmost position of the minimum in [i, j] *)
  let query t i j =
    let len = j - i + 1 in
    let k = int_of_float (Float.log2 (float_of_int len)) in
    let x = t.table.(k).(i) and y = t.table.(k).(j - (1 lsl k) + 1) in
    if t.a.(x) <= t.a.(y) then x
    else if t.a.(y) < t.a.(x) then y
    else min x y
end

let build_from_sa (s : int array) (sa : int array) : t =
  let n = Array.length s in
  if n = 0 then invalid_arg "Cst.build: empty text";
  let lcp = Lcp.of_sa s sa in
  let buf = Buffer.create (4 * n) in
  if n = 1 then Buffer.add_string buf "(())"
  else begin
    let rmq = Rmq.build lcp in
    (* split positions of interval (l, r): all i in [l+1, r-1] with
       lcp.(i) = d (the minimum) *)
    let splits l r d =
      let acc = ref [] in
      let rec go lo hi =
        if lo <= hi then begin
          let m = Rmq.query rmq lo hi in
          if lcp.(m) = d then begin
            go (m + 1) hi;
            acc := m :: !acc;
            go lo (m - 1)
          end
        end
      in
      go (l + 1) (r - 1);
      !acc
    in
    (* explicit DFS: `Open/`Seg/`Close work items *)
    let stack = ref [ `Seg (0, n) ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | item :: rest ->
        stack := rest;
        (match item with
        | `Close -> Buffer.add_char buf ')'
        | `Seg (l, r) ->
          if r - l = 1 then Buffer.add_string buf "()"
          else begin
            Buffer.add_char buf '(';
            let d = lcp.(Rmq.query rmq (l + 1) (r - 1)) in
            let cuts = splits l r d in
            (* children segments: [l, c1), [c1, c2), ..., [ck, r) *)
            let bounds = (l :: cuts) @ [ r ] in
            let rec segs = function
              | a :: (b :: _ as rest) -> `Seg (a, b) :: segs rest
              | _ -> [ `Close ]
            in
            stack := segs bounds @ !stack
          end)
    done
  end;
  let str = Buffer.contents buf in
  let m = String.length str in
  let bv = Bitvec.create m in
  let leaves_bv = Bitvec.create m in
  String.iteri (fun i ch -> if ch = '(' then Bitvec.set bv i) str;
  for i = 0 to m - 2 do
    if str.[i] = '(' && str.[i + 1] = ')' then Bitvec.set leaves_bv i
  done;
  {
    bp = Balanced_parens.build bv;
    leaves = Rank_select.build leaves_bv;
    sa;
    lcp;
    text_len = n;
  }

let build (s : int array) : t = build_from_sa s (Sais.suffix_array s)

let build_string (str : string) : t =
  build (Array.init (String.length str) (fun i -> Char.code str.[i]))

(* --- navigation; a node is its open-paren position --- *)

let root _t = 0
let leaf_count t = Rank_select.ones t.leaves
let is_leaf t v = Rank_select.get t.leaves v

(* the k-th (0-based) leaf in BP order = suffix-array rank k *)
let leaf t k = Rank_select.select1 t.leaves k

(* number of leaves strictly before BP position v *)
let leaf_rank t v = Rank_select.rank1 t.leaves v

let parent t v = if v = 0 then None else Balanced_parens.enclose t.bp v

(* suffix-array interval [l, r) of the subtree at v *)
let sa_interval t v =
  let close = Balanced_parens.find_close t.bp v in
  (leaf_rank t v, leaf_rank t close)

let subtree_leaves t v =
  let l, r = sa_interval t v in
  r - l

(* string depth: leaves know their suffix length; internal nodes take the
   minimum lcp strictly inside their leaf interval *)
let string_depth t v =
  if is_leaf t v then t.text_len - t.sa.(leaf_rank t v)
  else begin
    let l, r = sa_interval t v in
    (* min over lcp[l+1 .. r-1] *)
    let m = ref max_int in
    for i = l + 1 to r - 1 do
      if t.lcp.(i) < !m then m := t.lcp.(i)
    done;
    if !m = max_int then 0 else !m
  end

(* first child, next sibling: standard BP hops *)
let first_child t v = if is_leaf t v then None else Some (v + 1)

let next_sibling t v =
  let close = Balanced_parens.find_close t.bp v in
  if close + 1 < Balanced_parens.length t.bp && Balanced_parens.is_open t.bp (close + 1) then
    Some (close + 1)
  else None

let children t v =
  let rec go acc = function
    | None -> List.rev acc
    | Some c -> go (c :: acc) (next_sibling t c)
  in
  go [] (first_child t v)

(* LCA of two nodes (open positions): standard BP formula via rmq on the
   excess sequence *)
let lca t u v =
  let u, v = if u <= v then (u, v) else (v, u) in
  if u = v then u
  else begin
    let close_u = Balanced_parens.find_close t.bp u in
    if v <= close_u then u (* u is an ancestor of v *)
    else begin
      let k = Balanced_parens.rmq t.bp u v in
      (* k is the position of minimum excess in [u, v]: the close paren
         of the last child of the LCA before v; its enclosing open is
         the LCA *)
      if Balanced_parens.is_open t.bp k then
        match Balanced_parens.enclose t.bp k with Some p -> p | None -> 0
      else begin
        let o = Balanced_parens.find_open t.bp k in
        match Balanced_parens.enclose t.bp o with Some p -> p | None -> 0
      end
    end
  end

(* the suffix-tree locus spelling of the paper's two-step queries: the
   suffix-array interval of a node IS its pattern range *)
let depth t v = Balanced_parens.depth t.bp v

let space_bits t =
  Balanced_parens.space_bits t.bp + Rank_select.space_bits t.leaves
  + (Array.length t.sa * 63) + (Array.length t.lcp * 63) + (3 * 63)

(* Expose the suffix array (for tests and integrations). *)
let sa t = t.sa
