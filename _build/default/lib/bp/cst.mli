(** Compressed suffix tree (Sadakane-style): suffix-tree topology as
    balanced parentheses over the LCP-interval tree, plus the suffix and
    LCP arrays — the CST component of the index whose construction
    Appendix A.6 describes. A node is the BP position of its open
    parenthesis; leaves appear in suffix-array order. *)

type t

(** Build from a non-negative int array (suffix array computed with
    SA-IS). Raises on empty input. *)
val build : int array -> t

val build_string : string -> t

(** Build reusing an existing suffix array. *)
val build_from_sa : int array -> int array -> t

(** The root node (BP position 0). *)
val root : t -> int

val leaf_count : t -> int
val is_leaf : t -> int -> bool

(** [leaf t k]: the node of the suffix with suffix-array rank [k]. *)
val leaf : t -> int -> int

(** Leaves strictly before BP position [v]. *)
val leaf_rank : t -> int -> int

val parent : t -> int -> int option

(** Suffix-array interval [l, r) of the subtree at [v] — the node's
    pattern range, the paper's range-finding output. *)
val sa_interval : t -> int -> int * int

val subtree_leaves : t -> int -> int

(** Length of the string spelled from the root to [v]. *)
val string_depth : t -> int -> int

val first_child : t -> int -> int option
val next_sibling : t -> int -> int option
val children : t -> int -> int list

(** Lowest common ancestor of two nodes. *)
val lca : t -> int -> int -> int

(** Tree depth (number of ancestors). *)
val depth : t -> int -> int

(** The underlying suffix array. *)
val sa : t -> int array

val space_bits : t -> int
