(** Balanced parentheses with a range min-max directory (after
    Navarro-Sadakane [37]): the succinct-tree substrate under compressed
    suffix trees. Positions with an open paren are tree nodes. *)

type t

(** Build from a bit vector (1 = open paren). *)
val build : Dsdg_bits.Bitvec.t -> t

(** Build from a string of ['('] / [')']. *)
val of_string : string -> t

val length : t -> int
val is_open : t -> int -> bool

(** E(i): number of opens minus closes in positions [0..i]; E(-1) = 0. *)
val excess : t -> int -> int

(** Smallest j > from with E(j) = target; requires target < E(from). *)
val fwd_search : t -> int -> int -> int option

(** Largest j < from with E(j) = target (j = -1 allowed). *)
val bwd_search : t -> int -> int -> int option

(** Matching close of the open at [i]. *)
val find_close : t -> int -> int

(** Matching open of the close at [j]. *)
val find_open : t -> int -> int

(** Open position of the tightest enclosing pair, or [None] at the
    root. *)
val enclose : t -> int -> int option

(** Leftmost position of the minimum excess in [i..j] (LCA machinery). *)
val rmq : t -> int -> int -> int

(** Opens in [0, i). *)
val rank_open : t -> int -> int

(** Position of the k-th (0-based) open. *)
val select_open : t -> int -> int

(** Tree depth of position [i] (= its excess). *)
val depth : t -> int -> int

val space_bits : t -> int
