lib/dynseq/dyn_wavelet.ml: Array Dyn_bitvec
