lib/dynseq/dyn_bitvec.mli:
