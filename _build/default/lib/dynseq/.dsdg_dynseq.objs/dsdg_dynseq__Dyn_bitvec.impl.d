lib/dynseq/dyn_bitvec.ml: Array Dsdg_bits List Popcount
