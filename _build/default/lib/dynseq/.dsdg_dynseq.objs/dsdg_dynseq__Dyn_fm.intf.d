lib/dynseq/dyn_fm.mli:
