lib/dynseq/dyn_wavelet.mli:
