lib/dynseq/dyn_fm.ml: Array Char Dsdg_delbits Dyn_wavelet Fenwick Hashtbl List String
