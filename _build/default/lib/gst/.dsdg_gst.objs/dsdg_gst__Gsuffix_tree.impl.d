lib/gst/gsuffix_tree.ml: Char Hashtbl List String
