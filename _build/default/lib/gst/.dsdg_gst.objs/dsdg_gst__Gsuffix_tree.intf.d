lib/gst/gsuffix_tree.mli:
