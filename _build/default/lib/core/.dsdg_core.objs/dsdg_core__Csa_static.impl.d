lib/core/csa_static.ml: Array Bitvec Bwt Bytes Char Doc_map Dsdg_bits Dsdg_fm Dsdg_sa Elias_fano Int_vec Rank_select Sais String
