lib/core/dynamic_index.mli:
