lib/core/fm_static.ml: Dsdg_fm Fm_index
