lib/core/dynamic_index.ml: Csa_static Fm_static List Sa_static Transform1 Transform2
