lib/core/static_index.ml:
