lib/core/sa_static.ml: Array Char Doc_map Dsdg_fm Dsdg_sa Sais String
