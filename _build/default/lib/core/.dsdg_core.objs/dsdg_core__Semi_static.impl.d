lib/core/semi_static.ml: Array Dsdg_delbits Hashtbl List Reporter Static_index
