lib/core/transform2.ml: Array Dsdg_gst Dsdg_incr Gsuffix_tree Hashtbl Incremental List Option Printf Semi_static Static_index String
