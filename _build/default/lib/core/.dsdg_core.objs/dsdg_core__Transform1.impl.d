lib/core/transform1.ml: Array Dsdg_gst Gsuffix_tree Hashtbl List Option Printf Semi_static Static_index String
