(* Compressed suffix array in the style of Sadakane [39]: the psi
   function, increasing within each first-symbol block, is stored in
   per-block Elias-Fano (~ n(H0 + O(1)) bits); range-finding is binary
   search with psi-driven suffix extraction (trange = O(|P| log n), the
   Table 1 row for [39]); locate/extract/suffix-rank use text-position
   sampling at rate [sample] exactly like the FM backend, but walking psi
   forward instead of LF backward.

   A third, genuinely different Static_index.S backend: plugging it into
   the Transformations demonstrates the framework's "works for any
   suffix-array-shaped index" claim. *)

open Dsdg_bits
open Dsdg_fm
open Dsdg_sa

let sep = 1
let sym_of_char c = Char.code c + 2
let char_of_sym s = Char.chr (s - 2)
let sigma = 258

type t = {
  docs : Doc_map.t;
  m : int; (* rows = total_len + 1 *)
  c_before : int array; (* first-symbol block boundaries *)
  psi_blocks : Elias_fano.t option array; (* per symbol: psi values of its block *)
  sample : int;
  marked : Rank_select.t; (* rows whose text position is ≡ 0 (mod s) *)
  sample_vals : Int_vec.t;
  isa : Int_vec.t; (* isa.(i) = row of suffix at i*sample *)
}

let name = "csa"

let build ?(tick = fun () -> ()) ~sample (doc_strs : string array) : t =
  if sample < 1 then invalid_arg "Csa_static.build: sample < 1";
  let docs = Doc_map.of_lengths (Array.map String.length doc_strs) in
  let n = Doc_map.total_len docs in
  let m = n + 1 in
  let conc = Array.make m 0 in
  Array.iteri
    (fun d str ->
      let st = Doc_map.doc_start docs d in
      String.iteri (fun i ch -> conc.(st + i) <- sym_of_char ch) str;
      conc.(st + String.length str) <- sep;
      tick ())
    doc_strs;
  let sa = Sais.raw ~tick conc sigma in
  let isa_full = Array.make m 0 in
  Array.iteri
    (fun row pos ->
      tick ();
      isa_full.(pos) <- row)
    sa;
  (* psi.(row) = row of the suffix one position later (cyclically) *)
  let psi = Array.make m 0 in
  Array.iteri
    (fun row pos ->
      tick ();
      psi.(row) <- isa_full.((pos + 1) mod m))
    sa;
  let c_before = Bwt.counts_before conc sigma in
  (* per first-symbol block, psi is increasing: Elias-Fano each block *)
  let psi_blocks =
    Array.init sigma (fun c ->
        let lo = c_before.(c) and hi = if c + 1 < sigma then c_before.(c + 1) else m in
        if hi <= lo then None
        else begin
          tick ();
          Some (Elias_fano.build (Array.sub psi lo (hi - lo)))
        end)
  in
  (* sampling: positions ≡ 0 (mod s) plus the sentinel position n, so
     the forward psi-walk of [position_of_row] always terminates before
     wrapping *)
  let sampled pos = pos = n || pos mod sample = 0 in
  let mark_bv = Bitvec.create m in
  let n_samples = ref 0 in
  Array.iteri
    (fun row pos ->
      if sampled pos then begin
        Bitvec.set mark_bv row;
        incr n_samples
      end)
    sa;
  let sample_vals = Int_vec.create ~width:(max 1 (Int_vec.width_for (max 1 n))) !n_samples in
  let k = ref 0 in
  Array.iter
    (fun pos ->
      tick ();
      if sampled pos then begin
        Int_vec.set sample_vals !k pos;
        incr k
      end)
    sa;
  let n_isa = (n / sample) + 1 in
  let isa = Int_vec.create ~width:(max 1 (Int_vec.width_for m)) n_isa in
  for i = 0 to n_isa - 1 do
    tick ();
    Int_vec.set isa i isa_full.(i * sample)
  done;
  {
    docs;
    m;
    c_before;
    psi_blocks;
    sample;
    marked = Rank_select.build mark_bv;
    sample_vals;
    isa;
  }

let doc_count t = Doc_map.doc_count t.docs
let doc_len t d = Doc_map.doc_len t.docs d
let total_len t = Doc_map.total_len t.docs
let row_count t = t.m

(* First symbol of the suffix in [row]: binary search over the C array. *)
let first_symbol t row =
  let lo = ref 0 and hi = ref sigma in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.c_before.(mid) <= row then lo := mid else hi := mid
  done;
  !lo

let[@inline] psi t row =
  let c = first_symbol t row in
  match t.psi_blocks.(c) with
  | None -> invalid_arg "Csa_static.psi: corrupt blocks"
  | Some ef -> Elias_fano.get ef (row - t.c_before.(c))

(* Lexicographic comparison of pattern [p] (mapped symbols) against the
   suffix in [row], extracting suffix symbols with psi steps. *)
let compare_suffix t (p : int array) row =
  (* -1: suffix < p; 0: suffix starts with p; 1: suffix > p *)
  let rec go row k =
    if k >= Array.length p then 0
    else begin
      let c = first_symbol t row in
      if c < p.(k) then -1 else if c > p.(k) then 1 else go (psi t row) (k + 1)
    end
  in
  go row 0

let range t (pat : string) : (int * int) option =
  if String.length pat = 0 then invalid_arg "Csa_static.range: empty pattern";
  let p = Array.init (String.length pat) (fun i -> sym_of_char pat.[i]) in
  (* restrict to the block of the first symbol, then binary search *)
  let c0 = p.(0) in
  let blo = t.c_before.(c0) and bhi = if c0 + 1 < sigma then t.c_before.(c0 + 1) else t.m in
  if bhi <= blo then None
  else begin
    (* first row with suffix >= p *)
    let lo = ref blo and hi = ref bhi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare_suffix t p mid < 0 then lo := mid + 1 else hi := mid
    done;
    let first = !lo in
    let lo = ref first and hi = ref bhi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare_suffix t p mid <= 0 then lo := mid + 1 else hi := mid
    done;
    if first >= !lo then None else Some (first, !lo)
  end

(* Text position of the suffix in [row]: psi-walk forward to a sampled
   row; position = sample - steps. *)
let position_of_row t row =
  let row = ref row and steps = ref 0 in
  while not (Rank_select.get t.marked !row) do
    row := psi t !row;
    incr steps
  done;
  let idx = Rank_select.rank1 t.marked !row in
  Int_vec.get t.sample_vals idx - !steps

let locate t row =
  if row < 0 || row >= t.m then invalid_arg "Csa_static.locate";
  Doc_map.locate t.docs (position_of_row t row)

(* Row of the suffix starting at global text position [pos]. *)
let row_of_position t pos =
  let n = total_len t in
  if pos < 0 || pos > n then invalid_arg "Csa_static.row_of_position";
  if pos = n then (* sentinel row *) 0
  else begin
    let anchor = (pos / t.sample) * t.sample in
    let row = ref (Int_vec.get t.isa (pos / t.sample)) in
    for _ = 1 to pos - anchor do
      row := psi t !row
    done;
    !row
  end

let extract t ~doc ~off ~len =
  let dl = doc_len t doc in
  if off < 0 || len < 0 || off + len > dl then invalid_arg "Csa_static.extract: out of document";
  let g = Doc_map.doc_start t.docs doc + off in
  let row = ref (row_of_position t g) in
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set buf i (char_of_sym (first_symbol t !row));
    row := psi t !row
  done;
  Bytes.unsafe_to_string buf

let iter_doc_rows t doc ~f =
  let st = Doc_map.doc_start t.docs doc in
  let l = doc_len t doc in
  let row = ref (row_of_position t st) in
  f !row;
  for _ = 1 to l do
    row := psi t !row;
    f !row
  done

let space_bits t =
  Array.fold_left
    (fun a -> function None -> a | Some ef -> a + Elias_fano.space_bits ef)
    0 t.psi_blocks
  + (Array.length t.c_before * 63)
  + Rank_select.space_bits t.marked + Int_vec.space_bits t.sample_vals + Int_vec.space_bits t.isa
  + Doc_map.space_bits t.docs + (4 * 63)
