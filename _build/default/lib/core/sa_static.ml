(* Plain suffix-array static index: the O(n log sigma)-plus-index-class
   baseline (stand-in for Grossi-Vitter [22] in Table 3).  Range-finding
   is binary search (O(|P| log n)); locating is O(1) (explicit suffix
   array); extraction is O(l) (explicit text).  Uses Theta(n log n) bits.

   The substitution is documented in DESIGN.md: what matters for the
   paper's claims is the *class* (fast queries, uncompressed space) and
   the Static_index.S contract, both of which this satisfies. *)

open Dsdg_fm
open Dsdg_sa

type t = {
  docs : Doc_map.t;
  conc : int array; (* mapped symbols: sep = 1, char c = code c + 2 *)
  sa : int array;
  isa : int array;
}

let name = "sa"

let sym_of_char c = Char.code c + 2

let build ?(tick = fun () -> ()) ~sample (doc_strs : string array) : t =
  ignore sample;
  let docs = Doc_map.of_lengths (Array.map String.length doc_strs) in
  let n = Doc_map.total_len docs in
  let conc = Array.make (max n 1) 0 in
  Array.iteri
    (fun d str ->
      let st = Doc_map.doc_start docs d in
      String.iteri (fun i ch -> conc.(st + i) <- sym_of_char ch) str;
      conc.(st + String.length str) <- 1;
      tick ())
    doc_strs;
  let conc = if n = 0 then [||] else Array.sub conc 0 n in
  let sa = Sais.suffix_array ~tick conc in
  let isa = Array.make n 0 in
  Array.iteri
    (fun row pos ->
      tick ();
      isa.(pos) <- row)
    sa;
  { docs; conc; sa; isa }

let doc_count t = Doc_map.doc_count t.docs
let doc_len t d = Doc_map.doc_len t.docs d
let total_len t = Doc_map.total_len t.docs
let row_count t = Array.length t.sa

(* Compare pattern p (mapped) against the suffix at position [pos]:
   -1 / 0 / +1 where 0 means the suffix starts with p. *)
let compare_prefix t (p : int array) pos =
  let n = Array.length t.conc and pl = Array.length p in
  let rec go k =
    if k >= pl then 0
    else if pos + k >= n then 1 (* suffix exhausted: suffix < p *)
    else if t.conc.(pos + k) < p.(k) then 1
    else if t.conc.(pos + k) > p.(k) then -1
    else go (k + 1)
  in
  (* returns -1 if suffix > p-prefix, +1 if suffix < p, 0 if starts with *)
  go 0

let range t (pat : string) : (int * int) option =
  if String.length pat = 0 then invalid_arg "Sa_static.range: empty pattern";
  let p = Array.init (String.length pat) (fun i -> sym_of_char pat.[i]) in
  let n = Array.length t.sa in
  (* lower bound: first row whose suffix is >= p (i.e. not < p) *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_prefix t p t.sa.(mid) = 1 then lo := mid + 1 else hi := mid
  done;
  let first = !lo in
  (* upper bound: first row whose suffix is > every p-prefixed string *)
  let lo = ref first and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_prefix t p t.sa.(mid) >= 0 then lo := mid + 1 else hi := mid
  done;
  if first >= !lo then None else Some (first, !lo)

let locate t row = Doc_map.locate t.docs t.sa.(row)

let extract t ~doc ~off ~len =
  let dl = doc_len t doc in
  if off < 0 || len < 0 || off + len > dl then invalid_arg "Sa_static.extract: out of document";
  let st = Doc_map.doc_start t.docs doc in
  String.init len (fun i -> Char.chr (t.conc.(st + off + i) - 2))

let iter_doc_rows t doc ~f =
  let st = Doc_map.doc_start t.docs doc in
  let l = doc_len t doc in
  for pos = st + l downto st do
    f t.isa.(pos)
  done

let space_bits t =
  ((Array.length t.conc + Array.length t.sa + Array.length t.isa) * 63)
  + Doc_map.space_bits t.docs
