(* Fm_index packaged as a Static_index.S: the compressed (nHk-style)
   static index plugged into the Transformations (the role of the
   Belazzougui-Navarro / Barbay et al. indexes in Section 4). *)

open Dsdg_fm

type t = Fm_index.t

let name = "fm"
let build = Fm_index.build
let doc_count = Fm_index.doc_count
let doc_len = Fm_index.doc_len
let total_len = Fm_index.total_len
let row_count = Fm_index.row_count
let range = Fm_index.range
let locate = Fm_index.locate
let extract = Fm_index.extract
let iter_doc_rows = Fm_index.iter_doc_rows
let space_bits = Fm_index.space_bits
