(* Transformation 1 (Section 2): static index -> fully-dynamic index with
   amortized update bounds.

   The collection is split into C0 (an uncompressed generalized suffix
   tree) and sub-collections C1..Cr held in semi-static deletion-only
   indexes whose maximum sizes grow geometrically:

       max_j = 2 (nf / log^2 nf) * log^(eps*j) nf.

   A new document goes to the smallest Cj that can absorb it together
   with all smaller sub-collections (logarithmic method).  Deletions are
   lazy; a sub-collection is purged when a 1/tau fraction of its symbols
   is dead.  A global rebuild re-snapshots nf when the live size doubles
   or halves.

   The schedule is pluggable: [geometric] gives the paper's
   Transformation 1 (O(1) sub-collections, O(u log^eps n) insertion);
   [doubling] gives Transformation 3 from Appendix A.4 (O(log log n)
   sub-collections, O(u log log n) insertion). *)

open Dsdg_gst

type schedule = {
  schedule_name : string;
  slots : int -> int; (* nf -> index r of the last sub-collection *)
  max_size : int -> int -> int; (* nf -> j -> max_j *)
}

let log2 x = log x /. log 2.

let geometric ?(epsilon = 0.5) () =
  let r = int_of_float (ceil (2. /. epsilon)) + 1 in
  {
    schedule_name = Printf.sprintf "geometric(eps=%.2f)" epsilon;
    slots = (fun _nf -> r);
    max_size =
      (fun nf j ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        let base = 2. *. nff /. (lg *. lg) in
        max 64 (int_of_float (base *. (lg ** (epsilon *. float_of_int j)))));
  }

let doubling () =
  {
    schedule_name = "doubling";
    slots =
      (fun nf ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        max 2 (int_of_float (ceil (2. *. log2 lg)) + 1));
    max_size =
      (fun nf j ->
        let nff = float_of_int (max nf 256) in
        let lg = max 2. (log2 nff) in
        let base = 2. *. nff /. (lg *. lg) in
        max 64 (int_of_float (base *. (2. ** float_of_int j))));
  }

type location = In_buffer | In_sub of int

type stats = {
  mutable merges : int;
  mutable purges : int;
  mutable global_rebuilds : int;
  mutable symbols_rebuilt : int;
}

module Make (I : Static_index.S) = struct
  module SS = Semi_static.Make (I)

  (* Sub-collection slots are stored in a fixed array of generous size;
     the live prefix in use is [1 .. slots nf]. *)
  let max_slots = 64

  type t = {
    schedule : schedule;
    sample : int;
    tau : int;
    mutable gst : Gsuffix_tree.t; (* C0 *)
    subs : SS.t option array; (* C_1 .. C_r *)
    locs : (int, location) Hashtbl.t;
    mutable next_id : int;
    mutable nf : int;
    mutable live : int; (* live symbols including separators *)
    stats : stats;
  }

  let create ?(schedule = geometric ()) ?(sample = 8) ?(tau = 8) () =
    {
      schedule;
      sample;
      tau;
      gst = Gsuffix_tree.create ();
      subs = Array.make (max_slots + 1) None;
      locs = Hashtbl.create 64;
      next_id = 0;
      nf = 256;
      live = 0;
      stats = { merges = 0; purges = 0; global_rebuilds = 0; symbols_rebuilt = 0 };
    }

  let r_of t = min max_slots (t.schedule.slots t.nf)
  let max_size t j = t.schedule.max_size t.nf j
  let sub_size t j = match t.subs.(j) with None -> 0 | Some ss -> SS.live_symbols ss

  let doc_count t = Hashtbl.length t.locs
  let total_symbols t = t.live
  let stats t = t.stats
  let schedule_name t = t.schedule.schedule_name

  (* Gather all live documents of slot [j] (None -> []). *)
  let sub_docs t j =
    match t.subs.(j) with
    | None -> []
    | Some ss -> SS.live_docs ss

  let gst_docs t =
    List.filter_map (fun d -> Option.map (fun s -> (d, s)) (Gsuffix_tree.get_doc t.gst d))
      (Gsuffix_tree.doc_ids t.gst)

  let build_sub t (docs : (int * string) list) : SS.t =
    let arr = Array.of_list docs in
    t.stats.symbols_rebuilt <-
      t.stats.symbols_rebuilt + Array.fold_left (fun a (_, s) -> a + String.length s + 1) 0 arr;
    SS.build ~sample:t.sample ~tau:t.tau arr

  let set_locations t docs loc = List.iter (fun (id, _) -> Hashtbl.replace t.locs id loc) docs

  (* Move every live document into the top sub-collection and re-snapshot
     nf (the paper's global re-build). *)
  let global_rebuild t ~extra =
    t.stats.global_rebuilds <- t.stats.global_rebuilds + 1;
    let docs = ref (gst_docs t) in
    for j = 1 to max_slots do
      docs := sub_docs t j @ !docs;
      t.subs.(j) <- None
    done;
    let docs = (match extra with None -> !docs | Some d -> d :: !docs) in
    t.gst <- Gsuffix_tree.create ();
    let total = List.fold_left (fun a (_, s) -> a + String.length s + 1) 0 docs in
    t.nf <- max 256 total;
    t.live <- total;
    let r = r_of t in
    if docs <> [] then begin
      t.subs.(r) <- Some (build_sub t docs);
      set_locations t docs (In_sub r)
    end

  let insert t (text : string) : int =
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    let tlen = String.length text + 1 in
    let r = r_of t in
    if Gsuffix_tree.live_symbols t.gst + tlen <= max_size t 0 then begin
      Gsuffix_tree.insert t.gst ~doc:id text;
      Hashtbl.replace t.locs id In_buffer;
      t.live <- t.live + tlen
    end
    else begin
      (* smallest j with |C0| + .. + |Cj| + |T| <= max_j *)
      let rec find j acc =
        if j > r then None
        else begin
          let acc = acc + sub_size t j in
          if acc + tlen <= max_size t j then Some (j, acc) else find (j + 1) acc
        end
      in
      match find 1 (Gsuffix_tree.live_symbols t.gst) with
      | Some (j, _) ->
        t.stats.merges <- t.stats.merges + 1;
        let docs = ref [ (id, text) ] in
        docs := gst_docs t @ !docs;
        for i = 1 to j do
          docs := sub_docs t i @ !docs;
          t.subs.(i) <- None
        done;
        t.gst <- Gsuffix_tree.create ();
        t.subs.(j) <- Some (build_sub t !docs);
        set_locations t !docs (In_sub j);
        t.live <- t.live + tlen
      | None -> global_rebuild t ~extra:(Some (id, text))
    end;
    if t.live > 2 * t.nf then global_rebuild t ~extra:None;
    id

  (* Purge a sub-collection that has accumulated too many dead symbols:
     rebuild it in place from its live documents. *)
  let purge t j =
    match t.subs.(j) with
    | None -> ()
    | Some ss ->
      t.stats.purges <- t.stats.purges + 1;
      let docs = SS.live_docs ss in
      if docs = [] then t.subs.(j) <- None
      else begin
        t.subs.(j) <- Some (build_sub t docs);
        set_locations t docs (In_sub j)
      end

  let delete t id =
    match Hashtbl.find_opt t.locs id with
    | None -> false
    | Some In_buffer ->
      let len = String.length (Option.get (Gsuffix_tree.get_doc t.gst id)) + 1 in
      ignore (Gsuffix_tree.delete t.gst id);
      Hashtbl.remove t.locs id;
      t.live <- t.live - len;
      if t.live * 2 < t.nf && t.nf > 256 then global_rebuild t ~extra:None;
      true
    | Some (In_sub j) -> (
      match t.subs.(j) with
      | None -> false
      | Some ss ->
        let len = match SS.doc_len ss id with None -> 0 | Some l -> l + 1 in
        let ok = SS.delete ss id in
        if ok then begin
          Hashtbl.remove t.locs id;
          t.live <- t.live - len;
          if SS.needs_purge ss then purge t j;
          if t.live * 2 < t.nf && t.nf > 256 then global_rebuild t ~extra:None
        end;
        ok)

  let mem t id = Hashtbl.mem t.locs id

  let search t p ~f =
    Gsuffix_tree.search t.gst p ~f;
    for j = 1 to max_slots do
      match t.subs.(j) with None -> () | Some ss -> SS.search ss p ~f
    done

  let matches t p =
    let acc = ref [] in
    search t p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc

  let count t p =
    let c = ref (Gsuffix_tree.count t.gst p) in
    for j = 1 to max_slots do
      match t.subs.(j) with None -> () | Some ss -> c := !c + SS.count ss p
    done;
    !c

  let extract t ~doc ~off ~len =
    match Hashtbl.find_opt t.locs doc with
    | None -> None
    | Some In_buffer -> (
      match Gsuffix_tree.get_doc t.gst doc with
      | None -> None
      | Some s -> if off < 0 || len < 0 || off + len > String.length s then None else Some (String.sub s off len))
    | Some (In_sub j) -> (
      match t.subs.(j) with None -> None | Some ss -> SS.extract ss ~doc ~off ~len)

  (* Merge everything into one sub-collection now (an explicit global
     rebuild): afterwards queries probe a single static index plus the
     empty C0.  The library-management analogue of a force-merge. *)
  let consolidate t = global_rebuild t ~extra:None

  (* Live sizes of all sub-collections: the measured counterpart of the
     paper's Figure 1. *)
  let census t =
    let acc = ref [ ("C0", Gsuffix_tree.live_symbols t.gst) ] in
    for j = 1 to max_slots do
      match t.subs.(j) with
      | None -> ()
      | Some ss -> acc := (Printf.sprintf "C%d" j, SS.live_symbols ss) :: !acc
    done;
    List.rev !acc

  let space_bits t =
    let sub_space =
      Array.fold_left (fun a -> function None -> a | Some ss -> a + SS.space_bits ss) 0 t.subs
    in
    Gsuffix_tree.space_bits t.gst + sub_space + (Hashtbl.length t.locs * 3 * 63)
end
