lib/incr/incremental.ml: Effect
