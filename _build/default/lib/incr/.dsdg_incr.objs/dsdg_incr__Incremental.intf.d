lib/incr/incremental.mli:
