(** FM-index over a document collection: the static compressed index
    plugged into the paper's Transformations.

    Built from the SA-IS suffix array; the BWT lives in a Huffman-shaped
    wavelet tree (~ nH0(BWT) bits); suffix-array sampling at rate
    [sample] gives the s-parameterised trade-off of Table 1:
    locate in O(s) wavelet operations per occurrence, extract in
    O(l + s), suffix-rank (tSA) in O(s). Patterns are byte strings and
    never match across document boundaries. *)

type t

(** [build ~sample docs]. [tick] is called once per O(1) construction
    work (for background rebuilds). *)
val build : ?tick:(unit -> unit) -> sample:int -> string array -> t

val doc_count : t -> int

(** Length of document [d] (excluding its separator). *)
val doc_len : t -> int -> int

(** Total symbols including one separator per document. *)
val total_len : t -> int

(** Suffix-array rows = total_len + 1 (sentinel row). *)
val row_count : t -> int

val sample_rate : t -> int

(** [range t p] is the half-open row range of suffixes starting with
    [p], or [None]. O(|P|) wavelet operations. *)
val range : t -> string -> (int * int) option

val count : t -> string -> int

(** [locate t row] is the (document, offset) of the suffix in [row].
    O(sample) wavelet operations. *)
val locate : t -> int -> int * int

(** Report every occurrence of a pattern. *)
val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit

(** [extract t ~doc ~off ~len] recovers a document substring in
    O(len + sample) wavelet operations. *)
val extract : t -> doc:int -> off:int -> len:int -> string

(** Row of the suffix starting at [(doc, off)]; tSA = O(sample). *)
val suffix_row : t -> doc:int -> off:int -> int

(** Rows of every suffix of a document including its separator, in
    decreasing position order: one O(sample) anchor walk plus O(1) per
    symbol. The lazy-deletion workhorse. *)
val iter_doc_rows : t -> int -> f:(int -> unit) -> unit

val space_bits : t -> int
