(* Mapping between global positions in a document concatenation and
   (document, offset) pairs.

   The concatenation is doc_0 SEP doc_1 SEP ... doc_{r-1} SEP, so document
   [d] owns global positions [starts.(d), starts.(d+1) - 1) and position
   [starts.(d+1) - 1] is its separator. *)

type t = {
  starts : int array; (* length = doc_count + 1; starts.(doc_count) = n *)
}

let of_lengths (lens : int array) : t =
  let r = Array.length lens in
  let starts = Array.make (r + 1) 0 in
  for d = 0 to r - 1 do
    starts.(d + 1) <- starts.(d) + lens.(d) + 1
  done;
  { starts }

let doc_count t = Array.length t.starts - 1
let total_len t = t.starts.(doc_count t)
let doc_start t d = t.starts.(d)
let doc_len t d = t.starts.(d + 1) - t.starts.(d) - 1

(* Global position -> (doc, offset).  The offset may equal the document
   length, in which case the position is the document's separator. *)
let locate t p =
  if p < 0 || p >= total_len t then invalid_arg "Doc_map.locate";
  (* binary search: largest d with starts.(d) <= p *)
  let lo = ref 0 and hi = ref (doc_count t) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.starts.(mid) <= p then lo := mid else hi := mid
  done;
  (!lo, p - t.starts.(!lo))

let space_bits t = Array.length t.starts * 63
