(** Mapping between global positions of a separator-joined document
    concatenation and (document, offset) pairs. *)

type t

(** [of_lengths lens]: document [d] owns the half-open global range
    starting at the sum of earlier lengths+1, its separator last. *)
val of_lengths : int array -> t

val doc_count : t -> int

(** Total symbols including one separator per document. *)
val total_len : t -> int

val doc_start : t -> int -> int
val doc_len : t -> int -> int

(** Global position -> (document, offset); the offset equals the
    document length when the position is its separator. *)
val locate : t -> int -> int * int

val space_bits : t -> int
