(* FM-index over a document collection: the static compressed index "Is"
   plugged into the paper's Transformations.

   Construction: concatenate documents with a separator, build the suffix
   array with SA-IS, take the BWT and store it in a Huffman-shaped wavelet
   tree (~ nH0 of the BWT ~ nHk of the text, by the usual BWT argument).
   Suffix-array sampling at rate [s] gives tlocate = O(s log sigma) per
   occurrence, textract = O((l + s) log sigma) and tSA = O(s log sigma) --
   the interface contract the Transformations rely on (their [tick]-able
   construction makes the index (u(n), w(n))-constructible in the paper's
   sense).

   Symbol mapping: sentinel = 0 (SA-IS internal), separator = 1, character
   c = Char.code c + 2.  Patterns use only symbols >= 2, so matches never
   cross document boundaries. *)

open Dsdg_bits
open Dsdg_sa
open Dsdg_wavelet

let sep = 1
let sym_of_char c = Char.code c + 2
let char_of_sym s = Char.chr (s - 2)
let sigma = 258

type t = {
  docs : Doc_map.t;
  m : int; (* number of BWT rows = total_len + 1 (sentinel) *)
  bwt : Huffman_wavelet.t;
  c_before : int array; (* c_before.(c) = #symbols < c in the BWT *)
  sample : int; (* sampling rate s *)
  marked : Rank_select.t; (* rows whose suffix position is ≡ 0 (mod s) *)
  sample_vals : Int_vec.t; (* position / s for marked rows, in row order *)
  isa : Int_vec.t; (* isa.(i) = row of the suffix starting at i*s *)
}

let no_tick () = ()

let build ?(tick = no_tick) ~sample (doc_strs : string array) : t =
  if sample < 1 then invalid_arg "Fm_index.build: sample < 1";
  let docs = Doc_map.of_lengths (Array.map String.length doc_strs) in
  let n = Doc_map.total_len docs in
  let m = n + 1 in
  (* concatenation plus final sentinel *)
  let conc = Array.make m 0 in
  Array.iteri
    (fun d str ->
      let st = Doc_map.doc_start docs d in
      String.iteri (fun i ch -> conc.(st + i) <- sym_of_char ch) str;
      conc.(st + String.length str) <- sep;
      tick ())
    doc_strs;
  let sa = Sais.raw ~tick conc sigma in
  let bwt_arr = Bwt.of_sa conc sa in
  let bwt = Huffman_wavelet.build ~tick ~sigma bwt_arr in
  let c_before = Bwt.counts_before bwt_arr sigma in
  (* SA sampling *)
  let mark_bv = Bitvec.create m in
  let n_samples = ref 0 in
  Array.iteri
    (fun row pos ->
      if pos < n && pos mod sample = 0 then begin
        Bitvec.set mark_bv row;
        incr n_samples
      end)
    sa;
  let sample_width = max 1 (Int_vec.width_for (max 1 (n / sample))) in
  let sample_vals = Int_vec.create ~width:sample_width !n_samples in
  let k = ref 0 in
  Array.iter
    (fun pos ->
      tick ();
      if pos < n && pos mod sample = 0 then begin
        Int_vec.set sample_vals !k (pos / sample);
        incr k
      end)
    sa;
  (* ISA sampling: isa.(i) = row of suffix at i*sample, for i*sample <= n.
     The suffix at position n is the sentinel row, always 0, stored last. *)
  let n_isa = (n / sample) + 1 in
  let isa = Int_vec.create ~width:(max 1 (Int_vec.width_for m)) n_isa in
  Array.iteri
    (fun row pos ->
      tick ();
      if pos mod sample = 0 && pos / sample < n_isa then Int_vec.set isa (pos / sample) row)
    sa;
  {
    docs;
    m;
    bwt;
    c_before;
    sample;
    marked = Rank_select.build mark_bv;
    sample_vals;
    isa;
  }

let doc_count t = Doc_map.doc_count t.docs
let total_len t = Doc_map.total_len t.docs
let doc_len t d = Doc_map.doc_len t.docs d
let row_count t = t.m
let sample_rate t = t.sample

(* LF-mapping: row of suffix p -> row of suffix p-1 (mod). *)
let[@inline] lf t row =
  let c = Huffman_wavelet.access t.bwt row in
  t.c_before.(c) + Huffman_wavelet.rank t.bwt c row

(* Backward search.  Returns the half-open SA row range of suffixes
   starting with [p], or None. *)
let range t (p : string) : (int * int) option =
  let len = String.length p in
  if len = 0 then invalid_arg "Fm_index.range: empty pattern";
  let sp = ref 0 and ep = ref t.m in
  let i = ref (len - 1) in
  let ok = ref true in
  while !ok && !i >= 0 do
    let c = sym_of_char p.[!i] in
    sp := t.c_before.(c) + Huffman_wavelet.rank t.bwt c !sp;
    ep := t.c_before.(c) + Huffman_wavelet.rank t.bwt c !ep;
    if !sp >= !ep then ok := false;
    decr i
  done;
  if !ok then Some (!sp, !ep) else None

let count t p = match range t p with None -> 0 | Some (sp, ep) -> ep - sp

(* Text position of the suffix in SA row [row]: walk LF until a sampled
   row, O(s) steps. *)
let position_of_row t row =
  let row = ref row and steps = ref 0 in
  while not (Rank_select.get t.marked !row) do
    row := lf t !row;
    incr steps
  done;
  let idx = Rank_select.rank1 t.marked !row in
  (Int_vec.get t.sample_vals idx * t.sample) + !steps

(* (doc, offset) of the suffix in SA row [row]. *)
let locate t row =
  if row < 0 || row >= t.m then invalid_arg "Fm_index.locate";
  Doc_map.locate t.docs (position_of_row t row)

let search t p ~f =
  match range t p with
  | None -> ()
  | Some (sp, ep) ->
    for row = sp to ep - 1 do
      let doc, off = locate t row in
      f ~doc ~off
    done

(* Row of the suffix starting at global text position [pos] (<= n). *)
let row_of_position t pos =
  let n = total_len t in
  if pos < 0 || pos > n then invalid_arg "Fm_index.row_of_position";
  let anchor = min n (((pos + t.sample - 1) / t.sample) * t.sample) in
  let row = ref (if anchor = n then 0 else Int_vec.get t.isa (anchor / t.sample)) in
  (* row of suffix p-1 = lf (row of suffix p) *)
  for _ = 1 to anchor - pos do
    row := lf t !row
  done;
  !row

(* Extract conc[g, g+len) as raw symbols by walking LF backwards from the
   nearest ISA anchor past the end: O(len + s) wavelet operations. *)
let extract_symbols t g len =
  let n = total_len t in
  if g < 0 || len < 0 || g + len > n then invalid_arg "Fm_index.extract";
  let e = g + len in
  let anchor = min n (((e + t.sample - 1) / t.sample) * t.sample) in
  let row = ref (if anchor = n then 0 else Int_vec.get t.isa (anchor / t.sample)) in
  let out = Array.make len 0 in
  (* bwt[row of suffix p] = conc[p-1]; walk p = anchor downto g+1 *)
  for p = anchor downto g + 1 do
    let c = Huffman_wavelet.access t.bwt !row in
    if p - 1 < e then out.(p - 1 - g) <- c;
    row := lf t !row
  done;
  out

let extract t ~doc ~off ~len =
  let dl = doc_len t doc in
  if off < 0 || len < 0 || off + len > dl then invalid_arg "Fm_index.extract: out of document";
  let g = Doc_map.doc_start t.docs doc + off in
  let syms = extract_symbols t g len in
  String.init len (fun i -> char_of_sym syms.(i))

(* Row of the suffix starting at (doc, off): tSA = O(s). *)
let suffix_row t ~doc ~off = row_of_position t (Doc_map.doc_start t.docs doc + off)

(* Iterate the SA rows of every suffix belonging to document [doc]
   (including its separator position), in order of decreasing position:
   one O(s) anchor walk plus O(1) per symbol.  Used for lazy deletion. *)
let iter_doc_rows t doc ~f =
  let st = Doc_map.doc_start t.docs doc in
  let l = doc_len t doc in
  (* positions st .. st+l (st+l is the separator) *)
  let row = ref (row_of_position t (st + l)) in
  f !row;
  for _p = st + l - 1 downto st do
    row := lf t !row;
    f !row
  done

let space_bits t =
  Huffman_wavelet.space_bits t.bwt + (Array.length t.c_before * 63)
  + Rank_select.space_bits t.marked + Int_vec.space_bits t.sample_vals
  + Int_vec.space_bits t.isa + Doc_map.space_bits t.docs + (4 * 63)
