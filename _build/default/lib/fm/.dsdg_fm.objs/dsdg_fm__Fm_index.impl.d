lib/fm/fm_index.ml: Array Bitvec Bwt Char Doc_map Dsdg_bits Dsdg_sa Dsdg_wavelet Huffman_wavelet Int_vec Rank_select Sais String
