lib/fm/doc_map.ml: Array
