lib/fm/doc_map.mli:
