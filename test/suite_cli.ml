(* CLI smoke tests against the real dsdg binary: the documented exit
   code scheme (0 success / 1 runtime / 2 data / 124 usage), and a
   serve -> load -> SIGTERM round-trip over a Unix socket that checks
   graceful drain, checkpoint-on-stop, and the BENCH JSON row. *)

module Durable = Dsdg_store.Durable
module Recovery = Dsdg_store.Recovery
module Client = Dsdg_serve.Client

let dsdg_bin =
  lazy
    (let candidates =
       (match Sys.getenv_opt "DSDG_BIN" with Some p -> [ p ] | None -> [])
       @ [ "../bin/dsdg.exe"; "_build/default/bin/dsdg.exe"; "bin/dsdg.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some p -> Some p
     | None -> None)

let with_bin f =
  match Lazy.force dsdg_bin with
  | Some bin -> f bin
  | None -> () (* binary not built in this context; nothing to smoke *)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let with_dir prefix f =
  let d = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> Dsdg_store.Kill_check.reset_dir d) (fun () -> f d)

let dev_null_in () = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0
let dev_null_out () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0

(* Run the binary to completion, stdin/stdout/stderr on /dev/null,
   and return its exit code. *)
let run_exit bin args =
  let i = dev_null_in () and o = dev_null_out () and e = dev_null_out () in
  let pid = Unix.create_process bin (Array.of_list (bin :: args)) i o e in
  Unix.close i;
  Unix.close o;
  Unix.close e;
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s -> Alcotest.failf "dsdg %s killed by signal %d" (String.concat " " args) s
  | Unix.WSTOPPED _ -> Alcotest.fail "dsdg stopped"

let check_exit bin ~what ~expect args =
  Alcotest.(check int) what expect (run_exit bin args)

let test_exit_codes () =
  with_bin (fun bin ->
      check_exit bin ~what:"demo exits 0" ~expect:0 [ "demo"; "--ops"; "40" ];
      check_exit bin ~what:"clean fuzz exits 0" ~expect:0
        [ "fuzz"; "--ops"; "50"; "--variant"; "worst-case"; "--backend"; "fm" ];
      check_exit bin ~what:"unknown variant is usage (124)" ~expect:124
        [ "fuzz"; "--variant"; "bogus" ];
      check_exit bin ~what:"unknown backend is usage (124)" ~expect:124
        [ "fuzz"; "--backend"; "bogus" ];
      check_exit bin ~what:"impossible fault combo is usage (124)" ~expect:124
        [ "fuzz"; "--fault"; "stale-epoch"; "--ops"; "10" ];
      check_exit bin ~what:"bad --sync is usage (124)" ~expect:124
        [ "save"; "/nonexistent-store"; "/dev/null"; "--sync"; "sometimes" ];
      check_exit bin ~what:"load without server exits 1" ~expect:1
        [ "load"; "--socket"; "/nonexistent.sock"; "--clients"; "1"; "--ops"; "1" ];
      with_dir "dsdg-cli-corrupt" (fun dir ->
          Unix.mkdir dir 0o755;
          Out_channel.with_open_bin (Filename.concat dir "wal.log") (fun oc ->
              Out_channel.output_string oc "not a wal\n");
          check_exit bin ~what:"corrupt store is data error (2)" ~expect:2 [ "open"; dir ]);
      check_exit bin ~what:"cmdliner rejects unknown flags (124)" ~expect:124
        [ "demo"; "--no-such-flag" ])

(* Spawn `dsdg serve`, wait for its socket, return the pid. *)
let spawn_serve bin dir sock args =
  let i = dev_null_in () and o = dev_null_out () and e = dev_null_out () in
  let pid =
    Unix.create_process bin
      (Array.of_list ((bin :: [ "serve"; dir; "--socket"; sock ]) @ args))
      i o e
  in
  Unix.close i;
  Unix.close o;
  Unix.close e;
  let deadline = Unix.gettimeofday () +. 15. in
  let rec wait_sock () =
    if Sys.file_exists sock then ()
    else if Unix.gettimeofday () > deadline then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "serve did not create its socket in time"
    end
    else begin
      (* bail out early if the server died on startup *)
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, st ->
        Alcotest.failf "serve exited prematurely (%s)"
          (match st with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      Thread.delay 0.05;
      wait_sock ()
    end
  in
  wait_sock ();
  pid

let test_serve_load_roundtrip () =
  with_bin (fun bin ->
      with_dir "dsdg-cli-serve" (fun dir ->
          let sock = Filename.concat (Filename.get_temp_dir_name ()) "dsdg-cli-serve.sock" in
          if Sys.file_exists sock then Sys.remove sock;
          let json = Filename.temp_file "dsdg-cli-bench" ".json" in
          Sys.remove json;
          let pid = spawn_serve bin dir sock [ "--max-batch"; "64" ] in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
              if Sys.file_exists json then Sys.remove json)
            (fun () ->
              (* direct client sanity against the subprocess *)
              let c = Client.connect (`Unix sock) in
              let id = Client.insert c "served by a subprocess" in
              Alcotest.(check int) "first doc id" 0 id;
              Alcotest.(check int) "count" 1 (Client.count c "subprocess");
              Client.close c;
              (* dsdg load against it: must exit 0 and write a BENCH row *)
              let i = dev_null_in () and o = dev_null_out () and e = dev_null_out () in
              let lpid =
                Unix.create_process_env bin
                  [| bin; "load"; "--socket"; sock; "--clients"; "3"; "--ops"; "120" |]
                  (Array.append (Unix.environment ()) [| "DSDG_BENCH_JSON=" ^ json |])
                  i o e
              in
              Unix.close i;
              Unix.close o;
              Unix.close e;
              (match snd (Unix.waitpid [] lpid) with
              | Unix.WEXITED 0 -> ()
              | st ->
                Alcotest.failf "dsdg load failed (%s)"
                  (match st with
                  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                  | _ -> "signal"));
              let row = In_channel.with_open_bin json In_channel.input_all in
              Alcotest.(check bool) "bench row written" true
                (String.length row > 0
                && String.sub row 0 22 = "{\"bench\":\"serve/load\",");
              (* graceful shutdown on SIGTERM: exit 0 *)
              Unix.kill pid Sys.sigterm;
              (match snd (Unix.waitpid [] pid) with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED c -> Alcotest.failf "serve exited %d on SIGTERM" c
              | _ -> Alcotest.fail "serve killed by signal");
              Alcotest.(check bool) "socket unlinked on drain" false (Sys.file_exists sock);
              (* the drain checkpointed: reopen replays nothing *)
              let store, info = Durable.open_ ~dir () in
              Alcotest.(check int) "zero replay" 0 info.Recovery.ri_replayed;
              Alcotest.(check bool) "documents survived" true
                (Dsdg_core.Dynamic_index.doc_count (Durable.index store) > 0);
              Durable.close store)))

(* Regression: a trace recorded under --shards / --readers carries a
   `% requires ...` hint; replaying it without those flags must be a
   usage error (124), not a silent run under the wrong configuration.
   With matching flags the replay runs (and passes). *)
let test_replay_hint_enforced () =
  with_bin (fun bin ->
      let module Trace = Dsdg_check.Trace in
      let ops = [ Trace.Insert "hinted ab"; Trace.Search "ab"; Trace.Count "ab" ] in
      let save hint =
        let path = Filename.temp_file "dsdg-cli-hint" ".trace" in
        Trace.save ~hint path ops;
        path
      in
      let sharded =
        save { Trace.no_hint with Trace.h_shards = Some 2; h_readers = Some 1 }
      in
      let readers_only = save { Trace.no_hint with Trace.h_readers = Some 1 } in
      let spsi_hinted = save { Trace.no_hint with Trace.h_seq = Some "spsi" } in
      let unhinted = save Trace.no_hint in
      Fun.protect
        ~finally:(fun () ->
          List.iter Sys.remove [ sharded; readers_only; spsi_hinted; unhinted ])
        (fun () ->
          check_exit bin ~what:"sharded trace without flags is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; sharded ];
          check_exit bin ~what:"sharded trace with only --shards is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; sharded; "--shards"; "2" ];
          check_exit bin ~what:"sharded trace with wrong K is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; sharded; "--shards"; "4"; "--readers"; "1" ];
          check_exit bin ~what:"sharded trace with matching flags replays" ~expect:0
            [ "fuzz"; "--replay"; sharded; "--shards"; "2"; "--readers"; "1" ];
          check_exit bin ~what:"reader trace without --readers is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; readers_only ];
          check_exit bin ~what:"reader trace with --readers replays" ~expect:0
            [ "fuzz"; "--replay"; readers_only; "--readers"; "1" ];
          check_exit bin ~what:"spsi trace without --seq-backend is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; spsi_hinted ];
          check_exit bin ~what:"spsi trace with --seq-backend spsi replays" ~expect:0
            [ "fuzz"; "--replay"; spsi_hinted; "--seq-backend"; "spsi" ];
          check_exit bin ~what:"unhinted trace still replays bare" ~expect:0
            [ "fuzz"; "--replay"; unhinted ];
          check_exit bin ~what:"t3 is an accepted variant alias" ~expect:0
            [ "fuzz"; "--replay"; unhinted; "--variant"; "t3"; "--backend"; "fm" ]))

(* The relation plane: `dsdg graph` exit codes plus a cross-backend
   snapshot round-trip, and `fuzz --rel` with its trace hints -- a rel
   trace names its backend spec, refuses to replay under a different
   one (124), and never replays through the document-fuzzer path. *)
let test_graph_rel_cli () =
  with_bin (fun bin ->
      let snap = Filename.temp_file "dsdg-cli-graph" ".rel" in
      let junk = Filename.temp_file "dsdg-cli-junk" ".rel" in
      let module Rel_check = Dsdg_check.Rel_check in
      let k2_trace = Filename.temp_file "dsdg-cli-rel" ".trace" in
      Rel_check.save ~spec:(Rel_check.One Dsdg_binrel.Rel_backend.K2) k2_trace
        [ Rel_check.Radd (3, 5); Rel_check.Rrelated (3, 5); Rel_check.Rpairs ];
      let doc_trace = Filename.temp_file "dsdg-cli-doc" ".trace" in
      Dsdg_check.Trace.save ~hint:Dsdg_check.Trace.no_hint doc_trace
        [ Dsdg_check.Trace.Insert "plain document ab" ];
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
            [ snap; junk; k2_trace; doc_trace ])
        (fun () ->
          (* graph subcommand *)
          check_exit bin ~what:"graph k2 exits 0 and saves" ~expect:0
            [ "graph"; "--nodes"; "300"; "--edges"; "1500"; "--queries"; "20"; "--save"; snap ];
          check_exit bin ~what:"graph str reloads the k2 snapshot" ~expect:0
            [ "graph"; "--rel-backend"; "str"; "--load"; snap; "--queries"; "10" ];
          check_exit bin ~what:"unknown graph backend is usage (124)" ~expect:124
            [ "graph"; "--rel-backend"; "csr" ];
          check_exit bin ~what:"graph rejects nodes < 2 (124)" ~expect:124
            [ "graph"; "--nodes"; "1" ];
          Out_channel.with_open_bin junk (fun oc -> Out_channel.output_string oc "not a rel\n");
          check_exit bin ~what:"corrupt relation snapshot is data error (2)" ~expect:2
            [ "graph"; "--load"; junk ];
          (* fuzz --rel *)
          check_exit bin ~what:"clean rel fuzz exits 0" ~expect:0
            [ "fuzz"; "--rel"; "--ops"; "60"; "--seed"; "5" ];
          check_exit bin ~what:"rel fuzz on one backend exits 0" ~expect:0
            [ "fuzz"; "--rel"; "--rel-backend"; "k2"; "--ops"; "40" ];
          check_exit bin ~what:"unknown rel backend is usage (124)" ~expect:124
            [ "fuzz"; "--rel"; "--rel-backend"; "bogus" ];
          check_exit bin ~what:"--rel with --follow is usage (124)" ~expect:124
            [ "fuzz"; "--rel"; "--follow"; "/nonexistent" ];
          (* hint enforcement, both directions *)
          check_exit bin ~what:"rel trace through document path is usage (124)" ~expect:124
            [ "fuzz"; "--replay"; k2_trace ];
          check_exit bin ~what:"rel trace under the wrong backend is usage (124)" ~expect:124
            [ "fuzz"; "--rel"; "--rel-backend"; "str"; "--replay"; k2_trace ];
          check_exit bin ~what:"rel trace with matching backend replays" ~expect:0
            [ "fuzz"; "--rel"; "--rel-backend"; "k2"; "--replay"; k2_trace ];
          check_exit bin ~what:"document trace through --rel is usage (124)" ~expect:124
            [ "fuzz"; "--rel"; "--replay"; doc_trace ]))

(* Sharded service plane: serve a K=2 store, drive dsdg load against
   it, SIGTERM-drain to exit 0, and reopen the shard stores to confirm
   the drain checkpointed every shard. *)
let test_sharded_serve_roundtrip () =
  with_bin (fun bin ->
      with_dir "dsdg-cli-shserve" (fun dir ->
          let sock = Filename.concat (Filename.get_temp_dir_name ()) "dsdg-cli-shserve.sock" in
          if Sys.file_exists sock then Sys.remove sock;
          let pid = spawn_serve bin dir sock [ "--shards"; "2"; "--max-batch"; "64" ] in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            (fun () ->
              let c = Client.connect (`Unix sock) in
              let id = Client.insert c "served by two shards ab" in
              Alcotest.(check int) "first global id" 0 id;
              let id2 = Client.insert c "second sharded doc ab" in
              Alcotest.(check int) "sequential global id" 1 id2;
              Alcotest.(check int) "scatter-gather count" 2 (Client.count c "ab");
              Client.close c;
              check_exit bin ~what:"load against sharded server" ~expect:0
                [ "load"; "--socket"; sock; "--clients"; "2"; "--ops"; "80" ];
              Unix.kill pid Sys.sigterm;
              (match snd (Unix.waitpid [] pid) with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED c -> Alcotest.failf "sharded serve exited %d on SIGTERM" c
              | _ -> Alcotest.fail "sharded serve killed by signal");
              Alcotest.(check bool) "socket unlinked on drain" false (Sys.file_exists sock);
              Alcotest.(check (option int)) "store records K=2" (Some 2)
                (Dsdg_shard.Sharded_index.store_shards ~dir);
              (* the drain checkpointed every shard: reopen replays nothing *)
              let sh, infos = Dsdg_shard.Sharded_index.open_store ~shards:2 ~dir () in
              Array.iteri
                (fun s info ->
                  Alcotest.(check int) (Printf.sprintf "shard %d zero replay" s) 0
                    info.Recovery.ri_replayed)
                infos;
              Alcotest.(check bool) "documents survived" true
                (Dsdg_shard.Sharded_index.doc_count sh > 0);
              Dsdg_shard.Sharded_index.close sh)))

(* Spawn `dsdg follow` against a leader socket and wait for its own
   serving socket to appear. *)
let spawn_follow bin ~leader_sock ~store ~sock =
  let i = dev_null_in () and o = dev_null_out () and e = dev_null_out () in
  let pid =
    Unix.create_process bin
      [| bin; "follow"; "--from-socket"; leader_sock; "--store"; store; "--socket"; sock |]
      i o e
  in
  Unix.close i;
  Unix.close o;
  Unix.close e;
  let deadline = Unix.gettimeofday () +. 15. in
  let rec wait_sock () =
    if Sys.file_exists sock then ()
    else if Unix.gettimeofday () > deadline then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "follow did not create its socket in time"
    end
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, Unix.WEXITED c -> Alcotest.failf "follow exited prematurely (exit %d)" c
      | _, _ -> Alcotest.fail "follow died prematurely");
      Thread.delay 0.05;
      wait_sock ()
    end
  in
  wait_sock ();
  pid

(* dsdg serve -> dsdg follow: the follower subprocess serves the
   leader's documents read-only, refuses writes with a redirect, and a
   SIGTERM leaves its directory as an ordinary promotable store. *)
let test_follow_smoke () =
  with_bin (fun bin ->
      with_dir "dsdg-cli-follow" (fun dir ->
          Unix.mkdir dir 0o755;
          let leader_dir = Filename.concat dir "leader" in
          let replica_dir = Filename.concat dir "replica" in
          let lsock = Filename.concat (Filename.get_temp_dir_name ()) "dsdg-cli-follow-l.sock" in
          let fsock = Filename.concat (Filename.get_temp_dir_name ()) "dsdg-cli-follow-f.sock" in
          List.iter (fun s -> if Sys.file_exists s then Sys.remove s) [ lsock; fsock ];
          let lpid = spawn_serve bin leader_dir lsock [] in
          Fun.protect
            ~finally:(fun () ->
              (try Unix.kill lpid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] lpid) with Unix.Unix_error _ -> ())
            (fun () ->
              let lc = Client.connect (`Unix lsock) in
              ignore (Client.insert lc "followed doc one ab");
              ignore (Client.insert lc "followed doc two ab");
              let fpid = spawn_follow bin ~leader_sock:lsock ~store:replica_dir ~sock:fsock in
              Fun.protect
                ~finally:(fun () ->
                  (try Unix.kill fpid Sys.sigkill with Unix.Unix_error _ -> ());
                  try ignore (Unix.waitpid [] fpid) with Unix.Unix_error _ -> ())
                (fun () ->
                  let fc = Client.connect (`Unix fsock) in
                  (* replication is asynchronous: poll until caught up *)
                  let deadline = Unix.gettimeofday () +. 15. in
                  while
                    Client.count fc "ab" < 2
                    && (Unix.gettimeofday () < deadline
                       || Alcotest.fail "replica never served the leader's docs")
                  do
                    Thread.delay 0.05
                  done;
                  Alcotest.(check (list (pair int int))) "replica answers = leader answers"
                    (Client.search lc "ab") (Client.search fc "ab");
                  (* writes bounce with a redirect naming the leader *)
                  (match Client.insert fc "refused" with
                  | _ -> Alcotest.fail "follower accepted a write"
                  | exception Client.Server_error reason ->
                    Alcotest.(check bool)
                      (Printf.sprintf "redirect names leader (%s)" reason)
                      true
                      (let nl = String.length lsock and dl = String.length reason in
                       let rec go i = i + nl <= dl && (String.sub reason i nl = lsock || go (i + 1)) in
                       go 0));
                  Client.close fc;
                  Client.close lc;
                  (* SIGTERM: clean exit, replica is an ordinary store *)
                  Unix.kill fpid Sys.sigterm;
                  (match snd (Unix.waitpid [] fpid) with
                  | Unix.WEXITED 0 -> ()
                  | Unix.WEXITED c -> Alcotest.failf "follow exited %d on SIGTERM" c
                  | _ -> Alcotest.fail "follow killed by signal");
                  let store, _ = Durable.open_ ~dir:replica_dir () in
                  Alcotest.(check int) "promoted replica has both docs" 2
                    (Dsdg_core.Dynamic_index.doc_count (Durable.index store));
                  Durable.close store))))

(* dsdg save --pinned: the backup holds the pre-save state while the
   save itself lands the new files in the live store. *)
let test_save_pinned_smoke () =
  with_bin (fun bin ->
      with_dir "dsdg-cli-pinned" (fun dir ->
          Unix.mkdir dir 0o755;
          let store_dir = Filename.concat dir "store" in
          let backup_dir = Filename.concat dir "backup" in
          let file name text =
            let p = Filename.concat dir name in
            Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc text);
            p
          in
          let f1 = file "one.txt" "the first saved document" in
          let f2 = file "two.txt" "the second saved document" in
          check_exit bin ~what:"first save" ~expect:0 [ "save"; store_dir; f1 ];
          check_exit bin ~what:"save --pinned" ~expect:0
            [ "save"; store_dir; f2; "--pinned"; backup_dir ];
          (* live store: both documents; backup: only the pre-save one *)
          let store, _ = Durable.open_ ~dir:store_dir () in
          Alcotest.(check int) "live store has both" 2
            (Dsdg_core.Dynamic_index.doc_count (Durable.index store));
          Durable.close store;
          let bk, info = Durable.open_ ~dir:backup_dir () in
          Alcotest.(check int) "backup replays nothing" 0 info.Recovery.ri_replayed;
          let idx = Durable.index bk in
          Alcotest.(check int) "backup holds the pre-save state" 1
            (Dsdg_core.Dynamic_index.doc_count idx);
          Alcotest.(check int) "backup finds the first doc" 1
            (Dsdg_core.Dynamic_index.count idx "first");
          Durable.close bk;
          (* sharded stats over a store surfaces the composite epoch *)
          check_exit bin ~what:"stats --store --shards" ~expect:0
            [ "stats"; "--store"; Filename.concat dir "shstats"; "--shards"; "2"; "--ops"; "40" ]))

let suite =
  [
    Alcotest.test_case "exit codes: 0 / 1 / 2 / 124 scheme" `Slow test_exit_codes;
    Alcotest.test_case "follow: read replica subprocess, redirect, SIGTERM" `Slow
      test_follow_smoke;
    Alcotest.test_case "save --pinned: pre-save backup + sharded stats" `Slow
      test_save_pinned_smoke;
    Alcotest.test_case "replay hints: --shards/--readers enforced (124)" `Slow
      test_replay_hint_enforced;
    Alcotest.test_case "graph subcommand + fuzz --rel hint enforcement" `Slow test_graph_rel_cli;
    Alcotest.test_case "serve + load round-trip, SIGTERM drain" `Slow test_serve_load_roundtrip;
    Alcotest.test_case "sharded serve (K=2) + load round-trip, SIGTERM drain" `Slow
      test_sharded_serve_roundtrip;
  ]
