(* Tests for dsdg_core: Sa_static, Semi_static, Transform1 (both
   schedules) checked against a naive model under churn. *)

open Dsdg_core

let check = Alcotest.(check int)

(* naive search over live (id, text) pairs, shared with the fuzzer *)
let naive_search = Dsdg_check.Model.occurrences

(* --- Sa_static conformance --- *)

let test_sa_static_basic () =
  let docs = [| "banana"; "bandana"; "ananas" |] in
  let idx = Sa_static.build ~sample:4 docs in
  check "doc_count" 3 (Sa_static.doc_count idx);
  List.iter
    (fun p ->
      let expected = naive_search (Array.to_list (Array.mapi (fun i s -> (i, s)) docs)) p in
      match Sa_static.range idx p with
      | None -> check ("none " ^ p) 0 (List.length expected)
      | Some (sp, ep) ->
        check ("width " ^ p) (List.length expected) (ep - sp);
        let got = ref [] in
        for row = sp to ep - 1 do
          got := Sa_static.locate idx row :: !got
        done;
        Alcotest.(check (list (pair int int))) ("locs " ^ p) expected (List.sort compare !got))
    [ "a"; "an"; "ana"; "ban"; "nd"; "s"; "zz"; "banana" ]

let test_sa_static_extract () =
  let idx = Sa_static.build ~sample:1 [| "hello world"; "foo" |] in
  Alcotest.(check string) "extract" "world" (Sa_static.extract idx ~doc:0 ~off:6 ~len:5);
  Alcotest.(check string) "extract2" "foo" (Sa_static.extract idx ~doc:1 ~off:0 ~len:3)

let prop_sa_static_vs_fm =
  let gen_doc = QCheck.Gen.(string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 2)) (0 -- 30)) in
  QCheck.Test.make ~name:"sa_static range width = fm count" ~count:150
    QCheck.(pair (make Gen.(list_size (1 -- 5) gen_doc)) (string_of_size Gen.(1 -- 4)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let docs = Array.of_list docs_l in
      let sa = Sa_static.build ~sample:2 docs in
      let fm = Fm_static.build ~sample:2 docs in
      let w = function None -> 0 | Some (a, b) -> b - a in
      w (Sa_static.range sa p) = w (Fm_static.range fm p))

(* --- Csa_static conformance --- *)

let test_csa_static_basic () =
  let docs = [| "banana"; "bandana"; "ananas" |] in
  let idx = Csa_static.build ~sample:3 docs in
  Alcotest.(check int) "doc_count" 3 (Csa_static.doc_count idx);
  List.iter
    (fun p ->
      let expected = naive_search (Array.to_list (Array.mapi (fun i s -> (i, s)) docs)) p in
      match Csa_static.range idx p with
      | None -> check ("none " ^ p) 0 (List.length expected)
      | Some (sp, ep) ->
        check ("width " ^ p) (List.length expected) (ep - sp);
        let got = ref [] in
        for row = sp to ep - 1 do
          got := Csa_static.locate idx row :: !got
        done;
        Alcotest.(check (list (pair int int))) ("locs " ^ p) expected (List.sort compare !got))
    [ "a"; "an"; "ana"; "ban"; "nd"; "s"; "zz"; "banana"; "ananas" ]

let test_csa_static_extract () =
  let idx = Csa_static.build ~sample:4 [| "hello world"; "compressed suffix array" |] in
  Alcotest.(check string) "extract" "world" (Csa_static.extract idx ~doc:0 ~off:6 ~len:5);
  Alcotest.(check string) "extract2" "suffix" (Csa_static.extract idx ~doc:1 ~off:11 ~len:6);
  (* iter_doc_rows covers every suffix exactly once *)
  let rows = ref [] in
  Csa_static.iter_doc_rows idx 0 ~f:(fun r -> rows := r :: !rows);
  check "rows" 12 (List.length (List.sort_uniq compare !rows))

let prop_csa_vs_fm =
  let gen_doc = QCheck.Gen.(string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 2)) (0 -- 30)) in
  QCheck.Test.make ~name:"csa range width = fm count" ~count:120
    QCheck.(pair (make Gen.(list_size (1 -- 5) gen_doc)) (string_of_size Gen.(1 -- 4)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let docs = Array.of_list docs_l in
      let csa = Csa_static.build ~sample:2 docs in
      let fm = Fm_static.build ~sample:2 docs in
      let w = function None -> 0 | Some (a, b) -> b - a in
      w (Csa_static.range csa p) = w (Fm_static.range fm p))

(* --- Semi_static battery, shared across static indexes --- *)

module SS_fm = Semi_static.Make (Fm_static)
module SS_sa = Semi_static.Make (Sa_static)
module SS_csa = Semi_static.Make (Csa_static)

module type SEMI = sig
  type t
  val build :
    ?tick:(unit -> unit) ->
    ?seq:Dsdg_delbits.Sums.kind ->
    sample:int ->
    tau:int ->
    (int * string) array ->
    t
  val search : t -> string -> f:(doc:int -> off:int -> unit) -> unit
  val count : t -> string -> int
  val delete : t -> int -> bool
  val mem : t -> int -> bool
  val needs_purge : t -> bool
  val live_docs : ?tick:(unit -> unit) -> t -> (int * string) list
  val extract : t -> doc:int -> off:int -> len:int -> string option
end

let semi_static_battery (type a) (module M : SEMI with type t = a) name () =
  let docs = [| (10, "banana"); (20, "bandana"); (30, "ananas"); (40, "band") |] in
  let ss = M.build ~sample:2 ~tau:4 docs in
  let live () = List.filter (fun (d, _) -> M.mem ss d) (Array.to_list docs) in
  let matches p =
    let acc = ref [] in
    M.search ss p ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
    List.sort compare !acc
  in
  let verify p = Alcotest.(check (list (pair int int))) (name ^ " " ^ p) (naive_search (live ()) p) (matches p) in
  List.iter verify [ "an"; "ana"; "band"; "na"; "s" ];
  check (name ^ " count an") (List.length (naive_search (live ()) "an")) (M.count ss "an");
  (* delete the middle doc *)
  Alcotest.(check bool) (name ^ " delete") true (M.delete ss 20);
  Alcotest.(check bool) (name ^ " delete twice") false (M.delete ss 20);
  Alcotest.(check bool) (name ^ " mem") false (M.mem ss 20);
  List.iter verify [ "an"; "ana"; "band"; "nd"; "d" ];
  check (name ^ " count after") (List.length (naive_search (live ()) "an")) (M.count ss "an");
  (* extraction respects liveness *)
  Alcotest.(check (option string)) (name ^ " extract live") (Some "anan") (M.extract ss ~doc:30 ~off:0 ~len:4);
  Alcotest.(check (option string)) (name ^ " extract dead") None (M.extract ss ~doc:20 ~off:0 ~len:3);
  (* live_docs returns exactly the live set *)
  Alcotest.(check (list (pair int string))) (name ^ " live_docs") (live ())
    (List.sort compare (M.live_docs ss));
  (* purge threshold: tau=4, deleting enough must trip it *)
  ignore (M.delete ss 10);
  ignore (M.delete ss 30);
  Alcotest.(check bool) (name ^ " needs purge") true (M.needs_purge ss);
  List.iter verify [ "an"; "band" ]

let test_semi_static_fm = semi_static_battery (module SS_fm) "fm"
let test_semi_static_sa = semi_static_battery (module SS_sa) "sa"
let test_semi_static_csa = semi_static_battery (module SS_csa) "csa"

(* --- Transform1 battery --- *)

module T1 = Transform1.Make (Fm_static)

let rand_doc st =
  let n = Random.State.int st 40 in
  String.init n (fun _ -> Char.chr (97 + Random.State.int st 3))

(* Drive a Transform1 instance and a naive model through a random op
   stream, checking search/count/extract agreement along the way. *)
let churn_battery ?schedule ~ops ~seed name () =
  let st = Random.State.make [| seed |] in
  let t = T1.create ?schedule ~sample:2 ~tau:4 () in
  let model : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let patterns = [ "a"; "ab"; "ba"; "abc"; "ca"; "bb" ] in
  let verify step =
    let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
    List.iter
      (fun p ->
        let expected = naive_search live p in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s step %d search %s" name step p)
          expected (T1.matches t p);
        check (Printf.sprintf "%s step %d count %s" name step p) (List.length expected)
          (T1.count t p))
      patterns
  in
  for step = 1 to ops do
    let roll = Random.State.float st 1.0 in
    if roll < 0.6 || Hashtbl.length model = 0 then begin
      let text = rand_doc st in
      let id = T1.insert t text in
      Hashtbl.replace model id text
    end
    else begin
      (* delete a random live doc *)
      let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
      let id = List.nth ids (Random.State.int st (List.length ids)) in
      Alcotest.(check bool) (Printf.sprintf "%s delete %d" name id) true (T1.delete t id);
      Hashtbl.remove model id
    end;
    if step mod 7 = 0 then verify step
  done;
  verify ops;
  (* extraction of every live doc *)
  Hashtbl.iter
    (fun id text ->
      Alcotest.(check (option string)) (Printf.sprintf "%s extract %d" name id) (Some text)
        (T1.extract t ~doc:id ~off:0 ~len:(String.length text)))
    model;
  check (name ^ " doc_count") (Hashtbl.length model) (T1.doc_count t)

let test_t1_geometric = churn_battery ~ops:120 ~seed:3 "t1-geo"
let test_t1_doubling = churn_battery ~schedule:(Transform1.doubling ()) ~ops:120 ~seed:4 "t1-dbl"

let test_t1_insert_only_growth () =
  let t = T1.create ~sample:4 ~tau:8 () in
  for i = 0 to 199 do
    ignore (T1.insert t (Printf.sprintf "document-%d-padding-padding" i))
  done;
  check "doc_count" 200 (T1.doc_count t);
  check "count document" 200 (T1.count t "document");
  (* the census must show a geometric profile: at least two collections *)
  Alcotest.(check bool) "census nonempty" true (List.length (T1.census t) >= 2);
  let stats = T1.stats t in
  Alcotest.(check bool) "merges happened" true (stats.Transform1.merges > 0)

let test_t1_delete_everything () =
  let t = T1.create ~sample:2 ~tau:4 () in
  let ids = List.init 50 (fun i -> T1.insert t (Printf.sprintf "text number %d" i)) in
  List.iter (fun id -> Alcotest.(check bool) "del" true (T1.delete t id)) ids;
  check "empty" 0 (T1.doc_count t);
  check "no matches" 0 (T1.count t "text");
  Alcotest.(check bool) "delete missing" false (T1.delete t 999)

let test_t1_large_doc_goes_high () =
  let t = T1.create ~sample:4 ~tau:8 () in
  ignore (T1.insert t (String.make 5000 'x'));
  check "count x" 5000 (T1.count t "x");
  ignore (T1.insert t "small");
  check "count small" 1 (T1.count t "small")

let prop_t1_vs_model =
  QCheck.Test.make ~name:"transform1 agrees with model on random streams" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 20 60))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 77 |] in
      let t = T1.create ~sample:2 ~tau:4 () in
      let model = Hashtbl.create 32 in
      let ok = ref true in
      for _ = 1 to ops do
        if Random.State.float st 1.0 < 0.65 || Hashtbl.length model = 0 then begin
          let text = rand_doc st in
          let id = T1.insert t text in
          Hashtbl.replace model id text
        end
        else begin
          let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
          let id = List.nth ids (Random.State.int st (List.length ids)) in
          ignore (T1.delete t id);
          Hashtbl.remove model id
        end
      done;
      let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
      List.iter
        (fun p -> if T1.matches t p <> naive_search live p then ok := false)
        [ "a"; "ab"; "ba"; "ca" ];
      !ok)

(* Regression: counts must already be consistent on the very operation
   that triggered an eager purge, not only once the dust settles. *)
let test_t1_count_right_after_purge () =
  let t = T1.create ~sample:2 ~tau:4 () in
  let model = Hashtbl.create 64 in
  for i = 0 to 119 do
    let text = Printf.sprintf "purge fodder %d ab" i in
    Hashtbl.replace model (T1.insert t text) text
  done;
  let purges0 = (T1.stats t).Transform1.purges in
  for id = 0 to 89 do
    Alcotest.(check bool) (Printf.sprintf "delete %d" id) true (T1.delete t id);
    Hashtbl.remove model id;
    let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
    List.iter
      (fun p ->
        check (Printf.sprintf "count %s after delete %d" p id)
          (List.length (naive_search live p))
          (T1.count t p))
      [ "ab"; "fodder"; "purge fodder 9" ]
  done;
  Alcotest.(check bool) "purges actually happened" true ((T1.stats t).Transform1.purges > purges0)

(* --- satellite regressions: overflow-safe purge threshold and the
   uniform query conventions enforced at the Dynamic_index boundary --- *)

(* The n/tau rule must be computed without forming dead * tau: near
   max_int the product wraps negative and a collection that is almost
   entirely dead would never purge. *)
let test_purge_threshold_no_overflow () =
  let chk name expected ~dead_syms ~total_symbols ~tau =
    Alcotest.(check bool) name expected
      (Semi_static.purge_threshold_exceeded ~dead_syms ~total_symbols ~tau)
  in
  (* small-number semantics unchanged: dead * tau > total *)
  chk "empty" false ~dead_syms:0 ~total_symbols:0 ~tau:4;
  chk "below" false ~dead_syms:2 ~total_symbols:8 ~tau:4;
  chk "just above" true ~dead_syms:3 ~total_symbols:8 ~tau:4;
  chk "tau 1: any dead vs total" true ~dead_syms:5 ~total_symbols:4 ~tau:1;
  chk "tau 1: dead = total" false ~dead_syms:4 ~total_symbols:4 ~tau:1;
  (* regression: the old [dead * tau > total] overflows here (the
     product wraps negative) and answers false; mathematically
     dead * tau is about 2 * max_int, far above total *)
  chk "near-max_int dead count" true ~dead_syms:(max_int / 2) ~total_symbols:(max_int - 1) ~tau:4;
  chk "huge tau" true ~dead_syms:(max_int / 3) ~total_symbols:max_int ~tau:4;
  chk "tau itself near max_int" true ~dead_syms:2 ~total_symbols:max_int ~tau:max_int;
  chk "zero dead never purges, huge total" false ~dead_syms:0 ~total_symbols:max_int ~tau:2

let all_pairs =
  List.concat_map
    (fun v -> List.map (fun b -> (v, b)) [ Dynamic_index.Fm; Dynamic_index.Plain_sa; Dynamic_index.Csa ])
    [ Dynamic_index.Amortized; Dynamic_index.Amortized_loglog; Dynamic_index.Worst_case ]

let pair_name (v, b) =
  Printf.sprintf "%s/%s"
    (match v with
    | Dynamic_index.Amortized -> "amortized"
    | Dynamic_index.Amortized_loglog -> "loglog"
    | Dynamic_index.Worst_case -> "worst-case")
    (match b with Dynamic_index.Fm -> "fm" | Dynamic_index.Plain_sa -> "sa" | Dynamic_index.Csa -> "csa")

(* Every variant x backend pair must reject the empty pattern the same
   way; before the sweep some backends answered it (with every position)
   and some raised, so the differential oracle could not even compare. *)
let test_empty_pattern_rejected_everywhere () =
  List.iter
    (fun pair ->
      let v, b = pair in
      let idx = Dynamic_index.create ~variant:v ~backend:b ~sample:2 ~tau:4 () in
      Fun.protect ~finally:(fun () -> Dynamic_index.close idx) @@ fun () ->
      ignore (Dynamic_index.insert idx "banana");
      let expect_reject what f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.failf "%s: %s \"\" must raise Invalid_argument" (pair_name pair) what
      in
      expect_reject "search" (fun () -> ignore (Dynamic_index.search idx ""));
      expect_reject "count" (fun () -> ignore (Dynamic_index.count idx ""));
      expect_reject "iter_matches" (fun () ->
          Dynamic_index.iter_matches idx "" ~f:(fun ~doc:_ ~off:_ -> ())))
    all_pairs

(* extract with len = 0 is a liveness probe: Some "" for a live doc
   (whatever the offset), None for dead or never-assigned ids. *)
let test_extract_len0_convention () =
  List.iter
    (fun pair ->
      let v, b = pair in
      let name = pair_name pair in
      let idx = Dynamic_index.create ~variant:v ~backend:b ~sample:2 ~tau:4 () in
      Fun.protect ~finally:(fun () -> Dynamic_index.close idx) @@ fun () ->
      let a = Dynamic_index.insert idx "banana" in
      let d = Dynamic_index.insert idx "bandana" in
      Alcotest.(check bool) (name ^ " delete") true (Dynamic_index.delete idx d);
      let chk what expected ~doc ~off =
        Alcotest.(check (option string)) (name ^ " " ^ what) expected
          (Dynamic_index.extract idx ~doc ~off ~len:0)
      in
      chk "live len=0" (Some "") ~doc:a ~off:0;
      chk "live len=0 off out of range" (Some "") ~doc:a ~off:99;
      chk "dead len=0" None ~doc:d ~off:0;
      chk "unassigned len=0" None ~doc:12345 ~off:0)
    all_pairs

let qsuite =
  List.map Qc.to_alcotest [ prop_sa_static_vs_fm; prop_csa_vs_fm; prop_t1_vs_model ]

let suite =
  [ ("sa_static basic", `Quick, test_sa_static_basic);
    ("sa_static extract", `Quick, test_sa_static_extract);
    ("semi_static over fm", `Quick, test_semi_static_fm);
    ("semi_static over sa", `Quick, test_semi_static_sa);
    ("semi_static over csa", `Quick, test_semi_static_csa);
    ("csa_static basic", `Quick, test_csa_static_basic);
    ("csa_static extract", `Quick, test_csa_static_extract);
    ("transform1 churn (geometric)", `Quick, test_t1_geometric);
    ("transform1 churn (doubling)", `Quick, test_t1_doubling);
    ("transform1 insert-only growth", `Quick, test_t1_insert_only_growth);
    ("transform1 delete everything", `Quick, test_t1_delete_everything);
    ("transform1 large doc", `Quick, test_t1_large_doc_goes_high);
    ("transform1 count right after purge", `Quick, test_t1_count_right_after_purge);
    ("purge threshold: no overflow", `Quick, test_purge_threshold_no_overflow);
    ("empty pattern rejected everywhere", `Quick, test_empty_pattern_rejected_everywhere);
    ("extract len=0 convention", `Quick, test_extract_len0_convention) ]
  @ qsuite
