(* Tests for dsdg_entropy. *)

open Dsdg_entropy

let checkf msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_h0_uniform () =
  (* two symbols, equal counts -> 1 bit/symbol *)
  checkf "ab" 1.0 (Entropy.h0 "abababab");
  (* four symbols uniform -> 2 bits *)
  checkf "abcd" 2.0 (Entropy.h0 "abcdabcd")

let test_h0_degenerate () =
  checkf "constant" 0.0 (Entropy.h0 "aaaaaaa");
  checkf "empty" 0.0 (Entropy.h0 "");
  checkf "single" 0.0 (Entropy.h0 "x")

let test_h0_skewed () =
  (* p=3/4, 1/4 -> H = 0.811278... *)
  let h = Entropy.h0 "aaab" in
  Alcotest.(check (float 1e-6)) "skewed" 0.8112781244591328 h

let test_hk_le_h0 () =
  (* Hk <= H0 always; strict for structured text *)
  let s = String.concat "" (List.init 50 (fun _ -> "abcabd")) in
  let h0 = Entropy.h0 s in
  let h1 = Entropy.hk ~k:1 s in
  let h2 = Entropy.hk ~k:2 s in
  Alcotest.(check bool) "h1<=h0" true (h1 <= h0 +. 0.02);
  Alcotest.(check bool) "h2<=h1" true (h2 <= h1 +. 0.02);
  Alcotest.(check bool) "h2 strictly smaller" true (h2 < h0)

let test_hk_k0 () =
  let s = "mississippi" in
  checkf "k=0 is h0" (Entropy.h0 s) (Entropy.hk ~k:0 s)

let test_h0_binary () =
  checkf "balanced" 1.0 (Entropy.h0_binary ~ones:50 ~len:100);
  checkf "all ones" 0.0 (Entropy.h0_binary ~ones:100 ~len:100);
  checkf "none" 0.0 (Entropy.h0_binary ~ones:0 ~len:100)

let prop_h0_bounds =
  QCheck.Test.make ~name:"0 <= H0 <= log2 sigma" ~count:200
    QCheck.(string_of_size Gen.(1 -- 500))
    (fun s ->
      let h = Entropy.h0 s in
      let distinct =
        let seen = Hashtbl.create 16 in
        String.iter (fun c -> Hashtbl.replace seen c ()) s;
        Hashtbl.length seen
      in
      h >= -1e-9 && h <= (log (float_of_int (max 1 distinct)) /. log 2.) +. 1e-9)

let prop_hk_decreasing =
  QCheck.Test.make ~name:"Hk is non-increasing in k" ~count:100
    QCheck.(string_of_size Gen.(10 -- 300))
    (fun s ->
      let h0 = Entropy.hk ~k:0 s in
      let h1 = Entropy.hk ~k:1 s in
      let h2 = Entropy.hk ~k:2 s in
      h1 <= h0 +. 0.02 && h2 <= h1 +. 0.02)

let qsuite = List.map Qc.to_alcotest [ prop_h0_bounds; prop_hk_decreasing ]

let suite =
  [ ("h0 uniform", `Quick, test_h0_uniform);
    ("h0 degenerate", `Quick, test_h0_degenerate);
    ("h0 skewed", `Quick, test_h0_skewed);
    ("hk <= h0", `Quick, test_hk_le_h0);
    ("hk k=0", `Quick, test_hk_k0);
    ("h0 binary", `Quick, test_h0_binary) ]
  @ qsuite
