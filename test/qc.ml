(* Deterministic QCheck -> Alcotest adapter.

   Without QCHECK_SEED in the environment, qcheck-alcotest falls back to
   [Random.self_init], so plain [dune runtest] exercised different cases
   on every run. Tier-1 must be reproducible: every suite routes its
   properties through here, which pins the generator state (QCHECK_SEED
   still wins when set, for exploratory runs). *)

let to_alcotest t =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some _ -> QCheck_alcotest.to_alcotest t
  | None -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xd5d6 |]) t
